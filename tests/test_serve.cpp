// The serving subsystem: JSON parsing, protocol validation, the bounded
// admission queue, and the Server's batching/ordering/overload behavior.
//
// Server tests run with auto_dispatch=false and drive dispatch_pending()
// by hand, so exactly when (and in which batches) queued work executes is
// under test control — admission-order response sequencing, cancellation
// of queued work and overload rejection all become deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace dim::serve {
namespace {

namespace fs = std::filesystem;

// --- JSON parser -----------------------------------------------------------

TEST(ServeJson, ParsesScalarsStringsAndNesting) {
  const JsonValue doc = parse_json(
      R"({"a": 1, "b": -2.5e1, "c": "x\ny\u0041", "d": [true, false, null], "e": {"k": "v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.get("b")->number, -25.0);
  EXPECT_EQ(doc.get("c")->string, "x\nyA");
  ASSERT_TRUE(doc.get("d")->is_array());
  EXPECT_EQ(doc.get("d")->array.size(), 3u);
  EXPECT_TRUE(doc.get("d")->array[2].is_null());
  EXPECT_EQ(doc.get("e")->get("k")->string, "v");
  EXPECT_EQ(doc.get("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 01}"), JsonError);      // leading zero
  EXPECT_THROW(parse_json("{\"a\": 1} extra"), JsonError); // trailing bytes
  EXPECT_THROW(parse_json("{\"a\": 1, \"a\": 2}"), JsonError);  // dup key
  EXPECT_THROW(parse_json("\"\\uD800\""), JsonError);  // lone surrogate
}

TEST(ServeJson, DepthLimitStopsRecursiveBombs) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(parse_json(deep), JsonError);
}

TEST(ServeJson, RejectsInvalidUtf8Sequences) {
  // Raw (unescaped) multi-byte sequences are validated inline; a string
  // that is not well-formed UTF-8 must never survive into a response.
  EXPECT_THROW(parse_json("\"abc\xC3\""), JsonError);    // truncated 2-byte
  EXPECT_THROW(parse_json("\"\x80x\""), JsonError);      // stray continuation
  EXPECT_THROW(parse_json("\"\xC3(\""), JsonError);      // bad continuation
  EXPECT_THROW(parse_json("\"\xC0\xAF\""), JsonError);   // overlong '/'
  EXPECT_THROW(parse_json("\"\xE0\x80\x80\""), JsonError);  // overlong NUL
  EXPECT_THROW(parse_json("\"\xED\xA0\x80\""), JsonError);  // raw surrogate
  EXPECT_THROW(parse_json("\"\xF4\x90\x80\x80\""), JsonError);  // > U+10FFFF
  EXPECT_THROW(parse_json("\"\xFF\""), JsonError);       // invalid lead byte
  // Well-formed 2/3/4-byte sequences pass through byte-for-byte.
  const JsonValue ok = parse_json("\"\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80\"");
  EXPECT_EQ(ok.string, "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
}

TEST(ServeJson, RejectsNonFiniteNumberLiterals) {
  // JSON has no NaN/Infinity; accepting them would put unprintable
  // numbers into responses and break round-tripping.
  EXPECT_THROW(parse_json("NaN"), JsonError);
  EXPECT_THROW(parse_json("Infinity"), JsonError);
  EXPECT_THROW(parse_json("-Infinity"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": nan}"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": inf}"), JsonError);
}

TEST(ServeJson, U64BoundaryIsExact) {
  const JsonValue zero = parse_json("0");
  ASSERT_TRUE(zero.is_u64());
  EXPECT_EQ(zero.as_u64(), 0u);
  EXPECT_FALSE(parse_json("-1").is_u64());
  EXPECT_FALSE(parse_json("1.5").is_u64());
  // 2^64 rounds to a double above the representable u64 range.
  EXPECT_FALSE(parse_json("18446744073709551616").is_u64());
}

// --- protocol validation ---------------------------------------------------

TEST(ServeProtocol, ParsesRunRequest) {
  const ParseOutcome o = parse_request(
      R"({"id": 7, "kind": "run", "workload": "crc32", "shape": "config2", "slots": 16, "spec": false})");
  ASSERT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.request.kind, RequestKind::kRun);
  EXPECT_EQ(o.request.id.text, "7");
  EXPECT_FALSE(o.request.id.is_string);
  EXPECT_EQ(o.request.workload, "crc32");
  EXPECT_EQ(o.request.shape, "config2");
  EXPECT_EQ(o.request.slots, 16u);
  EXPECT_FALSE(o.request.speculation);
}

TEST(ServeProtocol, SweepAxesDefaultAndValidate) {
  const ParseOutcome o = parse_request(
      R"({"id": "s", "kind": "sweep", "workload": "crc32", "shapes": ["config1", "ideal"]})");
  ASSERT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.request.shapes.size(), 2u);
  ASSERT_EQ(o.request.slots_axis.size(), 1u);  // defaulted from `slots`
  EXPECT_EQ(o.request.slots_axis[0], 64u);
  ASSERT_EQ(o.request.spec_axis.size(), 1u);

  EXPECT_FALSE(parse_request(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "shapes": []})").ok);
  EXPECT_FALSE(parse_request(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "slots_axis": [0]})").ok);
}

TEST(ServeProtocol, RejectsZeroBudgetWithDedicatedCode) {
  // The satellite bugfix: a zero budget would simulate nothing and then
  // divide the speedup by zero cycles; the parser refuses it outright.
  const ParseOutcome o = parse_request(
      R"({"id": 9, "kind": "run", "workload": "crc32", "budget": 0})");
  ASSERT_FALSE(o.ok);
  EXPECT_EQ(o.error, kErrZeroBudget);
  EXPECT_EQ(o.id.text, "9");
}

TEST(ServeProtocol, MalformedRequestsKeepCorrelatableIds) {
  EXPECT_EQ(parse_request("{nope").error, kErrParse);
  const ParseOutcome no_id = parse_request(R"({"kind": "ping"})");
  ASSERT_FALSE(no_id.ok);
  EXPECT_EQ(no_id.error, kErrBadRequest);
  const ParseOutcome bad_kind =
      parse_request(R"({"id": "x", "kind": "transmogrify"})");
  ASSERT_FALSE(bad_kind.ok);
  EXPECT_EQ(bad_kind.id.text, "x");  // id recovered before the kind check
  const ParseOutcome both = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "source": "nop"})");
  EXPECT_FALSE(both.ok);
}

TEST(ServeProtocol, AdversarialLinesPinTheParseErrorCode) {
  // The adversarial corpus: every hostile input class maps to the same
  // stable `parse_error` code (clients retry/log on codes, not prose).
  const auto expect_parse_error = [](const std::string& line) {
    const ParseOutcome o = parse_request(line);
    ASSERT_FALSE(o.ok) << line.substr(0, 80);
    EXPECT_EQ(o.error, kErrParse) << line.substr(0, 80);
  };
  // Oversized line: rejected on length alone, before any JSON work.
  std::string big = R"({"id": 1, "kind": "run", "workload": ")";
  big += std::string(kMaxRequestBytes, 'x');
  big += "\"}";
  {
    const ParseOutcome o = parse_request(big);
    ASSERT_FALSE(o.ok);
    EXPECT_EQ(o.error, kErrParse);
    EXPECT_NE(o.detail.find("exceeds"), std::string::npos);
  }
  // Depth bomb.
  std::string bomb = R"({"id": 1, "kind": "run", "workload": )";
  for (int i = 0; i < 200; ++i) bomb += "[";
  expect_parse_error(bomb);
  // Duplicate keys: ambiguous requests are refused, not last-wins.
  expect_parse_error(R"({"id": 1, "id": 2, "kind": "ping"})");
  // Truncated UTF-8 mid-string.
  expect_parse_error("{\"id\": 1, \"kind\": \"run\", \"workload\": \"crc\xC3\"}");
  // Non-finite number literals.
  expect_parse_error(R"({"id": 1, "kind": "run", "workload": "crc32", "budget": NaN})");
  expect_parse_error(R"({"id": 1, "kind": "run", "workload": "crc32", "budget": Infinity})");
  // Truncated document / raw control byte inside a string.
  expect_parse_error(R"({"id": 1, "kind": "run", "workload": "crc)");
  expect_parse_error("{\"id\": 1, \"kind\": \"run\", \"workload\": \"a\x01b\"}");
}

TEST(ServeProtocol, ParsesSchedulingFields) {
  const ParseOutcome o = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "priority": 9, "deadline_ms": 250})");
  ASSERT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.request.priority, 9);
  EXPECT_TRUE(o.request.has_deadline);
  EXPECT_EQ(o.request.deadline_ms, 250u);
  const ParseOutcome d = parse_request(
      R"({"id": 2, "kind": "sweep", "workload": "crc32", "shapes": ["config1"]})");
  ASSERT_TRUE(d.ok) << d.detail;
  EXPECT_EQ(d.request.priority, 0);       // default: lowest urgency
  EXPECT_FALSE(d.request.has_deadline);   // default: no deadline
}

TEST(ServeProtocol, RejectsOutOfRangeSchedulingFields) {
  const ParseOutcome high = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "priority": 10})");
  ASSERT_FALSE(high.ok);
  EXPECT_EQ(high.error, kErrBadRequest);
  const ParseOutcome negative = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "deadline_ms": -5})");
  ASSERT_FALSE(negative.ok);
  EXPECT_EQ(negative.error, kErrBadRequest);
  const ParseOutcome text = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "deadline_ms": "soon"})");
  ASSERT_FALSE(text.ok);
  EXPECT_EQ(text.error, kErrBadRequest);
}

// --- bounded queue ---------------------------------------------------------

TEST(ServeQueue, CapacityBoundsAdmission) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: the overload signal
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(ServeQueue, CloseDrainsThenReleasesBlockedPop) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed: no new admissions
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // already-admitted work still drains
  EXPECT_EQ(v, 7);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    int unused = 0;
    EXPECT_FALSE(q.pop(unused));  // closed and empty
    released.store(true);
  });
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(ServeQueue, AdmissionPopOrderIsEdfWithinStrictPriority) {
  // Pop order is a pure function of the pushed (key, order) pairs:
  // priority dominates, EDF within a priority, deadline-less items after
  // every deadlined one, admission order as the final tiebreak.
  AdmissionQueue<int> q(16);
  const auto now = std::chrono::steady_clock::now();
  const auto key = [&now](int priority, int deadline_ms) {
    ScheduleKey k;
    k.priority = priority;
    if (deadline_ms >= 0) {
      k.has_deadline = true;
      k.deadline = now + std::chrono::milliseconds(deadline_ms);
    }
    return k;
  };
  ASSERT_TRUE(q.try_push(1, key(0, 10)));    // low priority, early deadline
  ASSERT_TRUE(q.try_push(2, key(5, 500)));   // high priority, late deadline
  ASSERT_TRUE(q.try_push(3, key(5, 100)));   // high priority, early deadline
  ASSERT_TRUE(q.try_push(4, key(5, -1)));    // high priority, no deadline
  ASSERT_TRUE(q.try_push(5, key(0, -1)));    // low priority, no deadline
  ASSERT_TRUE(q.try_push(6, key(5, 100)));   // ties 3: admission order wins
  std::vector<int> order;
  int v = 0;
  while (q.try_pop(v)) order.push_back(v);
  EXPECT_EQ(order, (std::vector<int>{3, 6, 2, 4, 1, 5}));
}

TEST(ServeQueue, AdmissionQueueBoundsAndCloseDrain) {
  AdmissionQueue<int> q(2);
  const ScheduleKey k;
  EXPECT_TRUE(q.try_push(1, k));
  EXPECT_TRUE(q.try_push(2, k));
  EXPECT_FALSE(q.try_push(3, k));  // full: the overload signal
  q.close();
  EXPECT_FALSE(q.try_push(4, k));  // closed: no new admissions
  int v = 0;
  EXPECT_TRUE(q.pop(v));   // already-admitted work still drains
  EXPECT_TRUE(q.pop(v));
  EXPECT_FALSE(q.pop(v));  // closed and empty
}

TEST(ServeQueue, AdmissionMpmcStressLosesNothing) {
  // Contention harness (runs under TSan in CI): several producers spin on
  // a deliberately tiny queue while several consumers drain it. Every
  // item pushed must pop exactly once, and close() must release every
  // blocked consumer after the drain.
  AdmissionQueue<uint64_t> q(8);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<uint64_t> pushed_sum{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &pushed_sum, p] {
      const auto now = std::chrono::steady_clock::now();
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t item =
            (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(i);
        ScheduleKey key;
        key.priority = i % 10;
        if (i % 3 == 0) {
          key.has_deadline = true;
          key.deadline = now + std::chrono::milliseconds(i % 50);
        }
        while (!q.try_push(item, key)) std::this_thread::yield();
        pushed_sum.fetch_add(item);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &popped_sum, &popped_count] {
      uint64_t item = 0;
      while (q.pop(item)) {
        popped_sum.fetch_add(item);
        popped_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(q.size(), 0u);
}

// --- server ----------------------------------------------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  ServerOptions manual_options() {
    ServerOptions o;
    o.auto_dispatch = false;
    o.worker_threads = 2;
    return o;
  }

  std::shared_ptr<SessionHost::Session> session_into(
      Server& server, std::vector<std::string>& out) {
    return server.open_session(
        [&out](const std::string& line) { out.push_back(line); });
  }
};

TEST_F(ServeServerTest, ImmediateKindsAnswerWithoutDispatch) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "ping"})");
  session->submit(R"({"id": 2, "kind": "stats"})");
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"id\": 1, \"ok\": true, \"kind\": \"pong\"}\n");
  EXPECT_NE(lines[1].find("\"kind\": \"stats\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, ResponsesEmitInAdmissionOrder) {
  // A queued run sits between two immediate pings: the pings' responses
  // must wait for the run's, preserving FIFO order on the wire.
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "p1", "kind": "ping"})");
  session->submit(R"({"id": "r", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "p2", "kind": "ping"})");
  EXPECT_EQ(lines.size(), 1u);  // p2's pong is ready but held for order
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"id\": \"p1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": \"r\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"transparent\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\": \"p2\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, SweepResponseCarriesEveryCell) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"], "slots_axis": [16, 64]})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cells\": 4"), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\": \"config1/s16/sp\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\": \"config2/s64/sp\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, ResponsesByteIdenticalAcrossWorkerCounts) {
  // The determinism contract: same request stream, any worker count, same
  // bytes. Batched grids go through the SweepEngine, whose results are
  // index-ordered regardless of scheduling.
  const std::vector<std::string> stream = {
      R"({"id": 0, "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"], "slots_axis": [8, 64]})",
      R"({"id": 1, "kind": "run", "workload": "bitcount"})",
      R"({"id": 2, "kind": "run", "workload": "crc32", "budget": 20000})",
      R"({"id": 3, "kind": "sweep", "workload": "crc32", "spec_axis": [false, true]})",
  };
  std::vector<std::string> by_workers[2];
  int slot = 0;
  for (unsigned workers : {1u, 4u}) {
    ServerOptions options = manual_options();
    options.worker_threads = workers;
    Server server(options);
    auto session = session_into(server, by_workers[slot]);
    for (const std::string& line : stream) session->submit(line);
    server.dispatch_pending();
    session->drain();
    server.shutdown();
    ++slot;
  }
  ASSERT_EQ(by_workers[0].size(), stream.size());
  EXPECT_EQ(by_workers[0], by_workers[1]);
}

TEST_F(ServeServerTest, BatchCompositionInvisibleInResponses) {
  // One-by-one dispatch vs one combined batch: each request's response
  // depends only on its own slice of the combined grid.
  const std::vector<std::string> stream = {
      R"({"id": "a", "kind": "sweep", "workload": "crc32", "slots_axis": [8, 16]})",
      R"({"id": "b", "kind": "sweep", "workload": "bitcount", "slots_axis": [8, 16]})",
  };
  std::vector<std::string> separate;
  {
    Server server(manual_options());
    auto session = session_into(server, separate);
    for (const std::string& line : stream) {
      session->submit(line);
      server.dispatch_pending();  // every request is its own batch
    }
    session->drain();
    server.shutdown();
  }
  std::vector<std::string> combined;
  {
    Server server(manual_options());
    auto session = session_into(server, combined);
    for (const std::string& line : stream) session->submit(line);
    server.dispatch_pending();  // both drain into one batch
    session->drain();
    server.shutdown();
  }
  EXPECT_EQ(separate, combined);
}

TEST_F(ServeServerTest, OverloadRejectsBeyondQueueCapacity) {
  ServerOptions options = manual_options();
  options.queue_capacity = 1;
  Server server(options);
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 0, "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"error\": \"overloaded\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\": \"overloaded\""), std::string::npos);
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.rejected_overload, 2u);
  server.shutdown();
}

TEST_F(ServeServerTest, ExpiredDeadlineRejectsAtDispatchWithDedicatedCode) {
  // `deadline_ms: 0` is already expired the instant it is admitted (the
  // dispatcher's check is `now >= deadline`), which makes the rejection
  // deterministic without sleeping. The code is distinct from both
  // `overloaded` and `canceled`: the client asked for a bound and the
  // server could not meet it.
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": "late", "kind": "run", "workload": "crc32", "deadline_ms": 0})");
  session->submit(R"({"id": "ok", "kind": "run", "workload": "crc32"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\": \"late\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"error\": \"deadline_expired\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\": true"), std::string::npos);
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.rejected_deadline, 1u);
  EXPECT_EQ(c.accepted, 2u);  // admitted, then expired at dispatch
  server.shutdown();
}

TEST_F(ServeServerTest, SchedulingOrdersExecutionNotResponses) {
  // EDF-within-priority is about *execution* order; responses still emit
  // in admission order. Execution order is made observable through the
  // warm pool: with batch_max=1, the first warm run to execute exports
  // and every later one preloads. Admitted low-priority first, it must
  // nonetheless preload — the high-priority deadlined run ran before it.
  ServerOptions options = manual_options();
  options.batch_max = 1;  // one job per batch, so batches execute in pop order
  Server server(options);
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": "first", "kind": "run", "workload": "crc32", "warm": true, "priority": 0})");
  session->submit(
      R"({"id": "urgent", "kind": "run", "workload": "crc32", "warm": true, "priority": 9, "deadline_ms": 60000})");
  session->submit(
      R"({"id": "soon", "kind": "run", "workload": "crc32", "warm": true, "priority": 9})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  // Wire order is admission order...
  EXPECT_NE(lines[0].find("\"id\": \"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": \"urgent\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\": \"soon\""), std::string::npos);
  // ...but execution order was urgent (p9 + deadline), soon (p9), first (p0).
  EXPECT_NE(lines[1].find("\"warm_exported\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"warm_preloaded\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"warm_preloaded\""), std::string::npos);
  EXPECT_EQ(lines[0].find("\"warm_exported\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, CancelStopsQueuedRequestBeforeDispatch) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "victim", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "c", "kind": "cancel", "target": "victim"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\": \"victim\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"error\": \"canceled\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"cancel\""), std::string::npos);
  EXPECT_EQ(server.counters().canceled, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, CancelIsConsumedNotSticky) {
  // After a cancel fires, the same id submitted again must run normally.
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "x", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "c", "kind": "cancel", "target": "x"})");
  server.dispatch_pending();
  session->submit(R"({"id": "x", "kind": "run", "workload": "crc32"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"error\": \"canceled\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"transparent\": true"), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, BudgetedRunReportsHitBudget) {
  // Inline source keeps the budgeted run fast; a small checkpoint interval
  // exercises the chunked run_until loop, and the chunking must not leak
  // into the result (hit_budget, not hit_limit).
  ServerOptions options = manual_options();
  options.checkpoint_interval = 64;
  Server server(options);
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": 1, "kind": "run", "source": "main: li $t0, 0\nli $t1, 100000\nloop: addiu $t0, $t0, 1\nbne $t0, $t1, loop\nli $v0, 10\nsyscall\n", "budget": 1000})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"halted\": false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"hit_budget\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"budget\": 1000"), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, WarmRunExportsThenPreloads) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32", "warm": true})");
  server.dispatch_pending();
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32", "warm": true})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"warm_exported\": true"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"warm_preloaded\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"warm_preloaded\""), std::string::npos);
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.warm_exports, 1u);
  EXPECT_EQ(c.warm_preloads, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, RestartWithPersistedStoreRecomputesNothing) {
  // Two server lifetimes over one store directory: the second must serve
  // the identical sweep purely from disk (hits only, zero stores) and
  // produce byte-identical responses.
  const std::string dir =
      (fs::temp_directory_path() / "dimsim-serve-restart-test").string();
  fs::remove_all(dir);
  const std::string sweep =
      R"({"id": "s", "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"]})";

  std::vector<std::string> first;
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    auto session = session_into(server, first);
    session->submit(sweep);
    server.dispatch_pending();
    session->drain();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.store.stores, 2u);
    EXPECT_EQ(c.store.hits, 0u);
    server.shutdown();
  }

  std::vector<std::string> second;
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    auto session = session_into(server, second);
    session->submit(sweep);
    server.dispatch_pending();
    session->drain();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.store.hits, 2u);
    EXPECT_EQ(c.store.misses, 0u);
    EXPECT_EQ(c.store.stores, 0u);
    server.shutdown();
  }
  EXPECT_EQ(first, second);
  fs::remove_all(dir);
}

TEST_F(ServeServerTest, WarmPoolSurvivesRestartOnDisk) {
  const std::string dir =
      (fs::temp_directory_path() / "dimsim-serve-warm-restart").string();
  fs::remove_all(dir);
  const std::string warm_run =
      R"({"id": "w", "kind": "run", "workload": "crc32", "warm": true})";

  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    std::vector<std::string> lines;
    auto session = session_into(server, lines);
    session->submit(warm_run);
    server.dispatch_pending();
    session->drain();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"warm_exported\": true"), std::string::npos);
    server.shutdown();
  }
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    std::vector<std::string> lines;
    auto session = session_into(server, lines);
    session->submit(warm_run);
    server.dispatch_pending();
    session->drain();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"warm_preloaded\""), std::string::npos)
        << "restarted daemon did not preload the persisted warm pool";
    server.shutdown();
  }
  fs::remove_all(dir);
}

TEST_F(ServeServerTest, ShutdownRequestDrainsAdmittedWorkThenCloses) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 0, "kind": "run", "workload": "crc32"})");
  EXPECT_TRUE(session->submit(R"({"id": 1, "kind": "shutdown"})") == false ||
              server.shutting_down());
  // Admitted before shutdown: still answered.
  server.dispatch_pending();
  // Submitted after shutdown: rejected, not silently dropped.
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32"})");
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"shutdown\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\": \"shutting_down\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, UnknownWorkloadAnswersWithErrorCode) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "run", "workload": "nonesuch"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\": \"unknown_workload\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, AutoDispatchServesWithoutManualPump) {
  // The production configuration: dispatcher thread on, no manual pump.
  ServerOptions options;
  options.worker_threads = 2;
  Server server(options);
  std::vector<std::string> lines;
  std::mutex mutex;
  auto session = server.open_session([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
  });
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32"})");
  session->drain();
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"transparent\": true"), std::string::npos);
  }
  server.shutdown();
}

TEST_F(ServeServerTest, ServeFuzzRequestRunsCampaign) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "fuzz", "seeds": 2})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\": \"fuzz\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seeds_run\": 2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"clean\": true"), std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace dim::serve
