// The serving subsystem: JSON parsing, protocol validation, the bounded
// admission queue, and the Server's batching/ordering/overload behavior.
//
// Server tests run with auto_dispatch=false and drive dispatch_pending()
// by hand, so exactly when (and in which batches) queued work executes is
// under test control — admission-order response sequencing, cancellation
// of queued work and overload rejection all become deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace dim::serve {
namespace {

namespace fs = std::filesystem;

// --- JSON parser -----------------------------------------------------------

TEST(ServeJson, ParsesScalarsStringsAndNesting) {
  const JsonValue doc = parse_json(
      R"({"a": 1, "b": -2.5e1, "c": "x\ny\u0041", "d": [true, false, null], "e": {"k": "v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.get("b")->number, -25.0);
  EXPECT_EQ(doc.get("c")->string, "x\nyA");
  ASSERT_TRUE(doc.get("d")->is_array());
  EXPECT_EQ(doc.get("d")->array.size(), 3u);
  EXPECT_TRUE(doc.get("d")->array[2].is_null());
  EXPECT_EQ(doc.get("e")->get("k")->string, "v");
  EXPECT_EQ(doc.get("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 01}"), JsonError);      // leading zero
  EXPECT_THROW(parse_json("{\"a\": 1} extra"), JsonError); // trailing bytes
  EXPECT_THROW(parse_json("{\"a\": 1, \"a\": 2}"), JsonError);  // dup key
  EXPECT_THROW(parse_json("\"\\uD800\""), JsonError);  // lone surrogate
}

TEST(ServeJson, DepthLimitStopsRecursiveBombs) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(parse_json(deep), JsonError);
}

TEST(ServeJson, U64BoundaryIsExact) {
  const JsonValue zero = parse_json("0");
  ASSERT_TRUE(zero.is_u64());
  EXPECT_EQ(zero.as_u64(), 0u);
  EXPECT_FALSE(parse_json("-1").is_u64());
  EXPECT_FALSE(parse_json("1.5").is_u64());
  // 2^64 rounds to a double above the representable u64 range.
  EXPECT_FALSE(parse_json("18446744073709551616").is_u64());
}

// --- protocol validation ---------------------------------------------------

TEST(ServeProtocol, ParsesRunRequest) {
  const ParseOutcome o = parse_request(
      R"({"id": 7, "kind": "run", "workload": "crc32", "shape": "config2", "slots": 16, "spec": false})");
  ASSERT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.request.kind, RequestKind::kRun);
  EXPECT_EQ(o.request.id.text, "7");
  EXPECT_FALSE(o.request.id.is_string);
  EXPECT_EQ(o.request.workload, "crc32");
  EXPECT_EQ(o.request.shape, "config2");
  EXPECT_EQ(o.request.slots, 16u);
  EXPECT_FALSE(o.request.speculation);
}

TEST(ServeProtocol, SweepAxesDefaultAndValidate) {
  const ParseOutcome o = parse_request(
      R"({"id": "s", "kind": "sweep", "workload": "crc32", "shapes": ["config1", "ideal"]})");
  ASSERT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.request.shapes.size(), 2u);
  ASSERT_EQ(o.request.slots_axis.size(), 1u);  // defaulted from `slots`
  EXPECT_EQ(o.request.slots_axis[0], 64u);
  ASSERT_EQ(o.request.spec_axis.size(), 1u);

  EXPECT_FALSE(parse_request(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "shapes": []})").ok);
  EXPECT_FALSE(parse_request(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "slots_axis": [0]})").ok);
}

TEST(ServeProtocol, RejectsZeroBudgetWithDedicatedCode) {
  // The satellite bugfix: a zero budget would simulate nothing and then
  // divide the speedup by zero cycles; the parser refuses it outright.
  const ParseOutcome o = parse_request(
      R"({"id": 9, "kind": "run", "workload": "crc32", "budget": 0})");
  ASSERT_FALSE(o.ok);
  EXPECT_EQ(o.error, kErrZeroBudget);
  EXPECT_EQ(o.id.text, "9");
}

TEST(ServeProtocol, MalformedRequestsKeepCorrelatableIds) {
  EXPECT_EQ(parse_request("{nope").error, kErrParse);
  const ParseOutcome no_id = parse_request(R"({"kind": "ping"})");
  ASSERT_FALSE(no_id.ok);
  EXPECT_EQ(no_id.error, kErrBadRequest);
  const ParseOutcome bad_kind =
      parse_request(R"({"id": "x", "kind": "transmogrify"})");
  ASSERT_FALSE(bad_kind.ok);
  EXPECT_EQ(bad_kind.id.text, "x");  // id recovered before the kind check
  const ParseOutcome both = parse_request(
      R"({"id": 1, "kind": "run", "workload": "crc32", "source": "nop"})");
  EXPECT_FALSE(both.ok);
}

// --- bounded queue ---------------------------------------------------------

TEST(ServeQueue, CapacityBoundsAdmission) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: the overload signal
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(ServeQueue, CloseDrainsThenReleasesBlockedPop) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed: no new admissions
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // already-admitted work still drains
  EXPECT_EQ(v, 7);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    int unused = 0;
    EXPECT_FALSE(q.pop(unused));  // closed and empty
    released.store(true);
  });
  waiter.join();
  EXPECT_TRUE(released.load());
}

// --- server ----------------------------------------------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  ServerOptions manual_options() {
    ServerOptions o;
    o.auto_dispatch = false;
    o.worker_threads = 2;
    return o;
  }

  std::shared_ptr<Server::Session> session_into(
      Server& server, std::vector<std::string>& out) {
    return server.open_session(
        [&out](const std::string& line) { out.push_back(line); });
  }
};

TEST_F(ServeServerTest, ImmediateKindsAnswerWithoutDispatch) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "ping"})");
  session->submit(R"({"id": 2, "kind": "stats"})");
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"id\": 1, \"ok\": true, \"kind\": \"pong\"}\n");
  EXPECT_NE(lines[1].find("\"kind\": \"stats\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, ResponsesEmitInAdmissionOrder) {
  // A queued run sits between two immediate pings: the pings' responses
  // must wait for the run's, preserving FIFO order on the wire.
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "p1", "kind": "ping"})");
  session->submit(R"({"id": "r", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "p2", "kind": "ping"})");
  EXPECT_EQ(lines.size(), 1u);  // p2's pong is ready but held for order
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"id\": \"p1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": \"r\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"transparent\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\": \"p2\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, SweepResponseCarriesEveryCell) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": 1, "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"], "slots_axis": [16, 64]})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cells\": 4"), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\": \"config1/s16/sp\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\": \"config2/s64/sp\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, ResponsesByteIdenticalAcrossWorkerCounts) {
  // The determinism contract: same request stream, any worker count, same
  // bytes. Batched grids go through the SweepEngine, whose results are
  // index-ordered regardless of scheduling.
  const std::vector<std::string> stream = {
      R"({"id": 0, "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"], "slots_axis": [8, 64]})",
      R"({"id": 1, "kind": "run", "workload": "bitcount"})",
      R"({"id": 2, "kind": "run", "workload": "crc32", "budget": 20000})",
      R"({"id": 3, "kind": "sweep", "workload": "crc32", "spec_axis": [false, true]})",
  };
  std::vector<std::string> by_workers[2];
  int slot = 0;
  for (unsigned workers : {1u, 4u}) {
    ServerOptions options = manual_options();
    options.worker_threads = workers;
    Server server(options);
    auto session = session_into(server, by_workers[slot]);
    for (const std::string& line : stream) session->submit(line);
    server.dispatch_pending();
    session->drain();
    server.shutdown();
    ++slot;
  }
  ASSERT_EQ(by_workers[0].size(), stream.size());
  EXPECT_EQ(by_workers[0], by_workers[1]);
}

TEST_F(ServeServerTest, BatchCompositionInvisibleInResponses) {
  // One-by-one dispatch vs one combined batch: each request's response
  // depends only on its own slice of the combined grid.
  const std::vector<std::string> stream = {
      R"({"id": "a", "kind": "sweep", "workload": "crc32", "slots_axis": [8, 16]})",
      R"({"id": "b", "kind": "sweep", "workload": "bitcount", "slots_axis": [8, 16]})",
  };
  std::vector<std::string> separate;
  {
    Server server(manual_options());
    auto session = session_into(server, separate);
    for (const std::string& line : stream) {
      session->submit(line);
      server.dispatch_pending();  // every request is its own batch
    }
    session->drain();
    server.shutdown();
  }
  std::vector<std::string> combined;
  {
    Server server(manual_options());
    auto session = session_into(server, combined);
    for (const std::string& line : stream) session->submit(line);
    server.dispatch_pending();  // both drain into one batch
    session->drain();
    server.shutdown();
  }
  EXPECT_EQ(separate, combined);
}

TEST_F(ServeServerTest, OverloadRejectsBeyondQueueCapacity) {
  ServerOptions options = manual_options();
  options.queue_capacity = 1;
  Server server(options);
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 0, "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"error\": \"overloaded\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\": \"overloaded\""), std::string::npos);
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.accepted, 1u);
  EXPECT_EQ(c.rejected_overload, 2u);
  server.shutdown();
}

TEST_F(ServeServerTest, CancelStopsQueuedRequestBeforeDispatch) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "victim", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "c", "kind": "cancel", "target": "victim"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\": \"victim\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"error\": \"canceled\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"cancel\""), std::string::npos);
  EXPECT_EQ(server.counters().canceled, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, CancelIsConsumedNotSticky) {
  // After a cancel fires, the same id submitted again must run normally.
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": "x", "kind": "run", "workload": "crc32"})");
  session->submit(R"({"id": "c", "kind": "cancel", "target": "x"})");
  server.dispatch_pending();
  session->submit(R"({"id": "x", "kind": "run", "workload": "crc32"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"error\": \"canceled\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"transparent\": true"), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, BudgetedRunReportsHitBudget) {
  // Inline source keeps the budgeted run fast; a small checkpoint interval
  // exercises the chunked run_until loop, and the chunking must not leak
  // into the result (hit_budget, not hit_limit).
  ServerOptions options = manual_options();
  options.checkpoint_interval = 64;
  Server server(options);
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(
      R"({"id": 1, "kind": "run", "source": "main: li $t0, 0\nli $t1, 100000\nloop: addiu $t0, $t0, 1\nbne $t0, $t1, loop\nli $v0, 10\nsyscall\n", "budget": 1000})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"halted\": false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"hit_budget\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"budget\": 1000"), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, WarmRunExportsThenPreloads) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32", "warm": true})");
  server.dispatch_pending();
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32", "warm": true})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"warm_exported\": true"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"warm_preloaded\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"warm_preloaded\""), std::string::npos);
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.warm_exports, 1u);
  EXPECT_EQ(c.warm_preloads, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, RestartWithPersistedStoreRecomputesNothing) {
  // Two server lifetimes over one store directory: the second must serve
  // the identical sweep purely from disk (hits only, zero stores) and
  // produce byte-identical responses.
  const std::string dir =
      (fs::temp_directory_path() / "dimsim-serve-restart-test").string();
  fs::remove_all(dir);
  const std::string sweep =
      R"({"id": "s", "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"]})";

  std::vector<std::string> first;
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    auto session = session_into(server, first);
    session->submit(sweep);
    server.dispatch_pending();
    session->drain();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.store.stores, 2u);
    EXPECT_EQ(c.store.hits, 0u);
    server.shutdown();
  }

  std::vector<std::string> second;
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    auto session = session_into(server, second);
    session->submit(sweep);
    server.dispatch_pending();
    session->drain();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.store.hits, 2u);
    EXPECT_EQ(c.store.misses, 0u);
    EXPECT_EQ(c.store.stores, 0u);
    server.shutdown();
  }
  EXPECT_EQ(first, second);
  fs::remove_all(dir);
}

TEST_F(ServeServerTest, WarmPoolSurvivesRestartOnDisk) {
  const std::string dir =
      (fs::temp_directory_path() / "dimsim-serve-warm-restart").string();
  fs::remove_all(dir);
  const std::string warm_run =
      R"({"id": "w", "kind": "run", "workload": "crc32", "warm": true})";

  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    std::vector<std::string> lines;
    auto session = session_into(server, lines);
    session->submit(warm_run);
    server.dispatch_pending();
    session->drain();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"warm_exported\": true"), std::string::npos);
    server.shutdown();
  }
  {
    ServerOptions options = manual_options();
    options.store_dir = dir;
    Server server(options);
    std::vector<std::string> lines;
    auto session = session_into(server, lines);
    session->submit(warm_run);
    server.dispatch_pending();
    session->drain();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"warm_preloaded\""), std::string::npos)
        << "restarted daemon did not preload the persisted warm pool";
    server.shutdown();
  }
  fs::remove_all(dir);
}

TEST_F(ServeServerTest, ShutdownRequestDrainsAdmittedWorkThenCloses) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 0, "kind": "run", "workload": "crc32"})");
  EXPECT_TRUE(session->submit(R"({"id": 1, "kind": "shutdown"})") == false ||
              server.shutting_down());
  // Admitted before shutdown: still answered.
  server.dispatch_pending();
  // Submitted after shutdown: rejected, not silently dropped.
  session->submit(R"({"id": 2, "kind": "run", "workload": "crc32"})");
  session->drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"shutdown\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\": \"shutting_down\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, UnknownWorkloadAnswersWithErrorCode) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "run", "workload": "nonesuch"})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\": \"unknown_workload\""), std::string::npos);
  server.shutdown();
}

TEST_F(ServeServerTest, AutoDispatchServesWithoutManualPump) {
  // The production configuration: dispatcher thread on, no manual pump.
  ServerOptions options;
  options.worker_threads = 2;
  Server server(options);
  std::vector<std::string> lines;
  std::mutex mutex;
  auto session = server.open_session([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
  });
  session->submit(R"({"id": 1, "kind": "run", "workload": "crc32"})");
  session->drain();
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"transparent\": true"), std::string::npos);
  }
  server.shutdown();
}

TEST_F(ServeServerTest, ServeFuzzRequestRunsCampaign) {
  Server server(manual_options());
  std::vector<std::string> lines;
  auto session = session_into(server, lines);
  session->submit(R"({"id": 1, "kind": "fuzz", "seeds": 2})");
  server.dispatch_pending();
  session->drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\": \"fuzz\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seeds_run\": 2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"clean\": true"), std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace dim::serve
