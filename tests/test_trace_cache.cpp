// Superblock trace-threaded dispatch (sim/trace_cache.hpp): the fast path
// must be bit-identical to the per-instruction slow path — architectural
// state, cycle accounting, stats, and (on the accelerated system) the
// stamped event stream. These tests pin that contract on hand-picked edge
// cases the fuzzer is unlikely to weight: self-modifying code, PC
// wraparound at 0xFFFFFFFC, page-straddling traces, branches into trace
// interiors, cache lifecycle across Machine::reset and snapshot restore,
// and instruction-limit cuts landing mid-trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "isa/encoder.hpp"
#include "obs/event.hpp"
#include "sim/machine.hpp"
#include "sim/trace_cache.hpp"
#include "snap/snapshot.hpp"

namespace dim::sim {
namespace {

void expect_same_state(const CpuState& slow, const CpuState& fast) {
  EXPECT_EQ(slow.regs, fast.regs);
  EXPECT_EQ(slow.pc, fast.pc);
  EXPECT_EQ(slow.hi, fast.hi);
  EXPECT_EQ(slow.lo, fast.lo);
  EXPECT_EQ(slow.halted, fast.halted);
  EXPECT_EQ(slow.output, fast.output);
}

// Runs `program` with the trace dispatch off and on; every RunResult field
// must match. Returns the fast run for extra assertions.
RunResult expect_dispatch_identical(const asmblr::Program& program,
                                    MachineConfig config = {}) {
  config.host_trace_dispatch = false;
  const RunResult slow = run_baseline(program, config);
  config.host_trace_dispatch = true;
  const RunResult fast = run_baseline(program, config);
  EXPECT_EQ(slow.instructions, fast.instructions);
  EXPECT_EQ(slow.cycles, fast.cycles);
  EXPECT_EQ(slow.hit_limit, fast.hit_limit);
  EXPECT_EQ(slow.memory_hash, fast.memory_hash);
  EXPECT_EQ(slow.icache_misses, fast.icache_misses);
  EXPECT_EQ(slow.dcache_misses, fast.dcache_misses);
  EXPECT_EQ(slow.mem_accesses, fast.mem_accesses);
  expect_same_state(slow.state, fast.state);
  return fast;
}

RunResult expect_dispatch_identical(const std::string& source,
                                    MachineConfig config = {}) {
  return expect_dispatch_identical(asmblr::assemble(source), config);
}

// A loop hot enough to form traces, with loads/stores and varied ALU work.
const char* kHotLoop = R"(
main:
        li   $t3, 200
        la   $t6, buf
loop:
        addiu $t0, $t0, 1
        sll   $t1, $t0, 2
        xor   $t2, $t1, $t3
        sw    $t2, 0($t6)
        lw    $t4, 0($t6)
        addu  $t5, $t5, $t4
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
        .data
buf:    .word 0
)";

TEST(TraceCache, FastMatchesSlowOnHotLoop) {
  const asmblr::Program p = asmblr::assemble(kHotLoop);
  expect_dispatch_identical(p);

  // And the fast path actually ran traces (not a vacuous pass).
  MachineConfig fast;
  fast.host_trace_dispatch = true;
  Machine m(p, fast);
  m.run();
  const TraceStats& st = m.trace_cache().stats();
  EXPECT_GT(st.traces_built, 0u);
  EXPECT_GT(st.executions, 0u);
  EXPECT_GT(st.ops_executed, 0u);
  // Default timing (scalar, no caches) permits folded commits.
  EXPECT_GT(st.folded_executions, 0u);
}

TEST(TraceCache, FastMatchesSlowUnderNonFoldableTimings) {
  // Dual issue, instruction cache, data cache: each disables the folded
  // commit and forces the per-op TimedEnv, which must still be identical.
  MachineConfig dual;
  dual.timing.issue_width = 2;
  expect_dispatch_identical(kHotLoop, dual);

  MachineConfig icache;
  icache.timing.icache.enabled = true;
  expect_dispatch_identical(kHotLoop, icache);

  MachineConfig dcache;
  dcache.timing.dcache.enabled = true;
  expect_dispatch_identical(kHotLoop, dcache);

  MachineConfig all;
  all.timing.issue_width = 2;
  all.timing.icache.enabled = true;
  all.timing.dcache.enabled = true;
  expect_dispatch_identical(kHotLoop, all);
}

TEST(TraceCache, FastMatchesSlowWithHiLoTraces) {
  // mult/div/mfhi/mflo inside the hot loop: HI/LO latency interacts with
  // the stall clock, so these traces are never folded — but the timed
  // path must agree cycle for cycle (incl. div-by-zero semantics).
  expect_dispatch_identical(R"(
main:
        li   $t3, 120
        li   $t6, 7
loop:
        addiu $t0, $t0, 3
        mult  $t0, $t6
        mflo  $t1
        addu  $t5, $t5, $t1
        div   $t0, $t3
        mfhi  $t2
        xor   $t5, $t5, $t2
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
)");
}

TEST(TraceCache, SelfModifyingPatchLoopMatchesSlowPath) {
  // Each iteration loads a donor instruction word and stores it over the
  // `site` instruction before executing it. The store lands inside the
  // trace being executed (bail), and the changed word makes revalidation
  // rebuild the trace on re-entry. Results must still match the slow path
  // exactly.
  const asmblr::Program p = asmblr::assemble(R"(
main:
        li   $t3, 60
        la   $t6, donor_a
        la   $t7, donor_b
        la   $t8, site
loop:
        andi  $t4, $t3, 1
        beq   $t4, $zero, even
        lw    $t1, 0($t6)
        j     patch
even:
        lw    $t1, 0($t7)
patch:
        sw    $t1, 0($t8)
site:
        addiu $t5, $t5, 1
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
donor_a:
        addiu $t5, $t5, 3
donor_b:
        addiu $t5, $t5, 5
)");
  expect_dispatch_identical(p);

  MachineConfig fast;
  fast.host_trace_dispatch = true;
  Machine m(p, fast);
  m.run();
  const TraceStats& st = m.trace_cache().stats();
  EXPECT_GT(st.revalidation_rebuilds, 0u) << "patched word never noticed";
  EXPECT_GT(st.smc_bails, 0u) << "store into the live trace never bailed";
}

TEST(TraceCache, SameWordRewriteBailsWithoutRebuilding) {
  // Rewriting an instruction with its own value must still bail out of
  // the running trace (the engine is conservative about stores into its
  // code range) but must NOT rebuild: revalidation sees identical words.
  const asmblr::Program p = asmblr::assemble(R"(
main:
        li   $t3, 50
        la   $t6, loop
loop:
        lw    $t1, 0($t6)
        sw    $t1, 0($t6)
        addiu $t0, $t0, 1
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
)");
  expect_dispatch_identical(p);

  MachineConfig fast;
  fast.host_trace_dispatch = true;
  Machine m(p, fast);
  m.run();
  const TraceStats& st = m.trace_cache().stats();
  EXPECT_GT(st.smc_bails, 0u);
  EXPECT_EQ(st.revalidation_rebuilds, 0u);
}

// Rebases a single-segment code-only program (no absolute addressing:
// branches are PC-relative, so the image is position-independent).
asmblr::Program rebase(const std::string& source, uint32_t base) {
  asmblr::Program p = asmblr::assemble(source);
  for (size_t i = 1; i < p.segments.size(); ++i) {
    EXPECT_TRUE(p.segments[i].bytes.empty()) << "rebase needs a code-only program";
  }
  EXPECT_EQ(p.entry, p.segments[0].base);
  p.segments[0].base = base;
  p.entry = base;
  return p;
}

TEST(TraceCache, StraightLineRunWrapsPcAtTopOfMemory) {
  // Init word at 0xFFFFFFDC, then eight straight-line adds filling
  // 0xFFFFFFE0..0xFFFFFFFC; execution falls off the top and the PC wraps
  // to 0, where the loop tail (counter + backward branch across the wrap)
  // lives. Trace formation must stop cleanly at the boundary and the
  // fast path must retire the identical stream.
  asmblr::Program top = rebase(R"(
main:
        addiu $t3, $zero, 80
        addiu $t0, $t0, 1
        addiu $t0, $t0, 2
        addiu $t0, $t0, 3
        addiu $t0, $t0, 4
        addiu $t0, $t0, 5
        addiu $t0, $t0, 6
        addiu $t0, $t0, 7
        addiu $t0, $t0, 8
)",
                               0xFFFFFFDCu);
  asmblr::Program low = asmblr::assemble(R"(
main:
        addiu $t1, $t1, 1
        addiu $t3, $t3, -1
        break
        break
)");
  // Patch word 2 with `bne $t3, $zero, <back to 0xFFFFFFE0>`: from
  // pc = 0x8 the target is pc + 4 + (simm << 2) in uint32 arithmetic, so
  // simm = (0xFFFFFFE0 - 0xC) >> 2 = -11 wraps backwards across zero.
  isa::Instr bne;
  bne.op = isa::Op::kBne;
  bne.rs = 11;  // $t3
  bne.rt = 0;
  bne.imm16 = static_cast<uint16_t>(-11);
  const uint32_t word = isa::encode(bne);
  for (int b = 0; b < 4; ++b) {
    low.segments[0].bytes[8 + static_cast<size_t>(b)] =
        static_cast<uint8_t>(word >> (8 * b));
  }

  asmblr::Program wrap;
  wrap.entry = top.entry;
  wrap.segments = top.segments;
  asmblr::Segment zero_seg;
  zero_seg.base = 0;
  zero_seg.bytes = low.segments[0].bytes;
  wrap.segments.push_back(zero_seg);

  const RunResult fast = expect_dispatch_identical(wrap);
  EXPECT_FALSE(fast.hit_limit);
  EXPECT_EQ(fast.state.regs[8], 80u * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));  // $t0
  EXPECT_EQ(fast.state.regs[9], 80u);                                    // $t1
}

TEST(TraceCache, TraceStraddlesDataPageBoundary) {
  // Loop head four words below a 64 KiB page boundary: the superblock
  // spans two pages, so revalidation and the per-page word check run on
  // both halves. The terminal branch sits past the boundary.
  const asmblr::Program p = rebase(R"(
main:
        addiu $t3, $zero, 150
loop:
        addiu $t0, $t0, 1
        addiu $t0, $t0, 2
        addiu $t0, $t0, 3
        addiu $t0, $t0, 4
        addiu $t1, $t1, 5
        addiu $t1, $t1, 6
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
)",
                                   0x0040FFECu);  // loop head at 0x0040FFF0
  const RunResult fast = expect_dispatch_identical(p);
  EXPECT_FALSE(fast.hit_limit);
}

TEST(TraceCache, BackwardBranchIntoTraceInterior) {
  // The inner branch re-enters the middle of the superblock formed from
  // `head`; the interior PC gets its own trace slot and both must stay
  // bit-identical to the slow path.
  const asmblr::Program p = asmblr::assemble(R"(
main:
        addiu $t4, $zero, 40
outer:
        addiu $t3, $zero, 12
head:
        addiu $t0, $t0, 1
mid:
        addiu $t0, $t0, 2
        addiu $t1, $t1, 3
        addiu $t3, $t3, -1
        bne   $t3, $zero, mid
        addiu $t4, $t4, -1
        bne   $t4, $zero, outer
        break
)");
  const RunResult fast = expect_dispatch_identical(p);
  EXPECT_FALSE(fast.hit_limit);

  MachineConfig cfg;
  cfg.host_trace_dispatch = true;
  Machine m(p, cfg);
  m.run();
  const uint32_t head = p.symbol("head");
  const uint32_t mid = p.symbol("mid");
  ASSERT_NE(m.trace_cache().peek(mid), nullptr) << "interior head never formed";
  const Trace* t = m.trace_cache().peek(head);
  if (t != nullptr) {
    EXPECT_GE(t->ops.size(), TraceCache::kMinOps);
    EXPECT_LE(t->ops.size(), TraceCache::kMaxOps);
  }
}

TEST(TraceCache, InstructionLimitCutsMidTrace) {
  // An odd max_instructions lands inside a superblock; the fast path must
  // stop at exactly the same instruction, PC and cycle as the slow path.
  for (const uint64_t limit : {7ull, 100ull, 101ull, 999ull, 1003ull}) {
    MachineConfig cfg;
    cfg.max_instructions = limit;
    const RunResult fast = expect_dispatch_identical(kHotLoop, cfg);
    EXPECT_TRUE(fast.hit_limit);
    EXPECT_EQ(fast.instructions, limit);
  }
}

TEST(TraceCache, MachineResetClearsHostCaches) {
  // reset(programB) after running programA must behave exactly like a
  // fresh machine on programB: stale decoded words or traces from A
  // surviving the image swap would corrupt the run (the original bug this
  // clear() contract pins).
  const asmblr::Program a = asmblr::assemble(kHotLoop);
  const asmblr::Program b = asmblr::assemble(R"(
main:
        li   $t3, 90
loop:
        addiu $t0, $t0, 7
        sll   $t1, $t0, 1
        subu  $t2, $t1, $t3
        addiu $t3, $t3, -1
        bne   $t3, $zero, loop
        break
)");
  MachineConfig cfg;
  cfg.host_trace_dispatch = true;

  Machine reused(a, cfg);
  reused.run();
  EXPECT_GT(reused.trace_cache().stats().traces_built, 0u);
  reused.reset(b);
  EXPECT_EQ(reused.trace_cache().stats().traces_built, 0u);
  const RunResult after_reset = reused.run();

  Machine fresh(b, cfg);
  const RunResult direct = fresh.run();

  EXPECT_EQ(direct.instructions, after_reset.instructions);
  EXPECT_EQ(direct.cycles, after_reset.cycles);
  EXPECT_EQ(direct.memory_hash, after_reset.memory_hash);
  expect_same_state(direct.state, after_reset.state);
  EXPECT_EQ(fresh.trace_cache().stats().traces_built,
            reused.trace_cache().stats().traces_built);
  EXPECT_EQ(fresh.trace_cache().stats().executions,
            reused.trace_cache().stats().executions);
}

std::string stats_json(const accel::AccelStats& stats) {
  std::ostringstream out;
  accel::write_json(out, stats, "cmp");
  return out.str();
}

TEST(TraceCache, AcceleratedStatsAndEventsIdentical) {
  // On the accelerated system the fast path threads through the same
  // retire/observe sequence as the slow loop; the stats document and the
  // stamped event stream (instruction/cycle stamps included) must match.
  const asmblr::Program p = asmblr::assemble(kHotLoop);
  accel::SystemConfig base = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);

  obs::RecordingSink slow_sink;
  accel::SystemConfig slow_cfg = base;
  slow_cfg.machine.host_trace_dispatch = false;
  slow_cfg.event_sink = &slow_sink;
  accel::AcceleratedSystem slow(p, slow_cfg);
  const accel::AccelStats slow_stats = slow.run();

  obs::RecordingSink fast_sink;
  accel::SystemConfig fast_cfg = base;
  fast_cfg.machine.host_trace_dispatch = true;
  fast_cfg.event_sink = &fast_sink;
  accel::AcceleratedSystem fast(p, fast_cfg);
  const accel::AccelStats fast_stats = fast.run();

  EXPECT_EQ(stats_json(slow_stats), stats_json(fast_stats));
  ASSERT_EQ(slow_sink.events().size(), fast_sink.events().size());
  for (size_t i = 0; i < slow_sink.events().size(); ++i) {
    EXPECT_EQ(obs::format_event(slow_sink.events()[i]),
              obs::format_event(fast_sink.events()[i]))
        << "event " << i;
  }
}

TEST(TraceCache, RunUntilBoundariesSplitTracesCorrectly) {
  // Pausing at arbitrary instruction boundaries — including ones that land
  // mid-superblock — and continuing must retire the identical stream as
  // one uninterrupted fast run, and as the slow path.
  const asmblr::Program p = asmblr::assemble(kHotLoop);
  accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);

  cfg.machine.host_trace_dispatch = true;
  accel::AcceleratedSystem straight(p, cfg);
  const accel::AccelStats whole = straight.run();

  accel::AcceleratedSystem chunked(p, cfg);
  uint64_t boundary = 97;
  accel::AccelStats paused = chunked.run_until(boundary);
  while (!paused.final_state.halted && paused.instructions >= boundary) {
    boundary += 97;
    paused = chunked.run_until(boundary);
  }
  EXPECT_EQ(stats_json(whole), stats_json(paused));

  cfg.machine.host_trace_dispatch = false;
  accel::AcceleratedSystem slow(p, cfg);
  const accel::AccelStats slow_stats = slow.run();
  // host_trace_dispatch is host-side only, so the slow document is the
  // same one.
  EXPECT_EQ(stats_json(slow_stats), stats_json(whole));
}

TEST(TraceCache, SnapshotRestoreClearsHostCaches) {
  // Restore into a system whose decode/trace caches are hot from a full
  // prior run: restore_snapshot_payload must drop them (page pointers are
  // invalidated by restore_pages, and trace heat belongs to the old run),
  // after which the continuation equals the straight run bit for bit.
  const asmblr::Program p = asmblr::assemble(kHotLoop);
  accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.machine.host_trace_dispatch = true;

  accel::AcceleratedSystem straight(p, cfg);
  const accel::AccelStats whole = straight.run();

  accel::AcceleratedSystem source(p, cfg);
  source.run_until(301);
  const std::vector<uint8_t> payload = snap::encode_snapshot(source, p);

  accel::AcceleratedSystem target(p, cfg);
  target.run();  // dirty: caches hot, state at halt
  EXPECT_GT(target.trace_cache().stats().traces_built, 0u);
  snap::restore_snapshot_payload(target, payload, p);
  EXPECT_EQ(target.trace_cache().stats().traces_built, 0u)
      << "restore left stale traces alive";
  const accel::AccelStats resumed = target.run();

  EXPECT_EQ(stats_json(whole), stats_json(resumed));
}

}  // namespace
}  // namespace dim::sim
