// Transparency and sane timing with the I/D cache models enabled — the
// functional path must be untouched by any timing configuration, and the
// accelerated system must charge the array's memory rows the same D-cache
// misses the baseline would suffer (paper §4.3).
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "dimsim.hpp"
#include "work/workload.hpp"

namespace dim::accel {
namespace {

sim::MachineConfig cached_machine() {
  sim::MachineConfig machine;
  machine.timing.icache.enabled = true;
  machine.timing.icache.size_bytes = 2048;
  machine.timing.icache.miss_penalty = 12;
  machine.timing.dcache.enabled = true;
  machine.timing.dcache.size_bytes = 4096;
  machine.timing.dcache.miss_penalty = 18;
  return machine;
}

class CachedTransparency : public ::testing::TestWithParam<std::string> {};

TEST_P(CachedTransparency, IdenticalResultsWithRealisticMemory) {
  const auto wl = work::make_workload(GetParam(), 1);
  const auto prog = asmblr::assemble(wl.source);
  const sim::MachineConfig machine = cached_machine();

  const auto base = baseline_as_stats(prog, machine);
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.machine = machine;
  const auto st = run_accelerated(prog, cfg);

  EXPECT_EQ(st.final_state.output, wl.expected_output);
  EXPECT_EQ(st.final_state.reg_hash(), base.final_state.reg_hash());
  EXPECT_EQ(st.memory_hash, base.memory_hash);
  EXPECT_LE(st.cycles, base.cycles);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CachedTransparency,
                         ::testing::Values("crc32", "quicksort", "susan_e", "rijndael_e",
                                           "dijkstra", "rawaudio_d"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(CachedTiming, FunctionalResultsIndependentOfTiming) {
  // Same program under wildly different timing models: identical
  // architectural outcome, different cycle counts.
  const auto wl = work::make_workload("bitcount", 1);
  const auto prog = asmblr::assemble(wl.source);

  const auto fast = baseline_as_stats(prog, sim::MachineConfig{});
  const auto slow = baseline_as_stats(prog, cached_machine());
  EXPECT_EQ(fast.final_state.output, slow.final_state.output);
  EXPECT_EQ(fast.memory_hash, slow.memory_hash);
  EXPECT_EQ(fast.instructions, slow.instructions);
  EXPECT_LT(fast.cycles, slow.cycles);  // misses only ever add cycles
}

TEST(CachedTiming, MissPenaltyMonotonicity) {
  const auto wl = work::make_workload("dijkstra", 1);
  const auto prog = asmblr::assemble(wl.source);
  uint64_t prev = 0;
  for (uint32_t penalty : {0u, 5u, 20u, 80u}) {
    sim::MachineConfig machine;
    machine.timing.dcache.enabled = penalty > 0;
    machine.timing.dcache.miss_penalty = penalty;
    const auto r = baseline_as_stats(prog, machine);
    EXPECT_GE(r.cycles, prev);
    prev = r.cycles;
  }
}

TEST(CachedTiming, ArrayChargedForMissesToo) {
  // With a tiny D-cache, the accelerated run must report dcache stalls
  // inside array execution (they appear as extra array cycles).
  const auto wl = work::make_workload("susan_s", 1);
  const auto prog = asmblr::assemble(wl.source);
  SystemConfig with_cache = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  with_cache.machine.timing.dcache.enabled = true;
  with_cache.machine.timing.dcache.size_bytes = 512;
  with_cache.machine.timing.dcache.miss_penalty = 30;
  SystemConfig no_cache = SystemConfig::with(rra::ArrayShape::config2(), 64, false);

  const auto st_cache = run_accelerated(prog, with_cache);
  const auto st_fast = run_accelerated(prog, no_cache);
  EXPECT_GT(st_cache.array_cycles, st_fast.array_cycles);
  EXPECT_EQ(st_cache.final_state.output, st_fast.final_state.output);
}

}  // namespace
}  // namespace dim::accel
