// Predicated if-conversion (hammock/diamond merging): writeback gating on
// registers, HI/LO and stores for both predicate directions, the arm-cap
// fallback to speculation, and end-to-end transparency of an if-converted
// diamond against the plain machine.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bt/translator.hpp"
#include "rra/array_exec.hpp"
#include "sim/executor.hpp"

namespace dim::rra {
namespace {

using isa::Instr;
using isa::Op;

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

bt::TranslatorParams pred_params() {
  bt::TranslatorParams p;
  p.shape = ArrayShape::config1();
  p.predication = true;
  return p;
}

// A hand-built diamond:
//   0x100  addiu $t0, $0, 5
//   0x104  beq   $s0, $s1, taken       (pred-def)
//   0x108  addiu $t1, $0, 1            (fall-through arm)
//   0x10C  sw    $t1, 0($gp)
//   0x110  b     join                  (join jump, beq $0,$0)
//   0x114  addiu $t1, $0, 2            (taken arm)
//   0x118  mult  $t0, $t0
//   join = 0x11C
Configuration build_diamond() {
  bt::ConfigBuilder b(0x100, pred_params());
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  const std::vector<bt::HammockOp> not_taken = {
      {imm(Op::kAddiu, 9, 0, 1), 0x108},
      {imm(Op::kSw, 9, 28, 0), 0x10C},
  };
  const bt::HammockOp join_jump{imm(Op::kBeq, 0, 0, 2), 0x110};
  const std::vector<bt::HammockOp> taken = {
      {imm(Op::kAddiu, 9, 0, 2), 0x114},
      {r3(Op::kMult, 0, 8, 8), 0x118},
  };
  EXPECT_TRUE(b.try_merge_hammock(imm(Op::kBeq, 17, 16, 3), 0x104, not_taken,
                                  &join_jump, taken));
  EXPECT_EQ(b.pred_slots(), 1);
  return b.finalize(0x11C);
}

TEST(Predication, FallThroughArmWritesTakenArmSquashed) {
  const Configuration c = build_diamond();
  EXPECT_EQ(c.pred_slots, 1);

  sim::CpuState s;
  s.regs[16] = 1;  // $s0 != $s1: branch not taken, fall-through arm active
  s.regs[17] = 2;
  s.regs[28] = 0x10008000;
  s.hi = 0xAAAA;
  s.lo = 0xBBBB;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});

  EXPECT_FALSE(out.misspeculated);  // a pred-def branch can never misspeculate
  EXPECT_EQ(out.next_pc, 0x11Cu);
  EXPECT_EQ(s.regs[8], 5u);
  EXPECT_EQ(s.regs[9], 1u);                      // fall-through write survives
  EXPECT_EQ(m.read32(0x10008000), 1u);           // fall-through store drains
  EXPECT_EQ(s.hi, 0xAAAAu);                      // taken arm's mult squashed
  EXPECT_EQ(s.lo, 0xBBBBu);
  // The join jump retires on the fall-through arm: its branch outcome is
  // recorded (so the predictor trains exactly like the software path).
  ASSERT_EQ(out.branch_outcomes.size(), 2u);
  EXPECT_EQ(out.branch_outcomes[0].pc, 0x104u);
  EXPECT_FALSE(out.branch_outcomes[0].taken);
  EXPECT_TRUE(out.branch_outcomes[0].matched);
  EXPECT_EQ(out.branch_outcomes[1].pc, 0x110u);
  EXPECT_TRUE(out.branch_outcomes[1].taken);
}

TEST(Predication, TakenArmWritesFallThroughStoreSuppressed) {
  const Configuration c = build_diamond();

  sim::CpuState s;
  s.regs[16] = 7;  // $s0 == $s1: branch taken, taken arm active
  s.regs[17] = 7;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  m.write32(0x10008000, 0xDEADBEEF);
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});

  EXPECT_FALSE(out.misspeculated);
  EXPECT_EQ(out.next_pc, 0x11Cu);
  EXPECT_EQ(s.regs[9], 2u);                      // taken-arm write survives
  EXPECT_EQ(m.read32(0x10008000), 0xDEADBEEFu);  // fall-through store suppressed
  EXPECT_FALSE(out.wrote_memory);
  EXPECT_EQ(s.lo, 25u);                          // taken-arm mult commits HI/LO
  EXPECT_EQ(s.hi, 0u);
  // Join jump is not on the taken path: only the pred-def branch retires.
  ASSERT_EQ(out.branch_outcomes.size(), 1u);
  EXPECT_EQ(out.branch_outcomes[0].pc, 0x104u);
  EXPECT_TRUE(out.branch_outcomes[0].taken);
  EXPECT_TRUE(out.branch_outcomes[0].matched);
}

TEST(Predication, SquashedOpsToggleFusButDoNotRetire) {
  const Configuration c = build_diamond();
  sim::CpuState s;
  s.regs[16] = 1;  // not taken: taken arm (addiu + mult) squashed
  s.regs[17] = 2;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  // Committed: leading addiu, pred-def, arm addiu, arm sw, join jump = 5.
  EXPECT_EQ(out.committed_ops, 5);
  // The squashed mult still toggles its multiplier (power model sees it).
  EXPECT_EQ(out.mul_ops, 1);
}

TEST(Predication, PredSlotCapRejectsMerge) {
  bt::TranslatorParams p = pred_params();
  p.max_pred_slots = 0;
  bt::ConfigBuilder b(0x100, p);
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  const std::vector<bt::HammockOp> arm = {{imm(Op::kAddiu, 9, 0, 1), 0x108}};
  EXPECT_FALSE(b.try_merge_hammock(imm(Op::kBeq, 17, 16, 1), 0x104, arm,
                                   nullptr, {}));
  EXPECT_EQ(b.pred_slots(), 0);
}

TEST(Predication, ArmRejectsControlFlowAndUnsupportedOps) {
  bt::ConfigBuilder b(0x100, pred_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  // A branch inside an arm is never mergeable (arms are straight-line).
  const std::vector<bt::HammockOp> arm = {{imm(Op::kBne, 9, 8, 4), 0x108}};
  EXPECT_FALSE(b.try_merge_hammock(imm(Op::kBeq, 17, 16, 1), 0x104, arm,
                                   nullptr, {}));
}

}  // namespace
}  // namespace dim::rra

namespace dim::accel {
namespace {

void expect_transparent(const SpeedupResult& r) {
  EXPECT_EQ(r.baseline.final_state.output, r.accelerated.final_state.output);
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash());
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash);
  EXPECT_FALSE(r.accelerated.hit_limit);
}

// A hot loop with a data-dependent diamond in the body: the branch
// alternates every iteration, so the bimodal gate never saturates in the
// matching direction and speculation alone cannot merge past it.
const char* kDiamondLoop = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 300
        li $s1, 0
        li $s2, 0
        la $s4, buf
loop:   andi $t0, $s2, 1
        addu $t1, $s1, $s2
        bnez $t0, odd
        addiu $s1, $s1, 1
        sw $s1, 0($s4)
        b join
odd:    addiu $s1, $s1, 2
join:   addiu $s2, $s2, 1
        bne $s2, $s0, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

SystemConfig pred_config(bool predication) {
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  cfg.predication = predication;
  return cfg;
}

TEST(Predication, DiamondLoopTransparentAndMerged) {
  const auto prog = asmblr::assemble(kDiamondLoop);
  const auto r = measure_speedup(prog, pred_config(true));
  expect_transparent(r);
  // Positive proof the merge path fired (not the speculation fallback).
  EXPECT_GT(r.accelerated.hammocks_merged, 0u);
}

TEST(Predication, PredicationOffNeverMerges) {
  const auto prog = asmblr::assemble(kDiamondLoop);
  const auto r = measure_speedup(prog, pred_config(false));
  expect_transparent(r);
  EXPECT_EQ(r.accelerated.hammocks_merged, 0u);
}

TEST(Predication, PredicationBeatsAlternatingBranchSpeculation) {
  // On this alternating branch, speculation is useless (the counter never
  // saturates the right way), so if-conversion must win cycles.
  const auto prog = asmblr::assemble(kDiamondLoop);
  SystemConfig spec = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  SystemConfig pred = pred_config(true);
  const auto spec_run = run_accelerated(prog, spec);
  const auto pred_run = run_accelerated(prog, pred);
  EXPECT_LT(pred_run.cycles, spec_run.cycles);
}

TEST(Predication, OversizedArmFallsBackToSpeculation) {
  // The fall-through arm is 6 instructions — over max_hammock_ops = 4 — so
  // the hammock is rejected and the run must stay transparent via the
  // plain speculation path.
  const char* wide_arm = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 200
        li $s1, 0
        li $s2, 0
        la $s4, buf
loop:   andi $t0, $s2, 1
        addu $t1, $s1, $s2
        bnez $t0, skip
        addiu $s1, $s1, 1
        addiu $s1, $s1, 2
        addiu $s1, $s1, 3
        addiu $s1, $s1, 4
        addiu $s1, $s1, 5
        sw $s1, 0($s4)
skip:   addiu $s2, $s2, 1
        bne $s2, $s0, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(wide_arm);
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.predication = true;
  const auto r = measure_speedup(prog, cfg);
  expect_transparent(r);
  EXPECT_EQ(r.accelerated.hammocks_merged, 0u);
}

TEST(Predication, ShortIfThenHammockMerges) {
  // If-then (no else arm, no join jump): forward branch over two ops.
  const char* if_then = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 300
        li $s1, 0
        li $s2, 0
        la $s4, buf
loop:   andi $t0, $s2, 1
        addu $t1, $s1, $s2
        bnez $t0, skip
        addiu $s1, $s1, 3
        sw $s1, 0($s4)
skip:   addiu $s2, $s2, 1
        bne $s2, $s0, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(if_then);
  const auto r = measure_speedup(prog, pred_config(true));
  expect_transparent(r);
  EXPECT_GT(r.accelerated.hammocks_merged, 0u);
}

}  // namespace
}  // namespace dim::accel
