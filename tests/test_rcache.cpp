#include <gtest/gtest.h>

#include "bt/rcache.hpp"

namespace dim::bt {
namespace {

rra::Configuration cfg(uint32_t pc, int ops = 5) {
  rra::Configuration c;
  c.start_pc = pc;
  c.ops.resize(static_cast<size_t>(ops));
  return c;
}

TEST(ReconfigCache, MissThenHit) {
  ReconfigCache rc(4);
  // A dispatch lookup of an absent PC returns nothing and counts nothing:
  // the system probes on every retired PC, and the miss counter must not
  // absorb the whole non-translated instruction stream. The translator
  // registers the genuine miss via note_miss().
  EXPECT_EQ(rc.lookup(0x100), nullptr);
  EXPECT_EQ(rc.misses(), 0u);
  rc.note_miss();
  rc.insert(cfg(0x100));
  rra::Configuration* c = rc.lookup(0x100);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start_pc, 0x100u);
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.misses(), 1u);
}

TEST(ReconfigCache, HitAndMissTotalsAreIndependent) {
  ReconfigCache rc(4);
  rc.insert(cfg(0x100));
  // 3 counted hits, 2 translator-registered misses, any number of pure
  // probes: the totals reflect exactly the counted events.
  EXPECT_NE(rc.lookup(0x100), nullptr);
  EXPECT_NE(rc.lookup(0x100), nullptr);
  EXPECT_NE(rc.lookup(0x100), nullptr);
  rc.note_miss();
  rc.note_miss();
  EXPECT_NE(rc.probe(0x100), nullptr);
  EXPECT_EQ(rc.probe(0x999), nullptr);
  EXPECT_EQ(rc.lookup(0x999), nullptr);
  EXPECT_EQ(rc.hits(), 3u);
  EXPECT_EQ(rc.misses(), 2u);
}

TEST(ReconfigCache, ProbeHasNoStatsOrRecencySideEffects) {
  ReconfigCache rc(2, Replacement::kLru);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  EXPECT_NE(rc.probe(0x100), nullptr);  // must NOT refresh recency
  EXPECT_EQ(rc.hits(), 0u);
  EXPECT_EQ(rc.misses(), 0u);
  rc.insert(cfg(0x300));  // evicts 0x100 (probe did not protect it)
  EXPECT_EQ(rc.probe(0x100), nullptr);
  EXPECT_NE(rc.probe(0x200), nullptr);
}

TEST(ReconfigCache, FifoEvictionOrder) {
  ReconfigCache rc(3);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  rc.insert(cfg(0x300));
  // Hits must NOT refresh FIFO position (unlike LRU).
  EXPECT_NE(rc.lookup(0x100), nullptr);
  rc.insert(cfg(0x400));  // evicts 0x100, the oldest inserted
  EXPECT_EQ(rc.lookup(0x100), nullptr);
  EXPECT_NE(rc.lookup(0x200), nullptr);
  EXPECT_EQ(rc.evictions(), 1u);
  rc.insert(cfg(0x500));  // evicts 0x200
  EXPECT_EQ(rc.lookup(0x200), nullptr);
  EXPECT_NE(rc.lookup(0x300), nullptr);
}

TEST(ReconfigCache, ReplacementKeepsFifoPosition) {
  ReconfigCache rc(2);
  rc.insert(cfg(0x100, 5));
  rc.insert(cfg(0x200, 5));
  rc.insert(cfg(0x100, 9));  // replaces in place (speculation extension)
  EXPECT_EQ(rc.size(), 2u);
  EXPECT_EQ(rc.lookup(0x100)->ops.size(), 9u);
  rc.insert(cfg(0x300));  // 0x100 is still the oldest -> evicted
  EXPECT_EQ(rc.lookup(0x100), nullptr);
  EXPECT_NE(rc.lookup(0x200), nullptr);
}

TEST(ReconfigCache, Flush) {
  ReconfigCache rc(4);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  rc.flush(0x100);
  EXPECT_EQ(rc.lookup(0x100), nullptr);
  EXPECT_EQ(rc.flushes(), 1u);
  EXPECT_EQ(rc.size(), 1u);
  rc.flush(0x999);  // flushing a non-entry is a no-op
  EXPECT_EQ(rc.flushes(), 1u);
  // After a flush, capacity is available again without eviction.
  rc.insert(cfg(0x300));
  rc.insert(cfg(0x400));
  rc.insert(cfg(0x500));
  EXPECT_EQ(rc.evictions(), 0u);
  EXPECT_EQ(rc.size(), 4u);
}

TEST(ReconfigCache, FifoOrderExposedForInspection) {
  ReconfigCache rc(8);
  rc.insert(cfg(3));
  rc.insert(cfg(1));
  rc.insert(cfg(2));
  ASSERT_EQ(rc.fifo_order().size(), 3u);
  EXPECT_EQ(rc.fifo_order()[0], 3u);
  EXPECT_EQ(rc.fifo_order()[1], 1u);
  EXPECT_EQ(rc.fifo_order()[2], 2u);
}

TEST(ReconfigCache, ZeroSlotsNeverStores) {
  ReconfigCache rc(0);
  rc.insert(cfg(0x100));
  EXPECT_EQ(rc.lookup(0x100), nullptr);
  EXPECT_EQ(rc.size(), 0u);
}

TEST(ReconfigCache, ZeroSlotsWritesNoWords) {
  // Regression: a zero-slot cache stores nothing, so it must report zero
  // words written — the software-BT cost model charges cycles per written
  // word, and used to bill configurations that were silently dropped.
  ReconfigCache rc(0);
  rc.insert(cfg(0x100, 5));
  rc.insert(cfg(0x200, 7));
  EXPECT_EQ(rc.words_written(), 0u);
  EXPECT_EQ(rc.insertions(), 0u);
}

TEST(ReconfigCache, WordsWrittenAccumulates) {
  ReconfigCache rc(4);
  rc.insert(cfg(0x100, 5));
  rc.insert(cfg(0x200, 7));
  rc.insert(cfg(0x100, 9));  // replacement rewrites the entry: counted
  EXPECT_EQ(rc.words_written(), 21u);
}

TEST(ReconfigCache, LruHitsRefreshPosition) {
  ReconfigCache rc(3, Replacement::kLru);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  rc.insert(cfg(0x300));
  EXPECT_NE(rc.lookup(0x100), nullptr);  // refreshes 0x100
  rc.insert(cfg(0x400));                 // evicts 0x200, the least recent
  EXPECT_NE(rc.lookup(0x100), nullptr);
  EXPECT_EQ(rc.lookup(0x200), nullptr);
  EXPECT_NE(rc.lookup(0x300), nullptr);
}

TEST(ReconfigCache, LruReplacementRefreshesRecency) {
  // Regression: under LRU, an in-place rewrite (speculation extension) is a
  // use of the entry and must move it to MRU. The stale-recency bug left the
  // rewritten entry at its old position, so the very configuration DIM had
  // just extended was the next eviction victim.
  ReconfigCache rc(2, Replacement::kLru);
  rc.insert(cfg(0x100, 5));
  rc.insert(cfg(0x200, 5));
  rc.insert(cfg(0x100, 9));  // rewrite: 0x100 becomes most recent
  EXPECT_EQ(rc.size(), 2u);
  EXPECT_EQ(rc.peek(0x100)->ops.size(), 9u);
  rc.insert(cfg(0x300));  // 0x200 is now the least recent -> evicted
  EXPECT_NE(rc.peek(0x100), nullptr);
  EXPECT_EQ(rc.peek(0x200), nullptr);
  EXPECT_NE(rc.peek(0x300), nullptr);
}

TEST(ReconfigCache, FifoIsTheDefaultPolicy) {
  ReconfigCache rc(4);
  EXPECT_EQ(rc.policy(), Replacement::kFifo);
}

TEST(ReconfigCache, PeekHasNoSideEffects) {
  ReconfigCache rc(2, Replacement::kLru);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  EXPECT_NE(rc.peek(0x100), nullptr);  // must NOT refresh recency
  EXPECT_EQ(rc.hits(), 0u);
  rc.insert(cfg(0x300));  // evicts 0x100 (peek did not protect it)
  EXPECT_EQ(rc.peek(0x100), nullptr);
  EXPECT_NE(rc.peek(0x200), nullptr);
}

TEST(ReconfigCache, ContainsDoesNotCountStats) {
  ReconfigCache rc(4);
  rc.insert(cfg(0x100));
  EXPECT_TRUE(rc.contains(0x100));
  EXPECT_FALSE(rc.contains(0x200));
  EXPECT_EQ(rc.hits(), 0u);
  EXPECT_EQ(rc.misses(), 0u);
}

// --- Revision stamping (loop residency) -------------------------------------
// Every cache write stamps a fresh monotone revision so an array-resident
// copy of an entry's old contents is detectable as stale at dispatch.

TEST(ReconfigCache, InsertStampsFreshMonotonicRevisions) {
  ReconfigCache rc(4);
  rc.insert(cfg(0x100));
  rc.insert(cfg(0x200));
  const uint64_t r1 = rc.peek(0x100)->revision;
  const uint64_t r2 = rc.peek(0x200)->revision;
  EXPECT_NE(r1, 0u);
  EXPECT_GT(r2, r1);
  // A rewrite (speculative extension re-inserting the same start PC) is a
  // fresh stamp: the resident latch must see the entry change identity.
  rc.insert(cfg(0x100, 7));
  EXPECT_GT(rc.peek(0x100)->revision, r2);
  EXPECT_EQ(rc.counters().revision_counter, 3u);
}

TEST(ReconfigCache, EvictAndReinsertNeverReusesARevision) {
  ReconfigCache rc(1);
  rc.insert(cfg(0x100));
  const uint64_t r1 = rc.peek(0x100)->revision;
  rc.insert(cfg(0x200));  // evicts 0x100 under pressure
  rc.insert(cfg(0x100));  // re-translation gets a new identity
  EXPECT_GT(rc.peek(0x100)->revision, r1);
}

TEST(ReconfigCache, PreloadKeepsRevisionButAdvancesCounter) {
  // Warm starts must re-export byte-identically, so preload keeps the
  // serialized stamp — but later insertions may never reissue it.
  ReconfigCache rc(4);
  rra::Configuration warm = cfg(0x100);
  warm.revision = 7;
  ASSERT_TRUE(rc.preload(std::move(warm)));
  EXPECT_EQ(rc.peek(0x100)->revision, 7u);
  rc.insert(cfg(0x200));
  EXPECT_EQ(rc.peek(0x200)->revision, 8u);
}

TEST(ReconfigCache, ZeroSlotInsertBurnsNoRevision) {
  ReconfigCache rc(0);
  rc.insert(cfg(0x100));  // nothing stored, nothing stamped
  EXPECT_EQ(rc.counters().revision_counter, 0u);
}

}  // namespace
}  // namespace dim::bt
