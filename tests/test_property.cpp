// Property-based testing: random programs through the whole stack. The
// paper's transparency claim must hold for ANY program, not just the
// benchmark suite — baseline and accelerated runs must reach bit-identical
// architectural state under every array/cache/speculation setting.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <tuple>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "fuzz/generator.hpp"
#include "work/workload.hpp"

namespace dim::accel {
namespace {

// Generates a random program: an outer counted loop (so DIM sees reuse)
// around a body of random basic blocks with forward branches, random ALU
// ops, multiplies, divisions (unsupported by the array — detection must
// split around them), aligned loads/stores into a scratch buffer, and
// occasional calls to a leaf subroutine (jal/jr boundaries).
std::string random_program(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  // Register pool: $t0..$t7 ($8..$15), $s1..$s3 as data ($17..$19).
  auto reg = [&] { return "$" + std::to_string(pick(8, 15)); };

  std::ostringstream out;
  out << "        .data\n";
  out << "buf:    .space 512\n";
  out << "        .text\n";
  out << "main:   la $s0, buf\n";
  for (int r = 8; r <= 15; ++r) {
    out << "        li $" << r << ", " << pick(-1000, 1000) << "\n";
  }
  out << "        li $s7, " << pick(20, 60) << "\n";  // outer trip count
  out << "        b body\n";
  // A leaf subroutine: a short supported sequence, returned from via jr.
  out << "leaf:   addu $s1, $s1, $t0\n";
  out << "        xor $s2, $s1, $t1\n";
  out << "        sll $s3, $s2, 2\n";
  out << "        jr $ra\n";
  out << "body:\n";

  const int blocks = pick(2, 6);
  for (int b = 0; b < blocks; ++b) {
    const int ops = pick(2, 10);
    for (int i = 0; i < ops; ++i) {
      switch (pick(0, 11)) {
        case 0:
          out << "        addu " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 1:
          out << "        subu " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 2:
          out << "        xor " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 3:
          out << "        addiu " << reg() << ", " << reg() << ", " << pick(-128, 127) << "\n";
          break;
        case 4:
          out << "        sll " << reg() << ", " << reg() << ", " << pick(0, 7) << "\n";
          break;
        case 5:
          out << "        slt " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 6:
          out << "        mul " << reg() << ", " << reg() << ", " << reg() << "\n";
          break;
        case 7: {  // aligned word store then use
          out << "        sw " << reg() << ", " << pick(0, 127) * 4 << "($s0)\n";
          break;
        }
        case 8:
          out << "        lw " << reg() << ", " << pick(0, 127) * 4 << "($s0)\n";
          break;
        case 9:
          out << "        lbu " << reg() << ", " << pick(0, 511) << "($s0)\n";
          break;
        case 10:  // division: the array has no divider; detection must split
          out << "        li $at, " << pick(1, 50) << "\n";
          out << "        div " << reg() << ", $at\n";
          out << "        mflo " << reg() << "\n";
          break;
        default:  // call the leaf subroutine (jal/jr boundary)
          out << "        jal leaf\n";
          break;
      }
    }
    // Forward conditional branch over the next block (varied condition).
    if (b + 1 < blocks) {
      const char* ops3[] = {"beq", "bne"};
      out << "        " << ops3[pick(0, 1)] << " " << reg() << ", " << reg() << ", skip"
          << b << "\n";
      const int filler = pick(1, 4);
      for (int i = 0; i < filler; ++i) {
        out << "        addiu " << reg() << ", " << reg() << ", 1\n";
      }
      out << "skip" << b << ":\n";
    }
  }
  out << "        addiu $s7, $s7, -1\n";
  out << "        bnez $s7, body\n";
  // Fold all registers into an output so divergence is observable.
  out << "        move $a0, $zero\n";
  for (int r = 8; r <= 15; ++r) out << "        addu $a0, $a0, $" << r << "\n";
  out << "        li $v0, 1\n        syscall\n        li $v0, 10\n        syscall\n";
  return out.str();
}

using FuzzParam = std::tuple<int, bool>;  // (seed, speculation)

class TransparencyFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(TransparencyFuzz, RandomProgramsAreTransparent) {
  const auto [seed, spec] = GetParam();
  const std::string src = random_program(static_cast<uint32_t>(seed) * 2654435761u + 1);
  const asmblr::Program prog = asmblr::assemble(src);

  SystemConfig cfg = SystemConfig::with(
      seed % 3 == 0   ? rra::ArrayShape::config1()
      : seed % 3 == 1 ? rra::ArrayShape::config2()
                      : rra::ArrayShape{6, 3, 1, 1},  // deliberately tiny
      static_cast<size_t>(seed % 2 ? 4 : 64), spec);
  const SpeedupResult r = measure_speedup(prog, cfg);

  ASSERT_FALSE(r.baseline.hit_limit) << src;
  ASSERT_FALSE(r.accelerated.hit_limit);
  EXPECT_EQ(r.baseline.final_state.output, r.accelerated.final_state.output) << src;
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash()) << src;
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash) << src;
  // The array must never slow the program down.
  EXPECT_LE(r.accelerated.cycles, r.baseline.cycles) << src;
}

// Seed budget is env-tunable (DIMSIM_FUZZ_SEEDS); default keeps CI cost.
INSTANTIATE_TEST_SUITE_P(
    Seeds, TransparencyFuzz,
    ::testing::Combine(::testing::Range(0, ::dim::fuzz::seed_budget(60)),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_spec" : "_nospec");
    });

// Targeted transparency case: a misspeculated PARTIAL commit where the
// squashed speculative block carries a store. The loop's backward branch is
// not-taken into the exit path dozens of times first, so the predictor
// saturates, DIM extends the configuration across the branch, and the final
// iteration (branch resolves the other way) must squash the store-carrying
// block. The squashed store must never reach memory and the partial commit
// must leave exactly the baseline's architectural state.
TEST(TransparencyMisspec, SquashedSpeculativeStoreIsInvisible) {
  const char* src = R"(
        .data
buf:    .space 256
        .text
main:   la $t1, buf
        li $s1, 30
        li $t3, 0
loop:   addiu $s1, $s1, -1
        addu $t3, $t3, $s1
        beqz $s1, done
        sw $t3, 0($t1)
        addiu $t1, $t1, 4
        b loop
done:   move $a0, $t3
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const asmblr::Program prog = asmblr::assemble(src);
  const SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  const SpeedupResult r = measure_speedup(prog, cfg);
  ASSERT_FALSE(r.baseline.hit_limit);
  ASSERT_FALSE(r.accelerated.hit_limit);
  // The scenario must actually occur, or the test is vacuous.
  ASSERT_GT(r.accelerated.misspeculations, 0u) << src;
  EXPECT_EQ(r.baseline.final_state.output, r.accelerated.final_state.output);
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash());
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash);
}

// Transparency over all real workloads x system settings.
using WorkloadSetting = std::tuple<std::string, int>;  // (workload, setting id)

class WorkloadTransparency : public ::testing::TestWithParam<WorkloadSetting> {};

TEST_P(WorkloadTransparency, ArchitecturalStateIdentical) {
  const auto [name, setting] = GetParam();
  SystemConfig cfg;
  switch (setting) {
    case 0: cfg = SystemConfig::with(rra::ArrayShape::config1(), 16, false); break;
    case 1: cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, true); break;
    default: cfg = SystemConfig::with(rra::ArrayShape::config3(), 256, true); break;
  }
  const auto wl = ::dim::work::make_workload(name, 1);
  const auto prog = asmblr::assemble(wl.source);
  const SpeedupResult r = measure_speedup(prog, cfg);
  EXPECT_EQ(r.accelerated.final_state.output, wl.expected_output);
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash());
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash);
  EXPECT_LE(r.accelerated.cycles, r.baseline.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTransparency,
    ::testing::Combine(::testing::ValuesIn(::dim::work::workload_names()),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<WorkloadSetting>& info) {
      return std::get<0>(info.param) + "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dim::accel
