#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "power/power_model.hpp"

namespace dim::power {
namespace {

const char* kProgram = R"(
        .data
buf:    .space 1024
        .text
main:   la $t0, buf
        li $t1, 300
        li $t2, 0
loop:   sll $t3, $t2, 2
        andi $t3, $t3, 1020
        addu $t4, $t0, $t3
        lw $t5, 0($t4)
        addu $t5, $t5, $t2
        sw $t5, 0($t4)
        addiu $t2, $t2, 1
        bne $t2, $t1, loop
        li $v0, 10
        syscall
)";

TEST(PowerModel, BaselineHasNoArrayComponents) {
  const auto prog = asmblr::assemble(kProgram);
  const auto base = accel::baseline_as_stats(prog, sim::MachineConfig{});
  const EnergyBreakdown e = compute_energy(base, 64);
  EXPECT_GT(e.core, 0.0);
  EXPECT_GT(e.imem, 0.0);
  EXPECT_GT(e.dmem, 0.0);
  EXPECT_EQ(e.array, 0.0);
  EXPECT_EQ(e.rcache, 0.0);
  EXPECT_EQ(e.bt, 0.0);
}

TEST(PowerModel, AcceleratedSavesEnergyOverall) {
  // The paper's headline: fewer cycles and far fewer instruction fetches
  // outweigh the added array/cache/BT consumption.
  const auto prog = asmblr::assemble(kProgram);
  const auto r = accel::measure_speedup(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  const double base = compute_energy(r.baseline, 64).total();
  const double accel = compute_energy(r.accelerated, 64).total();
  EXPECT_LT(accel, base);
}

TEST(PowerModel, AcceleratedBurnsLessInstructionMemory) {
  const auto prog = asmblr::assemble(kProgram);
  const auto r = accel::measure_speedup(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  const EnergyBreakdown be = compute_energy(r.baseline, 64);
  const EnergyBreakdown ae = compute_energy(r.accelerated, 64);
  EXPECT_LT(ae.imem, be.imem);  // array-resident instructions are not fetched
  EXPECT_GT(ae.array + ae.rcache + ae.bt, 0.0);
}

TEST(PowerModel, PowerPerCycleIsEnergyOverCycles) {
  const auto prog = asmblr::assemble(kProgram);
  const auto st = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  const EnergyBreakdown e = compute_energy(st, 64);
  const EnergyBreakdown p = compute_power_per_cycle(st, 64);
  const double cycles = static_cast<double>(st.cycles);
  EXPECT_NEAR(p.total(), e.total() / cycles, 1e-9);
  EXPECT_NEAR(p.core, e.core / cycles, 1e-12);
}

TEST(PowerModel, BreakdownSumsToTotal) {
  const auto prog = asmblr::assemble(kProgram);
  const auto st = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config1(), 16, false));
  const EnergyBreakdown e = compute_energy(st, 16);
  EXPECT_NEAR(e.total(), e.core + e.imem + e.dmem + e.array + e.rcache + e.bt, 1e-9);
}

TEST(PowerModel, MoreCacheSlotsCostMoreStaticEnergy) {
  const auto prog = asmblr::assemble(kProgram);
  const auto st = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EXPECT_LT(compute_energy(st, 16).rcache, compute_energy(st, 256).rcache);
}

TEST(PowerModel, PowerGatingReducesArrayEnergyOnly) {
  const auto prog = asmblr::assemble(kProgram);
  const auto st = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EnergyParams p;
  const EnergyBreakdown ungated = compute_energy(st, 64, p);
  p.power_gating_efficiency = 0.9;
  const EnergyBreakdown gated = compute_energy(st, 64, p);
  EXPECT_LT(gated.array, ungated.array);
  EXPECT_EQ(gated.core, ungated.core);
  EXPECT_EQ(gated.imem, ungated.imem);
  EXPECT_EQ(gated.rcache, ungated.rcache);
  // Full gating removes exactly the idle component.
  p.power_gating_efficiency = 1.0;
  const EnergyBreakdown fully = compute_energy(st, 64, p);
  const double idle = static_cast<double>(st.cycles - st.array_cycles);
  EXPECT_NEAR(ungated.array - fully.array, idle * p.array_idle_cycle, 1e-6);
}

TEST(PowerModel, CustomParamsScaleLinearly) {
  const auto prog = asmblr::assemble(kProgram);
  const auto base = accel::baseline_as_stats(prog, sim::MachineConfig{});
  EnergyParams p;
  const double e1 = compute_energy(base, 64, p).imem;
  p.imem_fetch *= 2.0;
  EXPECT_NEAR(compute_energy(base, 64, p).imem, 2.0 * e1, 1e-9);
}

}  // namespace
}  // namespace dim::power
