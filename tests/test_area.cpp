// The area model must reproduce the paper's Table 3 for configuration #1
// exactly (the tables are analytic).
#include <gtest/gtest.h>

#include "power/area_model.hpp"

namespace dim::power {
namespace {

TEST(AreaModel, Table3aExactForConfig1) {
  const AreaReport r = array_area(rra::ArrayShape::config1());
  EXPECT_EQ(r.alus, 192);
  EXPECT_EQ(r.ldst_units, 36);
  EXPECT_EQ(r.multipliers, 6);
  EXPECT_EQ(r.input_muxes, 408);
  EXPECT_EQ(r.output_muxes, 216);
  EXPECT_EQ(r.alu_gates, 300288);
  EXPECT_EQ(r.ldst_gates, 1968);
  EXPECT_EQ(r.multiplier_gates, 40134);
  EXPECT_EQ(r.input_mux_gates, 261936);
  EXPECT_EQ(r.output_mux_gates, 58752);
  EXPECT_EQ(r.dim_gates, 1024);
  EXPECT_EQ(r.total_gates, 664102);
  // "nearly 2.66 million transistors" at 4 transistors per gate.
  EXPECT_EQ(r.total_transistors(), 2656408);
}

TEST(AreaModel, AreaGrowsWithShape) {
  const auto c1 = array_area(rra::ArrayShape::config1());
  const auto c2 = array_area(rra::ArrayShape::config2());
  const auto c3 = array_area(rra::ArrayShape::config3());
  EXPECT_LT(c1.total_gates, c2.total_gates);
  EXPECT_LT(c2.total_gates, c3.total_gates);
}

TEST(AreaModel, Table3bExactForConfig1) {
  const ConfigBits b = config_bits(rra::ArrayShape::config1());
  EXPECT_EQ(b.write_bitmap, 256);
  EXPECT_EQ(b.resource_table, 786);
  EXPECT_EQ(b.reads_table, 1632);
  EXPECT_EQ(b.writes_table, 576);
  EXPECT_EQ(b.context_start, 40);
  EXPECT_EQ(b.context_current, 40);
  EXPECT_EQ(b.immediate_table, 128);
  // The write bitmap is detection-only and excluded from the stored total.
  EXPECT_EQ(b.stored_total(), 3202);
}

TEST(AreaModel, Table3cMatchesPaperAtExactRows) {
  const auto shape = rra::ArrayShape::config1();
  // The paper's own table carries small rounding inconsistencies; at the
  // rows that are exact multiples our model matches it exactly.
  EXPECT_EQ(cache_bytes(shape, 4), 1601);
  EXPECT_EQ(cache_bytes(shape, 16), 6404);
  EXPECT_EQ(cache_bytes(shape, 64), 25616);
  EXPECT_EQ(cache_bytes(shape, 256), 102464);
}

TEST(AreaModel, CacheBytesScaleLinearly) {
  const auto shape = rra::ArrayShape::config2();
  const int64_t b8 = cache_bytes(shape, 8);
  const int64_t b16 = cache_bytes(shape, 16);
  EXPECT_NEAR(static_cast<double>(b16), 2.0 * static_cast<double>(b8), 2.0);
}

TEST(AreaModel, ConfigBitsGrowWithLines) {
  const ConfigBits c1 = config_bits(rra::ArrayShape::config1());
  const ConfigBits c2 = config_bits(rra::ArrayShape::config2());
  EXPECT_GT(c2.stored_total(), c1.stored_total());
  EXPECT_EQ(c2.reads_table, 48 * 2 * 34);
}

}  // namespace
}  // namespace dim::power
