// Fidelity proof for the placement rule. The paper words the dependence
// check as: "the source operands are compared to a bitmap of target
// registers of each line (which compose the dependence table). If the
// current line and all above do not have that target register equal to one
// of the source operands ... it can be allocated in that line."
//
// ConfigBuilder implements the equivalent last-writer-row formulation. This
// test re-implements the paper's literal per-line bitmap walk and checks
// both formulations choose the same row for every instruction of random
// supported sequences.
#include <gtest/gtest.h>

#include <random>

#include "bt/translator.hpp"
#include "rra/configuration.hpp"

namespace dim::bt {
namespace {

using isa::Instr;
using isa::Op;

// The paper's literal algorithm: per line, a bitmap of context registers
// written in that line; a new op's minimum line is one below the deepest
// line whose bitmap contains any of its sources. Memory ordering and
// resource scanning as in the hardware.
class BitmapModel {
 public:
  explicit BitmapModel(const rra::ArrayShape& shape) : shape_(shape) {}

  // Returns the row the paper's walk would place this op in, or -1.
  int place(const Instr& instr, bool is_branch) {
    int srcs[2];
    const int nsrc = rra::array_srcs(instr, srcs);
    // Deepest line writing any source: scan bitmaps bottom-up.
    int min_row = 0;
    for (int line = static_cast<int>(write_bitmaps_.size()) - 1; line >= 0; --line) {
      bool conflict = false;
      for (int k = 0; k < nsrc; ++k) {
        if (srcs[k] != 0 && write_bitmaps_[static_cast<size_t>(line)]
                                .test(static_cast<size_t>(srcs[k]))) {
          conflict = true;
        }
      }
      if (conflict) {
        min_row = line + 1;
        break;
      }
    }
    if (!is_branch) {
      if (isa::is_load(instr.op)) min_row = std::max(min_row, last_store_row_ + 1);
      if (isa::is_store(instr.op)) min_row = std::max(min_row, last_mem_row_ + 1);
    }
    const isa::FuKind kind = is_branch ? isa::FuKind::kAlu
                             : (instr.op == Op::kMfhi || instr.op == Op::kMflo)
                                 ? isa::FuKind::kAlu
                                 : isa::fu_kind(instr.op);
    const int per_line = kind == isa::FuKind::kAlu    ? shape_.alus_per_line
                         : kind == isa::FuKind::kMul  ? shape_.muls_per_line
                                                      : shape_.ldsts_per_line;
    for (int r = min_row; r < shape_.lines; ++r) {
      if (r >= static_cast<int>(use_.size())) {
        use_.resize(static_cast<size_t>(r) + 1);
        write_bitmaps_.resize(static_cast<size_t>(r) + 1);
      }
      int& used = kind == isa::FuKind::kAlu  ? use_[static_cast<size_t>(r)].alu
                  : kind == isa::FuKind::kMul ? use_[static_cast<size_t>(r)].mul
                                              : use_[static_cast<size_t>(r)].ldst;
      if (used < per_line) {
        ++used;
        // Update the line's write bitmap. The hardware clears the bit in
        // OLDER lines when a register is re-written (otherwise a reader of
        // the new value could be mis-anchored to the stale producer); model
        // that by clearing the register everywhere first.
        int dsts[2];
        const int ndst = rra::array_dests(instr, dsts);
        for (int k = 0; k < ndst; ++k) {
          for (auto& bm : write_bitmaps_) bm.reset(static_cast<size_t>(dsts[k]));
          write_bitmaps_[static_cast<size_t>(r)].set(static_cast<size_t>(dsts[k]));
        }
        if (!is_branch && isa::is_load(instr.op)) last_mem_row_ = std::max(last_mem_row_, r);
        if (!is_branch && isa::is_store(instr.op)) {
          last_mem_row_ = std::max(last_mem_row_, r);
          last_store_row_ = std::max(last_store_row_, r);
        }
        return r;
      }
    }
    return -1;
  }

 private:
  struct Use {
    int alu = 0, mul = 0, ldst = 0;
  };
  rra::ArrayShape shape_;
  std::vector<std::bitset<rra::kNumCtxRegs>> write_bitmaps_;
  std::vector<Use> use_;
  int last_mem_row_ = -1;
  int last_store_row_ = -1;
};

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

class BitmapEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BitmapEquivalence, PaperBitmapWalkMatchesLastWriterTable) {
  const uint32_t seed = static_cast<uint32_t>(GetParam()) * 2246822519u + 5;
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  auto reg = [&] { return pick(8, 15); };

  TranslatorParams params;
  params.shape = rra::ArrayShape::config1();
  ConfigBuilder builder(0x400000, params);
  BitmapModel bitmap(params.shape);

  const int n = pick(5, 50);
  uint32_t pc = 0x400000;
  for (int i = 0; i < n; ++i) {
    Instr instr;
    switch (pick(0, 7)) {
      case 0: instr = r3(Op::kAddu, reg(), reg(), reg()); break;
      case 1: instr = r3(Op::kXor, reg(), reg(), reg()); break;
      case 2: instr = imm(Op::kAddiu, reg(), reg(), static_cast<int16_t>(pick(-50, 50))); break;
      case 3: instr = r3(Op::kSltu, reg(), reg(), reg()); break;
      case 4: instr = r3(Op::kMult, 0, reg(), reg()); break;
      case 5: instr = r3(Op::kMflo, reg(), 0, 0); break;
      case 6: instr = imm(Op::kLw, reg(), 28, static_cast<int16_t>(pick(0, 31) * 4)); break;
      default: instr = imm(Op::kSw, reg(), 28, static_cast<int16_t>(pick(0, 31) * 4)); break;
    }
    const bool ok = builder.try_add(instr, pc);
    const int expected_row = bitmap.place(instr, false);
    ASSERT_TRUE(ok);
    ASSERT_GE(expected_row, 0);
    pc += 4;
  }
  const rra::Configuration config = builder.finalize(pc);
  // Re-derive the bitmap walk once more over the final ops to compare rows
  // one-to-one (the models ran in lockstep above; rows must agree).
  BitmapModel replay(params.shape);
  for (const rra::ArrayOp& op : config.ops) {
    EXPECT_EQ(replay.place(op.instr, op.is_branch), op.row)
        << isa::op_name(op.instr.op) << " @ " << std::hex << op.pc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapEquivalence, ::testing::Range(0, 40));

}  // namespace
}  // namespace dim::bt
