// AcceleratedSystem::run_until checkpoint semantics.
//
// The serving daemon chunks budgeted runs into run_until calls, so the
// meaning of hit_limit at a checkpoint boundary is load-bearing: it must
// be true exactly when the machine's own instruction cap stopped the run
// — never merely because a checkpoint boundary coincided with the current
// instruction count, and in particular when the boundary EQUALS the cap.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"

namespace dim::accel {
namespace {

// Halts (syscall 10) after ~1200 retired instructions.
const char* kLongLoop = R"(
        .text
main:   li $t0, 0
        li $t1, 300
loop:   addiu $t0, $t0, 1
        bne $t0, $t1, loop
        li $v0, 10
        syscall
)";

asmblr::Program long_loop() { return asmblr::assemble(kLongLoop); }

SystemConfig capped_config(uint64_t cap) {
  SystemConfig config;
  config.machine.max_instructions = cap;
  return config;
}

TEST(RunUntil, CheckpointBelowCapDoesNotClaimHitLimit) {
  const auto program = long_loop();
  AcceleratedSystem system(program, capped_config(1000));
  const AccelStats stats = system.run_until(200);
  EXPECT_GE(stats.instructions, 200u);
  EXPECT_FALSE(stats.final_state.halted);
  // Stopped by the checkpoint, not by the cap.
  EXPECT_FALSE(stats.hit_limit);
}

TEST(RunUntil, BoundaryEqualToCapMeansTheRealCap) {
  // The regression this pins: a checkpoint boundary placed exactly at the
  // machine cap must still report hit_limit — the cap genuinely stopped
  // the run, and a resume could never make progress.
  const auto program = long_loop();
  AcceleratedSystem system(program, capped_config(500));
  const AccelStats stats = system.run_until(500);
  EXPECT_FALSE(stats.final_state.halted);
  EXPECT_GE(stats.instructions, 500u);
  EXPECT_TRUE(stats.hit_limit);

  // A further run_until executes nothing: the cap already fired.
  const uint64_t at_cap = stats.instructions;
  const AccelStats resumed = system.run_until(10'000);
  EXPECT_EQ(resumed.instructions, at_cap);
  EXPECT_TRUE(resumed.hit_limit);
  EXPECT_FALSE(resumed.final_state.halted);
}

TEST(RunUntil, HaltBeforeBoundaryReportsHaltedNotLimit) {
  const auto program = long_loop();
  AcceleratedSystem system(program, capped_config(1'000'000));
  const AccelStats stats = system.run_until(500'000);
  EXPECT_TRUE(stats.final_state.halted);
  EXPECT_FALSE(stats.hit_limit);
  EXPECT_LT(stats.instructions, 500'000u);
}

TEST(RunUntil, ResumedCheckpointsMatchSingleRun) {
  // Chunked execution is exactly the single-shot run: same instruction
  // count, cycles and memory image — the daemon's checkpointing must be
  // invisible in the response.
  const auto program = long_loop();

  AcceleratedSystem single(program, capped_config(1'000'000));
  const AccelStats whole = single.run_until(1'000'000);
  ASSERT_TRUE(whole.final_state.halted);

  AcceleratedSystem chunked(program, capped_config(1'000'000));
  AccelStats last;
  for (uint64_t boundary = 100;; boundary += 100) {
    last = chunked.run_until(boundary);
    if (last.final_state.halted || last.hit_limit) break;
    ASSERT_LT(boundary, 1'000'000u) << "runaway";
  }
  EXPECT_TRUE(last.final_state.halted);
  EXPECT_EQ(last.instructions, whole.instructions);
  EXPECT_EQ(last.cycles, whole.cycles);
  EXPECT_EQ(last.memory_hash, whole.memory_hash);
  EXPECT_EQ(last.final_state.output, whole.final_state.output);
}

TEST(RunUntil, HitLimitAtCapMatchesPlainRun) {
  // Checkpointing straight through the cap agrees with run() on the same
  // capped machine: same stop point, same hit_limit.
  const auto program = long_loop();

  AcceleratedSystem plain(program, capped_config(300));
  const AccelStats direct = plain.run();
  ASSERT_TRUE(direct.hit_limit);

  AcceleratedSystem chunked(program, capped_config(300));
  AccelStats last;
  for (uint64_t boundary = 100;; boundary += 100) {
    last = chunked.run_until(boundary);
    if (last.final_state.halted || last.hit_limit) break;
    ASSERT_LT(boundary, 10'000u) << "runaway";
  }
  EXPECT_TRUE(last.hit_limit);
  EXPECT_EQ(last.instructions, direct.instructions);
  EXPECT_EQ(last.cycles, direct.cycles);
}

}  // namespace
}  // namespace dim::accel
