// Independent-reference cross-check of the ALU semantics: a second, tiny,
// deliberately naive interpreter written directly against the MIPS manual,
// compared against sim::alu_eval / mult_eval / branch_taken over random
// operands for every operation. Redundant implementations make a silent
// semantic slip (shift masking, sign extension, comparison signedness)
// vanishingly unlikely to survive.
#include <gtest/gtest.h>

#include <random>

#include "isa/encoder.hpp"
#include "sim/executor.hpp"

namespace dim::sim {
namespace {

using isa::Instr;
using isa::Op;

// The naive reference, written independently from alu_eval (64-bit
// arithmetic, explicit masks).
uint64_t ref_alu(Op op, uint8_t shamt, uint16_t imm, uint64_t rs, uint64_t rt) {
  const auto sext16 = [](uint16_t v) -> int64_t { return static_cast<int16_t>(v); };
  const auto s32 = [](uint64_t v) -> int64_t { return static_cast<int32_t>(static_cast<uint32_t>(v)); };
  uint64_t r = 0;
  switch (op) {
    case Op::kSll: r = rt << shamt; break;
    case Op::kSrl: r = (rt & 0xFFFFFFFFull) >> shamt; break;
    case Op::kSra: r = static_cast<uint64_t>(s32(rt) >> shamt); break;
    case Op::kSllv: r = rt << (rs & 31); break;
    case Op::kSrlv: r = (rt & 0xFFFFFFFFull) >> (rs & 31); break;
    case Op::kSrav: r = static_cast<uint64_t>(s32(rt) >> (rs & 31)); break;
    case Op::kAdd: case Op::kAddu: r = rs + rt; break;
    case Op::kSub: case Op::kSubu: r = rs - rt; break;
    case Op::kAnd: r = rs & rt; break;
    case Op::kOr: r = rs | rt; break;
    case Op::kXor: r = rs ^ rt; break;
    case Op::kNor: r = ~(rs | rt); break;
    case Op::kSlt: r = s32(rs) < s32(rt) ? 1 : 0; break;
    case Op::kSltu: r = (rs & 0xFFFFFFFFull) < (rt & 0xFFFFFFFFull) ? 1 : 0; break;
    case Op::kAddi: case Op::kAddiu:
      r = rs + static_cast<uint64_t>(sext16(imm));
      break;
    case Op::kSlti: r = s32(rs) < sext16(imm) ? 1 : 0; break;
    case Op::kSltiu:
      r = (rs & 0xFFFFFFFFull) < (static_cast<uint64_t>(sext16(imm)) & 0xFFFFFFFFull) ? 1 : 0;
      break;
    case Op::kAndi: r = rs & imm; break;
    case Op::kOri: r = rs | imm; break;
    case Op::kXori: r = rs ^ imm; break;
    case Op::kLui: r = static_cast<uint64_t>(imm) << 16; break;
    default: ADD_FAILURE() << "not an ALU op"; break;
  }
  return r & 0xFFFFFFFFull;
}

const Op kAluOps[] = {Op::kSll,  Op::kSrl,  Op::kSra,  Op::kSllv, Op::kSrlv, Op::kSrav,
                      Op::kAdd,  Op::kAddu, Op::kSub,  Op::kSubu, Op::kAnd,  Op::kOr,
                      Op::kXor,  Op::kNor,  Op::kSlt,  Op::kSltu, Op::kAddi, Op::kAddiu,
                      Op::kSlti, Op::kSltiu, Op::kAndi, Op::kOri, Op::kXori, Op::kLui};

class AluReference : public ::testing::TestWithParam<int> {};

TEST_P(AluReference, MatchesNaiveInterpreter) {
  std::mt19937 rng(static_cast<uint32_t>(GetParam()) * 2166136261u + 11);
  for (int n = 0; n < 3000; ++n) {
    for (Op op : kAluOps) {
      Instr i;
      i.op = op;
      i.shamt = static_cast<uint8_t>(rng() & 31);
      i.imm16 = static_cast<uint16_t>(rng());
      // Sprinkle interesting values among the random ones.
      auto operand = [&rng]() -> uint32_t {
        switch (rng() % 6) {
          case 0: return 0;
          case 1: return 0xFFFFFFFFu;
          case 2: return 0x80000000u;
          case 3: return 0x7FFFFFFFu;
          default: return rng();
        }
      };
      const uint32_t rs = operand();
      const uint32_t rt = operand();
      EXPECT_EQ(alu_eval(i, rs, rt),
                static_cast<uint32_t>(ref_alu(op, i.shamt, i.imm16, rs, rt)))
          << isa::op_name(op) << " rs=" << rs << " rt=" << rt
          << " shamt=" << int(i.shamt) << " imm=" << i.imm16;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluReference, ::testing::Range(0, 4));

TEST(MultReference, MatchesWideArithmetic) {
  std::mt19937 rng(77);
  for (int n = 0; n < 20000; ++n) {
    const uint32_t a = rng();
    const uint32_t b = rng();
    // mult: signed 64-bit product.
    const int64_t sp = static_cast<int64_t>(static_cast<int32_t>(a)) *
                       static_cast<int64_t>(static_cast<int32_t>(b));
    EXPECT_EQ(mult_eval(isa::Op::kMult, a, b), static_cast<uint64_t>(sp));
    // multu: unsigned.
    EXPECT_EQ(mult_eval(isa::Op::kMultu, a, b),
              static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
  }
}

TEST(BranchReference, AllConditionsOverSignBoundary) {
  const uint32_t values[] = {0, 1, 2, 0x7FFFFFFFu, 0x80000000u, 0x80000001u, 0xFFFFFFFFu};
  for (uint32_t rs : values) {
    for (uint32_t rt : values) {
      const int32_t s = static_cast<int32_t>(rs);
      Instr i;
      i.op = Op::kBeq;
      EXPECT_EQ(branch_taken(i, rs, rt), rs == rt);
      i.op = Op::kBne;
      EXPECT_EQ(branch_taken(i, rs, rt), rs != rt);
      i.op = Op::kBlez;
      EXPECT_EQ(branch_taken(i, rs, rt), s <= 0);
      i.op = Op::kBgtz;
      EXPECT_EQ(branch_taken(i, rs, rt), s > 0);
      i.op = Op::kBltz;
      EXPECT_EQ(branch_taken(i, rs, rt), s < 0);
      i.op = Op::kBgez;
      EXPECT_EQ(branch_taken(i, rs, rt), s >= 0);
    }
  }
}

TEST(DivReference, SignCombinations) {
  // MIPS div truncates toward zero; remainder carries the dividend's sign.
  const int32_t cases[][4] = {
      // a, b, quotient, remainder
      {17, 5, 3, 2},   {-17, 5, -3, -2}, {17, -5, -3, 2},  {-17, -5, 3, -2},
      {0, 9, 0, 0},    {8, 8, 1, 0},     {7, 9, 0, 7},     {-7, 9, 0, -7},
  };
  for (const auto& c : cases) {
    mem::Memory m;
    CpuState s;
    // Execute a real div through the executor for full coverage.
    isa::Instr i;
    i.op = Op::kDiv;
    i.rs = 8;
    i.rt = 9;
    s.regs[8] = static_cast<uint32_t>(c[0]);
    s.regs[9] = static_cast<uint32_t>(c[1]);
    m.write32(0, isa::encode(i));
    s.pc = 0;
    step(s, m);
    EXPECT_EQ(static_cast<int32_t>(s.lo), c[2]) << c[0] << "/" << c[1];
    EXPECT_EQ(static_cast<int32_t>(s.hi), c[3]) << c[0] << "%" << c[1];
  }
}

}  // namespace
}  // namespace dim::sim
