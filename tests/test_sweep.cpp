// SweepEngine: deterministic thread-pooled execution of benchmark grids.
// The contract under test: results are ordered by point index and the
// aggregated JSON is byte-identical for any worker count.
#include <gtest/gtest.h>

#include <sstream>

#include "accel/sweep.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "rra/array_shape.hpp"

namespace dim::accel {
namespace {

const char* kSweepLoop = R"(
        .data
arr:    .word 0
        .space 512
        .text
main:   la $t0, arr
        li $t1, 120
        li $t2, 0
        li $t3, 0
loop:   sll $t4, $t3, 2
        andi $t4, $t4, 255
        addu $t5, $t0, $t4
        lw $t6, 0($t5)
        addu $t6, $t6, $t3
        sw $t6, 0($t5)
        addu $t2, $t2, $t6
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

// A >= 16-point grid over shapes x slots x speculation on one program.
std::vector<SweepPoint> grid_of(const asmblr::Program& program) {
  std::vector<SweepPoint> points;
  const rra::ArrayShape shapes[2] = {rra::ArrayShape::config1(), rra::ArrayShape::config2()};
  int c = 0;
  for (const rra::ArrayShape& shape : shapes) {
    ++c;
    for (size_t slots : {2, 8, 16, 64}) {
      for (bool spec : {false, true}) {
        SweepPoint p;
        p.label = "C" + std::to_string(c) + "/slots" + std::to_string(slots) +
                  (spec ? "/sp" : "/ns");
        p.program = &program;
        p.config = SystemConfig::with(shape, slots, spec);
        p.run_baseline = true;
        points.push_back(p);
      }
    }
  }
  return points;
}

TEST(SweepEngine, ResultsOrderedByPointIndex) {
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  ASSERT_GE(points.size(), 16u);
  SweepEngine engine({/*threads=*/4});
  const auto results = engine.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, points[i].label);
    EXPECT_TRUE(results[i].has_baseline);
    EXPECT_TRUE(results[i].transparent) << points[i].label;
    EXPECT_GT(results[i].accelerated.cycles, 0u);
  }
}

TEST(SweepEngine, JsonByteIdenticalAcrossThreadCounts) {
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  ASSERT_GE(points.size(), 16u);

  std::string json_by_threads[3];
  int slot = 0;
  for (unsigned threads : {1u, 4u, 7u}) {
    SweepEngine engine({threads});
    std::ostringstream out;
    write_sweep_json(out, engine.run(points));
    json_by_threads[slot++] = out.str();
  }
  EXPECT_FALSE(json_by_threads[0].empty());
  EXPECT_EQ(json_by_threads[0], json_by_threads[1]);
  EXPECT_EQ(json_by_threads[0], json_by_threads[2]);
}

TEST(SweepEngine, MatchesDirectMeasureSpeedup) {
  const auto program = asmblr::assemble(kSweepLoop);
  SweepPoint p;
  p.label = "direct";
  p.program = &program;
  p.config = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  p.run_baseline = true;

  SweepEngine engine({2});
  const auto results = engine.run({p, p});
  const SpeedupResult direct = measure_speedup(program, p.config);
  for (const SweepResult& r : results) {
    EXPECT_EQ(r.accelerated.cycles, direct.accelerated.cycles);
    EXPECT_EQ(r.baseline.cycles, direct.baseline.cycles);
    EXPECT_DOUBLE_EQ(r.speedup(), direct.speedup());
  }
}

TEST(SweepEngine, PrecomputedBaselineIsShared) {
  const auto program = asmblr::assemble(kSweepLoop);
  const AccelStats baseline = baseline_as_stats(program, sim::MachineConfig{});
  SweepPoint p;
  p.label = "shared-baseline";
  p.program = &program;
  p.config = SystemConfig::with(rra::ArrayShape::config1(), 16, false);
  p.baseline = &baseline;

  const auto results = SweepEngine({3}).run({p});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].has_baseline);
  EXPECT_EQ(results[0].baseline.cycles, baseline.cycles);
  EXPECT_GT(results[0].speedup(), 0.0);
}

TEST(SweepEngine, ProfileAggregationIdenticalAcrossThreadCounts) {
  // Event-profile collection rides the same determinism contract as the
  // stats JSON: worker-private sinks folded in point order must aggregate
  // to a byte-identical document no matter how many threads ran the grid.
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);

  std::string profile_by_threads[3];
  int slot = 0;
  for (unsigned threads : {1u, 4u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    opts.collect_profiles = true;
    const auto results = SweepEngine(opts).run(points);
    for (const SweepResult& r : results) {
      EXPECT_TRUE(r.has_profile) << r.label;
    }
    std::ostringstream out;
    obs::write_profile_json(out, aggregate_profiles(results));
    profile_by_threads[slot++] = out.str();
  }
  EXPECT_FALSE(profile_by_threads[0].empty());
  EXPECT_NE(profile_by_threads[0].find("\"configs\""), std::string::npos);
  EXPECT_EQ(profile_by_threads[0], profile_by_threads[1]);
  EXPECT_EQ(profile_by_threads[0], profile_by_threads[2]);
}

TEST(SweepEngine, CollectedProfilesMatchPointStats) {
  // Each point's own profile must reproduce that run's array-cycle total
  // and activation count, and collection must not perturb the results
  // (same stats as a plain run).
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);

  SweepOptions opts;
  opts.threads = 4;
  opts.collect_profiles = true;
  const auto with_profiles = SweepEngine(opts).run(points);
  const auto plain = SweepEngine({4}).run(points);
  ASSERT_EQ(with_profiles.size(), plain.size());
  for (size_t i = 0; i < with_profiles.size(); ++i) {
    const SweepResult& r = with_profiles[i];
    ASSERT_TRUE(r.has_profile);
    EXPECT_EQ(r.profile.total_array_cycles(), r.accelerated.array_cycles) << r.label;
    EXPECT_EQ(r.profile.total_activations(), r.accelerated.array_activations) << r.label;
    EXPECT_EQ(r.accelerated.cycles, plain[i].accelerated.cycles) << r.label;
    EXPECT_EQ(r.accelerated.memory_hash, plain[i].accelerated.memory_hash) << r.label;
  }
  EXPECT_FALSE(plain[0].has_profile);
}

TEST(SweepEngine, EmptyGridYieldsEmptyJsonDocument) {
  SweepEngine engine;
  const auto results = engine.run({});
  EXPECT_TRUE(results.empty());
  std::ostringstream out;
  write_sweep_json(out, results);
  EXPECT_EQ(out.str(), "{\n  \"points\": [\n  ]\n}\n");
}

TEST(SweepEngine, ZeroThreadOptionFallsBackToHardware) {
  SweepEngine engine({0});
  EXPECT_GE(engine.threads(), 1u);
}

// A cache whose load() throws for selected labels — stands in for any
// worker-side failure at a controllable grid position.
class ThrowingCache : public ResultCache {
 public:
  explicit ThrowingCache(std::vector<std::string> throw_labels)
      : throw_labels_(std::move(throw_labels)) {}

  bool load(const SweepPoint& point, bool, SweepResult&) override {
    for (const std::string& label : throw_labels_) {
      if (point.label == label) throw std::runtime_error("boom:" + label);
    }
    return false;
  }
  void store(const SweepPoint&, bool, const SweepResult&) override {}

 private:
  std::vector<std::string> throw_labels_;
};

TEST(SweepEngine, LowestIndexExceptionWinsAcrossThreadCounts) {
  // Two points throw. Whatever the worker scheduling, the exception the
  // caller sees must be the one from the lowest grid index — otherwise
  // the reported error would change run to run under contention.
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  ASSERT_GT(points.size(), 11u);
  // Deliberately listed high-index first: order in the cache must not matter.
  ThrowingCache cache({points[11].label, points[2].label});

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    opts.result_cache = &cache;
    try {
      SweepEngine(opts).run(points);
      FAIL() << "expected a rethrown worker exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "boom:" + points[2].label)
          << "threads=" << threads;
    }
  }
}

TEST(SweepEngine, PointErrorBeatsLaterPointError) {
  // Sequential (threads=1) sanity for the same contract: the first point
  // in index order throws, later throwing points are never reached.
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  ThrowingCache cache({points[0].label, points[5].label});
  SweepOptions opts;
  opts.threads = 1;
  opts.result_cache = &cache;
  try {
    SweepEngine(opts).run(points);
    FAIL() << "expected a rethrown worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "boom:" + points[0].label);
  }
}

TEST(SweepEngine, PreSetCancelThrowsSweepCanceled) {
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  std::atomic<bool> cancel{true};
  for (unsigned threads : {1u, 4u}) {
    SweepOptions opts;
    opts.threads = threads;
    opts.cancel = &cancel;
    EXPECT_THROW(SweepEngine(opts).run(points), SweepCanceled)
        << "threads=" << threads;
  }
}

TEST(SweepEngine, UnsetCancelFlagIsHarmless) {
  const auto program = asmblr::assemble(kSweepLoop);
  const auto points = grid_of(program);
  std::atomic<bool> cancel{false};
  SweepOptions opts;
  opts.threads = 4;
  opts.cancel = &cancel;
  const auto with_flag = SweepEngine(opts).run(points);
  const auto without = SweepEngine({4}).run(points);
  ASSERT_EQ(with_flag.size(), without.size());
  for (size_t i = 0; i < with_flag.size(); ++i) {
    EXPECT_EQ(with_flag[i].accelerated.cycles, without[i].accelerated.cycles);
  }
}

}  // namespace
}  // namespace dim::accel
