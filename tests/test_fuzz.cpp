// Tests for the differential fuzzing subsystem (src/fuzz/): generator
// determinism and well-formedness, the transparency oracle, the
// delta-debugging shrinker's invariants, campaign thread-count invariance,
// and the fault-injection self-test (a deliberately buggy translator must
// be caught and minimized within a small seed budget).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "obs/event.hpp"

namespace dim::fuzz {
namespace {

TEST(FuzzGenerator, DeterministicPerSeed) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const FuzzProgram a = generate_program(seed);
    const FuzzProgram b = generate_program(seed);
    EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
    EXPECT_EQ(a.instruction_count(), b.instruction_count());
  }
}

TEST(FuzzGenerator, AdjacentSeedsProduceDistinctPrograms) {
  // Adjacent seeds are what campaigns use; they must not share a draw
  // stream (a previous generator bug handed every seed the same stream
  // shifted by one draw).
  for (uint64_t seed = 0; seed < 16; ++seed) {
    EXPECT_NE(generate_program(seed).render(), generate_program(seed + 1).render())
        << "seed " << seed;
  }
}

TEST(FuzzGenerator, EverySeedAssembles) {
  const int seeds = seed_budget(50);
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s));
    EXPECT_GT(p.instruction_count(), 0);
    EXPECT_NO_THROW(asmblr::assemble(p.render())) << "seed " << s;
  }
}

TEST(FuzzGenerator, SeedBudgetReadsEnvironment) {
  ::unsetenv("DIMSIM_FUZZ_SEEDS");
  EXPECT_EQ(seed_budget(42), 42);
  ::setenv("DIMSIM_FUZZ_SEEDS", "7", 1);
  EXPECT_EQ(seed_budget(42), 7);
  ::setenv("DIMSIM_FUZZ_SEEDS", "not-a-number", 1);
  EXPECT_EQ(seed_budget(42), 42);
  ::unsetenv("DIMSIM_FUZZ_SEEDS");
}

TEST(FuzzOracle, CleanSystemIsTransparent) {
  const int seeds = seed_budget(10);
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s));
    const OracleResult r = check_program(p.render(), quick_matrix());
    EXPECT_FALSE(r.inconclusive) << "seed " << s << ": " << r.inconclusive_reason;
    EXPECT_FALSE(r.divergence.found)
        << "seed " << s << " diverged at " << r.divergence.point_label << ": "
        << r.divergence.detail;
  }
}

TEST(FuzzOracle, RejectsUnassemblableSource) {
  const OracleResult r = check_program("this is not assembly", quick_matrix());
  EXPECT_TRUE(r.inconclusive);
  EXPECT_FALSE(r.divergence.found);
  EXPECT_FALSE(r.inconclusive_reason.empty());
}

TEST(FuzzOracle, ReportsDivergenceWithContext) {
  // A planted translator bug must produce a structured report: the matrix
  // point, the diverging field, a both-values detail string.
  OracleOptions oracle;
  oracle.fault = bt::FaultInjection::kAddiuImmOffByOne;
  oracle.max_instructions = 300000;  // keep non-terminating candidates cheap
  bool found = false;
  for (int s = 0; s < 20 && !found; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s));
    const OracleResult r = check_program(p.render(), quick_matrix(), oracle);
    if (r.inconclusive || !r.divergence.found) continue;
    found = true;
    EXPECT_NE(r.divergence.field, DivergenceField::kNone);
    EXPECT_FALSE(r.divergence.point_label.empty());
    EXPECT_FALSE(r.divergence.detail.empty());
    EXPECT_STRNE(divergence_field_name(r.divergence.field), "none");
    for (const obs::Event& e : r.divergence.recent_events) {
      EXPECT_FALSE(obs::format_event(e).empty());
    }
  }
  EXPECT_TRUE(found) << "planted addiu fault never detected in 20 seeds";
}

// Synthetic predicate for shrinker-invariant tests: cheap, deterministic,
// and satisfied by generated programs (the leaf subroutine contains xor).
bool contains_xor(const FuzzProgram& p) {
  for (const Stmt& s : p.stmts) {
    if (s.is_instruction && s.text.rfind("xor", 0) == 0) return true;
  }
  return false;
}

TEST(FuzzShrink, PreservesFailurePredicate) {
  const FuzzProgram failing = generate_program(3);
  ASSERT_TRUE(contains_xor(failing));
  const ShrinkResult r = shrink(failing, contains_xor);
  EXPECT_TRUE(contains_xor(r.program));
  EXPECT_LE(r.program.instruction_count(), failing.instruction_count());
  EXPECT_GT(r.stats.candidates_tried, 0);
}

TEST(FuzzShrink, ResultIsOneMinimal) {
  const FuzzProgram failing = generate_program(5);
  ASSERT_TRUE(contains_xor(failing));
  const ShrinkResult r = shrink(failing, contains_xor);
  // Removing any single remaining removable statement must break the
  // predicate — that is the ddmin postcondition.
  for (size_t i = 0; i < r.program.stmts.size(); ++i) {
    const Stmt& s = r.program.stmts[i];
    if (!s.removable || s.text.empty() || !s.is_instruction) continue;
    FuzzProgram candidate = r.program;
    candidate.stmts[i].text.clear();
    candidate.stmts[i].is_instruction = false;
    EXPECT_FALSE(contains_xor(candidate))
        << "statement " << i << " (" << s.text << ") is removable but survived";
  }
}

TEST(FuzzShrink, DeterministicForFixedInput) {
  const FuzzProgram failing = generate_program(7);
  ASSERT_TRUE(contains_xor(failing));
  const ShrinkResult a = shrink(failing, contains_xor);
  const ShrinkResult b = shrink(failing, contains_xor);
  EXPECT_EQ(a.program.render(), b.program.render());
  EXPECT_EQ(a.stats.candidates_tried, b.stats.candidates_tried);
  EXPECT_EQ(a.stats.candidates_accepted, b.stats.candidates_accepted);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(FuzzShrink, NonFailingInputReturnedUnchanged) {
  const FuzzProgram p = generate_program(11);
  const ShrinkResult r = shrink(p, [](const FuzzProgram&) { return false; });
  EXPECT_EQ(r.program.render(), p.render());
  EXPECT_EQ(r.stats.candidates_accepted, 0);
}

TEST(FuzzCampaign, CleanCampaignFindsNothing) {
  CampaignOptions options;
  options.seeds = seed_budget(15);
  options.matrix = quick_matrix();
  const CampaignResult r = run_campaign(options);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.divergent_seeds, 0);
  EXPECT_TRUE(r.failures.empty());
  EXPECT_EQ(r.seeds_run, options.seeds);
}

TEST(FuzzCampaign, JsonIsThreadCountInvariant) {
  CampaignOptions options;
  options.seeds = seed_budget(15);
  options.matrix = quick_matrix();
  options.oracle.fault = bt::FaultInjection::kAddiuImmOffByOne;
  options.oracle.max_instructions = 300000;

  options.threads = 1;
  const CampaignResult one = run_campaign(options);
  options.threads = 4;
  const CampaignResult four = run_campaign(options);

  std::ostringstream json_one, json_four;
  write_campaign_json(json_one, one);
  write_campaign_json(json_four, four);
  EXPECT_EQ(json_one.str(), json_four.str());
  EXPECT_GT(one.divergent_seeds, 0) << "planted fault should diverge";
}

// The fault-injection self-test as a unit test: a deliberately buggy
// translator must be caught within a small seed budget and the failing
// program must shrink to a near-minimal reproducer that still fails.
TEST(FuzzCampaign, PlantedFaultIsFoundAndShrunk) {
  CampaignOptions options;
  options.seeds = seed_budget(10);
  options.matrix = quick_matrix();
  options.oracle.fault = bt::FaultInjection::kAddiuImmOffByOne;
  options.oracle.max_instructions = 300000;
  const CampaignResult r = run_campaign(options);
  ASSERT_GT(r.divergent_seeds, 0) << "planted translator bug not detected";
  ASSERT_FALSE(r.failures.empty());

  const CampaignFailure& f = r.failures.front();
  EXPECT_TRUE(f.shrunk);
  EXPECT_LE(f.shrunk_program.instruction_count(), 12)
      << "reproducer not minimal:\n"
      << f.shrunk_program.render();
  EXPECT_LT(f.shrunk_program.instruction_count(), f.program.instruction_count());

  // The minimized reproducer must still trigger the divergence on its own.
  const OracleResult again =
      check_program(f.shrunk_program.render(), options.matrix, options.oracle);
  EXPECT_TRUE(again.divergence.found);

  // And the repro file (header + program) must itself assemble and replay.
  std::ostringstream repro;
  write_repro_file(repro, f, options.oracle);
  EXPECT_NO_THROW(asmblr::assemble(repro.str()));
  const OracleResult replayed = check_program(repro.str(), options.matrix, options.oracle);
  EXPECT_TRUE(replayed.divergence.found);
}

TEST(FuzzCampaign, SubuSwapFaultIsDetectable) {
  // The second planted fault hits a rarer op; give it a larger budget but
  // skip shrinking to keep the test cheap.
  CampaignOptions options;
  options.seeds = seed_budget(60);
  options.matrix = quick_matrix();
  options.shrink = false;
  options.oracle.fault = bt::FaultInjection::kSubuSwapOperands;
  options.oracle.max_instructions = 300000;
  const CampaignResult r = run_campaign(options);
  EXPECT_GT(r.divergent_seeds, 0) << "planted subu fault not detected";
}

TEST(FuzzDispatch, CodePageStoresStayTransparent) {
  // The same-word code-store mode rewrites instructions with their own
  // values, so programs stay transparency-safe: the ordinary
  // accel-vs-baseline oracle must hold with the mode on. (Real SMC —
  // smc_patch_stores — legitimately breaks this oracle and is only legal
  // in dispatch campaigns.)
  GenOptions gen;
  gen.code_page_stores = true;
  const int seeds = seed_budget(10);
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s), gen);
    const OracleResult r = check_program(p.render(), quick_matrix());
    EXPECT_FALSE(r.inconclusive) << "seed " << s << ": " << r.inconclusive_reason;
    EXPECT_FALSE(r.divergence.found)
        << "seed " << s << " diverged at " << r.divergence.point_label << ": "
        << r.divergence.detail;
  }
}

TEST(FuzzDispatch, CampaignWithSmcIsCleanAndThreadInvariant) {
  // The merge gate for the superblock trace engine: fast vs slow dispatch
  // bit-identical, with both code-store modes on (including real SMC
  // patches). Also pins thread-count invariance of the dispatch campaign.
  CampaignOptions options;
  options.seeds = seed_budget(15);
  options.matrix = quick_matrix();
  options.gen.code_page_stores = true;
  options.gen.smc_patch_stores = true;

  options.threads = 1;
  const CampaignResult one = run_dispatch_campaign(options);
  EXPECT_TRUE(one.clean()) << one.divergent_seeds << " divergent seeds";
  EXPECT_EQ(one.inconclusive_seeds, 0);
  EXPECT_EQ(one.seeds_run, options.seeds);

  options.threads = 4;
  const CampaignResult four = run_dispatch_campaign(options);
  std::ostringstream json_one, json_four;
  write_campaign_json(json_one, one);
  write_campaign_json(json_four, four);
  EXPECT_EQ(json_one.str(), json_four.str());
}

TEST(FuzzDispatch, OracleRejectsUnassemblableSource) {
  const OracleResult r = check_dispatch_program("this is not assembly", quick_matrix());
  EXPECT_TRUE(r.inconclusive);
  EXPECT_FALSE(r.divergence.found);
}

// --- Hammock / predication axis ----------------------------------------------

TEST(FuzzGenerator, HammockModesAreDeterministicAndAssemble) {
  GenOptions gen;
  gen.hammocks = true;
  gen.nested_hammocks = true;
  const int seeds = seed_budget(30);
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram a = generate_program(static_cast<uint64_t>(s), gen);
    const FuzzProgram b = generate_program(static_cast<uint64_t>(s), gen);
    EXPECT_EQ(a.render(), b.render()) << "seed " << s;
    EXPECT_NO_THROW(asmblr::assemble(a.render())) << "seed " << s;
  }
}

TEST(FuzzGenerator, HammockModeActuallyEmitsHammocks) {
  // The mode must not be decorative: across a seed range, most seeds draw
  // at least one hammock piece (visible as the generator's ham/hjoin
  // labels), and base-mode programs never contain one.
  GenOptions ham;
  ham.hammocks = true;
  int with_hammock = 0;
  for (uint64_t s = 0; s < 40; ++s) {
    EXPECT_EQ(generate_program(s).render().find("ham"), std::string::npos)
        << "seed " << s << ": base mode emitted a hammock";
    if (generate_program(s, ham).render().find("hjoin") != std::string::npos) {
      ++with_hammock;
    }
  }
  EXPECT_GT(with_hammock, 10) << "hammock pieces drawn too rarely";
}

TEST(FuzzGenerator, HammockModeEmitsMergeEligibleDiamonds) {
  // Coverage gate for the whole axis: across the seed budget, the hammock
  // bait must actually drive the translator's merge path (not only the
  // fallback), observed as if-converted hammocks on a predication-enabled
  // system. A generator regression that stops emitting merge-eligible
  // shapes fails here rather than silently weakening the campaigns.
  GenOptions gen;
  gen.hammocks = true;
  gen.nested_hammocks = true;
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.predication = true;
  cfg.residency = accel::Residency::kLoop;
  cfg.machine.max_instructions = 300000;
  const int seeds = seed_budget(20);
  uint64_t merged = 0;
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s), gen);
    const auto st = accel::run_accelerated(asmblr::assemble(p.render()), cfg);
    merged += st.hammocks_merged;
  }
  EXPECT_GT(merged, 0u) << "no seed produced a merge-eligible hammock";
}

TEST(FuzzOracle, HammockProgramsTransparentAcrossPredicationAxis) {
  // The widened matrix (quick_matrix carries predication+residency points)
  // against hammock-bait programs: merge, cap-fallback and nested-fallback
  // paths must all stay architecturally transparent.
  GenOptions gen;
  gen.hammocks = true;
  gen.nested_hammocks = true;
  const int seeds = seed_budget(10);
  for (int s = 0; s < seeds; ++s) {
    const FuzzProgram p = generate_program(static_cast<uint64_t>(s), gen);
    const OracleResult r = check_program(p.render(), quick_matrix());
    EXPECT_FALSE(r.inconclusive) << "seed " << s << ": " << r.inconclusive_reason;
    EXPECT_FALSE(r.divergence.found)
        << "seed " << s << " diverged at " << r.divergence.point_label << ": "
        << r.divergence.detail;
  }
}

TEST(FuzzDispatch, HammockCampaignCleanAndThreadInvariant) {
  // Fast-vs-slow dispatch with the hammock modes on top of both code-store
  // modes: cycle accounting of predicated configs and the residency latch
  // must be bit-identical across dispatch paths and thread counts.
  CampaignOptions options;
  options.seeds = seed_budget(15);
  options.matrix = quick_matrix();
  options.gen.hammocks = true;
  options.gen.nested_hammocks = true;
  options.gen.code_page_stores = true;
  options.gen.smc_patch_stores = true;

  options.threads = 1;
  const CampaignResult one = run_dispatch_campaign(options);
  EXPECT_TRUE(one.clean()) << one.divergent_seeds << " divergent seeds";
  EXPECT_EQ(one.inconclusive_seeds, 0);

  options.threads = 4;
  const CampaignResult four = run_dispatch_campaign(options);
  std::ostringstream json_one, json_four;
  write_campaign_json(json_one, one);
  write_campaign_json(json_four, four);
  EXPECT_EQ(json_one.str(), json_four.str());
}

}  // namespace
}  // namespace dim::fuzz
