#include "common/bitutil.hpp"

#include <gtest/gtest.h>

namespace dim {
namespace {

TEST(BitUtil, BitsExtractsRanges) {
  EXPECT_EQ(bits(0xDEADBEEF, 0, 4), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 4, 4), 0xEu);
  EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits(0xFFFFFFFF, 31, 1), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0, 16), 0);
  EXPECT_EQ(sign_extend(0x2, 2), -2);
  EXPECT_EQ(sign_extend(0x1, 2), 1);
}

TEST(BitUtil, ImmediateFits) {
  EXPECT_TRUE(fits_simm16(-32768));
  EXPECT_TRUE(fits_simm16(32767));
  EXPECT_FALSE(fits_simm16(32768));
  EXPECT_FALSE(fits_simm16(-32769));
  EXPECT_TRUE(fits_uimm16(0));
  EXPECT_TRUE(fits_uimm16(65535));
  EXPECT_FALSE(fits_uimm16(-1));
  EXPECT_FALSE(fits_uimm16(65536));
}

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(12, 3), 4);
}

}  // namespace
}  // namespace dim
