// Warm-start transparency (snap/warmstart.hpp): preloading a previous
// run's translated configurations must not change WHAT the program does —
// only how soon the array takes over. Cold and warm runs retire the same
// instruction stream to the same registers, output and memory image; the
// warm run pays fewer translation-phase costs (rcache misses, insertions,
// cycles). Preloading itself is silent: no events, no counters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "rra/array_shape.hpp"
#include "snap/codec.hpp"
#include "snap/format.hpp"
#include "snap/snapshot.hpp"
#include "snap/warmstart.hpp"
#include "work/workload.hpp"

namespace dim {
namespace {

accel::SystemConfig warm_config() {
  // Enough slots that neither run evicts — isolates the translation-phase
  // delta from replacement noise.
  return accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
}

TEST(WarmStart, ColdAndWarmRunsAreArchitecturallyIdentical) {
  for (const char* name : {"crc32", "quicksort", "bitcount"}) {
    SCOPED_TRACE(name);
    const auto program = asmblr::assemble(work::make_workload(name).source);

    accel::AcceleratedSystem cold(program, warm_config());
    const accel::AccelStats cold_stats = cold.run();
    const std::vector<uint8_t> payload = snap::encode_warm_start(cold, program);

    accel::AcceleratedSystem warm(program, warm_config());
    const size_t preloaded = snap::load_warm_start_payload(warm, payload, program);
    ASSERT_GT(preloaded, 0u);
    // Byte stability: right after preload the cache holds exactly the
    // entries the file carried, in order, so re-exporting reproduces the
    // file. (Checked before the run — running may legitimately extend
    // configurations.)
    EXPECT_EQ(snap::encode_warm_start(warm, program), payload);
    const accel::AccelStats warm_stats = warm.run();

    // Architectural state: identical, bit for bit.
    EXPECT_EQ(warm_stats.instructions, cold_stats.instructions);
    EXPECT_EQ(warm_stats.final_state.reg_hash(), cold_stats.final_state.reg_hash());
    EXPECT_EQ(warm_stats.final_state.output, cold_stats.final_state.output);
    EXPECT_EQ(warm_stats.memory_hash, cold_stats.memory_hash);
    EXPECT_EQ(warm_stats.final_state.pc, cold_stats.final_state.pc);

    // Translation phase: strictly cheaper or equal. Every preloaded
    // sequence skips its detection iteration, so the warm run sees fewer
    // misses and inserts at most what the cold run inserted; the array
    // can only take over earlier.
    EXPECT_LE(warm_stats.rcache_misses, cold_stats.rcache_misses);
    EXPECT_LE(warm_stats.rcache_insertions, cold_stats.rcache_insertions);
    EXPECT_GE(warm_stats.array_activations, cold_stats.array_activations);
    EXPECT_LE(warm_stats.cycles, cold_stats.cycles);
  }
}

TEST(WarmStart, PreloadIsSilent) {
  const auto program = asmblr::assemble(work::make_workload("crc32").source);
  accel::AcceleratedSystem cold(program, warm_config());
  cold.run();
  const std::vector<uint8_t> payload = snap::encode_warm_start(cold, program);

  accel::AcceleratedSystem warm(program, warm_config());
  ASSERT_GT(snap::load_warm_start_payload(warm, payload, program), 0u);
  // The cache is hot...
  EXPECT_EQ(warm.rcache().size(), cold.rcache().size());
  // ...but nothing was accounted: the warm run's statistics must measure
  // only the run itself.
  const bt::RcacheCounters c = warm.rcache().counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.insertions, 0u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.words_written, 0u);
  EXPECT_EQ(warm.stats().instructions, 0u);
}

TEST(WarmStart, MismatchedProgramOrTranslationKnobsRejected) {
  const auto program = asmblr::assemble(work::make_workload("crc32").source);
  accel::AcceleratedSystem cold(program, warm_config());
  cold.run();
  const std::vector<uint8_t> payload = snap::encode_warm_start(cold, program);

  {  // Different program image.
    const auto other = asmblr::assemble(work::make_workload("bitcount").source);
    accel::AcceleratedSystem sys(other, warm_config());
    try {
      snap::load_warm_start_payload(sys, payload, other);
      FAIL() << "foreign program accepted";
    } catch (const snap::SnapshotError& e) {
      EXPECT_EQ(e.code(), snap::SnapErrc::kMismatch);
    }
  }
  {  // Same program, different translation knobs (speculation off).
    accel::SystemConfig cfg = warm_config();
    cfg.speculation = false;
    accel::AcceleratedSystem sys(program, cfg);
    try {
      snap::load_warm_start_payload(sys, payload, program);
      FAIL() << "foreign translation fingerprint accepted";
    } catch (const snap::SnapshotError& e) {
      EXPECT_EQ(e.code(), snap::SnapErrc::kMismatch);
    }
  }
  {  // Same program, smaller cache: geometry is NOT part of the
     // fingerprint — preload takes oldest-first until full, never evicts.
    accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 2, true);
    accel::AcceleratedSystem sys(program, cfg);
    const size_t loaded = snap::load_warm_start_payload(sys, payload, program);
    EXPECT_LE(loaded, 2u);
    EXPECT_LE(sys.rcache().size(), 2u);
    const accel::AccelStats partial = sys.run();
    const accel::AccelStats straight = accel::run_accelerated(program, cfg);
    EXPECT_EQ(partial.final_state.output, straight.final_state.output);
    EXPECT_EQ(partial.memory_hash, straight.memory_hash);
    EXPECT_EQ(partial.instructions, straight.instructions);
  }
}

TEST(WarmStart, InspectReportsTheExportedEntries) {
  const auto program = asmblr::assemble(work::make_workload("quicksort").source);
  accel::AcceleratedSystem cold(program, warm_config());
  cold.run();
  const std::vector<uint8_t> payload = snap::encode_warm_start(cold, program);

  const snap::WarmStartInfo info = snap::inspect_warm_start(payload);
  EXPECT_EQ(info.program_hash, snap::program_hash(program));
  ASSERT_EQ(info.entries.size(), cold.rcache().size());
  const std::vector<uint32_t> order = cold.rcache().fifo_order();
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(info.entries[i].start_pc, order[i]);
    EXPECT_GT(info.entries[i].ops, 0);
  }
}

TEST(WarmStart, StreamRoundTripAndWrongKindRejected) {
  const auto program = asmblr::assemble(work::make_workload("crc32").source);
  accel::AcceleratedSystem cold(program, warm_config());
  cold.run();

  std::stringstream file;
  snap::save_warm_start(file, cold, program);
  accel::AcceleratedSystem warm(program, warm_config());
  EXPECT_GT(snap::load_warm_start(warm, file, program), 0u);

  // A snapshot container is a valid artifact of the wrong kind.
  std::stringstream snap_file;
  snap::save_snapshot(snap_file, cold, program);
  accel::AcceleratedSystem other(program, warm_config());
  try {
    snap::load_warm_start(other, snap_file, program);
    FAIL() << "snapshot accepted as warm-start";
  } catch (const snap::SnapshotError& e) {
    EXPECT_EQ(e.code(), snap::SnapErrc::kMismatch);
  }
}

}  // namespace
}  // namespace dim
