#include <gtest/gtest.h>

#include "bt/predictor.hpp"

namespace dim::bt {
namespace {

TEST(Predictor, StartsWeaklyNotTaken) {
  BimodalPredictor p;
  EXPECT_EQ(p.counter(0x100), 1);
  EXPECT_FALSE(p.predict(0x100));
  EXPECT_FALSE(p.saturated_direction(0x100).has_value());
}

TEST(Predictor, SaturatesUp) {
  BimodalPredictor p;
  p.update(0x100, true);
  EXPECT_EQ(p.counter(0x100), 2);
  EXPECT_TRUE(p.predict(0x100));
  EXPECT_FALSE(p.saturated_direction(0x100).has_value());
  p.update(0x100, true);
  EXPECT_EQ(p.counter(0x100), 3);
  ASSERT_TRUE(p.saturated_direction(0x100).has_value());
  EXPECT_TRUE(*p.saturated_direction(0x100));
  p.update(0x100, true);  // stays saturated
  EXPECT_EQ(p.counter(0x100), 3);
}

TEST(Predictor, SaturatesDown) {
  BimodalPredictor p;
  p.update(0x200, false);
  EXPECT_EQ(p.counter(0x200), 0);
  ASSERT_TRUE(p.saturated_direction(0x200).has_value());
  EXPECT_FALSE(*p.saturated_direction(0x200));
  p.update(0x200, false);
  EXPECT_EQ(p.counter(0x200), 0);
}

TEST(Predictor, HysteresisOnAlternation) {
  BimodalPredictor p;
  p.update(0x300, true);
  p.update(0x300, true);  // 3
  p.update(0x300, false);  // 2 — still predicts taken
  EXPECT_TRUE(p.predict(0x300));
  EXPECT_FALSE(p.saturated_direction(0x300).has_value());
  p.update(0x300, false);  // 1
  p.update(0x300, false);  // 0
  EXPECT_FALSE(p.predict(0x300));
  EXPECT_TRUE(p.saturated_direction(0x300).has_value());
}

TEST(Predictor, IndependentPerBranch) {
  BimodalPredictor p;
  p.update(0x100, true);
  p.update(0x100, true);
  EXPECT_TRUE(p.predict(0x100));
  EXPECT_FALSE(p.predict(0x104));
  EXPECT_EQ(p.tracked_branches(), 1u);
  p.update(0x104, false);
  EXPECT_EQ(p.tracked_branches(), 2u);
}

TEST(Predictor, Reset) {
  BimodalPredictor p;
  p.update(0x100, true);
  p.reset();
  EXPECT_EQ(p.counter(0x100), 1);
  EXPECT_EQ(p.tracked_branches(), 0u);
}

}  // namespace
}  // namespace dim::bt
