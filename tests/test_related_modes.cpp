// The related-work emulation knobs: CCA-style FU restrictions and
// warp-style kernel-only translation must stay transparent and behave as
// documented.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bt/translator.hpp"
#include "prof/bb_profiler.hpp"
#include "sim/machine.hpp"
#include "work/workload.hpp"

namespace dim::accel {
namespace {

using isa::Instr;
using isa::Op;

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

TEST(CcaMode, BuilderRejectsRestrictedOps) {
  bt::TranslatorParams p;
  p.allow_mem = false;
  p.allow_shifts = false;
  p.allow_mult = false;
  bt::ConfigBuilder b(0x100, p);
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_FALSE(b.try_add(imm(Op::kLw, 9, 28, 0), 0x104));
  Instr sll;
  sll.op = Op::kSll;
  sll.rd = 9;
  sll.rt = 8;
  sll.shamt = 2;
  EXPECT_FALSE(b.try_add(sll, 0x104));
  Instr mult;
  mult.op = Op::kMult;
  mult.rs = 8;
  mult.rt = 8;
  EXPECT_FALSE(b.try_add(mult, 0x104));
  Instr mflo;
  mflo.op = Op::kMflo;
  mflo.rd = 9;
  EXPECT_FALSE(b.try_add(mflo, 0x104));
  EXPECT_EQ(b.size(), 1);
}

TEST(CcaMode, TransparentButWeakerOnMemoryCode) {
  const auto wl = work::make_workload("crc32", 1);
  const auto prog = asmblr::assemble(wl.source);
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});

  SystemConfig cca = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cca.allow_mem = false;
  cca.allow_shifts = false;
  cca.allow_mult = false;
  cca.max_input_regs = 4;
  cca.max_output_regs = 2;
  const auto st = run_accelerated(prog, cca);
  EXPECT_EQ(st.final_state.output, wl.expected_output);
  EXPECT_EQ(st.memory_hash, base.memory_hash);

  const auto full = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  // CRC32's loop is load+shift dominated: the restricted array must cover
  // far less of it.
  EXPECT_LT(st.array_instructions, full.array_instructions / 2);
}

TEST(WarpMode, OnlyAllowedStartsTranslate) {
  const auto wl = work::make_workload("bitcount", 1);
  const auto prog = asmblr::assemble(wl.source);

  // Profile for hot block leaders.
  sim::Machine machine(prog);
  prof::BbProfiler profiler;
  machine.run([&profiler](const sim::StepInfo& info) { profiler.observe(info); });
  const auto hot = profiler.blocks_by_weight();
  ASSERT_GE(hot.size(), 3u);

  SystemConfig one = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  one.allowed_starts.insert(hot[0].start_pc);
  const auto st_one = run_accelerated(prog, one);

  SystemConfig all = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  const auto st_all = run_accelerated(prog, all);

  EXPECT_EQ(st_one.final_state.output, st_all.final_state.output);
  EXPECT_LE(st_one.rcache_insertions, 2u);  // at most the one allowed start
  EXPECT_LT(st_one.array_instructions, st_all.array_instructions);
  EXPECT_GE(st_one.cycles, st_all.cycles);
}

TEST(WarpMode, CoverageGrowsWithK) {
  const auto wl = work::make_workload("jpeg_d", 1);
  const auto prog = asmblr::assemble(wl.source);
  sim::Machine machine(prog);
  prof::BbProfiler profiler;
  machine.run([&profiler](const sim::StepInfo& info) { profiler.observe(info); });
  const auto hot = profiler.blocks_by_weight();

  uint64_t prev_array = 0;
  for (size_t k : {size_t{1}, size_t{4}, size_t{12}}) {
    SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
    for (size_t i = 0; i < k && i < hot.size(); ++i) {
      cfg.allowed_starts.insert(hot[i].start_pc);
    }
    const auto st = run_accelerated(prog, cfg);
    EXPECT_GE(st.array_instructions, prev_array);
    prev_array = st.array_instructions;
  }
}

}  // namespace
}  // namespace dim::accel
