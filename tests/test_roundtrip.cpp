// Cross-layer round-trip properties:
//   - disassembled text re-assembles to the identical encoding;
//   - programs relocate cleanly to different text/data bases;
//   - the accelerated system honors run limits.
#include <gtest/gtest.h>

#include <random>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "work/workload.hpp"

namespace dim {
namespace {

using isa::Instr;
using isa::Op;

// Disassembles an instruction placed at `pc`, re-assembles the text at the
// same pc, and disassembles again: the text must be a fixpoint. (Raw words
// can differ in don't-care fields — e.g. `sll` ignores rs — which the
// printer rightly omits.)
void expect_reassembles(const Instr& i, uint32_t pc = 0x00400000) {
  const std::string text = isa::disasm(i, pc);
  // Jump/branch targets print as absolute hex — valid operands for the
  // assembler. Assemble the single instruction at the same address.
  const std::string source = "        .text " + std::to_string(pc) + "\n        " + text + "\n";
  asmblr::Program program;
  ASSERT_NO_THROW(program = asmblr::assemble(source)) << text;
  const asmblr::Segment& seg = program.segments[0];
  ASSERT_EQ(seg.bytes.size(), 4u) << text;
  const uint32_t word = static_cast<uint32_t>(seg.bytes[0]) |
                        (static_cast<uint32_t>(seg.bytes[1]) << 8) |
                        (static_cast<uint32_t>(seg.bytes[2]) << 16) |
                        (static_cast<uint32_t>(seg.bytes[3]) << 24);
  EXPECT_EQ(isa::disasm(isa::decode(word), pc), text);
}

TEST(DisasmRoundTrip, RandomInstructionsReassemble) {
  std::mt19937 rng(424242);
  int checked = 0;
  for (int n = 0; n < 30000; ++n) {
    const uint32_t word = rng();
    const Instr i = isa::decode(word);
    if (i.op == Op::kInvalid) continue;
    // Skip forms whose branch/jump targets fall outside an assemblable
    // window for the fixed pc (the assembler correctly range-checks them).
    if (isa::is_jump(i.op) && (i.op == Op::kJ || i.op == Op::kJal)) {
      // j targets must stay in the same 256MB segment as pc+4; always true
      // for pc 0x400000 since target26 covers exactly that window.
      expect_reassembles(i);
      ++checked;
      continue;
    }
    expect_reassembles(i);
    ++checked;
  }
  EXPECT_GT(checked, 2000);
}

TEST(DisasmRoundTrip, EveryOpcodeHasAWorkingPrinter) {
  // One representative of every op (branch displacement small).
  for (int raw = 1; raw <= static_cast<int>(Op::kSw); ++raw) {
    Instr i;
    i.op = static_cast<Op>(raw);
    i.rs = 9;
    i.rt = 10;
    i.rd = 11;
    i.shamt = 3;
    i.imm16 = 16;
    i.target26 = (0x00400100 >> 2);
    expect_reassembles(i);
  }
}

TEST(Relocation, WorkloadsRunAtAlternateBases) {
  const work::Workload wl = work::make_workload("crc32", 1);
  asmblr::AsmOptions options;
  options.text_base = 0x00800000;
  options.data_base = 0x10800000;
  const asmblr::Program moved = asmblr::assemble(wl.source, options);
  EXPECT_EQ(moved.entry, 0x00800000u);
  const sim::RunResult r = sim::run_baseline(moved);
  EXPECT_EQ(r.state.output, wl.expected_output);
}

TEST(Relocation, TwoProgramsCoexistInOneAddressSpace) {
  // Assemble two kernels at disjoint bases, load both, run one after the
  // other on the same memory image (the heterogeneous-device setup).
  const work::Workload a = work::make_workload("bitcount", 1);
  const work::Workload b = work::make_workload("crc32", 1);
  asmblr::AsmOptions oa;  // defaults
  asmblr::AsmOptions ob;
  ob.text_base = 0x00600000;
  ob.data_base = 0x10600000;
  const asmblr::Program pa = asmblr::assemble(a.source, oa);
  const asmblr::Program pb = asmblr::assemble(b.source, ob);

  mem::Memory m;
  pa.load_into(m);
  pb.load_into(m);

  for (const auto& [prog, wl] : {std::pair{&pa, &a}, std::pair{&pb, &b}}) {
    sim::CpuState s;
    s.pc = prog->entry;
    s.regs[29] = 0x7FFF0000;
    s.regs[28] = 0x10008000;
    while (!s.halted) sim::step(s, m);
    EXPECT_EQ(s.output, wl->expected_output);
  }
}

TEST(RunLimits, AcceleratedSystemHonorsMaxInstructions) {
  const char* endless = R"(
main:   li $t0, 0
loop:   addiu $t0, $t0, 1
        xor $t1, $t0, $t1
        addu $t2, $t2, $t1
        sll $t3, $t2, 1
        b loop
)";
  const auto prog = asmblr::assemble(endless);
  accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.machine.max_instructions = 5000;
  const auto st = accel::run_accelerated(prog, cfg);
  EXPECT_TRUE(st.hit_limit);
  // The array commits in batches, so the count may overshoot by at most
  // one configuration's worth.
  EXPECT_GE(st.instructions, 5000u);
  EXPECT_LT(st.instructions, 5400u);
}

}  // namespace
}  // namespace dim
