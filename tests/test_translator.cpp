// The DIM binary-translation algorithm: placement rules (RAW rows, resource
// limits, memory ordering), the detection state machine, and speculation
// gating.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "bt/translator.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "sim/executor.hpp"
#include "sim/machine.hpp"

namespace dim::bt {
namespace {

using isa::Instr;
using isa::Op;

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

TranslatorParams params_with(rra::ArrayShape shape) {
  TranslatorParams p;
  p.shape = shape;
  return p;
}

int row_of(const rra::Configuration& c, uint32_t pc) {
  for (const auto& op : c.ops) {
    if (op.pc == pc) return op.row;
  }
  return -999;
}

TEST(ConfigBuilder, IndependentOpsShareRowZero) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x104));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 10, 0, 3), 0x108));
  const auto c = b.finalize(0x10C);
  EXPECT_EQ(c.rows_used, 1);
  for (const auto& op : c.ops) EXPECT_EQ(op.row, 0);
  // Columns assigned left-to-right.
  EXPECT_EQ(c.ops[0].col, 0);
  EXPECT_EQ(c.ops[1].col, 1);
  EXPECT_EQ(c.ops[2].col, 2);
}

TEST(ConfigBuilder, RawDependenceForcesLowerRow) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));       // t0 @ row 0
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));         // t1 = t0+t0 @ row 1
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 10, 9, 8), 0x108));        // t2 = t1+t0 @ row 2
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 11, 0, 5), 0x10C));      // independent @ row 0
  const auto c = b.finalize(0x110);
  EXPECT_EQ(row_of(c, 0x100), 0);
  EXPECT_EQ(row_of(c, 0x104), 1);
  EXPECT_EQ(row_of(c, 0x108), 2);
  EXPECT_EQ(row_of(c, 0x10C), 0);
  EXPECT_EQ(c.rows_used, 3);
}

TEST(ConfigBuilder, ProducerRowInvariantHoldsOnRealCode) {
  // Assemble a nontrivial block and verify: every op sits strictly below
  // every producer of its sources (the paper's dependence-table rule).
  const char* body =
      "main: addiu $t0, $zero, 4\n"
      " addiu $t1, $zero, 9\n"
      " addu $t2, $t0, $t1\n"
      " sll $t3, $t2, 2\n"
      " xor $t4, $t3, $t0\n"
      " ori $t5, $t4, 0xF\n"
      " subu $t6, $t5, $t1\n"
      " break\n";
  const asmblr::Program p = asmblr::assemble(body);
  ConfigBuilder b(p.entry, params_with(rra::ArrayShape::config1()));
  sim::CpuState st;
  st.pc = p.entry;
  mem::Memory m;
  p.load_into(m);
  std::vector<rra::ArrayOp> added;
  while (!st.halted) {
    const sim::StepInfo info = sim::step(st, m);
    if (info.instr.op == Op::kBreak) break;
    ASSERT_TRUE(b.try_add(info.instr, info.pc));
  }
  const auto c = b.finalize(0);
  std::array<int, rra::kNumCtxRegs> writer_row;
  writer_row.fill(-1);
  for (const auto& op : c.ops) {
    int srcs[2];
    const int n = rra::array_srcs(op.instr, srcs);
    for (int k = 0; k < n; ++k) {
      if (srcs[k] == 0) continue;
      const int prod = writer_row[static_cast<size_t>(srcs[k])];
      if (prod >= 0) {
        EXPECT_GT(op.row, prod);
      }
    }
    int dsts[2];
    const int nd = rra::array_dests(op.instr, dsts);
    for (int k = 0; k < nd; ++k) writer_row[static_cast<size_t>(dsts[k])] = op.row;
  }
}

TEST(ConfigBuilder, FalseDependenciesDoNotSerialize) {
  // WAR and WAW: t0 rewritten; reader of the OLD t0 can share the row of
  // the new writer (renaming through the context bus).
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));   // t0 = 1   row 0
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));     // t1 = t0+t0 row 1 (reads old t0)
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 7), 0x108));   // t0 = 7 (WAW) row 0
  const auto c = b.finalize(0x10C);
  EXPECT_EQ(row_of(c, 0x108), 0);  // WAW does not push it below row 0
}

TEST(ConfigBuilder, ResourceLimitFillsNextRow) {
  rra::ArrayShape tiny{8, 2, 1, 1};  // 2 ALUs per line
  ConfigBuilder b(0x100, params_with(tiny));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x104));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 10, 0, 3), 0x108));  // row 0 full -> row 1
  const auto c = b.finalize(0x10C);
  EXPECT_EQ(row_of(c, 0x108), 1);
}

TEST(ConfigBuilder, CapacityExhaustionFails) {
  rra::ArrayShape tiny{2, 1, 1, 1};  // 2 lines x 1 ALU
  ConfigBuilder b(0x100, params_with(tiny));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x104));
  EXPECT_FALSE(b.try_add(imm(Op::kAddiu, 10, 0, 3), 0x108));
  EXPECT_EQ(b.size(), 2);  // failed add left the builder unchanged
}

TEST(ConfigBuilder, MemoryOrderingLoadsMayNotPassStores) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kSw, 9, 28, 0), 0x100));   // store @ row 0
  EXPECT_TRUE(b.try_add(imm(Op::kLw, 10, 28, 8), 0x104));  // independent addr load
  const auto c = b.finalize(0x108);
  EXPECT_GT(row_of(c, 0x104), row_of(c, 0x100));
}

TEST(ConfigBuilder, MemoryOrderingStoresMayNotPassLoads) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kLw, 10, 28, 8), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kSw, 9, 28, 0), 0x104));
  const auto c = b.finalize(0x108);
  EXPECT_GT(row_of(c, 0x104), row_of(c, 0x100));
}

TEST(ConfigBuilder, LoadsMayRunInParallel) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kLw, 10, 28, 0), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kLw, 11, 28, 4), 0x104));
  const auto c = b.finalize(0x108);
  EXPECT_EQ(row_of(c, 0x100), 0);
  EXPECT_EQ(row_of(c, 0x104), 0);  // 2 LD/ST units per line in config #1
}

TEST(ConfigBuilder, MultWritesHiLoAndMfloReadsThem) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(r3(Op::kMult, 0, 8, 9), 0x100));
  EXPECT_TRUE(b.try_add(r3(Op::kMflo, 10, 0, 0), 0x104));
  EXPECT_TRUE(b.try_add(r3(Op::kMfhi, 11, 0, 0), 0x108));
  const auto c = b.finalize(0x10C);
  EXPECT_EQ(row_of(c, 0x100), 0);
  EXPECT_GT(row_of(c, 0x104), 0);
  EXPECT_GT(row_of(c, 0x108), 0);
  EXPECT_EQ(c.row_kinds[0], rra::RowKind::kMul);
}

TEST(ConfigBuilder, InputAndOutputContextCounted) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 9), 0x100));   // reads t0,t1 writes t2
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 11, 10, 8), 0x104));  // reads t2(int),t0 writes t3
  const auto c = b.finalize(0x108);
  EXPECT_EQ(c.input_regs, 2);   // t0, t1 (t2 produced internally)
  EXPECT_EQ(c.output_regs, 2);  // t2, t3
}

TEST(ConfigBuilder, ZeroRegisterIsNeverContext) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 10, 0, 0), 0x100));
  const auto c = b.finalize(0x104);
  EXPECT_EQ(c.input_regs, 0);
}

TEST(ConfigBuilder, ImmediateCapacity) {
  TranslatorParams p = params_with(rra::ArrayShape::config1());
  p.max_immediates = 2;
  ConfigBuilder b(0x100, p);
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x104));
  EXPECT_FALSE(b.try_add(imm(Op::kAddiu, 10, 0, 3), 0x108));
  EXPECT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 9), 0x108));  // no immediate: ok
}

TEST(ConfigBuilder, BranchOpensSpeculativeBlock) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(b.try_add_branch(imm(Op::kBne, 9, 8, -2), 0x104, true));
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 10, 0, 2), 0x108));
  const auto c = b.finalize(0x10C);
  EXPECT_EQ(c.num_bbs, 2);
  EXPECT_EQ(c.ops[0].bb_index, 0);
  EXPECT_TRUE(c.ops[1].is_branch);
  EXPECT_EQ(c.ops[1].bb_index, 0);  // branch belongs to the block it ends
  EXPECT_EQ(c.ops[2].bb_index, 1);
}

TEST(ConfigBuilder, AndLinkBranchesRejected) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  Instr bz;
  bz.op = Op::kBltzal;
  EXPECT_FALSE(b.try_add_branch(bz, 0x100, true));
}

TEST(ConfigBuilder, ReplayReproducesConfiguration) {
  ConfigBuilder b(0x100, params_with(rra::ArrayShape::config1()));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 9, 8, 4), 0x104, true));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 8), 0x108));
  const auto c = b.finalize(0x10C);

  ConfigBuilder b2(c.start_pc, params_with(rra::ArrayShape::config1()));
  ASSERT_TRUE(b2.replay(c));
  const auto c2 = b2.finalize(0x10C);
  ASSERT_EQ(c2.ops.size(), c.ops.size());
  for (size_t i = 0; i < c.ops.size(); ++i) {
    EXPECT_EQ(c2.ops[i].row, c.ops[i].row);
    EXPECT_EQ(c2.ops[i].col, c.ops[i].col);
    EXPECT_EQ(c2.ops[i].bb_index, c.ops[i].bb_index);
  }
}

// --- Detection state machine --------------------------------------------------

struct Harness {
  TranslatorParams params = params_with(rra::ArrayShape::config1());
  ReconfigCache cache{64};
  BimodalPredictor predictor;
};

sim::StepInfo step_of(Instr i, uint32_t pc, bool taken = false) {
  sim::StepInfo s;
  s.instr = i;
  s.pc = pc;
  s.next_pc = pc + 4;
  s.is_branch = isa::is_branch(i.op);
  s.taken = taken;
  return s;
}

TEST(Translator, CapturesSequenceAfterBranchAndStoresIt) {
  Harness h;
  h.params.speculation = false;
  Translator t(h.params, &h.cache, &h.predictor);
  // Entry: capture starts immediately (start_pending defaults to true).
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kXor, 10, 9, 8), 0x108));
  t.observe(step_of(imm(Op::kOri, 11, 10, 1), 0x10C));
  // A branch ends the sequence; >3 instructions -> cached.
  t.observe(step_of(imm(Op::kBne, 0, 8, -5), 0x110, true));
  ASSERT_TRUE(h.cache.contains(0x100));
  const rra::Configuration* c = h.cache.lookup(0x100);
  EXPECT_EQ(c->instruction_count(), 4);
  EXPECT_EQ(c->end_pc, 0x110u);
  EXPECT_EQ(c->num_bbs, 1);
}

TEST(Translator, ShortSequencesAreDiscarded) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(imm(Op::kBne, 0, 8, -3), 0x108, true));  // only 2 ops
  EXPECT_FALSE(h.cache.contains(0x100));
  EXPECT_EQ(t.stats().too_short, 1u);
}

TEST(Translator, UnsupportedInstructionEndsCaptureWithoutRearming) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  Instr sys;
  sys.op = Op::kSyscall;
  t.observe(step_of(sys, 0x110));
  EXPECT_TRUE(h.cache.contains(0x100));
  // Detection does not restart until the next branch.
  t.observe(step_of(imm(Op::kAddiu, 12, 0, 1), 0x114));
  EXPECT_FALSE(t.capturing());
  t.observe(step_of(imm(Op::kBne, 0, 8, 2), 0x118, true));
  t.observe(step_of(imm(Op::kAddiu, 12, 0, 1), 0x11C));
  EXPECT_TRUE(t.capturing());
}

TEST(Translator, DoesNotRecaptureCachedSequences) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  rra::Configuration c;
  c.start_pc = 0x100;
  h.cache.insert(c);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));  // start pending but cached
  EXPECT_FALSE(t.capturing());
}

TEST(Translator, SpeculationRequiresSaturatedCounter) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  const Instr br = imm(Op::kBne, 0, 8, 4);
  // Counter not saturated: capture ends at the branch.
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  t.observe(step_of(br, 0x110, true));
  ASSERT_TRUE(h.cache.contains(0x100));
  EXPECT_EQ(h.cache.lookup(0x100)->num_bbs, 1);

  // Saturate the counter, flush, recapture: now the branch is merged.
  h.predictor.update(0x110, true);  // counter: 2 -> 3 (one update came from observe)
  ASSERT_TRUE(h.predictor.saturated_direction(0x110).has_value());
  h.cache.flush(0x100);
  t.observe(step_of(br, 0x0FC, true));  // re-arm detection via a branch
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  t.observe(step_of(br, 0x110, true));  // saturated taken & actually taken: merge
  EXPECT_TRUE(t.capturing());
  t.observe(step_of(imm(Op::kAddiu, 12, 0, 2), 0x90));
  Instr sys;
  sys.op = Op::kSyscall;
  t.observe(step_of(sys, 0x94));
  ASSERT_TRUE(h.cache.contains(0x100));
  EXPECT_EQ(h.cache.lookup(0x100)->num_bbs, 2);
}

TEST(Translator, SpeculationDepthCountsBlocksBeyondTheFirst) {
  // max_spec_bbs counts SPECULATIVE basic blocks merged beyond the entry
  // block (the paper's "up to 3 basic blocks deep" speculation), so a
  // configuration holds at most max_spec_bbs + 1 blocks in total. With
  // max_spec_bbs = 2: two branches merge, the third ends the capture.
  Harness h;
  h.params.max_spec_bbs = 2;
  Translator t(h.params, &h.cache, &h.predictor);
  // Saturate every branch counter in the taken direction up front.
  for (uint32_t pc : {0x110u, 0x118u, 0x120u}) {
    h.predictor.update(pc, true);
    h.predictor.update(pc, true);
  }
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  t.observe(step_of(imm(Op::kBne, 0, 8, 4), 0x110, true));   // block 2 opens
  t.observe(step_of(imm(Op::kAddiu, 12, 0, 2), 0x114));
  t.observe(step_of(imm(Op::kBne, 0, 8, 4), 0x118, true));   // block 3 opens
  t.observe(step_of(imm(Op::kAddiu, 13, 0, 3), 0x11C));
  EXPECT_TRUE(t.capturing());
  t.observe(step_of(imm(Op::kBne, 0, 8, 4), 0x120, true));   // depth spent: ends capture
  EXPECT_FALSE(t.capturing());
  const rra::Configuration* c = h.cache.peek(0x100);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_bbs, 3);  // max_spec_bbs + 1 total
  EXPECT_EQ(c->end_pc, 0x120u);
}

TEST(Translator, StartCandidateMissIsCounted) {
  // The translator registers exactly one rcache miss per untranslated
  // sequence-start candidate; plain observation of the body does not count.
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));  // start candidate: miss
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  EXPECT_EQ(h.cache.misses(), 1u);
  t.observe(step_of(imm(Op::kBne, 0, 8, -5), 0x110, true));  // stores the config
  // Re-encountering the now-cached start counts no further miss.
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_EQ(h.cache.misses(), 1u);
  EXPECT_EQ(t.stats().captures_started, 1u);
}

TEST(Translator, SpeculationDisabledNeverMerges) {
  Harness h;
  h.params.speculation = false;
  Translator t(h.params, &h.cache, &h.predictor);
  h.predictor.update(0x110, true);
  h.predictor.update(0x110, true);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  t.observe(step_of(r3(Op::kAddu, 9, 8, 8), 0x104));
  t.observe(step_of(r3(Op::kAddu, 10, 9, 8), 0x108));
  t.observe(step_of(r3(Op::kAddu, 11, 10, 8), 0x10C));
  t.observe(step_of(imm(Op::kBne, 0, 8, 4), 0x110, true));
  ASSERT_TRUE(h.cache.contains(0x100));
  EXPECT_EQ(h.cache.lookup(0x100)->num_bbs, 1);
}

TEST(Translator, ArrayExecutionAbortsCapture) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  t.observe(step_of(imm(Op::kAddiu, 8, 0, 1), 0x100));
  EXPECT_TRUE(t.capturing());
  t.on_array_executed();
  EXPECT_FALSE(t.capturing());
  EXPECT_EQ(t.stats().captures_aborted, 1u);
}

TEST(Translator, ExtensionAppendsBasicBlock) {
  Harness h;
  Translator t(h.params, &h.cache, &h.predictor);
  // Seed a cached config of 4 ops ending right before a branch at 0x110.
  ConfigBuilder b(0x100, h.params);
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 10, 9, 8), 0x108));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 11, 10, 8), 0x10C));
  h.cache.insert(b.finalize(0x110));

  const Instr br = imm(Op::kBne, 0, 8, 4);
  ASSERT_TRUE(t.begin_extension(*h.cache.lookup(0x100), br, 0x110, true));
  EXPECT_TRUE(t.extending());
  t.observe(step_of(imm(Op::kAddiu, 12, 0, 9), 0x124));
  Instr sys;
  sys.op = Op::kSyscall;
  t.observe(step_of(sys, 0x128));
  EXPECT_FALSE(t.extending());
  const rra::Configuration* c = h.cache.lookup(0x100);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_bbs, 2);
  EXPECT_EQ(c->instruction_count(), 6);  // 4 + branch + 1
  EXPECT_EQ(c->end_pc, 0x128u);
  EXPECT_EQ(t.stats().extensions_completed, 1u);
}

}  // namespace
}  // namespace dim::bt
