#include <gtest/gtest.h>

#include <sstream>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bt/rcache.hpp"
#include "bt/translator.hpp"
#include "isa/encoder.hpp"
#include "rra/array_exec.hpp"
#include "rra/config_io.hpp"

namespace dim::rra {
namespace {

using isa::Instr;
using isa::Op;

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

Configuration sample_config() {
  bt::TranslatorParams params;
  bt::ConfigBuilder b(0x400100, params);
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x400100));
  EXPECT_TRUE(b.try_add(imm(Op::kLw, 9, 28, 16), 0x400104));
  EXPECT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 4), 0x400108, true));
  EXPECT_TRUE(b.try_add(imm(Op::kSw, 9, 28, 20), 0x40010C));
  return b.finalize(0x400110);
}

TEST(ConfigIo, RoundTripPreservesEverything) {
  const Configuration original = sample_config();
  std::stringstream ss;
  write_configuration(ss, original);
  const Configuration loaded = read_configuration(ss);

  EXPECT_EQ(loaded.start_pc, original.start_pc);
  EXPECT_EQ(loaded.end_pc, original.end_pc);
  EXPECT_EQ(loaded.num_bbs, original.num_bbs);
  EXPECT_EQ(loaded.rows_used, original.rows_used);
  EXPECT_EQ(loaded.input_regs, original.input_regs);
  EXPECT_EQ(loaded.output_regs, original.output_regs);
  ASSERT_EQ(loaded.ops.size(), original.ops.size());
  for (size_t i = 0; i < original.ops.size(); ++i) {
    EXPECT_EQ(isa::encode(loaded.ops[i].instr), isa::encode(original.ops[i].instr)) << i;
    EXPECT_EQ(loaded.ops[i].pc, original.ops[i].pc) << i;
    EXPECT_EQ(loaded.ops[i].row, original.ops[i].row) << i;
    EXPECT_EQ(loaded.ops[i].col, original.ops[i].col) << i;
    EXPECT_EQ(loaded.ops[i].bb_index, original.ops[i].bb_index) << i;
    EXPECT_EQ(loaded.ops[i].is_branch, original.ops[i].is_branch) << i;
    EXPECT_EQ(loaded.ops[i].predicted_taken, original.ops[i].predicted_taken) << i;
    EXPECT_EQ(loaded.ops[i].kind, original.ops[i].kind) << i;
  }
  ASSERT_EQ(loaded.row_kinds.size(), original.row_kinds.size());
  for (size_t r = 0; r < original.row_kinds.size(); ++r) {
    EXPECT_EQ(loaded.row_kinds[r], original.row_kinds[r]);
  }
}

TEST(ConfigIo, LoadedConfigExecutesIdentically) {
  const Configuration original = sample_config();
  std::stringstream ss;
  write_configuration(ss, original);
  const Configuration loaded = read_configuration(ss);

  for (uint32_t t0 : {0u, 5u}) {  // branch both ways
    sim::CpuState s1, s2;
    s1.regs[8] = s2.regs[8] = t0;
    s1.regs[28] = s2.regs[28] = 0x10008000;
    mem::Memory m1, m2;
    m1.write32(0x10008010, 77);
    m2.write32(0x10008010, 77);
    const ArrayTimingParams timing;
    const auto o1 = execute_configuration(original, s1, m1, nullptr, timing);
    const auto o2 = execute_configuration(loaded, s2, m2, nullptr, timing);
    EXPECT_EQ(o1.next_pc, o2.next_pc);
    EXPECT_EQ(o1.committed_ops, o2.committed_ops);
    EXPECT_EQ(o1.total_cycles(), o2.total_cycles());
    EXPECT_EQ(s1.reg_hash(), s2.reg_hash());
    EXPECT_EQ(m1.content_hash(), m2.content_hash());
  }
}

TEST(ConfigIo, MalformedInputsThrow) {
  {
    std::stringstream ss("bogus v1 1 2 3");
    EXPECT_THROW(read_configuration(ss), std::runtime_error);
  }
  {
    std::stringstream ss("config v2 0 0 1 0 0 0 0 0\nrowkinds\n");
    EXPECT_THROW(read_configuration(ss), std::runtime_error);
  }
  {
    // op count promises 1 op but stream ends.
    std::stringstream ss("config v1 0 16 1 1 0 0 0 1\n");
    EXPECT_THROW(read_configuration(ss), std::runtime_error);
  }
  {
    // Invalid instruction word (all ones is not decodable).
    std::stringstream ss("config v1 0 16 1 1 0 0 0 1\nop 4294967295 0 0 0 0 0 0\nrowkinds 0\n");
    EXPECT_THROW(read_configuration(ss), std::runtime_error);
  }
}

TEST(ConfigIo, CacheSaveLoadPreservesFifoOrder) {
  bt::ReconfigCache cache(8);
  Configuration a = sample_config();
  a.start_pc = 0x100;
  Configuration b = sample_config();
  b.start_pc = 0x200;
  cache.insert(a);
  cache.insert(b);

  std::stringstream ss;
  save_cache(ss, cache);

  bt::ReconfigCache restored(8);
  load_cache(ss, restored);
  ASSERT_EQ(restored.size(), 2u);
  ASSERT_EQ(restored.fifo_order().size(), 2u);
  EXPECT_EQ(restored.fifo_order()[0], 0x100u);
  EXPECT_EQ(restored.fifo_order()[1], 0x200u);
  EXPECT_NE(restored.peek(0x100), nullptr);
  EXPECT_EQ(restored.peek(0x100)->ops.size(), a.ops.size());
}

TEST(ConfigIo, WarmStartSkipsDetection) {
  // Run once, save the cache; a second system pre-loaded with it activates
  // the array immediately and performs no insertions of its own for the
  // already-translated code.
  const char* src = R"(
        .data
buf:    .space 256
        .text
main:   la $t0, buf
        li $t1, 100
        li $t2, 0
loop:   sll $t3, $t2, 2
        andi $t3, $t3, 255
        addu $t4, $t0, $t3
        sw $t2, 0($t4)
        addu $t5, $t5, $t2
        addiu $t2, $t2, 1
        bne $t2, $t1, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(src);
  const auto cfg = accel::SystemConfig::with(ArrayShape::config2(), 64, false);

  accel::AcceleratedSystem cold(prog, cfg);
  const auto cold_stats = cold.run();
  std::stringstream ss;
  save_cache(ss, cold.rcache());

  accel::AcceleratedSystem warm(prog, cfg);
  load_cache(ss, warm.rcache());
  const auto warm_stats = warm.run();

  EXPECT_EQ(warm_stats.final_state.reg_hash(), cold_stats.final_state.reg_hash());
  EXPECT_LE(warm_stats.cycles, cold_stats.cycles);
  EXPECT_GE(warm_stats.array_instructions, cold_stats.array_instructions);
}

}  // namespace
}  // namespace dim::rra
