// Cross-process atomicity of snap::write_artifact_file.
//
// The writer publishes via temp-file + rename. The regression this pins:
// the temp name used to be derived from a per-process atomic counter
// alone, so two PROCESSES writing the same target path would both open
// "<path>.tmp.0" and interleave their bytes — the rename then published a
// torn artifact that fails CRC validation. The temp name now includes the
// pid, making it unique across processes; under a two-writer stress the
// published file must always validate as exactly one writer's payload.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "snap/format.hpp"
#include "snap/io.hpp"

namespace dim::snap {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* tag) {
  std::string tmpl = fs::temp_directory_path() /
                     (std::string("dimsim-artifact-") + tag + "-XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* made = mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return std::string(made != nullptr ? made : "/tmp");
}

std::vector<uint8_t> payload_of(uint8_t fill, size_t size) {
  return std::vector<uint8_t>(size, fill);
}

TEST(ArtifactIoRace, TwoProcessesWritingSamePathNeverPublishTornFile) {
  const std::string dir = temp_dir("race");
  const std::string path = dir + "/contended.cell";
  // Big enough that an interleaved write would need several stream flushes,
  // small enough to keep the stress fast.
  const auto parent_payload = payload_of(0xAB, 64 * 1024);
  const auto child_payload = payload_of(0xCD, 64 * 1024);
  constexpr int kRounds = 40;

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: hammer the path. _exit (not exit) so gtest state in the
    // forked copy is never touched.
    for (int i = 0; i < kRounds; ++i) {
      try {
        write_artifact_file(path, ArtifactKind::kSnapshot, child_payload);
      } catch (...) {
        _exit(1);
      }
    }
    _exit(0);
  }

  for (int i = 0; i < kRounds; ++i) {
    ASSERT_NO_THROW(
        write_artifact_file(path, ArtifactKind::kSnapshot, parent_payload));
    // Concurrent validation: whatever is published mid-stress must be one
    // complete artifact (CRC-validated), never a byte interleaving.
    const std::vector<uint8_t> seen =
        read_artifact_file(path, ArtifactKind::kSnapshot);
    ASSERT_TRUE(seen == parent_payload || seen == child_payload)
        << "round " << i << ": published artifact is neither writer's payload";
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child writer failed";

  // Final state: one of the two payloads, and no leaked temp files.
  const std::vector<uint8_t> last =
      read_artifact_file(path, ArtifactKind::kSnapshot);
  EXPECT_TRUE(last == parent_payload || last == child_payload);
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().filename().string().find(".tmp."), std::string::npos)
        << "leftover temp file: " << e.path();
  }
  fs::remove_all(dir);
}

TEST(ArtifactIoRace, TempNamesAreUniquePerProcessAndSequence) {
  // Two back-to-back writes from one process must not collide either (the
  // per-process counter part of the temp name), and each write cleans its
  // temp file up on success.
  const std::string dir = temp_dir("seq");
  const std::string path = dir + "/seq.cell";
  write_artifact_file(path, ArtifactKind::kSnapshot, payload_of(0x01, 128));
  write_artifact_file(path, ArtifactKind::kSnapshot, payload_of(0x02, 128));
  EXPECT_EQ(read_artifact_file(path, ArtifactKind::kSnapshot),
            payload_of(0x02, 128));
  size_t entries = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << "temp files left behind";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dim::snap
