// Timing-regression goldens: the exact cycle counts of every workload at
// the reference setting are pinned. The simulator is deterministic, so any
// drift means a (possibly unintended) timing-model change — update the
// table only when the change is deliberate and understood.
//
// Regenerate the table with the snippet in the comment at the bottom.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "work/workload.hpp"

namespace dim::accel {
namespace {

struct Golden {
  const char* name;
  uint64_t baseline_cycles;
  uint64_t accel_cycles;  // C#2, 64 slots, speculation
};

// Re-pinned after fixing the misspeculated-commit write-back drain: a
// partial commit now drains only the registers the committed prefix
// actually wrote, so workloads with misspeculations got slightly cheaper
// (baselines are untouched by that path and did not move).
constexpr Golden kGoldens[] = {
    {"rijndael_e", 215869ull, 94245ull},
    {"rijndael_d", 259537ull, 174979ull},
    {"gsm_e", 624013ull, 161440ull},
    {"jpeg_e", 863695ull, 291018ull},
    {"sha", 407010ull, 123655ull},
    {"susan_s", 959878ull, 503457ull},
    {"crc32", 172041ull, 61503ull},
    {"jpeg_d", 781007ull, 204254ull},
    {"patricia", 831776ull, 364345ull},
    {"susan_c", 1021225ull, 576542ull},
    {"susan_e", 506417ull, 296384ull},
    {"dijkstra", 773928ull, 383045ull},
    {"gsm_d", 574612ull, 205533ull},
    {"bitcount", 1175063ull, 359144ull},
    {"stringsearch", 3785678ull, 1745893ull},
    {"quicksort", 388068ull, 221099ull},
    {"rawaudio_e", 828628ull, 427055ull},
    {"rawaudio_d", 563067ull, 311167ull},
};

class TimingGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(TimingGolden, CycleCountsPinned) {
  const Golden& g = GetParam();
  const auto wl = work::make_workload(g.name, 1);
  const auto prog = asmblr::assemble(wl.source);
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  const auto st =
      run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EXPECT_EQ(base.cycles, g.baseline_cycles) << g.name;
  EXPECT_EQ(st.cycles, g.accel_cycles) << g.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TimingGolden, ::testing::ValuesIn(kGoldens),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.name);
                         });

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto wl = work::make_workload("gsm_e", 1);
  const auto prog = asmblr::assemble(wl.source);
  const auto cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  const auto a = run_accelerated(prog, cfg);
  const auto b = run_accelerated(prog, cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.array_activations, b.array_activations);
  EXPECT_EQ(a.misspeculations, b.misspeculations);
  EXPECT_EQ(a.memory_hash, b.memory_hash);
  EXPECT_EQ(a.final_state.reg_hash(), b.final_state.reg_hash());
}

TEST(Determinism, WorkloadSourceIsStable) {
  // Workload generation itself must be deterministic (embedded data comes
  // from fixed LCG seeds).
  const auto a = work::make_workload("jpeg_e", 1);
  const auto b = work::make_workload("jpeg_e", 1);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.expected_output, b.expected_output);
}

// Regenerate kGoldens:
//   for each name in work::workload_names():
//     base  = baseline_as_stats(assemble(make_workload(name).source), {})
//     accel = run_accelerated(..., SystemConfig::with(config2(), 64, true))
//     print {name, base.cycles, accel.cycles}

}  // namespace
}  // namespace dim::accel
