// Workload validation: golden known-answer tests, and every MiBench-
// equivalent kernel must reproduce its golden model's output on the
// baseline simulator (parameterized over all 18 workloads).
#include <gtest/gtest.h>

#include <cmath>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

// --- golden known-answer tests ------------------------------------------------

TEST(Golden, Crc32KnownAnswer) {
  const std::string s = "123456789";
  EXPECT_EQ(golden::crc32(std::vector<uint8_t>(s.begin(), s.end())), 0xCBF43926u);
  EXPECT_EQ(golden::crc32({}), 0u);
}

TEST(Golden, Sha1KnownAnswer) {
  // One whole block: "abc" padded per FIPS 180 gives the classic digest; our
  // helper hashes whole blocks, so feed the padded block directly.
  std::vector<uint8_t> block(64, 0);
  block[0] = 'a';
  block[1] = 'b';
  block[2] = 'c';
  block[3] = 0x80;
  block[63] = 24;  // bit length
  const auto h = golden::sha1_blocks(block);
  EXPECT_EQ(h[0], 0xA9993E36u);
  EXPECT_EQ(h[1], 0x4706816Au);
  EXPECT_EQ(h[2], 0xBA3E2571u);
  EXPECT_EQ(h[3], 0x7850C26Cu);
  EXPECT_EQ(h[4], 0x9CD0D89Du);
}

TEST(Golden, Aes128Fips197Vector) {
  const std::array<uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                       0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::array<uint8_t, 16> pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::array<uint8_t, 16> expect_ct = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                             0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                             0x19, 0x6a, 0x0b, 0x32};
  golden::Aes128 aes(key);
  EXPECT_EQ(aes.encrypt(pt), expect_ct);
  EXPECT_EQ(aes.decrypt(expect_ct), pt);
}

TEST(Golden, AesRoundTripRandomBlocks) {
  std::array<uint8_t, 16> key{};
  uint32_t seed = 99;
  for (auto& b : key) b = static_cast<uint8_t>(golden::lcg(seed));
  golden::Aes128 aes(key);
  for (int n = 0; n < 50; ++n) {
    std::array<uint8_t, 16> block;
    for (auto& b : block) b = static_cast<uint8_t>(golden::lcg(seed));
    EXPECT_EQ(aes.decrypt(aes.encrypt(block)), block);
  }
}

TEST(Golden, AdpcmRoundTripTracksInput) {
  // ADPCM is lossy but must track a slow ramp closely.
  std::vector<int16_t> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(static_cast<int16_t>(i * 8));
  const auto codes = golden::adpcm_encode(samples);
  const auto decoded = golden::adpcm_decode(codes, codes.size());
  ASSERT_EQ(decoded.size(), samples.size());
  for (size_t i = 100; i < samples.size(); ++i) {
    EXPECT_NEAR(decoded[i], samples[i], 256) << i;
  }
}

TEST(Golden, AdpcmIndexStaysInRange) {
  std::vector<int16_t> extremes;
  uint32_t seed = 7;
  for (int i = 0; i < 200; ++i) {
    extremes.push_back(static_cast<int16_t>(golden::lcg(seed)));
  }
  const auto codes = golden::adpcm_encode(extremes);
  for (uint8_t c : codes) EXPECT_LT(c, 16u);
}

TEST(Golden, DctIdctRoundTripApproximate) {
  int16_t in[64], freq[64], out[64];
  uint32_t seed = 5;
  for (auto& v : in) v = static_cast<int16_t>(static_cast<int>(golden::lcg(seed) % 256) - 128);
  golden::dct8x8(in, freq);
  golden::idct8x8(freq, out);
  // Two passes of 14-bit fixed-point truncation bound the error to ~8 LSB.
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(out[i], in[i], 8) << i;
}

TEST(Golden, DctOfFlatBlockIsDcOnly) {
  int16_t in[64], freq[64];
  for (auto& v : in) v = 64;
  golden::dct8x8(in, freq);
  EXPECT_NEAR(freq[0], 64 * 8, 8);  // DC = 8 * value (orthonormal scaling)
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0, 2) << i;
}

TEST(Golden, GsmAnalysisSynthesisApproximatelyInvert) {
  std::vector<int16_t> samples;
  for (int i = 0; i < 400; ++i)
    samples.push_back(static_cast<int16_t>(4000.0 * std::sin(i * 0.05)));
  const auto residual = golden::gsm_analysis(samples);
  const auto synth = golden::gsm_synthesis(residual);
  ASSERT_EQ(synth.size(), samples.size());
  // The lattice pair is an approximate inverse (fixed-point truncation).
  for (size_t i = 50; i < samples.size(); ++i) {
    EXPECT_NEAR(synth[i], samples[i], 64) << i;
  }
}

TEST(Golden, SusanLutShape) {
  const auto lut = golden::susan_lut();
  ASSERT_EQ(lut.size(), 256u);
  EXPECT_EQ(lut[0], 100);       // identical brightness = max weight
  EXPECT_GT(lut[10], lut[100]);  // monotonically decreasing influence
  EXPECT_GE(lut[255], 0);
}

TEST(Golden, SusanCornersFindsCheckerboardCorners) {
  // A synthetic image with a single high-contrast rectangle has corners.
  std::vector<uint8_t> img(64 * 32, 50);
  for (int y = 10; y < 20; ++y)
    for (int x = 20; x < 40; ++x) img[static_cast<size_t>(y * 64 + x)] = 200;
  EXPECT_GT(golden::susan_corners(img, 64, 32), 0);
  EXPECT_GT(golden::susan_edges(img, 64, 32), golden::susan_corners(img, 64, 32));
}

// --- assembly kernels vs golden (all 18) ---------------------------------------

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, BaselineMatchesGolden) {
  const Workload wl = make_workload(GetParam(), 1);
  const asmblr::Program prog = asmblr::assemble(wl.source);
  const sim::RunResult r = sim::run_baseline(prog);
  EXPECT_FALSE(r.hit_limit);
  EXPECT_EQ(r.state.output, wl.expected_output);
}

TEST_P(WorkloadTest, ScalingChangesWorkButNotCorrectness) {
  const Workload wl = make_workload(GetParam(), 2);
  const asmblr::Program prog = asmblr::assemble(wl.source);
  const sim::RunResult r = sim::run_baseline(prog);
  EXPECT_FALSE(r.hit_limit);
  EXPECT_EQ(r.state.output, wl.expected_output);
  const Workload small = make_workload(GetParam(), 1);
  const sim::RunResult rs = sim::run_baseline(asmblr::assemble(small.source));
  EXPECT_GT(r.instructions, rs.instructions);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(WorkloadRegistry, NamesAndGroups) {
  EXPECT_EQ(workload_names().size(), 18u);
  EXPECT_THROW(make_workload("nonexistent"), std::invalid_argument);
  const auto all = all_workloads(1);
  EXPECT_EQ(all.size(), 18u);
  // Table 2 ordering: dataflow group first.
  EXPECT_TRUE(all.front().dataflow_group);
  EXPECT_FALSE(all.back().dataflow_group);
}

}  // namespace
}  // namespace dim::work
