// Integration tests of the full accelerated system — the paper's central
// claims: transparency (identical architectural results), acceleration
// (never slower), and the speculation life-cycle.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"

namespace dim::accel {
namespace {

const char* kLoopProgram = R"(
        .data
arr:    .word 0
        .space 2048
        .text
main:   la $t0, arr
        li $t1, 500
        li $t2, 0
        li $t3, 0
loop:   sll $t4, $t3, 2
        andi $t4, $t4, 1023
        addu $t5, $t0, $t4
        lw $t6, 0($t5)
        addu $t6, $t6, $t3
        sw $t6, 0($t5)
        addu $t2, $t2, $t6
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

void expect_transparent(const SpeedupResult& r) {
  EXPECT_EQ(r.baseline.final_state.output, r.accelerated.final_state.output);
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash());
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash);
  EXPECT_FALSE(r.accelerated.hit_limit);
}

TEST(System, TransparentAndFasterOnLoop) {
  const auto prog = asmblr::assemble(kLoopProgram);
  for (bool spec : {false, true}) {
    const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, spec));
    expect_transparent(r);
    EXPECT_GT(r.speedup(), 1.0) << "spec=" << spec;
  }
}

TEST(System, SpeculationBeatsNoSpeculationOnBiasedLoop) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto ns = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config3(), 64, false));
  const auto sp = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config3(), 64, true));
  EXPECT_LT(sp.cycles, ns.cycles);
  EXPECT_GT(sp.extensions, 0u);
}

TEST(System, ArrayDisabledMatchesBaselineCycles) {
  const auto prog = asmblr::assemble(kLoopProgram);
  SystemConfig cfg;
  cfg.array_enabled = false;
  const auto st = run_accelerated(prog, cfg);
  const auto base = baseline_as_stats(prog, cfg.machine);
  EXPECT_EQ(st.cycles, base.cycles);
  EXPECT_EQ(st.array_activations, 0u);
  EXPECT_EQ(st.final_state.output, base.final_state.output);
}

TEST(System, InstructionConservation) {
  // Committed instructions must be identical between baseline and
  // accelerated runs — the array replaces instructions, it never adds or
  // drops any.
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, false));
  EXPECT_EQ(r.baseline.instructions, r.accelerated.instructions);
  EXPECT_EQ(r.accelerated.instructions,
            r.accelerated.proc_instructions + r.accelerated.array_instructions);
}

TEST(System, SpeculativeRunMayReplayButNeverDropsWork) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  // Misspeculated slots re-execute on the processor, so the committed count
  // can only match or exceed the baseline's (never drop below).
  EXPECT_GE(r.accelerated.instructions, r.baseline.instructions);
}

TEST(System, CyclesDecomposeExactly) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EXPECT_EQ(st.cycles, st.proc_cycles + st.array_cycles);
  EXPECT_GT(st.array_activations, 0u);
  EXPECT_GT(st.array_instructions, 0u);
}

TEST(System, ZeroSlotCacheDegradesToBaseline) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 0, true));
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st.cycles, base.cycles);
  EXPECT_EQ(st.array_activations, 0u);
}

TEST(System, TinyArrayStillTransparent) {
  const auto prog = asmblr::assemble(kLoopProgram);
  rra::ArrayShape tiny{4, 2, 1, 1};
  const auto r = measure_speedup(prog, SystemConfig::with(tiny, 8, true));
  expect_transparent(r);
}

TEST(System, MinInstructionThresholdRespected) {
  // A program whose loop body (between branches) is only 3 instructions
  // must never activate the array (sequences must exceed 3 instructions).
  const char* short_loop = R"(
main:   li $t1, 200
        li $t2, 0
loop:   addu $t2, $t2, $t1
        addiu $t1, $t1, -1
        bnez $t1, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(short_loop);
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  const auto st = run_accelerated(prog, cfg);
  EXPECT_EQ(st.array_activations, 0u);
}

TEST(System, AlternatingBranchFlushesConfiguration) {
  // A branch that alternates T/N/T/N defeats the bimodal gate; with
  // speculation the first captured direction goes stale, misspeculates,
  // and once the counter saturates the other way the config is flushed.
  const char* alternating = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 400
        li $s1, 0             # i
        la $s2, buf
loop:   andi $t0, $s1, 1
        sll $t1, $s1, 2
        andi $t1, $t1, 63
        addu $t2, $s2, $t1
        sw $t0, 0($t2)
        beqz $t0, even
        addiu $s3, $s3, 2
        b next
even:   addiu $s3, $s3, 1
next:   addiu $s1, $s1, 1
        bne $s1, $s0, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(alternating);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  expect_transparent(r);
}

TEST(System, MisspecFlushThresholdAblation) {
  const auto prog = asmblr::assemble(kLoopProgram);
  SystemConfig aggressive = SystemConfig::with(rra::ArrayShape::config3(), 64, true);
  aggressive.misspec_flush_threshold = 1;  // flush on first misspeculation
  const auto st = run_accelerated(prog, aggressive);
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st.final_state.output, base.final_state.output);
  EXPECT_GE(st.config_flushes, 1u);
}

TEST(System, StatsAreInternallyConsistent) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  // Every processor retirement is observed by DIM except branches absorbed
  // directly into a speculation extension.
  EXPECT_EQ(st.bt_observed + st.extensions, st.proc_instructions);
  // Dispatch hits and array activations are the same event; misses count
  // only untranslated sequence starts, which is where captures begin.
  EXPECT_EQ(st.rcache_hits, st.array_activations);
  EXPECT_GT(st.rcache_misses, 0u);
  EXPECT_LT(st.rcache_misses, st.proc_instructions);
  EXPECT_GE(st.config_words_loaded, st.array_activations);  // >=1 word per activation
  EXPECT_GT(st.config_words_written, 0u);
}

TEST(System, ZeroSlotCacheChargesNoTranslationCost) {
  // Regression: with cache_slots = 0 nothing is ever stored, so software-BT
  // emulation (cycles per written configuration word) must charge nothing —
  // the accelerated run must cost exactly the baseline.
  const auto prog = asmblr::assemble(kLoopProgram);
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 0, true);
  cfg.translation_cost_per_instr = 50;
  const auto st = run_accelerated(prog, cfg);
  const auto base = baseline_as_stats(prog, cfg.machine);
  EXPECT_EQ(st.cycles, base.cycles);
  EXPECT_EQ(st.config_words_written, 0u);
  EXPECT_EQ(st.array_activations, 0u);
}

TEST(System, FailedExtensionSetsNoExtendAndStopsRetrying) {
  // A loop body that exactly fills a 4-line, 1-ALU-per-line array: the
  // detected configuration commits fully and resumes at its own branch, so
  // the extension check arms — but replaying the four chained ops plus the
  // branch needs a fifth row, so begin_extension must fail, latch
  // no_extend, and never be retried (extensions stays 0).
  const char* full_array_loop = R"(
main:   li $t1, 200
        li $t2, 0
loop:   addu $t2, $t2, $t1
        addu $t2, $t2, $t1
        addu $t2, $t2, $t1
        addiu $t1, $t1, -1
        bnez $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(full_array_loop);
  rra::ArrayShape narrow{4, 1, 1, 1};
  AcceleratedSystem system(prog, SystemConfig::with(narrow, 64, true));
  const AccelStats st = system.run();
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st.final_state.output, base.final_state.output);
  EXPECT_GT(st.array_activations, 0u);
  EXPECT_EQ(st.extensions, 0u);
  bool saw_no_extend = false;
  for (uint32_t pc : system.rcache().fifo_order()) {
    const rra::Configuration* c = system.rcache().peek(pc);
    if (c != nullptr && c->no_extend) saw_no_extend = true;
  }
  EXPECT_TRUE(saw_no_extend);
}

TEST(System, MisspecFlushThresholdCountsPerConfiguration) {
  // An inner loop re-entered by an outer loop misspeculates once per inner
  // exit. The configuration merges blocks four iterations deep, so the
  // iteration count (122 = 4*30 + 2) is chosen so the exit branch falls on
  // a branch merged INSIDE the configuration rather than on the processor
  // at a config boundary. The bimodal counter never reaches the opposite
  // saturation (one not-taken against a stream of takens), so with
  // threshold 0 the config survives every misspeculation; with a threshold
  // the flush fires once the per-configuration misspec count reaches it.
  const char* nested = R"(
main:   li $s0, 6              # outer iterations
        li $s1, 0
outer:  li $t1, 122            # inner iterations
        li $t2, 0
inner:  sll $t4, $t2, 1
        xor $t5, $t4, $t1
        addu $t2, $t2, $t5
        addiu $t1, $t1, -1
        bnez $t1, inner
        addu $s1, $s1, $t2
        addiu $s0, $s0, -1
        bnez $s0, outer
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(nested);
  SystemConfig lenient = SystemConfig::with(rra::ArrayShape::config3(), 64, true);
  lenient.misspec_flush_threshold = 0;
  const auto st0 = run_accelerated(prog, lenient);
  EXPECT_GT(st0.misspeculations, 1u);  // one per inner-loop exit
  EXPECT_EQ(st0.config_flushes, 0u);   // opposite saturation never reached

  SystemConfig strict = lenient;
  strict.misspec_flush_threshold = 3;
  const auto st3 = run_accelerated(prog, strict);
  EXPECT_GE(st3.config_flushes, 1u);
  // Transparency is unaffected by the flush policy.
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st0.final_state.output, base.final_state.output);
  EXPECT_EQ(st3.final_state.output, base.final_state.output);
}

}  // namespace
}  // namespace dim::accel
