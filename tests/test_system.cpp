// Integration tests of the full accelerated system — the paper's central
// claims: transparency (identical architectural results), acceleration
// (never slower), and the speculation life-cycle.
#include <gtest/gtest.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"

namespace dim::accel {
namespace {

const char* kLoopProgram = R"(
        .data
arr:    .word 0
        .space 2048
        .text
main:   la $t0, arr
        li $t1, 500
        li $t2, 0
        li $t3, 0
loop:   sll $t4, $t3, 2
        andi $t4, $t4, 1023
        addu $t5, $t0, $t4
        lw $t6, 0($t5)
        addu $t6, $t6, $t3
        sw $t6, 0($t5)
        addu $t2, $t2, $t6
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

void expect_transparent(const SpeedupResult& r) {
  EXPECT_EQ(r.baseline.final_state.output, r.accelerated.final_state.output);
  EXPECT_EQ(r.baseline.final_state.reg_hash(), r.accelerated.final_state.reg_hash());
  EXPECT_EQ(r.baseline.memory_hash, r.accelerated.memory_hash);
  EXPECT_FALSE(r.accelerated.hit_limit);
}

TEST(System, TransparentAndFasterOnLoop) {
  const auto prog = asmblr::assemble(kLoopProgram);
  for (bool spec : {false, true}) {
    const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, spec));
    expect_transparent(r);
    EXPECT_GT(r.speedup(), 1.0) << "spec=" << spec;
  }
}

TEST(System, SpeculationBeatsNoSpeculationOnBiasedLoop) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto ns = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config3(), 64, false));
  const auto sp = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config3(), 64, true));
  EXPECT_LT(sp.cycles, ns.cycles);
  EXPECT_GT(sp.extensions, 0u);
}

TEST(System, ArrayDisabledMatchesBaselineCycles) {
  const auto prog = asmblr::assemble(kLoopProgram);
  SystemConfig cfg;
  cfg.array_enabled = false;
  const auto st = run_accelerated(prog, cfg);
  const auto base = baseline_as_stats(prog, cfg.machine);
  EXPECT_EQ(st.cycles, base.cycles);
  EXPECT_EQ(st.array_activations, 0u);
  EXPECT_EQ(st.final_state.output, base.final_state.output);
}

TEST(System, InstructionConservation) {
  // Committed instructions must be identical between baseline and
  // accelerated runs — the array replaces instructions, it never adds or
  // drops any.
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, false));
  EXPECT_EQ(r.baseline.instructions, r.accelerated.instructions);
  EXPECT_EQ(r.accelerated.instructions,
            r.accelerated.proc_instructions + r.accelerated.array_instructions);
}

TEST(System, SpeculativeRunMayReplayButNeverDropsWork) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  // Misspeculated slots re-execute on the processor, so the committed count
  // can only match or exceed the baseline's (never drop below).
  EXPECT_GE(r.accelerated.instructions, r.baseline.instructions);
}

TEST(System, CyclesDecomposeExactly) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EXPECT_EQ(st.cycles, st.proc_cycles + st.array_cycles);
  EXPECT_GT(st.array_activations, 0u);
  EXPECT_GT(st.array_instructions, 0u);
}

TEST(System, ZeroSlotCacheDegradesToBaseline) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 0, true));
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st.cycles, base.cycles);
  EXPECT_EQ(st.array_activations, 0u);
}

TEST(System, TinyArrayStillTransparent) {
  const auto prog = asmblr::assemble(kLoopProgram);
  rra::ArrayShape tiny{4, 2, 1, 1};
  const auto r = measure_speedup(prog, SystemConfig::with(tiny, 8, true));
  expect_transparent(r);
}

TEST(System, MinInstructionThresholdRespected) {
  // A program whose loop body (between branches) is only 3 instructions
  // must never activate the array (sequences must exceed 3 instructions).
  const char* short_loop = R"(
main:   li $t1, 200
        li $t2, 0
loop:   addu $t2, $t2, $t1
        addiu $t1, $t1, -1
        bnez $t1, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(short_loop);
  SystemConfig cfg = SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  const auto st = run_accelerated(prog, cfg);
  EXPECT_EQ(st.array_activations, 0u);
}

TEST(System, AlternatingBranchFlushesConfiguration) {
  // A branch that alternates T/N/T/N defeats the bimodal gate; with
  // speculation the first captured direction goes stale, misspeculates,
  // and once the counter saturates the other way the config is flushed.
  const char* alternating = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 400
        li $s1, 0             # i
        la $s2, buf
loop:   andi $t0, $s1, 1
        sll $t1, $s1, 2
        andi $t1, $t1, 63
        addu $t2, $s2, $t1
        sw $t0, 0($t2)
        beqz $t0, even
        addiu $s3, $s3, 2
        b next
even:   addiu $s3, $s3, 1
next:   addiu $s1, $s1, 1
        bne $s1, $s0, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(alternating);
  const auto r = measure_speedup(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  expect_transparent(r);
}

TEST(System, MisspecFlushThresholdAblation) {
  const auto prog = asmblr::assemble(kLoopProgram);
  SystemConfig aggressive = SystemConfig::with(rra::ArrayShape::config3(), 64, true);
  aggressive.misspec_flush_threshold = 1;  // flush on first misspeculation
  const auto st = run_accelerated(prog, aggressive);
  const auto base = baseline_as_stats(prog, sim::MachineConfig{});
  EXPECT_EQ(st.final_state.output, base.final_state.output);
  EXPECT_GE(st.config_flushes, 1u);
}

TEST(System, StatsAreInternallyConsistent) {
  const auto prog = asmblr::assemble(kLoopProgram);
  const auto st = run_accelerated(prog, SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  // Every processor retirement is observed by DIM except branches absorbed
  // directly into a speculation extension.
  EXPECT_EQ(st.bt_observed + st.extensions, st.proc_instructions);
  EXPECT_GE(st.rcache_hits, st.array_activations);
  EXPECT_GE(st.config_words_loaded, st.array_activations);  // >=1 word per activation
  EXPECT_GT(st.config_words_written, 0u);
}

}  // namespace
}  // namespace dim::accel
