// The execution-mode subsystem (src/rra/exec_mode/): elastic dataflow
// firing with bounded per-row FIFOs and SIMT multi-lane warp issue, both
// behind the rra::ExecutionModel interface that row-sync also implements.
//   1. Admissibility: a pure dependence chain fits capacity-1 FIFOs; two
//      independent same-row producers with a joint consumer deadlock at
//      capacity 1 and become admissible at capacity 2.
//   2. Backpressure is timing-only: the same configuration under elastic
//      retires the same architectural state as row-sync, stalls at
//      capacity 1 and stops stalling once the FIFOs are deep enough.
//   3. Build-time rejection: a deadlocking configuration falls back to
//      row-sync execution at dispatch (transparent, counted, evented).
//   4. SIMT lockstep: the warp cadence is independent of predicate
//      outcomes — an all-lanes-squashed diamond costs exactly what the
//      all-active diamond costs.
//   5. Per-mode snapshots: resume-equals-straight-run holds bit-for-bit
//      under elastic and SIMT, and the elastic snapshot bytes (which carry
//      the optional exec section) are frozen by a committed golden.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bt/translator.hpp"
#include "obs/event.hpp"
#include "rra/array_exec.hpp"
#include "rra/exec_mode/execution_model.hpp"
#include "snap/codec.hpp"
#include "snap/io.hpp"
#include "snap/snapshot.hpp"

namespace dim::rra {
namespace {

using isa::Instr;
using isa::Op;

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

bt::TranslatorParams default_params() {
  bt::TranslatorParams p;
  p.shape = ArrayShape::config1();
  return p;
}

// ---------------------------------------------------------------------------
// 1. Admissibility at config-build time.

TEST(ExecModes, PureChainAdmissibleAtCapacityOne) {
  // Each op consumes its predecessor: one op per row, so no row ever holds
  // more tokens than its consumer has drained.
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));
  ASSERT_TRUE(b.try_add(r3(Op::kXor, 10, 9, 9), 0x108));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 11, 10, 7), 0x10C));
  const Configuration c = b.finalize(0x110);
  EXPECT_TRUE(elastic_admissible(c, 1));
  EXPECT_TRUE(elastic_admissible(c, 4));
}

TEST(ExecModes, JointConsumerDeadlocksAtCapacityOne) {
  // Two independent producers land on the same row; their joint consumer
  // needs both tokens at once. With one slot in the row's output queue the
  // second producer cannot fire until the consumer drains the first token,
  // and the consumer cannot fire until the second producer does: deadlock.
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x104));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 9), 0x108));
  const Configuration c = b.finalize(0x10C);
  EXPECT_FALSE(elastic_admissible(c, 1));
  EXPECT_TRUE(elastic_admissible(c, 2));
  EXPECT_TRUE(elastic_admissible(c, 0));  // 0 = unbounded queues
}

// ---------------------------------------------------------------------------
// 2. Backpressure is timing-only.

TEST(ExecModes, BackpressureStallsAtCapacityOneOnly) {
  // Row 0 holds three ops in order: a chain root, then two independent
  // producers. The first producer's consumer also waits on the end of the
  // chain, so at capacity 1 the second producer sits behind an undrained
  // token (a stall, not a deadlock: nothing downstream of the second
  // producer feeds the chain).
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 15, 0, 3), 0x100));   // chain root, row 0
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 14, 15, 15), 0x104));   // row 1
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 13, 14, 14), 0x108));   // row 2
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x10C));    // producer A, row 0
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x110));    // producer B, row 0
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 11, 8, 13), 0x114));    // consumer of A + chain
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 12, 9, 9), 0x118));     // consumer of B
  const Configuration c = b.finalize(0x11C);
  ASSERT_TRUE(elastic_admissible(c, 1));

  // One row per cycle so a one-slot makespan difference is visible in
  // cycles (the default 3 ALU rows per cycle can absorb it).
  ArrayTimingParams timing;
  timing.alu_rows_per_cycle = 1;

  const auto run_mode = [&](const ExecModeParams& mode, sim::CpuState& s,
                            mem::Memory& m) {
    const auto model = make_execution_model(mode);
    return model->execute(c, s, m, nullptr, timing, false);
  };

  ExecModeParams row_sync;
  ExecModeParams cap1;
  cap1.mode = ExecMode::kElastic;
  cap1.fifo_capacity = 1;
  ExecModeParams deep = cap1;
  deep.fifo_capacity = 8;

  sim::CpuState s_sync, s_cap1, s_deep;
  mem::Memory m_sync, m_cap1, m_deep;
  const ArrayExecOutcome o_sync = run_mode(row_sync, s_sync, m_sync);
  const ArrayExecOutcome o_cap1 = run_mode(cap1, s_cap1, m_cap1);
  const ArrayExecOutcome o_deep = run_mode(deep, s_deep, m_deep);

  // Transparency: identical architectural outcome across all three.
  EXPECT_EQ(s_sync.regs, s_cap1.regs);
  EXPECT_EQ(s_sync.regs, s_deep.regs);
  EXPECT_EQ(o_sync.next_pc, o_cap1.next_pc);
  EXPECT_EQ(o_sync.committed_ops, o_cap1.committed_ops);

  // Timing: the one-slot queue stalls, the deep queue does not.
  EXPECT_GT(o_cap1.fifo_stall_cycles, 0u);
  EXPECT_EQ(o_deep.fifo_stall_cycles, 0u);
  EXPECT_GE(o_cap1.exec_cycles, o_deep.exec_cycles);
  EXPECT_EQ(o_sync.fifo_stall_cycles, 0u);
}

// ---------------------------------------------------------------------------
// 3. Full-system fallback for rejected configurations.

// The loop body embeds the joint-consumer shape from above, so its
// configuration deadlocks at capacity 1 and the system must execute it
// row-synchronously instead — transparently.
const char* kDeadlockProgram = R"(
        .data
buf:    .space 64
        .text
main:   la $s0, buf
        li $s7, 60
        li $t5, 0
loop:   addiu $t0, $zero, 1
        addiu $t1, $zero, 2
        addu $t2, $t0, $t1
        addu $t5, $t5, $t2
        sw $t5, 0($s0)
        addiu $s7, $s7, -1
        bnez $s7, loop
        move $a0, $t5
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

accel::SystemConfig elastic_config(int capacity) {
  accel::SystemConfig cfg = accel::SystemConfig::with(ArrayShape::config2(), 8, true);
  cfg.exec_mode.mode = ExecMode::kElastic;
  cfg.exec_mode.fifo_capacity = capacity;
  return cfg;
}

accel::SystemConfig simt_config(int lanes) {
  accel::SystemConfig cfg = accel::SystemConfig::with(ArrayShape::config2(), 8, true);
  cfg.predication = true;
  cfg.exec_mode.mode = ExecMode::kSimt;
  cfg.exec_mode.lanes = lanes;
  return cfg;
}

TEST(ExecModes, DeadlockedConfigFallsBackToRowSync) {
  const auto program = asmblr::assemble(kDeadlockProgram);
  const accel::AccelStats base =
      accel::baseline_as_stats(program, sim::MachineConfig{});

  obs::RecordingSink sink;
  accel::SystemConfig cfg = elastic_config(1);
  cfg.event_sink = &sink;
  accel::AcceleratedSystem system(program, cfg);
  const accel::AccelStats st = system.run();

  // Transparent despite the rejection...
  EXPECT_EQ(st.final_state.output, base.final_state.output);
  EXPECT_EQ(st.memory_hash, base.memory_hash);
  EXPECT_EQ(st.instructions, base.instructions);
  // ...and the fallback is visible in stats and the event stream.
  EXPECT_GT(st.elastic_deadlock_fallbacks, 0u);
  bool saw_rejected = false;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kElasticRejected) saw_rejected = true;
  }
  EXPECT_TRUE(saw_rejected);

  // The same program with deep FIFOs runs elastically: no fallbacks.
  accel::AcceleratedSystem deep(program, elastic_config(8));
  const accel::AccelStats st_deep = deep.run();
  EXPECT_EQ(st_deep.elastic_deadlock_fallbacks, 0u);
  EXPECT_EQ(st_deep.final_state.output, base.final_state.output);
  EXPECT_EQ(st_deep.memory_hash, base.memory_hash);
}

// ---------------------------------------------------------------------------
// 4. SIMT lockstep: predicate outcomes do not change the warp cadence.

bt::TranslatorParams pred_params() {
  bt::TranslatorParams p;
  p.shape = ArrayShape::config1();
  p.predication = true;
  return p;
}

// The hand-built diamond from test_predication.cpp: a pred-def branch with
// a store+ALU fall-through arm and an ALU+mult taken arm.
Configuration build_diamond() {
  bt::ConfigBuilder b(0x100, pred_params());
  EXPECT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  const std::vector<bt::HammockOp> not_taken = {
      {imm(Op::kAddiu, 9, 0, 1), 0x108},
      {imm(Op::kSw, 9, 28, 0), 0x10C},
  };
  const bt::HammockOp join_jump{imm(Op::kBeq, 0, 0, 2), 0x110};
  const std::vector<bt::HammockOp> taken = {
      {imm(Op::kAddiu, 9, 0, 2), 0x114},
      {r3(Op::kMult, 0, 8, 8), 0x118},
  };
  EXPECT_TRUE(b.try_merge_hammock(imm(Op::kBeq, 17, 16, 3), 0x104, not_taken,
                                  &join_jump, taken));
  return b.finalize(0x11C);
}

TEST(ExecModes, SimtCadenceIndependentOfSquashedLanes) {
  const Configuration c = build_diamond();
  ExecModeParams params;
  params.mode = ExecMode::kSimt;
  params.lanes = 4;
  const auto model = make_execution_model(params);
  ASSERT_TRUE(model->admits(c));

  const auto run_with = [&](uint32_t s0, uint32_t s1) {
    sim::CpuState s;
    s.regs[16] = s0;
    s.regs[17] = s1;
    s.regs[28] = 0x10008000;
    mem::Memory m;
    return model->execute(c, s, m, nullptr, ArrayTimingParams{}, false);
  };

  // Lane context A: branch taken (fall-through arm squashed, including its
  // store). Lane context B: branch not taken (taken arm squashed, mult and
  // all). Lockstep issue means both cost exactly the same cycles.
  const ArrayExecOutcome taken = run_with(7, 7);
  const ArrayExecOutcome not_taken = run_with(1, 2);
  EXPECT_EQ(taken.exec_cycles, not_taken.exec_cycles);
  EXPECT_EQ(taken.next_pc, not_taken.next_pc);
  EXPECT_FALSE(taken.misspeculated);
  EXPECT_FALSE(not_taken.misspeculated);
}

// ---------------------------------------------------------------------------
// 5. Per-mode snapshots.

// A loop long enough to fill the 8-slot cache and cross checkpoints amid
// translated execution; the body mixes the deadlock triple (so elastic
// capacity 1 accumulates fallbacks into the snapshot) with memory traffic.
const char* kModeCheckpointProgram = R"(
        .data
arr:    .word 0
        .space 1024
        .text
main:   la $t0, arr
        li $t1, 300
        li $t3, 0
loop:   addiu $t6, $zero, 1
        addiu $t7, $zero, 2
        addu $t5, $t6, $t7
        sll $t4, $t3, 2
        andi $t4, $t4, 511
        addu $t5, $t0, $t4
        lw $t6, 0($t5)
        addu $t6, $t6, $t3
        sw $t6, 0($t5)
        addu $t2, $t2, $t6
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

std::vector<uint8_t> stats_bytes(const accel::AccelStats& stats) {
  snap::Writer w;
  snap::put_stats(w, stats);
  snap::put_exec_stats(w, stats);  // mode counters ride outside put_stats
  return w.take();
}

void expect_resume_equals_straight(const accel::SystemConfig& config,
                                   uint64_t boundary) {
  const auto program = asmblr::assemble(kModeCheckpointProgram);

  accel::AcceleratedSystem straight(program, config);
  const accel::AccelStats want = straight.run();

  std::stringstream file;
  {
    accel::AcceleratedSystem first(program, config);
    first.run_until(boundary);
    snap::save_snapshot(file, first, program);
  }
  accel::AcceleratedSystem second(program, config);
  snap::restore_snapshot(second, file, program);
  const accel::AccelStats got = second.run();

  EXPECT_EQ(stats_bytes(want), stats_bytes(got)) << "boundary " << boundary;
  EXPECT_EQ(want.final_state.output, got.final_state.output);
  EXPECT_EQ(want.memory_hash, got.memory_hash);
}

TEST(ExecModes, SnapshotResumeEqualsStraightRunPerMode) {
  for (const uint64_t boundary : {250u, 1200u}) {
    expect_resume_equals_straight(elastic_config(1), boundary);
    expect_resume_equals_straight(elastic_config(4), boundary);
    expect_resume_equals_straight(simt_config(4), boundary);
  }
}

TEST(ExecModes, SnapshotCarriesModeCounters) {
  // The optional kSecExec section must round-trip nonzero counters: run an
  // elastic capacity-1 system past some fallbacks, snapshot, restore, and
  // the restored stats must already show them.
  const auto program = asmblr::assemble(kModeCheckpointProgram);
  accel::AcceleratedSystem first(program, elastic_config(1));
  first.run_until(1500);
  ASSERT_GT(first.stats().elastic_deadlock_fallbacks, 0u);
  std::stringstream file;
  snap::save_snapshot(file, first, program);

  accel::AcceleratedSystem second(program, elastic_config(1));
  snap::restore_snapshot(second, file, program);
  EXPECT_EQ(second.stats().elastic_deadlock_fallbacks,
            first.stats().elastic_deadlock_fallbacks);
  EXPECT_EQ(second.stats().fifo_stall_cycles, first.stats().fifo_stall_cycles);
}

// ---------------------------------------------------------------------------
// Format golden for the exec section (same regime as test_snapshot.cpp:
// regenerate with DIMSIM_REGEN_GOLDENS=1 together with a kFormatVersion
// bump when the bytes intentionally change).

std::string golden_path(const char* name) {
  return std::string(DIMSIM_TEST_DATA_DIR) + "/" + name;
}

TEST(ExecModesGolden, ElasticSnapshotFormatFrozen) {
  const auto program = asmblr::assemble(kModeCheckpointProgram);
  accel::AcceleratedSystem mid(program, elastic_config(1));
  mid.run_until(1500);
  ASSERT_GT(mid.stats().elastic_deadlock_fallbacks, 0u);  // section is live
  std::stringstream file;
  snap::save_snapshot(file, mid, program);
  const std::string produced = file.str();

  const std::string path = golden_path("golden_elastic.snap");
  if (std::getenv("DIMSIM_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << produced;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with DIMSIM_REGEN_GOLDENS=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();
  ASSERT_GE(golden.size(), size_t{6});
  const uint16_t golden_version =
      static_cast<uint16_t>(static_cast<uint8_t>(golden[4]) |
                            (static_cast<uint16_t>(static_cast<uint8_t>(golden[5])) << 8));
  if (golden_version == snap::kFormatVersion) {
    EXPECT_EQ(golden, produced)
        << "elastic snapshot bytes changed under unchanged kFormatVersion — "
        << "bump snap::kFormatVersion and regenerate";
  } else {
    std::istringstream old(golden);
    EXPECT_THROW(snap::read_container(old, snap::ArtifactKind::kSnapshot),
                 snap::SnapshotError);
  }
}

}  // namespace
}  // namespace dim::rra
