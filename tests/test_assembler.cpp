#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "asm/lexer.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "mem/memory.hpp"

namespace dim::asmblr {
namespace {

using isa::Op;

// Assembles and returns the decoded instruction words of the text segment.
std::vector<isa::Instr> text_of(const std::string& source) {
  const Program p = assemble(source);
  const Segment& text = p.segments[0];
  std::vector<isa::Instr> out;
  for (size_t off = 0; off + 4 <= text.bytes.size(); off += 4) {
    const uint32_t word = static_cast<uint32_t>(text.bytes[off]) |
                          (static_cast<uint32_t>(text.bytes[off + 1]) << 8) |
                          (static_cast<uint32_t>(text.bytes[off + 2]) << 16) |
                          (static_cast<uint32_t>(text.bytes[off + 3]) << 24);
    out.push_back(isa::decode(word));
  }
  return out;
}

TEST(Lexer, TokenKinds) {
  auto toks = lex_line("label: addiu $t0, $t1, -42 # comment", 1);
  ASSERT_EQ(toks.size(), 9u);  // ident colon ident reg comma reg comma number end
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "label");
  EXPECT_EQ(toks[1].kind, TokKind::kColon);
  EXPECT_EQ(toks[3].kind, TokKind::kReg);
  EXPECT_EQ(toks[3].text, "$t0");
  EXPECT_EQ(toks[7].kind, TokKind::kNumber);
  EXPECT_EQ(toks[7].value, -42);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, HexCharAndString) {
  auto toks = lex_line(".word 0xDEADBEEF, 'A', '\\n'", 1);
  EXPECT_EQ(toks[1].value, 0xDEADBEEF);
  EXPECT_EQ(toks[3].value, 'A');
  EXPECT_EQ(toks[5].value, '\n');
  auto stoks = lex_line(".asciiz \"hi\\tthere\"", 2);
  EXPECT_EQ(stoks[1].kind, TokKind::kString);
  EXPECT_EQ(stoks[1].text, "hi\tthere");
}

TEST(Lexer, SlashSlashComment) {
  auto toks = lex_line("nop // trailing", 1);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "nop");
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex_line("\"unterminated", 3), AsmError);
  EXPECT_THROW(lex_line("'ab'", 3), AsmError);
  EXPECT_THROW(lex_line("addiu $t0, $t1, @", 3), AsmError);
}

TEST(Assembler, RTypeEncodings) {
  auto text = text_of("main: addu $t0, $t1, $t2\n sub $s0, $s1, $s2\n sll $t0, $t1, 5\n");
  ASSERT_EQ(text.size(), 3u);
  EXPECT_EQ(text[0].op, Op::kAddu);
  EXPECT_EQ(text[0].rd, 8);
  EXPECT_EQ(text[0].rs, 9);
  EXPECT_EQ(text[0].rt, 10);
  EXPECT_EQ(text[1].op, Op::kSub);
  EXPECT_EQ(text[2].op, Op::kSll);
  EXPECT_EQ(text[2].shamt, 5);
}

TEST(Assembler, MemoryOperands) {
  auto text = text_of("main: lw $t0, -8($sp)\n sw $t1, 12($gp)\n lbu $t2, 0($a0)\n");
  EXPECT_EQ(text[0].op, Op::kLw);
  EXPECT_EQ(text[0].simm(), -8);
  EXPECT_EQ(text[0].rs, 29);
  EXPECT_EQ(text[1].op, Op::kSw);
  EXPECT_EQ(text[1].simm(), 12);
  EXPECT_EQ(text[2].op, Op::kLbu);
}

TEST(Assembler, BranchOffsets) {
  auto text = text_of(
      "main: beq $t0, $t1, fwd\n"
      " nop\n"
      "fwd: bne $t0, $t1, main\n");
  EXPECT_EQ(text[0].op, Op::kBeq);
  EXPECT_EQ(text[0].simm(), 1);  // one instruction forward past the delay-free next
  EXPECT_EQ(text[2].op, Op::kBne);
  EXPECT_EQ(text[2].simm(), -3);
}

TEST(Assembler, JumpTargets) {
  const Program p = assemble("main: j main\n jal main\n");
  auto text = text_of("main: j main\n jal main\n");
  EXPECT_EQ(text[0].op, Op::kJ);
  EXPECT_EQ(text[0].target26 << 2, p.entry & 0x0FFFFFFF);
}

TEST(Assembler, LiExpansion) {
  auto text = text_of("main: li $t0, 100\n li $t1, 40000\n li $t2, 0x12345678\n li $t3, -5\n");
  ASSERT_EQ(text.size(), 5u);
  EXPECT_EQ(text[0].op, Op::kAddiu);   // small signed
  EXPECT_EQ(text[0].simm(), 100);
  EXPECT_EQ(text[1].op, Op::kOri);     // fits unsigned 16
  EXPECT_EQ(text[1].uimm(), 40000u);
  EXPECT_EQ(text[2].op, Op::kLui);     // 32-bit: lui+ori
  EXPECT_EQ(text[2].uimm(), 0x1234u);
  EXPECT_EQ(text[3].op, Op::kOri);
  EXPECT_EQ(text[3].uimm(), 0x5678u);
  EXPECT_EQ(text[4].op, Op::kAddiu);   // negative small
  EXPECT_EQ(text[4].simm(), -5);
}

TEST(Assembler, LaAlwaysTwoWords) {
  const Program p = assemble("        .data\nv:      .word 7\n        .text\nmain:   la $t0, v\n");
  EXPECT_EQ(p.symbol("v"), 0x10010000u);
  auto text = text_of("        .data\nv:      .word 7\n        .text\nmain:   la $t0, v\n");
  ASSERT_EQ(text.size(), 2u);
  EXPECT_EQ(text[0].op, Op::kLui);
  EXPECT_EQ(text[0].uimm(), 0x1001u);
  EXPECT_EQ(text[1].op, Op::kOri);
  EXPECT_EQ(text[1].uimm(), 0x0000u);
}

TEST(Assembler, ComparisonPseudos) {
  auto text = text_of("main: blt $t0, $t1, main\n bge $t0, $t1, main\n bgtu $t0, $t1, main\n");
  ASSERT_EQ(text.size(), 6u);
  EXPECT_EQ(text[0].op, Op::kSlt);
  EXPECT_EQ(text[0].rd, 1);  // $at
  EXPECT_EQ(text[1].op, Op::kBne);
  EXPECT_EQ(text[2].op, Op::kSlt);
  EXPECT_EQ(text[3].op, Op::kBeq);
  EXPECT_EQ(text[4].op, Op::kSltu);
  EXPECT_EQ(text[4].rs, 9);  // swapped for bgt
  EXPECT_EQ(text[4].rt, 8);
}

TEST(Assembler, MulPseudo) {
  auto text = text_of("main: mul $t0, $t1, $t2\n");
  ASSERT_EQ(text.size(), 2u);
  EXPECT_EQ(text[0].op, Op::kMult);
  EXPECT_EQ(text[1].op, Op::kMflo);
  EXPECT_EQ(text[1].rd, 8);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(
      "        .data\n"
      "w:      .word 1, -2, 0x30\n"
      "h:      .half 5, 6\n"
      "b:      .byte 7, 8, 9\n"
      "        .align 2\n"
      "s:      .asciiz \"ab\"\n"
      "sp:     .space 8\n"
      "        .text\n"
      "main:   nop\n");
  mem::Memory m;
  p.load_into(m);
  EXPECT_EQ(m.read32(p.symbol("w")), 1u);
  EXPECT_EQ(static_cast<int32_t>(m.read32(p.symbol("w") + 4)), -2);
  EXPECT_EQ(m.read32(p.symbol("w") + 8), 0x30u);
  EXPECT_EQ(m.read16(p.symbol("h")), 5u);
  EXPECT_EQ(m.read8(p.symbol("b") + 2), 9u);
  EXPECT_EQ(p.symbol("s") % 4, 0u);  // .align 2
  EXPECT_EQ(m.read8(p.symbol("s")), 'a');
  EXPECT_EQ(m.read8(p.symbol("s") + 2), 0u);
  EXPECT_EQ(p.symbol("sp") - p.symbol("s"), 3u);
}

TEST(Assembler, WordWithSymbolReference) {
  const Program p = assemble(
      "        .data\n"
      "a:      .word 1\n"
      "ptr:    .word a, a+4\n"
      "        .text\n"
      "main:   nop\n");
  mem::Memory m;
  p.load_into(m);
  EXPECT_EQ(m.read32(p.symbol("ptr")), p.symbol("a"));
  EXPECT_EQ(m.read32(p.symbol("ptr") + 4), p.symbol("a") + 4);
}

TEST(Assembler, EntryIsMainOrTextBase) {
  EXPECT_EQ(assemble("main: nop\n").entry, 0x00400000u);
  EXPECT_EQ(assemble("nop\nmain: nop\n").entry, 0x00400004u);
  EXPECT_EQ(assemble("start: nop\n").entry, 0x00400000u);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("main: bogus $t0\n"), AsmError);
  EXPECT_THROW(assemble("main: addiu $t0, $t1, 100000\n"), AsmError);  // imm range
  EXPECT_THROW(assemble("main: lw $t0, undefined_sym($t1)\n"), AsmError);
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);  // duplicate label
  EXPECT_THROW(assemble("main: addu $t0, $t1\n"), AsmError);  // operand count
  EXPECT_THROW(assemble("main: sll $t0, $t1, 32\n"), AsmError);  // shamt range
  EXPECT_THROW(assemble(".data\nx: .word 1\n addu $t0, $t1, $t2\n"), AsmError);
  EXPECT_THROW(assemble("main: lw $t0, some_label\n"), AsmError);  // abs memref
}

TEST(Assembler, BranchRangeError) {
  std::string src = "main: beq $t0, $t1, far\n";
  for (int i = 0; i < 40000; ++i) src += " nop\n";
  src += "far: nop\n";
  EXPECT_THROW(assemble(src), AsmError);
}

TEST(Assembler, ImageRoundTripThroughDisasm) {
  // Every emitted word must decode to a valid instruction.
  auto text = text_of(
      "main: li $t0, 0xABCD1234\n la $t1, main\n move $t2, $t0\n not $t3, $t2\n"
      " neg $t4, $t3\n b main\n beqz $t0, main\n bnez $t0, main\n nop\n subiu $t5, $t4, 3\n");
  for (const auto& i : text) {
    EXPECT_NE(i.op, Op::kInvalid) << isa::disasm(i, 0);
  }
}

}  // namespace
}  // namespace dim::asmblr
