// Component-level differential fuzzing: random *supported* instruction
// sequences are (a) executed step-by-step by the functional core and
// (b) translated by ConfigBuilder and executed on the array. Results must
// be bit-identical, and the placement must respect the dependence-table
// invariants. This isolates translator/array bugs without the whole system
// in the loop.
#include <gtest/gtest.h>

#include <random>

#include "bt/translator.hpp"
#include "isa/encoder.hpp"
#include "mem/memory.hpp"
#include "rra/array_exec.hpp"
#include "sim/executor.hpp"

namespace dim {
namespace {

using isa::Instr;
using isa::Op;

struct RandomSequence {
  std::vector<Instr> instrs;
};

// Generates a sequence of array-supported instructions over $8..$15 with
// loads/stores into [0x10008000, +256).
RandomSequence make_sequence(uint32_t seed, int length) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  auto reg = [&] { return pick(8, 15); };

  RandomSequence seq;
  for (int i = 0; i < length; ++i) {
    Instr instr;
    switch (pick(0, 11)) {
      case 0:
        instr.op = Op::kAddu;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        break;
      case 1:
        instr.op = Op::kSubu;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        break;
      case 2:
        instr.op = Op::kXor;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        break;
      case 3:
        instr.op = Op::kSltu;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        break;
      case 4:
        instr.op = Op::kAddiu;
        instr.rt = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        instr.imm16 = static_cast<uint16_t>(pick(-256, 255));
        break;
      case 5:
        instr.op = Op::kSll;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        instr.shamt = static_cast<uint8_t>(pick(0, 31));
        break;
      case 6:
        instr.op = Op::kSrav;
        instr.rd = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        instr.rs = static_cast<uint8_t>(reg());
        break;
      case 7:
        instr.op = Op::kMult;
        instr.rs = static_cast<uint8_t>(reg());
        instr.rt = static_cast<uint8_t>(reg());
        break;
      case 8:
        instr.op = pick(0, 1) ? Op::kMflo : Op::kMfhi;
        instr.rd = static_cast<uint8_t>(reg());
        break;
      case 9:
        instr.op = pick(0, 1) ? Op::kLw : Op::kLbu;
        instr.rt = static_cast<uint8_t>(reg());
        instr.rs = 28;  // $gp points at the scratch buffer
        instr.imm16 = static_cast<uint16_t>(pick(0, 63) * 4);
        break;
      case 10:
        instr.op = pick(0, 1) ? Op::kSw : Op::kSb;
        instr.rt = static_cast<uint8_t>(reg());
        instr.rs = 28;
        instr.imm16 = static_cast<uint16_t>(pick(0, 63) * 4);
        break;
      default:
        instr.op = Op::kLui;
        instr.rt = static_cast<uint8_t>(reg());
        instr.imm16 = static_cast<uint16_t>(pick(0, 65535));
        break;
    }
    seq.instrs.push_back(instr);
  }
  return seq;
}

sim::CpuState seeded_state(uint32_t seed) {
  sim::CpuState s;
  std::mt19937 rng(seed ^ 0xABCD);
  for (int r = 8; r <= 15; ++r) s.regs[static_cast<size_t>(r)] = rng();
  s.regs[28] = 0x10008000;
  s.hi = rng();
  s.lo = rng();
  return s;
}

void seed_memory(mem::Memory& m, uint32_t seed) {
  std::mt19937 rng(seed ^ 0x1234);
  for (uint32_t a = 0; a < 256; a += 4) m.write32(0x10008000 + a, rng());
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, ArrayMatchesFunctionalExecution) {
  const uint32_t seed = static_cast<uint32_t>(GetParam()) * 2654435761u + 17;
  std::mt19937 meta(seed);
  const int length = std::uniform_int_distribution<int>(4, 60)(meta);
  const RandomSequence seq = make_sequence(seed, length);

  // (a) Functional reference: lay the sequence out in memory and step it.
  sim::CpuState ref_state = seeded_state(seed);
  mem::Memory ref_mem;
  seed_memory(ref_mem, seed);
  const uint32_t base = 0x00400000;
  for (size_t i = 0; i < seq.instrs.size(); ++i) {
    ref_mem.write32(base + static_cast<uint32_t>(4 * i), isa::encode(seq.instrs[i]));
  }
  // Terminator so the reference stops.
  Instr brk;
  brk.op = Op::kBreak;
  ref_mem.write32(base + static_cast<uint32_t>(4 * seq.instrs.size()), isa::encode(brk));
  ref_state.pc = base;
  while (!ref_state.halted) sim::step(ref_state, ref_mem);

  // (b) Translate + execute on the array.
  bt::TranslatorParams params;
  params.shape = rra::ArrayShape::config3();
  bt::ConfigBuilder builder(base, params);
  size_t placed = 0;
  for (size_t i = 0; i < seq.instrs.size(); ++i) {
    if (!builder.try_add(seq.instrs[i], base + static_cast<uint32_t>(4 * i))) break;
    ++placed;
  }
  ASSERT_EQ(placed, seq.instrs.size()) << "config #3 must fit 60 instructions";
  const rra::Configuration config =
      builder.finalize(base + static_cast<uint32_t>(4 * seq.instrs.size()));

  sim::CpuState array_state = seeded_state(seed);
  mem::Memory array_mem;
  seed_memory(array_mem, seed);
  const rra::ArrayExecOutcome outcome = rra::execute_configuration(
      config, array_state, array_mem, nullptr, rra::ArrayTimingParams{});

  // (c) Identical results.
  EXPECT_EQ(outcome.committed_ops, static_cast<int>(seq.instrs.size()));
  array_state.pc = ref_state.pc = 0;  // reference halted at break; ignore PC
  EXPECT_EQ(array_state.reg_hash(), ref_state.reg_hash()) << "seed " << seed;
  // The reference memory additionally contains the program text; compare
  // only the data buffer.
  for (uint32_t a = 0; a < 256; ++a) {
    ASSERT_EQ(array_mem.read8(0x10008000 + a), ref_mem.read8(0x10008000 + a))
        << "seed " << seed << " offset " << a;
  }

  // (d) Placement invariants (dependences + memory order).
  std::array<int, rra::kNumCtxRegs> writer;
  writer.fill(-1);
  int last_store_row = -1;
  int last_mem_row = -1;
  for (const rra::ArrayOp& op : config.ops) {
    int srcs[2];
    const int n = rra::array_srcs(op.instr, srcs);
    for (int k = 0; k < n; ++k) {
      if (srcs[k] != 0 && writer[static_cast<size_t>(srcs[k])] >= 0) {
        EXPECT_GT(op.row, writer[static_cast<size_t>(srcs[k])]);
      }
    }
    if (isa::is_load(op.instr.op)) {
      EXPECT_GT(op.row, last_store_row);
      last_mem_row = std::max(last_mem_row, op.row);
    } else if (isa::is_store(op.instr.op)) {
      EXPECT_GT(op.row, last_mem_row);  // strictly after all prior memory ops
      EXPECT_GT(op.row, last_store_row);
      last_mem_row = std::max(last_mem_row, op.row);
      last_store_row = std::max(last_store_row, op.row);
    }
    int dsts[2];
    const int nd = rra::array_dests(op.instr, dsts);
    for (int k = 0; k < nd; ++k) writer[static_cast<size_t>(dsts[k])] = op.row;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace dim
