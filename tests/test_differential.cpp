// Component-level differential fuzzing: random *supported* instruction
// sequences are (a) executed step-by-step by the functional core and
// (b) translated by ConfigBuilder and executed on the array. Results must
// be bit-identical, and the placement must respect the dependence-table
// invariants. This isolates translator/array bugs without the whole system
// in the loop.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "bt/translator.hpp"
#include "fuzz/generator.hpp"
#include "isa/encoder.hpp"
#include "mem/memory.hpp"
#include "rra/array_exec.hpp"
#include "sim/executor.hpp"

namespace dim {
namespace {

using isa::Instr;
using isa::Op;

struct RandomSequence {
  std::vector<Instr> instrs;
};

// The full array-supported op set, grouped by encoding form. Any op DIM can
// place must appear in the random sequences (asserted by the coverage test
// below), so a translator or FU regression on a rare op can't hide.
const Op kThreeReg[] = {Op::kAddu, Op::kSubu, Op::kAdd,  Op::kSub,  Op::kAnd,
                        Op::kOr,   Op::kXor,  Op::kNor,  Op::kSlt,  Op::kSltu,
                        Op::kSllv, Op::kSrlv, Op::kSrav};
const Op kShiftImm[] = {Op::kSll, Op::kSrl, Op::kSra};
const Op kSignedImm[] = {Op::kAddi, Op::kAddiu, Op::kSlti, Op::kSltiu};
const Op kUnsignedImm[] = {Op::kAndi, Op::kOri, Op::kXori};
const Op kLoads[] = {Op::kLw, Op::kLh, Op::kLhu, Op::kLb, Op::kLbu};
const Op kStores[] = {Op::kSw, Op::kSh, Op::kSb};

// Access width in bytes, for keeping random offsets naturally aligned.
int mem_width(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh: return 2;
    default: return 1;
  }
}

// Generates a sequence of array-supported instructions over $8..$15 with
// loads/stores into [0x10008000, +256).
RandomSequence make_sequence(uint32_t seed, int length) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  auto reg = [&] { return static_cast<uint8_t>(pick(8, 15)); };

  RandomSequence seq;
  for (int i = 0; i < length; ++i) {
    Instr instr;
    switch (pick(0, 10)) {
      case 0: case 1: case 2:
        instr.op = kThreeReg[pick(0, 12)];
        instr.rd = reg();
        instr.rs = reg();
        instr.rt = reg();
        break;
      case 3:
        instr.op = kShiftImm[pick(0, 2)];
        instr.rd = reg();
        instr.rt = reg();
        instr.shamt = static_cast<uint8_t>(pick(0, 31));
        break;
      case 4:
        instr.op = kSignedImm[pick(0, 3)];
        instr.rt = reg();
        instr.rs = reg();
        instr.imm16 = static_cast<uint16_t>(pick(-256, 255));
        break;
      case 5:
        instr.op = kUnsignedImm[pick(0, 2)];
        instr.rt = reg();
        instr.rs = reg();
        instr.imm16 = static_cast<uint16_t>(pick(0, 65535));
        break;
      case 6:
        instr.op = pick(0, 1) ? Op::kMult : Op::kMultu;
        instr.rs = reg();
        instr.rt = reg();
        break;
      case 7:
        instr.op = pick(0, 1) ? Op::kMflo : Op::kMfhi;
        instr.rd = reg();
        break;
      case 8: {
        instr.op = kLoads[pick(0, 4)];
        instr.rt = reg();
        instr.rs = 28;  // $gp points at the scratch buffer
        const int w = mem_width(instr.op);
        instr.imm16 = static_cast<uint16_t>(pick(0, 255 / w) * w);
        break;
      }
      case 9: {
        instr.op = kStores[pick(0, 2)];
        instr.rt = reg();
        instr.rs = 28;
        const int w = mem_width(instr.op);
        instr.imm16 = static_cast<uint16_t>(pick(0, 255 / w) * w);
        break;
      }
      default:
        instr.op = Op::kLui;
        instr.rt = reg();
        instr.imm16 = static_cast<uint16_t>(pick(0, 65535));
        break;
    }
    seq.instrs.push_back(instr);
  }
  return seq;
}

sim::CpuState seeded_state(uint32_t seed) {
  sim::CpuState s;
  std::mt19937 rng(seed ^ 0xABCD);
  for (int r = 8; r <= 15; ++r) s.regs[static_cast<size_t>(r)] = rng();
  s.regs[28] = 0x10008000;
  s.hi = rng();
  s.lo = rng();
  return s;
}

void seed_memory(mem::Memory& m, uint32_t seed) {
  std::mt19937 rng(seed ^ 0x1234);
  for (uint32_t a = 0; a < 256; a += 4) m.write32(0x10008000 + a, rng());
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, ArrayMatchesFunctionalExecution) {
  const uint32_t seed = static_cast<uint32_t>(GetParam()) * 2654435761u + 17;
  std::mt19937 meta(seed);
  const int length = std::uniform_int_distribution<int>(4, 60)(meta);
  const RandomSequence seq = make_sequence(seed, length);

  // (a) Functional reference: lay the sequence out in memory and step it.
  sim::CpuState ref_state = seeded_state(seed);
  mem::Memory ref_mem;
  seed_memory(ref_mem, seed);
  const uint32_t base = 0x00400000;
  for (size_t i = 0; i < seq.instrs.size(); ++i) {
    ref_mem.write32(base + static_cast<uint32_t>(4 * i), isa::encode(seq.instrs[i]));
  }
  // Terminator so the reference stops.
  Instr brk;
  brk.op = Op::kBreak;
  ref_mem.write32(base + static_cast<uint32_t>(4 * seq.instrs.size()), isa::encode(brk));
  ref_state.pc = base;
  while (!ref_state.halted) sim::step(ref_state, ref_mem);

  // (b) Translate + execute on the array.
  bt::TranslatorParams params;
  params.shape = rra::ArrayShape::config3();
  bt::ConfigBuilder builder(base, params);
  size_t placed = 0;
  for (size_t i = 0; i < seq.instrs.size(); ++i) {
    if (!builder.try_add(seq.instrs[i], base + static_cast<uint32_t>(4 * i))) break;
    ++placed;
  }
  ASSERT_EQ(placed, seq.instrs.size()) << "config #3 must fit 60 instructions";
  const rra::Configuration config =
      builder.finalize(base + static_cast<uint32_t>(4 * seq.instrs.size()));

  sim::CpuState array_state = seeded_state(seed);
  mem::Memory array_mem;
  seed_memory(array_mem, seed);
  const rra::ArrayExecOutcome outcome = rra::execute_configuration(
      config, array_state, array_mem, nullptr, rra::ArrayTimingParams{});

  // (c) Identical results.
  EXPECT_EQ(outcome.committed_ops, static_cast<int>(seq.instrs.size()));
  array_state.pc = ref_state.pc = 0;  // reference halted at break; ignore PC
  EXPECT_EQ(array_state.reg_hash(), ref_state.reg_hash()) << "seed " << seed;
  // The reference memory additionally contains the program text; compare
  // only the data buffer.
  for (uint32_t a = 0; a < 256; ++a) {
    ASSERT_EQ(array_mem.read8(0x10008000 + a), ref_mem.read8(0x10008000 + a))
        << "seed " << seed << " offset " << a;
  }

  // (d) Placement invariants (dependences + memory order).
  std::array<int, rra::kNumCtxRegs> writer;
  writer.fill(-1);
  int last_store_row = -1;
  int last_mem_row = -1;
  for (const rra::ArrayOp& op : config.ops) {
    int srcs[2];
    const int n = rra::array_srcs(op.instr, srcs);
    for (int k = 0; k < n; ++k) {
      if (srcs[k] != 0 && writer[static_cast<size_t>(srcs[k])] >= 0) {
        EXPECT_GT(op.row, writer[static_cast<size_t>(srcs[k])]);
      }
    }
    if (isa::is_load(op.instr.op)) {
      EXPECT_GT(op.row, last_store_row);
      last_mem_row = std::max(last_mem_row, op.row);
    } else if (isa::is_store(op.instr.op)) {
      EXPECT_GT(op.row, last_mem_row);  // strictly after all prior memory ops
      EXPECT_GT(op.row, last_store_row);
      last_mem_row = std::max(last_mem_row, op.row);
      last_store_row = std::max(last_store_row, op.row);
    }
    int dsts[2];
    const int nd = rra::array_dests(op.instr, dsts);
    for (int k = 0; k < nd; ++k) writer[static_cast<size_t>(dsts[k])] = op.row;
  }
}

// Seed budget is env-tunable (DIMSIM_FUZZ_SEEDS) so CI can run deeper
// campaigns without a rebuild; the default keeps the current cost.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0, fuzz::seed_budget(100)));

// Predicated differential: a random hammock (if-then or diamond) is laid
// out as real branchy code and stepped by the functional core, and the same
// shape is if-converted with try_merge_hammock and executed on the array.
// Whatever direction the seeded state drives the branch, the merged
// configuration must commit exactly the architectural effects of the path
// the reference actually took — both predicate polarities are covered
// across the seed range.
class PredicatedDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PredicatedDifferentialFuzz, MergedHammockMatchesFunctionalExecution) {
  const uint32_t seed = static_cast<uint32_t>(GetParam()) * 2246822519u + 101;
  std::mt19937 meta(seed);
  auto pick = [&meta](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(meta);
  };

  const int prefix_len = pick(1, 4);
  const int fall_len = pick(1, 4);
  const bool diamond = pick(0, 1) == 1;
  const int taken_len = diamond ? pick(1, 4) : 0;
  const RandomSequence prefix = make_sequence(seed ^ 0x50F1, prefix_len);
  const RandomSequence fall_arm = make_sequence(seed ^ 0xA23B, fall_len);
  const RandomSequence taken_arm = make_sequence(seed ^ 0x77E5, taken_len);

  // The hammock branch: mix of two-reg equality and sign tests so the
  // seeded register state drives both directions across the seed range.
  Instr branch;
  switch (pick(0, 3)) {
    case 0:
      branch.op = Op::kBeq;
      branch.rs = static_cast<uint8_t>(pick(8, 15));
      branch.rt = branch.rs;  // always taken
      break;
    case 1:
      branch.op = Op::kBne;
      branch.rs = static_cast<uint8_t>(pick(8, 15));
      branch.rt = static_cast<uint8_t>(pick(8, 15));
      break;
    case 2:
      branch.op = Op::kBltz;
      branch.rs = static_cast<uint8_t>(pick(8, 15));
      break;
    default:
      branch.op = Op::kBgez;
      branch.rs = static_cast<uint8_t>(pick(8, 15));
      break;
  }
  // Fall-through region = fall arm (+ join jump for a diamond).
  branch.imm16 = static_cast<uint16_t>(fall_len + (diamond ? 1 : 0));

  // Lay the hammock out as real code for the functional reference.
  const uint32_t base = 0x00400000;
  std::vector<Instr> code(prefix.instrs);
  const uint32_t branch_pc = base + static_cast<uint32_t>(4 * code.size());
  code.push_back(branch);
  std::vector<bt::HammockOp> not_taken_ops, taken_ops;
  for (const Instr& i : fall_arm.instrs) {
    not_taken_ops.push_back({i, base + static_cast<uint32_t>(4 * code.size())});
    code.push_back(i);
  }
  std::optional<bt::HammockOp> join_jump;
  if (diamond) {
    Instr jj;  // `b join` == beq $0, $0, <over the taken arm>
    jj.op = Op::kBeq;
    jj.imm16 = static_cast<uint16_t>(taken_len);
    join_jump = bt::HammockOp{jj, base + static_cast<uint32_t>(4 * code.size())};
    code.push_back(jj);
    for (const Instr& i : taken_arm.instrs) {
      taken_ops.push_back({i, base + static_cast<uint32_t>(4 * code.size())});
      code.push_back(i);
    }
  }
  const uint32_t join_pc = base + static_cast<uint32_t>(4 * code.size());

  sim::CpuState ref_state = seeded_state(seed);
  mem::Memory ref_mem;
  seed_memory(ref_mem, seed);
  for (size_t i = 0; i < code.size(); ++i) {
    ref_mem.write32(base + static_cast<uint32_t>(4 * i), isa::encode(code[i]));
  }
  Instr brk;
  brk.op = Op::kBreak;
  ref_mem.write32(join_pc, isa::encode(brk));
  ref_state.pc = base;
  while (!ref_state.halted) sim::step(ref_state, ref_mem);

  // If-convert the same shape.
  bt::TranslatorParams params;
  params.shape = rra::ArrayShape::config3();
  params.predication = true;
  bt::ConfigBuilder builder(base, params);
  for (int i = 0; i < prefix_len; ++i) {
    ASSERT_TRUE(builder.try_add(prefix.instrs[static_cast<size_t>(i)],
                                base + static_cast<uint32_t>(4 * i)));
  }
  ASSERT_TRUE(builder.try_merge_hammock(branch, branch_pc, not_taken_ops,
                                        join_jump ? &*join_jump : nullptr,
                                        taken_ops))
      << "seed " << seed;
  const rra::Configuration config = builder.finalize(join_pc);
  ASSERT_EQ(config.pred_slots, 1);

  sim::CpuState array_state = seeded_state(seed);
  mem::Memory array_mem;
  seed_memory(array_mem, seed);
  const rra::ArrayExecOutcome outcome = rra::execute_configuration(
      config, array_state, array_mem, nullptr, rra::ArrayTimingParams{});

  EXPECT_FALSE(outcome.misspeculated) << "a pred-def branch cannot misspeculate";
  EXPECT_EQ(outcome.next_pc, join_pc);
  array_state.pc = ref_state.pc = 0;
  EXPECT_EQ(array_state.reg_hash(), ref_state.reg_hash()) << "seed " << seed;
  for (uint32_t a = 0; a < 256; ++a) {
    ASSERT_EQ(array_mem.read8(0x10008000 + a), ref_mem.read8(0x10008000 + a))
        << "seed " << seed << " offset " << a;
  }

  // Placement invariant: every predicated op sits strictly below its
  // pred-defining branch (the gate must be resolved before write-back).
  int pred_def_row = -1;
  for (const rra::ArrayOp& op : config.ops) {
    if (op.is_pred_def) pred_def_row = op.row;
  }
  ASSERT_GE(pred_def_row, 0);
  for (const rra::ArrayOp& op : config.ops) {
    if (op.pred_slot >= 0 && !op.is_pred_def) EXPECT_GT(op.row, pred_def_row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatedDifferentialFuzz,
                         ::testing::Range(0, fuzz::seed_budget(100)));

// Every op the array can execute must actually be exercised somewhere in
// the seed range above — otherwise a rare-op regression is invisible to
// this suite and the "full op set" claim is vacuous.
TEST(DifferentialFuzzCoverage, EveryArraySupportedOpAppears) {
  std::set<Op> seen;
  const int seeds = fuzz::seed_budget(100);
  for (int p = 0; p < seeds; ++p) {
    const uint32_t seed = static_cast<uint32_t>(p) * 2654435761u + 17;
    std::mt19937 meta(seed);
    const int length = std::uniform_int_distribution<int>(4, 60)(meta);
    for (const Instr& instr : make_sequence(seed, length).instrs) {
      seen.insert(instr.op);
    }
  }
  std::vector<Op> required;
  required.insert(required.end(), std::begin(kThreeReg), std::end(kThreeReg));
  required.insert(required.end(), std::begin(kShiftImm), std::end(kShiftImm));
  required.insert(required.end(), std::begin(kSignedImm), std::end(kSignedImm));
  required.insert(required.end(), std::begin(kUnsignedImm), std::end(kUnsignedImm));
  required.insert(required.end(), std::begin(kLoads), std::end(kLoads));
  required.insert(required.end(), std::begin(kStores), std::end(kStores));
  required.push_back(Op::kLui);
  required.push_back(Op::kMult);
  required.push_back(Op::kMultu);
  required.push_back(Op::kMfhi);
  required.push_back(Op::kMflo);
  for (Op op : required) {
    EXPECT_TRUE(isa::dim_supported(op) || op == Op::kMfhi || op == Op::kMflo)
        << isa::op_name(op);
    EXPECT_TRUE(seen.count(op)) << "op never generated: " << isa::op_name(op);
  }
}

}  // namespace
}  // namespace dim
