// Per-instruction architectural semantics, exercised through the assembler
// so the encodings are tested end-to-end as well.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/encoder.hpp"
#include "sim/executor.hpp"
#include "sim/machine.hpp"

namespace dim::sim {
namespace {

// Runs a snippet (body placed at "main") and returns the final state.
CpuState run_asm(const std::string& body) {
  const asmblr::Program p = asmblr::assemble("main:\n" + body + "        break\n");
  Machine machine(p);
  const RunResult r = machine.run();
  EXPECT_FALSE(r.hit_limit);
  return r.state;
}

uint32_t reg(const CpuState& s, int r) { return s.regs[static_cast<size_t>(r)]; }

TEST(Executor, ArithmeticBasics) {
  auto s = run_asm(
      " li $t0, 7\n li $t1, -3\n addu $t2, $t0, $t1\n subu $t3, $t0, $t1\n"
      " addiu $t4, $t0, -10\n");
  EXPECT_EQ(reg(s, 10), 4u);
  EXPECT_EQ(static_cast<int32_t>(reg(s, 11)), 10);
  EXPECT_EQ(static_cast<int32_t>(reg(s, 12)), -3);
}

TEST(Executor, LogicOps) {
  auto s = run_asm(
      " li $t0, 0xF0F0\n li $t1, 0x0FF0\n and $t2, $t0, $t1\n or $t3, $t0, $t1\n"
      " xor $t4, $t0, $t1\n nor $t5, $t0, $t1\n andi $t6, $t0, 0xFF\n"
      " ori $t7, $t0, 0xF\n xori $t8, $t0, 0xFFFF\n");
  EXPECT_EQ(reg(s, 10), 0x00F0u);
  EXPECT_EQ(reg(s, 11), 0xFFF0u);
  EXPECT_EQ(reg(s, 12), 0xFF00u);
  EXPECT_EQ(reg(s, 13), 0xFFFF000Fu);
  EXPECT_EQ(reg(s, 14), 0xF0u);
  EXPECT_EQ(reg(s, 15), 0xF0FFu);
  EXPECT_EQ(reg(s, 24), 0x0F0Fu);
}

TEST(Executor, Shifts) {
  auto s = run_asm(
      " li $t0, 0x80000001\n sll $t1, $t0, 4\n srl $t2, $t0, 4\n sra $t3, $t0, 4\n"
      " li $t4, 8\n sllv $t5, $t0, $t4\n srlv $t6, $t0, $t4\n srav $t7, $t0, $t4\n"
      " li $t8, 36\n srlv $t9, $t0, $t8\n");  // shift amount masked to 5 bits
  EXPECT_EQ(reg(s, 9), 0x00000010u);
  EXPECT_EQ(reg(s, 10), 0x08000000u);
  EXPECT_EQ(reg(s, 11), 0xF8000000u);
  EXPECT_EQ(reg(s, 13), 0x00000100u);
  EXPECT_EQ(reg(s, 14), 0x00800000u);
  EXPECT_EQ(reg(s, 15), 0xFF800000u);
  EXPECT_EQ(reg(s, 25), 0x08000000u);  // 36 & 31 == 4
}

TEST(Executor, SetLessThan) {
  auto s = run_asm(
      " li $t0, -1\n li $t1, 1\n slt $t2, $t0, $t1\n sltu $t3, $t0, $t1\n"
      " slti $t4, $t0, 0\n sltiu $t5, $t1, 2\n slti $t6, $t1, -5\n");
  EXPECT_EQ(reg(s, 10), 1u);  // signed: -1 < 1
  EXPECT_EQ(reg(s, 11), 0u);  // unsigned: 0xFFFFFFFF > 1
  EXPECT_EQ(reg(s, 12), 1u);
  EXPECT_EQ(reg(s, 13), 1u);
  EXPECT_EQ(reg(s, 14), 0u);
}

TEST(Executor, Lui) {
  auto s = run_asm(" lui $t0, 0xBEEF\n");
  EXPECT_EQ(reg(s, 8), 0xBEEF0000u);
}

TEST(Executor, MultDivHiLo) {
  auto s = run_asm(
      " li $t0, -3\n li $t1, 100000\n mult $t0, $t1\n mflo $t2\n mfhi $t3\n"
      " multu $t0, $t1\n mflo $t4\n mfhi $t5\n"
      " li $t6, -17\n li $t7, 5\n div $t6, $t7\n mflo $t8\n mfhi $t9\n");
  EXPECT_EQ(static_cast<int32_t>(reg(s, 10)), -300000);
  EXPECT_EQ(reg(s, 11), 0xFFFFFFFFu);  // sign-extended high part
  // multu: 0xFFFFFFFD * 100000
  const uint64_t prod = 0xFFFFFFFDull * 100000ull;
  EXPECT_EQ(reg(s, 12), static_cast<uint32_t>(prod));
  EXPECT_EQ(reg(s, 13), static_cast<uint32_t>(prod >> 32));
  EXPECT_EQ(static_cast<int32_t>(reg(s, 24)), -3);  // -17 / 5 truncates toward 0
  EXPECT_EQ(static_cast<int32_t>(reg(s, 25)), -2);  // remainder keeps dividend sign
}

TEST(Executor, DivByZeroIsDeterministic) {
  auto s = run_asm(" li $t0, 10\n li $t1, 0\n div $t0, $t1\n mflo $t2\n mfhi $t3\n");
  EXPECT_EQ(reg(s, 10), 0u);
  EXPECT_EQ(reg(s, 11), 10u);
}

TEST(Executor, MthiMtlo) {
  auto s = run_asm(" li $t0, 77\n mthi $t0\n li $t1, 88\n mtlo $t1\n mfhi $t2\n mflo $t3\n");
  EXPECT_EQ(reg(s, 10), 77u);
  EXPECT_EQ(reg(s, 11), 88u);
}

TEST(Executor, LoadStoreWidthsAndSignExtension) {
  auto s = run_asm(
      "        la $t0, buf\n"
      "        li $t1, 0x818283FF\n"
      "        sw $t1, 0($t0)\n"
      "        lb $t2, 0($t0)\n"
      "        lbu $t3, 0($t0)\n"
      "        lh $t4, 0($t0)\n"
      "        lhu $t5, 0($t0)\n"
      "        lb $t6, 3($t0)\n"
      "        li $t7, 0xAB\n"
      "        sb $t7, 1($t0)\n"
      "        li $t8, 0x1234\n"
      "        sh $t8, 2($t0)\n"
      "        lw $t9, 0($t0)\n"
      "        .data\n"
      "buf:    .space 16\n"
      "        .text\n");
  EXPECT_EQ(static_cast<int32_t>(reg(s, 10)), -1);         // lb 0xFF
  EXPECT_EQ(reg(s, 11), 0xFFu);                            // lbu
  EXPECT_EQ(static_cast<int32_t>(reg(s, 12)), -31745);     // lh 0x83FF
  EXPECT_EQ(reg(s, 13), 0x83FFu);                          // lhu
  EXPECT_EQ(static_cast<int32_t>(reg(s, 14)), -127);       // lb 0x81
  EXPECT_EQ(reg(s, 25), 0x1234ABFFu);                      // after sb/sh
}

TEST(Executor, ZeroRegisterIsImmutable) {
  auto s = run_asm(" li $t0, 5\n addu $zero, $t0, $t0\n move $t1, $zero\n");
  EXPECT_EQ(reg(s, 0), 0u);
  EXPECT_EQ(reg(s, 9), 0u);
}

TEST(Executor, ConditionalBranches) {
  auto s = run_asm(
      " li $t0, -1\n li $t1, 1\n li $t9, 0\n"
      " bltz $t0, l1\n li $t9, 99\n"
      "l1: bgez $t1, l2\n li $t9, 98\n"
      "l2: blez $zero, l3\n li $t9, 97\n"
      "l3: bgtz $t1, l4\n li $t9, 96\n"
      "l4: beq $t0, $t0, l5\n li $t9, 95\n"
      "l5: bne $t0, $t1, l6\n li $t9, 94\n"
      "l6: addiu $t9, $t9, 1\n");
  EXPECT_EQ(reg(s, 25), 1u);  // every branch taken; skipped lis never ran
}

TEST(Executor, JumpAndLink) {
  auto s = run_asm(
      " jal sub\n"
      " li $t1, 1\n"
      " b end\n"
      "sub: li $t0, 42\n"
      " jr $ra\n"
      "end: nop\n");
  EXPECT_EQ(reg(s, 8), 42u);
  EXPECT_EQ(reg(s, 9), 1u);
  EXPECT_NE(reg(s, 31), 0u);
}

TEST(Executor, Jalr) {
  auto s = run_asm(
      " la $t0, sub\n"
      " jalr $t7, $t0\n"
      " b end\n"
      "sub: li $t1, 9\n"
      " jr $t7\n"
      "end: nop\n");
  EXPECT_EQ(reg(s, 9), 9u);
}

TEST(Executor, SyscallPrintServices) {
  const asmblr::Program p = asmblr::assemble(
      "        .data\n"
      "msg:    .asciiz \"x=\"\n"
      "        .text\n"
      "main:   la $a0, msg\n"
      "        li $v0, 4\n"
      "        syscall\n"
      "        li $a0, -42\n"
      "        li $v0, 1\n"
      "        syscall\n"
      "        li $a0, '!'\n"
      "        li $v0, 11\n"
      "        syscall\n"
      "        li $v0, 10\n"
      "        syscall\n");
  const RunResult r = run_baseline(p);
  EXPECT_EQ(r.state.output, "x=-42!");
  EXPECT_FALSE(r.hit_limit);
}

TEST(Executor, InvalidOpcodeHalts) {
  mem::Memory m;
  m.write32(0x400000, 0xFFFFFFFF);
  CpuState s;
  s.pc = 0x400000;
  const StepInfo info = step(s, m);
  EXPECT_TRUE(s.halted);
  EXPECT_TRUE(info.halted);
}

TEST(Executor, RunLimitReported) {
  const asmblr::Program p = asmblr::assemble("main: b main\n");
  MachineConfig cfg;
  cfg.max_instructions = 1000;
  const RunResult r = run_baseline(p, cfg);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST(Executor, AluEvalMatchesStepForPureOps) {
  // alu_eval is reused by the array executor; cross-check it against step().
  using isa::Op;
  isa::Instr i;
  i.op = Op::kAddu;
  i.rs = 8;
  i.rt = 9;
  i.rd = 10;
  EXPECT_EQ(alu_eval(i, 5, 7), 12u);
  i.op = Op::kSltiu;
  i.imm16 = static_cast<uint16_t>(-1);  // compares against 0xFFFFFFFF
  EXPECT_EQ(alu_eval(i, 5, 0), 1u);
  i.op = Op::kSra;
  i.shamt = 31;
  EXPECT_EQ(alu_eval(i, 0, 0x80000000u), 0xFFFFFFFFu);
}

TEST(Executor, PcWrapsAtTopOfAddressSpace) {
  // A straight-line instruction at the last word of the address space:
  // pc + 4 wraps to 0 in uint32 arithmetic, it does not trap or saturate.
  mem::Memory m;
  isa::Instr add;
  add.op = isa::Op::kAddiu;
  add.rs = 8;
  add.rt = 8;
  add.imm16 = 5;
  m.write32(0xFFFFFFFCu, isa::encode(add));
  CpuState s;
  s.pc = 0xFFFFFFFCu;
  const StepInfo info = step(s, m);
  EXPECT_EQ(s.pc, 0u);
  EXPECT_EQ(s.regs[8], 5u);
  EXPECT_EQ(info.next_pc, 0u);
}

TEST(Executor, BranchAtTopOfAddressSpaceWrapsTarget) {
  // A taken backward branch at 0xFFFFFFFC: the target arithmetic
  // (pc + 4 + (simm << 2)) wraps through zero back into high memory.
  mem::Memory m;
  isa::Instr beq;
  beq.op = isa::Op::kBeq;
  beq.rs = 0;
  beq.rt = 0;
  beq.imm16 = static_cast<uint16_t>(-4);  // target = 0 + (-16) = 0xFFFFFFF0
  m.write32(0xFFFFFFFCu, isa::encode(beq));
  CpuState s;
  s.pc = 0xFFFFFFFCu;
  const StepInfo info = step(s, m);
  EXPECT_TRUE(info.taken);
  EXPECT_EQ(s.pc, 0xFFFFFFF0u);

  // Not taken: falls through with the wrapped pc + 4.
  isa::Instr bne = beq;
  bne.op = isa::Op::kBne;
  m.write32(0xFFFFFFFCu, isa::encode(bne));
  s.pc = 0xFFFFFFFCu;
  const StepInfo fall = step(s, m);
  EXPECT_FALSE(fall.taken);
  EXPECT_EQ(s.pc, 0u);
}

TEST(Executor, JumpAtTopOfAddressSpaceUsesWrappedRegion) {
  // j/jal paste target26 into the region of pc + 4; at 0xFFFFFFFC that
  // region is 0x00000000, so the jump lands in low memory — and jal's
  // link register holds the wrapped return address.
  mem::Memory m;
  isa::Instr jal;
  jal.op = isa::Op::kJal;
  jal.target26 = 0x40;  // target = (0 & 0xF0000000) | (0x40 << 2) = 0x100
  m.write32(0xFFFFFFFCu, isa::encode(jal));
  CpuState s;
  s.pc = 0xFFFFFFFCu;
  step(s, m);
  EXPECT_EQ(s.pc, 0x100u);
  EXPECT_EQ(s.regs[31], 0u);  // return address wrapped to 0
}

TEST(Executor, BranchHelpers) {
  using isa::Op;
  isa::Instr b;
  b.op = Op::kBlez;
  EXPECT_TRUE(branch_taken(b, 0, 0));
  EXPECT_TRUE(branch_taken(b, 0x80000000u, 0));
  EXPECT_FALSE(branch_taken(b, 1, 0));
  b.op = Op::kBne;
  EXPECT_TRUE(branch_taken(b, 1, 2));
  b.imm16 = static_cast<uint16_t>(-2);
  EXPECT_EQ(branch_target(b, 0x1000), 0x1000u + 4 - 8);
  isa::Instr lw;
  lw.op = Op::kLw;
  lw.imm16 = static_cast<uint16_t>(-4);
  EXPECT_EQ(effective_address(lw, 0x100), 0xFCu);
  EXPECT_EQ(mem_width(Op::kLb), 1);
  EXPECT_EQ(mem_width(Op::kSh), 2);
  EXPECT_EQ(mem_width(Op::kLw), 4);
}

}  // namespace
}  // namespace dim::sim
