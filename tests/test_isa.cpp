#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/instruction.hpp"
#include "isa/registers.hpp"

namespace dim::isa {
namespace {

Instr make(Op op, int rs = 0, int rt = 0, int rd = 0, int shamt = 0, uint16_t imm = 0) {
  Instr i;
  i.op = op;
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  i.rd = static_cast<uint8_t>(rd);
  i.shamt = static_cast<uint8_t>(shamt);
  i.imm16 = imm;
  return i;
}

std::vector<Op> all_ops() {
  std::vector<Op> ops;
  for (int raw = 1; raw <= static_cast<int>(Op::kSw); ++raw) ops.push_back(static_cast<Op>(raw));
  return ops;
}

TEST(IsaRoundTrip, EncodeDecodePreservesEveryOp) {
  for (Op op : all_ops()) {
    Instr i = make(op, 3, 7, 12, 5, 0x1234);
    if (op == Op::kJ || op == Op::kJal) {
      i.rs = i.rt = i.rd = 0;
      i.shamt = 0;
      i.imm16 = 0;
      i.target26 = 0x123456;
    }
    const Instr d = decode(encode(i));
    EXPECT_EQ(d.op, i.op) << op_name(op);
    if (op == Op::kJ || op == Op::kJal) {
      EXPECT_EQ(d.target26, i.target26);
      continue;
    }
    // REGIMM branches encode the selector in rt, so rt is not free there.
    const bool regimm = op == Op::kBltz || op == Op::kBgez || op == Op::kBltzal ||
                        op == Op::kBgezal;
    EXPECT_EQ(d.rs, i.rs) << op_name(op);
    if (!regimm) {
      EXPECT_EQ(d.rt, i.rt) << op_name(op);
    }
    // imm16 survives only on I-form encodings (R-type packs rd/shamt/funct
    // in those bits).
    const bool i_form = is_branch(op) || is_load(op) || is_store(op) ||
                        op == Op::kAddi || op == Op::kAddiu || op == Op::kSlti ||
                        op == Op::kSltiu || op == Op::kAndi || op == Op::kOri ||
                        op == Op::kXori || op == Op::kLui;
    if (i_form) {
      EXPECT_EQ(d.imm16, i.imm16) << op_name(op);
    }
    // And the canonical encoding is always stable.
    EXPECT_EQ(encode(decode(encode(i))), encode(i)) << op_name(op);
  }
}

TEST(IsaRoundTrip, DecodeEncodeIsStableOnRandomWords) {
  uint32_t seed = 12345;
  int valid = 0;
  for (int n = 0; n < 200000; ++n) {
    seed = seed * 1664525u + 1013904223u;
    const Instr i = decode(seed);
    if (i.op == Op::kInvalid) continue;
    ++valid;
    const Instr j = decode(encode(i));
    EXPECT_EQ(j.op, i.op);
    EXPECT_EQ(j.rs, i.rs);
    EXPECT_EQ(j.rt, i.rt);
    // rd/shamt only matter on R-type ops; encode zeroes don't-cares.
    EXPECT_EQ(encode(j), encode(i));
  }
  EXPECT_GT(valid, 1000);  // sanity: the decoder accepts a fair fraction
}

TEST(IsaClassify, Groups) {
  EXPECT_TRUE(is_branch(Op::kBeq));
  EXPECT_TRUE(is_branch(Op::kBgezal));
  EXPECT_FALSE(is_branch(Op::kJ));
  EXPECT_TRUE(is_jump(Op::kJr));
  EXPECT_TRUE(is_jump(Op::kJal));
  EXPECT_FALSE(is_jump(Op::kBne));
  EXPECT_TRUE(is_load(Op::kLbu));
  EXPECT_FALSE(is_load(Op::kSb));
  EXPECT_TRUE(is_store(Op::kSh));
  EXPECT_TRUE(is_mult_div(Op::kDivu));
  EXPECT_TRUE(is_hilo_read(Op::kMflo));
  EXPECT_TRUE(is_shift(Op::kSrav));
  EXPECT_FALSE(is_shift(Op::kAddu));
}

TEST(IsaClassify, FuKinds) {
  EXPECT_EQ(fu_kind(Op::kAddu), FuKind::kAlu);
  EXPECT_EQ(fu_kind(Op::kLui), FuKind::kAlu);
  EXPECT_EQ(fu_kind(Op::kSll), FuKind::kAlu);
  EXPECT_EQ(fu_kind(Op::kMult), FuKind::kMul);
  EXPECT_EQ(fu_kind(Op::kMultu), FuKind::kMul);
  EXPECT_EQ(fu_kind(Op::kLw), FuKind::kLdSt);
  EXPECT_EQ(fu_kind(Op::kSb), FuKind::kLdSt);
  EXPECT_EQ(fu_kind(Op::kDiv), FuKind::kNone);   // no divider in the array
  EXPECT_EQ(fu_kind(Op::kJr), FuKind::kNone);
  EXPECT_EQ(fu_kind(Op::kSyscall), FuKind::kNone);
}

TEST(IsaClassify, DimSupport) {
  EXPECT_TRUE(dim_supported(Op::kAddu));
  EXPECT_TRUE(dim_supported(Op::kMult));
  EXPECT_TRUE(dim_supported(Op::kSw));
  EXPECT_FALSE(dim_supported(Op::kDiv));
  EXPECT_FALSE(dim_supported(Op::kSyscall));
  EXPECT_FALSE(dim_supported(Op::kJal));
  EXPECT_FALSE(dim_supported(Op::kBeq));  // branches handled via speculation
}

TEST(IsaRegs, DestReg) {
  EXPECT_EQ(dest_reg(make(Op::kAddu, 1, 2, 3)), 3);
  EXPECT_EQ(dest_reg(make(Op::kAddu, 1, 2, 0)), -1);  // writes to $zero drop
  EXPECT_EQ(dest_reg(make(Op::kAddiu, 1, 5)), 5);
  EXPECT_EQ(dest_reg(make(Op::kLw, 1, 9)), 9);
  EXPECT_EQ(dest_reg(make(Op::kSw, 1, 9)), -1);
  EXPECT_EQ(dest_reg(make(Op::kJal)), 31);
  EXPECT_EQ(dest_reg(make(Op::kMflo, 0, 0, 8)), 8);
  EXPECT_EQ(dest_reg(make(Op::kMult, 1, 2)), -1);  // writes HI/LO, not a GPR
}

TEST(IsaRegs, SrcRegs) {
  int out[2];
  EXPECT_EQ(src_regs(make(Op::kAddu, 1, 2, 3), out), 2);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(src_regs(make(Op::kSll, 0, 2, 3, 4), out), 1);
  EXPECT_EQ(out[0], 2);  // shamt shifts read rt only
  EXPECT_EQ(src_regs(make(Op::kSllv, 1, 2, 3), out), 2);
  EXPECT_EQ(src_regs(make(Op::kLw, 7, 9), out), 1);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(src_regs(make(Op::kSw, 7, 9), out), 2);
  EXPECT_EQ(src_regs(make(Op::kLui, 0, 9), out), 0);
  EXPECT_EQ(src_regs(make(Op::kJal), out), 0);
}

TEST(IsaRegisters, ParseNames) {
  EXPECT_EQ(parse_reg("$zero"), 0);
  EXPECT_EQ(parse_reg("$at"), 1);
  EXPECT_EQ(parse_reg("$v0"), 2);
  EXPECT_EQ(parse_reg("$a3"), 7);
  EXPECT_EQ(parse_reg("$t0"), 8);
  EXPECT_EQ(parse_reg("$t8"), 24);
  EXPECT_EQ(parse_reg("$s0"), 16);
  EXPECT_EQ(parse_reg("$sp"), 29);
  EXPECT_EQ(parse_reg("$fp"), 30);
  EXPECT_EQ(parse_reg("$s8"), 30);
  EXPECT_EQ(parse_reg("$ra"), 31);
  EXPECT_EQ(parse_reg("$0"), 0);
  EXPECT_EQ(parse_reg("$31"), 31);
  EXPECT_FALSE(parse_reg("$32").has_value());
  EXPECT_FALSE(parse_reg("$xy").has_value());
  EXPECT_FALSE(parse_reg("t0").has_value());
  EXPECT_FALSE(parse_reg("$").has_value());
}

TEST(IsaRegisters, NamesRoundTrip) {
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(parse_reg(reg_name(r)), r);
  }
}

TEST(IsaDisasm, SpotChecks) {
  EXPECT_EQ(disasm(make(Op::kAddu, 9, 10, 8), 0), "addu $t0, $t1, $t2");
  EXPECT_EQ(disasm(make(Op::kSll, 0, 9, 8, 2), 0), "sll $t0, $t1, 2");
  Instr lw = make(Op::kLw, 29, 8);
  lw.imm16 = static_cast<uint16_t>(-4);
  EXPECT_EQ(disasm(lw, 0), "lw $t0, -4($sp)");
  Instr beq = make(Op::kBeq, 8, 9);
  beq.imm16 = 3;
  EXPECT_EQ(disasm(beq, 0x100), "beq $t0, $t1, 0x110");
  EXPECT_EQ(disasm(make(Op::kSyscall), 0), "syscall");
}

}  // namespace
}  // namespace dim::isa
