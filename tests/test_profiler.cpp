#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "prof/bb_profiler.hpp"
#include "sim/machine.hpp"

namespace dim::prof {
namespace {

BbProfiler profile(const std::string& src) {
  const asmblr::Program p = asmblr::assemble(src);
  sim::Machine m(p);
  BbProfiler prof;
  m.run([&prof](const sim::StepInfo& info) { prof.observe(info); });
  return prof;
}

TEST(Profiler, CountsBlocksOfSimpleLoop) {
  // 10 iterations of a 3-instruction block (incl. branch) + 2-instr prologue
  // + epilogue.
  BbProfiler prof = profile(R"(
main:   li $t0, 10
        li $t1, 0
loop:   addu $t1, $t1, $t0
        addiu $t0, $t0, -1
        bnez $t0, loop
        li $v0, 10
        syscall
)");
  EXPECT_EQ(prof.total_instructions(), 2u + 30u + 2u);
  EXPECT_EQ(prof.conditional_branches(), 10u);
  // Blocks: prologue+first loop body (one block: entry..first branch), loop
  // body x9, epilogue.
  EXPECT_EQ(prof.distinct_blocks(), 3u);
  const auto blocks = prof.blocks_by_weight();
  EXPECT_EQ(blocks[0].executions, 9u);  // the re-entered loop body dominates
}

TEST(Profiler, InstructionsPerBranch) {
  BbProfiler prof = profile(R"(
main:   li $t0, 100
loop:   addiu $t0, $t0, -1
        nop
        nop
        nop
        bnez $t0, loop
        li $v0, 10
        syscall
)");
  // 100 branch executions, 1 + 500 + 2 instructions.
  EXPECT_NEAR(prof.instructions_per_branch(), 503.0 / 100.0, 1e-9);
  EXPECT_GT(prof.average_block_length(), 3.0);
}

TEST(Profiler, CoverageCurveOfSkewedExecution) {
  // One hot loop (~95% of time) plus a cold tail: 1 block must already
  // cover >90%.
  BbProfiler prof = profile(R"(
main:   li $t0, 500
hot:    addiu $t0, $t0, -1
        nop
        nop
        bnez $t0, hot
        li $t1, 3
cold:   addiu $t1, $t1, -1
        bnez $t1, cold
        li $v0, 10
        syscall
)");
  EXPECT_EQ(prof.blocks_to_cover(0.90), 1);
  EXPECT_GE(prof.blocks_to_cover(1.00), 3);
}

TEST(Profiler, JumpsAlsoDelimitBlocks) {
  BbProfiler prof = profile(R"(
main:   li $t0, 1
        j next
next:   li $t1, 2
        li $v0, 10
        syscall
)");
  EXPECT_EQ(prof.control_transfers(), 1u);
  EXPECT_EQ(prof.conditional_branches(), 0u);
  EXPECT_EQ(prof.distinct_blocks(), 2u);  // up to j, and the halting tail
}

TEST(Profiler, EmptyProfile) {
  BbProfiler prof;
  EXPECT_EQ(prof.blocks_to_cover(0.5), 0);
  EXPECT_EQ(prof.average_block_length(), 0.0);
  EXPECT_EQ(prof.distinct_blocks(), 0u);
}

}  // namespace
}  // namespace dim::prof
