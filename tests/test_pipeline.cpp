// Cycle accounting of the baseline 5-stage pipeline model.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "sim/pipeline.hpp"

namespace dim::sim {
namespace {

uint64_t cycles_of(const std::string& body, TimingParams timing = {}) {
  const asmblr::Program p = asmblr::assemble("main:\n" + body + "        break\n");
  MachineConfig cfg;
  cfg.timing = timing;
  Machine m(p, cfg);
  return m.run().cycles;
}

TEST(Pipeline, OneCyclePerStraightLineInstruction) {
  // 4 ALU ops + break = 5 cycles.
  EXPECT_EQ(cycles_of(" li $t0, 1\n li $t1, 2\n addu $t2, $t0, $t1\n xor $t3, $t0, $t1\n"), 5u);
}

TEST(Pipeline, LoadUseStall) {
  const std::string no_use =
      "        la $t0, w\n        lw $t1, 0($t0)\n        addu $t2, $t0, $t0\n"
      "        .data\nw: .word 3\n        .text\n";
  const std::string use =
      "        la $t0, w\n        lw $t1, 0($t0)\n        addu $t2, $t1, $t1\n"
      "        .data\nw: .word 3\n        .text\n";
  EXPECT_EQ(cycles_of(use) - cycles_of(no_use), 1u);
}

TEST(Pipeline, LoadUseStallOnlyImmediatelyAfter) {
  const std::string gap =
      "        la $t0, w\n        lw $t1, 0($t0)\n        nop\n        addu $t2, $t1, $t1\n"
      "        .data\nw: .word 3\n        .text\n";
  const std::string no_gap =
      "        la $t0, w\n        lw $t1, 0($t0)\n        addu $t2, $t1, $t1\n        nop\n"
      "        .data\nw: .word 3\n        .text\n";
  EXPECT_EQ(cycles_of(no_gap) - cycles_of(gap), 1u);
}

TEST(Pipeline, TakenBranchPenalty) {
  // Not-taken branch: no penalty. Taken: +taken_branch_penalty.
  const std::string not_taken = " li $t0, 1\n beqz $t0, skip\n nop\nskip: nop\n";
  const std::string taken = " li $t0, 0\n beqz $t0, skip\n nop\nskip: nop\n";
  // The taken path executes one fewer instruction (skips the nop) but pays
  // the 2-cycle redirect: net +1.
  EXPECT_EQ(cycles_of(taken), cycles_of(not_taken) + 1);
}

TEST(Pipeline, BranchPenaltyConfigurable) {
  TimingParams t;
  t.taken_branch_penalty = 5;
  const std::string taken = " li $t0, 0\n beqz $t0, skip\n nop\nskip: nop\n";
  EXPECT_EQ(cycles_of(taken, t) - cycles_of(taken), 3u);  // 5 - 2
}

TEST(Pipeline, MultLatencyHidesWhenIndependent) {
  TimingParams t;
  t.mult_latency = 10;
  const std::string immediate = " li $t0, 3\n li $t1, 4\n mult $t0, $t1\n mflo $t2\n";
  std::string spaced = " li $t0, 3\n li $t1, 4\n mult $t0, $t1\n";
  for (int i = 0; i < 12; ++i) spaced += " addu $t3, $t0, $t1\n";
  spaced += " mflo $t2\n";
  const uint64_t c_imm = cycles_of(immediate, t);
  const uint64_t c_spc = cycles_of(spaced, t);
  // Immediate read stalls until HI/LO are ready (cycle 3+10); spaced does
  // useful work meanwhile and pays nothing.
  EXPECT_EQ(c_imm, 14u);  // li li mult | mflo stalls to 13 | break
  EXPECT_EQ(c_spc, 17u);  // 16 instructions + break, no stall
}

TEST(Pipeline, DivLatencyLargerThanMult) {
  TimingParams t;
  const std::string d = " li $t0, 30\n li $t1, 4\n div $t0, $t1\n mflo $t2\n";
  const std::string m = " li $t0, 30\n li $t1, 4\n mult $t0, $t1\n mflo $t2\n";
  EXPECT_EQ(cycles_of(d, t) - cycles_of(m, t), static_cast<uint64_t>(t.div_latency - t.mult_latency));
}

TEST(Pipeline, ICacheMissesAddStalls) {
  TimingParams t;
  t.icache.enabled = true;
  t.icache.size_bytes = 1024;
  t.icache.line_bytes = 16;  // 4 instructions per line
  t.icache.miss_penalty = 20;
  const std::string body = " li $t0, 1\n li $t1, 2\n addu $t2, $t0, $t1\n";
  // 4 words incl. break = 1 line -> exactly 1 miss.
  EXPECT_EQ(cycles_of(body, t), 4u + 20u);
}

TEST(Pipeline, DCacheMissPenaltyPerLine) {
  TimingParams t;
  t.dcache.enabled = true;
  t.dcache.line_bytes = 32;
  t.dcache.miss_penalty = 15;
  const std::string body =
      "        la $t0, buf\n"
      "        lw $t1, 0($t0)\n"
      "        lw $t2, 4($t0)\n"   // same line: hit
      "        lw $t3, 32($t0)\n"  // next line: miss
      "        .data\n"
      "        .align 5\n"
      "buf:    .space 64\n"
      "        .text\n";
  TimingParams off;
  EXPECT_EQ(cycles_of(body, t) - cycles_of(body, off), 30u);
}

TEST(Pipeline, DualIssuePairsIndependentInstructions) {
  TimingParams dual;
  dual.issue_width = 2;
  // 4 independent ALU ops pair into 2 cycles; + break (new cycle) = 3.
  EXPECT_EQ(cycles_of(" li $t0, 1\n li $t1, 2\n li $t2, 3\n li $t3, 4\n", dual), 3u);
}

TEST(Pipeline, DualIssueRawDependenceBlocksPairing) {
  TimingParams dual;
  dual.issue_width = 2;
  // Every op depends on the previous: only the final break (no sources)
  // pairs, so the 4-instruction chain takes 4 cycles.
  EXPECT_EQ(cycles_of(" li $t0, 1\n addu $t0, $t0, $t0\n addu $t0, $t0, $t0\n"
                      " addu $t0, $t0, $t0\n",
                      dual),
            4u);
}

TEST(Pipeline, DualIssueOneMemoryOpPerPair) {
  TimingParams dual;
  dual.issue_width = 2;
  const std::string two_loads =
      "        la $t0, buf\n"
      "        lw $t1, 0($t0)\n"
      "        lw $t2, 4($t0)\n"
      "        lw $t3, 8($t0)\n"
      "        lw $t4, 12($t0)\n"
      "        .data\nbuf: .space 16\n        .text\n";
  // la = lui+ori (dependent pair -> 2 cycles); 4 loads can't pair with each
  // other -> 4 cycles; break pairs with the last load? break is not a mem
  // op and has no RAW -> pairs. Total: 2 + 4 = 6.
  EXPECT_EQ(cycles_of(two_loads, dual), 6u);
}

TEST(Pipeline, DualIssueNeverWorseThanScalar) {
  TimingParams scalar, dual;
  dual.issue_width = 2;
  const std::string body =
      " li $t0, 10\nloop: addiu $t0, $t0, -1\n xor $t1, $t0, $t0\n bnez $t0, loop\n";
  EXPECT_LE(cycles_of(body, dual), cycles_of(body, scalar));
}

TEST(Pipeline, ChargeAccumulates) {
  PipelineModel m(TimingParams{});
  EXPECT_EQ(m.cycles(), 0u);
  m.charge(17);
  EXPECT_EQ(m.cycles(), 17u);
  m.reset();
  EXPECT_EQ(m.cycles(), 0u);
}

}  // namespace
}  // namespace dim::sim
