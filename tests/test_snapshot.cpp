// The snapshot subsystem's contract (snap/snapshot.hpp):
//   1. Resume-equals-straight-run: checkpointing at any instruction
//      boundary and resuming in a fresh process-equivalent system yields
//      bit-identical statistics, architectural state, memory image and
//      observation event stream — on real workloads and on fuzz programs.
//   2. Round-trip stability: save -> restore -> save reproduces the bytes.
//   3. Malformed artifacts are rejected with the precise SnapErrc class,
//      never UB — pinned by a bit-flip/truncation fuzzer over valid files.
//   4. The serialized format is frozen by goldens: bytes may only change
//      together with a kFormatVersion bump (docs/persistence.md).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "fuzz/generator.hpp"
#include "obs/event.hpp"
#include "snap/codec.hpp"
#include "snap/io.hpp"
#include "snap/snapshot.hpp"
#include "snap/warmstart.hpp"
#include "work/workload.hpp"

namespace dim {
namespace {

// Long enough to fill the cache, speculate, extend and evict with the
// small test configuration below.
const char* kCheckpointProgram = R"(
        .data
arr:    .word 0
        .space 2048
        .text
main:   la $t0, arr
        li $t1, 400
        li $t2, 0
        li $t3, 0
loop:   sll $t4, $t3, 2
        andi $t4, $t4, 1023
        addu $t5, $t0, $t4
        lw $t6, 0($t5)
        addu $t6, $t6, $t3
        sw $t6, 0($t5)
        addu $t2, $t2, $t6
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

accel::SystemConfig small_config() {
  // Tiny cache so checkpoints land amid evictions and extensions too.
  return accel::SystemConfig::with(rra::ArrayShape::config2(), 8, true);
}

std::vector<uint8_t> stats_bytes(const accel::AccelStats& stats) {
  snap::Writer w;
  snap::put_stats(w, stats);
  return w.take();
}

std::string events_text(const std::vector<obs::Event>& a,
                        const std::vector<obs::Event>& b = {}) {
  std::ostringstream out;
  obs::write_events_jsonl(out, a);
  obs::write_events_jsonl(out, b);
  return out.str();
}

// The oracle: straight run vs run-to-boundary + snapshot + restore + run.
// Every comparison is byte-level (serialized stats embed the final CPU
// state, program output and memory hash; the event stream carries the
// instruction/cycle stamps of every configuration-lifecycle event).
void expect_resume_equals_straight(const asmblr::Program& program,
                                   const accel::SystemConfig& config,
                                   uint64_t boundary) {
  obs::RecordingSink straight_sink;
  accel::SystemConfig straight_cfg = config;
  straight_cfg.event_sink = &straight_sink;
  accel::AcceleratedSystem straight(program, straight_cfg);
  const accel::AccelStats want = straight.run();

  obs::RecordingSink first_sink;
  accel::SystemConfig first_cfg = config;
  first_cfg.event_sink = &first_sink;
  std::stringstream file;
  uint64_t at_checkpoint = 0;
  {
    accel::AcceleratedSystem first(program, first_cfg);
    at_checkpoint = first.run_until(boundary).instructions;
    snap::save_snapshot(file, first, program);
  }

  obs::RecordingSink second_sink;
  accel::SystemConfig second_cfg = config;
  second_cfg.event_sink = &second_sink;
  accel::AcceleratedSystem second(program, second_cfg);
  snap::restore_snapshot(second, file, program);
  ASSERT_EQ(second.stats().instructions, at_checkpoint);
  const accel::AccelStats got = second.run();

  EXPECT_EQ(stats_bytes(want), stats_bytes(got)) << "boundary " << boundary;
  EXPECT_EQ(want.final_state.reg_hash(), got.final_state.reg_hash());
  EXPECT_EQ(want.final_state.output, got.final_state.output);
  EXPECT_EQ(want.memory_hash, got.memory_hash);
  EXPECT_EQ(events_text(straight_sink.events()),
            events_text(first_sink.events(), second_sink.events()))
      << "boundary " << boundary;
}

TEST(Snapshot, ResumeMatchesStraightRunAcrossBoundaries) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  const accel::AccelStats full = accel::run_accelerated(program, small_config());
  ASSERT_GT(full.instructions, 100u);
  // Boundaries scattered over the run, including 0 (restore before any
  // work) and one past the end (checkpoint of a halted system).
  for (uint64_t boundary :
       {uint64_t{0}, uint64_t{1}, full.instructions / 7, full.instructions / 3,
        full.instructions / 2, full.instructions - 1, full.instructions + 5}) {
    expect_resume_equals_straight(program, small_config(), boundary);
  }
}

TEST(Snapshot, ResumeMatchesStraightRunOnRealPrograms) {
  // Three real workloads from the paper's benchmark set, checkpointed at
  // an early, a middle and a late boundary each.
  for (const char* name : {"crc32", "quicksort", "bitcount"}) {
    const work::Workload wl = work::make_workload(name);
    const auto program = asmblr::assemble(wl.source);
    const accel::AccelStats full = accel::run_accelerated(program, small_config());
    for (uint64_t boundary :
         {full.instructions / 5, full.instructions / 2, (full.instructions * 9) / 10}) {
      expect_resume_equals_straight(program, small_config(), boundary);
    }
  }
}

TEST(Snapshot, ResumeMatchesStraightRunWithPredicationOn) {
  // If-conversion on: checkpoints land inside hammock skip windows and on
  // configurations carrying predicate slots, so the pred op fields and the
  // translator's skip latches must round-trip.
  const char* diamond = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 250
        li $s1, 0
        li $s2, 0
        la $s4, buf
loop:   andi $t0, $s2, 1
        addu $t1, $s1, $s2
        bnez $t0, odd
        addiu $s1, $s1, 1
        sw $s1, 0($s4)
        b join
odd:    addiu $s1, $s1, 2
join:   addiu $s2, $s2, 1
        bne $s2, $s0, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto program = asmblr::assemble(diamond);
  accel::SystemConfig cfg = small_config();
  cfg.speculation = false;  // force the if-conversion path on the hammock
  cfg.predication = true;
  const accel::AccelStats full = accel::run_accelerated(program, cfg);
  ASSERT_GT(full.hammocks_merged, 0u) << "test program must if-convert";
  for (uint64_t boundary :
       {uint64_t{1}, full.instructions / 7, full.instructions / 3,
        full.instructions / 2, full.instructions - 1}) {
    expect_resume_equals_straight(program, cfg, boundary);
  }
}

TEST(Snapshot, ResumeMatchesStraightRunWithResidencyLatched) {
  // Loop residency on, shaped so the loop config closes at its own head
  // (see tests/test_obs.cpp): checkpoints land while the residency latch
  // is live, so the latch fields must round-trip byte-exactly.
  const char* resident_loop = R"(
main:   li $s1, 300
loop:   addiu $s1, $s1, -1
        addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        bnez $s1, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";
  const auto program = asmblr::assemble(resident_loop);
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape{5, 1, 1, 1}, 8, true);
  cfg.residency = accel::Residency::kLoop;
  const accel::AccelStats full = accel::run_accelerated(program, cfg);
  ASSERT_GT(full.residency_hits, 0u) << "test program must latch the loop";
  for (uint64_t boundary :
       {full.instructions / 5, full.instructions / 2, (full.instructions * 9) / 10}) {
    expect_resume_equals_straight(program, cfg, boundary);
  }
}

TEST(Snapshot, SaveRestoreSaveIsByteStable) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  accel::AcceleratedSystem a(program, small_config());
  a.run_until(500);
  const std::vector<uint8_t> payload = snap::encode_snapshot(a, program);

  accel::AcceleratedSystem b(program, small_config());
  snap::restore_snapshot_payload(b, payload, program);
  EXPECT_EQ(payload, snap::encode_snapshot(b, program));
}

TEST(Snapshot, InspectReportsTheSavedState) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  accel::AcceleratedSystem sys(program, small_config());
  const accel::AccelStats at = sys.run_until(800);
  const std::vector<uint8_t> payload = snap::encode_snapshot(sys, program);

  const snap::SnapshotInfo info = snap::inspect_snapshot(payload);
  EXPECT_EQ(info.program_hash, snap::program_hash(program));
  EXPECT_EQ(info.stats.instructions, at.instructions);
  EXPECT_EQ(info.rcache_entries.size(), sys.rcache().size());
  EXPECT_EQ(info.rcache_counters.hits, sys.rcache().hits());
  EXPECT_EQ(info.predictor_branches, sys.predictor().tracked_branches());
  EXPECT_FALSE(info.cpu.halted);
  // Entry order is the eviction order.
  const std::vector<uint32_t> order = sys.rcache().fifo_order();
  ASSERT_EQ(info.rcache_entries.size(), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(info.rcache_entries[i].start_pc, order[i]);
  }
}

TEST(Snapshot, RestoreIntoDifferentProgramOrConfigIsRejected) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  accel::AcceleratedSystem sys(program, small_config());
  sys.run_until(200);
  const std::vector<uint8_t> payload = snap::encode_snapshot(sys, program);

  // Different program image.
  const auto other = asmblr::assemble(work::make_workload("bitcount").source);
  accel::AcceleratedSystem wrong_prog(other, small_config());
  try {
    snap::restore_snapshot_payload(wrong_prog, payload, other);
    FAIL() << "mismatched program accepted";
  } catch (const snap::SnapshotError& e) {
    EXPECT_EQ(e.code(), snap::SnapErrc::kMismatch);
  }

  // Same program, different configuration.
  accel::SystemConfig cfg = small_config();
  cfg.speculation = false;
  accel::AcceleratedSystem wrong_cfg(program, cfg);
  try {
    snap::restore_snapshot_payload(wrong_cfg, payload, program);
    FAIL() << "mismatched configuration accepted";
  } catch (const snap::SnapshotError& e) {
    EXPECT_EQ(e.code(), snap::SnapErrc::kMismatch);
  }
}

TEST(Snapshot, LoaderRejectsEachCorruptionClassDistinctly) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  accel::AcceleratedSystem sys(program, small_config());
  sys.run_until(200);
  std::stringstream file;
  snap::save_snapshot(file, sys, program);
  const std::string good = file.str();

  const auto code_of = [&](std::string bytes) {
    std::istringstream in(bytes);
    accel::AcceleratedSystem target(program, small_config());
    try {
      snap::restore_snapshot(target, in, program);
    } catch (const snap::SnapshotError& e) {
      return e.code();
    }
    ADD_FAILURE() << "corrupt container accepted";
    return snap::SnapErrc::kIo;
  };

  {  // empty / truncated header
    EXPECT_EQ(code_of(""), snap::SnapErrc::kTruncated);
    EXPECT_EQ(code_of(good.substr(0, 3)), snap::SnapErrc::kTruncated);
    EXPECT_EQ(code_of(good.substr(0, 12)), snap::SnapErrc::kTruncated);
  }
  {  // bad magic
    std::string bytes = good;
    bytes[0] ^= 0x40;
    EXPECT_EQ(code_of(bytes), snap::SnapErrc::kBadMagic);
  }
  {  // future format version
    std::string bytes = good;
    bytes[4] = static_cast<char>(snap::kFormatVersion + 1);
    EXPECT_EQ(code_of(bytes), snap::SnapErrc::kBadVersion);
  }
  {  // truncated payload
    EXPECT_EQ(code_of(good.substr(0, good.size() - 7)), snap::SnapErrc::kTruncated);
  }
  {  // payload bit rot
    std::string bytes = good;
    bytes[good.size() / 2] ^= 0x01;
    EXPECT_EQ(code_of(bytes), snap::SnapErrc::kCrcMismatch);
  }
  {  // valid container of the wrong artifact kind
    std::stringstream warm;
    snap::save_warm_start(warm, sys, program);
    EXPECT_EQ(code_of(warm.str()), snap::SnapErrc::kMismatch);
  }
}

// Bit-flip/truncation fuzz over a valid snapshot: whatever the corruption,
// the loader must either succeed or throw SnapshotError — never crash,
// never throw anything else, never allocate absurdly. Catching by precise
// type means an std::bad_alloc or std::length_error from a fuzzed count
// fails the test.
TEST(SnapshotFuzz, LoaderSurvivesBitFlipsAndTruncation) {
  const auto program = asmblr::assemble(kCheckpointProgram);
  accel::AcceleratedSystem sys(program, small_config());
  sys.run_until(700);
  std::stringstream file;
  snap::save_snapshot(file, sys, program);
  const std::string good = file.str();

  fuzz::Rng rng(0xD1345EEDull);
  const int iterations = fuzz::seed_budget(300);
  int rejected = 0;
  for (int i = 0; i < iterations; ++i) {
    std::string bytes = good;
    // 1..4 corruptions: single-bit flips, byte rewrites, or a truncation.
    const int edits = 1 + static_cast<int>(rng.next() % 4);
    for (int e = 0; e < edits; ++e) {
      if (bytes.empty()) break;
      const size_t pos = rng.next() % bytes.size();
      switch (rng.next() % 3) {
        case 0: bytes[pos] ^= static_cast<char>(1u << (rng.next() % 8)); break;
        case 1: bytes[pos] = static_cast<char>(rng.next()); break;
        default: bytes.resize(pos); break;
      }
    }
    std::istringstream in(bytes);
    accel::AcceleratedSystem target(program, small_config());
    try {
      snap::restore_snapshot(target, in, program);
      // A corruption the CRC caught-and-matched by chance (or that only
      // touched ignored trailing file bytes) may legitimately restore.
    } catch (const snap::SnapshotError&) {
      ++rejected;
    }
    // Anything else escapes and fails the test.
  }
  EXPECT_GT(rejected, iterations / 2);  // sanity: the fuzz did corrupt
}

// ---------------------------------------------------------------------------
// Resume oracle over generated programs: branches, nested loops, aliasing
// stores, speculation bait — checkpointed mid-run, including mid-capture.
TEST(SnapshotFuzz, ResumeMatchesStraightRunOnGeneratedPrograms) {
  const int seeds = fuzz::seed_budget(24);
  int checked = 0;
  for (int seed = 1; checked < seeds && seed < seeds * 4; ++seed) {
    const fuzz::FuzzProgram fp = fuzz::generate_program(static_cast<uint64_t>(seed));
    asmblr::Program program;
    try {
      program = asmblr::assemble(fp.render());
    } catch (const asmblr::AsmError&) {
      continue;  // generator emitted something our subset rejects; skip
    }
    const accel::AccelStats full = accel::run_accelerated(program, small_config());
    if (full.instructions < 20) continue;  // too short to checkpoint meaningfully
    fuzz::Rng rng(static_cast<uint64_t>(seed) * 0x9E3779B9u);
    const uint64_t boundary = 1 + rng.next() % (full.instructions - 1);
    expect_resume_equals_straight(program, small_config(), boundary);
    ++checked;
  }
  EXPECT_GE(checked, (seeds * 5) / 6) << "generator produced too few usable programs";
}

// ---------------------------------------------------------------------------
// Format goldens: the serialized bytes of a fixed recipe are committed to
// tests/data/. If this test fails after an intentional format change, bump
// snap::kFormatVersion and regenerate with DIMSIM_REGEN_GOLDENS=1.
std::string golden_path(const char* name) {
  return std::string(DIMSIM_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with DIMSIM_REGEN_GOLDENS=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_golden(const char* name, const std::string& produced) {
  if (std::getenv("DIMSIM_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(golden_path(name), std::ios::binary);
    out << produced;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
    return;
  }
  const std::string golden = read_file(golden_path(name));
  if (golden.empty()) return;  // read_file already failed the test
  ASSERT_GE(golden.size(), size_t{6});
  const uint16_t golden_version =
      static_cast<uint16_t>(static_cast<uint8_t>(golden[4]) |
                            (static_cast<uint16_t>(static_cast<uint8_t>(golden[5])) << 8));
  if (golden_version == snap::kFormatVersion) {
    // Same declared version => the bytes must not have drifted. A diff
    // here means the format changed without a version bump.
    EXPECT_EQ(golden, produced)
        << name << ": serialized format changed under unchanged "
        << "kFormatVersion — bump snap::kFormatVersion and regenerate";
  } else {
    // The tree moved to a new version: the old-version golden must be
    // rejected as such, which is the compatibility story for old files.
    std::istringstream in(golden);
    try {
      snap::read_container(in, snap::ArtifactKind::kSnapshot);
      FAIL() << name << ": old-version artifact accepted";
    } catch (const snap::SnapshotError& e) {
      EXPECT_EQ(e.code(), snap::SnapErrc::kBadVersion);
    }
  }
}

TEST(SnapshotGolden, FormatFrozenUntilVersionBump) {
  const auto program = asmblr::assemble(kCheckpointProgram);

  accel::AcceleratedSystem mid(program, small_config());
  mid.run_until(300);
  std::stringstream snap_file;
  snap::save_snapshot(snap_file, mid, program);
  check_golden("golden.snap", snap_file.str());

  accel::AcceleratedSystem done(program, small_config());
  done.run();
  std::stringstream warm_file;
  snap::save_warm_start(warm_file, done, program);
  check_golden("golden.warm", warm_file.str());
}

// ---------------------------------------------------------------------------
// Cross-process migration oracle: the serving pool's crash-migration path
// (src/serve/supervisor.hpp) restores a checkpoint in a *different process*
// than the one that wrote it. The in-process resume tests above can't catch
// state that accidentally rides along in process globals, so this one
// snapshots at a run_until boundary, fork-execs a fresh copy of this test
// binary to restore and finish the run, and compares its serialized stats
// and event stream against a straight run byte-for-byte.

// The child half: runs only when fork-exec'd by the parent test below
// (gtest otherwise reports it as skipped). Restores the snapshot named in
// the environment, runs to completion, and writes the serialized stats and
// the JSONL event text for the parent to diff.
TEST(SnapshotMigration, ChildResume) {
  const char* snap_path = std::getenv("DIMSIM_MIGRATE_SNAPSHOT");
  const char* out_base = std::getenv("DIMSIM_MIGRATE_OUT");
  if (snap_path == nullptr || out_base == nullptr) {
    GTEST_SKIP() << "helper: runs only as the fork-exec'd migration child";
  }
  const auto program = asmblr::assemble(kCheckpointProgram);
  obs::RecordingSink sink;
  accel::SystemConfig cfg = small_config();
  cfg.event_sink = &sink;
  accel::AcceleratedSystem system(program, cfg);
  std::ifstream in(snap_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << snap_path;
  snap::restore_snapshot(system, in, program);
  const accel::AccelStats got = system.run();

  const std::vector<uint8_t> bytes = stats_bytes(got);
  std::ofstream stats_out(std::string(out_base) + ".stats", std::ios::binary);
  stats_out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(stats_out.good());
  std::ofstream events_out(std::string(out_base) + ".events", std::ios::binary);
  events_out << events_text(sink.events());
  ASSERT_TRUE(events_out.good());
}

TEST(SnapshotMigration, CrossProcessResumeMatchesStraightRun) {
  const auto program = asmblr::assemble(kCheckpointProgram);

  obs::RecordingSink straight_sink;
  accel::SystemConfig straight_cfg = small_config();
  straight_cfg.event_sink = &straight_sink;
  accel::AcceleratedSystem straight(program, straight_cfg);
  const accel::AccelStats want = straight.run();
  ASSERT_GT(want.instructions, 100u);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "dimsim-migrate-oracle").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string snap_path = dir + "/checkpoint.snap";
  const std::string out_base = dir + "/resumed";

  obs::RecordingSink first_sink;
  accel::SystemConfig first_cfg = small_config();
  first_cfg.event_sink = &first_sink;
  {
    accel::AcceleratedSystem first(program, first_cfg);
    first.run_until(want.instructions / 2);
    std::ofstream out(snap_path, std::ios::binary);
    snap::save_snapshot(out, first, program);
    ASSERT_TRUE(out.good());
  }

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("DIMSIM_MIGRATE_SNAPSHOT", snap_path.c_str(), 1);
    ::setenv("DIMSIM_MIGRATE_OUT", out_base.c_str(), 1);
    ::execl("/proc/self/exe", "dimsim_tests",
            "--gtest_filter=SnapshotMigration.ChildResume",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status))
      << "migration child died with signal " << WTERMSIG(status);
  ASSERT_EQ(WEXITSTATUS(status), 0) << "migration child's assertions failed";

  const std::vector<uint8_t> want_bytes = stats_bytes(want);
  EXPECT_EQ(read_file(out_base + ".stats"),
            std::string(want_bytes.begin(), want_bytes.end()));
  EXPECT_EQ(events_text(straight_sink.events()),
            events_text(first_sink.events()) + read_file(out_base + ".events"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dim
