// Content-addressed result store (snap/resultstore.hpp): sweeps are
// byte-identical with the store disabled, cold, warm, or shared across
// thread counts; a warm store performs zero simulations; corrupt cells are
// discarded and recomputed, never propagated.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/sweep.hpp"
#include "asm/assembler.hpp"
#include "rra/array_shape.hpp"
#include "snap/format.hpp"
#include "snap/resultstore.hpp"
#include "work/workload.hpp"

namespace dim {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("dimsim-" + name);
  fs::remove_all(dir);
  return dir.string();
}

struct Grid {
  std::vector<asmblr::Program> programs;  // stable addresses for the points
  std::vector<accel::SweepPoint> points;
};

// 2 workloads x 2 configurations, every point with a worker-computed
// baseline — small enough for a unit test, rich enough that cells differ.
Grid small_grid() {
  Grid g;
  g.programs.reserve(2);
  for (const char* name : {"crc32", "bitcount"}) {
    g.programs.push_back(asmblr::assemble(work::make_workload(name).source));
  }
  const accel::SystemConfig cfgs[2] = {
      accel::SystemConfig::with(rra::ArrayShape::config1(), 8, false),
      accel::SystemConfig::with(rra::ArrayShape::config2(), 16, true)};
  for (size_t w = 0; w < g.programs.size(); ++w) {
    for (int c = 0; c < 2; ++c) {
      accel::SweepPoint p;
      p.label = std::string(w == 0 ? "crc32" : "bitcount") + "/C" + std::to_string(c + 1);
      p.program = &g.programs[w];
      p.config = cfgs[c];
      p.run_baseline = true;
      g.points.push_back(p);
    }
  }
  return g;
}

std::string sweep_json(const std::vector<accel::SweepResult>& results) {
  std::ostringstream out;
  accel::write_sweep_json(out, results);
  return out.str();
}

std::vector<accel::SweepResult> run_grid(const Grid& g, unsigned threads,
                                         accel::ResultCache* cache) {
  accel::SweepOptions opts;
  opts.threads = threads;
  opts.collect_profiles = true;
  opts.result_cache = cache;
  return accel::SweepEngine(opts).run(g.points);
}

TEST(ResultStore, MemoizedSweepIsByteIdenticalAcrossStoreStatesAndThreads) {
  const Grid g = small_grid();
  const std::string want = sweep_json(run_grid(g, 1, nullptr));
  const std::string dir = fresh_dir("resultstore-identity");

  {  // Cold store: every point is a miss, computed, and written back.
    snap::ResultStore store(dir);
    EXPECT_EQ(sweep_json(run_grid(g, 2, &store)), want);
    const auto c = store.counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, g.points.size());
    EXPECT_EQ(c.stores, g.points.size());
  }
  {  // Warm store, serial: zero simulations, same bytes.
    snap::ResultStore store(dir);
    EXPECT_EQ(sweep_json(run_grid(g, 1, &store)), want);
    const auto c = store.counters();
    EXPECT_EQ(c.hits, g.points.size());
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(c.stores, 0u);
  }
  {  // Warm store, multi-threaded: same bytes again.
    snap::ResultStore store(dir);
    EXPECT_EQ(sweep_json(run_grid(g, 4, &store)), want);
    EXPECT_EQ(store.counters().hits, g.points.size());
  }
}

TEST(ResultStore, CorruptCellIsDiscardedRecomputedAndRepaired) {
  const Grid g = small_grid();
  const std::string want = sweep_json(run_grid(g, 1, nullptr));
  const std::string dir = fresh_dir("resultstore-corrupt");
  {
    snap::ResultStore store(dir);
    run_grid(g, 1, &store);
  }

  // Corrupt one cell with bit rot and truncate another to nothing.
  std::vector<fs::path> cells;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cell") cells.push_back(entry.path());
  }
  ASSERT_EQ(cells.size(), g.points.size());
  {
    std::fstream f(cells[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekg(size / 2);
    char b = 0;
    f.read(&b, 1);
    f.seekp(size / 2);
    b = static_cast<char>(b ^ 0x5A);  // flip bits so the CRC must trip
    f.write(&b, 1);
  }
  std::ofstream(cells[1], std::ios::binary | std::ios::trunc).close();

  snap::ResultStore store(dir);
  EXPECT_EQ(sweep_json(run_grid(g, 1, &store)), want);
  auto c = store.counters();
  EXPECT_EQ(c.corrupt_discards, 2u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.hits, g.points.size() - 2);
  EXPECT_EQ(c.stores, 2u);  // the bad cells were recomputed and repaired

  // After the repair the store is fully warm again.
  snap::ResultStore repaired(dir);
  EXPECT_EQ(sweep_json(run_grid(g, 1, &repaired)), want);
  EXPECT_EQ(repaired.counters().hits, g.points.size());
  EXPECT_EQ(repaired.counters().corrupt_discards, 0u);
}

TEST(ResultStore, CellKeyCoversBehaviorNotPresentation) {
  const Grid g = small_grid();
  accel::SweepPoint a = g.points[0];
  accel::SweepPoint b = a;
  b.label = "renamed";  // presentation only
  EXPECT_EQ(snap::ResultStore::cell_key(a, true), snap::ResultStore::cell_key(b, true));

  accel::SweepPoint c = a;
  c.config.speculation = !c.config.speculation;  // behavior
  EXPECT_NE(snap::ResultStore::cell_key(a, true), snap::ResultStore::cell_key(c, true));

  accel::SweepPoint d = g.points[2];  // different program
  EXPECT_NE(snap::ResultStore::cell_key(a, true), snap::ResultStore::cell_key(d, true));

  // Profile collection changes what the cell carries.
  EXPECT_NE(snap::ResultStore::cell_key(a, true), snap::ResultStore::cell_key(a, false));

  // A worker-computed baseline is part of the cell; a live baseline
  // pointer is supplied by the caller and must not alias with it.
  accel::AccelStats live;
  accel::SweepPoint e = a;
  e.baseline = &live;
  EXPECT_NE(snap::ResultStore::cell_key(a, true), snap::ResultStore::cell_key(e, true));
}

TEST(ResultStore, LiveBaselineIsReattachedOnHit) {
  Grid g = small_grid();
  // Precompute one workload's baseline and share it, the sweep-grid idiom
  // bench_util uses.
  const accel::AccelStats shared =
      accel::baseline_as_stats(g.programs[0], sim::MachineConfig{});
  g.points.resize(1);
  g.points[0].baseline = &shared;
  g.points[0].run_baseline = true;

  const std::string dir = fresh_dir("resultstore-baseline");
  const std::string want = sweep_json(run_grid(g, 1, nullptr));
  {
    snap::ResultStore store(dir);
    EXPECT_EQ(sweep_json(run_grid(g, 1, &store)), want);
  }
  snap::ResultStore store(dir);
  const auto results = run_grid(g, 1, &store);
  EXPECT_EQ(store.counters().hits, 1u);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].has_baseline);
  EXPECT_EQ(results[0].baseline.cycles, shared.cycles);
  EXPECT_TRUE(results[0].transparent);
  EXPECT_EQ(sweep_json(results), want);
}

TEST(ResultStore, UnusableDirectoryThrowsIo) {
  const fs::path file = fs::path(::testing::TempDir()) / "dimsim-rs-blocker";
  std::ofstream(file).put('x');
  try {
    snap::ResultStore store((file / "sub").string());
    FAIL() << "directory under a regular file accepted";
  } catch (const snap::SnapshotError& e) {
    EXPECT_EQ(e.code(), snap::SnapErrc::kIo);
  }
  fs::remove(file);
}

}  // namespace
}  // namespace dim
