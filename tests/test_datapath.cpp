// Structural datapath (paper Figure 2): routed mux selects must realize
// exactly the behavioral semantics, proving the translator's placements are
// routable on the bus architecture.
#include <gtest/gtest.h>

#include <random>

#include "bt/translator.hpp"
#include "isa/encoder.hpp"
#include "rra/array_exec.hpp"
#include "rra/datapath.hpp"
#include "sim/executor.hpp"

namespace dim::rra {
namespace {

using isa::Instr;
using isa::Op;

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

TEST(Datapath, RoutesSourcesToBusLines) {
  bt::TranslatorParams params;
  bt::ConfigBuilder b(0x100, params);
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 9), 0x100));
  ASSERT_TRUE(b.try_add(imm(Op::kSw, 10, 28, 4), 0x104));
  const RoutedConfig routed = route(b.finalize(0x108));

  ASSERT_EQ(routed.stations.size(), 2u);
  EXPECT_EQ(routed.stations[0].in_sel[0], 8);   // addu listens to $t0's line
  EXPECT_EQ(routed.stations[0].in_sel[1], 9);
  EXPECT_EQ(routed.stations[0].out_sel[0], 10);  // and re-drives $t2's line
  EXPECT_EQ(routed.stations[1].in_sel[0], 28);   // sw base = $gp line
  EXPECT_EQ(routed.stations[1].in_sel[1], 10);   // sw value = $t2 line
  EXPECT_EQ(routed.stations[1].out_sel[0], -1);  // stores drive nothing
  EXPECT_TRUE(routed.writeback[10]);
  EXPECT_FALSE(routed.writeback[9]);
}

TEST(Datapath, MultDrivesHiAndLoLines) {
  bt::TranslatorParams params;
  bt::ConfigBuilder b(0x100, params);
  ASSERT_TRUE(b.try_add(r3(Op::kMult, 0, 8, 9), 0x100));
  ASSERT_TRUE(b.try_add(r3(Op::kMflo, 10, 0, 0), 0x104));
  const RoutedConfig routed = route(b.finalize(0x108));
  EXPECT_EQ(routed.stations[0].out_sel[0], kCtxHi);
  EXPECT_EQ(routed.stations[0].out_sel[1], kCtxLo);
  EXPECT_EQ(routed.stations[1].in_sel[0], kCtxLo);
  EXPECT_TRUE(routed.writeback[kCtxHi]);
  EXPECT_TRUE(routed.writeback[kCtxLo]);
}

// Structural and behavioral executions must agree on everything.
void expect_equivalent(const Configuration& config, sim::CpuState input,
                       const mem::Memory& seed_memory) {
  mem::Memory m_behavioral = seed_memory;
  mem::Memory m_structural = seed_memory;

  sim::CpuState behavioral_state = input;
  const ArrayExecOutcome behavioral = execute_configuration(
      config, behavioral_state, m_behavioral, nullptr, ArrayTimingParams{});

  const RoutedConfig routed = route(config);
  const StructuralOutcome structural = execute_structural(routed, input, m_structural);

  EXPECT_EQ(structural.next_pc, behavioral.next_pc);
  EXPECT_EQ(structural.misspeculated, behavioral.misspeculated);
  // Context bus lines that are written back must match the behavioral
  // architectural state.
  for (int r = 1; r < 32; ++r) {
    EXPECT_EQ(structural.ctx[static_cast<size_t>(r)],
              behavioral_state.regs[static_cast<size_t>(r)])
        << "reg " << r;
  }
  EXPECT_EQ(structural.ctx[kCtxHi], behavioral_state.hi);
  EXPECT_EQ(structural.ctx[kCtxLo], behavioral_state.lo);
  EXPECT_EQ(m_structural.content_hash(), m_behavioral.content_hash());
}

TEST(Datapath, EquivalenceOnRenamingChain) {
  bt::TranslatorParams params;
  bt::ConfigBuilder b(0x100, params);
  // WAW + WAR mix to stress the output-mux renaming.
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 11), 0x100));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, -7), 0x108));
  ASSERT_TRUE(b.try_add(r3(Op::kXor, 10, 9, 8), 0x10C));
  ASSERT_TRUE(b.try_add(r3(Op::kSubu, 8, 10, 9), 0x110));
  sim::CpuState input;
  expect_equivalent(b.finalize(0x114), input, mem::Memory{});
}

TEST(Datapath, EquivalenceWithSpeculationBothWays) {
  for (uint32_t t0 : {0u, 1u}) {
    bt::TranslatorParams params;
    bt::ConfigBuilder b(0x100, params);
    ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 8, 1), 0x100));
    ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 4), 0x104, true));
    ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 10, 0, 42), 0x108));
    ASSERT_TRUE(b.try_add(imm(Op::kSw, 10, 28, 0), 0x10C));
    sim::CpuState input;
    input.regs[8] = t0;
    input.regs[28] = 0x10008000;
    expect_equivalent(b.finalize(0x110), input, mem::Memory{});
  }
}

class DatapathFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DatapathFuzz, StructuralMatchesBehavioral) {
  const uint32_t seed = static_cast<uint32_t>(GetParam()) * 0x9E3779B9u + 3;
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  auto reg = [&] { return pick(8, 15); };

  bt::TranslatorParams params;
  params.shape = ArrayShape::config2();
  bt::ConfigBuilder b(0x400000, params);
  const int n = pick(4, 40);
  uint32_t pc = 0x400000;
  for (int i = 0; i < n; ++i) {
    Instr instr;
    switch (pick(0, 8)) {
      case 0: instr = r3(Op::kAddu, reg(), reg(), reg()); break;
      case 1: instr = r3(Op::kSubu, reg(), reg(), reg()); break;
      case 2: instr = r3(Op::kNor, reg(), reg(), reg()); break;
      case 3: instr = imm(Op::kAddiu, reg(), reg(), static_cast<int16_t>(pick(-99, 99))); break;
      case 4: {
        instr = r3(Op::kSll, reg(), 0, reg());
        instr.shamt = static_cast<uint8_t>(pick(0, 31));
        break;
      }
      case 5: instr = r3(Op::kMult, 0, reg(), reg()); break;
      case 6: instr = r3(Op::kMflo, reg(), 0, 0); break;
      case 7: instr = imm(Op::kLw, reg(), 28, static_cast<int16_t>(pick(0, 31) * 4)); break;
      default: instr = imm(Op::kSw, reg(), 28, static_cast<int16_t>(pick(0, 31) * 4)); break;
    }
    ASSERT_TRUE(b.try_add(instr, pc));
    pc += 4;
  }
  sim::CpuState input;
  for (int r = 8; r <= 15; ++r) input.regs[static_cast<size_t>(r)] = rng();
  input.regs[28] = 0x10008000;
  input.hi = rng();
  input.lo = rng();
  mem::Memory seed_mem;
  for (uint32_t a = 0; a < 128; a += 4) seed_mem.write32(0x10008000 + a, rng());
  expect_equivalent(b.finalize(pc), input, seed_mem);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatapathFuzz, ::testing::Range(0, 60));

}  // namespace
}  // namespace dim::rra
