#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "sim/tracer.hpp"

namespace dim {
namespace {

TEST(Tracer, RendersDisassemblyAndAnnotations) {
  const auto prog = asmblr::assemble(
      "main:   li $t0, 3\n"
      "loop:   addiu $t0, $t0, -1\n"
      "        bnez $t0, loop\n"
      "        li $v0, 10\n"
      "        syscall\n");
  sim::Machine machine(prog);
  std::ostringstream out;
  sim::TracerOptions opt;
  opt.show_registers = true;
  sim::Tracer tracer(out, opt);
  machine.run([&](const sim::StepInfo& info) { tracer.observe(info, machine.state()); });

  const std::string text = out.str();
  EXPECT_NE(text.find("addiu $t0, $t0, -1"), std::string::npos);
  EXPECT_NE(text.find("; taken"), std::string::npos);
  EXPECT_NE(text.find("; not taken"), std::string::npos);
  EXPECT_NE(text.find("$t0 = 0x00000002"), std::string::npos);
  EXPECT_NE(text.find("00400000:"), std::string::npos);
}

TEST(Tracer, RespectsLineLimit) {
  const auto prog = asmblr::assemble(
      "main:   li $t0, 1000\n"
      "loop:   addiu $t0, $t0, -1\n"
      "        bnez $t0, loop\n"
      "        break\n");
  sim::Machine machine(prog);
  std::ostringstream out;
  sim::TracerOptions opt;
  opt.max_lines = 10;
  sim::Tracer tracer(out, opt);
  machine.run([&](const sim::StepInfo& info) { tracer.observe(info, machine.state()); });
  EXPECT_EQ(tracer.lines(), 10u);
  tracer.note("ignored past the limit");
  EXPECT_EQ(tracer.lines(), 10u);
}

TEST(Tracer, NoteEmitsAnnotation) {
  std::ostringstream out;
  sim::Tracer tracer(out);
  tracer.note("array activation @0x400018");
  EXPECT_NE(out.str().find("---------- array activation @0x400018"), std::string::npos);
}

TEST(StatsIo, JsonContainsAllCounters) {
  const auto prog = asmblr::assemble(
      "main:   li $t0, 50\n"
      "loop:   addiu $t0, $t0, -1\n"
      "        addu $t1, $t1, $t0\n"
      "        xor $t2, $t1, $t0\n"
      "        sll $t3, $t2, 1\n"
      "        bnez $t0, loop\n"
      "        li $v0, 10\n"
      "        syscall\n");
  const auto st =
      accel::run_accelerated(prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  std::ostringstream out;
  accel::write_json(out, st, "smoke \"quoted\"");
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  for (const char* key :
       {"instructions", "cycles", "array_activations", "rcache_hits", "ipc",
        "array_coverage", "misspeculations", "config_flushes"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\":"), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // label escaped
}

TEST(StatsIo, JsonEscapeEncodesControlCharacters) {
  // Regression: every control character used to collapse to " " (a
  // space), silently corrupting labels. Each must map to its own \u00xx.
  EXPECT_EQ(accel::json_escape("a\nb"), "a\\u000ab");
  EXPECT_EQ(accel::json_escape("a\tb"), "a\\u0009b");
  EXPECT_EQ(accel::json_escape(std::string("a\x01""b")), "a\\u0001b");
  EXPECT_EQ(accel::json_escape("quote\" slash\\"), "quote\\\" slash\\\\");
  EXPECT_EQ(accel::json_escape("plain"), "plain");  // printable untouched
}

TEST(StatsIo, NonFiniteDoublesEncodeAsNull) {
  // Bare `inf`/`nan` tokens are not JSON; any consumer would choke on the
  // whole document. Non-finite values encode as null instead.
  std::ostringstream out;
  accel::write_json_double(out, std::numeric_limits<double>::infinity());
  out << ' ';
  accel::write_json_double(out, -std::numeric_limits<double>::infinity());
  out << ' ';
  accel::write_json_double(out, std::numeric_limits<double>::quiet_NaN());
  out << ' ';
  accel::write_json_double(out, 2.5);
  EXPECT_EQ(out.str(), "null null null 2.5");
}

TEST(StatsIo, JsonFieldsStayFiniteForEmptyStats) {
  // A zero-cycle AccelStats (e.g. a run canceled before its first
  // checkpoint) must not emit inf/nan for the derived ipc/coverage
  // fields: the document has to stay machine-parseable.
  accel::AccelStats st;  // all counters zero
  std::ostringstream out;
  accel::write_json_fields(out, st, "");
  const std::string doc = out.str();
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(StatsIo, ReportMentionsCoverage) {
  accel::AccelStats st;
  st.instructions = 100;
  st.proc_instructions = 25;
  st.array_instructions = 75;
  st.cycles = 40;
  st.proc_cycles = 30;
  st.array_cycles = 10;
  std::ostringstream out;
  accel::write_report(out, st);
  EXPECT_NE(out.str().find("75% coverage"), std::string::npos);
  EXPECT_NE(out.str().find("ipc:"), std::string::npos);
}

}  // namespace
}  // namespace dim
