// DIM event tracing (obs/): stream contents, clock stamps, the
// per-configuration aggregation table, and the observation-only contract
// (attaching a sink never changes simulated results).
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "obs/event.hpp"
#include "obs/profile.hpp"

namespace dim {
namespace {

// A loop hot enough for DIM to capture, insert, and repeatedly activate,
// with a conditional exit so at least one misspeculation occurs.
const char* kHotLoop = R"(
        .data
buf:    .space 256
        .text
main:   la $s0, buf
        li $s1, 40
        li $s2, 0
loop:   addiu $s1, $s1, -1
        sll $t0, $s1, 2
        andi $t0, $t0, 255
        addu $t1, $s0, $t0
        lw $t2, 0($t1)
        addu $t2, $t2, $s1
        sw $t2, 0($t1)
        addu $s2, $s2, $t2
        bnez $s1, loop
        move $a0, $s2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

accel::AccelStats traced_run(const asmblr::Program& prog, obs::RecordingSink* sink,
                             size_t cache_slots = 64) {
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), cache_slots, true);
  cfg.event_sink = sink;
  return accel::run_accelerated(prog, cfg);
}

TEST(ObsEvents, LifecycleEventsAreEmitted) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  ASSERT_FALSE(sink.events().empty());

  uint64_t starts = 0, finalized = 0, inserts = 0, activations = 0, misspecs = 0;
  for (const obs::Event& e : sink.events()) {
    switch (e.kind) {
      case obs::EventKind::kCaptureStarted: ++starts; break;
      case obs::EventKind::kConfigFinalized: ++finalized; break;
      case obs::EventKind::kRcacheInsert: ++inserts; break;
      case obs::EventKind::kArrayActivation: ++activations; break;
      case obs::EventKind::kMisspeculation: ++misspecs; break;
      default: break;
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_GT(finalized, 0u);
  EXPECT_EQ(activations, st.array_activations);
  EXPECT_EQ(misspecs, st.misspeculations);
  EXPECT_GE(inserts, st.rcache_insertions);  // in-place rewrites also emit
}

TEST(ObsEvents, StampsAreMonotonicAndBounded) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  uint64_t last_instr = 0, last_proc = 0, last_array = 0;
  for (const obs::Event& e : sink.events()) {
    EXPECT_GE(e.instructions, last_instr);
    EXPECT_GE(e.proc_cycles, last_proc);
    EXPECT_GE(e.array_cycles, last_array);
    last_instr = e.instructions;
    last_proc = e.proc_cycles;
    last_array = e.array_cycles;
  }
  EXPECT_LE(last_instr, st.instructions);
  EXPECT_LE(last_proc, st.proc_cycles);
  EXPECT_LE(last_array, st.array_cycles);
}

TEST(ObsEvents, MisspeculationCarriesBranchPc) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  ASSERT_GT(st.misspeculations, 0u) << "test program must misspeculate";
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kMisspeculation) {
      EXPECT_NE(e.branch_pc, 0u);
      EXPECT_GE(e.depth, 1);
    }
  }
}

TEST(ObsEvents, TracingIsObservationOnly) {
  // The whole point of a transparent observer: stats with a sink attached
  // are byte-identical (as JSON) to stats with the null sink.
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto traced = traced_run(prog, &sink);
  const auto plain = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  std::ostringstream a, b;
  accel::write_json(a, traced, "x");
  accel::write_json(b, plain, "x");
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(traced.memory_hash, plain.memory_hash);
  EXPECT_EQ(traced.final_state.output, plain.final_state.output);
}

TEST(ObsEvents, JsonlWriterEmitsOneObjectPerEvent) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  std::ostringstream out;
  obs::write_events_jsonl(out, sink.events());
  const std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, sink.events().size());
  EXPECT_NE(text.find("\"event\": \"array_activation\""), std::string::npos);
  EXPECT_NE(text.find("\"event\": \"capture_started\""), std::string::npos);
}

TEST(ObsProfile, CycleBreakdownSumsToArrayCycles) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);

  obs::ProfileTable table;
  table.add_all(sink.events());
  ASSERT_FALSE(table.empty());

  // Per-configuration: the five components sum to the config's cycles.
  uint64_t total = 0;
  for (const obs::ConfigProfile& p : table.by_start_pc()) {
    EXPECT_EQ(p.exec_cycles + p.reconfig_stall_cycles + p.dcache_stall_cycles +
                  p.finalize_cycles + p.misspec_penalty_cycles,
              p.array_cycles());
    total += p.array_cycles();
  }
  // Whole table: per-config contributions sum to the run's array_cycles,
  // and the stats-level taxonomy agrees component-by-component.
  EXPECT_EQ(total, st.array_cycles);
  EXPECT_EQ(table.total_array_cycles(), st.array_cycles);
  EXPECT_EQ(table.total_activations(), st.array_activations);
  EXPECT_EQ(st.array_exec_cycles + st.reconfig_stall_cycles +
                st.array_dcache_stall_cycles + st.array_finalize_cycles +
                st.misspec_penalty_cycles,
            st.array_cycles);
}

TEST(ObsProfile, HotOrderAndMisspecRate) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable table;
  table.add_all(sink.events());
  const auto hot = table.by_cycles();
  for (size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].array_cycles(), hot[i].array_cycles());
  }
  for (const auto& p : hot) {
    EXPECT_GE(p.misspec_rate(), 0.0);
    EXPECT_LE(p.misspec_rate(), 1.0);
  }
}

TEST(ObsProfile, EvictionChurnIsRecordedUnderCachePressure) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink, /*cache_slots=*/1);
  obs::ProfileTable table;
  table.add_all(sink.events());
  uint64_t evictions = 0;
  for (const auto& p : table.by_start_pc()) evictions += p.evictions;
  EXPECT_EQ(evictions, st.rcache_evictions);
}

TEST(ObsProfile, MergeIsAdditive) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable once;
  once.add_all(sink.events());
  obs::ProfileTable twice;
  twice.merge(once);
  twice.merge(once);
  EXPECT_EQ(twice.total_array_cycles(), 2 * once.total_array_cycles());
  EXPECT_EQ(twice.total_activations(), 2 * once.total_activations());
  EXPECT_EQ(twice.size(), once.size());
}

TEST(ObsProfile, JsonAndTableExports) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable table;
  table.add_all(sink.events());

  std::ostringstream json;
  obs::write_profile_json(json, table);
  EXPECT_NE(json.str().find("\"configs\""), std::string::npos);
  EXPECT_NE(json.str().find("\"total_array_cycles\""), std::string::npos);

  std::ostringstream text;
  obs::write_profile_table(text, table, 2);
  EXPECT_NE(text.str().find("config"), std::string::npos);
  EXPECT_NE(text.str().find("total:"), std::string::npos);
}

TEST(ObsEvents, EventKindNamesAreUnique) {
  const obs::EventKind kinds[] = {
      obs::EventKind::kCaptureStarted, obs::EventKind::kCaptureAborted,
      obs::EventKind::kCaptureTooShort, obs::EventKind::kConfigFinalized,
      obs::EventKind::kRcacheInsert, obs::EventKind::kRcacheEvict,
      obs::EventKind::kRcacheFlush, obs::EventKind::kArrayActivation,
      obs::EventKind::kMisspeculation, obs::EventKind::kExtensionBegun,
      obs::EventKind::kExtensionCompleted};
  std::set<std::string> names;
  for (obs::EventKind k : kinds) names.insert(obs::event_kind_name(k));
  EXPECT_EQ(names.size(), std::size(kinds));
}

}  // namespace
}  // namespace dim
