// DIM event tracing (obs/): stream contents, clock stamps, the
// per-configuration aggregation table, and the observation-only contract
// (attaching a sink never changes simulated results).
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "obs/event.hpp"
#include "obs/profile.hpp"

namespace dim {
namespace {

// A loop hot enough for DIM to capture, insert, and repeatedly activate,
// with a conditional exit so at least one misspeculation occurs.
const char* kHotLoop = R"(
        .data
buf:    .space 256
        .text
main:   la $s0, buf
        li $s1, 40
        li $s2, 0
loop:   addiu $s1, $s1, -1
        sll $t0, $s1, 2
        andi $t0, $t0, 255
        addu $t1, $s0, $t0
        lw $t2, 0($t1)
        addu $t2, $t2, $s1
        sw $t2, 0($t1)
        addu $s2, $s2, $t2
        bnez $s1, loop
        move $a0, $s2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

accel::AccelStats traced_run(const asmblr::Program& prog, obs::RecordingSink* sink,
                             size_t cache_slots = 64) {
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), cache_slots, true);
  cfg.event_sink = sink;
  return accel::run_accelerated(prog, cfg);
}

TEST(ObsEvents, LifecycleEventsAreEmitted) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  ASSERT_FALSE(sink.events().empty());

  uint64_t starts = 0, finalized = 0, inserts = 0, activations = 0, misspecs = 0;
  for (const obs::Event& e : sink.events()) {
    switch (e.kind) {
      case obs::EventKind::kCaptureStarted: ++starts; break;
      case obs::EventKind::kConfigFinalized: ++finalized; break;
      case obs::EventKind::kRcacheInsert: ++inserts; break;
      case obs::EventKind::kArrayActivation: ++activations; break;
      case obs::EventKind::kMisspeculation: ++misspecs; break;
      default: break;
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_GT(finalized, 0u);
  EXPECT_EQ(activations, st.array_activations);
  EXPECT_EQ(misspecs, st.misspeculations);
  EXPECT_GE(inserts, st.rcache_insertions);  // in-place rewrites also emit
}

TEST(ObsEvents, StampsAreMonotonicAndBounded) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  uint64_t last_instr = 0, last_proc = 0, last_array = 0;
  for (const obs::Event& e : sink.events()) {
    EXPECT_GE(e.instructions, last_instr);
    EXPECT_GE(e.proc_cycles, last_proc);
    EXPECT_GE(e.array_cycles, last_array);
    last_instr = e.instructions;
    last_proc = e.proc_cycles;
    last_array = e.array_cycles;
  }
  EXPECT_LE(last_instr, st.instructions);
  EXPECT_LE(last_proc, st.proc_cycles);
  EXPECT_LE(last_array, st.array_cycles);
}

TEST(ObsEvents, MisspeculationCarriesBranchPc) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);
  ASSERT_GT(st.misspeculations, 0u) << "test program must misspeculate";
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kMisspeculation) {
      EXPECT_NE(e.branch_pc, 0u);
      EXPECT_GE(e.depth, 1);
    }
  }
}

TEST(ObsEvents, TracingIsObservationOnly) {
  // The whole point of a transparent observer: stats with a sink attached
  // are byte-identical (as JSON) to stats with the null sink.
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto traced = traced_run(prog, &sink);
  const auto plain = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  std::ostringstream a, b;
  accel::write_json(a, traced, "x");
  accel::write_json(b, plain, "x");
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(traced.memory_hash, plain.memory_hash);
  EXPECT_EQ(traced.final_state.output, plain.final_state.output);
}

TEST(ObsEvents, JsonlWriterEmitsOneObjectPerEvent) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  std::ostringstream out;
  obs::write_events_jsonl(out, sink.events());
  const std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, sink.events().size());
  EXPECT_NE(text.find("\"event\": \"array_activation\""), std::string::npos);
  EXPECT_NE(text.find("\"event\": \"capture_started\""), std::string::npos);
}

TEST(ObsProfile, CycleBreakdownSumsToArrayCycles) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink);

  obs::ProfileTable table;
  table.add_all(sink.events());
  ASSERT_FALSE(table.empty());

  // Per-configuration: the five components sum to the config's cycles.
  uint64_t total = 0;
  for (const obs::ConfigProfile& p : table.by_start_pc()) {
    EXPECT_EQ(p.exec_cycles + p.reconfig_stall_cycles + p.dcache_stall_cycles +
                  p.finalize_cycles + p.misspec_penalty_cycles,
              p.array_cycles());
    total += p.array_cycles();
  }
  // Whole table: per-config contributions sum to the run's array_cycles,
  // and the stats-level taxonomy agrees component-by-component.
  EXPECT_EQ(total, st.array_cycles);
  EXPECT_EQ(table.total_array_cycles(), st.array_cycles);
  EXPECT_EQ(table.total_activations(), st.array_activations);
  EXPECT_EQ(st.array_exec_cycles + st.reconfig_stall_cycles +
                st.array_dcache_stall_cycles + st.array_finalize_cycles +
                st.misspec_penalty_cycles,
            st.array_cycles);
}

TEST(ObsProfile, HotOrderAndMisspecRate) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable table;
  table.add_all(sink.events());
  const auto hot = table.by_cycles();
  for (size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].array_cycles(), hot[i].array_cycles());
  }
  for (const auto& p : hot) {
    EXPECT_GE(p.misspec_rate(), 0.0);
    EXPECT_LE(p.misspec_rate(), 1.0);
  }
}

TEST(ObsProfile, EvictionChurnIsRecordedUnderCachePressure) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  const auto st = traced_run(prog, &sink, /*cache_slots=*/1);
  obs::ProfileTable table;
  table.add_all(sink.events());
  uint64_t evictions = 0;
  for (const auto& p : table.by_start_pc()) evictions += p.evictions;
  EXPECT_EQ(evictions, st.rcache_evictions);
}

TEST(ObsProfile, MergeIsAdditive) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable once;
  once.add_all(sink.events());
  obs::ProfileTable twice;
  twice.merge(once);
  twice.merge(once);
  EXPECT_EQ(twice.total_array_cycles(), 2 * once.total_array_cycles());
  EXPECT_EQ(twice.total_activations(), 2 * once.total_activations());
  EXPECT_EQ(twice.size(), once.size());
}

TEST(ObsProfile, JsonAndTableExports) {
  const auto prog = asmblr::assemble(kHotLoop);
  obs::RecordingSink sink;
  traced_run(prog, &sink);
  obs::ProfileTable table;
  table.add_all(sink.events());

  std::ostringstream json;
  obs::write_profile_json(json, table);
  EXPECT_NE(json.str().find("\"configs\""), std::string::npos);
  EXPECT_NE(json.str().find("\"total_array_cycles\""), std::string::npos);

  std::ostringstream text;
  obs::write_profile_table(text, table, 2);
  EXPECT_NE(text.str().find("config"), std::string::npos);
  EXPECT_NE(text.str().find("total:"), std::string::npos);
}

TEST(ObsEvents, EventKindNamesAreUnique) {
  const obs::EventKind kinds[] = {
      obs::EventKind::kCaptureStarted, obs::EventKind::kCaptureAborted,
      obs::EventKind::kCaptureTooShort, obs::EventKind::kConfigFinalized,
      obs::EventKind::kRcacheInsert, obs::EventKind::kRcacheEvict,
      obs::EventKind::kRcacheFlush, obs::EventKind::kArrayActivation,
      obs::EventKind::kMisspeculation, obs::EventKind::kExtensionBegun,
      obs::EventKind::kExtensionCompleted, obs::EventKind::kHammockMerged,
      obs::EventKind::kResidencyHit, obs::EventKind::kResidencyDropped};
  std::set<std::string> names;
  for (obs::EventKind k : kinds) names.insert(obs::event_kind_name(k));
  EXPECT_EQ(names.size(), std::size(kinds));
}

// --- Loop residency lifecycle ------------------------------------------------

// A loop shaped so the speculative extension closes the capture exactly at
// the loop head (end_pc == start_pc): with one ALU per line and five lines,
// the four-op dependence chain plus the merged backward branch fill the
// array, so the next iteration's first op does not fit and the extension
// finalizes at the loop-start PC. That is the backward-branch-closed shape
// Residency::kLoop latches.
const char* kResidentLoop = R"(
main:   li $s1, 300
loop:   addiu $s1, $s1, -1
        addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        bnez $s1, loop
        move $a0, $s1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

accel::SystemConfig narrow_config(accel::Residency residency) {
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape{5, 1, 1, 1}, 64, true);
  cfg.residency = residency;
  // Small configs hide entirely behind the default reconfiguration overlap;
  // slow the configuration-word bus down so the reload a resident dispatch
  // skips is actually visible in the cycle count (same timing both runs).
  cfg.array_timing.config_words_per_cycle = 1;
  cfg.array_timing.reconfig_overlap_cycles = 0;
  return cfg;
}

TEST(ObsResidency, HotLoopConfigIsReusedWithoutReload) {
  const auto prog = asmblr::assemble(kResidentLoop);
  accel::SystemConfig cfg = narrow_config(accel::Residency::kLoop);
  obs::RecordingSink sink;
  cfg.event_sink = &sink;
  const auto on = accel::run_accelerated(prog, cfg);
  ASSERT_GT(on.residency_hits, 0u) << "loop config never stayed latched";

  uint64_t hit_events = 0, drop_events = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kResidencyHit) ++hit_events;
    if (e.kind == obs::EventKind::kResidencyDropped) ++drop_events;
  }
  EXPECT_EQ(hit_events, on.residency_hits);
  EXPECT_EQ(drop_events, on.residency_drops);

  // The per-config profile aggregates the same lifecycle counters.
  obs::ProfileTable table;
  table.add_all(sink.events());
  uint64_t hits = 0, drops = 0;
  for (const obs::ConfigProfile& p : table.by_start_pc()) {
    hits += p.residency_hits;
    drops += p.residency_drops;
  }
  EXPECT_EQ(hits, on.residency_hits);
  EXPECT_EQ(drops, on.residency_drops);

  // Residency is strictly a timing knob: identical architectural results,
  // strictly fewer configuration words loaded, never slower.
  const auto off = accel::run_accelerated(prog, narrow_config(accel::Residency::kOff));
  EXPECT_EQ(off.residency_hits, 0u);
  EXPECT_EQ(on.final_state.output, off.final_state.output);
  EXPECT_EQ(on.final_state.reg_hash(), off.final_state.reg_hash());
  EXPECT_EQ(on.memory_hash, off.memory_hash);
  EXPECT_EQ(on.instructions, off.instructions);
  EXPECT_LT(on.config_words_loaded, off.config_words_loaded);
  EXPECT_LT(on.cycles, off.cycles);
}

TEST(ObsResidency, ProcessorStoreIntoLoopBodyDropsLatch) {
  // The outer loop patches an instruction of the (resident) inner loop with
  // its own word after every inner run — architecturally a no-op, but SMC
  // as far as the latch is concerned: the store lands inside the resident
  // code range and must drop residency. The next outer iteration re-latches.
  const char* patcher = R"(
main:   li $s0, 50
        la $s4, site
        lw $s5, 0($s4)
outer:  li $s1, 40
loop:   addiu $s1, $s1, -1
site:   addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        addiu $s1, $s1, 0
        bnez $s1, loop
        sw $s5, 0($s4)
        addiu $s0, $s0, -1
        bnez $s0, outer
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(patcher);
  accel::SystemConfig cfg = narrow_config(accel::Residency::kLoop);
  obs::RecordingSink sink;
  cfg.event_sink = &sink;
  const auto st = accel::run_accelerated(prog, cfg);
  EXPECT_GT(st.residency_hits, 0u);
  EXPECT_GT(st.residency_drops, 0u) << "SMC store never invalidated the latch";

  uint64_t drop_events = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kResidencyDropped) ++drop_events;
  }
  EXPECT_EQ(drop_events, st.residency_drops);

  // Transparent despite the code-page stores.
  const auto off = accel::run_accelerated(prog, narrow_config(accel::Residency::kOff));
  EXPECT_EQ(st.final_state.output, off.final_state.output);
  EXPECT_EQ(st.final_state.reg_hash(), off.final_state.reg_hash());
  EXPECT_EQ(st.memory_hash, off.memory_hash);
}

TEST(ObsResidency, RcacheRewriteDropsStaleLatch) {
  // Residency::kAny latches every fully-committed configuration. The
  // speculative extension rewrites the hot config in place (fresh revision
  // stamp), so the next dispatch must detect the stale latch and drop it
  // instead of reusing the old contents.
  const auto prog = asmblr::assemble(kHotLoop);
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  cfg.residency = accel::Residency::kAny;
  obs::RecordingSink sink;
  cfg.event_sink = &sink;
  const auto st = accel::run_accelerated(prog, cfg);
  ASSERT_GT(st.extensions, 0u) << "test program must extend (rewrite) a config";
  EXPECT_GT(st.residency_hits, 0u);
  EXPECT_GT(st.residency_drops, 0u) << "rewrite never invalidated the latch";

  // Timing-only, as always: kAny matches the plain run architecturally.
  const auto plain = accel::run_accelerated(
      prog, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
  EXPECT_EQ(st.final_state.output, plain.final_state.output);
  EXPECT_EQ(st.final_state.reg_hash(), plain.final_state.reg_hash());
  EXPECT_EQ(st.memory_hash, plain.memory_hash);
}

TEST(ObsResidency, HammockMergeEmitsEvents) {
  // If-conversion lifecycle: every merged hammock emits kHammockMerged with
  // the branch PC, and the count matches the stats counter.
  const char* diamond = R"(
        .data
buf:    .space 64
        .text
main:   li $s0, 200
        li $s1, 0
        li $s2, 0
        la $s4, buf
loop:   andi $t0, $s2, 1
        addu $t1, $s1, $s2
        bnez $t0, odd
        addiu $s1, $s1, 1
        sw $s1, 0($s4)
        b join
odd:    addiu $s1, $s1, 2
join:   addiu $s2, $s2, 1
        bne $s2, $s0, loop
        li $v0, 10
        syscall
)";
  const auto prog = asmblr::assemble(diamond);
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, false);
  cfg.predication = true;
  obs::RecordingSink sink;
  cfg.event_sink = &sink;
  const auto st = accel::run_accelerated(prog, cfg);
  ASSERT_GT(st.hammocks_merged, 0u);
  uint64_t merges = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kHammockMerged) {
      ++merges;
      EXPECT_NE(e.branch_pc, 0u);
    }
  }
  EXPECT_EQ(merges, st.hammocks_merged);

  obs::ProfileTable table;
  table.add_all(sink.events());
  uint64_t profiled = 0;
  for (const obs::ConfigProfile& p : table.by_start_pc()) profiled += p.hammocks_merged;
  EXPECT_EQ(profiled, st.hammocks_merged);
}

}  // namespace
}  // namespace dim
