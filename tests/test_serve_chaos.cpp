// Chaos harness for the pre-forked serving pool (src/serve/supervisor.hpp).
//
// The contract under test is brutal on purpose: a Supervisor whose workers
// are being SIGKILLed at random must still answer every admitted request
// exactly once, with response bytes identical to a single-process Server
// that was never touched. Budgeted runs additionally prove the migration
// path — a job killed mid-run resumes from its run_until checkpoint on a
// fresh worker and the seams must not show in the response.
//
// Requests here deliberately avoid `warm`, `stats` and deadlines: warm
// export/preload flags depend on cross-worker timing, stats are
// topology-specific by design, and a deadline could legitimately expire
// under kill-loop scheduling jitter. Everything else must be bit-stable.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"

namespace dim::serve {
namespace {

namespace fs = std::filesystem;

// A long-running budgeted source: the loop bound is far beyond any budget
// used below, so every such run ends with hit_budget and exercises many
// run_until chunks (and thus many migration checkpoints).
constexpr const char* kLongBudgetRun =
    R"({"id": %ID%, "kind": "run", "source": "main: li $t0, 0\nli $t1, 1000000000\nloop: addiu $t0, $t0, 1\nbne $t0, $t1, loop\nli $v0, 10\nsyscall\n", "budget": %BUDGET%})";

std::string budget_run(const std::string& id, uint64_t budget) {
  std::string line = kLongBudgetRun;
  line.replace(line.find("%ID%"), 4, id);
  line.replace(line.find("%BUDGET%"), 8, std::to_string(budget));
  return line;
}

// The oracle: the same stream against an untouched single-process Server.
std::vector<std::string> reference_responses(
    const std::vector<std::string>& stream, uint64_t checkpoint_interval,
    const std::string& store_dir) {
  ServerOptions options;
  options.auto_dispatch = false;
  options.worker_threads = 2;
  options.checkpoint_interval = checkpoint_interval;
  options.store_dir = store_dir;
  Server server(options);
  std::vector<std::string> lines;
  auto session = server.open_session(
      [&lines](const std::string& line) { lines.push_back(line); });
  for (const std::string& line : stream) {
    session->submit(line);
    server.dispatch_pending();
  }
  session->drain();
  server.shutdown();
  return lines;
}

void wait_for_restarts(const Supervisor& supervisor, uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (supervisor.counters().worker_restarts < at_least &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(ServeChaos, KillLoopByteIdentity) {
  const std::string base =
      (fs::temp_directory_path() / "dimsim-serve-chaos-kill").string();
  fs::remove_all(base);
  constexpr uint64_t kCheckpointInterval = 20000;

  // Three concurrent sessions with distinct mixes: sweeps (shared-store
  // memoization races), plain runs, chunked budgeted runs, and a fuzz
  // campaign (deterministic by seed).
  const std::vector<std::vector<std::string>> streams = {
      {
          R"({"id": "a0", "kind": "sweep", "workload": "crc32", "slots_axis": [8, 16]})",
          R"({"id": "a1", "kind": "run", "workload": "bitcount"})",
          budget_run(R"("a2")", 300000),
          R"({"id": "a3", "kind": "sweep", "workload": "bitcount", "slots_axis": [8, 16]})",
          budget_run(R"("a4")", 200000),
          R"({"id": "a5", "kind": "run", "workload": "crc32"})",
      },
      {
          budget_run(R"("b0")", 400000),
          R"({"id": "b1", "kind": "run", "workload": "crc32"})",
          budget_run(R"("b2")", 250000),
          R"({"id": "b3", "kind": "run", "workload": "nonesuch"})",
          budget_run(R"("b4")", 350000),
          R"({"id": "b5", "kind": "ping"})",
      },
      {
          R"({"id": "c0", "kind": "fuzz", "seeds": 2})",
          R"({"id": "c1", "kind": "sweep", "workload": "crc32", "shapes": ["config1", "config2"]})",
          budget_run(R"("c2")", 300000),
          R"({"id": "c3", "kind": "run", "workload": "bitcount"})",
          budget_run(R"("c4")", 200000),
          R"({"id": "c5", "kind": "run", "workload": "crc32"})",
      },
  };

  std::vector<std::vector<std::string>> reference(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    reference[i] = reference_responses(streams[i], kCheckpointInterval,
                                       base + "/ref-" + std::to_string(i));
  }

  SupervisorOptions options;
  options.workers = 4;
  options.queue_capacity = 64;
  options.store_dir = base + "/pool";
  options.checkpoint_interval = kCheckpointInterval;
  options.engine_threads = 2;
  Supervisor supervisor(options);

  // The kill loop: SIGKILL a random live worker every few milliseconds
  // while the sessions are in flight.
  std::atomic<bool> clients_done{false};
  std::thread killer([&supervisor, &clients_done] {
    std::mt19937 rng(0x5eed);
    std::uniform_int_distribution<int> wait_ms(5, 25);
    int kills = 0;
    while (!clients_done.load() && kills < 60) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms(rng)));
      const std::vector<pid_t> pids = supervisor.worker_pids();
      if (pids.empty()) continue;
      std::uniform_int_distribution<size_t> pick(0, pids.size() - 1);
      if (::kill(pids[pick(rng)], SIGKILL) == 0) ++kills;
    }
  });

  std::vector<std::vector<std::string>> got(streams.size());
  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    clients.emplace_back([&supervisor, &streams, &got, i] {
      auto session = supervisor.open_session(
          [&got, i](const std::string& line) { got[i].push_back(line); });
      for (const std::string& line : streams[i]) session->submit(line);
      session->drain();
    });
  }
  for (std::thread& t : clients) t.join();
  clients_done.store(true);
  killer.join();

  // The random kills almost certainly hit, but make the restart path
  // deterministic: kill one live worker now (the pool is idle but alive)
  // and wait for the supervisor to reap and replace it.
  const uint64_t restarts_before = supervisor.counters().worker_restarts;
  const std::vector<pid_t> pids = supervisor.worker_pids();
  ASSERT_FALSE(pids.empty()) << "pool died entirely";
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  wait_for_restarts(supervisor, restarts_before + 1);

  const SupervisorCounters c = supervisor.counters();
  supervisor.shutdown();

  for (size_t i = 0; i < streams.size(); ++i) {
    ASSERT_EQ(got[i].size(), streams[i].size())
        << "session " << i << ": admitted work was lost or double-answered";
    EXPECT_EQ(got[i], reference[i])
        << "session " << i << ": responses diverged from the single-process "
        << "reference under worker kills";
  }
  EXPECT_GE(c.worker_restarts, 1u);
  EXPECT_EQ(c.abandoned, 0u) << "a job exhausted its retry budget";
  // 18 requests; the ping answers inline, everything else is queued work
  // (the unknown workload still parses — the worker rejects it).
  EXPECT_EQ(c.accepted, 17u);
  EXPECT_EQ(c.rejected_invalid, 0u);
  fs::remove_all(base);
}

TEST(ServeChaos, MigrationResumesBudgetedRunByteIdentical) {
  const std::string base =
      (fs::temp_directory_path() / "dimsim-serve-chaos-migrate").string();
  fs::remove_all(base);
  constexpr uint64_t kCheckpointInterval = 20000;
  const std::string request = budget_run(R"("mig")", 4000000);

  const std::vector<std::string> reference = reference_responses(
      {request}, kCheckpointInterval, base + "/ref");
  ASSERT_EQ(reference.size(), 1u);
  ASSERT_NE(reference[0].find("\"hit_budget\": true"), std::string::npos);

  // One worker, one long budgeted run, repeated SIGKILLs mid-run: every
  // retry must resume from the latest checkpoint (forward progress — a
  // checkpoint lands every ~20k instructions, far more often than kills)
  // and the final response must match the uncrashed oracle byte-for-byte.
  SupervisorOptions options;
  options.workers = 1;
  options.store_dir = base + "/pool";
  options.checkpoint_interval = kCheckpointInterval;
  options.engine_threads = 2;
  Supervisor supervisor(options);

  std::atomic<bool> answered{false};
  std::vector<std::string> got;
  auto session = supervisor.open_session(
      [&got, &answered](const std::string& line) {
        got.push_back(line);
        answered.store(true);
      });
  session->submit(request);

  // Wait for the job to actually reach the worker before the first kill.
  const auto dispatch_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (supervisor.counters().dispatched == 0 &&
         std::chrono::steady_clock::now() < dispatch_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(supervisor.counters().dispatched, 1u);

  int kills = 0;
  while (!answered.load() && kills < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::vector<pid_t> pids = supervisor.worker_pids();
    if (pids.empty()) continue;
    if (::kill(pids[0], SIGKILL) == 0) ++kills;
  }
  session->drain();

  const SupervisorCounters c = supervisor.counters();
  supervisor.shutdown();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], reference[0])
      << "migrated run diverged from the uncrashed reference";
  EXPECT_GE(kills, 1);
  EXPECT_GE(c.worker_restarts, 1u);
  // Each mid-run kill after the first checkpoint re-queues with a snapshot
  // to resume from; with a 30ms kill cadence against ~20k-instruction
  // checkpoint chunks at least one retry migrates rather than restarting.
  EXPECT_GE(c.migrations, 1u);
  EXPECT_EQ(c.abandoned, 0u);
  fs::remove_all(base);
}

}  // namespace
}  // namespace dim::serve
