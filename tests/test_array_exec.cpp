// Functional and timing behavior of the reconfigurable array execution.
#include <gtest/gtest.h>

#include "bt/translator.hpp"
#include "rra/array_exec.hpp"
#include "sim/executor.hpp"

namespace dim::rra {
namespace {

using isa::Instr;
using isa::Op;

Instr r3(Op op, int rd, int rs, int rt) {
  Instr i;
  i.op = op;
  i.rd = static_cast<uint8_t>(rd);
  i.rs = static_cast<uint8_t>(rs);
  i.rt = static_cast<uint8_t>(rt);
  return i;
}

Instr imm(Op op, int rt, int rs, int16_t v) {
  Instr i;
  i.op = op;
  i.rt = static_cast<uint8_t>(rt);
  i.rs = static_cast<uint8_t>(rs);
  i.imm16 = static_cast<uint16_t>(v);
  return i;
}

bt::TranslatorParams default_params() {
  bt::TranslatorParams p;
  p.shape = ArrayShape::config1();
  return p;
}

TEST(ArrayExec, ComputesAluChain) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));   // t0 = 5
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));     // t1 = 10
  ASSERT_TRUE(b.try_add(imm(Op::kXori, 10, 9, 3), 0x108));   // t2 = 9
  const Configuration c = b.finalize(0x10C);

  sim::CpuState s;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(out.next_pc, 0x10Cu);
  EXPECT_EQ(out.committed_ops, 3);
  EXPECT_FALSE(out.misspeculated);
  EXPECT_EQ(s.regs[8], 5u);
  EXPECT_EQ(s.regs[9], 10u);
  EXPECT_EQ(s.regs[10], 9u);
  EXPECT_EQ(s.pc, 0x10Cu);
}

TEST(ArrayExec, UsesInputContextFromRegisterBank) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 10, 8, 9), 0x100));
  const Configuration c = b.finalize(0x104);
  sim::CpuState s;
  s.regs[8] = 30;
  s.regs[9] = 12;
  mem::Memory m;
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[10], 42u);
}

TEST(ArrayExec, WawOnlyLastWriteSurvives) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  ASSERT_TRUE(b.try_add(r3(Op::kAddu, 9, 8, 8), 0x104));  // reads first t0
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 99), 0x108));
  const Configuration c = b.finalize(0x10C);
  sim::CpuState s;
  mem::Memory m;
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[8], 99u);  // last writer
  EXPECT_EQ(s.regs[9], 2u);   // consumed the earlier value
}

TEST(ArrayExec, StoreToLoadForwardingInsideConfig) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 0x55), 0x100));
  ASSERT_TRUE(b.try_add(imm(Op::kSw, 8, 28, 0), 0x104));   // [gp] = t0
  ASSERT_TRUE(b.try_add(imm(Op::kLw, 9, 28, 0), 0x108));   // t1 = [gp]
  ASSERT_TRUE(b.try_add(imm(Op::kLb, 10, 28, 0), 0x10C));  // t2 = byte
  const Configuration c = b.finalize(0x110);
  sim::CpuState s;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[9], 0x55u);
  EXPECT_EQ(s.regs[10], 0x55u);
  EXPECT_EQ(m.read32(0x10008000), 0x55u);  // store drained at commit
}

TEST(ArrayExec, PartialStoreForwarding) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 0x7B), 0x100));
  ASSERT_TRUE(b.try_add(imm(Op::kSb, 8, 28, 1), 0x104));   // one byte at +1
  ASSERT_TRUE(b.try_add(imm(Op::kLw, 9, 28, 0), 0x108));   // word read overlapping
  const Configuration c = b.finalize(0x10C);
  sim::CpuState s;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  m.write32(0x10008000, 0xAABBCCDD);
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[9], 0xAABB7BDDu);  // byte merged over memory
}

TEST(ArrayExec, CorrectSpeculationCommitsAllBlocks) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 1), 0x100));
  ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 3), 0x104, true));  // t0 != 0: taken
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 2), 0x114));
  const Configuration c = b.finalize(0x118);
  sim::CpuState s;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_FALSE(out.misspeculated);
  EXPECT_EQ(out.committed_bbs, 2);
  EXPECT_EQ(out.next_pc, 0x118u);
  EXPECT_EQ(s.regs[9], 2u);
  ASSERT_EQ(out.branch_outcomes.size(), 1u);
  EXPECT_TRUE(out.branch_outcomes[0].taken);
  EXPECT_TRUE(out.branch_outcomes[0].matched);
}

TEST(ArrayExec, MisspeculationSquashesYoungerBlocks) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 0), 0x100));            // t0 = 0
  ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 3), 0x104, true)); // predicted taken; actual NT
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 77), 0x114));           // speculative
  ASSERT_TRUE(b.try_add(imm(Op::kSw, 9, 28, 0), 0x118));              // speculative store
  const Configuration c = b.finalize(0x11C);
  sim::CpuState s;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_TRUE(out.misspeculated);
  EXPECT_EQ(out.committed_bbs, 1);
  EXPECT_EQ(out.next_pc, 0x108u);     // fall-through of the branch
  EXPECT_EQ(s.regs[9], 0u);           // speculative write squashed
  EXPECT_EQ(m.read32(0x10008000), 0u);  // speculative store never drained
  EXPECT_EQ(out.committed_ops, 2);    // addiu + the resolving branch
  EXPECT_GT(out.misspec_penalty_cycles, 0u);
}

TEST(ArrayExec, MisspeculatedTakenBranchRedirectsToTarget) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 5), 0x100));
  // Predicted not-taken, actually taken (t0 != 0). Displacement +3 words.
  ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 3), 0x104, false));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 1), 0x108));
  const Configuration c = b.finalize(0x10C);
  sim::CpuState s;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_TRUE(out.misspeculated);
  EXPECT_EQ(out.next_pc, 0x104u + 4 + 12);
  EXPECT_EQ(s.regs[9], 0u);
}

TEST(ArrayExec, HiLoTravelThroughContext) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 7), 0x100));
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 9, 0, 6), 0x104));
  ASSERT_TRUE(b.try_add(r3(Op::kMult, 0, 8, 9), 0x108));
  ASSERT_TRUE(b.try_add(r3(Op::kMflo, 10, 0, 0), 0x10C));
  const Configuration c = b.finalize(0x110);
  sim::CpuState s;
  mem::Memory m;
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[10], 42u);
  EXPECT_EQ(s.lo, 42u);
  EXPECT_EQ(s.hi, 0u);
}

TEST(ArrayExec, HiLoInputContext) {
  // mflo with LO produced before the configuration.
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(r3(Op::kMflo, 10, 0, 0), 0x100));
  const Configuration c = b.finalize(0x104);
  sim::CpuState s;
  s.lo = 1234;
  mem::Memory m;
  execute_configuration(c, s, m, nullptr, ArrayTimingParams{});
  EXPECT_EQ(s.regs[10], 1234u);
}

// --- Timing -------------------------------------------------------------------

TEST(ArrayTiming, AluRowsPack) {
  Configuration c;
  c.rows_used = 6;
  c.row_kinds.assign(6, RowKind::kAlu);
  ArrayTimingParams t;
  t.alu_rows_per_cycle = 3;
  EXPECT_EQ(rows_exec_cycles(c, 5, t), 2u);  // 6 ALU rows / 3 per cycle
  EXPECT_EQ(rows_exec_cycles(c, 2, t), 1u);  // only 3 rows reached
  t.alu_rows_per_cycle = 1;
  EXPECT_EQ(rows_exec_cycles(c, 5, t), 6u);
}

TEST(ArrayTiming, MixedRowKinds) {
  Configuration c;
  c.rows_used = 5;
  c.row_kinds = {RowKind::kAlu, RowKind::kAlu, RowKind::kMem, RowKind::kAlu, RowKind::kMul};
  ArrayTimingParams t;  // 3 ALU rows per cycle, 1 cycle mem, 1 cycle mul
  // ceil(2/3) + 1 + ceil(1/3) + 1 = 1 + 1 + 1 + 1
  EXPECT_EQ(rows_exec_cycles(c, 4, t), 4u);
}

TEST(ArrayTiming, ReconfigStallHiddenByOverlap) {
  Configuration c;
  c.ops.resize(10);
  c.input_regs = 4;
  ArrayTimingParams t;  // 16 words/cycle, 4 read ports, 3 cycles hidden
  EXPECT_EQ(reconfig_stall_cycles(c, t), 0u);
  c.input_regs = 20;  // 5 fetch cycles > 3 overlap
  EXPECT_EQ(reconfig_stall_cycles(c, t), 2u);
  c.input_regs = 4;
  c.ops.resize(100);  // ceil(100/16) = 7 load cycles
  EXPECT_EQ(reconfig_stall_cycles(c, t), 4u);
}

TEST(ArrayTiming, MisspeculatedCommitDrainsOnlyCommittedWrites) {
  // Regression: the write-back drain used to be billed for the FULL
  // configuration's output_regs even when a misspeculation squashed the
  // suffix. A partial commit drains only the registers the committed prefix
  // actually wrote.
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kAddiu, 8, 0, 0), 0x100));             // t0 = 0 (1 write)
  ASSERT_TRUE(b.try_add_branch(imm(Op::kBne, 0, 8, 9), 0x104, true));  // predicted T; actual NT
  // Squashed suffix holds most of the configuration's outputs.
  for (int r = 9; r <= 14; ++r) {
    ASSERT_TRUE(b.try_add(imm(Op::kAddiu, r, 0, static_cast<int16_t>(r)),
                          0x12C + 4 * static_cast<uint32_t>(r - 9)));
  }
  const Configuration c = b.finalize(0x144);
  ASSERT_GE(c.output_regs, 7);  // t0..t6 are all outputs of the full config

  ArrayTimingParams t;
  t.regfile_write_ports = 1;  // makes the drain cost visible per register
  sim::CpuState s;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, t);
  ASSERT_TRUE(out.misspeculated);
  EXPECT_EQ(out.committed_ops, 2);  // addiu + the resolving branch
  // One committed register write -> one drain cycle (== the floor), not the
  // ~7 cycles the full output set would cost.
  EXPECT_EQ(out.finalize_cycles, 1u);
}

TEST(ArrayTiming, FullCommitStillDrainsAllOutputs) {
  // Companion to the regression above: a correct full commit is unchanged —
  // it drains every output register of the configuration.
  bt::ConfigBuilder b(0x100, default_params());
  for (int r = 8; r <= 14; ++r) {
    ASSERT_TRUE(b.try_add(imm(Op::kAddiu, r, 0, static_cast<int16_t>(r)),
                          0x100 + 4 * static_cast<uint32_t>(r - 8)));
  }
  const Configuration c = b.finalize(0x11C);
  ASSERT_EQ(c.output_regs, 7);

  ArrayTimingParams t;
  t.regfile_write_ports = 1;
  sim::CpuState s;
  mem::Memory m;
  const ArrayExecOutcome out = execute_configuration(c, s, m, nullptr, t);
  ASSERT_FALSE(out.misspeculated);
  EXPECT_EQ(out.finalize_cycles, 7u);  // ceil(7 outputs / 1 port)
}

TEST(ArrayTiming, DcacheMissesStallArray) {
  bt::ConfigBuilder b(0x100, default_params());
  ASSERT_TRUE(b.try_add(imm(Op::kLw, 9, 28, 0), 0x100));
  const Configuration c = b.finalize(0x104);
  sim::CpuState s;
  s.regs[28] = 0x10008000;
  mem::Memory m;
  mem::CacheParams cp;
  cp.enabled = true;
  cp.miss_penalty = 25;
  mem::Cache dcache(cp);
  const ArrayExecOutcome out = execute_configuration(c, s, m, &dcache, ArrayTimingParams{});
  EXPECT_EQ(out.dcache_stall_cycles, 25u);  // cold miss
}

}  // namespace
}  // namespace dim::rra
