#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memory.hpp"

namespace dim::mem {
namespace {

TEST(Memory, ReadsZeroWhenUntouched) {
  Memory m;
  EXPECT_EQ(m.read8(0), 0u);
  EXPECT_EQ(m.read32(0x12345678), 0u);
  EXPECT_EQ(m.pages_allocated(), 0u);
}

TEST(Memory, ByteHalfWordRoundTrip) {
  Memory m;
  m.write8(100, 0xAB);
  m.write16(200, 0xCDEF);
  m.write32(300, 0x01234567);
  EXPECT_EQ(m.read8(100), 0xAB);
  EXPECT_EQ(m.read16(200), 0xCDEF);
  EXPECT_EQ(m.read32(300), 0x01234567u);
}

TEST(Memory, LittleEndianLayout) {
  Memory m;
  m.write32(0x1000, 0xAABBCCDD);
  EXPECT_EQ(m.read8(0x1000), 0xDD);
  EXPECT_EQ(m.read8(0x1001), 0xCC);
  EXPECT_EQ(m.read8(0x1002), 0xBB);
  EXPECT_EQ(m.read8(0x1003), 0xAA);
  EXPECT_EQ(m.read16(0x1000), 0xCCDD);
  EXPECT_EQ(m.read16(0x1002), 0xAABB);
}

TEST(Memory, CrossPageAccess) {
  Memory m;
  const uint32_t boundary = Memory::kPageSize;
  m.write32(boundary - 2, 0x11223344);
  EXPECT_EQ(m.read32(boundary - 2), 0x11223344u);
  EXPECT_EQ(m.read16(boundary - 2), 0x3344u);
  EXPECT_EQ(m.read16(boundary), 0x1122u);
  EXPECT_EQ(m.pages_allocated(), 2u);
}

TEST(Memory, BlockHelpers) {
  Memory m;
  const std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  m.write_block(0x2000, data.data(), data.size());
  EXPECT_EQ(m.read_block(0x2000, 5), data);
  EXPECT_EQ(m.read8(0x2004), 5u);
}

TEST(Memory, ContentHashDetectsChanges) {
  Memory a, b;
  a.write32(0x1000, 42);
  b.write32(0x1000, 42);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.write8(0x5000, 1);
  EXPECT_NE(a.content_hash(), b.content_hash());
  b.write8(0x5000, 0);  // back to all-zero content in the same page
  EXPECT_EQ(a.content_hash(), b.content_hash());
  // Identical (zero) content in different pages hashes differently, because
  // the page address is mixed in.
  a.write8(5 * Memory::kPageSize, 0);
  b.write8(9 * Memory::kPageSize, 0);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(Memory, HashIsIterationOrderIndependent) {
  Memory a, b;
  a.write8(0x10000, 1);
  a.write8(0x50000, 2);
  b.write8(0x50000, 2);  // reversed allocation order
  b.write8(0x10000, 1);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(Cache, DisabledIsFree) {
  Cache c(CacheParams{});  // enabled = false by default
  EXPECT_EQ(c.access(0x1234), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, MissThenHit) {
  CacheParams p;
  p.enabled = true;
  p.size_bytes = 1024;
  p.line_bytes = 32;
  p.miss_penalty = 10;
  Cache c(p);
  EXPECT_EQ(c.access(0x100), 10u);
  EXPECT_EQ(c.access(0x104), 0u);  // same line
  EXPECT_EQ(c.access(0x11F), 0u);
  EXPECT_EQ(c.access(0x120), 10u);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ConflictEviction) {
  CacheParams p;
  p.enabled = true;
  p.size_bytes = 64;  // 2 lines of 32
  p.line_bytes = 32;
  p.miss_penalty = 7;
  Cache c(p);
  EXPECT_EQ(c.access(0x000), 7u);
  EXPECT_EQ(c.access(0x040), 7u);  // same index, different tag -> evict
  EXPECT_EQ(c.access(0x000), 7u);  // miss again
}

TEST(Cache, Reset) {
  CacheParams p;
  p.enabled = true;
  Cache c(p);
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_GT(c.access(0), 0u);  // cold again
}

}  // namespace
}  // namespace dim::mem
