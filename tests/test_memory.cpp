#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mem/cache.hpp"
#include "mem/memory.hpp"

namespace dim::mem {
namespace {

TEST(Memory, ReadsZeroWhenUntouched) {
  Memory m;
  EXPECT_EQ(m.read8(0), 0u);
  EXPECT_EQ(m.read32(0x12345678), 0u);
  EXPECT_EQ(m.pages_allocated(), 0u);
}

TEST(Memory, ByteHalfWordRoundTrip) {
  Memory m;
  m.write8(100, 0xAB);
  m.write16(200, 0xCDEF);
  m.write32(300, 0x01234567);
  EXPECT_EQ(m.read8(100), 0xAB);
  EXPECT_EQ(m.read16(200), 0xCDEF);
  EXPECT_EQ(m.read32(300), 0x01234567u);
}

TEST(Memory, LittleEndianLayout) {
  Memory m;
  m.write32(0x1000, 0xAABBCCDD);
  EXPECT_EQ(m.read8(0x1000), 0xDD);
  EXPECT_EQ(m.read8(0x1001), 0xCC);
  EXPECT_EQ(m.read8(0x1002), 0xBB);
  EXPECT_EQ(m.read8(0x1003), 0xAA);
  EXPECT_EQ(m.read16(0x1000), 0xCCDD);
  EXPECT_EQ(m.read16(0x1002), 0xAABB);
}

TEST(Memory, CrossPageAccess) {
  Memory m;
  const uint32_t boundary = Memory::kPageSize;
  m.write32(boundary - 2, 0x11223344);
  EXPECT_EQ(m.read32(boundary - 2), 0x11223344u);
  EXPECT_EQ(m.read16(boundary - 2), 0x3344u);
  EXPECT_EQ(m.read16(boundary), 0x1122u);
  EXPECT_EQ(m.pages_allocated(), 2u);
}

TEST(Memory, BlockHelpers) {
  Memory m;
  const std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  m.write_block(0x2000, data.data(), data.size());
  EXPECT_EQ(m.read_block(0x2000, 5), data);
  EXPECT_EQ(m.read8(0x2004), 5u);
}

TEST(Memory, ContentHashDetectsChanges) {
  Memory a, b;
  a.write32(0x1000, 42);
  b.write32(0x1000, 42);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.write8(0x5000, 1);
  EXPECT_NE(a.content_hash(), b.content_hash());
  b.write8(0x5000, 0);  // back to all-zero content in the same page
  EXPECT_EQ(a.content_hash(), b.content_hash());
  // Identical (zero) content in different pages hashes differently, because
  // the page address is mixed in.
  a.write8(5 * Memory::kPageSize, 0);
  b.write8(9 * Memory::kPageSize, 0);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(Memory, HashIsIterationOrderIndependent) {
  Memory a, b;
  a.write8(0x10000, 1);
  a.write8(0x50000, 2);
  b.write8(0x50000, 2);  // reversed allocation order
  b.write8(0x10000, 1);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(Cache, DisabledIsFree) {
  Cache c(CacheParams{});  // enabled = false by default
  EXPECT_EQ(c.access(0x1234), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, MissThenHit) {
  CacheParams p;
  p.enabled = true;
  p.size_bytes = 1024;
  p.line_bytes = 32;
  p.miss_penalty = 10;
  Cache c(p);
  EXPECT_EQ(c.access(0x100), 10u);
  EXPECT_EQ(c.access(0x104), 0u);  // same line
  EXPECT_EQ(c.access(0x11F), 0u);
  EXPECT_EQ(c.access(0x120), 10u);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ConflictEviction) {
  CacheParams p;
  p.enabled = true;
  p.size_bytes = 64;  // 2 lines of 32
  p.line_bytes = 32;
  p.miss_penalty = 7;
  Cache c(p);
  EXPECT_EQ(c.access(0x000), 7u);
  EXPECT_EQ(c.access(0x040), 7u);  // same index, different tag -> evict
  EXPECT_EQ(c.access(0x000), 7u);  // miss again
}

TEST(Cache, Reset) {
  CacheParams p;
  p.enabled = true;
  Cache c(p);
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_GT(c.access(0), 0u);  // cold again
}

TEST(Memory, FirstDifferenceIdenticalImages) {
  Memory a, b;
  EXPECT_EQ(a.first_difference(b), std::nullopt);
  a.write32(0x1000, 0xDEADBEEF);
  b.write32(0x1000, 0xDEADBEEF);
  EXPECT_EQ(a.first_difference(b), std::nullopt);
  EXPECT_EQ(b.first_difference(a), std::nullopt);
}

TEST(Memory, FirstDifferenceReportsLowestDifferingByte) {
  Memory a, b;
  a.write8(0x2003, 7);
  b.write8(0x2003, 9);
  a.write8(0x2001, 1);  // lower difference added later must still win
  EXPECT_EQ(a.first_difference(b), 0x2001u);
  EXPECT_EQ(b.first_difference(a), 0x2001u);
}

TEST(Memory, FirstDifferenceStraddlesPageBoundary) {
  // Last byte of page 0 equal, first byte of page 1 differs: the scan must
  // cross into the next page instead of stopping at the boundary.
  Memory a, b;
  a.write8(Memory::kPageSize - 1, 0x11);
  b.write8(Memory::kPageSize - 1, 0x11);
  a.write8(Memory::kPageSize, 0x22);
  b.write8(Memory::kPageSize, 0x33);
  EXPECT_EQ(a.first_difference(b), Memory::kPageSize);

  // A 32-bit write straddling the boundary differs only in its high bytes,
  // which land on the second page.
  Memory c, d;
  c.write32(Memory::kPageSize - 2, 0xAABBCCDD);
  d.write32(Memory::kPageSize - 2, 0x11BBCCDD);
  EXPECT_EQ(c.first_difference(d), Memory::kPageSize + 1);
}

TEST(Memory, FirstDifferenceTreatsAbsentPagesAsZero) {
  // One side allocated an all-zero page (write then overwrite with zero),
  // the other never touched it: the images hold the same bytes, so there
  // is no difference to report...
  Memory a, b;
  a.write8(0x30000, 0xFF);
  a.write8(0x30000, 0x00);
  EXPECT_EQ(a.pages_allocated(), 1u);
  EXPECT_EQ(b.pages_allocated(), 0u);
  EXPECT_EQ(a.first_difference(b), std::nullopt);
  EXPECT_EQ(b.first_difference(a), std::nullopt);
  // ...but the allocation set is part of the image identity, which the
  // hash does see (a run that touched a page is distinguishable).
  EXPECT_NE(a.content_hash(), b.content_hash());

  // An absent page on one side with real bytes on the other compares
  // against zeros.
  b.write8(0x50004, 0xAB);
  EXPECT_EQ(a.first_difference(b), 0x50004u);
}

TEST(Memory, PagesSortedAscendingAndSized) {
  Memory m;
  m.write8(3 * Memory::kPageSize + 5, 1);
  m.write8(0 * Memory::kPageSize + 9, 2);
  m.write8(7 * Memory::kPageSize + 1, 3);
  const auto pages = m.pages_sorted();
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(pages[0].first, 0u);
  EXPECT_EQ(pages[1].first, 3u);
  EXPECT_EQ(pages[2].first, 7u);
  for (const auto& [index, bytes] : pages) {
    ASSERT_NE(bytes, nullptr);
    EXPECT_EQ(bytes->size(), Memory::kPageSize);
  }
  EXPECT_EQ((*pages[1].second)[5], 1u);
}

TEST(Memory, RestorePagesReplacesTheImage) {
  Memory src;
  src.write32(0x1234, 0xCAFEBABE);
  src.write8(5 * Memory::kPageSize, 0x42);
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> pages;
  for (const auto& [index, bytes] : src.pages_sorted()) pages.emplace_back(index, *bytes);

  Memory dst;
  dst.write8(0x999, 0x77);  // must vanish: restore replaces, not merges
  dst.restore_pages(pages);
  EXPECT_EQ(dst.content_hash(), src.content_hash());
  EXPECT_EQ(dst.first_difference(src), std::nullopt);
  EXPECT_EQ(dst.read32(0x1234), 0xCAFEBABEu);
  EXPECT_EQ(dst.read8(0x999), 0u);

  // Wrong-sized pages are a deserialization bug, not a silent truncation.
  EXPECT_THROW(dst.restore_pages({{0u, std::vector<uint8_t>(100)}}), std::invalid_argument);
}

}  // namespace
}  // namespace dim::mem
