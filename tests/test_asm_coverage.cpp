// Assembler edge cases: every pseudo-instruction expansion, section
// gymnastics, operand forms, and the long tail of error diagnostics.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "mem/memory.hpp"
#include "sim/machine.hpp"

namespace dim::asmblr {
namespace {

using isa::Op;

std::vector<isa::Instr> text_of(const std::string& source) {
  const Program p = assemble(source);
  const Segment& text = p.segments[0];
  std::vector<isa::Instr> out;
  for (size_t off = 0; off + 4 <= text.bytes.size(); off += 4) {
    const uint32_t word = static_cast<uint32_t>(text.bytes[off]) |
                          (static_cast<uint32_t>(text.bytes[off + 1]) << 8) |
                          (static_cast<uint32_t>(text.bytes[off + 2]) << 16) |
                          (static_cast<uint32_t>(text.bytes[off + 3]) << 24);
    out.push_back(isa::decode(word));
  }
  return out;
}

// Running a snippet and checking its output exercises assembly + execution.
std::string output_of(const std::string& source) {
  const sim::RunResult r = sim::run_baseline(assemble(source));
  EXPECT_FALSE(r.hit_limit);
  return r.state.output;
}

TEST(AsmPseudo, NegNotMove) {
  EXPECT_EQ(output_of(R"(
main:   li $t0, 5
        neg $t1, $t0
        not $t2, $zero
        move $a0, $t1
        li $v0, 1
        syscall
        li $v0, 11
        li $a0, ','
        syscall
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)"), "-5,-1");
}

TEST(AsmPseudo, SubiuAndB) {
  EXPECT_EQ(output_of(R"(
main:   li $t0, 10
        subiu $t0, $t0, 3
        b skip
        li $t0, 99
skip:   move $a0, $t0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)"), "7");
}

TEST(AsmPseudo, AllComparisonBranchDirections) {
  // Exercise blt/ble/bgt/bge and unsigned variants on both outcomes.
  EXPECT_EQ(output_of(R"(
main:   li $t0, -2
        li $t1, 3
        li $a0, 0
        blt $t0, $t1, a
        addiu $a0, $a0, 100
a:      ble $t1, $t1, b
        addiu $a0, $a0, 100
b:      bgt $t1, $t0, c
        addiu $a0, $a0, 100
c:      bge $t0, $t1, d       # -2 >= 3 is false: fall through
        addiu $a0, $a0, 1
d:      bltu $t0, $t1, e      # 0xFFFFFFFE < 3 unsigned is false
        addiu $a0, $a0, 2
e:      bgeu $t0, $t1, f      # 0xFFFFFFFE >= 3 unsigned: taken
        addiu $a0, $a0, 100
f:      bgtu $t1, $t0, g      # 3 > 0xFFFFFFFE unsigned is false
        addiu $a0, $a0, 4
g:      bleu $t1, $t0, h      # 3 <= 0xFFFFFFFE unsigned: taken
        addiu $a0, $a0, 100
h:      li $v0, 1
        syscall
        li $v0, 10
        syscall
)"), "7");
}

TEST(AsmPseudo, JalrSingleOperandLinksRa) {
  auto text = text_of("main: jalr $t9\n");
  ASSERT_EQ(text.size(), 1u);
  EXPECT_EQ(text[0].op, Op::kJalr);
  EXPECT_EQ(text[0].rd, 31);
  EXPECT_EQ(text[0].rs, 25);
}

TEST(AsmSections, DataBeforeTextAndInterleaved) {
  const Program p = assemble(R"(
        .data
a:      .word 1
        .text
main:   nop
        .data
b:      .word 2
        .text
more:   nop
)");
  EXPECT_EQ(p.symbol("a") + 4, p.symbol("b"));
  EXPECT_EQ(p.symbol("more"), p.symbol("main") + 4);
}

TEST(AsmSections, ExplicitSectionAddresses) {
  const Program p = assemble(R"(
        .text 0x00480000
main:   nop
        .data 0x10020000
v:      .word 5
)");
  EXPECT_EQ(p.entry, 0x00480000u);
  EXPECT_EQ(p.symbol("v"), 0x10020000u);
}

TEST(AsmOperands, CharLiteralsAndHexEverywhere) {
  auto text = text_of("main: li $t0, 'A'\n andi $t1, $t0, 0x0F\n sll $t2, $t1, 0x2\n");
  EXPECT_EQ(text[0].simm(), 'A');
  EXPECT_EQ(text[1].uimm(), 0x0Fu);
  EXPECT_EQ(text[2].shamt, 2);
}

TEST(AsmOperands, SymbolPlusOffsetInMemref) {
  // At the default data base the absolute address cannot fit a 16-bit
  // displacement from $zero — the assembler must reject it...
  EXPECT_THROW(assemble(R"(
        .data
arr:    .word 10, 20, 30
        .text
main:   lw $t0, arr+8($zero)
)"),
               AsmError);
  // ...but with a low data section the same form is legal and resolves.
  const Program p = assemble(R"(
        .data 0x1000
arr:    .word 10, 20, 30
        .text
main:   lw $t0, arr+8($zero)
)");
  const auto& text = p.segments[0];
  const uint32_t word = static_cast<uint32_t>(text.bytes[0]) |
                        (static_cast<uint32_t>(text.bytes[1]) << 8) |
                        (static_cast<uint32_t>(text.bytes[2]) << 16) |
                        (static_cast<uint32_t>(text.bytes[3]) << 24);
  EXPECT_EQ(isa::decode(word).simm(), 0x1008);
}

TEST(AsmErrors, TheLongTail) {
  EXPECT_THROW(assemble("main: lui $t0, 0x10000\n"), AsmError);       // lui range
  EXPECT_THROW(assemble("main: li\n"), AsmError);                     // no operands
  EXPECT_THROW(assemble("main: addu $t0, $t1, 5\n"), AsmError);       // reg expected
  EXPECT_THROW(assemble("main: lw $t0, 4($t1\n"), AsmError);          // missing ')'
  EXPECT_THROW(assemble("main: beq $t0, $t1, 3\n"), AsmError);        // unaligned target
  EXPECT_THROW(assemble("main: subiu $t0, $t1, -32768\n"), AsmError); // negated overflow
}

TEST(AsmErrors, ColumnsInMessages) {
  try {
    assemble("main: nop\n bogus_mnemonic $t0\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AsmLayout, AlignPadsWithZeros) {
  const Program p = assemble(R"(
        .data
a:      .byte 1
        .align 3
b:      .word 2
        .text
main:   nop
)");
  EXPECT_EQ(p.symbol("b") % 8, 0u);
  mem::Memory m;
  p.load_into(m);
  EXPECT_EQ(m.read8(p.symbol("a") + 1), 0u);  // padding is zero
}

TEST(AsmLayout, HalfAndWordAutoAlign) {
  const Program p = assemble(R"(
        .data
a:      .byte 1
h:      .half 2
        .byte 3
w:      .word 4
        .text
main:   nop
)");
  EXPECT_EQ(p.symbol("h") % 2, 0u);
  EXPECT_EQ(p.symbol("w") % 4, 0u);
}

TEST(AsmStrings, AsciiVsAsciiz) {
  const Program p = assemble(R"(
        .data
a:      .ascii "ab"
b:      .asciiz "cd"
c:      .byte 9
        .text
main:   nop
)");
  EXPECT_EQ(p.symbol("b") - p.symbol("a"), 2u);  // no NUL after .ascii
  EXPECT_EQ(p.symbol("c") - p.symbol("b"), 3u);  // NUL after .asciiz
}

}  // namespace
}  // namespace dim::asmblr
