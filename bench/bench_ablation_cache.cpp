// Ablation: reconfiguration-cache capacity. Our kernel-sized workloads
// saturate above ~16 slots (the paper's full binaries saturate above 256),
// so this sweep exposes the FIFO capacity effect in the 1..16 range and
// reports the working-set size (distinct configurations) per benchmark.
//
// Runs as one SweepEngine grid: per workload, the slot sweep plus the two
// stats-only points (4 and 512 slots) used for the eviction/working-set
// columns. Flags: --threads N, --json PATH (see bench_util.hpp).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main(int argc, char** argv) {
  const SweepCli cli = parse_sweep_cli(argc, argv);
  const size_t slot_counts[] = {1, 2, 4, 8, 16, 64, 256};
  const auto workloads = prepare_all();

  // Per workload: one point per slot count, then the 4-slot and 512-slot
  // probes for the eviction/working-set columns.
  std::vector<accel::SweepPoint> grid;
  for (const auto& p : workloads) {
    for (size_t slots : slot_counts) {
      grid.push_back(point_of(p, p.workload.name + "/slots" + std::to_string(slots),
                              accel::SystemConfig::with(rra::ArrayShape::config2(), slots, true)));
    }
    grid.push_back(point_of(p, p.workload.name + "/evict4",
                            accel::SystemConfig::with(rra::ArrayShape::config2(), 4, true)));
    grid.push_back(point_of(p, p.workload.name + "/wset512",
                            accel::SystemConfig::with(rra::ArrayShape::config2(), 512, true)));
  }

  const auto results = run_sweep(std::move(grid), cli);
  maybe_write_json(cli, results);
  if (cli.points != 0) return 0;  // smoke mode: truncated grid, no tables

  const size_t stride = std::size(slot_counts) + 2;

  std::printf("Ablation - reconfiguration cache slots (C#2, speculation)\n\n");
  std::printf("%-16s", "Algorithm");
  for (size_t s : slot_counts) std::printf(" %7zu", s);
  std::printf("  configs evictions(4)\n");

  std::vector<double> avg(std::size(slot_counts), 0.0);
  for (size_t w = 0; w < workloads.size(); ++w) {
    const size_t base = w * stride;
    std::printf("%-16s", workloads[w].workload.display.c_str());
    for (size_t i = 0; i < std::size(slot_counts); ++i) {
      const double s = results[base + i].speedup();
      avg[i] += s;
      std::printf(" %7.2f", s);
    }
    const accel::AccelStats& st4 = results[base + std::size(slot_counts)].accelerated;
    const accel::AccelStats& stbig = results[base + std::size(slot_counts) + 1].accelerated;
    std::printf("  %7llu %7llu\n", static_cast<unsigned long long>(stbig.rcache_insertions),
                static_cast<unsigned long long>(st4.rcache_evictions));
  }
  std::printf("%-16s", "Average");
  for (size_t i = 0; i < std::size(slot_counts); ++i) {
    std::printf(" %7.2f", avg[i] / static_cast<double>(workloads.size()));
  }
  std::printf("\n\nShape to verify: speedup generally grows then saturates with slots (an\n"
              "eviction can occasionally help by forcing a better re-translation); the\n"
              "paper's Table 2 shows the same saturation, just at larger sizes\n"
              "because full MiBench binaries have bigger code footprints.\n");
  return 0;
}
