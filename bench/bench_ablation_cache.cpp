// Ablation: reconfiguration-cache capacity. Our kernel-sized workloads
// saturate above ~16 slots (the paper's full binaries saturate above 256),
// so this sweep exposes the FIFO capacity effect in the 1..16 range and
// reports the working-set size (distinct configurations) per benchmark.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const size_t slot_counts[] = {1, 2, 4, 8, 16, 64, 256};
  const auto workloads = prepare_all();

  std::printf("Ablation - reconfiguration cache slots (C#2, speculation)\n\n");
  std::printf("%-16s", "Algorithm");
  for (size_t s : slot_counts) std::printf(" %7zu", s);
  std::printf("  configs evictions(4)\n");

  std::vector<double> avg(std::size(slot_counts), 0.0);
  for (const auto& p : workloads) {
    std::printf("%-16s", p.workload.display.c_str());
    size_t i = 0;
    for (size_t slots : slot_counts) {
      const double s =
          speedup_of(p, accel::SystemConfig::with(rra::ArrayShape::config2(), slots, true));
      avg[i++] += s;
      std::printf(" %7.2f", s);
    }
    // Working set + eviction pressure at 4 slots.
    const auto st4 = accel::run_accelerated(
        p.program, accel::SystemConfig::with(rra::ArrayShape::config2(), 4, true));
    const auto stbig = accel::run_accelerated(
        p.program, accel::SystemConfig::with(rra::ArrayShape::config2(), 512, true));
    std::printf("  %7llu %7llu\n", static_cast<unsigned long long>(stbig.rcache_insertions),
                static_cast<unsigned long long>(st4.rcache_evictions));
  }
  std::printf("%-16s", "Average");
  for (size_t i = 0; i < std::size(slot_counts); ++i) {
    std::printf(" %7.2f", avg[i] / static_cast<double>(workloads.size()));
  }
  std::printf("\n\nShape to verify: speedup generally grows then saturates with slots (an\n"
              "eviction can occasionally help by forcing a better re-translation); the\n"
              "paper's Table 2 shows the same saturation, just at larger sizes\n"
              "because full MiBench binaries have bigger code footprints.\n");
  return 0;
}
