// Pins the cycle savings of reconfiguration-cache warm-start files
// (snap/warmstart.hpp): every workload is run cold, its translated
// configurations are exported, and a second system preloads them before
// running. The warm run must be architecturally identical to the cold run
// (same output, registers, memory image, instruction count — transparency
// is non-negotiable) and must still beat the plain-MIPS baseline. Per
// workload the saving is usually positive (the first-iteration detection
// misses are gone) but may dip slightly negative: a preloaded sequence
// dispatches on its very first encounter, and for a rarely-reused
// sequence that one array trip can cost a few cycles more than the
// pipeline run it replaces. The pin is on the average saving, which must
// not be negative.
//
// Flags: --dir PATH   directory for the .warm files (default: a fresh
//                     directory under the system temp path; kept so the
//                     files can be inspected with dimsim-analyze)
//        --json PATH  write the per-workload savings table as JSON
//                     (BENCH_warmstart.json; deterministic, diffable with
//                     tools/bench_diff.py)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"
#include "snap/warmstart.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

// Deterministic double formatting for the JSON artifact.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) dir = argv[++i];
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "dimsim-warmstart").string();
  }
  std::filesystem::create_directories(dir);

  // The headline Table 2 setting: configuration #3, 64 slots, speculation.
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config3(), 64, true);

  std::printf("warm-start at C#3 / 64 slots / speculation (files in %s)\n\n", dir.c_str());
  std::printf("%-16s %12s %12s %8s %7s %9s %9s %9s\n", "Algorithm", "cold cyc",
              "warm cyc", "saved", "preload", "cold miss", "warm miss", "warm ins");

  double total_saved = 0.0;
  int n = 0;
  std::string json_rows;
  for (const PreparedWorkload& p : prepare_all()) {
    accel::AcceleratedSystem cold(p.program, cfg);
    const accel::AccelStats cold_stats = cold.run();
    const std::string path = dir + "/" + p.workload.name + ".warm";
    snap::save_warm_start_file(path, cold, p.program);

    accel::AcceleratedSystem warm_sys(p.program, cfg);
    const size_t preloaded = snap::load_warm_start_file(warm_sys, path, p.program);
    const accel::AccelStats warm_stats = warm_sys.run();

    // Transparency: the warm run retires the same work to the same state.
    const bool same =
        warm_stats.final_state.output == cold_stats.final_state.output &&
        warm_stats.memory_hash == cold_stats.memory_hash &&
        warm_stats.instructions == cold_stats.instructions &&
        warm_stats.final_state.output == p.baseline.final_state.output &&
        warm_stats.memory_hash == p.baseline.memory_hash;
    if (!same || warm_stats.cycles > p.baseline.cycles) {
      std::fprintf(stderr,
                   "WARM-START VIOLATION in %s: arch identical=%d, baseline "
                   "cyc=%llu, cold cyc=%llu, warm cyc=%llu\n",
                   p.workload.name.c_str(), same ? 1 : 0,
                   static_cast<unsigned long long>(p.baseline.cycles),
                   static_cast<unsigned long long>(cold_stats.cycles),
                   static_cast<unsigned long long>(warm_stats.cycles));
      return 1;
    }

    const double saved = 100.0 *
                         (static_cast<double>(cold_stats.cycles) -
                          static_cast<double>(warm_stats.cycles)) /
                         static_cast<double>(cold_stats.cycles);
    total_saved += saved;
    ++n;
    if (!json_path.empty()) {
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += "    {\"name\": \"" + p.workload.name +
                   "\", \"cold_cycles\": " + std::to_string(cold_stats.cycles) +
                   ", \"warm_cycles\": " + std::to_string(warm_stats.cycles) +
                   ", \"preloaded\": " + std::to_string(preloaded) +
                   ", \"savings_pct\": " + num(saved) + "}";
    }
    std::printf("%-16s %12llu %12llu %7.2f%% %7zu %9llu %9llu %9llu\n",
                p.workload.display.c_str(),
                static_cast<unsigned long long>(cold_stats.cycles),
                static_cast<unsigned long long>(warm_stats.cycles), saved,
                preloaded, static_cast<unsigned long long>(cold_stats.rcache_misses),
                static_cast<unsigned long long>(warm_stats.rcache_misses),
                static_cast<unsigned long long>(warm_stats.rcache_insertions));
  }
  const double average = n > 0 ? total_saved / n : 0.0;
  std::printf("\n%-16s %52.2f%%\n", "Average saved", average);
  if (average < 0.0) {
    std::fprintf(stderr, "WARM-START REGRESSION: average saving is negative\n");
    return 1;
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"warmstart\",\n"
        << "  \"system\": {\"shape\": \"config3\", \"cache_slots\": 64, "
           "\"speculation\": true},\n"
        << "  \"average_savings_pct\": " << num(average) << ",\n"
        << "  \"workloads\": [\n" << json_rows << "\n  ]\n}\n";
    std::printf("warm-start JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
