// Ablation: ALU row chaining. The paper states several simple-arithmetic
// rows execute within one processor-equivalent cycle; this sweep shows how
// much of the speedup depends on that chaining depth, and on the
// multiplier/memory row costs.
//
// Both sections run as one SweepEngine grid. Flags: --threads N,
// --json PATH (see bench_util.hpp).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main(int argc, char** argv) {
  const SweepCli cli = parse_sweep_cli(argc, argv);
  const auto workloads = prepare_all();
  const int row_settings[] = {1, 2, 3, 4, 6};
  const int mul_settings[] = {1, 2, 4};

  // One grid: the rows/cycle section first, then the multiplier-cost
  // section, each workload-major so means are a contiguous slice.
  std::vector<accel::SweepPoint> grid;
  for (int rows : row_settings) {
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.alu_rows_per_cycle = rows;
      grid.push_back(point_of(p, p.workload.name + "/rows" + std::to_string(rows), cfg));
    }
  }
  for (int mul : mul_settings) {
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.mul_row_cycles = mul;
      grid.push_back(point_of(p, p.workload.name + "/mul" + std::to_string(mul), cfg));
    }
  }

  const auto results = run_sweep(std::move(grid), cli);
  maybe_write_json(cli, results);
  if (cli.points != 0) return 0;  // smoke mode: truncated grid, no tables

  const size_t n = workloads.size();
  const auto mean_slice = [&](size_t first) {
    std::vector<double> speedups;
    for (size_t i = 0; i < n; ++i) speedups.push_back(results[first + i].speedup());
    return mean(speedups);
  };

  std::printf("Ablation - ALU rows chained per cycle (C#2, 64 slots, speculation)\n");
  std::printf("%-12s %10s\n", "rows/cycle", "avg speedup");
  for (size_t r = 0; r < std::size(row_settings); ++r) {
    std::printf("%-12d %10.2f%s\n", row_settings[r], mean_slice(r * n),
                row_settings[r] == 3 ? "   <- paper setting" : "");
  }

  const size_t mul_base = std::size(row_settings) * n;
  std::printf("\nAblation - multiplier row cost (cycles per multiply row)\n");
  std::printf("%-12s %10s\n", "mul cycles", "avg speedup");
  for (size_t m = 0; m < std::size(mul_settings); ++m) {
    std::printf("%-12d %10.2f\n", mul_settings[m], mean_slice(mul_base + m * n));
  }
  return 0;
}
