// Ablation: ALU row chaining. The paper states several simple-arithmetic
// rows execute within one processor-equivalent cycle; this sweep shows how
// much of the speedup depends on that chaining depth, and on the
// multiplier/memory row costs.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Ablation - ALU rows chained per cycle (C#2, 64 slots, speculation)\n");
  std::printf("%-12s %10s\n", "rows/cycle", "avg speedup");
  for (int rows : {1, 2, 3, 4, 6}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.alu_rows_per_cycle = rows;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f%s\n", rows, mean(speedups), rows == 3 ? "   <- paper setting" : "");
  }

  std::printf("\nAblation - multiplier row cost (cycles per multiply row)\n");
  std::printf("%-12s %10s\n", "mul cycles", "avg speedup");
  for (int mul : {1, 2, 4}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.mul_row_cycles = mul;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", mul, mean(speedups));
  }
  return 0;
}
