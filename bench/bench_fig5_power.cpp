// Reproduces paper Figure 5: average power per cycle, broken down by
// component (core, instruction memory, data memory, array+cache, DIM), for
// the most dataflow (Rijndael E.), most control-flow (RawAudio D.) and
// mid-term (JPEG E.) programs, at configurations #1 and #3 with 64 slots,
// with and without speculation, against the standalone MIPS.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "power/power_model.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

void print_row(const char* label, const power::EnergyBreakdown& b) {
  std::printf("%-24s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f | %8.3f\n", label, b.core, b.imem,
              b.dmem, b.array, b.rcache, b.bt, b.total());
}

}  // namespace

int main() {
  std::printf("Figure 5 - power per cycle (nJ/cycle), component breakdown\n");
  std::printf("(64 reconfiguration-cache slots)\n\n");

  for (const char* name : {"rijndael_e", "rawaudio_d", "jpeg_e"}) {
    const PreparedWorkload p = prepare(name);
    std::printf("=== %s ===\n", p.workload.display.c_str());
    std::printf("%-24s %8s %8s %8s %8s %8s %8s | %8s\n", "", "core", "imem", "dmem", "array",
                "rcache", "BT", "total");
    print_row("MIPS standalone", power::compute_power_per_cycle(p.baseline, 0));

    for (int c : {0, 2}) {
      const rra::ArrayShape shape =
          c == 0 ? rra::ArrayShape::config1() : rra::ArrayShape::config3();
      for (int spec = 0; spec < 2; ++spec) {
        const auto st =
            accel::run_accelerated(p.program, accel::SystemConfig::with(shape, 64, spec == 1));
        char label[64];
        std::snprintf(label, sizeof label, "C#%d %s", c + 1, spec ? "spec" : "no-spec");
        print_row(label, power::compute_power_per_cycle(st, 64));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Shape to verify (paper): MIPS+array draws slightly MORE power per cycle\n"
      "in the core (BT hardware, array, cache) but much less in instruction\n"
      "memory, since translated instructions are never fetched again.\n");
  return 0;
}
