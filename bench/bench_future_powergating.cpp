// Paper future work, quantified: "techniques to switch off functional
// units when they are being not used". Sweeps the gating efficiency of the
// array's idle static/clock energy and reports the resulting total-energy
// ratio vs the standalone MIPS.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "power/power_model.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Future work - idle functional-unit power gating (C#2, 64 slots, spec)\n\n");
  std::printf("%-18s %16s %18s\n", "gating efficiency", "avg energy ratio", "avg array share");
  for (double gating : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<double> ratios, shares;
    for (const auto& p : workloads) {
      const auto st = accel::run_accelerated(
          p.program, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
      power::EnergyParams params;
      params.power_gating_efficiency = gating;
      const auto e = power::compute_energy(st, 64, params);
      const auto base = power::compute_energy(p.baseline, 0, params);
      ratios.push_back(base.total() / e.total());
      shares.push_back(e.array / e.total());
    }
    std::printf("%-18.2f %15.2fx %17.1f%%%s\n", gating, mean(ratios), 100.0 * mean(shares),
                gating == 0.0 ? "   <- paper's evaluated system" : "");
  }
  std::printf(
      "\nShape to verify: gating monotonically improves the energy ratio; the\n"
      "idle-array share of total energy is what the paper's future work aims\n"
      "to reclaim.\n");
  return 0;
}
