// bench_serve_load: latency/throughput of the dimsim-serve batching daemon.
//
// Replays a fixed, deterministic request mix (sweeps, plain runs, budgeted
// runs, warm runs) through a serve::Server twice — a cold pass that fills
// the resident result store and a warm pass that must be served from it —
// and reports per-request latency percentiles and sweep-cell throughput
// for both. The warm pass asserts the store counters moved by zero stores
// and zero misses: repeated requests re-simulate nothing.
//
// Modes:
//   (default)        in-process server, workers from --workers
//   --procs LIST     multi-process scaling mode: for each N in LIST (e.g.
//                    1,2,4) run the stream through an in-process
//                    serve::Supervisor with N forked workers and a fresh
//                    store, compare every response byte-for-byte against
//                    a single-process reference, and report per-topology
//                    p50/p99/throughput (warm requests are excluded from
//                    this stream: concurrent warm exports on different
//                    workers would make warm_exported/warm_preloaded
//                    order-dependent)
//   --connect PATH   drive an already-running dimsim-serve over its socket
//   --check FILE     also dump every response line (stats excluded) to
//                    FILE; diffing two dumps pins byte-determinism across
//                    worker counts / daemon restarts (CI serve job)
//   --check-pass P   which passes the dump covers: cold|warm|both
//                    (default both). Fresh-store daemons compare `both`;
//                    a restart comparison uses `warm`, because the first
//                    pass after a restart finds the persisted caches warm
//                    (warm_preloaded where the fresh daemon said
//                    warm_exported) while warm passes match bytewise.
//
// Other flags: --requests N (default 30), --workers N, --store DIR
// (default: a store under /tmp so the warm pass has something to hit),
// --json PATH (BENCH_serve.json artifact).
#include <algorithm>
#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "serve/transport.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  size_t requests = 30;
  unsigned workers = 0;
  std::string store_dir;
  std::string json_path;
  std::string check_path;
  std::string check_pass = "both";
  std::string connect_path;
  std::vector<int> procs;  // multi-process scaling mode when non-empty
};

// One request of the replayed stream plus how many grid cells it costs.
struct StreamEntry {
  std::string line;
  size_t cells = 1;
};

// Deterministic mix: half sweeps over two fast workloads, the rest plain,
// budgeted and warm-started runs. Ids are stable ("q<i>") so two replays
// of the stream produce byte-identical response dumps.
std::vector<StreamEntry> build_stream(size_t n, bool allow_warm = true) {
  std::vector<StreamEntry> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* workload = (i % 2 == 0) ? "crc32" : "bitcount";
    StreamEntry e;
    const std::string id = "\"id\": \"q" + std::to_string(i) + "\"";
    switch (i % 10) {
      case 0: case 1: case 2: case 3: case 4: {
        const bool both_shapes = i % 4 < 2;
        e.line = "{" + id + ", \"kind\": \"sweep\", \"workload\": \"" + workload +
                 "\", \"shapes\": [\"config1\"" +
                 (both_shapes ? std::string(", \"config2\"") : std::string()) +
                 "], \"slots_axis\": [16, 64]}";
        e.cells = both_shapes ? 4 : 2;
        break;
      }
      case 5: case 6: case 7:
        e.line = "{" + id + ", \"kind\": \"run\", \"workload\": \"" + workload + "\"}";
        break;
      case 8:
        e.line = "{" + id + ", \"kind\": \"run\", \"workload\": \"" + workload +
                 "\", \"budget\": 100000}";
        break;
      default:
        // Warm runs are order-sensitive across worker processes; the
        // multi-process stream swaps them for budgeted runs instead.
        e.line = allow_warm
                     ? "{" + id + ", \"kind\": \"run\", \"workload\": \"" +
                           workload + "\", \"warm\": true}"
                     : "{" + id + ", \"kind\": \"run\", \"workload\": \"" +
                           workload + "\", \"budget\": 200000}";
        break;
    }
    stream.push_back(std::move(e));
  }
  return stream;
}

struct PassResult {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cells_per_sec = 0;
  std::vector<std::string> responses;  // admission order
};

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(sorted_ms.size() - 1,
                              static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

void finish_pass(PassResult& pass, const std::vector<Clock::time_point>& sent,
                 const std::vector<Clock::time_point>& received,
                 Clock::time_point t0, size_t cells) {
  pass.seconds = dim::bench::seconds_since(t0);
  std::vector<double> lat;
  lat.reserve(sent.size());
  for (size_t i = 0; i < sent.size() && i < received.size(); ++i) {
    lat.push_back(std::chrono::duration<double, std::milli>(received[i] - sent[i]).count());
  }
  std::sort(lat.begin(), lat.end());
  pass.p50_ms = percentile(lat, 0.50);
  pass.p99_ms = percentile(lat, 0.99);
  pass.cells_per_sec =
      pass.seconds > 0 ? static_cast<double>(cells) / pass.seconds : 0;
}

// All requests are submitted up front (the pipelined-client shape that
// actually exercises batching); latency is submit-to-response per request.
PassResult run_pass_inprocess(dim::serve::SessionHost& server,
                              const std::vector<StreamEntry>& stream) {
  PassResult pass;
  std::mutex mutex;
  std::vector<Clock::time_point> received;
  auto session = server.open_session([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    received.push_back(Clock::now());
    pass.responses.push_back(line);
  });
  size_t cells = 0;
  std::vector<Clock::time_point> sent;
  sent.reserve(stream.size());
  const Clock::time_point t0 = Clock::now();
  for (const StreamEntry& e : stream) {
    sent.push_back(Clock::now());
    session->submit(e.line);
    cells += e.cells;
  }
  session->drain();
  finish_pass(pass, sent, received, t0, cells);
  return pass;
}

PassResult run_pass_socket(dim::serve::UnixSocketClient& client,
                           const std::vector<StreamEntry>& stream) {
  PassResult pass;
  size_t cells = 0;
  std::vector<Clock::time_point> sent;
  std::vector<Clock::time_point> received;
  const Clock::time_point t0 = Clock::now();
  for (const StreamEntry& e : stream) {
    sent.push_back(Clock::now());
    if (!client.send_line(e.line)) {
      std::fprintf(stderr, "send failed\n");
      std::exit(1);
    }
    cells += e.cells;
  }
  std::string line;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!client.recv_line(line)) {
      std::fprintf(stderr, "connection closed after %zu responses\n", i);
      std::exit(1);
    }
    received.push_back(Clock::now());
    pass.responses.push_back(line + "\n");
  }
  finish_pass(pass, sent, received, t0, cells);
  return pass;
}

// Store counters via the protocol (works both in-process and over the
// socket): send a stats request and pull the store object out of the
// response.
struct StoreCounters {
  bool present = false;
  uint64_t misses = 0;
  uint64_t stores = 0;
};

StoreCounters parse_store_counters(const std::string& response) {
  StoreCounters c;
  const dim::serve::JsonValue doc = dim::serve::parse_json(response);
  if (const dim::serve::JsonValue* store = doc.get("store")) {
    c.present = true;
    if (const auto* v = store->get("misses")) c.misses = v->as_u64();
    if (const auto* v = store->get("stores")) c.stores = v->as_u64();
  }
  return c;
}

StoreCounters query_stats_inprocess(dim::serve::SessionHost& server) {
  std::string response;
  std::mutex mutex;
  auto session = server.open_session([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    response = line;
  });
  session->submit("{\"id\": \"stats\", \"kind\": \"stats\"}");
  session->drain();
  return parse_store_counters(response);
}

StoreCounters query_stats_socket(dim::serve::UnixSocketClient& client) {
  if (!client.send_line("{\"id\": \"stats\", \"kind\": \"stats\"}")) std::exit(1);
  std::string line;
  if (!client.recv_line(line)) std::exit(1);
  return parse_store_counters(line);
}

void dump_check(const std::string& path, const std::vector<PassResult>& passes) {
  std::ofstream out(path);
  for (const PassResult& pass : passes) {
    for (const std::string& line : pass.responses) {
      if (line.find("\"kind\": \"stats\"") != std::string::npos) continue;
      out << line;
    }
  }
}

void write_pass_json(std::ofstream& out, const char* name, const PassResult& p) {
  out << "  \"" << name << "\": {\"seconds\": " << p.seconds
      << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
      << ", \"cells_per_sec\": " << p.cells_per_sec << "}";
}

// Multi-process scaling: one pass per worker count, each against a fresh
// store, plus a single-process reference pass. Every topology must return
// byte-identical responses — that is the whole point of the exercise.
int run_procs_mode(const Options& opt) {
  const std::vector<StreamEntry> stream =
      build_stream(opt.requests, /*allow_warm=*/false);
  size_t total_cells = 0;
  for (const StreamEntry& e : stream) total_cells += e.cells;

  const std::string store_base = opt.store_dir.empty()
                                     ? std::string("/tmp/dimsim-bench-serve-procs")
                                     : opt.store_dir;

  const std::string ref_store = store_base + "-ref";
  std::filesystem::remove_all(ref_store);
  PassResult reference;
  {
    dim::serve::ServerOptions server_opt;
    server_opt.worker_threads = opt.workers;
    server_opt.store_dir = ref_store;
    dim::serve::Server server(server_opt);
    reference = run_pass_inprocess(server, stream);
    server.shutdown();
  }

  struct Topology {
    int procs;
    PassResult pass;
  };
  std::vector<Topology> topologies;
  bool identical = true;
  for (const int procs : opt.procs) {
    const std::string store = store_base + "-p" + std::to_string(procs);
    std::filesystem::remove_all(store);
    dim::serve::SupervisorOptions sup;
    sup.workers = procs;
    sup.store_dir = store;
    sup.engine_threads = opt.workers;
    dim::serve::Supervisor supervisor(sup);
    Topology t{procs, run_pass_inprocess(supervisor, stream)};
    supervisor.shutdown();
    if (t.pass.responses != reference.responses) {
      identical = false;
      std::fprintf(stderr, "RESPONSE BYTES DIVERGED at procs=%d\n", procs);
    }
    topologies.push_back(std::move(t));
  }

  std::printf("serve load (multi-process): %zu requests (%zu cells)\n",
              stream.size(), total_cells);
  std::printf("  reference (1 process): %.2fs  p50 %.2fms  p99 %.2fms  %.1f cells/s\n",
              reference.seconds, reference.p50_ms, reference.p99_ms,
              reference.cells_per_sec);
  for (const Topology& t : topologies) {
    std::printf("  procs=%d: %.2fs  p50 %.2fms  p99 %.2fms  %.1f cells/s\n",
                t.procs, t.pass.seconds, t.pass.p50_ms, t.pass.p99_ms,
                t.pass.cells_per_sec);
  }
  std::printf("  response bytes identical across topologies: %s\n",
              identical ? "yes" : "NO");

  if (!opt.check_path.empty()) {
    std::vector<PassResult> dump;
    for (const Topology& t : topologies) dump.push_back(t.pass);
    dump_check(opt.check_path, dump);
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << "{\n  \"bench\": \"serve_load\", \"mode\": \"procs\", \"requests\": "
        << stream.size() << ", \"cells\": " << total_cells
        << ", \"host_cpus\": " << std::thread::hardware_concurrency()
        << ", \"byte_identical\": " << (identical ? "true" : "false")
        << ",\n";
    write_pass_json(out, "reference", reference);
    out << ",\n  \"topologies\": [";
    for (size_t i = 0; i < topologies.size(); ++i) {
      const Topology& t = topologies[i];
      out << (i == 0 ? "" : ", ") << "{\"procs\": " << t.procs
          << ", \"seconds\": " << t.pass.seconds
          << ", \"p50_ms\": " << t.pass.p50_ms
          << ", \"p99_ms\": " << t.pass.p99_ms
          << ", \"cells_per_sec\": " << t.pass.cells_per_sec << "}";
    }
    out << "]\n}\n";
    std::printf("bench JSON written to %s\n", opt.json_path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--requests") opt.requests = std::strtoul(value(), nullptr, 10);
    else if (arg == "--workers") opt.workers = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    else if (arg == "--store") opt.store_dir = value();
    else if (arg == "--json") opt.json_path = value();
    else if (arg == "--check") opt.check_path = value();
    else if (arg == "--check-pass") opt.check_pass = value();
    else if (arg == "--connect") opt.connect_path = value();
    else if (arg == "--procs") {
      std::string list = value();
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma == std::string::npos
                                                     ? std::string::npos
                                                     : comma - pos);
        const long n = std::strtol(tok.c_str(), nullptr, 10);
        if (n < 1 || n > 64) {
          std::fprintf(stderr, "--procs entries must be in [1, 64]\n");
          return 2;
        }
        opt.procs.push_back(static_cast<int>(n));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (opt.check_pass != "cold" && opt.check_pass != "warm" &&
      opt.check_pass != "both") {
    std::fprintf(stderr, "--check-pass must be cold|warm|both\n");
    return 2;
  }

  if (!opt.procs.empty()) return run_procs_mode(opt);

  const std::vector<StreamEntry> stream = build_stream(opt.requests);
  size_t total_cells = 0;
  for (const StreamEntry& e : stream) total_cells += e.cells;

  PassResult cold;
  PassResult warm;
  StoreCounters before_warm;
  StoreCounters after_warm;

  if (!opt.connect_path.empty()) {
    dim::serve::UnixSocketClient client;
    std::string error;
    if (!client.connect(opt.connect_path, &error)) {
      std::fprintf(stderr, "bench_serve_load: %s\n", error.c_str());
      return 1;
    }
    cold = run_pass_socket(client, stream);
    before_warm = query_stats_socket(client);
    warm = run_pass_socket(client, stream);
    after_warm = query_stats_socket(client);
  } else {
    if (opt.store_dir.empty()) {
      opt.store_dir = "/tmp/dimsim-bench-serve-store";
      std::filesystem::remove_all(opt.store_dir);
    }
    dim::serve::ServerOptions server_opt;
    server_opt.worker_threads = opt.workers;
    server_opt.store_dir = opt.store_dir;
    dim::serve::Server server(server_opt);
    cold = run_pass_inprocess(server, stream);
    before_warm = query_stats_inprocess(server);
    warm = run_pass_inprocess(server, stream);
    after_warm = query_stats_inprocess(server);
    server.shutdown();
  }

  // The warm pass must be served from the resident store: no cell was
  // recomputed (zero misses) and nothing new was written (zero stores).
  if (before_warm.present &&
      (after_warm.misses != before_warm.misses ||
       after_warm.stores != before_warm.stores)) {
    std::fprintf(stderr,
                 "WARM PASS RE-SIMULATED: misses %llu -> %llu, stores %llu -> %llu\n",
                 static_cast<unsigned long long>(before_warm.misses),
                 static_cast<unsigned long long>(after_warm.misses),
                 static_cast<unsigned long long>(before_warm.stores),
                 static_cast<unsigned long long>(after_warm.stores));
    return 1;
  }

  if (!opt.check_path.empty()) {
    std::vector<PassResult> dump;
    if (opt.check_pass != "warm") dump.push_back(cold);
    if (opt.check_pass != "cold") dump.push_back(warm);
    dump_check(opt.check_path, dump);
  }

  std::printf("serve load: %zu requests (%zu cells), workers=%u\n",
              stream.size(), total_cells, opt.workers);
  std::printf("  cold: %.2fs  p50 %.2fms  p99 %.2fms  %.1f cells/s\n",
              cold.seconds, cold.p50_ms, cold.p99_ms, cold.cells_per_sec);
  std::printf("  warm: %.2fs  p50 %.2fms  p99 %.2fms  %.1f cells/s\n",
              warm.seconds, warm.p50_ms, warm.p99_ms, warm.cells_per_sec);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << "{\n  \"bench\": \"serve_load\", \"requests\": " << stream.size()
        << ", \"cells\": " << total_cells << ", \"workers\": " << opt.workers
        << ",\n";
    write_pass_json(out, "cold", cold);
    out << ",\n";
    write_pass_json(out, "warm", warm);
    out << ",\n  \"warm_store_misses_delta\": "
        << (after_warm.misses - before_warm.misses)
        << ", \"warm_store_stores_delta\": "
        << (after_warm.stores - before_warm.stores) << "\n}\n";
    std::printf("bench JSON written to %s\n", opt.json_path.c_str());
  }
  return 0;
}
