// Memory-hierarchy sensitivity (paper §4.3: "the operations that depend on
// the result of a load are allocated considering a cache hit as the total
// load delay. Then, if a miss occurs, the whole array operation stops until
// the miss is resolved"). Enables the I/D cache models and sweeps the miss
// penalty: the array's advantage must persist because baseline and array
// pay the same misses, while the array still removes issue slots.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Memory sensitivity - D-cache miss penalty sweep (C#2, 64 slots, spec)\n");
  std::printf("(8 KiB direct-mapped D-cache, 32-byte lines; perfect I-cache)\n\n");
  std::printf("%-14s %12s %14s\n", "miss penalty", "avg speedup", "avg dcache MPKI");
  for (uint32_t penalty : {0u, 10u, 20u, 50u, 100u}) {
    std::vector<double> speedups;
    double mpki_sum = 0;
    for (const auto& p : workloads) {
      sim::MachineConfig machine;
      machine.timing.dcache.enabled = penalty > 0;
      machine.timing.dcache.miss_penalty = penalty;
      const sim::RunResult base = sim::run_baseline(p.program, machine);

      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.machine = machine;
      const accel::AccelStats st = accel::run_accelerated(p.program, cfg);
      if (st.final_state.output != base.state.output) {
        std::fprintf(stderr, "TRANSPARENCY VIOLATION (%s)\n", p.workload.name.c_str());
        return 1;
      }
      speedups.push_back(static_cast<double>(base.cycles) / static_cast<double>(st.cycles));
      mpki_sum += 1000.0 * static_cast<double>(base.dcache_misses) /
                  static_cast<double>(base.instructions);
    }
    std::printf("%-14u %12.2f %14.2f\n", penalty, mean(speedups),
                mpki_sum / static_cast<double>(workloads.size()));
  }

  std::printf("\nI-cache sweep (baseline fetches every instruction; the array does not)\n");
  std::printf("%-14s %12s\n", "miss penalty", "avg speedup");
  for (uint32_t penalty : {0u, 10u, 30u}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      sim::MachineConfig machine;
      machine.timing.icache.enabled = penalty > 0;
      machine.timing.icache.size_bytes = 1024;  // deliberately small
      machine.timing.icache.miss_penalty = penalty;
      const sim::RunResult base = sim::run_baseline(p.program, machine);
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.machine = machine;
      const accel::AccelStats st = accel::run_accelerated(p.program, cfg);
      speedups.push_back(static_cast<double>(base.cycles) / static_cast<double>(st.cycles));
    }
    std::printf("%-14u %12.2f%s\n", penalty, mean(speedups),
                penalty > 0 ? "   (array-resident code pays no I-cache misses)" : "");
  }
  return 0;
}
