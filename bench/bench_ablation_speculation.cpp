// Ablation: the speculation policy — depth of speculative basic blocks,
// misspeculation penalty, and the flush rule (the paper flushes when the
// branch counter reaches the opposite saturation; a naive small misspec
// cap destroys loop configurations on every loop exit).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Ablation - speculative basic-block depth (C#2, 64 slots)\n");
  std::printf("%-12s %10s\n", "depth", "avg speedup");
  {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      speedups.push_back(speedup_of(p, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, false)));
    }
    std::printf("%-12s %10.2f\n", "off", mean(speedups));
  }
  for (int depth : {1, 2, 3, 5}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.max_spec_bbs = depth;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f%s\n", depth, mean(speedups),
                depth == 3 ? "   <- paper setting (up to three basic blocks)" : "");
  }

  std::printf("\nAblation - misspeculation flush policy\n");
  std::printf("%-24s %10s\n", "policy", "avg speedup");
  for (int threshold : {0, 1, 4, 16}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.misspec_flush_threshold = threshold;
      speedups.push_back(speedup_of(p, cfg));
    }
    char label[64];
    if (threshold == 0) {
      std::snprintf(label, sizeof label, "counter rule only");
    } else {
      std::snprintf(label, sizeof label, "counter + cap %d", threshold);
    }
    std::printf("%-24s %10.2f%s\n", label, mean(speedups),
                threshold == 0 ? "   <- paper rule" : "");
  }

  std::printf("\nAblation - misspeculation penalty (pipeline refill cycles)\n");
  std::printf("%-12s %10s\n", "penalty", "avg speedup");
  for (int penalty : {0, 2, 8, 32}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.misspec_penalty = penalty;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", penalty, mean(speedups));
  }
  return 0;
}
