// Ablation: the speculation policy — depth of speculative basic blocks,
// misspeculation penalty, the flush rule (the paper flushes when the
// branch counter reaches the opposite saturation; a naive small misspec
// cap destroys loop configurations on every loop exit) — and the
// control-flow ablation: speculation vs if-conversion (predication +
// loop residency) over the full workload set, exported as
// BENCH_ablation_controlflow.json via --json for tools/bench_diff.py.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

// The four control-flow policies: neither, speculation only (paper
// setting), if-conversion only, and both combined. Predication rides with
// loop residency — the two halves of the "keep the hot hammock loop on the
// array" story.
struct ControlFlowVariant {
  const char* name;
  bool speculation;
  bool predication;
};

constexpr ControlFlowVariant kVariants[] = {
    {"nospec", false, false},
    {"spec3", true, false},
    {"pred", false, true},
    {"spec3+pred", true, true},
};

accel::SystemConfig variant_config(const ControlFlowVariant& v) {
  accel::SystemConfig cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, v.speculation);
  cfg.predication = v.predication;
  if (v.predication) cfg.residency = accel::Residency::kLoop;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepCli cli = parse_sweep_cli(argc, argv);
  const auto workloads = prepare_all();

  std::printf("Ablation - speculative basic-block depth (C#2, 64 slots)\n");
  std::printf("%-12s %10s\n", "depth", "avg speedup");
  {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      speedups.push_back(speedup_of(p, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, false)));
    }
    std::printf("%-12s %10.2f\n", "off", mean(speedups));
  }
  for (int depth : {1, 2, 3, 5}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.max_spec_bbs = depth;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f%s\n", depth, mean(speedups),
                depth == 3 ? "   <- paper setting (up to three basic blocks)" : "");
  }

  std::printf("\nAblation - misspeculation flush policy\n");
  std::printf("%-24s %10s\n", "policy", "avg speedup");
  for (int threshold : {0, 1, 4, 16}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.misspec_flush_threshold = threshold;
      speedups.push_back(speedup_of(p, cfg));
    }
    char label[64];
    if (threshold == 0) {
      std::snprintf(label, sizeof label, "counter rule only");
    } else {
      std::snprintf(label, sizeof label, "counter + cap %d", threshold);
    }
    std::printf("%-24s %10.2f%s\n", label, mean(speedups),
                threshold == 0 ? "   <- paper rule" : "");
  }

  std::printf("\nAblation - misspeculation penalty (pipeline refill cycles)\n");
  std::printf("%-12s %10s\n", "penalty", "avg speedup");
  for (int penalty : {0, 2, 8, 32}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.misspec_penalty = penalty;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", penalty, mean(speedups));
  }

  // Control-flow ablation: speculation vs if-conversion. Run as one sweep
  // grid so --threads/--json apply; the committed artifact is produced by
  //   bench_ablation_speculation --json BENCH_ablation_controlflow.json
  // and diffed across revisions by tools/bench_diff.py.
  constexpr size_t kNumVariants = sizeof kVariants / sizeof kVariants[0];
  std::vector<accel::SweepPoint> points;
  for (const auto& p : workloads) {
    for (const auto& v : kVariants) {
      points.push_back(point_of(p, p.workload.name + "/" + v.name, variant_config(v)));
    }
  }
  const auto results = run_sweep(std::move(points), cli);

  std::printf("\nAblation - control flow: speculation vs if-conversion (C#2, 64 slots)\n");
  std::printf("%-16s", "workload");
  for (const auto& v : kVariants) std::printf(" %12s", v.name);
  std::printf("\n");
  std::vector<std::vector<double>> per_variant(kNumVariants);
  for (size_t w = 0; w * kNumVariants + kNumVariants <= results.size(); ++w) {
    std::printf("%-16s", workloads[w].workload.name.c_str());
    for (size_t v = 0; v < kNumVariants; ++v) {
      const double s = results[w * kNumVariants + v].speedup();
      per_variant[v].push_back(s);
      std::printf(" %12.2f", s);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "mean");
  for (size_t v = 0; v < kNumVariants; ++v) std::printf(" %12.2f", mean(per_variant[v]));
  std::printf("\n");

  maybe_write_json(cli, results);
  return 0;
}
