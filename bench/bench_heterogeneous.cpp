// The paper's motivating scenario (§5.1): "an embedded system runs RawAudio
// decoder, JPEG encoder and decoder, and the StringSearch" — ~45 basic
// blocks would need acceleration for a 2x speedup, so a shared, dynamically
// managed reconfiguration cache is essential.
//
// We emulate the multi-application device: the four applications are linked
// at disjoint addresses and executed in a round-robin of time slices, with
// ONE persistent reconfiguration cache shared across all of them (saved and
// restored between slices — the translation state survives task switches).
// Sweeping the slot count exposes the capacity pressure that a single
// kernel cannot: exactly the effect behind the slot columns of Table 2.
#include <cstdio>
#include <sstream>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"
#include "rra/config_io.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

struct App {
  std::string name;
  asmblr::Program program;
  uint64_t baseline_cycles = 0;
};

}  // namespace

int main() {
  // The paper's four-application mix, linked at disjoint bases so their
  // configurations compete honestly in one cache.
  const char* names[4] = {"rawaudio_d", "jpeg_e", "jpeg_d", "stringsearch"};
  std::vector<App> apps;
  uint32_t text_base = 0x00400000;
  uint32_t data_base = 0x10010000;
  for (const char* name : names) {
    const work::Workload wl = work::make_workload(name, 1);
    asmblr::AsmOptions options;
    options.text_base = text_base;
    options.data_base = data_base;
    text_base += 0x00100000;
    data_base += 0x00400000;
    App app;
    app.name = wl.display;
    app.program = asmblr::assemble(wl.source, options);
    app.baseline_cycles = accel::baseline_as_stats(app.program, sim::MachineConfig{}).cycles;
    apps.push_back(std::move(app));
  }

  std::printf("Heterogeneous device - 4 applications sharing one reconfiguration cache\n");
  std::printf("(RawAudio D. + JPEG E. + JPEG D. + Stringsearch, C#2, speculation,\n");
  std::printf(" 3 round-robin passes; translations persist across task switches)\n\n");
  std::printf("%-8s %18s %12s %12s\n", "slots", "aggregate speedup", "insertions", "evictions");

  for (size_t slots : {4u, 8u, 16u, 32u, 64u, 128u}) {
    uint64_t base_total = 0;
    uint64_t accel_total = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    std::string cache_image;

    const int passes = 3;
    for (int pass = 0; pass < passes; ++pass) {
      for (const App& app : apps) {
        accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), slots, true);
        accel::AcceleratedSystem system(app.program, cfg);
        if (!cache_image.empty()) {
          std::istringstream in(cache_image);
          rra::load_cache(in, system.rcache());
        }
        const accel::AccelStats st = system.run();
        std::ostringstream out;
        rra::save_cache(out, system.rcache());
        cache_image = out.str();

        base_total += app.baseline_cycles;
        accel_total += st.cycles;
        insertions += st.rcache_insertions;
        evictions += st.rcache_evictions;
      }
    }
    std::printf("%-8zu %17.2fx %12llu %12llu\n", slots,
                static_cast<double>(base_total) / static_cast<double>(accel_total),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions));
  }

  std::printf(
      "\nShape to verify: with few slots the four applications evict each\n"
      "other's configurations at every task switch (re-translation churn);\n"
      "enough slots keep every application resident — the paper's argument\n"
      "for sizing the cache to the whole workload mix, not a single kernel.\n");
  return 0;
}
