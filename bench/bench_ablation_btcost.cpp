// Ablation: what if binary translation were NOT free hardware? The paper's
// DIM runs in parallel with the pipeline ("do not introduce any delay
// overhead or penalties"); warp processing instead runs CAD software on a
// second core (the paper: "even if the CAD system used is very simplified,
// it requires significant resources"). Charging the processor N cycles per
// translated instruction emulates that spectrum — hardware DIM (0) through
// light-weight software DBT (~100) to CAD-style synthesis (~10k).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Ablation - translation cost (cycles per translated instruction)\n");
  std::printf("(C#2, 64 slots, speculation)\n\n");
  std::printf("%-14s %12s\n", "cost", "avg speedup");
  for (uint64_t cost : {0ull, 10ull, 100ull, 1000ull, 10000ull}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.translation_cost_per_instr = cost;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-14llu %11.2fx%s\n", static_cast<unsigned long long>(cost), mean(speedups),
                cost == 0 ? "   <- hardware DIM (paper)" : "");
  }
  std::printf(
      "\nShape to verify: costs up to ~100 cycles/instruction amortize over\n"
      "the run (translation happens once, execution repeats); CAD-scale costs\n"
      "eat the whole benefit on short-running programs — the paper's argument\n"
      "for doing the translation in trivial hardware.\n");
  return 0;
}
