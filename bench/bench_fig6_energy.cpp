// Reproduces paper Figure 6: total energy for the same experiment as
// Figure 5, plus the headline number — configuration #2 with 64 slots
// consumes ~1.73x less energy than the standalone MIPS on average.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "power/power_model.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  std::printf("Figure 6 - total energy (uJ), component breakdown (64 slots)\n\n");

  for (const char* name : {"rijndael_e", "rawaudio_d", "jpeg_e"}) {
    const PreparedWorkload p = prepare(name);
    std::printf("=== %s ===\n", p.workload.display.c_str());
    std::printf("%-24s %8s %8s %8s %8s %8s %8s | %8s %7s\n", "", "core", "imem", "dmem",
                "array", "rcache", "BT", "total", "ratio");
    const power::EnergyBreakdown base = power::compute_energy(p.baseline, 0);
    std::printf("%-24s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f | %8.1f %7s\n", "MIPS standalone",
                base.core / 1e3, base.imem / 1e3, base.dmem / 1e3, base.array / 1e3,
                base.rcache / 1e3, base.bt / 1e3, base.total() / 1e3, "1.00x");

    for (int c : {0, 2}) {
      const rra::ArrayShape shape =
          c == 0 ? rra::ArrayShape::config1() : rra::ArrayShape::config3();
      for (int spec = 0; spec < 2; ++spec) {
        const auto st =
            accel::run_accelerated(p.program, accel::SystemConfig::with(shape, 64, spec == 1));
        const power::EnergyBreakdown e = power::compute_energy(st, 64);
        char label[64];
        std::snprintf(label, sizeof label, "C#%d %s", c + 1, spec ? "spec" : "no-spec");
        std::printf("%-24s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f | %8.1f %6.2fx\n", label,
                    e.core / 1e3, e.imem / 1e3, e.dmem / 1e3, e.array / 1e3, e.rcache / 1e3,
                    e.bt / 1e3, e.total() / 1e3, base.total() / e.total());
      }
    }
    std::printf("\n");
  }

  // Headline: average energy ratio over the whole suite at C#2 / 64 slots.
  std::vector<double> ratios;
  for (const auto& p : prepare_all()) {
    const auto st = accel::run_accelerated(
        p.program, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true));
    ratios.push_back(power::compute_energy(p.baseline, 0).total() /
                     power::compute_energy(st, 64).total());
  }
  std::printf("Average energy ratio, all 18 benchmarks, C#2 / 64 slots / speculation:\n");
  std::printf("  measured %.2fx less energy than standalone MIPS (paper: 1.73x)\n", mean(ratios));
  return 0;
}
