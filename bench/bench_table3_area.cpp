// Reproduces paper Table 3: (a) functional units, multiplexers and gate
// counts; (b) bits per stored configuration; (c) reconfiguration-cache
// bytes for different slot counts.
#include <cstdio>

#include "power/area_model.hpp"
#include "rra/array_shape.hpp"

using namespace dim;

int main() {
  const auto shape = rra::ArrayShape::config1();

  std::printf("Table 3a - area of configuration #1 (measured | paper)\n");
  const power::AreaReport r = power::array_area(shape);
  std::printf("%-14s %6d | %6d units   %9lld | %9d gates\n", "ALU", r.alus, 192,
              static_cast<long long>(r.alu_gates), 300288);
  std::printf("%-14s %6d | %6d units   %9lld | %9d gates\n", "LD/ST", r.ldst_units, 36,
              static_cast<long long>(r.ldst_gates), 1968);
  std::printf("%-14s %6d | %6d units   %9lld | %9d gates\n", "Multiplier", r.multipliers, 6,
              static_cast<long long>(r.multiplier_gates), 40134);
  std::printf("%-14s %6d | %6d units   %9lld | %9d gates\n", "Input Mux", r.input_muxes, 408,
              static_cast<long long>(r.input_mux_gates), 261936);
  std::printf("%-14s %6d | %6d units   %9lld | %9d gates\n", "Output Mux", r.output_muxes, 216,
              static_cast<long long>(r.output_mux_gates), 58752);
  std::printf("%-14s %6s | %6s         %9lld | %9d gates\n", "DIM Hardware", "", "",
              static_cast<long long>(r.dim_gates), 1024);
  std::printf("%-14s %6s | %6s         %9lld | %9d gates\n", "Total", "", "",
              static_cast<long long>(r.total_gates), 664102);
  std::printf("  => %lld transistors at 4/gate (paper: ~2.66M, vs 2.4M for a MIPS R10000)\n\n",
              static_cast<long long>(r.total_transistors()));

  std::printf("Table 3b - bits per configuration (measured | paper)\n");
  const power::ConfigBits b = power::config_bits(shape);
  std::printf("%-22s %6d | %6d  (detection only, not stored)\n", "Write Bitmap Table",
              b.write_bitmap, 256);
  std::printf("%-22s %6d | %6d\n", "Resource Table", b.resource_table, 786);
  std::printf("%-22s %6d | %6d\n", "Reads Table", b.reads_table, 1632);
  std::printf("%-22s %6d | %6d\n", "Writes Table", b.writes_table, 576);
  std::printf("%-22s %6d | %6d\n", "Context Start", b.context_start, 40);
  std::printf("%-22s %6d | %6d\n", "Context Current", b.context_current, 40);
  std::printf("%-22s %6d | %6d\n", "Immediate Table", b.immediate_table, 128);
  std::printf("%-22s %6d | %6d\n\n", "Total stored", b.stored_total(), 3202);

  std::printf("Table 3c - reconfiguration cache bytes (measured | paper)\n");
  const int slot_counts[] = {2, 4, 8, 16, 32, 64, 128, 256};
  const int paper_bytes[] = {833, 1601, 3300, 6404, 13012, 25616, 51304, 102464};
  for (int i = 0; i < 8; ++i) {
    std::printf("%6d slots: %8lld | %8d bytes\n", slot_counts[i],
                static_cast<long long>(power::cache_bytes(shape, slot_counts[i])),
                paper_bytes[i]);
  }
  std::printf(
      "\n(The paper's own 3c column carries small rounding inconsistencies;\n"
      "our model is exactly slots x 3202 bits / 8, which matches the paper at\n"
      "4, 16, 64 and 256 slots.)\n\n");

  std::printf("Scaling beyond the paper: total gates per configuration\n");
  std::printf("  C#1: %lld   C#2: %lld   C#3: %lld\n",
              static_cast<long long>(power::array_area(rra::ArrayShape::config1()).total_gates),
              static_cast<long long>(power::array_area(rra::ArrayShape::config2()).total_gates),
              static_cast<long long>(power::array_area(rra::ArrayShape::config3()).total_gates));
  return 0;
}
