// Ablation: how strong a baseline does DIM survive? The paper motivates
// the technique against superscalars ("limited and time-varying ILP ...
// preclude the employment of these processors in low-energy devices");
// here we strengthen the baseline to a dual-issue in-order core and to a
// zero-penalty-branch core, and re-measure the array's advantage. The
// accelerated system uses the SAME core model, so the comparison stays
// apples-to-apples.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

double avg_speedup(const std::vector<PreparedWorkload>& workloads,
                   const sim::TimingParams& timing) {
  std::vector<double> speedups;
  for (const auto& p : workloads) {
    sim::MachineConfig machine;
    machine.timing = timing;
    const sim::RunResult base = sim::run_baseline(p.program, machine);
    accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
    cfg.machine = machine;
    const accel::AccelStats st = accel::run_accelerated(p.program, cfg);
    if (st.final_state.output != base.state.output) {
      std::fprintf(stderr, "TRANSPARENCY VIOLATION (%s)\n", p.workload.name.c_str());
      std::abort();
    }
    speedups.push_back(static_cast<double>(base.cycles) / static_cast<double>(st.cycles));
  }
  return mean(speedups);
}

}  // namespace

int main() {
  const auto workloads = prepare_all();

  std::printf("Ablation - baseline core strength (C#2, 64 slots, speculation)\n\n");
  std::printf("%-44s %12s\n", "baseline core", "avg speedup");

  sim::TimingParams scalar;  // the paper's Minimips-class core
  std::printf("%-44s %12.2f   <- paper baseline\n", "scalar, 2-cycle taken-branch redirect",
              avg_speedup(workloads, scalar));

  sim::TimingParams fast_branch = scalar;
  fast_branch.taken_branch_penalty = 0;  // e.g. perfectly filled delay slots
  std::printf("%-44s %12.2f\n", "scalar, free branches", avg_speedup(workloads, fast_branch));

  sim::TimingParams dual = scalar;
  dual.issue_width = 2;
  std::printf("%-44s %12.2f\n", "dual-issue in-order", avg_speedup(workloads, dual));

  sim::TimingParams dual_fast = dual;
  dual_fast.taken_branch_penalty = 0;
  std::printf("%-44s %12.2f\n", "dual-issue, free branches",
              avg_speedup(workloads, dual_fast));

  std::printf(
      "\nShape to verify: the advantage shrinks against stronger cores but does\n"
      "not vanish — the array still collapses dependent chains (3 rows/cycle)\n"
      "and removes fetch/issue slots, which no in-order pipeline recovers.\n");
  return 0;
}
