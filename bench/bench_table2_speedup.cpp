// Reproduces paper Table 2: speedup of MIPS+array vs standalone MIPS for
// every benchmark, over configurations #1..#3 (Table 1), {16,64,256}
// reconfiguration-cache slots, with and without speculation, plus the
// ideal-resources column.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/paper_reference.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const rra::ArrayShape shapes[3] = {rra::ArrayShape::config1(), rra::ArrayShape::config2(),
                                     rra::ArrayShape::config3()};
  const size_t slot_counts[3] = {16, 64, 256};

  std::printf("Table 1 - array configurations\n");
  std::printf("%-18s %6s %6s %6s\n", "", "C#1", "C#2", "C#3");
  std::printf("%-18s %6d %6d %6d\n", "#Lines", shapes[0].lines, shapes[1].lines, shapes[2].lines);
  std::printf("%-18s %6d %6d %6d\n", "#Columns", shapes[0].columns(), shapes[1].columns(),
              shapes[2].columns());
  std::printf("%-18s %6d %6d %6d\n", "#ALU / line", shapes[0].alus_per_line,
              shapes[1].alus_per_line, shapes[2].alus_per_line);
  std::printf("%-18s %6d %6d %6d\n", "#Multipliers/line", shapes[0].muls_per_line,
              shapes[1].muls_per_line, shapes[2].muls_per_line);
  std::printf("%-18s %6d %6d %6d\n\n", "#Ld/st / line", shapes[0].ldsts_per_line,
              shapes[1].ldsts_per_line, shapes[2].ldsts_per_line);

  std::printf("Table 2 - speedups (measured | paper)\n");
  std::printf("%-16s", "Algorithm");
  for (int c = 0; c < 3; ++c) {
    for (const char* mode : {"ns", "sp"}) {
      for (size_t slots : slot_counts) {
        std::printf("  C%d-%s-%-3zu", c + 1, mode, slots);
      }
    }
  }
  std::printf("  ideal-ns  ideal-sp\n");

  // Accumulators for the average row.
  double acc[3][2][3] = {};
  double acc_ideal[2] = {};
  const auto workloads = prepare_all();

  for (const auto& p : workloads) {
    std::printf("%-16s", p.workload.display.c_str());
    const PaperTable2Row& paper = paper_table2().at(p.workload.name);
    for (int c = 0; c < 3; ++c) {
      for (int spec = 0; spec < 2; ++spec) {
        for (int s = 0; s < 3; ++s) {
          const double measured = speedup_of(
              p, accel::SystemConfig::with(shapes[c], slot_counts[s], spec == 1));
          acc[c][spec][s] += measured;
          std::printf("  %4.2f|%4.2f", measured, paper.s[c][spec][s]);
        }
      }
    }
    for (int spec = 0; spec < 2; ++spec) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::ideal(),
                                                          size_t{1} << 20, spec == 1);
      const double measured = speedup_of(p, cfg);
      acc_ideal[spec] += measured;
      std::printf("  %4.2f|%4.2f", measured, spec ? paper.ideal_spec : paper.ideal_nospec);
    }
    std::printf("\n");
  }

  const double n = static_cast<double>(workloads.size());
  const PaperTable2Row& pavg = paper_table2_average();
  std::printf("%-16s", "Average");
  for (int c = 0; c < 3; ++c) {
    for (int spec = 0; spec < 2; ++spec) {
      for (int s = 0; s < 3; ++s) {
        std::printf("  %4.2f|%4.2f", acc[c][spec][s] / n, pavg.s[c][spec][s]);
      }
    }
  }
  std::printf("  %4.2f|%4.2f  %4.2f|%4.2f\n", acc_ideal[0] / n, pavg.ideal_nospec,
              acc_ideal[1] / n, pavg.ideal_spec);

  std::printf(
      "\nNotes: our workloads are kernel-extracted MiBench equivalents (see\n"
      "DESIGN.md), so the reconfiguration-cache footprint saturates at fewer\n"
      "slots than the paper's full binaries; the slot sensitivity appears in\n"
      "bench_ablation_cache on a 2..16 slot sweep instead.\n");

  // Supplementary: what DIM actually does per benchmark at the headline
  // setting (C#3, 64 slots, speculation).
  std::printf("\nDIM statistics at C#3 / 64 slots / speculation\n");
  std::printf("%-16s %10s %9s %9s %8s %8s %8s %8s\n", "Algorithm", "instr", "coverage",
              "activs", "misspec", "flushes", "extens", "configs");
  for (const auto& p : workloads) {
    const accel::AccelStats st = accel::run_accelerated(
        p.program, accel::SystemConfig::with(rra::ArrayShape::config3(), 64, true));
    std::printf("%-16s %10llu %8.1f%% %9llu %8llu %8llu %8llu %8llu\n",
                p.workload.display.c_str(),
                static_cast<unsigned long long>(st.instructions),
                100.0 * st.array_coverage(),
                static_cast<unsigned long long>(st.array_activations),
                static_cast<unsigned long long>(st.misspeculations),
                static_cast<unsigned long long>(st.config_flushes),
                static_cast<unsigned long long>(st.extensions),
                static_cast<unsigned long long>(st.rcache_insertions));
  }
  return 0;
}
