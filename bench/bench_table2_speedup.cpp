// Reproduces paper Table 2: speedup of MIPS+array vs standalone MIPS for
// every benchmark, over configurations #1..#3 (Table 1), {16,64,256}
// reconfiguration-cache slots, with and without speculation, plus the
// ideal-resources column.
//
// The grid is executed on accel::SweepEngine. The bench runs it twice —
// once with the requested worker count and once single-threaded — and
// verifies the aggregated JSON is byte-identical (the engine's determinism
// contract), logging both wall-clock times.
//
// Flags: --threads N, --points N (smoke: truncate grid, skip the tables),
// --json PATH. See bench_util.hpp.
#include <cstdio>
#include <memory>
#include <sstream>

#include "bench/bench_util.hpp"
#include "bench/paper_reference.hpp"
#include "rra/array_shape.hpp"
#include "snap/resultstore.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

// Grid layout per workload: [config 0..2][nospec,spec][slot 0..2] then the
// two ideal points — 20 points per workload, in that order.
constexpr size_t kPointsPerWorkload = 20;

std::vector<accel::SweepPoint> build_grid(const std::vector<PreparedWorkload>& workloads,
                                          const rra::ArrayShape (&shapes)[3],
                                          const size_t (&slot_counts)[3]) {
  std::vector<accel::SweepPoint> grid;
  for (const auto& p : workloads) {
    for (int c = 0; c < 3; ++c) {
      for (int spec = 0; spec < 2; ++spec) {
        for (size_t slots : slot_counts) {
          grid.push_back(point_of(
              p,
              p.workload.name + "/C" + std::to_string(c + 1) + (spec ? "/sp/" : "/ns/") +
                  std::to_string(slots),
              accel::SystemConfig::with(shapes[c], slots, spec == 1)));
        }
      }
    }
    for (int spec = 0; spec < 2; ++spec) {
      grid.push_back(point_of(p, p.workload.name + (spec ? "/ideal/sp" : "/ideal/ns"),
                              accel::SystemConfig::with(rra::ArrayShape::ideal(),
                                                        size_t{1} << 20, spec == 1)));
    }
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const SweepCli cli = parse_sweep_cli(argc, argv);
  const rra::ArrayShape shapes[3] = {rra::ArrayShape::config1(), rra::ArrayShape::config2(),
                                     rra::ArrayShape::config3()};
  const size_t slot_counts[3] = {16, 64, 256};

  const auto workloads = prepare_all();
  std::vector<accel::SweepPoint> grid = build_grid(workloads, shapes, slot_counts);
  if (cli.points != 0 && cli.points < grid.size()) grid.resize(cli.points);

  // Parallel run vs single-threaded reference: same results, byte-identical
  // JSON, wall-clock comparison logged. Both runs collect per-point event
  // profiles so the aggregated per-configuration summary is covered by the
  // same determinism check.
  // Optional on-disk cell memoization: with --result-store the first run
  // fills the store and the serial re-run must hit every cell — zero
  // re-simulations — while the byte-identity check below proves the cells
  // reproduce the exact results.
  std::unique_ptr<snap::ResultStore> store;
  if (!cli.result_store_dir.empty()) {
    store = std::make_unique<snap::ResultStore>(cli.result_store_dir);
  }

  accel::SweepOptions opts;
  opts.threads = cli.threads;
  opts.collect_profiles = true;
  opts.result_cache = store.get();
  const accel::SweepEngine engine(opts);
  auto t0 = std::chrono::steady_clock::now();
  const auto results = engine.run(grid);
  const double parallel_s = seconds_since(t0);
  const snap::ResultStore::Counters after_first =
      store ? store->counters() : snap::ResultStore::Counters{};

  accel::SweepOptions serial_opts = opts;
  serial_opts.threads = 1;
  t0 = std::chrono::steady_clock::now();
  const auto serial = accel::SweepEngine(serial_opts).run(grid);
  const double serial_s = seconds_since(t0);

  if (store) {
    const snap::ResultStore::Counters c = store->counters();
    const uint64_t rerun_misses = c.misses - after_first.misses;
    std::printf("result store: first run %llu hits / %llu misses, re-run "
                "%llu hits / %llu misses (%llu cells stored, %llu corrupt "
                "discarded)\n",
                static_cast<unsigned long long>(after_first.hits),
                static_cast<unsigned long long>(after_first.misses),
                static_cast<unsigned long long>(c.hits - after_first.hits),
                static_cast<unsigned long long>(rerun_misses),
                static_cast<unsigned long long>(c.stores),
                static_cast<unsigned long long>(c.corrupt_discards));
    if (rerun_misses != 0) {
      std::fprintf(stderr, "result store failed to memoize: %llu cells re-simulated\n",
                   static_cast<unsigned long long>(rerun_misses));
      return 1;
    }
  }

  require_transparent(results);
  std::ostringstream json_par, json_ser;
  accel::write_sweep_json(json_par, results);
  accel::write_sweep_json(json_ser, serial);
  std::ostringstream prof_par, prof_ser;
  obs::write_profile_json(prof_par, accel::aggregate_profiles(results));
  obs::write_profile_json(prof_ser, accel::aggregate_profiles(serial));
  const bool identical = json_par.str() == json_ser.str() &&
                         prof_par.str() == prof_ser.str();
  std::printf("sweep: %zu points, %u workers %.3fs, 1 worker %.3fs (%.2fx), "
              "JSON + event profile byte-identical: %s\n",
              grid.size(), engine.threads(), parallel_s, serial_s,
              parallel_s > 0 ? serial_s / parallel_s : 0.0, identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr, "determinism violation: parallel and serial JSON differ\n");
    return 1;
  }
  maybe_write_json(cli, results);
  if (cli.points != 0) return 0;  // smoke mode: the checks above are the point

  std::printf("\nTable 1 - array configurations\n");
  std::printf("%-18s %6s %6s %6s\n", "", "C#1", "C#2", "C#3");
  std::printf("%-18s %6d %6d %6d\n", "#Lines", shapes[0].lines, shapes[1].lines, shapes[2].lines);
  std::printf("%-18s %6d %6d %6d\n", "#Columns", shapes[0].columns(), shapes[1].columns(),
              shapes[2].columns());
  std::printf("%-18s %6d %6d %6d\n", "#ALU / line", shapes[0].alus_per_line,
              shapes[1].alus_per_line, shapes[2].alus_per_line);
  std::printf("%-18s %6d %6d %6d\n", "#Multipliers/line", shapes[0].muls_per_line,
              shapes[1].muls_per_line, shapes[2].muls_per_line);
  std::printf("%-18s %6d %6d %6d\n\n", "#Ld/st / line", shapes[0].ldsts_per_line,
              shapes[1].ldsts_per_line, shapes[2].ldsts_per_line);

  std::printf("Table 2 - speedups (measured | paper)\n");
  std::printf("%-16s", "Algorithm");
  for (int c = 0; c < 3; ++c) {
    for (const char* mode : {"ns", "sp"}) {
      for (size_t slots : slot_counts) {
        std::printf("  C%d-%s-%-3zu", c + 1, mode, slots);
      }
    }
  }
  std::printf("  ideal-ns  ideal-sp\n");

  // Accumulators for the average row.
  double acc[3][2][3] = {};
  double acc_ideal[2] = {};

  for (size_t w = 0; w < workloads.size(); ++w) {
    const auto& p = workloads[w];
    const size_t base = w * kPointsPerWorkload;
    std::printf("%-16s", p.workload.display.c_str());
    const PaperTable2Row& paper = paper_table2().at(p.workload.name);
    for (int c = 0; c < 3; ++c) {
      for (int spec = 0; spec < 2; ++spec) {
        for (int s = 0; s < 3; ++s) {
          const double measured =
              results[base + static_cast<size_t>(c * 6 + spec * 3 + s)].speedup();
          acc[c][spec][s] += measured;
          std::printf("  %4.2f|%4.2f", measured, paper.s[c][spec][s]);
        }
      }
    }
    for (int spec = 0; spec < 2; ++spec) {
      const double measured = results[base + 18 + static_cast<size_t>(spec)].speedup();
      acc_ideal[spec] += measured;
      std::printf("  %4.2f|%4.2f", measured, spec ? paper.ideal_spec : paper.ideal_nospec);
    }
    std::printf("\n");
  }

  const double n = static_cast<double>(workloads.size());
  const PaperTable2Row& pavg = paper_table2_average();
  std::printf("%-16s", "Average");
  for (int c = 0; c < 3; ++c) {
    for (int spec = 0; spec < 2; ++spec) {
      for (int s = 0; s < 3; ++s) {
        std::printf("  %4.2f|%4.2f", acc[c][spec][s] / n, pavg.s[c][spec][s]);
      }
    }
  }
  std::printf("  %4.2f|%4.2f  %4.2f|%4.2f\n", acc_ideal[0] / n, pavg.ideal_nospec,
              acc_ideal[1] / n, pavg.ideal_spec);

  std::printf(
      "\nNotes: our workloads are kernel-extracted MiBench equivalents (see\n"
      "DESIGN.md), so the reconfiguration-cache footprint saturates at fewer\n"
      "slots than the paper's full binaries; the slot sensitivity appears in\n"
      "bench_ablation_cache on a 2..16 slot sweep instead.\n");

  // Supplementary: what DIM actually does per benchmark at the headline
  // setting (C#3, 64 slots, speculation) — grid point [c=2][spec=1][s=1].
  std::printf("\nDIM statistics at C#3 / 64 slots / speculation\n");
  std::printf("%-16s %10s %9s %9s %8s %8s %8s %8s\n", "Algorithm", "instr", "coverage",
              "activs", "misspec", "flushes", "extens", "configs");
  for (size_t w = 0; w < workloads.size(); ++w) {
    const accel::AccelStats& st =
        results[w * kPointsPerWorkload + (2 * 6 + 1 * 3 + 1)].accelerated;
    std::printf("%-16s %10llu %8.1f%% %9llu %8llu %8llu %8llu %8llu\n",
                workloads[w].workload.display.c_str(),
                static_cast<unsigned long long>(st.instructions),
                100.0 * st.array_coverage(),
                static_cast<unsigned long long>(st.array_activations),
                static_cast<unsigned long long>(st.misspeculations),
                static_cast<unsigned long long>(st.config_flushes),
                static_cast<unsigned long long>(st.extensions),
                static_cast<unsigned long long>(st.rcache_insertions));
  }
  return 0;
}
