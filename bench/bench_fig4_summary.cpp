// Reproduces paper Figure 4: average speedup as a function of array
// configuration, cache size and speculation (the summary of Table 2).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/paper_reference.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const rra::ArrayShape shapes[3] = {rra::ArrayShape::config1(), rra::ArrayShape::config2(),
                                     rra::ArrayShape::config3()};
  const size_t slot_counts[3] = {16, 64, 256};
  const auto workloads = prepare_all();
  const auto& pavg = paper_table2_average();

  std::printf("Figure 4 - average speedup (measured | paper)\n\n");
  std::printf("%-24s %12s %12s %12s\n", "", "16 slots", "64 slots", "256 slots");
  for (int spec = 0; spec < 2; ++spec) {
    for (int c = 0; c < 3; ++c) {
      std::vector<double> column[3];
      for (const auto& p : workloads) {
        for (int s = 0; s < 3; ++s) {
          column[s].push_back(
              speedup_of(p, accel::SystemConfig::with(shapes[c], slot_counts[s], spec == 1)));
        }
      }
      char label[64];
      std::snprintf(label, sizeof label, "Conf #%d %s", c + 1,
                    spec ? "speculation" : "no speculation");
      std::printf("%-24s", label);
      for (int s = 0; s < 3; ++s) {
        std::printf("  %4.2f | %4.2f", mean(column[s]), pavg.s[c][spec][s]);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape to verify: speedup grows with array size (C#1 -> C#3) and with\n"
      "speculation; the paper's strongest point is ~2.5x average at C#3 with\n"
      "speculation.\n");
  return 0;
}
