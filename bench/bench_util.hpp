// Shared helpers for the paper-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "accel/sweep.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "work/workload.hpp"

namespace dim::bench {

struct PreparedWorkload {
  work::Workload workload;
  asmblr::Program program;
  accel::AccelStats baseline;
};

inline PreparedWorkload prepare(const std::string& name, int scale = 1) {
  PreparedWorkload p{work::make_workload(name, scale), {}, {}};
  p.program = asmblr::assemble(p.workload.source);
  p.baseline = accel::baseline_as_stats(p.program, sim::MachineConfig{});
  return p;
}

inline std::vector<PreparedWorkload> prepare_all(int scale = 1) {
  std::vector<PreparedWorkload> out;
  for (const std::string& name : work::workload_names()) out.push_back(prepare(name, scale));
  return out;
}

// Runs accelerated and returns the speedup vs the prepared baseline.
// Asserts transparency — a bench that silently produced wrong results
// would be worthless.
inline double speedup_of(const PreparedWorkload& p, const accel::SystemConfig& cfg) {
  const accel::AccelStats st = accel::run_accelerated(p.program, cfg);
  if (st.final_state.output != p.baseline.final_state.output ||
      st.memory_hash != p.baseline.memory_hash) {
    std::fprintf(stderr, "TRANSPARENCY VIOLATION in %s\n", p.workload.name.c_str());
    std::abort();
  }
  return static_cast<double>(p.baseline.cycles) / static_cast<double>(st.cycles);
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// Common flags for the sweep-engine benches:
//   --threads N         worker threads (0 = hardware concurrency)
//   --points N          truncate the grid to its first N points (CI smoke)
//   --json PATH         dump the aggregated sweep as JSON
//   --result-store DIR  memoize sweep cells on disk (snap::ResultStore);
//                       a warm store re-simulates nothing
// Anything else is left in `positional` for the bench to interpret.
struct SweepCli {
  unsigned threads = 0;
  size_t points = 0;  // 0 = full grid
  std::string json_path;
  std::string result_store_dir;
  std::vector<std::string> positional;
};

inline SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--threads") {
      cli.threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--points") {
      cli.points = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--json") {
      cli.json_path = value();
    } else if (arg == "--result-store") {
      cli.result_store_dir = value();
    } else {
      cli.positional.push_back(arg);
    }
  }
  return cli;
}

// One grid point backed by a prepared workload, sharing its precomputed
// baseline (so workers never redo the plain-MIPS run).
inline accel::SweepPoint point_of(const PreparedWorkload& p, std::string label,
                                  const accel::SystemConfig& cfg) {
  accel::SweepPoint pt;
  pt.label = std::move(label);
  pt.program = &p.program;
  pt.config = cfg;
  pt.baseline = &p.baseline;
  return pt;
}

// Aborts on the first non-transparent result — a bench that silently
// produced wrong results would be worthless.
inline void require_transparent(const std::vector<accel::SweepResult>& results) {
  for (const accel::SweepResult& r : results) {
    if (r.has_baseline && !r.transparent) {
      std::fprintf(stderr, "TRANSPARENCY VIOLATION at sweep point %s\n", r.label.c_str());
      std::abort();
    }
  }
}

inline void maybe_write_json(const SweepCli& cli,
                             const std::vector<accel::SweepResult>& results) {
  if (cli.json_path.empty()) return;
  std::ofstream out(cli.json_path);
  accel::write_sweep_json(out, results);
  std::printf("sweep JSON written to %s (%zu points)\n", cli.json_path.c_str(),
              results.size());
}

// Runs the grid (truncated to cli.points when set) and checks transparency.
inline std::vector<accel::SweepResult> run_sweep(std::vector<accel::SweepPoint> points,
                                                 const SweepCli& cli) {
  if (cli.points != 0 && cli.points < points.size()) points.resize(cli.points);
  const accel::SweepEngine engine({cli.threads});
  auto results = engine.run(points);
  require_transparent(results);
  return results;
}

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace dim::bench
