// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "work/workload.hpp"

namespace dim::bench {

struct PreparedWorkload {
  work::Workload workload;
  asmblr::Program program;
  accel::AccelStats baseline;
};

inline PreparedWorkload prepare(const std::string& name, int scale = 1) {
  PreparedWorkload p{work::make_workload(name, scale), {}, {}};
  p.program = asmblr::assemble(p.workload.source);
  p.baseline = accel::baseline_as_stats(p.program, sim::MachineConfig{});
  return p;
}

inline std::vector<PreparedWorkload> prepare_all(int scale = 1) {
  std::vector<PreparedWorkload> out;
  for (const std::string& name : work::workload_names()) out.push_back(prepare(name, scale));
  return out;
}

// Runs accelerated and returns the speedup vs the prepared baseline.
// Asserts transparency — a bench that silently produced wrong results
// would be worthless.
inline double speedup_of(const PreparedWorkload& p, const accel::SystemConfig& cfg) {
  const accel::AccelStats st = accel::run_accelerated(p.program, cfg);
  if (st.final_state.output != p.baseline.final_state.output ||
      st.memory_hash != p.baseline.memory_hash) {
    std::fprintf(stderr, "TRANSPARENCY VIOLATION in %s\n", p.workload.name.c_str());
    std::abort();
  }
  return static_cast<double>(p.baseline.cycles) / static_cast<double>(st.cycles);
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace dim::bench
