// Reproduces paper Figure 3: (a) how many distinct basic blocks are needed
// to cover a given fraction of execution time; (b) average instructions per
// branch — the control-flow/dataflow characterization of the suite.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/paper_reference.hpp"
#include "prof/bb_profiler.hpp"
#include "sim/machine.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  std::printf("Figure 3 - benchmark characterization\n\n");
  std::printf("%-16s %10s | %6s %6s %6s %6s %6s %6s | %8s\n", "Algorithm", "instr/br",
              "20%", "40%", "60%", "80%", "90%", "100%", "#blocks");

  double min_ipb = 1e30, max_ipb = 0;
  std::string min_name, max_name;

  for (const std::string& name : work::workload_names()) {
    const auto wl = work::make_workload(name, 1);
    const auto prog = asmblr::assemble(wl.source);
    sim::Machine machine(prog);
    prof::BbProfiler profiler;
    machine.run([&profiler](const sim::StepInfo& info) { profiler.observe(info); });

    const double ipb = profiler.instructions_per_branch();
    if (ipb < min_ipb) {
      min_ipb = ipb;
      min_name = wl.display;
    }
    if (ipb > max_ipb) {
      max_ipb = ipb;
      max_name = wl.display;
    }
    std::printf("%-16s %10.2f | %6d %6d %6d %6d %6d %6d | %8zu\n", wl.display.c_str(), ipb,
                profiler.blocks_to_cover(0.20), profiler.blocks_to_cover(0.40),
                profiler.blocks_to_cover(0.60), profiler.blocks_to_cover(0.80),
                profiler.blocks_to_cover(0.90), profiler.blocks_to_cover(1.00),
                profiler.distinct_blocks());
  }

  std::printf("\nFig 3b shape check: most control-flow = %s (%.2f instr/branch),\n",
              min_name.c_str(), min_ipb);
  std::printf("most dataflow = %s (%.2f instr/branch).\n", max_name.c_str(), max_ipb);
  std::printf("Paper: RawAudio D. is most control-flow (%.2f), Rijndael E. most dataflow (%.2f).\n",
              kPaperFig3bMin, kPaperFig3bMax);
  std::printf(
      "Fig 3a shape check (paper): CRC32 needs ~3 blocks for ~100%% of execution;\n"
      "JPEG needs ~20 blocks for 50%% — kernel-less codes spread across many blocks.\n");
  return 0;
}
