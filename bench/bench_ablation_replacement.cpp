// Ablation: reconfiguration-cache replacement policy. The paper's hardware
// uses FIFO (no recency tracking needed in the tag array); LRU would need
// extra state per slot. This sweep quantifies what that simplicity costs
// under capacity pressure.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();
  const size_t slot_counts[] = {2, 4, 8, 16, 64};

  std::printf("Ablation - FIFO (paper) vs LRU replacement (C#2, speculation)\n\n");
  std::printf("%-8s %16s %16s %10s\n", "slots", "FIFO avg speedup", "LRU avg speedup", "LRU gain");
  for (size_t slots : slot_counts) {
    std::vector<double> fifo, lru;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), slots, true);
      cfg.cache_replacement = bt::Replacement::kFifo;
      fifo.push_back(speedup_of(p, cfg));
      cfg.cache_replacement = bt::Replacement::kLru;
      lru.push_back(speedup_of(p, cfg));
    }
    const double f = mean(fifo), l = mean(lru);
    std::printf("%-8zu %16.2f %16.2f %9.1f%%\n", slots, f, l, 100.0 * (l / f - 1.0));
  }
  std::printf(
      "\nShape to verify: LRU helps only under capacity pressure (few slots);\n"
      "at the paper's 16+ slots the policies converge, justifying the paper's\n"
      "simpler FIFO hardware.\n");
  return 0;
}
