// google-benchmark micro-benchmarks of the simulator stack itself:
// assembler throughput, baseline interpreter speed, accelerated-system
// speed, and DIM translation cost. These guard against performance
// regressions that would make the paper sweeps impractical.
#include <benchmark/benchmark.h>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "work/workload.hpp"

using namespace dim;

namespace {

const work::Workload& crc_workload() {
  static const work::Workload wl = work::make_workload("crc32", 1);
  return wl;
}

const asmblr::Program& crc_program() {
  static const asmblr::Program p = asmblr::assemble(crc_workload().source);
  return p;
}

void BM_Assemble(benchmark::State& state) {
  const std::string& src = crc_workload().source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(asmblr::assemble(src));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);

void BM_BaselineRun(benchmark::State& state) {
  const asmblr::Program& p = crc_program();
  uint64_t instructions = 0;
  for (auto _ : state) {
    const sim::RunResult r = sim::run_baseline(p);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineRun)->Unit(benchmark::kMillisecond);

void BM_AcceleratedRun(benchmark::State& state) {
  const asmblr::Program& p = crc_program();
  const auto cfg =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, state.range(0) != 0);
  uint64_t instructions = 0;
  for (auto _ : state) {
    const accel::AccelStats st = accel::run_accelerated(p, cfg);
    instructions += st.instructions;
    benchmark::DoNotOptimize(st.cycles);
  }
  state.counters["instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AcceleratedRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FunctionalStep(benchmark::State& state) {
  mem::Memory m;
  crc_program().load_into(m);
  sim::CpuState s;
  for (auto _ : state) {
    s = sim::CpuState{};
    s.pc = crc_program().entry;
    s.regs[29] = 0x7FFF0000;
    s.regs[28] = 0x10008000;
    for (int i = 0; i < 4096 && !s.halted; ++i) {
      benchmark::DoNotOptimize(sim::step(s, m));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FunctionalStep);

}  // namespace

BENCHMARK_MAIN();
