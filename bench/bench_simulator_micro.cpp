// Micro-benchmark of the simulator stack itself: baseline interpreter and
// accelerated-system throughput (instr/s), each with the superblock trace
// dispatch on and off. Guards against performance regressions that would
// make the paper sweeps impractical, and pins the trace engine's speedup.
//
// Methodology: every mode gets one untimed warmup repetition (populates
// the decode/trace caches and the branch predictor tables, faults the
// working set in), then N timed repetitions; the reported rate is the
// median, so a single descheduled rep cannot flip the gate.
//
// Usage: bench_simulator_micro [--reps N] [--quick] [--json]
//                              [--min-speedup X]
// --min-speedup X exits nonzero unless the baseline fast/slow speedup is
// at least X (the CI pin; the trace dispatch must stay >= 3x).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "work/workload.hpp"

using namespace dim;

namespace {

using Clock = std::chrono::steady_clock;

// Runs `body` (which returns retired instructions) repeatedly for at least
// `min_seconds` and returns the aggregate rate in instr/s.
template <typename Body>
double measure_rate(double min_seconds, Body&& body) {
  uint64_t instructions = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    instructions += body();
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(instructions) / elapsed;
}

template <typename Body>
double median_rate(int reps, double min_seconds, Body&& body) {
  body();  // warmup: caches hot, pages resident, not timed
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) rates.push_back(measure_rate(min_seconds, body));
  std::sort(rates.begin(), rates.end());
  const size_t n = rates.size();
  return n % 2 ? rates[n / 2] : 0.5 * (rates[n / 2 - 1] + rates[n / 2]);
}

struct Row {
  const char* name;
  double instr_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  double min_seconds = 0.2;
  double min_speedup = 0.0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      reps = 3;
      min_seconds = 0.05;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_simulator_micro [--reps N] [--quick] [--json] "
                   "[--min-speedup X]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  const work::Workload wl = work::make_workload("crc32", 1);
  const asmblr::Program program = asmblr::assemble(wl.source);

  sim::MachineConfig slow_cfg;
  slow_cfg.host_trace_dispatch = false;
  sim::MachineConfig fast_cfg;
  fast_cfg.host_trace_dispatch = true;

  accel::SystemConfig accel_slow =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
  accel_slow.machine = slow_cfg;
  accel::SystemConfig accel_fast = accel_slow;
  accel_fast.machine = fast_cfg;

  Row rows[4] = {{"baseline_slow"}, {"baseline_fast"}, {"accel_slow"}, {"accel_fast"}};
  rows[0].instr_s = median_rate(reps, min_seconds, [&] {
    return sim::run_baseline(program, slow_cfg).instructions;
  });
  rows[1].instr_s = median_rate(reps, min_seconds, [&] {
    return sim::run_baseline(program, fast_cfg).instructions;
  });
  rows[2].instr_s = median_rate(reps, min_seconds, [&] {
    return accel::run_accelerated(program, accel_slow).instructions;
  });
  rows[3].instr_s = median_rate(reps, min_seconds, [&] {
    return accel::run_accelerated(program, accel_fast).instructions;
  });

  const double baseline_speedup = rows[1].instr_s / rows[0].instr_s;
  const double accel_speedup = rows[3].instr_s / rows[2].instr_s;

  if (json) {
    std::printf("{\n");
    std::printf("  \"format_version\": 1,\n");
    std::printf("  \"workload\": \"crc32\",\n");
    std::printf("  \"reps\": %d,\n", reps);
    for (const Row& r : rows) {
      std::printf("  \"%s_instr_per_s\": %.0f,\n", r.name, r.instr_s);
    }
    std::printf("  \"baseline_trace_speedup\": %.3f,\n", baseline_speedup);
    std::printf("  \"accel_trace_speedup\": %.3f\n", accel_speedup);
    std::printf("}\n");
  } else {
    for (const Row& r : rows) {
      std::printf("%-14s %12.2f Minstr/s\n", r.name, r.instr_s / 1e6);
    }
    std::printf("baseline trace speedup: %.2fx\n", baseline_speedup);
    std::printf("accel trace speedup:    %.2fx\n", accel_speedup);
  }

  if (min_speedup > 0.0 && baseline_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: baseline trace speedup %.2fx < required %.2fx\n",
                 baseline_speedup, min_speedup);
    return 1;
  }
  return 0;
}
