// Quantifying the paper's §2 related-work arguments on our suite:
//
// 1. CCA-style arrays (Clark et al., MICRO-37): "the CCA does not support
//    memory operations or shifts, limiting its field of application and,
//    as a consequence, it supports only a limited number of inputs and
//    outputs." We emulate that restriction (no LD/ST, no shifts, no
//    multiplier, 4 inputs / 2 outputs) on the same detection hardware.
//
// 2. Warp-processing-style kernel-only optimization (Lysecky/Stitt/Vahid):
//    the CAD flow translates only the profiled hot spots, so coverage is
//    capped by how concentrated the program is — the paper's Figure 3a
//    argument for optimizing *everything* dynamically.
//
// 3. Execution-mode personalities (src/rra/exec_mode/): the same detection
//    hardware and the same configurations, re-timed under the row-sync,
//    elastic (dataflow firing through bounded per-row FIFOs) and SIMT
//    (multi-lane warp issue) array disciplines — a 3 x 18 SweepEngine grid.
//    Emits a deterministic JSON artifact (BENCH_related_modes.json) that is
//    byte-identical for any --threads value.
//
// Flags (bench_util SweepCli): --threads N, --points N (truncates the mode
// grid; CI smoke), --modes-json PATH (write the mode-grid artifact),
// --modes-only (skip sections 1 and 2).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "power/power_model.hpp"
#include "prof/bb_profiler.hpp"
#include "rra/array_shape.hpp"
#include "sim/machine.hpp"

using namespace dim;
using namespace dim::bench;

namespace {

// One mode personality of the section-3 grid. All three share the
// headline C#2 / 64-slot / speculation system; only the execution model
// differs, so the speedup deltas are pure timing-discipline effects.
struct ModePersonality {
  const char* key;
  rra::ExecModeParams exec;
};

std::vector<ModePersonality> mode_personalities() {
  std::vector<ModePersonality> modes(3);
  modes[0].key = "row_sync";
  modes[1].key = "elastic";
  modes[1].exec.mode = rra::ExecMode::kElastic;
  modes[1].exec.fifo_capacity = 4;
  modes[2].key = "simt";
  modes[2].exec.mode = rra::ExecMode::kSimt;
  modes[2].exec.lanes = 4;
  return modes;
}

// Deterministic double formatting for the JSON artifact: %.6g depends only
// on the value, so the file is byte-identical for any worker count.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void run_mode_grid(const std::vector<PreparedWorkload>& workloads,
                   const SweepCli& cli, const std::string& json_path) {
  const auto modes = mode_personalities();
  const accel::SystemConfig base =
      accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);

  std::vector<accel::SweepPoint> points;
  for (const ModePersonality& m : modes) {
    for (const PreparedWorkload& p : workloads) {
      accel::SystemConfig cfg = base;
      cfg.exec_mode = m.exec;
      points.push_back(point_of(p, std::string(m.key) + "/" + p.workload.name, cfg));
    }
  }
  const auto results = run_sweep(points, cli);

  std::printf(
      "Related work 3 - execution-mode personalities (C#2, 64 slots, spec)\n"
      "(row-sync vs elastic fifo=4 vs SIMT lanes=4; speedup over plain MIPS)\n\n");
  std::printf("%-16s %9s %9s %9s %11s %10s\n", "Algorithm", "row-sync", "elastic",
              "simt", "fifo-stall", "warp-hits");
  const size_t n = workloads.size();
  std::vector<double> avg(modes.size(), 0.0);
  // With --points the grid may be truncated; index math below only reads
  // cells that exist.
  const auto cell = [&](size_t mode, size_t wl) -> const accel::SweepResult* {
    const size_t idx = mode * n + wl;
    return idx < results.size() ? &results[idx] : nullptr;
  };
  for (size_t w = 0; w < n; ++w) {
    if (cell(0, w) == nullptr) break;
    const accel::SweepResult* rs = cell(0, w);
    const accel::SweepResult* el = cell(1, w);
    const accel::SweepResult* si = cell(2, w);
    std::printf("%-16s %8.2fx %8.2fx %8.2fx %11llu %10llu\n",
                workloads[w].workload.display.c_str(), rs->speedup(),
                el != nullptr ? el->speedup() : 0.0,
                si != nullptr ? si->speedup() : 0.0,
                static_cast<unsigned long long>(
                    el != nullptr ? el->accelerated.fifo_stall_cycles : 0),
                static_cast<unsigned long long>(
                    si != nullptr ? si->accelerated.simt_warp_hits : 0));
  }
  for (size_t m = 0; m < modes.size(); ++m) {
    std::vector<double> sp;
    for (size_t w = 0; w < n; ++w) {
      if (cell(m, w) != nullptr) sp.push_back(cell(m, w)->speedup());
    }
    avg[m] = mean(sp);
  }
  std::printf("%-16s %8.2fx %8.2fx %8.2fx\n\n", "Average", avg[0], avg[1], avg[2]);

  if (json_path.empty()) return;
  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"related_modes\",\n"
      << "  \"system\": {\"shape\": \"config2\", \"cache_slots\": 64, "
         "\"speculation\": true},\n  \"modes\": [\n";
  for (size_t m = 0; m < modes.size(); ++m) {
    out << "    {\"mode\": \"" << modes[m].key << "\"";
    if (modes[m].exec.mode == rra::ExecMode::kElastic) {
      out << ", \"fifo_capacity\": " << modes[m].exec.fifo_capacity;
    } else if (modes[m].exec.mode == rra::ExecMode::kSimt) {
      out << ", \"lanes\": " << modes[m].exec.lanes;
    }
    out << ", \"avg_speedup\": " << num(avg[m]) << ",\n     \"workloads\": [\n";
    bool first = true;
    for (size_t w = 0; w < n; ++w) {
      const accel::SweepResult* r = cell(m, w);
      if (r == nullptr) break;
      const double energy =
          power::compute_energy(r->accelerated, base.cache_slots).total();
      if (!first) out << ",\n";
      first = false;
      out << "      {\"name\": \"" << workloads[w].workload.name
          << "\", \"cycles\": " << r->accelerated.cycles
          << ", \"speedup\": " << num(r->speedup())
          << ", \"energy_nj\": " << num(energy)
          << ", \"fifo_stall_cycles\": " << r->accelerated.fifo_stall_cycles
          << ", \"deadlock_fallbacks\": " << r->accelerated.elastic_deadlock_fallbacks
          << ", \"warp_hits\": " << r->accelerated.simt_warp_hits
          << ", \"warp_resets\": " << r->accelerated.simt_warp_resets << "}";
    }
    out << "\n    ]}" << (m + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("mode grid JSON written to %s (%zu points)\n", json_path.c_str(),
              results.size());
}

}  // namespace

int main(int argc, char** argv) {
  SweepCli cli = parse_sweep_cli(argc, argv);
  bool modes_only = false;
  std::string modes_json;
  for (size_t i = 0; i < cli.positional.size(); ++i) {
    if (cli.positional[i] == "--modes-only") {
      modes_only = true;
    } else if (cli.positional[i] == "--modes-json" && i + 1 < cli.positional.size()) {
      modes_json = cli.positional[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_related_work [--threads N] [--points N]\n"
                   "                          [--modes-json PATH] [--modes-only]\n");
      return 2;
    }
  }

  const auto workloads = prepare_all();

  if (modes_only) {
    run_mode_grid(workloads, cli, modes_json);
    return 0;
  }

  std::printf("Related work 1 - CCA-style FU restrictions (C#2, 64 slots, spec)\n\n");
  std::printf("%-16s %10s %12s %12s\n", "Algorithm", "DIM array", "CCA-style", "coverage");
  std::vector<double> dim_speedups, cca_speedups;
  for (const auto& p : workloads) {
    const accel::SystemConfig dim_cfg =
        accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
    accel::SystemConfig cca_cfg = dim_cfg;
    cca_cfg.allow_mem = false;
    cca_cfg.allow_shifts = false;
    cca_cfg.allow_mult = false;
    cca_cfg.max_input_regs = 4;
    cca_cfg.max_output_regs = 2;

    const double dim_speedup = speedup_of(p, dim_cfg);
    const accel::AccelStats cca = accel::run_accelerated(p.program, cca_cfg);
    const double cca_speedup =
        static_cast<double>(p.baseline.cycles) / static_cast<double>(cca.cycles);
    dim_speedups.push_back(dim_speedup);
    cca_speedups.push_back(cca_speedup);
    std::printf("%-16s %9.2fx %11.2fx %11.1f%%\n", p.workload.display.c_str(), dim_speedup,
                cca_speedup, 100.0 * cca.array_coverage());
  }
  std::printf("%-16s %9.2fx %11.2fx\n\n", "Average", mean(dim_speedups), mean(cca_speedups));

  std::printf("Related work 2 - kernel-only translation (warp-processing style)\n");
  std::printf("(only the K hottest basic blocks are eligible for translation)\n\n");
  std::printf("%-10s %12s\n", "K hottest", "avg speedup");
  for (int k : {1, 3, 5, 10, 20}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      // Profile to find the hot basic-block leaders.
      sim::Machine machine(p.program);
      prof::BbProfiler profiler;
      machine.run([&profiler](const sim::StepInfo& info) { profiler.observe(info); });
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      int count = 0;
      for (const auto& block : profiler.blocks_by_weight()) {
        if (count++ >= k) break;
        cfg.allowed_starts.insert(block.start_pc);
      }
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-10d %11.2fx\n", k, mean(speedups));
  }
  {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      speedups.push_back(
          speedup_of(p, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true)));
    }
    std::printf("%-10s %11.2fx   <- DIM (everything eligible)\n", "all", mean(speedups));
  }
  std::printf(
      "\nShape to verify: the restricted CCA-style array accelerates only the\n"
      "pure-ALU codes; kernel-only translation approaches DIM as K grows —\n"
      "for kernel-less programs only slowly, the paper's case for optimizing\n"
      "the whole application transparently.\n\n");

  run_mode_grid(workloads, cli, modes_json);
  return 0;
}
