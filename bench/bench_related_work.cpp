// Quantifying the paper's §2 related-work arguments on our suite:
//
// 1. CCA-style arrays (Clark et al., MICRO-37): "the CCA does not support
//    memory operations or shifts, limiting its field of application and,
//    as a consequence, it supports only a limited number of inputs and
//    outputs." We emulate that restriction (no LD/ST, no shifts, no
//    multiplier, 4 inputs / 2 outputs) on the same detection hardware.
//
// 2. Warp-processing-style kernel-only optimization (Lysecky/Stitt/Vahid):
//    the CAD flow translates only the profiled hot spots, so coverage is
//    capped by how concentrated the program is — the paper's Figure 3a
//    argument for optimizing *everything* dynamically.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "prof/bb_profiler.hpp"
#include "rra/array_shape.hpp"
#include "sim/machine.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Related work 1 - CCA-style FU restrictions (C#2, 64 slots, spec)\n\n");
  std::printf("%-16s %10s %12s %12s\n", "Algorithm", "DIM array", "CCA-style", "coverage");
  std::vector<double> dim_speedups, cca_speedups;
  for (const auto& p : workloads) {
    const accel::SystemConfig dim_cfg =
        accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
    accel::SystemConfig cca_cfg = dim_cfg;
    cca_cfg.allow_mem = false;
    cca_cfg.allow_shifts = false;
    cca_cfg.allow_mult = false;
    cca_cfg.max_input_regs = 4;
    cca_cfg.max_output_regs = 2;

    const double dim_speedup = speedup_of(p, dim_cfg);
    const accel::AccelStats cca = accel::run_accelerated(p.program, cca_cfg);
    const double cca_speedup =
        static_cast<double>(p.baseline.cycles) / static_cast<double>(cca.cycles);
    dim_speedups.push_back(dim_speedup);
    cca_speedups.push_back(cca_speedup);
    std::printf("%-16s %9.2fx %11.2fx %11.1f%%\n", p.workload.display.c_str(), dim_speedup,
                cca_speedup, 100.0 * cca.array_coverage());
  }
  std::printf("%-16s %9.2fx %11.2fx\n\n", "Average", mean(dim_speedups), mean(cca_speedups));

  std::printf("Related work 2 - kernel-only translation (warp-processing style)\n");
  std::printf("(only the K hottest basic blocks are eligible for translation)\n\n");
  std::printf("%-10s %12s\n", "K hottest", "avg speedup");
  for (int k : {1, 3, 5, 10, 20}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      // Profile to find the hot basic-block leaders.
      sim::Machine machine(p.program);
      prof::BbProfiler profiler;
      machine.run([&profiler](const sim::StepInfo& info) { profiler.observe(info); });
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      int count = 0;
      for (const auto& block : profiler.blocks_by_weight()) {
        if (count++ >= k) break;
        cfg.allowed_starts.insert(block.start_pc);
      }
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-10d %11.2fx\n", k, mean(speedups));
  }
  {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      speedups.push_back(
          speedup_of(p, accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true)));
    }
    std::printf("%-10s %11.2fx   <- DIM (everything eligible)\n", "all", mean(speedups));
  }
  std::printf(
      "\nShape to verify: the restricted CCA-style array accelerates only the\n"
      "pure-ALU codes; kernel-only translation approaches DIM as K grows —\n"
      "for kernel-less programs only slowly, the paper's case for optimizing\n"
      "the whole application transparently.\n");
  return 0;
}
