# Bench binaries are emitted into build/bench/ with no CMake clutter, so
# `for b in build/bench/*; do $b; done` runs exactly the benches.
set(DIMSIM_BENCHES
  bench_fig3_characterization
  bench_table2_speedup
  bench_fig4_summary
  bench_fig5_power
  bench_fig6_energy
  bench_table3_area
  bench_ablation_rows
  bench_ablation_reconfig
  bench_ablation_speculation
  bench_ablation_cache
  bench_ablation_replacement
  bench_future_powergating
  bench_memory_sensitivity
  bench_ablation_baseline
  bench_heterogeneous
  bench_related_work
  bench_ablation_btcost
  bench_warmstart
)

foreach(b ${DIMSIM_BENCHES})
  add_executable(${b} bench/${b}.cpp)
  target_link_libraries(${b} PRIVATE dimsim)
  target_include_directories(${b} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${b} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

# Plain main (no google-benchmark): warmup + median-of-N so the CI-pinned
# trace-dispatch speedup is stable, with a --min-speedup gate.
add_executable(bench_simulator_micro bench/bench_simulator_micro.cpp)
target_link_libraries(bench_simulator_micro PRIVATE dimsim)
target_include_directories(bench_simulator_micro PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(bench_simulator_micro PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Serve-daemon load bench: in-process by default, --connect drives a live
# dimsim-serve socket, --check dumps responses for determinism diffs.
add_executable(bench_serve_load bench/bench_serve_load.cpp)
target_link_libraries(bench_serve_load PRIVATE dimsim)
target_include_directories(bench_serve_load PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(bench_serve_load PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
