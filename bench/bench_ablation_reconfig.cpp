// Ablation: reconfiguration overlap. The paper hides up to 3 cycles of
// configuration/operand loading behind the pipeline front-end; this sweep
// quantifies the cost of losing that overlap and of narrower configuration
// buses / register-file ports.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "rra/array_shape.hpp"

using namespace dim;
using namespace dim::bench;

int main() {
  const auto workloads = prepare_all();

  std::printf("Ablation - reconfiguration overlap cycles (C#2, 64 slots, speculation)\n");
  std::printf("%-12s %10s\n", "overlap", "avg speedup");
  for (int overlap : {0, 1, 3, 6}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.reconfig_overlap_cycles = overlap;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f%s\n", overlap, mean(speedups),
                overlap == 3 ? "   <- paper setting (PC known 3 stages early)" : "");
  }

  std::printf("\nAblation - configuration words streamed per cycle\n");
  std::printf("%-12s %10s\n", "words/cycle", "avg speedup");
  for (int words : {2, 4, 8, 16, 32}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.config_words_per_cycle = words;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", words, mean(speedups));
  }

  std::printf("\nAblation - register-file read ports (input context fetch)\n");
  std::printf("%-12s %10s\n", "ports", "avg speedup");
  for (int ports : {1, 2, 4, 8}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.regfile_read_ports = ports;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", ports, mean(speedups));
  }

  std::printf("\nAblation - register-file write ports (result drain)\n");
  std::printf("%-12s %10s\n", "ports", "avg speedup");
  for (int ports : {1, 2, 4, 8, 16}) {
    std::vector<double> speedups;
    for (const auto& p : workloads) {
      accel::SystemConfig cfg = accel::SystemConfig::with(rra::ArrayShape::config2(), 64, true);
      cfg.array_timing.regfile_write_ports = ports;
      speedups.push_back(speedup_of(p, cfg));
    }
    std::printf("%-12d %10.2f\n", ports, mean(speedups));
  }
  return 0;
}
