// Design-space exploration — the paper's stated future work ("we are
// working on finding the ideal shape for the reconfigurable array"). Sweeps
// array shapes for a chosen workload and reports speedup against area, so a
// designer can pick the knee of the curve.
//
// Usage: design_explorer [workload-name] (default: sha)
#include <cstdio>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "power/area_model.hpp"
#include "work/workload.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sha";
  const dim::work::Workload wl = dim::work::make_workload(name, 1);
  const dim::asmblr::Program program = dim::asmblr::assemble(wl.source);
  const dim::accel::AccelStats baseline =
      dim::accel::baseline_as_stats(program, dim::sim::MachineConfig{});

  std::printf("Design-space exploration for %s\n", wl.display.c_str());
  std::printf("%-28s %10s %12s %14s\n", "shape (lines x alu/mul/mem)", "speedup",
              "gates", "speedup/Mgate");

  struct Point {
    dim::rra::ArrayShape shape;
    double speedup;
    int64_t gates;
  };
  std::vector<Point> points;

  for (int lines : {8, 16, 24, 48, 96, 150}) {
    for (int alus : {4, 8, 12}) {
      dim::rra::ArrayShape shape{lines, alus, 2, 4};
      const auto st = dim::accel::run_accelerated(
          program, dim::accel::SystemConfig::with(shape, 64, true));
      if (st.final_state.output != baseline.final_state.output) {
        std::fprintf(stderr, "transparency violation!\n");
        return 1;
      }
      const double speedup =
          static_cast<double>(baseline.cycles) / static_cast<double>(st.cycles);
      const int64_t gates = dim::power::array_area(shape).total_gates;
      points.push_back({shape, speedup, gates});
      char label[64];
      std::snprintf(label, sizeof label, "%3d x %2d/%d/%d", lines, alus, shape.muls_per_line,
                    shape.ldsts_per_line);
      std::printf("%-28s %9.2fx %12lld %14.2f\n", label, speedup,
                  static_cast<long long>(gates),
                  speedup / (static_cast<double>(gates) / 1e6));
    }
  }

  // Report the Pareto knee: best speedup-per-gate among shapes achieving at
  // least 95% of the maximum speedup.
  double best_speedup = 0;
  for (const Point& p : points) best_speedup = std::max(best_speedup, p.speedup);
  const Point* knee = nullptr;
  for (const Point& p : points) {
    if (p.speedup >= 0.95 * best_speedup && (knee == nullptr || p.gates < knee->gates)) {
      knee = &p;
    }
  }
  if (knee != nullptr) {
    std::printf(
        "\nknee of the curve: %d lines x %d ALUs reaches %.2fx (%.0f%% of max) with %lld gates\n",
        knee->shape.lines, knee->shape.alus_per_line, knee->speedup,
        100.0 * knee->speedup / best_speedup, static_cast<long long>(knee->gates));
  }
  return 0;
}
