// Design-space exploration — the paper's stated future work ("we are
// working on finding the ideal shape for the reconfigurable array"). Sweeps
// array shapes for a chosen workload and reports speedup against area, so a
// designer can pick the knee of the curve. The 18-shape grid runs on
// accel::SweepEngine, one worker per hardware thread.
//
// Usage: design_explorer [workload-name] [--threads N] [--json PATH]
//        (default workload: sha)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "accel/sweep.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "power/area_model.hpp"
#include "work/workload.hpp"

int main(int argc, char** argv) {
  std::string name = "sha";
  unsigned threads = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      name = arg;
    }
  }

  const dim::work::Workload wl = dim::work::make_workload(name, 1);
  const dim::asmblr::Program program = dim::asmblr::assemble(wl.source);
  const dim::accel::AccelStats baseline =
      dim::accel::baseline_as_stats(program, dim::sim::MachineConfig{});

  const int line_settings[] = {8, 16, 24, 48, 96, 150};
  const int alu_settings[] = {4, 8, 12};
  std::vector<dim::rra::ArrayShape> shapes;
  std::vector<dim::accel::SweepPoint> grid;
  for (int lines : line_settings) {
    for (int alus : alu_settings) {
      dim::rra::ArrayShape shape{lines, alus, 2, 4};
      shapes.push_back(shape);
      dim::accel::SweepPoint p;
      p.label = std::to_string(lines) + "x" + std::to_string(alus);
      p.program = &program;
      p.config = dim::accel::SystemConfig::with(shape, 64, true);
      p.baseline = &baseline;
      grid.push_back(p);
    }
  }

  const dim::accel::SweepEngine engine({threads});
  const auto results = engine.run(grid);

  std::printf("Design-space exploration for %s (%u sweep workers)\n", wl.display.c_str(),
              engine.threads());
  std::printf("%-28s %10s %12s %14s\n", "shape (lines x alu/mul/mem)", "speedup",
              "gates", "speedup/Mgate");

  struct Point {
    dim::rra::ArrayShape shape;
    double speedup;
    int64_t gates;
  };
  std::vector<Point> points;

  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].transparent) {
      std::fprintf(stderr, "transparency violation!\n");
      return 1;
    }
    const dim::rra::ArrayShape& shape = shapes[i];
    const double speedup = results[i].speedup();
    const int64_t gates = dim::power::array_area(shape).total_gates;
    points.push_back({shape, speedup, gates});
    char label[64];
    std::snprintf(label, sizeof label, "%3d x %2d/%d/%d", shape.lines, shape.alus_per_line,
                  shape.muls_per_line, shape.ldsts_per_line);
    std::printf("%-28s %9.2fx %12lld %14.2f\n", label, speedup,
                static_cast<long long>(gates),
                speedup / (static_cast<double>(gates) / 1e6));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    dim::accel::write_sweep_json(out, results);
    std::printf("\nsweep JSON written to %s\n", json_path.c_str());
  }

  // Report the Pareto knee: best speedup-per-gate among shapes achieving at
  // least 95% of the maximum speedup.
  double best_speedup = 0;
  for (const Point& p : points) best_speedup = std::max(best_speedup, p.speedup);
  const Point* knee = nullptr;
  for (const Point& p : points) {
    if (p.speedup >= 0.95 * best_speedup && (knee == nullptr || p.gates < knee->gates)) {
      knee = &p;
    }
  }
  if (knee != nullptr) {
    std::printf(
        "\nknee of the curve: %d lines x %d ALUs reaches %.2fx (%.0f%% of max) with %lld gates\n",
        knee->shape.lines, knee->shape.alus_per_line, knee->speedup,
        100.0 * knee->speedup / best_speedup, static_cast<long long>(knee->gates));
  }
  return 0;
}
