// dimsim command-line runner: execute a bundled MiBench-equivalent workload
// (or any MIPS assembly file) on the baseline core and the DIM-accelerated
// core, with full control over the paper's knobs.
//
// Usage:
//   run_workload [options] [workload-name | --asm file.s]
// Options:
//   --config 1|2|3|ideal   array shape (default 2)
//   --slots N              reconfiguration-cache slots (default 64)
//   --no-spec              disable speculation
//   --lru                  LRU replacement instead of the paper's FIFO
//   --scale N              workload scale factor (default 1)
//   --trace N              print the first N retired instructions
//   --json                 emit run statistics as JSON
//   --save-cache FILE      dump translated configurations after the run
//   --load-cache FILE      pre-load configurations (persistent translation)
//   --list                 list bundled workloads
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "rra/config_io.hpp"
#include "sim/machine.hpp"
#include "sim/tracer.hpp"
#include "work/workload.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: run_workload [options] [workload-name | --asm file.s]\n"
                       "       run_workload --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "crc32";
  std::string asm_file, save_cache, load_cache;
  int config_id = 2, scale = 1;
  size_t slots = 64;
  bool spec = true, lru = false, json = false;
  uint64_t trace_lines = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const auto& n : dim::work::workload_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else if (arg == "--config") {
      const std::string v = next();
      config_id = v == "ideal" ? 0 : std::atoi(v.c_str());
    } else if (arg == "--slots") {
      slots = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--no-spec") {
      spec = false;
    } else if (arg == "--lru") {
      lru = true;
    } else if (arg == "--scale") {
      scale = std::atoi(next());
    } else if (arg == "--trace") {
      trace_lines = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--asm") {
      asm_file = next();
    } else if (arg == "--save-cache") {
      save_cache = next();
    } else if (arg == "--load-cache") {
      load_cache = next();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      name = arg;
    }
  }

  // --- assemble ---
  dim::asmblr::Program program;
  std::string label = name;
  try {
    if (!asm_file.empty()) {
      std::ifstream in(asm_file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", asm_file.c_str());
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      program = dim::asmblr::assemble(ss.str());
      label = asm_file;
    } else {
      program = dim::asmblr::assemble(dim::work::make_workload(name, scale).source);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // --- baseline (with optional trace) ---
  dim::sim::Machine machine(program);
  dim::sim::TracerOptions topt;
  topt.max_lines = trace_lines;
  topt.show_registers = true;
  topt.show_memory = true;
  dim::sim::Tracer tracer(std::cout, topt);
  const dim::sim::RunResult base =
      trace_lines > 0
          ? machine.run([&](const dim::sim::StepInfo& info) {
              tracer.observe(info, machine.state());
            })
          : machine.run();

  // --- accelerated ---
  dim::rra::ArrayShape shape = dim::rra::ArrayShape::config2();
  if (config_id == 1) shape = dim::rra::ArrayShape::config1();
  if (config_id == 3) shape = dim::rra::ArrayShape::config3();
  if (config_id == 0) shape = dim::rra::ArrayShape::ideal();
  dim::accel::SystemConfig cfg = dim::accel::SystemConfig::with(shape, slots, spec);
  if (lru) cfg.cache_replacement = dim::bt::Replacement::kLru;

  dim::accel::AcceleratedSystem system(program, cfg);
  if (!load_cache.empty()) {
    std::ifstream in(load_cache);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", load_cache.c_str());
      return 1;
    }
    dim::rra::load_cache(in, system.rcache());
  }
  const dim::accel::AccelStats st = system.run();
  if (!save_cache.empty()) {
    std::ofstream out(save_cache);
    dim::rra::save_cache(out, system.rcache());
  }

  // --- report ---
  const bool transparent = base.state.output == st.final_state.output &&
                           base.memory_hash == st.memory_hash &&
                           base.state.reg_hash() == st.final_state.reg_hash();
  if (json) {
    dim::accel::write_json(std::cout, st, label);
  } else {
    std::printf("== %s ==\n", label.c_str());
    std::printf("output: '%s'\n", st.final_state.output.c_str());
    std::printf("baseline: %llu cycles | accelerated: %llu cycles | speedup %.2fx\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(st.cycles),
                static_cast<double>(base.cycles) / static_cast<double>(st.cycles));
    std::ostringstream report;
    dim::accel::write_report(report, st);
    std::fputs(report.str().c_str(), stdout);
    std::printf("transparent: %s\n", transparent ? "yes" : "NO - BUG");
  }
  return transparent ? 0 : 1;
}
