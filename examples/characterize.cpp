// Workload characterization (the paper's Figure 3 methodology applied to
// one program): basic-block profile, instructions/branch, coverage curve,
// and what DIM actually finds — configurations, their sizes and reuse.
//
// Usage: characterize [workload-name]   (default: jpeg_d; see --list)
#include <cstdio>
#include <cstring>
#include <string>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "prof/bb_profiler.hpp"
#include "sim/machine.hpp"
#include "work/workload.hpp"

int main(int argc, char** argv) {
  std::string name = "jpeg_d";
  if (argc > 1) {
    if (std::strcmp(argv[1], "--list") == 0) {
      for (const auto& n : dim::work::workload_names()) std::printf("%s\n", n.c_str());
      return 0;
    }
    name = argv[1];
  }

  const dim::work::Workload wl = dim::work::make_workload(name, 1);
  const dim::asmblr::Program program = dim::asmblr::assemble(wl.source);

  // --- static + dynamic profile ---
  dim::sim::Machine machine(program);
  dim::prof::BbProfiler profiler;
  const dim::sim::RunResult run =
      machine.run([&profiler](const dim::sim::StepInfo& info) { profiler.observe(info); });

  std::printf("=== %s (%s) ===\n", wl.display.c_str(), name.c_str());
  std::printf("image: %zu bytes, dynamic: %llu instructions, %llu cycles\n",
              program.image_bytes(), static_cast<unsigned long long>(run.instructions),
              static_cast<unsigned long long>(run.cycles));
  std::printf("instructions/branch: %.2f   (paper Fig 3b: 3.79 = control ... 25.45 = dataflow)\n",
              profiler.instructions_per_branch());
  std::printf("average basic block: %.1f instructions, %zu distinct blocks\n\n",
              profiler.average_block_length(), profiler.distinct_blocks());

  std::printf("coverage curve (Fig 3a): blocks needed for fraction of execution\n  ");
  for (double f : {0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
    std::printf("%3.0f%%:%-5d", f * 100, profiler.blocks_to_cover(f));
  }
  std::printf("\n\nhottest blocks:\n");
  const auto blocks = profiler.blocks_by_weight();
  for (size_t i = 0; i < blocks.size() && i < 8; ++i) {
    std::printf("  pc=0x%08x  %8llu executions  %10llu instructions (%.1f%%)\n",
                blocks[i].start_pc, static_cast<unsigned long long>(blocks[i].executions),
                static_cast<unsigned long long>(blocks[i].instructions),
                100.0 * static_cast<double>(blocks[i].instructions) /
                    static_cast<double>(profiler.total_instructions()));
  }

  // --- what DIM finds ---
  dim::accel::AcceleratedSystem system(
      program, dim::accel::SystemConfig::with(dim::rra::ArrayShape::config2(), 64, true));
  const dim::accel::AccelStats st = system.run();
  std::printf("\nDIM view (C#2, 64 slots, speculation):\n");
  std::printf("  %llu configurations built, %llu activations, %.1f%% of instructions on array\n",
              static_cast<unsigned long long>(st.rcache_insertions),
              static_cast<unsigned long long>(st.array_activations),
              100.0 * st.array_coverage());
  std::printf("  %llu misspeculations, %llu flushes, %llu extensions\n",
              static_cast<unsigned long long>(st.misspeculations),
              static_cast<unsigned long long>(st.config_flushes),
              static_cast<unsigned long long>(st.extensions));
  std::printf("  speedup vs baseline: %.2fx\n",
              static_cast<double>(run.cycles) / static_cast<double>(st.cycles));

  std::printf("\ncached configurations:\n");
  for (uint32_t pc : system.rcache().fifo_order()) {
    const dim::rra::Configuration* c = system.rcache().lookup(pc);
    std::printf("  start=0x%08x  %3d instructions  %2d basic blocks  %3d rows  in=%d out=%d\n",
                pc, c->instruction_count(), c->num_bbs, c->rows_used, c->input_regs,
                c->output_regs);
  }
  return 0;
}
