// Quickstart: assemble a MIPS program, run it on the plain core and on the
// DIM-accelerated core, and compare. This is the 60-second tour of the
// public API.
#include <cstdio>

#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "power/power_model.hpp"

int main() {
  // 1. Write (or load) a MIPS program. Any binary works unmodified — that
  //    is the whole point of Dynamic Instruction Merging.
  const char* source = R"(
        .data
vec:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
        .text
main:   la $t0, vec
        li $t1, 16            # elements
        li $t2, 0             # dot-product accumulator
        li $t3, 0             # i
loop:   sll $t4, $t3, 2
        addu $t5, $t0, $t4
        lw $t6, 0($t5)        # vec[i]
        mul $t7, $t6, $t6     # vec[i]^2
        addu $t2, $t2, $t7
        addiu $t3, $t3, 1
        bne $t3, $t1, loop
        move $a0, $t2
        li $v0, 1             # print integer
        syscall
        li $v0, 10            # exit
        syscall
)";
  const dim::asmblr::Program program = dim::asmblr::assemble(source);

  // 2. Baseline: the standalone MIPS R3000-class core.
  const dim::accel::AccelStats baseline =
      dim::accel::baseline_as_stats(program, dim::sim::MachineConfig{});
  std::printf("baseline:    output='%s'  %llu instructions, %llu cycles\n",
              baseline.final_state.output.c_str(),
              static_cast<unsigned long long>(baseline.instructions),
              static_cast<unsigned long long>(baseline.cycles));

  // 3. Accelerated: same binary, with the DIM translator + reconfigurable
  //    array watching the pipeline. Configuration #2 of the paper, 64
  //    reconfiguration-cache slots, speculation on.
  const dim::accel::SystemConfig config =
      dim::accel::SystemConfig::with(dim::rra::ArrayShape::config2(), 64, true);
  const dim::accel::AccelStats accel = dim::accel::run_accelerated(program, config);
  std::printf("accelerated: output='%s'  %llu instructions, %llu cycles\n",
              accel.final_state.output.c_str(),
              static_cast<unsigned long long>(accel.instructions),
              static_cast<unsigned long long>(accel.cycles));

  // 4. The paper's two headline metrics.
  std::printf("\nspeedup: %.2fx  (%.0f%% of instructions ran on the array, %llu activations)\n",
              static_cast<double>(baseline.cycles) / static_cast<double>(accel.cycles),
              100.0 * accel.array_coverage(),
              static_cast<unsigned long long>(accel.array_activations));
  const double e_base = dim::power::compute_energy(baseline, 0).total();
  const double e_accel = dim::power::compute_energy(accel, 64).total();
  std::printf("energy:  %.2fx less (%.1f nJ -> %.1f nJ)\n", e_base / e_accel, e_base, e_accel);

  // 5. Transparency: architectural results are bit-identical.
  const bool transparent =
      baseline.final_state.output == accel.final_state.output &&
      baseline.final_state.reg_hash() == accel.final_state.reg_hash() &&
      baseline.memory_hash == accel.memory_hash;
  std::printf("transparent: %s\n", transparent ? "yes" : "NO - BUG");
  return transparent ? 0 : 1;
}
