// Umbrella header: the full public API of the dimsim library.
//
//   #include "dimsim.hpp"
//
//   auto prog = dim::asmblr::assemble(source);
//   auto cfg  = dim::accel::SystemConfig::with(dim::rra::ArrayShape::config2(), 64, true);
//   auto run  = dim::accel::measure_speedup(prog, cfg);
//
// Layering (each header is also usable on its own):
//   isa/   -> asm/ -> mem/ -> sim/            (the MIPS substrate)
//   bt/    -> rra/ -> accel/                  (DIM + array + integration)
//   power/ , prof/ , work/                    (models, profiling, workloads)
#pragma once

#include "accel/stats.hpp"
#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "asm/program.hpp"
#include "bt/predictor.hpp"
#include "bt/rcache.hpp"
#include "bt/translator.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/instruction.hpp"
#include "isa/registers.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "power/area_model.hpp"
#include "power/power_model.hpp"
#include "prof/bb_profiler.hpp"
#include "rra/array_exec.hpp"
#include "rra/array_shape.hpp"
#include "rra/config_io.hpp"
#include "rra/configuration.hpp"
#include "rra/datapath.hpp"
#include "sim/cpu_state.hpp"
#include "sim/executor.hpp"
#include "sim/machine.hpp"
#include "sim/pipeline.hpp"
#include "sim/tracer.hpp"
#include "work/workload.hpp"
