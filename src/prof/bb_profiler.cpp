#include "prof/bb_profiler.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace dim::prof {

void BbProfiler::observe(const sim::StepInfo& info) {
  if (!in_block_) {
    current_start_ = info.pc;
    current_len_ = 0;
    in_block_ = true;
  }
  ++current_len_;
  ++total_instructions_;

  const bool is_branch = isa::is_branch(info.instr.op);
  const bool is_jump = isa::is_jump(info.instr.op);
  if (is_branch) ++cond_branches_;
  if (is_branch || is_jump) ++control_transfers_;

  if (is_branch || is_jump || info.halted) {
    BlockInfo& block = blocks_[current_start_];
    block.start_pc = current_start_;
    ++block.executions;
    block.instructions += current_len_;
    in_block_ = false;
  }
}

double BbProfiler::instructions_per_branch() const {
  return cond_branches_ == 0
             ? static_cast<double>(total_instructions_)
             : static_cast<double>(total_instructions_) / static_cast<double>(cond_branches_);
}

double BbProfiler::average_block_length() const {
  uint64_t executions = 0;
  uint64_t instructions = 0;
  for (const auto& [pc, block] : blocks_) {
    executions += block.executions;
    instructions += block.instructions;
  }
  return executions == 0 ? 0.0
                         : static_cast<double>(instructions) / static_cast<double>(executions);
}

std::vector<BbProfiler::BlockInfo> BbProfiler::blocks_by_weight() const {
  std::vector<BlockInfo> out;
  out.reserve(blocks_.size());
  for (const auto& [pc, block] : blocks_) out.push_back(block);
  std::sort(out.begin(), out.end(), [](const BlockInfo& a, const BlockInfo& b) {
    if (a.instructions != b.instructions) return a.instructions > b.instructions;
    return a.start_pc < b.start_pc;  // deterministic tie-break
  });
  return out;
}

int BbProfiler::blocks_to_cover(double fraction) const {
  const auto sorted = blocks_by_weight();
  uint64_t total = 0;
  for (const BlockInfo& b : sorted) total += b.instructions;
  if (total == 0) return 0;
  const double target = fraction * static_cast<double>(total);
  double acc = 0;
  int count = 0;
  for (const BlockInfo& b : sorted) {
    acc += static_cast<double>(b.instructions);
    ++count;
    if (acc >= target) return count;
  }
  return count;
}

}  // namespace dim::prof
