// Dynamic basic-block profiler — produces the workload characterization of
// the paper's Figure 3: instructions per branch (3b) and how many distinct
// basic blocks cover a given fraction of execution time (3a).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cpu_state.hpp"

namespace dim::prof {

class BbProfiler {
 public:
  // Feed every retired instruction (use as the Machine::run observer).
  void observe(const sim::StepInfo& info);

  struct BlockInfo {
    uint32_t start_pc = 0;
    uint64_t executions = 0;
    uint64_t instructions = 0;  // dynamic instruction count attributed
  };

  // Dynamic instructions per conditional branch (Figure 3b).
  double instructions_per_branch() const;

  // Average dynamic basic-block length in instructions.
  double average_block_length() const;

  // Blocks sorted by descending contribution to execution time
  // (instruction count as the proxy the paper uses).
  std::vector<BlockInfo> blocks_by_weight() const;

  // Minimum number of distinct blocks whose summed contribution reaches
  // `fraction` (0..1] of all dynamic instructions (Figure 3a).
  int blocks_to_cover(double fraction) const;

  uint64_t total_instructions() const { return total_instructions_; }
  uint64_t conditional_branches() const { return cond_branches_; }
  uint64_t control_transfers() const { return control_transfers_; }
  size_t distinct_blocks() const { return blocks_.size(); }

 private:
  std::unordered_map<uint32_t, BlockInfo> blocks_;
  uint32_t current_start_ = 0;
  uint64_t current_len_ = 0;
  bool in_block_ = false;
  uint64_t total_instructions_ = 0;
  uint64_t cond_branches_ = 0;
  uint64_t control_transfers_ = 0;
};

}  // namespace dim::prof
