#include "fuzz/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "accel/stats_io.hpp"
#include "accel/sweep.hpp"
#include "asm/assembler.hpp"

namespace dim::fuzz {

namespace {

// Stats-level divergence test used on sweep results (the detailed diff —
// byte-precise memory address, event context — comes from the oracle
// re-check of failing seeds). Must agree with oracle.cpp on what counts
// as a divergence.
bool stats_diverge(const accel::AccelStats& base, const accel::AccelStats& accel) {
  if (accel.hit_limit != base.hit_limit) return true;
  if (base.final_state.output != accel.final_state.output) return true;
  if (base.final_state.regs != accel.final_state.regs) return true;
  if (base.final_state.hi != accel.final_state.hi) return true;
  if (base.final_state.lo != accel.final_state.lo) return true;
  if (base.memory_hash != accel.memory_hash) return true;
  if (base.instructions != accel.instructions) return true;
  return false;
}

}  // namespace

const char* fault_injection_name(bt::FaultInjection fault) {
  switch (fault) {
    case bt::FaultInjection::kNone: return "none";
    case bt::FaultInjection::kAddiuImmOffByOne: return "addiu-imm";
    case bt::FaultInjection::kSubuSwapOperands: return "subu-swap";
  }
  return "unknown";
}

CampaignResult run_campaign(const CampaignOptions& options) {
  const std::vector<MatrixPoint> matrix =
      options.matrix.empty() ? full_matrix() : options.matrix;
  const int seeds = options.seeds;

  CampaignResult result;
  result.seed_start = options.seed_start;
  result.seeds_run = seeds;

  // Generate and assemble every seed's program up front; the sweep grid
  // references them by pointer.
  std::vector<FuzzProgram> sources(static_cast<size_t>(seeds));
  std::vector<asmblr::Program> programs(static_cast<size_t>(seeds));
  std::vector<bool> assembled(static_cast<size_t>(seeds), false);
  for (int s = 0; s < seeds; ++s) {
    sources[static_cast<size_t>(s)] =
        generate_program(options.seed_start + static_cast<uint64_t>(s), options.gen);
    try {
      programs[static_cast<size_t>(s)] =
          asmblr::assemble(sources[static_cast<size_t>(s)].render());
      assembled[static_cast<size_t>(s)] = true;
    } catch (const std::exception&) {
      ++result.inconclusive_seeds;
    }
  }

  sim::MachineConfig machine;
  machine.max_instructions = options.oracle.max_instructions;

  std::vector<accel::SweepPoint> points;
  std::vector<size_t> point_seed;  // grid row -> seed index
  points.reserve(static_cast<size_t>(seeds) * matrix.size());
  for (int s = 0; s < seeds; ++s) {
    if (!assembled[static_cast<size_t>(s)]) continue;
    for (const MatrixPoint& m : matrix) {
      accel::SweepPoint p;
      p.label = "seed" + std::to_string(options.seed_start + static_cast<uint64_t>(s)) +
                "/" + m.label;
      p.program = &programs[static_cast<size_t>(s)];
      p.config = m.config;
      p.config.machine = machine;
      p.config.fault_injection = options.oracle.fault;
      p.run_baseline = true;
      points.push_back(std::move(p));
      point_seed.push_back(static_cast<size_t>(s));
    }
  }

  accel::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  const accel::SweepEngine engine(sweep_options);
  const std::vector<accel::SweepResult> sweep = engine.run(points);

  // Scan in grid (== seed) order; everything from here on is serial and a
  // pure function of the ordered results.
  int shrinks_done = 0;
  for (size_t i = 0; i < sweep.size();) {
    const size_t s = point_seed[i];
    bool divergent = false;
    bool inconclusive = false;
    for (; i < sweep.size() && point_seed[i] == s; ++i) {
      if (sweep[i].baseline.hit_limit) {
        inconclusive = true;
      } else if (stats_diverge(sweep[i].baseline, sweep[i].accelerated)) {
        divergent = true;
      }
    }
    if (inconclusive && !divergent) {
      ++result.inconclusive_seeds;
      continue;
    }
    if (!divergent) continue;
    ++result.divergent_seeds;
    if (static_cast<int>(result.failures.size()) >= options.max_reported_failures) {
      continue;
    }

    CampaignFailure failure;
    failure.seed = options.seed_start + static_cast<uint64_t>(s);
    failure.program = sources[s];
    failure.shrunk_program = failure.program;

    // Detailed diff (first divergent register / memory byte, event tail).
    const OracleResult detail =
        check_program(failure.program.render(), matrix, options.oracle);
    if (detail.divergence.found) failure.divergence = detail.divergence;

    if (options.shrink && shrinks_done < options.max_shrinks &&
        detail.divergence.found) {
      // Minimize against the diverging matrix point only — cheaper per
      // candidate, and the failure is preserved by construction.
      std::vector<MatrixPoint> failing_point;
      for (const MatrixPoint& m : matrix) {
        if (m.label == detail.divergence.point_label) failing_point.push_back(m);
      }
      const OracleOptions oracle = options.oracle;
      const FailurePredicate still_fails = [&](const FuzzProgram& candidate) {
        const OracleResult r = check_program(candidate.render(), failing_point, oracle);
        return r.divergence.found;
      };
      ShrinkResult shrunk = shrink(failure.program, still_fails);
      failure.shrunk = true;
      failure.shrunk_program = std::move(shrunk.program);
      failure.shrink_stats = shrunk.stats;
      ++shrinks_done;
      // Re-derive the report from the minimized program.
      const OracleResult after =
          check_program(failure.shrunk_program.render(), failing_point, options.oracle);
      if (after.divergence.found) failure.divergence = after.divergence;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

CampaignResult run_dispatch_campaign(const CampaignOptions& options) {
  const std::vector<MatrixPoint> matrix =
      options.matrix.empty() ? full_matrix() : options.matrix;
  const int seeds = options.seeds;

  CampaignResult result;
  result.seed_start = options.seed_start;
  result.seeds_run = seeds;

  std::vector<FuzzProgram> sources(static_cast<size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    sources[static_cast<size_t>(s)] =
        generate_program(options.seed_start + static_cast<uint64_t>(s), options.gen);
  }

  // Each seed's verdict is independent and lands in its own slot, so the
  // aggregation below sees identical input for any worker count.
  std::vector<OracleResult> verdicts(static_cast<size_t>(seeds));
  std::atomic<int> next{0};
  unsigned threads =
      options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min(threads, static_cast<unsigned>(std::max(seeds, 1))));
  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int s; (s = next.fetch_add(1)) < seeds;) {
          verdicts[static_cast<size_t>(s)] = check_dispatch_program(
              sources[static_cast<size_t>(s)].render(), matrix, options.oracle);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  int shrinks_done = 0;
  for (int s = 0; s < seeds; ++s) {
    const OracleResult& verdict = verdicts[static_cast<size_t>(s)];
    if (verdict.inconclusive) {
      ++result.inconclusive_seeds;
      continue;
    }
    if (!verdict.divergence.found) continue;
    ++result.divergent_seeds;
    if (static_cast<int>(result.failures.size()) >= options.max_reported_failures) {
      continue;
    }

    CampaignFailure failure;
    failure.seed = options.seed_start + static_cast<uint64_t>(s);
    failure.program = sources[static_cast<size_t>(s)];
    failure.shrunk_program = failure.program;
    failure.divergence = verdict.divergence;

    if (options.shrink && shrinks_done < options.max_shrinks) {
      // "machine" failures shrink against the machine comparison alone
      // (empty matrix); point failures against the one diverging point.
      std::vector<MatrixPoint> failing_point;
      for (const MatrixPoint& m : matrix) {
        if (m.label == verdict.divergence.point_label) failing_point.push_back(m);
      }
      const OracleOptions oracle = options.oracle;
      const FailurePredicate still_fails = [&](const FuzzProgram& candidate) {
        const OracleResult r =
            check_dispatch_program(candidate.render(), failing_point, oracle);
        return r.divergence.found;
      };
      ShrinkResult shrunk = shrink(failure.program, still_fails);
      failure.shrunk = true;
      failure.shrunk_program = std::move(shrunk.program);
      failure.shrink_stats = shrunk.stats;
      ++shrinks_done;
      const OracleResult after = check_dispatch_program(
          failure.shrunk_program.render(), failing_point, options.oracle);
      if (after.divergence.found) failure.divergence = after.divergence;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

void write_campaign_json(std::ostream& out, const CampaignResult& result) {
  out << "{\n";
  out << "  \"seed_start\": " << result.seed_start << ",\n";
  out << "  \"seeds_run\": " << result.seeds_run << ",\n";
  out << "  \"divergent_seeds\": " << result.divergent_seeds << ",\n";
  out << "  \"inconclusive_seeds\": " << result.inconclusive_seeds << ",\n";
  out << "  \"failures\": [";
  for (size_t i = 0; i < result.failures.size(); ++i) {
    const CampaignFailure& f = result.failures[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\n";
    out << "      \"seed\": " << f.seed << ",\n";
    out << "      \"point\": \"" << accel::json_escape(f.divergence.point_label)
        << "\",\n";
    out << "      \"field\": \"" << divergence_field_name(f.divergence.field)
        << "\",\n";
    out << "      \"detail\": \"" << accel::json_escape(f.divergence.detail) << "\",\n";
    out << "      \"instructions\": " << f.program.instruction_count() << ",\n";
    out << "      \"shrunk\": " << (f.shrunk ? "true" : "false") << ",\n";
    out << "      \"shrunk_instructions\": " << f.shrunk_program.instruction_count()
        << ",\n";
    out << "      \"shrink_candidates_tried\": " << f.shrink_stats.candidates_tried
        << "\n";
    out << "    }";
  }
  out << "\n  ]\n}\n";
}

void write_repro_file(std::ostream& out, const CampaignFailure& failure,
                      const OracleOptions& oracle) {
  out << "# dimsim-fuzz reproducer\n";
  out << "# seed: " << failure.seed << "\n";
  out << "# matrix point: " << failure.divergence.point_label << "\n";
  out << "# divergence: " << divergence_field_name(failure.divergence.field) << " — "
      << failure.divergence.detail << "\n";
  out << "# fault injection: " << fault_injection_name(oracle.fault) << "\n";
  out << "# instructions: " << failure.shrunk_program.instruction_count()
      << (failure.shrunk
              ? " (shrunk from " + std::to_string(failure.program.instruction_count()) +
                    ")"
              : "")
      << "\n";
  if (!failure.divergence.recent_events.empty()) {
    out << "# recent events before divergence:\n";
    for (const obs::Event& e : failure.divergence.recent_events) {
      out << "#   " << obs::format_event(e) << "\n";
    }
  }
  out << "# replay: dimsim-fuzz --replay <this file>";
  if (oracle.fault != bt::FaultInjection::kNone) {
    out << " --inject-fault " << fault_injection_name(oracle.fault);
  }
  out << "\n\n";
  out << failure.shrunk_program.render();
}

}  // namespace dim::fuzz
