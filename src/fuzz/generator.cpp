#include "fuzz/generator.hpp"

#include <cstdlib>

namespace dim::fuzz {

std::string FuzzProgram::render() const {
  std::string out;
  for (const Stmt& s : stmts) {
    if (!s.label.empty()) {
      out += s.label;
      out += ":";
      if (!s.text.empty()) out += " ";
    } else if (!s.text.empty()) {
      out += "        ";
    }
    out += s.text;
    out += "\n";
  }
  return out;
}

int FuzzProgram::instruction_count() const {
  int n = 0;
  for (const Stmt& s : stmts) {
    if (s.is_instruction && !s.text.empty()) ++n;
  }
  return n;
}

int seed_budget(int default_seeds) {
  const char* env = std::getenv("DIMSIM_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return default_seeds;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : default_seeds;
}

namespace {

// Register allocation (fixed by convention so grammar pieces compose):
//   $t0..$t7  ($8..$15)  random data pool
//   $s0       buffer base; $s4 second (aliasing) pointer into the buffer
//   $s1..$s3  inner-loop counters, indexed by nesting depth
//   $s5,$s6   leaf-subroutine accumulators
//   $s7       outer loop counter
//   $at       scratch (div operands, speculation-bait compares)
class Gen {
 public:
  Gen(Rng& rng, const GenOptions& options) : rng_(rng), options_(options) {
    // Kind menu for emit_piece. The base grammar occupies 0..7 and is drawn
    // with the same range() call it always used, so default options draw
    // the exact statement stream they always have (a seed identifies a
    // program forever); each enabled mode appends its entries.
    for (int k = 0; k <= 7; ++k) menu_.push_back(k);
    if (options.code_page_stores || options.smc_patch_stores) menu_.push_back(8);
    if (options.hammocks) menu_.push_back(9);
    if (options.nested_hammocks) menu_.push_back(10);
    if (options.long_chains) menu_.push_back(11);
    if (options.lane_divergence) menu_.push_back(12);
  }

  FuzzProgram run() {
    emit_prologue();
    const int pieces = rng_.range(options_.min_pieces, options_.max_pieces);
    for (int p = 0; p < pieces; ++p) emit_piece(/*depth=*/0);
    emit_epilogue();
    return std::move(program_);
  }

 private:
  std::string treg() { return "$" + std::to_string(rng_.range(8, 15)); }
  std::string label(const std::string& stem) {
    return stem + std::to_string(label_counter_++);
  }

  void instr(const std::string& text, bool removable = true) {
    program_.stmts.push_back(Stmt{"", text, removable, true});
  }
  void labeled(const std::string& name) {
    program_.stmts.push_back(Stmt{name, "", false, false});
  }
  void directive(const std::string& text) {
    program_.stmts.push_back(Stmt{"", text, false, false});
  }

  void emit_prologue() {
    directive(".data");
    program_.stmts.push_back(
        Stmt{"buf", ".space " + std::to_string(options_.buffer_bytes), false, false});
    directive(".text");
    labeled("main");
    instr("la $s0, buf");
    // Second pointer into the middle of the same buffer: $s4-relative
    // accesses alias $s0-relative ones at mixed widths.
    instr("la $s4, buf+" + std::to_string(rng_.range(0, options_.buffer_bytes / 4) & ~3));
    for (int r = 8; r <= 15; ++r) {
      instr("li $" + std::to_string(r) + ", " + std::to_string(rng_.range(-9999, 9999)));
    }
    // Leaf subroutine, jumped over on the way in (jal/jr boundaries split
    // DIM sequences; the leaf body itself is a translatable block).
    const std::string entry = label("entry");
    instr("b " + entry, /*removable=*/false);
    labeled("leaf");
    instr("addu $s5, $s5, " + treg());
    instr("xor $s6, $s5, " + treg());
    instr("sll $s5, $s5, 1");
    instr("jr $ra", /*removable=*/false);
    labeled(entry);
    // Code-page base for the self-aliasing pieces ($t9 is otherwise unused).
    if (options_.code_page_stores || options_.smc_patch_stores) {
      instr("la $t9, main", /*removable=*/false);
    }
    instr("li $s7, " + std::to_string(rng_.range(12, 40)));
    labeled("body");
  }

  void emit_epilogue() {
    instr("addiu $s7, $s7, -1");
    instr("bnez $s7, body");
    instr("move $a0, $zero");
    for (int r = 8; r <= 15; ++r) instr("addu $a0, $a0, $" + std::to_string(r));
    for (int r = 17; r <= 22; ++r) instr("addu $a0, $a0, $" + std::to_string(r));
    instr("li $v0, 1");
    instr("syscall");
    instr("li $v0, 10", /*removable=*/false);
    instr("syscall", /*removable=*/false);
  }

  void emit_piece(int depth) {
    switch (menu_[rng_.range(0, static_cast<int>(menu_.size()) - 1)]) {
      case 8: emit_code_store(); break;
      case 9: emit_hammock(/*nested=*/false); break;
      case 10: emit_hammock(/*nested=*/true); break;
      case 11: emit_long_chain(); break;
      case 12: emit_lane_divergence(depth); break;
      case 0: emit_alu_block(); break;
      case 1: emit_mult_block(); break;
      case 2: emit_div_block(); break;
      case 3: emit_mem_block(); break;
      case 4: emit_forward_branch(); break;
      case 5: emit_spec_bait(); break;
      case 6:
        if (depth < options_.max_loop_depth) {
          emit_counted_loop(depth);
        } else {
          emit_alu_block();
        }
        break;
      default: emit_leaf_call(); break;
    }
  }

  // Straight-line block drawing from the full array-supported ALU op set
  // (three-register, shift, and immediate forms).
  void emit_alu_block() {
    const int n = rng_.range(3, 10);
    for (int i = 0; i < n; ++i) {
      switch (rng_.range(0, 9)) {
        case 0: case 1: case 2: case 3: {
          static const char* kRRR[] = {"addu", "subu", "add",  "sub", "and",
                                       "or",   "xor",  "nor",  "slt", "sltu",
                                       "sllv", "srlv", "srav"};
          const char* op = kRRR[rng_.range(0, 12)];
          instr(std::string(op) + " " + treg() + ", " + treg() + ", " + treg());
          break;
        }
        case 4: case 5: {
          static const char* kShift[] = {"sll", "srl", "sra"};
          instr(std::string(kShift[rng_.range(0, 2)]) + " " + treg() + ", " + treg() +
                ", " + std::to_string(rng_.range(0, 31)));
          break;
        }
        case 6: case 7: {
          static const char* kSImm[] = {"addi", "addiu", "slti", "sltiu"};
          instr(std::string(kSImm[rng_.range(0, 3)]) + " " + treg() + ", " + treg() +
                ", " + std::to_string(rng_.range(-512, 511)));
          break;
        }
        case 8: {
          static const char* kUImm[] = {"andi", "ori", "xori"};
          instr(std::string(kUImm[rng_.range(0, 2)]) + " " + treg() + ", " + treg() +
                ", " + std::to_string(rng_.range(0, 65535)));
          break;
        }
        default:
          instr("lui " + treg() + ", " + std::to_string(rng_.range(0, 65535)));
          break;
      }
    }
  }

  void emit_mult_block() {
    instr(std::string(rng_.chance(50) ? "mult " : "multu ") + treg() + ", " + treg());
    if (rng_.chance(80)) instr("mflo " + treg());
    if (rng_.chance(50)) instr("mfhi " + treg());
  }

  // Division is unsupported by the array: DIM must split the sequence
  // around it and the halves must still be transparent.
  void emit_div_block() {
    instr("li $at, " + std::to_string(rng_.range(1, 500)));
    instr(std::string(rng_.chance(50) ? "div " : "divu ") + treg() + ", $at");
    instr("mflo " + treg());
    if (rng_.chance(40)) instr("mfhi " + treg());
  }

  // Loads and stores at mixed widths through two pointers into the same
  // buffer — sub-word stores under words, sign-extending reloads of bytes
  // a word store just wrote, and so on. Offsets are aligned per width.
  void emit_mem_block() {
    const int n = rng_.range(2, 8);
    const int span = options_.buffer_bytes / 2;  // $s4 sits mid-buffer
    for (int i = 0; i < n; ++i) {
      const std::string base = rng_.chance(60) ? "$s0" : "$s4";
      switch (rng_.range(0, 7)) {
        case 0:
          instr("sw " + treg() + ", " + std::to_string(rng_.range(0, span / 4 - 1) * 4) +
                "(" + base + ")");
          break;
        case 1:
          instr("sh " + treg() + ", " + std::to_string(rng_.range(0, span / 2 - 1) * 2) +
                "(" + base + ")");
          break;
        case 2:
          instr("sb " + treg() + ", " + std::to_string(rng_.range(0, span - 1)) + "(" +
                base + ")");
          break;
        case 3:
          instr("lw " + treg() + ", " + std::to_string(rng_.range(0, span / 4 - 1) * 4) +
                "(" + base + ")");
          break;
        case 4:
          instr(std::string(rng_.chance(50) ? "lh " : "lhu ") + treg() + ", " +
                std::to_string(rng_.range(0, span / 2 - 1) * 2) + "(" + base + ")");
          break;
        default:
          instr(std::string(rng_.chance(50) ? "lb " : "lbu ") + treg() + ", " +
                std::to_string(rng_.range(0, span - 1)) + "(" + base + ")");
          break;
      }
    }
  }

  void emit_forward_branch() {
    const std::string skip = label("skip");
    switch (rng_.range(0, 2)) {
      case 0:
        instr(std::string(rng_.chance(50) ? "beq " : "bne ") + treg() + ", " + treg() +
              ", " + skip);
        break;
      case 1: {
        static const char* kCmp[] = {"blez", "bgtz", "bltz", "bgez"};
        instr(std::string(kCmp[rng_.range(0, 3)]) + " " + treg() + ", " + skip);
        break;
      }
      default:
        instr("beqz " + treg() + ", " + skip);
        break;
    }
    const int filler = rng_.range(1, 4);
    for (int i = 0; i < filler; ++i) {
      instr("addiu " + treg() + ", " + treg() + ", " + std::to_string(rng_.range(1, 9)));
    }
    labeled(skip);
  }

  // Speculation bait: a branch on the outer counter that goes the same way
  // for almost every iteration (saturating the bimodal counter, so DIM
  // extends the configuration across it), then flips for the last few
  // (forcing misspeculation squash of the speculative block — which
  // deliberately contains a store).
  void emit_spec_bait() {
    const std::string skip = label("bait");
    instr("slti $at, $s7, " + std::to_string(rng_.range(2, 5)));
    instr(std::string(rng_.chance(50) ? "beqz" : "bnez") + " $at, " + skip);
    instr("addu " + treg() + ", " + treg() + ", " + treg());
    instr("sw " + treg() + ", " + std::to_string(rng_.range(0, 31) * 4) + "($s4)");
    instr("addiu " + treg() + ", " + treg() + ", 1");
    labeled(skip);
  }

  void emit_counted_loop(int depth) {
    const std::string counter = "$s" + std::to_string(depth + 1);
    const std::string top = label("loop");
    instr("li " + counter + ", " + std::to_string(rng_.range(2, 6)));
    labeled(top);
    const int inner = rng_.range(1, 2);
    for (int i = 0; i < inner; ++i) emit_piece(depth + 1);
    instr("addiu " + counter + ", " + counter + ", -1");
    instr("bnez " + counter + ", " + top);
  }

  void emit_leaf_call() { instr("jal leaf"); }

  // Hammock / diamond bait (see GenOptions::hammocks). The branch condition
  // is data-dependent (pool registers), so both arms execute across the
  // run and predicated write-back is exercised in both directions.
  void emit_hammock(bool nested) {
    const std::string arm2 = label("ham");
    const std::string join = label("hjoin");
    if (rng_.chance(70)) {
      instr(std::string(rng_.chance(50) ? "beq " : "bne ") + treg() + ", " + treg() +
            ", " + arm2);
    } else {
      static const char* kCmp[] = {"blez", "bgtz", "bltz", "bgez"};
      instr(std::string(kCmp[rng_.range(0, 3)]) + " " + treg() + ", " + arm2);
    }
    if (nested) {
      // A branch inside the arm: the arm scan rejects it, so the OUTER
      // hammock must fall back to speculation — while the inner one stays
      // mergeable on its own once retirement reaches it.
      emit_hammock(/*nested=*/false);
      labeled(arm2);
      return;
    }
    emit_hammock_arm();
    if (rng_.chance(50)) {
      // Diamond: both arms exist, joined by an unconditional jump that
      // if-conversion turns into a predicated join.
      instr("b " + join);
      labeled(arm2);
      emit_hammock_arm();
      labeled(join);
    } else {
      labeled(arm2);  // if-then: the branch target is the join
    }
  }

  // One hammock arm. Short arms (the common draw) fit the translator's
  // default cap; the long tail and the div draw force the fallback path.
  // mult/mflo pairs route predication through HI/LO, sw through the store
  // buffer suppression.
  void emit_hammock_arm() {
    const int n = rng_.chance(80) ? rng_.range(1, 3) : rng_.range(5, 7);
    for (int i = 0; i < n; ++i) {
      switch (rng_.range(0, 5)) {
        case 0:
          instr("addiu " + treg() + ", " + treg() + ", " +
                std::to_string(rng_.range(-64, 64)));
          break;
        case 1:
          instr("addu " + treg() + ", " + treg() + ", " + treg());
          break;
        case 2:
          instr("xor " + treg() + ", " + treg() + ", " + treg());
          break;
        case 3:
          instr("sw " + treg() + ", " + std::to_string(rng_.range(0, 31) * 4) +
                "($s0)");
          break;
        case 4:
          instr("mult " + treg() + ", " + treg());
          instr("mflo " + treg());
          break;
        default:
          if (rng_.chance(20)) {
            instr("li $at, " + std::to_string(rng_.range(1, 99)));
            instr("div " + treg() + ", $at");
            instr("mflo " + treg());
          } else {
            instr("lw " + treg() + ", " + std::to_string(rng_.range(0, 31) * 4) +
                  "($s4)");
          }
          break;
      }
    }
  }

  // Serial dependence chain bait (see GenOptions::long_chains). Every link
  // reads the accumulator written by the previous link — through the ALU,
  // the multiplier, or a store/load round-trip — so the chain's critical
  // path is its full length; the independent filler between links is what
  // an elastic array can slide past the chain while row-sync waits row by
  // row. The chain register is drawn from the pool, so the epilogue's
  // checksum over $t0..$t7 keeps the whole chain architecturally live.
  void emit_long_chain() {
    const std::string acc = treg();
    const int links = rng_.range(4, 8);
    for (int i = 0; i < links; ++i) {
      switch (rng_.range(0, 3)) {
        case 0:
          instr("addu " + acc + ", " + acc + ", " + treg());
          break;
        case 1:
          instr("xor " + acc + ", " + acc + ", " + treg());
          break;
        case 2:
          instr("mult " + acc + ", " + treg());
          instr("mflo " + acc);
          break;
        default: {
          const int off = rng_.range(0, 31) * 4;
          instr("sw " + acc + ", " + std::to_string(off) + "($s0)");
          instr("lw " + acc + ", " + std::to_string(off) + "($s0)");
          break;
        }
      }
      const int filler = rng_.range(1, 2);
      for (int f = 0; f < filler; ++f) {
        instr("addiu " + treg() + ", " + treg() + ", " +
              std::to_string(rng_.range(1, 9)));
      }
    }
  }

  // Lane-divergence bait (see GenOptions::lane_divergence): a hammock
  // conditioned on the PARITY of the innermost live loop counter, so the
  // branch flips direction on every iteration. Adjacent iterations of the
  // same configuration then take opposite arms — exactly the pattern that
  // makes SIMT lanes of one warp disagree in their predicate masks.
  void emit_lane_divergence(int depth) {
    const std::string counter = depth > 0 ? "$s" + std::to_string(depth) : "$s7";
    const std::string arm2 = label("lane");
    const std::string join = label("ljoin");
    instr("andi $at, " + counter + ", 1");
    instr(std::string(rng_.chance(50) ? "beqz" : "bnez") + " $at, " + arm2);
    emit_hammock_arm();
    if (rng_.chance(50)) {
      instr("b " + join);
      labeled(arm2);
      emit_hammock_arm();
      labeled(join);
    } else {
      labeled(arm2);
    }
  }

  // Stores into the program's own code pages (see GenOptions). The
  // same-word rewrite loads an instruction word and stores it back
  // unchanged; the patch variant copies a donor instruction word over a
  // patch site, so the site's semantics actually change the first time
  // around (and keep being stored every outer iteration after that).
  void emit_code_store() {
    if (options_.smc_patch_stores && rng_.chance(50)) {
      const std::string site = label("patch");
      const std::string donor = label("donor");
      const std::string t = treg();
      instr("la $at, " + donor);
      instr("lw " + t + ", 0($at)");
      instr("la $at, " + site);
      instr("sw " + t + ", 0($at)");
      const std::string victim = treg();
      labeled(site);
      instr("addiu " + victim + ", " + victim + ", 1");
      labeled(donor);
      // The donor also executes in line; it is just as harmless as the
      // word it replaces.
      instr("addiu " + victim + ", " + victim + ", 3");
    } else {
      const int off = rng_.range(0, 63) * 4;
      instr("lw $at, " + std::to_string(off) + "($t9)");
      instr("sw $at, " + std::to_string(off) + "($t9)");
    }
  }

  Rng& rng_;
  const GenOptions& options_;
  FuzzProgram program_;
  std::vector<int> menu_;  // emit_piece kind menu (see constructor)
  int label_counter_ = 0;
};

}  // namespace

FuzzProgram generate_program(uint64_t seed, const GenOptions& options) {
  // Decorrelate adjacent seeds (campaigns use 0,1,2,...): run the raw seed
  // through the splitmix output mix once, so consecutive seeds start at
  // unrelated points of the state orbit. Seeding the state with an affine
  // function of the seed instead would hand every seed the SAME draw
  // stream shifted by a few steps — overlapping programs and a collapsed
  // op distribution.
  Rng scramble(seed ^ 0xA5A5A5A55A5A5A5Aull);
  Rng rng(scramble.next());
  return Gen(rng, options).run();
}

}  // namespace dim::fuzz
