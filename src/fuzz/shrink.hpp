// Delta-debugging counterexample shrinker (ddmin over statements).
//
// Given a failing FuzzProgram and a predicate "does this candidate still
// fail?", the shrinker removes removable statements in chunks of halving
// size until the program is 1-minimal: removing any single remaining
// removable statement makes the failure disappear. Labels and structural
// statements (entry, exit, data directives) are never removed, so every
// candidate assembles; candidates that loop forever or fail to trigger the
// divergence are simply rejected by the predicate.
//
// Guarantees (pinned by tests/test_fuzz.cpp):
//   - the result still satisfies the predicate (failure preserved),
//   - termination: every accepted step strictly shrinks the program and
//     every pass over one granularity is finite,
//   - determinism: candidate order is a pure function of the input, so a
//     fixed (program, predicate) pair always shrinks to the same result.
#pragma once

#include <functional>

#include "fuzz/generator.hpp"

namespace dim::fuzz {

// Returns true when the candidate still exhibits the failure being
// minimized. Must be deterministic.
using FailurePredicate = std::function<bool(const FuzzProgram&)>;

struct ShrinkStats {
  int candidates_tried = 0;   // predicate evaluations
  int candidates_accepted = 0;
  int rounds = 0;             // granularity passes
};

struct ShrinkResult {
  FuzzProgram program;
  ShrinkStats stats;
};

// Precondition: still_fails(failing) is true (checked; if not, the input is
// returned unchanged with zero stats).
ShrinkResult shrink(const FuzzProgram& failing, const FailurePredicate& still_fails);

}  // namespace dim::fuzz
