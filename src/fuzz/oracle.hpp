// Differential transparency oracle.
//
// The paper's contract: a run with DIM + the reconfigurable array must be
// architecturally indistinguishable from the plain Minimips pipeline. The
// oracle enforces that for one program across a matrix of system
// configurations (array shape x rcache size/policy x speculation depth):
// for each point it diffs program output, every general register, HI/LO,
// the full memory image (byte-precise, via mem::Memory::first_difference),
// retired-instruction count, and termination, and reports the first
// divergence together with the tail of the configuration-lifecycle event
// stream (obs/) as debugging context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "obs/event.hpp"

namespace dim::fuzz {

// One configuration-matrix point. The label names the point in reports
// ("shape2/lru64/spec3") and is stable across runs.
struct MatrixPoint {
  std::string label;
  accel::SystemConfig config;
};

// The full default matrix: 3 array shapes x {FIFO-4, LRU-64} rcache x
// {spec off, depth 1, depth 3}, each with and without predication +
// loop residency ("…/pred"). 36 points.
std::vector<MatrixPoint> full_matrix();
// A 6-point subset for smoke tests and per-candidate shrink checks
// (4 base points + 2 predication points).
std::vector<MatrixPoint> quick_matrix();

enum class DivergenceField : uint8_t {
  kNone = 0,
  kTermination,   // one side halted, the other hit the instruction limit
  kOutput,        // syscall output bytes differ
  kRegister,      // a general register differs (detail names the first)
  kHiLo,
  kMemory,        // memory images differ (detail has the first address)
  kRetiredCount,  // committed instruction counts differ
  // Dispatch-comparison fields (check_dispatch_program): the fast path
  // must match the slow path beyond architecture — cycle accounting,
  // every stats counter, and the stamped event stream.
  kCycles,
  kStats,
  kEvents,
};

const char* divergence_field_name(DivergenceField field);

struct Divergence {
  bool found = false;
  std::string point_label;       // matrix point that diverged first
  DivergenceField field = DivergenceField::kNone;
  std::string detail;            // human-readable: what differed, both values
  std::vector<obs::Event> recent_events;  // tail of the accelerated run's stream
};

struct OracleOptions {
  uint64_t max_instructions = 4'000'000;  // per run; both sides share it
  size_t event_context = 12;              // events kept in the report
  bt::FaultInjection fault = bt::FaultInjection::kNone;
};

struct OracleResult {
  // True when no verdict is possible: the source failed to assemble or
  // both sides hit the instruction limit (equal-cutoff states are not
  // comparable). Inconclusive candidates count as "no divergence".
  bool inconclusive = false;
  std::string inconclusive_reason;
  Divergence divergence;  // divergence.found == false: transparent everywhere
};

// Runs `source` on the baseline machine once and on the accelerated system
// at every matrix point, stopping at the first diverging point.
OracleResult check_program(const std::string& source,
                           const std::vector<MatrixPoint>& matrix,
                           const OracleOptions& options = {});

// Differential gate for the superblock trace dispatch (sim/trace_cache.hpp):
// runs `source` with host_trace_dispatch on and off and requires the two
// runs to be BIT-IDENTICAL — first on the plain Machine (registers, HI/LO,
// output, memory bytes, retired count, cycles, memory-access count), then
// on the accelerated system at every matrix point (final state, memory,
// the full stats JSON, and the stamped obs event stream). Unlike
// check_program, hitting the instruction limit is not inconclusive: both
// sides must stop at the same instruction in the same state, so limited
// runs are compared like any other. The divergence's point_label is
// "machine" for the baseline comparison, the matrix label otherwise.
OracleResult check_dispatch_program(const std::string& source,
                                    const std::vector<MatrixPoint>& matrix,
                                    const OracleOptions& options = {});

}  // namespace dim::fuzz
