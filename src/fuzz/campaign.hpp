// Fuzz campaigns: N seeds x the configuration matrix, fanned out over the
// SweepEngine worker pool.
//
// Detection runs as one sweep grid (seed x matrix point, each with its own
// baseline run inside the worker); failures are then re-examined serially
// in seed order — the differential oracle pinpoints the first divergence
// with event context, and the delta-debugging shrinker minimizes the
// program. Everything after the sweep is a pure function of the (ordered)
// sweep results, so a campaign's outcome — including its JSON document —
// is byte-identical for any worker-thread count.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

namespace dim::fuzz {

struct CampaignOptions {
  uint64_t seed_start = 0;
  int seeds = 100;
  unsigned threads = 0;             // 0 = hardware concurrency
  std::vector<MatrixPoint> matrix;  // empty = full_matrix()
  GenOptions gen;
  OracleOptions oracle;             // fault injection + run limits
  bool shrink = true;
  int max_shrinks = 1;              // failures minimized (in seed order)
  int max_reported_failures = 10;   // failures kept with full detail
};

struct CampaignFailure {
  uint64_t seed = 0;
  Divergence divergence;       // first divergence, with event context
  FuzzProgram program;         // as generated
  bool shrunk = false;
  FuzzProgram shrunk_program;  // == program when !shrunk
  ShrinkStats shrink_stats;
};

struct CampaignResult {
  uint64_t seed_start = 0;
  int seeds_run = 0;
  int divergent_seeds = 0;      // total count (not capped)
  int inconclusive_seeds = 0;   // assembly failure / both sides hit limit
  std::vector<CampaignFailure> failures;  // first max_reported_failures, by seed

  bool clean() const { return divergent_seeds == 0; }
};

CampaignResult run_campaign(const CampaignOptions& options);

// Fast-vs-slow dispatch campaign: every seed's program goes through
// check_dispatch_program (host_trace_dispatch on vs off must be
// bit-identical on the Machine and at every matrix point — state, memory,
// stats, events, cycles). This is the merge gate for changes to the
// superblock trace engine. Seeds are fanned out over a worker pool; the
// result (and its JSON) is a pure function of the options, independent of
// the thread count. Shrinking minimizes against the diverging matrix
// point (or the machine-level comparison alone when that is what failed).
CampaignResult run_dispatch_campaign(const CampaignOptions& options);

// One JSON document; deterministic for a fixed CampaignResult (and the
// result is thread-count-invariant, so so is the document).
void write_campaign_json(std::ostream& out, const CampaignResult& result);

// Self-contained reproducer: '#'-commented header (seed, matrix point,
// divergence, fault, recent events) followed by the shrunk program — the
// whole file assembles as-is and can be replayed with dimsim-fuzz --replay.
void write_repro_file(std::ostream& out, const CampaignFailure& failure,
                      const OracleOptions& oracle);

const char* fault_injection_name(bt::FaultInjection fault);

}  // namespace dim::fuzz
