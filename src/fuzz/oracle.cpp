#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <sstream>

#include "accel/stats_io.hpp"
#include "asm/assembler.hpp"
#include "sim/machine.hpp"

namespace dim::fuzz {

namespace {

std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string u64(uint64_t v) { return std::to_string(v); }

accel::SystemConfig make_config(const rra::ArrayShape& shape, size_t slots,
                                bt::Replacement policy, bool spec, int depth) {
  accel::SystemConfig c;
  c.shape = shape;
  c.cache_slots = slots;
  c.cache_replacement = policy;
  c.speculation = spec;
  c.max_spec_bbs = depth;
  return c;
}

void add_shape_points(std::vector<MatrixPoint>& out, const std::string& shape_label,
                      const rra::ArrayShape& shape) {
  struct CacheChoice {
    const char* label;
    size_t slots;
    bt::Replacement policy;
  };
  struct SpecChoice {
    const char* label;
    bool spec;
    int depth;
  };
  static const CacheChoice kCaches[] = {{"fifo4", 4, bt::Replacement::kFifo},
                                        {"lru64", 64, bt::Replacement::kLru}};
  static const SpecChoice kSpecs[] = {
      {"nospec", false, 3}, {"spec1", true, 1}, {"spec3", true, 3}};
  for (const CacheChoice& cache : kCaches) {
    for (const SpecChoice& spec : kSpecs) {
      MatrixPoint p;
      p.label = shape_label + "/" + cache.label + "/" + spec.label;
      p.config = make_config(shape, cache.slots, cache.policy, spec.spec, spec.depth);
      out.push_back(std::move(p));
    }
  }
}

}  // namespace

std::vector<MatrixPoint> full_matrix() {
  std::vector<MatrixPoint> out;
  add_shape_points(out, "shape1", rra::ArrayShape::config1());
  add_shape_points(out, "shape2", rra::ArrayShape::config2());
  add_shape_points(out, "tiny", rra::ArrayShape{6, 3, 1, 1});
  // The predication axis: every point again with if-conversion and loop
  // residency on ("…/pred"), doubling the grid to 36 points. Residency is
  // timing-only and predication must be transparent, so every /pred point
  // answers to the same oracles as its base point.
  const size_t base_points = out.size();
  for (size_t i = 0; i < base_points; ++i) {
    MatrixPoint p = out[i];
    p.label += "/pred";
    p.config.predication = true;
    p.config.residency = accel::Residency::kLoop;
    out.push_back(std::move(p));
  }
  // The execution-mode axis (src/rra/exec_mode/): every base point again
  // under the elastic and SIMT personalities, 72 points in total. Both
  // modes share the functional core with row-sync, so they answer to the
  // same architectural oracles; only timing/stats may differ — and those
  // must still agree between slow and fast dispatch at the same point.
  // Predication is on so that SIMT's per-lane masks and elastic's
  // predicate-slot edges actually get exercised; capacities/lanes
  // alternate so both a backpressure-heavy (cap 1) and a relaxed (cap 4)
  // FIFO, and both narrow and wide warps, appear in the grid.
  for (size_t i = 0; i < base_points; ++i) {
    MatrixPoint p = out[i];
    p.label += "/elastic";
    p.config.predication = true;
    p.config.exec_mode.mode = rra::ExecMode::kElastic;
    p.config.exec_mode.fifo_capacity = (i % 2 == 0) ? 1 : 4;
    out.push_back(std::move(p));
  }
  for (size_t i = 0; i < base_points; ++i) {
    MatrixPoint p = out[i];
    p.label += "/simt";
    p.config.predication = true;
    p.config.exec_mode.mode = rra::ExecMode::kSimt;
    p.config.exec_mode.lanes = (i % 2 == 0) ? 2 : 4;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<MatrixPoint> quick_matrix() {
  std::vector<MatrixPoint> out;
  MatrixPoint p;
  p.label = "shape1/fifo4/spec3";
  p.config = make_config(rra::ArrayShape::config1(), 4, bt::Replacement::kFifo, true, 3);
  out.push_back(p);
  p.label = "shape2/lru64/nospec";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, false, 3);
  out.push_back(p);
  p.label = "tiny/fifo4/spec1";
  p.config = make_config(rra::ArrayShape{6, 3, 1, 1}, 4, bt::Replacement::kFifo, true, 1);
  out.push_back(p);
  p.label = "shape2/lru64/spec3";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, true, 3);
  out.push_back(p);
  p.label = "shape1/fifo4/spec3/pred";
  p.config = make_config(rra::ArrayShape::config1(), 4, bt::Replacement::kFifo, true, 3);
  p.config.predication = true;
  p.config.residency = accel::Residency::kLoop;
  out.push_back(p);
  p.label = "shape2/lru64/nospec/pred";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, false, 3);
  p.config.predication = true;
  p.config.residency = accel::Residency::kLoop;
  out.push_back(p);
  p.label = "shape1/fifo4/spec3/elastic";
  p.config = make_config(rra::ArrayShape::config1(), 4, bt::Replacement::kFifo, true, 3);
  p.config.predication = true;
  p.config.exec_mode.mode = rra::ExecMode::kElastic;
  p.config.exec_mode.fifo_capacity = 1;
  out.push_back(p);
  p.label = "shape2/lru64/spec3/simt";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, true, 3);
  p.config.predication = true;
  p.config.exec_mode.mode = rra::ExecMode::kSimt;
  p.config.exec_mode.lanes = 4;
  out.push_back(p);
  return out;
}

const char* divergence_field_name(DivergenceField field) {
  switch (field) {
    case DivergenceField::kNone: return "none";
    case DivergenceField::kTermination: return "termination";
    case DivergenceField::kOutput: return "output";
    case DivergenceField::kRegister: return "register";
    case DivergenceField::kHiLo: return "hi_lo";
    case DivergenceField::kMemory: return "memory";
    case DivergenceField::kRetiredCount: return "retired_count";
    case DivergenceField::kCycles: return "cycles";
    case DivergenceField::kStats: return "stats";
    case DivergenceField::kEvents: return "events";
  }
  return "unknown";
}

namespace {

// Architectural diff shared by the two dispatch comparisons ("slow" = no
// trace dispatch, "fast" = trace dispatch). Fills field/detail on the
// first mismatch; leaves kNone when the states agree.
void diff_cpu_state(const sim::CpuState& slow, const sim::CpuState& fast,
                    Divergence& d) {
  if (slow.halted != fast.halted) {
    d.field = DivergenceField::kTermination;
    d.detail = std::string("halted: slow ") + (slow.halted ? "true" : "false") +
               " vs fast " + (fast.halted ? "true" : "false");
    return;
  }
  if (slow.output != fast.output) {
    d.field = DivergenceField::kOutput;
    d.detail = "program output differs: slow \"" + slow.output + "\" vs fast \"" +
               fast.output + "\"";
    return;
  }
  for (size_t r = 0; r < slow.regs.size(); ++r) {
    if (slow.regs[r] != fast.regs[r]) {
      d.field = DivergenceField::kRegister;
      d.detail = "register $" + std::to_string(r) + ": slow " + hex32(slow.regs[r]) +
                 " vs fast " + hex32(fast.regs[r]);
      return;
    }
  }
  if (slow.pc != fast.pc) {
    d.field = DivergenceField::kRegister;
    d.detail = "pc: slow " + hex32(slow.pc) + " vs fast " + hex32(fast.pc);
    return;
  }
  if (slow.hi != fast.hi || slow.lo != fast.lo) {
    d.field = DivergenceField::kHiLo;
    d.detail = "hi/lo: slow " + hex32(slow.hi) + "/" + hex32(slow.lo) + " vs fast " +
               hex32(fast.hi) + "/" + hex32(fast.lo);
  }
}

void diff_memory(const mem::Memory& slow, const mem::Memory& fast, Divergence& d) {
  const auto addr = slow.first_difference(fast);
  if (addr.has_value()) {
    d.field = DivergenceField::kMemory;
    d.detail = "memory byte at " + hex32(*addr) + ": slow " + hex32(slow.read8(*addr)) +
               " vs fast " + hex32(fast.read8(*addr));
  }
}

// First differing line of two multi-line strings, for kStats details.
std::string first_line_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(identical?)";
    if (!ga || !gb || la != lb) {
      return "slow `" + (ga ? la : std::string("<eof>")) + "` vs fast `" +
             (gb ? lb : std::string("<eof>")) + "`";
    }
  }
}

}  // namespace

OracleResult check_dispatch_program(const std::string& source,
                                    const std::vector<MatrixPoint>& matrix,
                                    const OracleOptions& options) {
  OracleResult result;

  asmblr::Program program;
  try {
    program = asmblr::assemble(source);
  } catch (const std::exception& e) {
    result.inconclusive = true;
    result.inconclusive_reason = std::string("assembly failed: ") + e.what();
    return result;
  }

  // Level 1: the plain Machine, slow vs fast. Both sides share the limit
  // and must cut at the same instruction, so hitting it is comparable.
  sim::MachineConfig slow_cfg;
  slow_cfg.max_instructions = options.max_instructions;
  slow_cfg.host_trace_dispatch = false;
  sim::MachineConfig fast_cfg = slow_cfg;
  fast_cfg.host_trace_dispatch = true;

  sim::Machine slow_machine(program, slow_cfg);
  sim::Machine fast_machine(program, fast_cfg);
  const sim::RunResult rs = slow_machine.run();
  const sim::RunResult rf = fast_machine.run();

  {
    Divergence d;
    d.point_label = "machine";
    diff_cpu_state(rs.state, rf.state, d);
    if (d.field == DivergenceField::kNone) {
      diff_memory(slow_machine.memory(), fast_machine.memory(), d);
    }
    if (d.field == DivergenceField::kNone && rs.instructions != rf.instructions) {
      d.field = DivergenceField::kRetiredCount;
      d.detail = "retired instructions: slow " + u64(rs.instructions) + " vs fast " +
                 u64(rf.instructions);
    }
    if (d.field == DivergenceField::kNone &&
        (rs.cycles != rf.cycles || rs.icache_misses != rf.icache_misses ||
         rs.dcache_misses != rf.dcache_misses)) {
      d.field = DivergenceField::kCycles;
      d.detail = "cycles/ic-misses/dc-misses: slow " + u64(rs.cycles) + "/" +
                 u64(rs.icache_misses) + "/" + u64(rs.dcache_misses) + " vs fast " +
                 u64(rf.cycles) + "/" + u64(rf.icache_misses) + "/" +
                 u64(rf.dcache_misses);
    }
    if (d.field == DivergenceField::kNone && rs.mem_accesses != rf.mem_accesses) {
      d.field = DivergenceField::kStats;
      d.detail = "memory accesses: slow " + u64(rs.mem_accesses) + " vs fast " +
                 u64(rf.mem_accesses);
    }
    if (d.field != DivergenceField::kNone) {
      d.found = true;
      result.divergence = std::move(d);
      return result;
    }
  }

  // Level 2: the accelerated system at every matrix point, slow vs fast —
  // stats counters via the (schema-complete) JSON form and the stamped
  // event stream, on top of the architectural diff.
  for (const MatrixPoint& point : matrix) {
    obs::RecordingSink slow_sink;
    obs::RecordingSink fast_sink;
    accel::SystemConfig slow_sys_cfg = point.config;
    slow_sys_cfg.machine = slow_cfg;
    slow_sys_cfg.event_sink = &slow_sink;
    slow_sys_cfg.fault_injection = options.fault;
    accel::SystemConfig fast_sys_cfg = slow_sys_cfg;
    fast_sys_cfg.machine = fast_cfg;
    fast_sys_cfg.event_sink = &fast_sink;

    accel::AcceleratedSystem slow_sys(program, slow_sys_cfg);
    accel::AcceleratedSystem fast_sys(program, fast_sys_cfg);
    const accel::AccelStats as = slow_sys.run();
    const accel::AccelStats af = fast_sys.run();

    Divergence d;
    d.point_label = point.label;
    diff_cpu_state(as.final_state, af.final_state, d);
    if (d.field == DivergenceField::kNone) {
      diff_memory(slow_sys.memory(), fast_sys.memory(), d);
    }
    if (d.field == DivergenceField::kNone && as.instructions != af.instructions) {
      d.field = DivergenceField::kRetiredCount;
      d.detail = "retired instructions: slow " + u64(as.instructions) + " vs fast " +
                 u64(af.instructions);
    }
    if (d.field == DivergenceField::kNone && as.cycles != af.cycles) {
      d.field = DivergenceField::kCycles;
      d.detail = "cycles: slow " + u64(as.cycles) + " vs fast " + u64(af.cycles);
    }
    if (d.field == DivergenceField::kNone) {
      std::ostringstream js;
      std::ostringstream jf;
      accel::write_json(js, as, "cmp");
      accel::write_json(jf, af, "cmp");
      if (js.str() != jf.str()) {
        d.field = DivergenceField::kStats;
        d.detail = "stats: " + first_line_diff(js.str(), jf.str());
      }
    }
    if (d.field == DivergenceField::kNone) {
      const std::vector<obs::Event>& es = slow_sink.events();
      const std::vector<obs::Event>& ef = fast_sink.events();
      if (es.size() != ef.size()) {
        d.field = DivergenceField::kEvents;
        d.detail = "event count: slow " + u64(es.size()) + " vs fast " +
                   u64(ef.size());
      } else {
        for (size_t k = 0; k < es.size(); ++k) {
          if (obs::format_event(es[k]) != obs::format_event(ef[k])) {
            d.field = DivergenceField::kEvents;
            d.detail = "event " + u64(k) + ": slow `" + obs::format_event(es[k]) +
                       "` vs fast `" + obs::format_event(ef[k]) + "`";
            break;
          }
        }
      }
    }

    if (d.field != DivergenceField::kNone) {
      d.found = true;
      const std::vector<obs::Event>& events = fast_sink.events();
      const size_t keep = std::min(options.event_context, events.size());
      d.recent_events.assign(events.end() - static_cast<ptrdiff_t>(keep), events.end());
      result.divergence = std::move(d);
      return result;
    }
  }
  return result;
}

OracleResult check_program(const std::string& source,
                           const std::vector<MatrixPoint>& matrix,
                           const OracleOptions& options) {
  OracleResult result;

  asmblr::Program program;
  try {
    program = asmblr::assemble(source);
  } catch (const std::exception& e) {
    result.inconclusive = true;
    result.inconclusive_reason = std::string("assembly failed: ") + e.what();
    return result;
  }

  sim::MachineConfig machine;
  machine.max_instructions = options.max_instructions;
  sim::Machine baseline(program, machine);
  const sim::RunResult base = baseline.run();
  if (base.hit_limit) {
    result.inconclusive = true;
    result.inconclusive_reason =
        "baseline hit the instruction limit (" + u64(machine.max_instructions) + ")";
    return result;
  }

  for (const MatrixPoint& point : matrix) {
    obs::RecordingSink sink;
    accel::SystemConfig config = point.config;
    config.machine = machine;
    config.event_sink = &sink;
    config.fault_injection = options.fault;
    accel::AcceleratedSystem system(program, config);
    const accel::AccelStats accel = system.run();

    Divergence d;
    d.point_label = point.label;
    if (accel.hit_limit) {
      // The baseline halted (checked above), so a limited accelerated run
      // IS an architecturally visible difference — it never terminates.
      d.field = DivergenceField::kTermination;
      d.detail = "baseline halted after " + u64(base.instructions) +
                 " instructions; accelerated still running at the limit (" +
                 u64(machine.max_instructions) + ")";
    } else if (base.state.output != accel.final_state.output) {
      d.field = DivergenceField::kOutput;
      d.detail = "program output differs: baseline \"" + base.state.output +
                 "\" vs accelerated \"" + accel.final_state.output + "\"";
    } else {
      for (size_t r = 0; r < base.state.regs.size(); ++r) {
        if (base.state.regs[r] != accel.final_state.regs[r]) {
          d.field = DivergenceField::kRegister;
          d.detail = "register $" + std::to_string(r) + ": baseline " +
                     hex32(base.state.regs[r]) + " vs accelerated " +
                     hex32(accel.final_state.regs[r]);
          break;
        }
      }
      if (d.field == DivergenceField::kNone &&
          (base.state.hi != accel.final_state.hi ||
           base.state.lo != accel.final_state.lo)) {
        d.field = DivergenceField::kHiLo;
        d.detail = "hi/lo: baseline " + hex32(base.state.hi) + "/" +
                   hex32(base.state.lo) + " vs accelerated " +
                   hex32(accel.final_state.hi) + "/" + hex32(accel.final_state.lo);
      }
      if (d.field == DivergenceField::kNone) {
        const auto addr = baseline.memory().first_difference(system.memory());
        if (addr.has_value()) {
          d.field = DivergenceField::kMemory;
          d.detail = "memory byte at " + hex32(*addr) + ": baseline " +
                     hex32(baseline.memory().read8(*addr)) + " vs accelerated " +
                     hex32(system.memory().read8(*addr));
        }
      }
      if (d.field == DivergenceField::kNone && base.instructions != accel.instructions) {
        d.field = DivergenceField::kRetiredCount;
        d.detail = "retired instructions: baseline " + u64(base.instructions) +
                   " vs accelerated " + u64(accel.instructions);
      }
    }

    if (d.field != DivergenceField::kNone) {
      d.found = true;
      const std::vector<obs::Event>& events = sink.events();
      const size_t keep = std::min(options.event_context, events.size());
      d.recent_events.assign(events.end() - static_cast<ptrdiff_t>(keep), events.end());
      result.divergence = std::move(d);
      return result;
    }
  }
  return result;
}

}  // namespace dim::fuzz
