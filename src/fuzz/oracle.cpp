#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"

namespace dim::fuzz {

namespace {

std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string u64(uint64_t v) { return std::to_string(v); }

accel::SystemConfig make_config(const rra::ArrayShape& shape, size_t slots,
                                bt::Replacement policy, bool spec, int depth) {
  accel::SystemConfig c;
  c.shape = shape;
  c.cache_slots = slots;
  c.cache_replacement = policy;
  c.speculation = spec;
  c.max_spec_bbs = depth;
  return c;
}

void add_shape_points(std::vector<MatrixPoint>& out, const std::string& shape_label,
                      const rra::ArrayShape& shape) {
  struct CacheChoice {
    const char* label;
    size_t slots;
    bt::Replacement policy;
  };
  struct SpecChoice {
    const char* label;
    bool spec;
    int depth;
  };
  static const CacheChoice kCaches[] = {{"fifo4", 4, bt::Replacement::kFifo},
                                        {"lru64", 64, bt::Replacement::kLru}};
  static const SpecChoice kSpecs[] = {
      {"nospec", false, 3}, {"spec1", true, 1}, {"spec3", true, 3}};
  for (const CacheChoice& cache : kCaches) {
    for (const SpecChoice& spec : kSpecs) {
      MatrixPoint p;
      p.label = shape_label + "/" + cache.label + "/" + spec.label;
      p.config = make_config(shape, cache.slots, cache.policy, spec.spec, spec.depth);
      out.push_back(std::move(p));
    }
  }
}

}  // namespace

std::vector<MatrixPoint> full_matrix() {
  std::vector<MatrixPoint> out;
  add_shape_points(out, "shape1", rra::ArrayShape::config1());
  add_shape_points(out, "shape2", rra::ArrayShape::config2());
  add_shape_points(out, "tiny", rra::ArrayShape{6, 3, 1, 1});
  return out;
}

std::vector<MatrixPoint> quick_matrix() {
  std::vector<MatrixPoint> out;
  MatrixPoint p;
  p.label = "shape1/fifo4/spec3";
  p.config = make_config(rra::ArrayShape::config1(), 4, bt::Replacement::kFifo, true, 3);
  out.push_back(p);
  p.label = "shape2/lru64/nospec";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, false, 3);
  out.push_back(p);
  p.label = "tiny/fifo4/spec1";
  p.config = make_config(rra::ArrayShape{6, 3, 1, 1}, 4, bt::Replacement::kFifo, true, 1);
  out.push_back(p);
  p.label = "shape2/lru64/spec3";
  p.config = make_config(rra::ArrayShape::config2(), 64, bt::Replacement::kLru, true, 3);
  out.push_back(p);
  return out;
}

const char* divergence_field_name(DivergenceField field) {
  switch (field) {
    case DivergenceField::kNone: return "none";
    case DivergenceField::kTermination: return "termination";
    case DivergenceField::kOutput: return "output";
    case DivergenceField::kRegister: return "register";
    case DivergenceField::kHiLo: return "hi_lo";
    case DivergenceField::kMemory: return "memory";
    case DivergenceField::kRetiredCount: return "retired_count";
  }
  return "unknown";
}

OracleResult check_program(const std::string& source,
                           const std::vector<MatrixPoint>& matrix,
                           const OracleOptions& options) {
  OracleResult result;

  asmblr::Program program;
  try {
    program = asmblr::assemble(source);
  } catch (const std::exception& e) {
    result.inconclusive = true;
    result.inconclusive_reason = std::string("assembly failed: ") + e.what();
    return result;
  }

  sim::MachineConfig machine;
  machine.max_instructions = options.max_instructions;
  sim::Machine baseline(program, machine);
  const sim::RunResult base = baseline.run();
  if (base.hit_limit) {
    result.inconclusive = true;
    result.inconclusive_reason =
        "baseline hit the instruction limit (" + u64(machine.max_instructions) + ")";
    return result;
  }

  for (const MatrixPoint& point : matrix) {
    obs::RecordingSink sink;
    accel::SystemConfig config = point.config;
    config.machine = machine;
    config.event_sink = &sink;
    config.fault_injection = options.fault;
    accel::AcceleratedSystem system(program, config);
    const accel::AccelStats accel = system.run();

    Divergence d;
    d.point_label = point.label;
    if (accel.hit_limit) {
      // The baseline halted (checked above), so a limited accelerated run
      // IS an architecturally visible difference — it never terminates.
      d.field = DivergenceField::kTermination;
      d.detail = "baseline halted after " + u64(base.instructions) +
                 " instructions; accelerated still running at the limit (" +
                 u64(machine.max_instructions) + ")";
    } else if (base.state.output != accel.final_state.output) {
      d.field = DivergenceField::kOutput;
      d.detail = "program output differs: baseline \"" + base.state.output +
                 "\" vs accelerated \"" + accel.final_state.output + "\"";
    } else {
      for (size_t r = 0; r < base.state.regs.size(); ++r) {
        if (base.state.regs[r] != accel.final_state.regs[r]) {
          d.field = DivergenceField::kRegister;
          d.detail = "register $" + std::to_string(r) + ": baseline " +
                     hex32(base.state.regs[r]) + " vs accelerated " +
                     hex32(accel.final_state.regs[r]);
          break;
        }
      }
      if (d.field == DivergenceField::kNone &&
          (base.state.hi != accel.final_state.hi ||
           base.state.lo != accel.final_state.lo)) {
        d.field = DivergenceField::kHiLo;
        d.detail = "hi/lo: baseline " + hex32(base.state.hi) + "/" +
                   hex32(base.state.lo) + " vs accelerated " +
                   hex32(accel.final_state.hi) + "/" + hex32(accel.final_state.lo);
      }
      if (d.field == DivergenceField::kNone) {
        const auto addr = baseline.memory().first_difference(system.memory());
        if (addr.has_value()) {
          d.field = DivergenceField::kMemory;
          d.detail = "memory byte at " + hex32(*addr) + ": baseline " +
                     hex32(baseline.memory().read8(*addr)) + " vs accelerated " +
                     hex32(system.memory().read8(*addr));
        }
      }
      if (d.field == DivergenceField::kNone && base.instructions != accel.instructions) {
        d.field = DivergenceField::kRetiredCount;
        d.detail = "retired instructions: baseline " + u64(base.instructions) +
                   " vs accelerated " + u64(accel.instructions);
      }
    }

    if (d.field != DivergenceField::kNone) {
      d.found = true;
      const std::vector<obs::Event>& events = sink.events();
      const size_t keep = std::min(options.event_context, events.size());
      d.recent_events.assign(events.end() - static_cast<ptrdiff_t>(keep), events.end());
      result.divergence = std::move(d);
      return result;
    }
  }
  return result;
}

}  // namespace dim::fuzz
