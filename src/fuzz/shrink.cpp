#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cstddef>

namespace dim::fuzz {

namespace {

// Indices of statements the shrinker may remove.
std::vector<size_t> removable_indices(const FuzzProgram& p) {
  std::vector<size_t> out;
  for (size_t i = 0; i < p.stmts.size(); ++i) {
    if (p.stmts[i].removable && !p.stmts[i].text.empty()) out.push_back(i);
  }
  return out;
}

// Removes the given statement indices. A labeled statement keeps its label
// (branch targets must stay defined); an unlabeled one disappears.
FuzzProgram remove_stmts(const FuzzProgram& p, const std::vector<size_t>& victims) {
  FuzzProgram out;
  out.stmts.reserve(p.stmts.size());
  size_t v = 0;
  for (size_t i = 0; i < p.stmts.size(); ++i) {
    if (v < victims.size() && victims[v] == i) {
      ++v;
      if (!p.stmts[i].label.empty()) {
        Stmt keep = p.stmts[i];
        keep.text.clear();
        keep.is_instruction = false;
        out.stmts.push_back(std::move(keep));
      }
      continue;
    }
    out.stmts.push_back(p.stmts[i]);
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const FuzzProgram& failing, const FailurePredicate& still_fails) {
  ShrinkResult result;
  result.program = failing;
  if (!still_fails(failing)) return result;  // precondition violated: no-op

  size_t chunk = std::max<size_t>(1, removable_indices(failing).size() / 2);
  for (;;) {
    ++result.stats.rounds;
    bool removed_any = false;
    size_t pos = 0;
    for (;;) {
      const std::vector<size_t> indices = removable_indices(result.program);
      if (pos >= indices.size()) break;
      const size_t take = std::min(chunk, indices.size() - pos);
      const std::vector<size_t> victims(indices.begin() + static_cast<ptrdiff_t>(pos),
                                        indices.begin() +
                                            static_cast<ptrdiff_t>(pos + take));
      FuzzProgram candidate = remove_stmts(result.program, victims);
      ++result.stats.candidates_tried;
      if (still_fails(candidate)) {
        // Keep the cut; the indices after `pos` shifted, so re-enumerate
        // without advancing.
        result.program = std::move(candidate);
        ++result.stats.candidates_accepted;
        removed_any = true;
      } else {
        pos += take;
      }
    }
    if (chunk == 1) {
      // 1-minimal once a full single-statement pass removes nothing.
      if (!removed_any) break;
    } else {
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return result;
}

}  // namespace dim::fuzz
