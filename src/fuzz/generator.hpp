// Seeded structured program generator for the differential fuzzer.
//
// Programs are built from composable grammar pieces — straight ALU blocks
// over the full array-supported op set, nested counted loops, forward and
// backward branches, speculation bait (branches biased one way for most of
// a loop and flipping near the end, to exercise bimodal saturation,
// speculative extension and the misspeculation squash paths), mixed
// supported/unsupported ops (div splits a sequence), leaf calls (jal/jr
// boundaries), and load/store aliasing at mixed widths — driven by a
// deterministic PRNG, so a seed identifies a program forever.
//
// The output is a statement list, not flat text: every statement can carry
// a label and can be individually removed while keeping the program
// assemblable (labels survive removal so branch targets stay defined).
// That statement granularity is exactly what the delta-debugging shrinker
// (fuzz/shrink.hpp) minimizes over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dim::fuzz {

// Deterministic PRNG (splitmix64). Unlike <random> distributions, every
// draw is fully specified here, so a seed reproduces the same program on
// any platform, compiler, and thread count.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi], inclusive. Requires lo <= hi.
  int range(int lo, int hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
  }

  bool chance(int percent) { return range(0, 99) < percent; }

 private:
  uint64_t state_;
};

// One assembly statement. `label` (when non-empty) is emitted as "label:"
// before the text and is never removed — only `text` is, so every subset
// of statements still assembles.
struct Stmt {
  std::string label;
  std::string text;        // one instruction or directive ("" = label only)
  bool removable = true;   // false: structural (entry, exit, .data, ...)
  bool is_instruction = true;  // false for directives/labels (size metric)
};

struct FuzzProgram {
  std::vector<Stmt> stmts;

  // Renders to assembler input (see asm/assembler.hpp syntax).
  std::string render() const;

  // Instruction statements with non-empty text — the size the shrinker
  // minimizes and the acceptance metric for reproducers.
  int instruction_count() const;
};

struct GenOptions {
  int min_pieces = 3;        // grammar pieces inside the outer loop
  int max_pieces = 7;
  int max_loop_depth = 2;    // counted loops nested inside the outer loop
  int buffer_bytes = 512;    // shared scratch buffer (aliasing playground)
  // Aliasing into the CODE pages. code_page_stores emits stores that
  // rewrite an instruction word with its own value — architecturally a
  // no-op, so it is safe for the accel-vs-baseline transparency oracle,
  // but it forces the host trace/decode caches through their
  // store-into-code and revalidation paths. smc_patch_stores goes further
  // and patches a site with a DIFFERENT donor instruction word; that is
  // real self-modifying code, which stale rcache configurations do not
  // revalidate against, so it is only legal in fast-vs-slow dispatch
  // campaigns (both sides share the rcache behavior, whatever it is).
  bool code_page_stores = false;
  bool smc_patch_stores = false;
  // Hammock bait for the if-conversion path: forward branches over short
  // arms shaped like what the translator merges under predication —
  // data-dependent conditions, arms with register writes, stores and
  // HI/LO traffic, both if-then and diamond (two arms joined by an
  // unconditional jump). Some draws deliberately exceed the arm cap or
  // plant a div, so the speculation fallback is exercised alongside the
  // merge. nested_hammocks additionally nests a hammock inside an arm
  // (the outer one must then fall back; the inner stays mergeable).
  bool hammocks = false;
  bool nested_hammocks = false;
  // Execution-mode bait (src/rra/exec_mode/). long_chains emits a serial
  // accumulator chain threaded through loads and multiplies with
  // independent filler ops between the links — under the elastic
  // personality the filler overtakes the chain through the per-row FIFOs
  // (and capacity-1 points backpressure hard), while row-sync pays the
  // full serial height. lane_divergence emits hammocks conditioned on the
  // parity of the innermost live loop counter, so the branch flips every
  // iteration: under SIMT adjacent warp iterations take opposite arms and
  // the per-lane predicate masks disagree lane to lane.
  bool long_chains = false;
  bool lane_divergence = false;
};

// Deterministic: generate_program(s, o) is the same program forever.
FuzzProgram generate_program(uint64_t seed, const GenOptions& options = {});

// Scalable iteration budget for fuzz-style tests: the value of the
// DIMSIM_FUZZ_SEEDS environment variable when set to a positive integer,
// else `default_seeds`. Honored by test_differential, test_property and
// the fuzz campaign tests so CI cost stays fixed while a nightly or a
// developer can crank the budget without recompiling.
int seed_budget(int default_seeds);

}  // namespace dim::fuzz
