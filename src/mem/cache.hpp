// Timing-only cache model (direct-mapped). The functional simulator always
// reads/writes the backing Memory; this model just decides hit/miss so the
// pipeline can charge stall cycles, mirroring how the paper charges load
// latency ("the operations that depend on the result of a load are allocated
// considering a cache hit as the total load delay ... if a miss occurs, the
// whole array operation stops until the miss is resolved").
#pragma once

#include <cstdint>
#include <vector>

namespace dim::mem {

struct CacheParams {
  uint32_t size_bytes = 8 * 1024;
  uint32_t line_bytes = 32;
  uint32_t miss_penalty = 20;  // extra cycles on a miss
  bool enabled = false;        // default: perfect memory (paper baseline)
};

// Mutable state of a Cache (everything except its geometry), exported for
// checkpointing. `tags` has one entry per line of the configured geometry.
struct CacheState {
  std::vector<uint64_t> tags;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

class Cache {
 public:
  explicit Cache(const CacheParams& params);

  // Touches `addr`; returns the extra stall cycles (0 on hit or if disabled).
  uint32_t access(uint32_t addr);

  void reset();

  // Checkpoint support. restore_state throws std::invalid_argument when
  // the tag count does not match this cache's geometry.
  CacheState export_state() const { return {tags_, hits_, misses_}; }
  void restore_state(const CacheState& state);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  const CacheParams& params() const { return params_; }

 private:
  CacheParams params_;
  uint32_t num_lines_ = 0;
  uint32_t line_shift_ = 0;
  std::vector<uint64_t> tags_;  // tag+1, 0 == invalid
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace dim::mem
