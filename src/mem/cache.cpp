#include "mem/cache.hpp"

#include <stdexcept>
#include <string>

namespace dim::mem {
namespace {

uint32_t log2_floor(uint32_t v) {
  uint32_t r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace

Cache::Cache(const CacheParams& params) : params_(params) {
  num_lines_ = params_.size_bytes / params_.line_bytes;
  if (num_lines_ == 0) num_lines_ = 1;
  line_shift_ = log2_floor(params_.line_bytes);
  tags_.assign(num_lines_, 0);
}

uint32_t Cache::access(uint32_t addr) {
  if (!params_.enabled) return 0;
  const uint32_t line = (addr >> line_shift_) % num_lines_;
  const uint64_t tag = (static_cast<uint64_t>(addr) >> line_shift_) / num_lines_ + 1;
  if (tags_[line] == tag) {
    ++hits_;
    return 0;
  }
  tags_[line] = tag;
  ++misses_;
  return params_.miss_penalty;
}

void Cache::reset() {
  tags_.assign(num_lines_, 0);
  hits_ = 0;
  misses_ = 0;
}

void Cache::restore_state(const CacheState& state) {
  if (state.tags.size() != tags_.size()) {
    throw std::invalid_argument("cache state has " + std::to_string(state.tags.size()) +
                                " tags, geometry needs " + std::to_string(tags_.size()));
  }
  tags_ = state.tags;
  hits_ = state.hits;
  misses_ = state.misses;
}

}  // namespace dim::mem
