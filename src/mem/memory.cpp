#include "mem/memory.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace dim::mem {

Memory::Page& Memory::page_for(uint32_t addr) {
  const uint32_t key = addr >> kPageBits;
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    it = pages_.emplace(key, Page(kPageSize, 0)).first;
  }
  return it->second;
}

const Memory::Page* Memory::find_page(uint32_t addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : &it->second;
}

uint8_t Memory::read8(uint32_t addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

uint16_t Memory::read16(uint32_t addr) const {
  return static_cast<uint16_t>(read8(addr) | (read8(addr + 1) << 8));
}

uint32_t Memory::read32(uint32_t addr) const {
  // Fast path: whole word within one page.
  const Page* p = find_page(addr);
  const uint32_t off = addr & (kPageSize - 1);
  if (p && off + 4 <= kPageSize) {
    return static_cast<uint32_t>((*p)[off]) |
           (static_cast<uint32_t>((*p)[off + 1]) << 8) |
           (static_cast<uint32_t>((*p)[off + 2]) << 16) |
           (static_cast<uint32_t>((*p)[off + 3]) << 24);
  }
  return static_cast<uint32_t>(read16(addr)) | (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

void Memory::write8(uint32_t addr, uint8_t value) {
  page_for(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::write16(uint32_t addr, uint16_t value) {
  write8(addr, static_cast<uint8_t>(value));
  write8(addr + 1, static_cast<uint8_t>(value >> 8));
}

void Memory::write32(uint32_t addr, uint32_t value) {
  Page& p = page_for(addr);
  const uint32_t off = addr & (kPageSize - 1);
  if (off + 4 <= kPageSize) {
    p[off] = static_cast<uint8_t>(value);
    p[off + 1] = static_cast<uint8_t>(value >> 8);
    p[off + 2] = static_cast<uint8_t>(value >> 16);
    p[off + 3] = static_cast<uint8_t>(value >> 24);
    return;
  }
  write16(addr, static_cast<uint16_t>(value));
  write16(addr + 2, static_cast<uint16_t>(value >> 16));
}

void Memory::write_block(uint32_t addr, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) write8(addr + static_cast<uint32_t>(i), data[i]);
}

std::vector<uint8_t> Memory::read_block(uint32_t addr, size_t size) const {
  std::vector<uint8_t> out(size);
  for (size_t i = 0; i < size; ++i) out[i] = read8(addr + static_cast<uint32_t>(i));
  return out;
}

uint64_t Memory::content_hash() const {
  // Order-independent over pages: iterate keys sorted so the hash is stable
  // regardless of unordered_map iteration order.
  std::map<uint32_t, const Page*> ordered;
  for (const auto& [key, page] : pages_) ordered.emplace(key, &page);
  uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [key, page] : ordered) {
    h ^= key;
    h *= 0x100000001b3ull;
    for (uint8_t b : *page) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

std::vector<std::pair<uint32_t, const std::vector<uint8_t>*>> Memory::pages_sorted()
    const {
  std::vector<std::pair<uint32_t, const Page*>> out;
  out.reserve(pages_.size());
  for (const auto& [key, page] : pages_) out.emplace_back(key, &page);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Memory::restore_pages(
    const std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& pages) {
  for (const auto& [key, bytes] : pages) {
    if (bytes.size() != kPageSize) {
      throw std::invalid_argument("page " + std::to_string(key) + " has " +
                                  std::to_string(bytes.size()) + " bytes, expected " +
                                  std::to_string(kPageSize));
    }
  }
  pages_.clear();
  for (const auto& [key, bytes] : pages) pages_[key] = bytes;
}

std::optional<uint32_t> Memory::first_difference(const Memory& other) const {
  std::map<uint32_t, const Page*> mine, theirs;
  for (const auto& [key, page] : pages_) mine.emplace(key, &page);
  for (const auto& [key, page] : other.pages_) theirs.emplace(key, &page);

  auto page_byte = [](const Page* p, uint32_t off) -> uint8_t {
    return p == nullptr ? 0 : (*p)[off];
  };

  std::map<uint32_t, std::pair<const Page*, const Page*>> keys;
  for (const auto& [key, page] : mine) keys[key].first = page;
  for (const auto& [key, page] : theirs) keys[key].second = page;
  for (const auto& [key, pair] : keys) {
    for (uint32_t off = 0; off < kPageSize; ++off) {
      if (page_byte(pair.first, off) != page_byte(pair.second, off)) {
        return (key << kPageBits) | off;
      }
    }
  }
  return std::nullopt;
}

}  // namespace dim::mem
