// Sparse byte-addressable memory used both as instruction and data storage.
// Little-endian (MIPS is bi-endian; the Minimips the paper uses is
// configured little-endian, and all our workloads are written against that).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dim::mem {

class Memory {
 public:
  static constexpr uint32_t kPageBits = 16;  // 64 KiB pages
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  uint8_t read8(uint32_t addr) const;
  uint16_t read16(uint32_t addr) const;
  uint32_t read32(uint32_t addr) const;

  void write8(uint32_t addr, uint8_t value);
  void write16(uint32_t addr, uint16_t value);
  void write32(uint32_t addr, uint32_t value);

  // Bulk helpers for loaders and tests.
  void write_block(uint32_t addr, const uint8_t* data, size_t size);
  std::vector<uint8_t> read_block(uint32_t addr, size_t size) const;

  // Number of distinct pages touched (used by tests and stats).
  size_t pages_allocated() const { return pages_.size(); }

  // Content hash over all allocated pages — used by the transparency
  // property tests to compare baseline vs accelerated final memory state.
  uint64_t content_hash() const;

  // Lowest address whose byte differs from `other` (pages absent on one
  // side compare as zero), or nullopt when the images are identical. Used
  // by the differential fuzzer to pinpoint a memory divergence instead of
  // just reporting mismatching hashes.
  std::optional<uint32_t> first_difference(const Memory& other) const;

  // Sparse-page iteration for serialization: every allocated page as
  // (page index, bytes), ascending by index. The page index is the address
  // right-shifted by kPageBits; an allocated all-zero page IS reported
  // (it is part of the image identity — see content_hash). Pointers are
  // invalidated by any write to an unallocated page.
  std::vector<std::pair<uint32_t, const std::vector<uint8_t>*>> pages_sorted() const;

  // Replaces the entire image with exactly `pages` (deserialization).
  // Every page must be kPageSize bytes; throws std::invalid_argument
  // otherwise. Duplicate indices keep the last occurrence.
  void restore_pages(
      const std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& pages);

  // Host-fast-path access for the superblock trace engine: the raw bytes
  // of the page containing `addr`, or nullptr when that page was never
  // allocated (absent pages read as zero; neither accessor allocates).
  // The pointer stays valid until restore_pages() replaces the image —
  // page buffers are heap-stable across map rehashes and are never freed
  // individually. Callers caching it must drop it on restore (the trace
  // cache's clear() hook).
  const uint8_t* page_data(uint32_t addr) const {
    const Page* p = find_page(addr);
    return p ? p->data() : nullptr;
  }
  uint8_t* page_data_mut(uint32_t addr) {
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.data();
  }

 private:
  using Page = std::vector<uint8_t>;

  Page& page_for(uint32_t addr);
  const Page* find_page(uint32_t addr) const;

  std::unordered_map<uint32_t, Page> pages_;
};

}  // namespace dim::mem
