#include "rra/config_io.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "bt/rcache.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"

namespace dim::rra {
namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("malformed configuration: " + what);
}

}  // namespace

void write_configuration(std::ostream& out, const Configuration& config) {
  out << "config v1 " << config.start_pc << ' ' << config.end_pc << ' ' << config.num_bbs
      << ' ' << config.rows_used << ' ' << config.input_regs << ' ' << config.output_regs
      << ' ' << config.immediates << ' ' << config.ops.size() << '\n';
  for (const ArrayOp& op : config.ops) {
    out << "op " << isa::encode(op.instr) << ' ' << op.pc << ' ' << op.row << ' ' << op.col
        << ' ' << op.bb_index << ' ' << (op.is_branch ? 1 : 0) << ' '
        << (op.predicted_taken ? 1 : 0) << '\n';
  }
  out << "rowkinds";
  for (RowKind k : config.row_kinds) out << ' ' << static_cast<int>(k);
  out << '\n';
}

Configuration read_configuration(std::istream& in) {
  Configuration config;
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "config" || version != "v1") {
    malformed("expected 'config v1' header");
  }
  size_t nops = 0;
  if (!(in >> config.start_pc >> config.end_pc >> config.num_bbs >> config.rows_used >>
        config.input_regs >> config.output_regs >> config.immediates >> nops)) {
    malformed("bad header fields");
  }
  config.ops.reserve(nops);
  for (size_t i = 0; i < nops; ++i) {
    std::string op_tag;
    uint32_t word = 0;
    int is_branch = 0, predicted = 0;
    ArrayOp op;
    if (!(in >> op_tag >> word >> op.pc >> op.row >> op.col >> op.bb_index >> is_branch >>
          predicted) ||
        op_tag != "op") {
      malformed("bad op line " + std::to_string(i));
    }
    op.instr = isa::decode(word);
    if (op.instr.op == isa::Op::kInvalid) malformed("invalid instruction word");
    op.is_branch = is_branch != 0;
    op.predicted_taken = predicted != 0;
    op.kind = op.is_branch ? isa::FuKind::kAlu : isa::fu_kind(op.instr.op);
    if (op.kind == isa::FuKind::kNone) op.kind = isa::FuKind::kAlu;  // mfhi/mflo moves
    config.ops.push_back(op);
  }
  std::string rk_tag;
  if (!(in >> rk_tag) || rk_tag != "rowkinds") malformed("expected rowkinds");
  config.row_kinds.resize(static_cast<size_t>(config.rows_used));
  for (int r = 0; r < config.rows_used; ++r) {
    int k = 0;
    if (!(in >> k) || k < 0 || k > 2) malformed("bad row kind");
    config.row_kinds[static_cast<size_t>(r)] = static_cast<RowKind>(k);
  }
  return config;
}

void save_cache(std::ostream& out, const bt::ReconfigCache& cache) {
  out << "rcache v1 " << cache.fifo_order().size() << '\n';
  for (uint32_t pc : cache.fifo_order()) {
    const Configuration* config = cache.peek(pc);
    if (config != nullptr) write_configuration(out, *config);
  }
}

void load_cache(std::istream& in, bt::ReconfigCache& cache) {
  std::string tag, version;
  size_t count = 0;
  if (!(in >> tag >> version >> count) || tag != "rcache" || version != "v1") {
    malformed("expected 'rcache v1 <count>' header");
  }
  for (size_t i = 0; i < count; ++i) {
    cache.insert(read_configuration(in));
  }
}

}  // namespace dim::rra
