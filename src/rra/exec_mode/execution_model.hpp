// Pluggable array execution strategies ("personalities").
//
// The paper's array is row-synchronous: a row fires when the whole previous
// row has fired, long-latency ops (multiplies, cache misses) stall every
// row behind them. That is one point in a larger CGRA design space. This
// subsystem abstracts *when ops fire and what that costs* behind the
// ExecutionModel interface, keeping *what ops compute* in the shared
// functional core (rra::execute_configuration). Because every model runs
// the same functional core, the transparency contract — bit-identical
// architectural state versus pure software — holds for all of them by
// construction; models differ only in timing and stats.
//
// Three personalities (docs/execution-modes.md has the full writeup):
//
//   kRowSync — the paper's array, delegating to the classic row-chained
//              timing in rra/configuration.cpp. The reference model.
//   kElastic — STRELA-style dataflow firing. Ops fire when their operands
//              arrive over per-edge valid/ready handshakes; each row's
//              results enter a bounded in-order output queue of
//              `fifo_capacity` tokens, and a producer whose queue slot is
//              still held by an unconsumed older result stalls
//              (backpressure). Cache-miss latency rides the dependence
//              edges instead of stalling rows. Configurations whose
//              handshake graph can deadlock are rejected at config-build
//              time and execute row-synchronously.
//   kSimt    — DICE-style statically scheduled multi-lane issue: one
//              latched configuration executes for up to `lanes`
//              consecutive dispatches (a warp), lanes after the first skip
//              the configuration-word stream. The static schedule is
//              lockstep — rows fire on a fixed cadence with no ALU
//              chaining, and per-lane predicate masks (the PR 9 predicate
//              slots) squash work without changing the cadence.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "rra/array_exec.hpp"
#include "rra/array_shape.hpp"
#include "rra/configuration.hpp"
#include "sim/cpu_state.hpp"

namespace dim::rra {

enum class ExecMode : uint8_t {
  kRowSync = 0,
  kElastic = 1,
  kSimt = 2,
};

const char* exec_mode_name(ExecMode mode);

struct ExecModeParams {
  ExecMode mode = ExecMode::kRowSync;
  // Elastic: tokens each per-row output queue holds before producers on
  // that row see backpressure. Capacity 1 is the fully serialized
  // handshake; it still runs pure dependence chains at full throughput.
  int fifo_capacity = 4;
  // SIMT: dispatches that share one latched configuration (warp size).
  int lanes = 4;
};

class ExecutionModel {
 public:
  virtual ~ExecutionModel() = default;

  virtual ExecMode mode() const = 0;
  virtual const char* name() const = 0;

  // Build-time admissibility. A configuration a model cannot execute
  // (today: elastic deadlock) is still inserted into the rcache but
  // dispatches row-synchronously. Must be stable for a given
  // configuration — the translator memoizes it (Configuration::elastic_memo).
  virtual bool admits(const Configuration& config) const = 0;

  // Executes the configuration against architectural state. Semantics are
  // identical across models (all delegate to execute_configuration); only
  // the timing fields of the outcome differ.
  virtual ArrayExecOutcome execute(const Configuration& config,
                                   sim::CpuState& state, mem::Memory& memory,
                                   mem::Cache* dcache,
                                   const ArrayTimingParams& timing,
                                   bool resident) const = 0;
};

std::unique_ptr<ExecutionModel> make_execution_model(const ExecModeParams& params);

// Deadlock-freedom check for the elastic personality, exposed standalone so
// the translator can classify configurations at build time without
// instantiating a model. True iff the handshake event graph (dependence +
// in-order-queue + capacity backpressure edges) is acyclic at the given
// token capacity. Any prefix of an admissible configuration is itself
// admissible, so a misspeculation-truncated walk never deadlocks either.
// A capacity <= 0 means unbounded queues: trivially admissible.
bool elastic_admissible(const Configuration& config, int fifo_capacity);

}  // namespace dim::rra
