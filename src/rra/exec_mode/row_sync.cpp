// The paper's row-synchronous personality: a thin wrapper over the classic
// functional core, whose built-in timing (rows_exec_cycles + serial cache
// stalls) IS the row-synchronous model. Kept as an ExecutionModel so the
// accelerated system dispatches every personality uniformly.
#include "rra/exec_mode/models_internal.hpp"

namespace dim::rra::detail {
namespace {

class RowSyncModel final : public ExecutionModel {
 public:
  ExecMode mode() const override { return ExecMode::kRowSync; }
  const char* name() const override { return exec_mode_name(ExecMode::kRowSync); }
  bool admits(const Configuration&) const override { return true; }

  ArrayExecOutcome execute(const Configuration& config, sim::CpuState& state,
                           mem::Memory& memory, mem::Cache* dcache,
                           const ArrayTimingParams& timing,
                           bool resident) const override {
    return execute_configuration(config, state, memory, dcache, timing, resident);
  }
};

}  // namespace

std::unique_ptr<ExecutionModel> make_row_sync_model(const ExecModeParams&) {
  return std::make_unique<RowSyncModel>();
}

}  // namespace dim::rra::detail
