// Per-personality factory hooks, internal to src/rra/exec_mode/. Each
// model lives in its own translation unit; the public factory
// (make_execution_model) dispatches here.
#pragma once

#include <memory>

#include "rra/exec_mode/execution_model.hpp"

namespace dim::rra::detail {

std::unique_ptr<ExecutionModel> make_row_sync_model(const ExecModeParams& params);
std::unique_ptr<ExecutionModel> make_elastic_model(const ExecModeParams& params);
std::unique_ptr<ExecutionModel> make_simt_model(const ExecModeParams& params);

}  // namespace dim::rra::detail
