// Elastic (STRELA-style) personality: dataflow firing over valid/ready
// handshakes with bounded per-row output queues.
//
// Timing model. Each evaluated op contributes two events — start (fires:
// all operands latched) and produce (its result enters the producing row's
// output queue) — connected by a static event graph measured in ALU slots
// (`alu_rows_per_cycle` slots per cycle, matching the row-sync chaining
// rate):
//
//   start(o)    -> produce(o)   taking duration(o) slots: 1 for ALU work,
//                               mul_row_cycles for multiplies, and
//                               mem_row_cycles plus the op's own cache-miss
//                               penalty for memory ops — misses ride the
//                               dependence edge instead of stalling rows.
//   produce(d)  -> start(o)     for each operand producer d (data deps via
//                               the context-register wiring, predicate-slot
//                               defs, and the memory-ordering spine: loads
//                               and stores wait on the last prior store, so
//                               independent loads overlap freely).
//   produce(p)  -> produce(o)   for p immediately before o on the same row:
//                               a row's results enter its queue in order.
//   start(c)    -> produce(o)   backpressure. o is the q-th op on its row
//                               and the (q - capacity)-th op's queue slot
//                               must free first — it frees once every
//                               consumer c of that older result has fired.
//
// The makespan is the longest path (deadlock = a cycle, rejected at
// config-build time via elastic_admissible); exec_cycles is the bounded
// makespan and fifo_stall_cycles the bounded-minus-unbounded difference,
// i.e. the share of exec attributable purely to token capacity. Any prefix
// of the op list (a misspeculation-truncated walk) only removes nodes and
// edges, so admissibility of the full graph covers every runtime walk.
#include <algorithm>
#include <array>
#include <vector>

#include "common/bitutil.hpp"
#include "rra/exec_mode/models_internal.hpp"

namespace dim::rra {
namespace {

// Node ids: start(i) = 2i, produce(i) = 2i + 1.
struct EventGraph {
  int n_ops = 0;
  std::vector<std::vector<int32_t>> succ;
  std::vector<uint64_t> cost;  // applied when the node completes
};

uint64_t op_duration_slots(const ArrayOp& op, const ArrayTimingParams& timing,
                           uint64_t spc, uint64_t dcache_penalty) {
  switch (op.kind) {
    case isa::FuKind::kMul:
      return static_cast<uint64_t>(timing.mul_row_cycles) * spc;
    case isa::FuKind::kLdSt:
      return (static_cast<uint64_t>(timing.mem_row_cycles) + dcache_penalty) * spc;
    default:
      return 1;
  }
}

// Builds the event graph over the first `n_ops` ops. `trace` (optional)
// supplies per-op cache penalties and is sized >= n_ops when present;
// without it all penalties are zero (the static/admissibility view).
// `capacity` <= 0 means unbounded queues (no backpressure edges).
EventGraph build_event_graph(const Configuration& config, int n_ops,
                             int capacity, const ArrayTimingParams& timing,
                             const ArrayExecTrace* trace) {
  EventGraph g;
  g.n_ops = n_ops;
  g.succ.assign(static_cast<size_t>(n_ops) * 2, {});
  g.cost.assign(static_cast<size_t>(n_ops) * 2, 0);

  const uint64_t spc =
      timing.alu_rows_per_cycle > 0 ? static_cast<uint64_t>(timing.alu_rows_per_cycle) : 1;

  auto edge = [&g](int from, int to) { g.succ[static_cast<size_t>(from)].push_back(to); };
  auto start_of = [](int i) { return 2 * i; };
  auto produce_of = [](int i) { return 2 * i + 1; };

  std::array<int, kNumCtxRegs> last_writer;
  last_writer.fill(-1);
  std::array<int, kMaxPredSlots> pred_def;
  pred_def.fill(-1);
  int last_store = -1;

  // Pass 1: dependence discovery. Consumers of an op always come LATER in
  // issue order, so the backpressure rule (which asks for the consumers of
  // an *older* row-mate) needs the full consumer lists before any
  // capacity edge can be placed — hence two passes.
  std::vector<std::vector<int32_t>> deps(static_cast<size_t>(n_ops));
  std::vector<std::vector<int32_t>> consumers(static_cast<size_t>(n_ops));
  // Issue order of ops per row, for in-order queues and capacity windows.
  std::vector<std::vector<int32_t>> row_ops(
      static_cast<size_t>(std::max(config.rows_used, 1)));

  for (int i = 0; i < n_ops; ++i) {
    const ArrayOp& op = config.ops[static_cast<size_t>(i)];
    const uint64_t penalty =
        (trace != nullptr && op.kind == isa::FuKind::kLdSt)
            ? trace->ops[static_cast<size_t>(i)].dcache_penalty
            : 0;
    g.cost[static_cast<size_t>(produce_of(i))] =
        op_duration_slots(op, timing, spc, penalty);

    auto depend = [&](int d) {
      deps[static_cast<size_t>(i)].push_back(d);
      consumers[static_cast<size_t>(d)].push_back(i);
    };

    // Data dependences through the context-register wiring. The wiring is
    // static (placement-time last writer), independent of predicates.
    int srcs[2];
    const int n_src = array_srcs(op.instr, srcs);
    for (int s = 0; s < n_src; ++s) {
      if (srcs[s] == 0) continue;
      const int d = last_writer[static_cast<size_t>(srcs[s])];
      if (d >= 0) depend(d);
    }
    // Predicated ops consume their slot's defining branch.
    if (!op.is_pred_def && op.pred_slot >= 0) {
      const int d = pred_def[static_cast<size_t>(op.pred_slot)];
      if (d >= 0) depend(d);
    }
    // Memory-ordering spine: stores serialize; loads wait on the last
    // prior store but run concurrently with each other.
    if (op.kind == isa::FuKind::kLdSt && last_store >= 0) depend(last_store);

    const size_t row = static_cast<size_t>(
        std::min(std::max(op.row, 0), std::max(config.rows_used - 1, 0)));
    row_ops[row].push_back(i);

    // Static bookkeeping for later ops.
    int dests[2];
    const int n_dst = array_dests(op.instr, dests);
    for (int d = 0; d < n_dst; ++d) {
      if (dests[d] > 0) last_writer[static_cast<size_t>(dests[d])] = i;
    }
    if (op.is_pred_def) pred_def[static_cast<size_t>(op.pred_slot)] = i;
    if (op.kind == isa::FuKind::kLdSt && isa::is_store(op.instr.op)) last_store = i;
  }

  // Pass 2: edges.
  for (int i = 0; i < n_ops; ++i) {
    edge(start_of(i), produce_of(i));
    for (const int32_t d : deps[static_cast<size_t>(i)]) {
      edge(produce_of(d), start_of(i));
    }
  }
  for (const std::vector<int32_t>& mates : row_ops) {
    for (size_t q = 0; q < mates.size(); ++q) {
      // A row's results enter its queue in order.
      if (q > 0) edge(produce_of(mates[q - 1]), produce_of(mates[q]));
      // Capacity backpressure: the q-th op on a row reuses the queue slot
      // of the (q - capacity)-th, which frees only once every consumer of
      // that older result has fired. With no consumers it drains straight
      // to the output bank, which the in-order chain already sequences.
      if (capacity > 0 && static_cast<int>(q) >= capacity) {
        const int older = mates[q - static_cast<size_t>(capacity)];
        for (const int32_t c : consumers[static_cast<size_t>(older)]) {
          edge(start_of(c), produce_of(mates[q]));
        }
      }
    }
  }
  return g;
}

// Kahn longest-path. Returns false on a cycle (deadlock); otherwise sets
// `makespan` to the latest completion over all nodes, in slots.
bool graph_makespan(const EventGraph& g, uint64_t* makespan) {
  const size_t n = g.succ.size();
  std::vector<int32_t> indeg(n, 0);
  for (const auto& adj : g.succ) {
    for (const int32_t v : adj) ++indeg[static_cast<size_t>(v)];
  }
  std::vector<uint64_t> ready(n, 0);
  std::vector<int32_t> queue;
  queue.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(static_cast<int32_t>(v));
  }
  uint64_t best = 0;
  size_t processed = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const size_t u = static_cast<size_t>(queue[head]);
    ++processed;
    const uint64_t finish = ready[u] + g.cost[u];
    best = std::max(best, finish);
    for (const int32_t v : g.succ[u]) {
      const size_t vs = static_cast<size_t>(v);
      ready[vs] = std::max(ready[vs], finish);
      if (--indeg[vs] == 0) queue.push_back(v);
    }
  }
  if (processed != n) return false;  // cycle
  *makespan = best;
  return true;
}

uint64_t slots_to_cycles(uint64_t slots, const ArrayTimingParams& timing) {
  const uint64_t spc =
      timing.alu_rows_per_cycle > 0 ? static_cast<uint64_t>(timing.alu_rows_per_cycle) : 1;
  const uint64_t cycles = (slots + spc - 1) / spc;
  return cycles > 0 ? cycles : 1;
}

class ElasticModel final : public ExecutionModel {
 public:
  explicit ElasticModel(const ExecModeParams& params)
      : capacity_(params.fifo_capacity > 0 ? params.fifo_capacity : 1) {}

  ExecMode mode() const override { return ExecMode::kElastic; }
  const char* name() const override { return exec_mode_name(ExecMode::kElastic); }

  bool admits(const Configuration& config) const override {
    return elastic_admissible(config, capacity_);
  }

  ArrayExecOutcome execute(const Configuration& config, sim::CpuState& state,
                           mem::Memory& memory, mem::Cache* dcache,
                           const ArrayTimingParams& timing,
                           bool resident) const override {
    ArrayExecTrace trace;
    ArrayExecOutcome out =
        execute_configuration(config, state, memory, dcache, timing, resident, &trace);

    const int evaluated = static_cast<int>(trace.ops.size());
    uint64_t bounded = 0;
    uint64_t unbounded = 0;
    const EventGraph g_cap =
        build_event_graph(config, evaluated, capacity_, timing, &trace);
    const EventGraph g_inf =
        build_event_graph(config, evaluated, /*capacity=*/0, timing, &trace);
    if (!graph_makespan(g_cap, &bounded) || !graph_makespan(g_inf, &unbounded)) {
      // Unreachable for admitted configurations (the dispatcher falls back
      // to row-sync on rejection); keep the row-sync timing untouched.
      return out;
    }
    const uint64_t exec = slots_to_cycles(bounded, timing);
    const uint64_t exec_free = slots_to_cycles(unbounded, timing);
    out.exec_cycles = exec;
    out.fifo_stall_cycles = exec - std::min(exec_free, exec);
    // Cache misses rode the dependence edges above — they are part of
    // exec_cycles now, not a separate serial stall.
    out.dcache_stall_cycles = 0;
    return out;
  }

 private:
  int capacity_;
};

}  // namespace

bool elastic_admissible(const Configuration& config, int fifo_capacity) {
  // <= 0 means unbounded queues: no backpressure edges, always acyclic.
  const EventGraph g =
      build_event_graph(config, config.instruction_count(), fifo_capacity,
                        ArrayTimingParams{}, nullptr);
  uint64_t ignored = 0;
  return graph_makespan(g, &ignored);
}

namespace detail {

std::unique_ptr<ExecutionModel> make_elastic_model(const ExecModeParams& params) {
  return std::make_unique<ElasticModel>(params);
}

}  // namespace detail
}  // namespace dim::rra
