#include "rra/exec_mode/execution_model.hpp"

#include "rra/exec_mode/models_internal.hpp"

namespace dim::rra {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kRowSync: return "row_sync";
    case ExecMode::kElastic: return "elastic";
    case ExecMode::kSimt: return "simt";
  }
  return "unknown";
}

std::unique_ptr<ExecutionModel> make_execution_model(const ExecModeParams& params) {
  switch (params.mode) {
    case ExecMode::kElastic: return detail::make_elastic_model(params);
    case ExecMode::kSimt: return detail::make_simt_model(params);
    case ExecMode::kRowSync: break;
  }
  return detail::make_row_sync_model(params);
}

}  // namespace dim::rra
