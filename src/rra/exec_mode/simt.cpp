// SIMT (DICE-style) personality: statically scheduled lockstep issue.
//
// One configuration is latched once and then executed for up to `lanes`
// consecutive dispatches (a warp); the warp bookkeeping — which dispatches
// skip the configuration stream — lives in the accelerated system's latch.
// This model supplies the per-dispatch timing: a fixed row cadence with NO
// intra-cycle ALU chaining (every row takes its full row time, 1 /
// mul_row_cycles / mem_row_cycles), because a static multi-lane schedule
// must budget the worst case for every lane. The cadence depends only on
// how many rows the walk traverses, never on predicate outcomes: a lane
// whose predicate mask squashes every op burns exactly the cycles of a
// fully active lane (that is the lockstep property the unit tests pin).
#include <algorithm>

#include "rra/exec_mode/models_internal.hpp"

namespace dim::rra::detail {
namespace {

class SimtModel final : public ExecutionModel {
 public:
  explicit SimtModel(const ExecModeParams& params)
      : lanes_(params.lanes > 0 ? params.lanes : 1) {}

  ExecMode mode() const override { return ExecMode::kSimt; }
  const char* name() const override { return exec_mode_name(ExecMode::kSimt); }
  bool admits(const Configuration&) const override { return true; }

  ArrayExecOutcome execute(const Configuration& config, sim::CpuState& state,
                           mem::Memory& memory, mem::Cache* dcache,
                           const ArrayTimingParams& timing,
                           bool resident) const override {
    ArrayExecTrace trace;
    ArrayExecOutcome out =
        execute_configuration(config, state, memory, dcache, timing, resident, &trace);

    // Rows the walk actually traversed (a misspeculation-truncated walk
    // stops early; the static schedule stops with it).
    int last_row = -1;
    for (size_t k = 0; k < trace.ops.size(); ++k) {
      last_row = std::max(last_row, config.ops[k].row);
    }
    const int limit = std::min(last_row, config.rows_used - 1);
    uint64_t cycles = 0;
    for (int r = 0; r <= limit; ++r) {
      switch (config.row_kinds[static_cast<size_t>(r)]) {
        case RowKind::kMul: cycles += static_cast<uint64_t>(timing.mul_row_cycles); break;
        case RowKind::kMem: cycles += static_cast<uint64_t>(timing.mem_row_cycles); break;
        default: cycles += 1; break;
      }
    }
    out.exec_cycles = cycles > 0 ? cycles : 1;
    // Cache-miss stalls stay a global serial term, exactly as in row-sync.
    return out;
  }

 private:
  // Warp size; consumed by the system's latch bookkeeping, kept here so a
  // model instance fully describes its personality.
  [[maybe_unused]] int lanes_;
};

}  // namespace

std::unique_ptr<ExecutionModel> make_simt_model(const ExecModeParams& params) {
  return std::make_unique<SimtModel>(params);
}

}  // namespace dim::rra::detail
