#include "rra/datapath.hpp"

#include <algorithm>

#include "sim/executor.hpp"

namespace dim::rra {

using isa::Instr;
using isa::Op;

RoutedConfig route(const Configuration& config) {
  RoutedConfig routed;
  routed.start_pc = config.start_pc;
  routed.end_pc = config.end_pc;
  routed.rows = config.rows_used;
  routed.stations.reserve(config.ops.size());

  for (const ArrayOp& op : config.ops) {
    FuStation station;
    station.instr = op.instr;
    station.pc = op.pc;
    station.row = op.row;
    station.col = op.col;
    station.kind = op.kind;
    station.is_branch = op.is_branch;
    station.predicted_taken = op.predicted_taken;
    station.bb_index = op.bb_index;
    station.pred_slot = op.pred_slot;
    station.pred_when_taken = op.pred_when_taken;
    station.is_pred_def = op.is_pred_def;
    station.is_join_jump = op.is_join_jump;

    // Input muxes: operand k listens to the bus line of its source
    // register ($zero listens to the hard-wired zero line 0).
    int srcs[2];
    const int nsrc = array_srcs(op.instr, srcs);
    for (int k = 0; k < nsrc; ++k) station.in_sel[k] = srcs[k];

    // Output muxes: this unit re-drives its destination register's line
    // from its row onward (branches and stores drive nothing).
    if (!op.is_branch) {
      int dsts[2];
      const int ndst = array_dests(op.instr, dsts);
      for (int k = 0; k < ndst; ++k) {
        station.out_sel[k] = dsts[k];
        routed.writeback[static_cast<size_t>(dsts[k])] = true;
      }
    }
    routed.stations.push_back(station);
  }
  return routed;
}

namespace {

// Byte-granular store queue identical in semantics to the behavioral one.
class StoreQueue {
 public:
  void push(uint32_t addr, int width, uint32_t value) {
    entries_.push_back({addr, value, width});
  }
  uint8_t byte(uint32_t addr, const mem::Memory& memory) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (addr >= it->addr && addr < it->addr + static_cast<uint32_t>(it->width)) {
        return static_cast<uint8_t>(it->value >> ((addr - it->addr) * 8));
      }
    }
    return memory.read8(addr);
  }
  uint32_t read(uint32_t addr, int width, const mem::Memory& memory) const {
    uint32_t v = 0;
    for (int b = 0; b < width; ++b) {
      v |= static_cast<uint32_t>(byte(addr + static_cast<uint32_t>(b), memory)) << (8 * b);
    }
    return v;
  }
  void drain(mem::Memory& memory) const {
    for (const auto& e : entries_) {
      switch (e.width) {
        case 1: memory.write8(e.addr, static_cast<uint8_t>(e.value)); break;
        case 2: memory.write16(e.addr, static_cast<uint16_t>(e.value)); break;
        default: memory.write32(e.addr, e.value); break;
      }
    }
  }

 private:
  struct Entry {
    uint32_t addr;
    uint32_t value;
    int width;
  };
  std::vector<Entry> entries_;
};

}  // namespace

StructuralOutcome execute_structural(const RoutedConfig& routed,
                                     const sim::CpuState& input, mem::Memory& memory) {
  StructuralOutcome out;

  // Load the context bus from the register bank.
  std::array<uint32_t, kNumCtxRegs> bus{};
  std::copy(input.regs.begin(), input.regs.end(), bus.begin());
  bus[kCtxHi] = input.hi;
  bus[kCtxLo] = input.lo;
  bus[0] = 0;  // hard-wired zero line

  StoreQueue stores;
  uint32_t next_pc = routed.end_pc;
  // Predicate lines latched by pred-defining branches (if-conversion).
  std::array<bool, kMaxPredSlots> pred{};

  // Stations retire in program order; operands arrive exclusively through
  // the routed input muxes — never by register name — so this run proves
  // the Reads/Writes tables are sufficient.
  for (const FuStation& st : routed.stations) {
    const uint32_t a = st.in_sel[0] >= 0 ? bus[static_cast<size_t>(st.in_sel[0])] : 0;
    const uint32_t b = st.in_sel[1] >= 0 ? bus[static_cast<size_t>(st.in_sel[1])] : 0;

    if (st.is_pred_def) {
      // Hammock branch: latches its condition onto a predicate line; both
      // arms are wired below it, so it never redirects the PC.
      ++out.committed_ops;
      pred[static_cast<size_t>(st.pred_slot)] = sim::branch_taken(st.instr, a, b);
      continue;
    }
    const bool active =
        st.pred_slot < 0 || pred[static_cast<size_t>(st.pred_slot)] == st.pred_when_taken;
    if (st.is_join_jump) {
      if (active) ++out.committed_ops;  // retires only on the fall-through arm
      continue;
    }
    if (!active) continue;  // output muxes and store port gated off
    ++out.committed_ops;

    if (st.is_branch) {
      // The branch compares on an ALU: operand order matches array_srcs
      // (rs first, rt second when present).
      const Instr& i = st.instr;
      uint32_t rs = a, rt = b;
      const bool taken = sim::branch_taken(i, rs, rt);
      if (taken != st.predicted_taken) {
        out.misspeculated = true;
        next_pc = taken ? sim::branch_target(i, st.pc) : st.pc + 4;
        break;
      }
      continue;
    }

    switch (st.kind) {
      case isa::FuKind::kLdSt: {
        // For memory ops array_srcs yields (base) for loads and
        // (base, value) for stores.
        const uint32_t addr = a + static_cast<uint32_t>(st.instr.simm());
        if (isa::is_store(st.instr.op)) {
          stores.push(addr, sim::mem_width(st.instr.op), b);
        } else {
          uint32_t value = stores.read(addr, sim::mem_width(st.instr.op), memory);
          if (st.instr.op == Op::kLb) value = static_cast<uint32_t>(static_cast<int8_t>(value));
          if (st.instr.op == Op::kLh) value = static_cast<uint32_t>(static_cast<int16_t>(value));
          if (st.out_sel[0] > 0) bus[static_cast<size_t>(st.out_sel[0])] = value;
        }
        break;
      }
      case isa::FuKind::kMul: {
        const uint64_t product = sim::mult_eval(st.instr.op, a, b);
        // out_sel[0] = HI line, out_sel[1] = LO line (array_dests order).
        if (st.out_sel[0] > 0) bus[static_cast<size_t>(st.out_sel[0])] = static_cast<uint32_t>(product >> 32);
        if (st.out_sel[1] > 0) bus[static_cast<size_t>(st.out_sel[1])] = static_cast<uint32_t>(product);
        break;
      }
      default: {
        uint32_t value;
        if (st.instr.op == Op::kMfhi || st.instr.op == Op::kMflo) {
          value = a;  // pure routing move: the input mux already selected HI/LO
        } else if (st.instr.op == Op::kSll || st.instr.op == Op::kSrl ||
                   st.instr.op == Op::kSra) {
          // Constant shifts have a single source — rt — so the first input
          // mux carries the rt value.
          value = sim::alu_eval(st.instr, 0, a);
        } else {
          value = sim::alu_eval(st.instr, a, b);
        }
        if (st.out_sel[0] > 0) bus[static_cast<size_t>(st.out_sel[0])] = value;
        break;
      }
    }
  }

  stores.drain(memory);
  bus[0] = 0;
  out.ctx = bus;
  out.next_pc = next_pc;
  return out;
}

}  // namespace dim::rra
