// Execution of a configuration on the reconfigurable array.
//
// Functionally the array is an in-order dataflow evaluation of the
// translated instructions: operands come from the register bank (input
// context) or from producing rows; speculative basic blocks commit only
// when their guarding branch resolves in the predicted direction; stores
// drain to memory at commit. We evaluate the ops in original program order
// against a context copy + store buffer — exactly the commit semantics of
// the hardware — which makes transparency (bit-identical architectural
// state) hold by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "rra/configuration.hpp"
#include "sim/cpu_state.hpp"

namespace dim::rra {

struct BranchOutcome {
  uint32_t pc = 0;
  bool taken = false;
  bool matched = false;  // outcome == prediction
};

struct ArrayExecOutcome {
  uint32_t next_pc = 0;
  int committed_ops = 0;  // translated instructions retired (incl. branches)
  int committed_bbs = 0;
  bool misspeculated = false;
  uint32_t misspec_branch_pc = 0;
  std::vector<BranchOutcome> branch_outcomes;

  // Timing.
  uint64_t exec_cycles = 0;           // row evaluation
  uint64_t reconfig_stall_cycles = 0; // visible part of reconfiguration
  uint64_t dcache_stall_cycles = 0;   // load/store misses during execution
  uint64_t finalize_cycles = 0;
  uint64_t misspec_penalty_cycles = 0;
  // Elastic execution only: the share of exec_cycles attributable to FIFO
  // backpressure (bounded-capacity makespan minus unbounded makespan). A
  // subset of exec_cycles, NOT a sixth component of total_cycles().
  uint64_t fifo_stall_cycles = 0;
  uint64_t total_cycles() const {
    return exec_cycles + reconfig_stall_cycles + dcache_stall_cycles +
           finalize_cycles + misspec_penalty_cycles;
  }

  // Activity (for the power model).
  int alu_ops = 0;
  int mul_ops = 0;
  int mem_ops = 0;
  int loads = 0;
  int stores = 0;

  // Address range covered by the drained stores (for residency SMC checks).
  bool wrote_memory = false;
  uint32_t store_lo = 0;
  uint32_t store_hi = 0;  // exclusive
};

// Per-op record of one evaluation walk, consumed by the non-row-sync
// execution models (src/rra/exec_mode/) to retime the activation. Entry k
// describes the k-th *evaluated* op — a misspeculation-truncated walk
// leaves trailing ops unrecorded.
struct ArrayExecTrace {
  struct OpTrace {
    bool active = false;          // predicate allowed the op to commit
    uint64_t dcache_penalty = 0;  // miss cycles this op's access cost (mem ops)
  };
  std::vector<OpTrace> ops;
};

// Executes `config` against the architectural state. On return the state
// (registers, HI/LO, memory) reflects every committed basic block and
// `next_pc` tells the processor where to resume. `dcache`, when non-null,
// is consulted for load/store stall cycles. `resident` charges the cheaper
// resident_stall_cycles (configuration bits already latched in the array)
// instead of a full reconfiguration — timing only, semantics unchanged.
// `trace`, when non-null, records per-op activity for mode-specific
// retiming; the architectural result is unaffected.
ArrayExecOutcome execute_configuration(const Configuration& config,
                                       sim::CpuState& state, mem::Memory& memory,
                                       mem::Cache* dcache,
                                       const ArrayTimingParams& timing,
                                       bool resident = false,
                                       ArrayExecTrace* trace = nullptr);

}  // namespace dim::rra
