#include "rra/configuration.hpp"

#include "common/bitutil.hpp"

namespace dim::rra {

using isa::Instr;
using isa::Op;

int array_srcs(const Instr& i, int out[2]) {
  switch (i.op) {
    case Op::kMfhi:
      out[0] = kCtxHi;
      return 1;
    case Op::kMflo:
      out[0] = kCtxLo;
      return 1;
    default:
      return isa::src_regs(i, out);
  }
}

int array_dests(const Instr& i, int out[2]) {
  if (i.op == Op::kMult || i.op == Op::kMultu) {
    out[0] = kCtxHi;
    out[1] = kCtxLo;
    return 2;
  }
  const int d = isa::dest_reg(i);
  if (d > 0) {
    out[0] = d;
    return 1;
  }
  return 0;
}

uint64_t rows_exec_cycles(const Configuration& config, int last_row,
                          const ArrayTimingParams& timing) {
  uint64_t cycles = 0;
  int alu_run = 0;
  const int limit = last_row < config.rows_used - 1 ? last_row : config.rows_used - 1;
  for (int r = 0; r <= limit; ++r) {
    const RowKind kind = config.row_kinds[static_cast<size_t>(r)];
    if (kind == RowKind::kAlu) {
      ++alu_run;
      continue;
    }
    cycles += static_cast<uint64_t>(ceil_div(alu_run, timing.alu_rows_per_cycle));
    alu_run = 0;
    cycles += (kind == RowKind::kMul) ? timing.mul_row_cycles : timing.mem_row_cycles;
  }
  cycles += static_cast<uint64_t>(ceil_div(alu_run, timing.alu_rows_per_cycle));
  return cycles;
}

uint64_t reconfig_stall_cycles(const Configuration& config,
                               const ArrayTimingParams& timing) {
  // One configuration word per placed op is a reasonable proxy for the bit
  // volume (FU opcode + mux selects + immediate).
  const int64_t load_cycles =
      ceil_div(config.instruction_count(), timing.config_words_per_cycle);
  const int64_t fetch_cycles = ceil_div(config.input_regs, timing.regfile_read_ports);
  const int64_t needed = load_cycles > fetch_cycles ? load_cycles : fetch_cycles;
  const int64_t stall = needed - timing.reconfig_overlap_cycles;
  return stall > 0 ? static_cast<uint64_t>(stall) : 0;
}

uint64_t resident_stall_cycles(const Configuration& config,
                               const ArrayTimingParams& timing) {
  // The configuration words are already latched in the array; only the
  // operand fetch remains, still overlapped with the pipeline front-end.
  const int64_t fetch_cycles = ceil_div(config.input_regs, timing.regfile_read_ports);
  const int64_t stall = fetch_cycles - timing.reconfig_overlap_cycles;
  return stall > 0 ? static_cast<uint64_t>(stall) : 0;
}

}  // namespace dim::rra
