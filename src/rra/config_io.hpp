// Text serialization of array configurations. Lets a reconfiguration cache
// be saved at the end of a run and pre-loaded on the next — a "persistent
// translation cache" in binary-translation terms: the detection phase is
// skipped entirely for code already translated on a previous execution.
#pragma once

#include <istream>
#include <ostream>

#include "rra/configuration.hpp"

namespace dim::bt {
class ReconfigCache;
}

namespace dim::rra {

// One configuration. Format (line-oriented, versioned):
//   config v1 <start_pc> <end_pc> <num_bbs> <rows_used> <in> <out> <imm> <nops>
//   op <word> <pc> <row> <col> <bb> <is_branch> <predicted_taken>
//   ... (nops lines)
//   rowkinds <k0> <k1> ...
void write_configuration(std::ostream& out, const Configuration& config);

// Parses one configuration. Throws std::runtime_error on malformed input.
Configuration read_configuration(std::istream& in);

// Whole-cache convenience (insertion order preserved: oldest first, so FIFO
// age survives the round trip).
void save_cache(std::ostream& out, const bt::ReconfigCache& cache);
void load_cache(std::istream& in, bt::ReconfigCache& cache);

}  // namespace dim::rra
