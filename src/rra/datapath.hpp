// Structural model of the array datapath (paper Figure 2).
//
// The behavioral executor (array_exec) evaluates translated instructions
// against a register context. This model instead builds the actual
// interconnect the paper describes:
//   - a context bus with one line per context register (32 GPRs + HI + LO),
//     loaded from the register bank at reconfiguration;
//   - per functional unit, two *input multiplexers* that select which bus
//     lines feed its operands (the Reads Table);
//   - per bus line and row, an *output multiplexer* whose first input is
//     the previous value of the same line and whose second input is a
//     functional-unit result (the Writes Table) — this is how WAW/WAR
//     renaming works in hardware: younger rows simply re-drive the line.
//
// Executing a configuration row-by-row through this structure must produce
// exactly the behavioral results; the structural tests prove the paper's
// bus architecture can realize every placement our translator emits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/memory.hpp"
#include "rra/configuration.hpp"
#include "sim/cpu_state.hpp"

namespace dim::rra {

// One functional-unit station: its operation plus the input-mux selects.
struct FuStation {
  isa::Instr instr;
  uint32_t pc = 0;
  int row = 0;
  int col = 0;
  isa::FuKind kind = isa::FuKind::kAlu;
  int in_sel[2] = {-1, -1};  // bus line feeding operand 0/1 (-1 = unused)
  int out_sel[2] = {-1, -1}; // bus lines re-driven by this unit's result(s)
  bool is_branch = false;
  bool predicted_taken = false;
  int bb_index = 0;

  // If-conversion: predicate wiring mirrors ArrayOp. A guarded station's
  // output muxes (and store-queue port) are gated by its predicate line.
  int pred_slot = -1;
  bool pred_when_taken = false;
  bool is_pred_def = false;
  bool is_join_jump = false;
};

// The fully-routed datapath for one configuration.
struct RoutedConfig {
  uint32_t start_pc = 0;
  uint32_t end_pc = 0;
  int rows = 0;
  std::vector<FuStation> stations;  // sorted by (row, program order)
  // Bus lines that must be written back to the register bank at the end
  // (the context-current table): line index == context register index.
  std::array<bool, kNumCtxRegs> writeback{};
};

// Derives mux selects from a placed configuration. The routing is purely
// structural (no values involved): operand k of an op reads the bus line of
// its source register; the op's destination re-drives that register's line
// from its row onward.
RoutedConfig route(const Configuration& config);

struct StructuralOutcome {
  uint32_t next_pc = 0;
  int committed_ops = 0;
  bool misspeculated = false;
  std::array<uint32_t, kNumCtxRegs> ctx{};  // final bus values
};

// Drives the routed datapath: loads the bus from the register bank,
// evaluates row by row, forwards store values through a store queue, and
// resolves speculative branches. Memory is updated only by committed
// stores. This is the reference the behavioral executor is checked against.
StructuralOutcome execute_structural(const RoutedConfig& routed,
                                     const sim::CpuState& input,
                                     mem::Memory& memory);

}  // namespace dim::rra
