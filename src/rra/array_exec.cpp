#include "rra/array_exec.hpp"

#include <algorithm>
#include <array>
#include <bitset>

#include "common/bitutil.hpp"
#include "sim/executor.hpp"

namespace dim::rra {

using isa::Instr;
using isa::Op;

namespace {

// Byte-granular store buffer: speculative stores stay here until commit,
// and younger loads see them (store-to-load forwarding).
class StoreBuffer {
 public:
  void store(uint32_t addr, int width, uint32_t value) {
    entries_.push_back(Entry{addr, value, width});
  }

  // Reads one byte through the buffer, falling back to memory.
  uint8_t load_byte(uint32_t addr, const mem::Memory& memory) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (addr >= it->addr && addr < it->addr + static_cast<uint32_t>(it->width)) {
        const uint32_t shift = (addr - it->addr) * 8;
        return static_cast<uint8_t>(it->value >> shift);
      }
    }
    return memory.read8(addr);
  }

  uint32_t load(uint32_t addr, int width, const mem::Memory& memory) const {
    uint32_t value = 0;
    for (int b = 0; b < width; ++b) {
      value |= static_cast<uint32_t>(load_byte(addr + static_cast<uint32_t>(b), memory)) << (8 * b);
    }
    return value;
  }

  void drain_to(mem::Memory& memory) const {
    for (const Entry& e : entries_) {
      switch (e.width) {
        case 1: memory.write8(e.addr, static_cast<uint8_t>(e.value)); break;
        case 2: memory.write16(e.addr, static_cast<uint16_t>(e.value)); break;
        default: memory.write32(e.addr, e.value); break;
      }
    }
  }

 private:
  struct Entry {
    uint32_t addr;
    uint32_t value;
    int width;
  };
  std::vector<Entry> entries_;
};

}  // namespace

ArrayExecOutcome execute_configuration(const Configuration& config,
                                       sim::CpuState& state, mem::Memory& memory,
                                       mem::Cache* dcache,
                                       const ArrayTimingParams& timing,
                                       bool resident, ArrayExecTrace* trace) {
  ArrayExecOutcome out;
  out.reconfig_stall_cycles = resident ? resident_stall_cycles(config, timing)
                                       : reconfig_stall_cycles(config, timing);

  // Context: 32 GPRs + HI + LO, loaded from the register bank.
  std::array<uint32_t, kNumCtxRegs> ctx{};
  std::copy(state.regs.begin(), state.regs.end(), ctx.begin());
  ctx[kCtxHi] = state.hi;
  ctx[kCtxLo] = state.lo;

  StoreBuffer store_buffer;
  int last_row = -1;
  uint32_t next_pc = config.end_pc;
  int committed_bbs = config.num_bbs;
  // Context registers actually written by committed ops: on a partial
  // (misspeculated) commit only these drain through the write ports —
  // the squashed suffix never produced a result to write back.
  std::bitset<kNumCtxRegs> committed_writes;

  // Predicate slots written by pred-defining branches (if-conversion).
  std::array<bool, kMaxPredSlots> pred{};

  for (const ArrayOp& op : config.ops) {
    const Instr& i = op.instr;
    const uint32_t rs = ctx[i.rs];
    const uint32_t rt = ctx[i.rt];
    last_row = std::max(last_row, op.row);

    ArrayExecTrace::OpTrace* ot = nullptr;
    if (trace != nullptr) {
      trace->ops.emplace_back();
      ot = &trace->ops.back();
    }

    if (op.is_pred_def) {
      // Hammock branch: both arms are placed, so it cannot misspeculate. It
      // just latches its condition into the predicate slot and retires.
      ++out.committed_ops;
      ++out.alu_ops;
      const bool taken = sim::branch_taken(i, rs, rt);
      pred[static_cast<size_t>(op.pred_slot)] = taken;
      out.branch_outcomes.push_back(BranchOutcome{op.pc, taken, true});
      if (ot != nullptr) ot->active = true;
      continue;
    }

    const bool active =
        op.pred_slot < 0 || pred[static_cast<size_t>(op.pred_slot)] == op.pred_when_taken;
    if (ot != nullptr) ot->active = active;

    if (op.is_join_jump) {
      // Diamond-internal `b join`: the FU evaluates it either way, but it
      // retires (and reaches the predictor) only on the fall-through arm —
      // the software path never fetches it when the hammock branch is taken.
      ++out.alu_ops;
      if (active) {
        ++out.committed_ops;
        out.branch_outcomes.push_back(BranchOutcome{op.pc, true, true});
      }
      continue;
    }

    if (!active) {
      // Squashed arm: the FU still toggles (it is physically wired into the
      // row), but register/HI-LO writeback, stores and cache traffic are all
      // suppressed and the op does not retire.
      if (isa::fu_kind(i.op) == isa::FuKind::kMul) {
        ++out.mul_ops;
      } else if (isa::fu_kind(i.op) != isa::FuKind::kLdSt) {
        ++out.alu_ops;
      }
      continue;
    }
    ++out.committed_ops;

    if (op.is_branch) {
      ++out.alu_ops;
      const bool taken = sim::branch_taken(i, rs, rt);
      const bool matched = (taken == op.predicted_taken);
      out.branch_outcomes.push_back(BranchOutcome{op.pc, taken, matched});
      if (!matched) {
        out.misspeculated = true;
        out.misspec_branch_pc = op.pc;
        next_pc = taken ? sim::branch_target(i, op.pc) : op.pc + 4;
        committed_bbs = op.bb_index + 1;
        break;
      }
      continue;
    }

    switch (isa::fu_kind(i.op)) {
      case isa::FuKind::kLdSt: {
        const uint32_t addr = sim::effective_address(i, rs);
        if (dcache != nullptr) {
          const uint64_t penalty = dcache->access(addr);
          out.dcache_stall_cycles += penalty;
          if (ot != nullptr) ot->dcache_penalty = penalty;
        }
        ++out.mem_ops;
        if (isa::is_store(i.op)) {
          ++out.stores;
          const int width = sim::mem_width(i.op);
          store_buffer.store(addr, width, rt);
          const uint32_t end = addr + static_cast<uint32_t>(width);
          if (!out.wrote_memory) {
            out.wrote_memory = true;
            out.store_lo = addr;
            out.store_hi = end;
          } else {
            out.store_lo = std::min(out.store_lo, addr);
            out.store_hi = std::max(out.store_hi, end);
          }
        } else {
          ++out.loads;
          const int width = sim::mem_width(i.op);
          uint32_t value = store_buffer.load(addr, width, memory);
          if (i.op == Op::kLb) value = static_cast<uint32_t>(static_cast<int8_t>(value));
          if (i.op == Op::kLh) value = static_cast<uint32_t>(static_cast<int16_t>(value));
          if (i.rt != 0) {
            ctx[i.rt] = value;
            committed_writes.set(i.rt);
          }
        }
        break;
      }
      case isa::FuKind::kMul: {
        ++out.mul_ops;
        const uint64_t product = sim::mult_eval(i.op, rs, rt);
        ctx[kCtxLo] = static_cast<uint32_t>(product);
        ctx[kCtxHi] = static_cast<uint32_t>(product >> 32);
        committed_writes.set(kCtxLo);
        committed_writes.set(kCtxHi);
        break;
      }
      default: {
        ++out.alu_ops;
        if (i.op == Op::kMfhi) {
          if (i.rd != 0) {
            ctx[i.rd] = ctx[kCtxHi];
            committed_writes.set(i.rd);
          }
        } else if (i.op == Op::kMflo) {
          if (i.rd != 0) {
            ctx[i.rd] = ctx[kCtxLo];
            committed_writes.set(i.rd);
          }
        } else {
          const uint32_t value = sim::alu_eval(i, rs, rt);
          const int rd = isa::dest_reg(i);
          if (rd > 0) {
            ctx[static_cast<size_t>(rd)] = value;
            committed_writes.set(static_cast<size_t>(rd));
          }
        }
        break;
      }
    }
  }

  // Commit: every executed op belongs to a resolved basic block (the walk
  // stops at the first mispredicted branch), so the whole context and the
  // store buffer are architectural now.
  ctx[0] = 0;
  std::copy_n(ctx.begin(), 32, state.regs.begin());
  state.hi = ctx[kCtxHi];
  state.lo = ctx[kCtxLo];
  store_buffer.drain_to(memory);
  state.pc = next_pc;

  out.next_pc = next_pc;
  out.committed_bbs = committed_bbs;
  out.exec_cycles = rows_exec_cycles(config, last_row, timing);
  // Drain of the final write-backs, limited by the register-bank write
  // ports (earlier rows' results retire during execution). On a partial
  // (misspeculated) commit only the registers actually written by the
  // committed prefix drain — the squashed suffix, which may hold most of
  // the configuration's output_regs, produced nothing to write back.
  const int drained_regs = out.misspeculated
                               ? static_cast<int>(committed_writes.count())
                               : config.output_regs;
  const int64_t port_cycles =
      ceil_div(drained_regs, timing.regfile_write_ports > 0 ? timing.regfile_write_ports : 1);
  out.finalize_cycles = static_cast<uint64_t>(
      port_cycles > timing.finalize_cycles ? port_cycles : timing.finalize_cycles);
  if (out.misspeculated) {
    out.misspec_penalty_cycles = static_cast<uint64_t>(timing.misspec_penalty);
  }
  return out;
}

}  // namespace dim::rra
