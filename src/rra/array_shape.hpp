// Geometry of the coarse-grained reconfigurable array (paper Table 1) and
// its timing parameters.
#pragma once

#include <cstdint>

namespace dim::rra {

// One row ("line") of the array holds a fixed group of functional units:
// ALUs (which also execute shifts), multipliers, and load/store units.
struct ArrayShape {
  int lines = 24;
  int alus_per_line = 8;
  int muls_per_line = 1;
  int ldsts_per_line = 2;

  int columns() const { return alus_per_line + muls_per_line + ldsts_per_line; }

  // Paper Table 1.
  static ArrayShape config1() { return {24, 8, 1, 2}; }
  static ArrayShape config2() { return {48, 8, 2, 6}; }
  static ArrayShape config3() { return {150, 12, 2, 6}; }
  // "assuming infinite hardware resources for the array"
  static ArrayShape ideal() { return {1 << 20, 1 << 20, 1 << 20, 1 << 20}; }
};

struct ArrayTimingParams {
  // Simple ALU rows chained within one processor-equivalent cycle
  // ("more than one operation can be executed within one ... cycle").
  int alu_rows_per_cycle = 3;
  int mul_row_cycles = 1;   // a multiply row takes a full cycle
  int mem_row_cycles = 1;   // a load/store row takes a cache-hit cycle
  // Cycles of reconfiguration hidden by the front pipeline stages: the PC
  // is known in IF and the array starts in EX, so 3 cycles are free.
  int reconfig_overlap_cycles = 3;
  // Register-bank ports available to fetch the input context.
  int regfile_read_ports = 4;
  // Register-bank ports available to drain results. Write-back runs in
  // parallel with execution (per-row context tables); only the final
  // drain of ceil(outputs / ports) cycles is exposed.
  int regfile_write_ports = 8;
  // Configuration words streamed from the reconfiguration cache per cycle.
  int config_words_per_cycle = 16;
  // Minimum trailing cycles to drain the last row's write-backs (the
  // actual drain is max of this and the port-limited time).
  int finalize_cycles = 1;
  // Pipeline refill after a wrong speculative path.
  int misspec_penalty = 2;
};

}  // namespace dim::rra
