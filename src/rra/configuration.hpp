// A configuration: the result of binary-translating one instruction
// sequence onto the array. Holds both the placed operations (for timing and
// area) and the original instruction semantics (for execution).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"
#include "rra/array_shape.hpp"

namespace dim::rra {

// The array context covers the 32 general registers plus HI and LO, so that
// mult / mfhi / mflo sequences translate naturally.
inline constexpr int kCtxHi = 32;
inline constexpr int kCtxLo = 33;
inline constexpr int kNumCtxRegs = 34;

// Context-register sources of `i` when executed inside the array.
int array_srcs(const isa::Instr& i, int out[2]);
// Context-register destinations (mult writes both HI and LO).
int array_dests(const isa::Instr& i, int out[2]);

enum class RowKind : uint8_t { kAlu, kMul, kMem };

// Upper bound on predicate slots per configuration (if-converted hammocks).
inline constexpr int kMaxPredSlots = 8;

// One placed operation. Conditional branches are placed too (they evaluate
// their condition on an ALU and guard the basic blocks that follow).
struct ArrayOp {
  isa::Instr instr;
  uint32_t pc = 0;
  int row = 0;
  int col = 0;
  isa::FuKind kind = isa::FuKind::kAlu;
  int bb_index = 0;  // 0 = non-speculative part, >0 = speculation depth
  bool is_branch = false;
  bool predicted_taken = false;  // only for branches

  // If-conversion (hammock merging). A predicate-defining branch evaluates
  // its condition into `pred_slot` and never misspeculates; ops guarded by a
  // slot execute on the array but write back (registers, HI/LO, stores) only
  // when the slot's value equals `pred_when_taken`. The join jump of a
  // diamond (`b join`) retires only on the fall-through arm.
  int pred_slot = -1;            // -1 = unpredicated
  bool pred_when_taken = false;  // arm is active when slot == this
  bool is_pred_def = false;      // branch writes pred_slot instead of guarding
  bool is_join_jump = false;     // diamond-internal unconditional jump
};

struct Configuration {
  uint32_t start_pc = 0;
  uint32_t end_pc = 0;  // PC to resume at when every prediction holds
  std::vector<ArrayOp> ops;  // in original program order
  int rows_used = 0;
  std::vector<RowKind> row_kinds;  // one entry per used row
  int num_bbs = 1;                 // basic blocks covered (1 = no speculation)
  int input_regs = 0;              // context registers fetched at start
  int output_regs = 0;             // context registers written back
  int immediates = 0;
  int pred_slots = 0;              // predicate slots used by if-conversion

  // Lifecycle flags managed by the accelerated system.
  int misspec_count = 0;
  bool no_extend = false;  // speculation extension failed; don't retry

  // Monotone stamp assigned by the rcache on insert/preload; a loop-resident
  // dispatch is valid only while the cached entry's revision still matches.
  uint64_t revision = 0;

  // Elastic-admissibility memo (-1 unknown, 0 rejected, 1 admissible).
  // Derived from ops + fifo_capacity, so it is NOT serialized: entries
  // arriving via snapshot restore or warm-start preload are reclassified
  // lazily on first dispatch. Mutable because classification happens
  // through the rcache's const-ish lookup path.
  mutable int8_t elastic_memo = -1;

  int instruction_count() const { return static_cast<int>(ops.size()); }
};

// Cycles the array needs to execute rows [0, last_row] of `config`
// (exclusive of reconfiguration, write-back drain and cache-miss stalls).
uint64_t rows_exec_cycles(const Configuration& config, int last_row,
                          const ArrayTimingParams& timing);

// Cycles needed to load the configuration bits and fetch `inputs` operands,
// minus the overlap hidden by the pipeline front-end. This is the stall the
// processor sees ("in cases three cycles are not enough ... the processor
// will be stalled").
uint64_t reconfig_stall_cycles(const Configuration& config,
                               const ArrayTimingParams& timing);

// Stall for re-dispatching a configuration that is already resident in the
// array (loop residency): the configuration bits need no reload, only the
// input operands are fetched again.
uint64_t resident_stall_cycles(const Configuration& config,
                               const ArrayTimingParams& timing);

}  // namespace dim::rra
