// Intentionally header-only; this translation unit exists so the build
// keeps one object per module and future non-inline helpers have a home.
#include "rra/array_shape.hpp"
