// Patricia (MiBench network/patricia): radix-trie insert and lookup over
// 16-bit keys (routing-table style). Pointer chasing with a branch per
// bit — no hot kernel, many small basic blocks.
#include <set>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_patricia(int scale) {
  const int inserts = 900 * scale;
  const int lookups = 1800 * scale;
  uint32_t seed = 0x9A721C1Au;

  std::vector<uint32_t> keys(static_cast<size_t>(inserts));
  for (auto& k : keys) k = golden::lcg(seed) & 0xFFFF;

  std::vector<uint32_t> queries(static_cast<size_t>(lookups));
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0) {
      queries[i] = keys[(golden::lcg(seed) % keys.size())];
    } else {
      queries[i] = golden::lcg(seed) & 0xFFFF;
    }
  }

  std::set<uint32_t> present(keys.begin(), keys.end());
  uint32_t hits = 0;
  for (uint32_t q : queries) hits += present.count(q) ? 1 : 0;

  // Longest-prefix-match pass (the routing-table lookup patricia exists
  // for): for each query, the depth of the deepest trie node on its path.
  // Mirrors the node-per-bit trie the kernel builds.
  uint32_t lpm_sum = 0;
  for (uint32_t q : queries) {
    uint32_t depth = 0;
    for (uint32_t k : present) {
      uint32_t common = 0;
      for (int b = 15; b >= 0; --b) {
        if (((q >> b) & 1) != ((k >> b) & 1)) break;
        ++common;
      }
      depth = std::max(depth, common);
    }
    lpm_sum += depth;
  }
  const uint32_t combined = hits + 17u * lpm_sum;

  // Node layout: [0]=left, [4]=right, [8]=key, [12]=valid — 16 bytes,
  // bump-allocated from the zero-initialized pool.
  const int pool_bytes = 16 * (16 * inserts + 2);

  std::string src;
  src += "        .data\n";
  src += "keys:\n" + dot_words(keys);
  src += "qrys:\n" + dot_words(queries);
  src += "pool:   .space " + std::to_string(pool_bytes) + "\n";
  src += "        .text\n";
  src += "main:   la $s0, pool          # root node\n";
  src += "        la $s1, pool\n";
  src += "        addiu $s1, $s1, 16    # bump allocator pointer\n";
  src += "        la $s2, keys\n";
  src += "        li $s3, " + std::to_string(inserts) + "\n";
  src += R"(# ---- insert phase ----
ins:    lw $t0, 0($s2)        # key
        addiu $s2, $s2, 4
        move $t1, $s0         # node = root
        li $t2, 15            # bit index
insbit: srlv $t3, $t0, $t2
        andi $t3, $t3, 1
        sll $t3, $t3, 2       # child offset 0/4
        addu $t4, $t1, $t3
        lw $t5, 0($t4)        # child pointer
        bnez $t5, insdesc
        move $t5, $s1         # allocate new node
        addiu $s1, $s1, 16
        sw $t5, 0($t4)
insdesc:
        move $t1, $t5
        addiu $t2, $t2, -1
        bgez $t2, insbit
        sw $t0, 8($t1)        # leaf: key
        li $t3, 1
        sw $t3, 12($t1)       # valid
        addiu $s3, $s3, -1
        bnez $s3, ins
# ---- lookup phase ----
        la $s2, qrys
)";
  src += "        li $s3, " + std::to_string(lookups) + "\n";
  src += R"(        li $s7, 0             # hits
look:   lw $t0, 0($s2)
        addiu $s2, $s2, 4
        move $t1, $s0
        li $t2, 15
lkbit:  srlv $t3, $t0, $t2
        andi $t3, $t3, 1
        sll $t3, $t3, 2
        addu $t4, $t1, $t3
        lw $t1, 0($t4)
        beqz $t1, lkmiss
        addiu $t2, $t2, -1
        bgez $t2, lkbit
        lw $t3, 12($t1)       # valid?
        beqz $t3, lkmiss
        lw $t3, 8($t1)
        bne $t3, $t0, lkmiss
        addiu $s7, $s7, 1
lkmiss: addiu $s3, $s3, -1
        bnez $s3, look
# ---- longest-prefix-match phase (routing-table style) ----
        la $s2, qrys
)";
  src += "        li $s3, " + std::to_string(lookups) + "\n";
  src += R"(        li $s5, 0             # lpm depth sum
lpm:    lw $t0, 0($s2)
        addiu $s2, $s2, 4
        move $t1, $s0         # node = root
        li $t2, 15
        li $t5, 0             # depth
lpmbit: srlv $t3, $t0, $t2
        andi $t3, $t3, 1
        sll $t3, $t3, 2
        addu $t4, $t1, $t3
        lw $t4, 0($t4)
        beqz $t4, lpmend
        addiu $t5, $t5, 1
        move $t1, $t4
        addiu $t2, $t2, -1
        bgez $t2, lpmbit
lpmend: addu $s5, $s5, $t5
        addiu $s3, $s3, -1
        bnez $s3, lpm
# combined = hits + 17 * lpm_sum
        sll $t0, $s5, 4
        addu $t0, $t0, $s5
        addu $a0, $s7, $t0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "patricia";
  w.display = "Patricia";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(combined));
  return w;
}

}  // namespace dim::work
