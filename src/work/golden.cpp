#include "work/golden.hpp"

#include <algorithm>
#include <cmath>

namespace dim::work::golden {

// --- CRC-32 ------------------------------------------------------------------

std::vector<uint32_t> crc32_table() {
  std::vector<uint32_t> table(256);
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

uint32_t crc32(const std::vector<uint8_t>& data) {
  static const std::vector<uint32_t> table = crc32_table();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : data) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// --- SHA-1 -------------------------------------------------------------------

std::array<uint32_t, 5> sha1_blocks(const std::vector<uint8_t>& data) {
  std::array<uint32_t, 5> h = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                               0xC3D2E1F0u};
  auto rotl = [](uint32_t v, int n) { return (v << n) | (v >> (32 - n)); };
  for (size_t off = 0; off + 64 <= data.size(); off += 64) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(data[off + 4 * i]) << 24) |
             (static_cast<uint32_t>(data[off + 4 * i + 1]) << 16) |
             (static_cast<uint32_t>(data[off + 4 * i + 2]) << 8) |
             static_cast<uint32_t>(data[off + 4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  return h;
}

// --- AES-128 -----------------------------------------------------------------

namespace {

constexpr std::array<uint8_t, 256> make_sbox() {
  // FIPS-197 S-box, stated directly (computing it needs GF inversion).
  return std::array<uint8_t, 256>{
      0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
      0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
      0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
      0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
      0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
      0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
      0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
      0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
      0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
      0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
      0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
      0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
      0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
      0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
      0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
      0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
      0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
      0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
      0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
      0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
      0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
      0xb0, 0x54, 0xbb, 0x16};
}

constexpr std::array<uint8_t, 256> make_inv_sbox() {
  std::array<uint8_t, 256> inv{};
  const auto sbox = make_sbox();
  for (int i = 0; i < 256; ++i) inv[sbox[static_cast<size_t>(i)]] = static_cast<uint8_t>(i);
  return inv;
}

uint8_t xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0x00));
}

uint8_t gmul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

const std::array<uint8_t, 256> kAesSbox = make_sbox();
const std::array<uint8_t, 256> kAesInvSbox = make_inv_sbox();

Aes128::Aes128(const std::array<uint8_t, 16>& key) {
  std::copy(key.begin(), key.end(), round_keys.begin());
  uint8_t rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    uint8_t t[4] = {round_keys[static_cast<size_t>(i - 4)], round_keys[static_cast<size_t>(i - 3)],
                    round_keys[static_cast<size_t>(i - 2)], round_keys[static_cast<size_t>(i - 1)]};
    if (i % 16 == 0) {
      const uint8_t tmp = t[0];
      t[0] = static_cast<uint8_t>(kAesSbox[t[1]] ^ rcon);
      t[1] = kAesSbox[t[2]];
      t[2] = kAesSbox[t[3]];
      t[3] = kAesSbox[tmp];
      rcon = xtime(rcon);
    }
    for (int k = 0; k < 4; ++k) {
      round_keys[static_cast<size_t>(i + k)] =
          static_cast<uint8_t>(round_keys[static_cast<size_t>(i + k - 16)] ^ t[k]);
    }
  }
}

std::array<uint8_t, 16> Aes128::encrypt(const std::array<uint8_t, 16>& block) const {
  std::array<uint8_t, 16> s = block;
  auto add_key = [&](int round) {
    for (int i = 0; i < 16; ++i)
      s[static_cast<size_t>(i)] ^= round_keys[static_cast<size_t>(round * 16 + i)];
  };
  add_key(0);
  for (int round = 1; round <= 10; ++round) {
    for (auto& b : s) b = kAesSbox[b];
    // ShiftRows (column-major state: s[r + 4c]).
    std::array<uint8_t, 16> t = s;
    for (int r = 1; r < 4; ++r)
      for (int c = 0; c < 4; ++c)
        s[static_cast<size_t>(r + 4 * c)] = t[static_cast<size_t>(r + 4 * ((c + r) % 4))];
    if (round < 10) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = &s[static_cast<size_t>(4 * c)];
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    add_key(round);
  }
  return s;
}

std::array<uint8_t, 16> Aes128::decrypt(const std::array<uint8_t, 16>& block) const {
  std::array<uint8_t, 16> s = block;
  auto add_key = [&](int round) {
    for (int i = 0; i < 16; ++i)
      s[static_cast<size_t>(i)] ^= round_keys[static_cast<size_t>(round * 16 + i)];
  };
  add_key(10);
  for (int round = 9; round >= 0; --round) {
    // InvShiftRows.
    std::array<uint8_t, 16> t = s;
    for (int r = 1; r < 4; ++r)
      for (int c = 0; c < 4; ++c)
        s[static_cast<size_t>(r + 4 * ((c + r) % 4))] = t[static_cast<size_t>(r + 4 * c)];
    for (auto& b : s) b = kAesInvSbox[b];
    add_key(round);
    if (round > 0) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = &s[static_cast<size_t>(4 * c)];
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
        col[1] = static_cast<uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13));
        col[2] = static_cast<uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11));
        col[3] = static_cast<uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14));
      }
    }
  }
  return s;
}

// --- IMA ADPCM ---------------------------------------------------------------

const std::array<int16_t, 89> kAdpcmStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,
    21,    23,    25,    28,    31,    34,    37,    41,    45,    50,    55,
    60,    66,    73,    80,    88,    97,    107,   118,   130,   143,   157,
    173,   190,   209,   230,   253,   279,   307,   337,   371,   408,   449,
    494,   544,   598,   658,   724,   796,   876,   963,   1060,  1166,  1282,
    1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,  3660,
    4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442,
    11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767};

const std::array<int8_t, 16> kAdpcmIndexTable = {-1, -1, -1, -1, 2, 4, 6, 8,
                                                 -1, -1, -1, -1, 2, 4, 6, 8};

std::vector<uint8_t> adpcm_encode(const std::vector<int16_t>& samples) {
  std::vector<uint8_t> out;
  out.reserve(samples.size());
  int valpred = 0;
  int index = 0;
  for (int16_t sample : samples) {
    const int step = kAdpcmStepTable[static_cast<size_t>(index)];
    int diff = sample - valpred;
    int code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    int tempstep = step;
    if (diff >= tempstep) {
      code |= 4;
      diff -= tempstep;
    }
    tempstep >>= 1;
    if (diff >= tempstep) {
      code |= 2;
      diff -= tempstep;
    }
    tempstep >>= 1;
    if (diff >= tempstep) code |= 1;

    // Reconstruct predictor exactly like the decoder.
    int diffq = step >> 3;
    if (code & 4) diffq += step;
    if (code & 2) diffq += step >> 1;
    if (code & 1) diffq += step >> 2;
    if (code & 8) {
      valpred -= diffq;
    } else {
      valpred += diffq;
    }
    valpred = std::clamp(valpred, -32768, 32767);

    index += kAdpcmIndexTable[static_cast<size_t>(code)];
    index = std::clamp(index, 0, 88);
    out.push_back(static_cast<uint8_t>(code));
  }
  return out;
}

std::vector<int16_t> adpcm_decode(const std::vector<uint8_t>& codes, size_t sample_count) {
  std::vector<int16_t> out;
  out.reserve(sample_count);
  int valpred = 0;
  int index = 0;
  for (size_t n = 0; n < sample_count && n < codes.size(); ++n) {
    const int code = codes[n] & 0xF;
    const int step = kAdpcmStepTable[static_cast<size_t>(index)];
    int diffq = step >> 3;
    if (code & 4) diffq += step;
    if (code & 2) diffq += step >> 1;
    if (code & 1) diffq += step >> 2;
    if (code & 8) {
      valpred -= diffq;
    } else {
      valpred += diffq;
    }
    valpred = std::clamp(valpred, -32768, 32767);
    index += kAdpcmIndexTable[static_cast<size_t>(code)];
    index = std::clamp(index, 0, 88);
    out.push_back(static_cast<int16_t>(valpred));
  }
  return out;
}

// --- DCT / IDCT --------------------------------------------------------------

namespace {

std::array<int32_t, 64> make_cos14() {
  std::array<int32_t, 64> c{};
  for (int u = 0; u < 8; ++u) {
    const double alpha = (u == 0) ? std::sqrt(0.125) : 0.5;
    for (int x = 0; x < 8; ++x) {
      const double value = alpha * std::cos((2 * x + 1) * u * M_PI / 16.0);
      c[static_cast<size_t>(u * 8 + x)] = static_cast<int32_t>(std::lround(value * 16384.0));
    }
  }
  return c;
}

}  // namespace

const std::array<int32_t, 64> kDctCos14 = make_cos14();

const std::array<int16_t, 64> kJpegQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

void dct8x8(const int16_t in[64], int16_t out[64]) {
  int32_t tmp[64];
  // Rows: tmp[u][x] is in fact tmp = C * in (over rows).
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      int64_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += static_cast<int64_t>(kDctCos14[static_cast<size_t>(u * 8 + x)]) * in[y * 8 + x];
      }
      tmp[y * 8 + u] = static_cast<int32_t>(acc >> 14);
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<int64_t>(kDctCos14[static_cast<size_t>(v * 8 + y)]) * tmp[y * 8 + u];
      }
      out[v * 8 + u] = static_cast<int16_t>(acc >> 14);
    }
  }
}

void idct8x8(const int16_t in[64], int16_t out[64]) {
  int32_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<int64_t>(kDctCos14[static_cast<size_t>(v * 8 + y)]) * in[v * 8 + u];
      }
      tmp[y * 8 + u] = static_cast<int32_t>(acc >> 14);
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += static_cast<int64_t>(kDctCos14[static_cast<size_t>(u * 8 + x)]) * tmp[y * 8 + u];
      }
      out[y * 8 + x] = static_cast<int16_t>(acc >> 14);
    }
  }
}

// --- GSM-style lattice filters -------------------------------------------------

const std::array<int16_t, 8> kGsmReflection = {13107, -9830, 6553, -4915,
                                               3277,  -1638, 819,  -409};

// Structure of GSM 06.10 Short_term_analysis_filtering (lattice with u[]
// memory), with plain >>15 scaling instead of the saturating GSM_MULT_R.
std::vector<int16_t> gsm_analysis(const std::vector<int16_t>& samples) {
  std::vector<int16_t> out;
  out.reserve(samples.size());
  std::array<int32_t, 8> u{};
  for (int16_t sample : samples) {
    int32_t di = sample;
    int32_t sav = di;
    for (int i = 0; i < 8; ++i) {
      const int32_t ui = u[static_cast<size_t>(i)];
      const int32_t k = kGsmReflection[static_cast<size_t>(i)];
      u[static_cast<size_t>(i)] = sav;
      sav = ui + ((k * di) >> 15);
      di = di + ((k * ui) >> 15);
    }
    di = std::clamp(di, -32768, 32767);
    out.push_back(static_cast<int16_t>(di));
  }
  return out;
}

// Structure of GSM 06.10 Short_term_synthesis_filtering with v[] memory.
std::vector<int16_t> gsm_synthesis(const std::vector<int16_t>& residual) {
  std::vector<int16_t> out;
  out.reserve(residual.size());
  std::array<int32_t, 9> v{};
  for (int16_t r : residual) {
    int32_t sri = r;
    for (int i = 7; i >= 0; --i) {
      const int32_t k = kGsmReflection[static_cast<size_t>(i)];
      sri = sri - ((k * v[static_cast<size_t>(i)]) >> 15);
      v[static_cast<size_t>(i + 1)] = v[static_cast<size_t>(i)] + ((k * sri) >> 15);
    }
    sri = std::clamp(sri, -32768, 32767);
    v[0] = sri;
    out.push_back(static_cast<int16_t>(sri));
  }
  return out;
}

// --- SUSAN-style kernels -------------------------------------------------------

std::vector<int32_t> susan_lut() {
  std::vector<int32_t> lut(256);
  for (int d = 0; d < 256; ++d) lut[static_cast<size_t>(d)] = 100 / (1 + (d * d) / 512);
  return lut;
}

std::vector<uint8_t> susan_smooth(const std::vector<uint8_t>& img, int w, int h) {
  static const std::vector<int32_t> lut = susan_lut();
  std::vector<uint8_t> out = img;
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      const int center = img[static_cast<size_t>(y * w + x)];
      int32_t num = 0;
      int32_t den = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int p = img[static_cast<size_t>((y + dy) * w + (x + dx))];
          const int32_t weight = lut[static_cast<size_t>(std::abs(p - center))];
          num += weight * p;
          den += weight;
        }
      }
      out[static_cast<size_t>(y * w + x)] = static_cast<uint8_t>(num / den);
    }
  }
  return out;
}

int susan_corners(const std::vector<uint8_t>& img, int w, int h) {
  int corners = 0;
  const int t = 20;
  for (int y = 2; y < h - 2; ++y) {
    for (int x = 2; x < w - 2; ++x) {
      const int center = img[static_cast<size_t>(y * w + x)];
      int usan = 0;
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const int p = img[static_cast<size_t>((y + dy) * w + (x + dx))];
          if (std::abs(p - center) < t) ++usan;
        }
      }
      if (usan < 13) ++corners;  // geometric threshold: half the 5x5 mask
    }
  }
  return corners;
}

int susan_edges(const std::vector<uint8_t>& img, int w, int h) {
  int edges = 0;
  const int t = 12;
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      const int center = img[static_cast<size_t>(y * w + x)];
      int usan = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int p = img[static_cast<size_t>((y + dy) * w + (x + dx))];
          if (std::abs(p - center) < t) ++usan;
        }
      }
      if (usan < 7) ++edges;
    }
  }
  return edges;
}

}  // namespace dim::work::golden
