// Stringsearch (MiBench office/stringsearch): Boyer-Moore-Horspool search
// of several patterns over a text, with a per-pattern bad-character table,
// as in the original Pratt-Boyer-Moore benchmark.
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_stringsearch(int scale) {
  const int text_len = 12288 * scale;
  const int num_patterns = 8;
  uint32_t seed = 0x57A65EA2u;

  // Text over a small alphabet so matches actually occur.
  std::vector<uint8_t> text(static_cast<size_t>(text_len));
  for (auto& c : text) c = static_cast<uint8_t>('a' + golden::lcg(seed) % 8);

  // Patterns: substrings of the text (guaranteed hits) of varied length.
  std::vector<std::vector<uint8_t>> patterns;
  for (int p = 0; p < num_patterns; ++p) {
    const int m = 4 + p % 5;  // 4..8
    const size_t pos = golden::lcg(seed) % static_cast<uint32_t>(text_len - 16);
    patterns.emplace_back(text.begin() + static_cast<long>(pos),
                          text.begin() + static_cast<long>(pos) + m);
  }

  // Golden: Boyer-Moore-Horspool pass counts matches; a second brute-force
  // pass (MiBench's suite also runs several search functions) accumulates
  // the positions of every occurrence.
  uint32_t matches = 0;
  uint32_t possum = 0;
  for (const auto& pat : patterns) {
    const int m = static_cast<int>(pat.size());
    int skip[256];
    for (int i = 0; i < 256; ++i) skip[i] = m;
    for (int i = 0; i < m - 1; ++i) skip[pat[static_cast<size_t>(i)]] = m - 1 - i;
    int pos = 0;
    while (pos + m <= text_len) {
      int j = m - 1;
      while (j >= 0 && text[static_cast<size_t>(pos + j)] == pat[static_cast<size_t>(j)]) --j;
      if (j < 0) ++matches;
      pos += skip[text[static_cast<size_t>(pos + m - 1)]];
    }
    for (pos = 0; pos + m <= text_len; ++pos) {
      int j = 0;
      while (j < m && text[static_cast<size_t>(pos + j)] == pat[static_cast<size_t>(j)]) ++j;
      if (j == m) possum += static_cast<uint32_t>(pos);
    }
  }
  const uint32_t combined = matches + 7u * possum;

  // Pattern storage: lengths table + concatenated bytes (each padded to 16).
  std::vector<uint32_t> plens;
  std::vector<uint8_t> pbytes;
  for (const auto& pat : patterns) {
    plens.push_back(static_cast<uint32_t>(pat.size()));
    std::vector<uint8_t> padded(pat);
    padded.resize(16, 0);
    pbytes.insert(pbytes.end(), padded.begin(), padded.end());
  }

  std::string src;
  src += "        .data\n";
  src += "text:\n" + dot_bytes(text);
  src += "plens:\n" + dot_words(plens);
  src += "pats:\n" + dot_bytes(pbytes);
  src += "skip:   .space 1024\n";
  src += "        .text\n";
  src += "main:   li $s7, 0             # matches (BMH)\n";
  src += "        li $s0, 0             # position sum (naive)\n";
  src += "        li $s6, 0             # pattern index\n";
  src += "ploop:  la $t0, plens\n";
  src += R"(        sll $t1, $s6, 2
        addu $t0, $t0, $t1
        lw $s5, 0($t0)        # m = pattern length
        la $s4, pats
        sll $t1, $s6, 4
        addu $s4, $s4, $t1    # pattern base
# build skip table: all entries = m
        la $t0, skip
        li $t1, 256
skinit: sw $s5, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, -1
        bnez $t1, skinit
# for i in 0..m-2: skip[pat[i]] = m-1-i
        li $t1, 0
        addiu $t2, $s5, -1    # m-1
skfill: bge $t1, $t2, skdone
        addu $t3, $s4, $t1
        lbu $t3, 0($t3)       # pat[i]
        sll $t3, $t3, 2
        la $t4, skip
        addu $t4, $t4, $t3
        subu $t5, $t2, $t1    # m-1-i
        sw $t5, 0($t4)
        addiu $t1, $t1, 1
        b skfill
skdone:
# search
        la $s3, text          # window pointer (text + pos)
)";
  src += "        li $t9, " + std::to_string(text_len) + "\n";
  src += R"(        la $t8, text
        addu $t9, $t8, $t9    # text end
        subu $t9, $t9, $s5    # last valid window + 1 boundary helper
        addiu $t9, $t9, 1     # loop while window <= text_end - m
search: subu $t0, $t9, $s3
        blez $t0, pdone       # pos + m > text_len
# compare backwards
        addiu $t1, $s5, -1    # j = m-1
cmp:    bltz $t1, hit
        addu $t2, $s3, $t1
        lbu $t2, 0($t2)       # text[pos+j]
        addu $t3, $s4, $t1
        lbu $t3, 0($t3)       # pat[j]
        bne $t2, $t3, shift
        addiu $t1, $t1, -1
        b cmp
hit:    addiu $s7, $s7, 1
shift:  addiu $t0, $s5, -1
        addu $t0, $s3, $t0
        lbu $t0, 0($t0)       # text[pos+m-1]
        sll $t0, $t0, 2
        la $t1, skip
        addu $t1, $t1, $t0
        lw $t1, 0($t1)
        addu $s3, $s3, $t1    # pos += skip[...]
        b search
pdone:
# ---- second searcher: brute force, accumulating match positions ----
        la $s3, text
naive:  subu $t0, $t9, $s3
        blez $t0, ndone
        li $t1, 0             # j
ncmp:   bge $t1, $s5, nhit
        addu $t2, $s3, $t1
        lbu $t2, 0($t2)
        addu $t3, $s4, $t1
        lbu $t3, 0($t3)
        bne $t2, $t3, nmiss
        addiu $t1, $t1, 1
        b ncmp
nhit:   la $t4, text
        subu $t4, $s3, $t4    # match position
        addu $s0, $s0, $t4
nmiss:  addiu $s3, $s3, 1
        b naive
ndone:  addiu $s6, $s6, 1
)";
  src += "        li $t0, " + std::to_string(num_patterns) + "\n";
  src += R"(        bne $s6, $t0, ploop
# combined = matches + 7 * possum
        sll $t0, $s0, 3
        subu $t0, $t0, $s0
        addu $a0, $s7, $t0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "stringsearch";
  w.display = "Stringsearch";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(combined));
  return w;
}

}  // namespace dim::work
