// Bitcount (MiBench automotive/bitcount): counts set bits with three
// different methods (shift-and-mask loop, Kernighan's trick, nibble table),
// exactly like the original benchmark exercises multiple counters.
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_bitcount(int scale) {
  const int n = 3000 * scale;
  uint32_t seed = 0xB17C0017u;
  std::vector<uint32_t> data(static_cast<size_t>(n));
  for (auto& v : data) v = golden::lcg(seed);

  // Golden: three methods over the same data (each counts every word).
  uint64_t total = 0;
  for (uint32_t v : data) {
    int c1 = 0;
    for (uint32_t x = v; x != 0; x >>= 1) c1 += static_cast<int>(x & 1);
    int c2 = 0;
    for (uint32_t x = v; x != 0; x &= x - 1) ++c2;
    int c3 = 0;
    for (uint32_t x = v, k = 0; k < 8; ++k, x >>= 4) {
      c3 += static_cast<int>((0x4332322132212110ull >> ((x & 0xF) * 4)) & 0xF);
    }
    total += static_cast<uint64_t>(c1 + c2 + c3);
  }

  std::vector<uint32_t> nibble_table = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};

  std::string src;
  src += "        .data\n";
  src += "nibtab:\n" + dot_words(nibble_table);
  src += "data:\n" + dot_words(data);
  src += "        .text\n";
  src += "main:   li $s7, 0             # total\n";
  src += "        la $s0, data\n";
  src += "        li $s1, " + std::to_string(n) + "\n";
  src += R"(# --- method 1: shift-and-mask -------------------------------------------
m1out:  lw $t0, 0($s0)
        li $t1, 0
        beqz $t0, m1next
m1bit:  andi $t2, $t0, 1
        addu $t1, $t1, $t2
        srl $t0, $t0, 1
        bnez $t0, m1bit
m1next: addu $s7, $s7, $t1
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bnez $s1, m1out
# --- method 2: Kernighan ---------------------------------------------------
        la $s0, data
)";
  src += "        li $s1, " + std::to_string(n) + "\n";
  src += R"(m2out:  lw $t0, 0($s0)
        li $t1, 0
        beqz $t0, m2next
m2bit:  addiu $t2, $t0, -1
        and $t0, $t0, $t2
        addiu $t1, $t1, 1
        bnez $t0, m2bit
m2next: addu $s7, $s7, $t1
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bnez $s1, m2out
# --- method 3: nibble table (unrolled over the 8 nibbles) ------------------
        la $s0, data
)";
  src += "        li $s1, " + std::to_string(n) + "\n";
  src += R"(        la $s2, nibtab
m3out:  lw $t0, 0($s0)
        li $t1, 0
        li $t3, 8
m3nib:  andi $t2, $t0, 15
        sll $t2, $t2, 2
        addu $t2, $s2, $t2
        lw $t2, 0($t2)
        addu $t1, $t1, $t2
        srl $t0, $t0, 4
        addiu $t3, $t3, -1
        bnez $t3, m3nib
        addu $s7, $s7, $t1
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bnez $s1, m3out
# --- done -------------------------------------------------------------------
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "bitcount";
  w.display = "Bitcount";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(total));
  return w;
}

}  // namespace dim::work
