// Quicksort (MiBench automotive/qsort_large): sorts 3-D vectors by squared
// magnitude — a multiplier-heavy precompute pass followed by an iterative
// quicksort (explicit work stack, Lomuto partition). The sort itself is
// control-flow dominated, exactly why the paper lists it in the
// control-flow group.
#include <algorithm>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_quicksort(int scale) {
  const int n = 1500 * scale;
  uint32_t seed = 0x50AE7123u;
  std::vector<int16_t> xs(static_cast<size_t>(n)), ys(static_cast<size_t>(n)),
      zs(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs[static_cast<size_t>(i)] = static_cast<int16_t>(golden::lcg(seed) % 4096);
    ys[static_cast<size_t>(i)] = static_cast<int16_t>(golden::lcg(seed) % 4096);
    zs[static_cast<size_t>(i)] = static_cast<int16_t>(golden::lcg(seed) % 4096);
  }

  // Golden: magnitudes, sort, position-mixed checksum.
  std::vector<uint32_t> mags(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int32_t x = xs[static_cast<size_t>(i)];
    const int32_t y = ys[static_cast<size_t>(i)];
    const int32_t z = zs[static_cast<size_t>(i)];
    mags[static_cast<size_t>(i)] = static_cast<uint32_t>(x * x + y * y + z * z);
  }
  std::vector<uint32_t> sorted = mags;
  std::sort(sorted.begin(), sorted.end());
  uint32_t checksum = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    checksum += sorted[i] ^ static_cast<uint32_t>(i);
  }

  std::string src;
  src += "        .data\n";
  src += "xs:\n" + dot_halfs(xs);
  src += "ys:\n" + dot_halfs(ys);
  src += "zs:\n" + dot_halfs(zs);
  src += "        .align 2\n";
  src += "arr:    .space " + std::to_string(4 * n) + "\n";
  src += "stack:  .space " + std::to_string(8 * (n + 4)) + "\n";
  src += "        .text\n";
  src += "main:\n";
  src += "# ---- magnitude precompute: arr[i] = x^2 + y^2 + z^2 ----\n";
  src += "        la $t0, xs\n";
  src += "        la $t1, ys\n";
  src += "        la $t2, zs\n";
  src += "        la $t3, arr\n";
  src += "        li $t4, " + std::to_string(n) + "\n";
  src += R"(pre:    lh $t5, 0($t0)
        mult $t5, $t5
        mflo $t6
        lh $t5, 0($t1)
        mult $t5, $t5
        mflo $t7
        addu $t6, $t6, $t7
        lh $t5, 0($t2)
        mult $t5, $t5
        mflo $t7
        addu $t6, $t6, $t7
        sw $t6, 0($t3)
        addiu $t0, $t0, 2
        addiu $t1, $t1, 2
        addiu $t2, $t2, 2
        addiu $t3, $t3, 4
        addiu $t4, $t4, -1
        bnez $t4, pre
# ---- iterative quicksort over arr ----
        la $s0, arr
        la $s1, stack         # work-stack pointer (grows up)
        li $t0, 0
)";
  src += "        li $t1, " + std::to_string(n - 1) + "\n";
  src += R"(        sw $t0, 0($s1)        # push (lo=0, hi=n-1)
        sw $t1, 4($s1)
        addiu $s1, $s1, 8
        la $s2, stack
qloop:  beq $s1, $s2, qdone   # stack empty?
        addiu $s1, $s1, -8
        lw $s3, 0($s1)        # lo
        lw $s4, 4($s1)        # hi
        slt $t0, $s3, $s4
        beqz $t0, qloop       # skip ranges of size <= 1
# Lomuto partition, pivot = arr[hi]
        sll $t0, $s4, 2
        addu $t0, $s0, $t0
        lw $s5, 0($t0)        # pivot value
        addiu $s6, $s3, -1    # i = lo - 1
        move $s7, $s3         # j = lo
part:   bge $s7, $s4, partend
        sll $t0, $s7, 2
        addu $t0, $s0, $t0
        lw $t1, 0($t0)        # arr[j]
        bgtu $t1, $s5, noswap
        addiu $s6, $s6, 1     # ++i
        sll $t2, $s6, 2
        addu $t2, $s0, $t2
        lw $t3, 0($t2)        # arr[i]
        sw $t1, 0($t2)        # swap arr[i], arr[j]
        sw $t3, 0($t0)
noswap: addiu $s7, $s7, 1
        b part
partend:
        addiu $s6, $s6, 1     # p = i + 1
        sll $t0, $s6, 2
        addu $t0, $s0, $t0
        lw $t1, 0($t0)        # arr[p]
        sll $t2, $s4, 2
        addu $t2, $s0, $t2
        lw $t3, 0($t2)        # arr[hi]
        sw $t3, 0($t0)        # swap arr[p], arr[hi]
        sw $t1, 0($t2)
# push (lo, p-1) and (p+1, hi)
        addiu $t0, $s6, -1
        sw $s3, 0($s1)
        sw $t0, 4($s1)
        addiu $s1, $s1, 8
        addiu $t0, $s6, 1
        sw $t0, 0($s1)
        sw $s4, 4($s1)
        addiu $s1, $s1, 8
        b qloop
qdone:
# checksum = sum over i of arr[i] ^ i
        li $s3, 0             # i
)";
  src += "        li $s4, " + std::to_string(n) + "\n";
  src += R"(        li $s5, 0             # checksum
chk:    sll $t0, $s3, 2
        addu $t0, $s0, $t0
        lw $t1, 0($t0)
        xor $t1, $t1, $s3
        addu $s5, $s5, $t1
        addiu $s3, $s3, 1
        bne $s3, $s4, chk
        move $a0, $s5
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "quicksort";
  w.display = "Quicksort";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
