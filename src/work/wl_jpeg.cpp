// JPEG (MiBench consumer/jpeg): the arithmetic core of the codec — 8x8
// forward DCT + quantization (encode) and dequantization + inverse DCT +
// clamp (decode), over many blocks. Multiplier-heavy dataflow code with a
// spread-out basic-block profile (the paper's example of a benchmark with
// no distinct kernel).
//
// The inline golden models below mirror the assembly arithmetic exactly
// (32-bit wrap-around multiply, arithmetic >>14), so expected outputs match
// bit-for-bit; golden::dct8x8/idct8x8 are validated separately in tests.
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

uint32_t mullo(uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(static_cast<int64_t>(static_cast<int32_t>(a)) *
                               static_cast<int64_t>(static_cast<int32_t>(b)));
}

uint32_t sra14(uint32_t x) { return static_cast<uint32_t>(static_cast<int32_t>(x) >> 14); }

std::vector<uint8_t> make_image(int blocks) {
  std::vector<uint8_t> img(static_cast<size_t>(blocks) * 64);
  uint32_t seed = 0x1AE6D00Du;
  // Smooth gradient + texture so DCT coefficients have realistic decay.
  for (int b = 0; b < blocks; ++b) {
    const int base = static_cast<int>(golden::lcg(seed) % 128) + 32;
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        int v = base + 6 * x + 4 * y + static_cast<int>(golden::lcg(seed) % 24);
        if (v > 255) v = 255;
        img[static_cast<size_t>(b * 64 + y * 8 + x)] = static_cast<uint8_t>(v);
      }
    }
  }
  return img;
}

// Forward path mirroring the assembly: returns quantized coefficients and
// accumulates the encode checksum.
std::vector<int32_t> forward_blocks(const std::vector<uint8_t>& img, int blocks,
                                    uint32_t& checksum) {
  std::vector<int32_t> all_q(static_cast<size_t>(blocks) * 64);
  for (int b = 0; b < blocks; ++b) {
    uint32_t blk[64];
    for (int i = 0; i < 64; ++i) {
      blk[i] = static_cast<uint32_t>(static_cast<int32_t>(img[static_cast<size_t>(b * 64 + i)]) - 128);
    }
    uint32_t tmp[64];
    for (int y = 0; y < 8; ++y) {
      for (int u = 0; u < 8; ++u) {
        uint32_t acc = 0;
        for (int x = 0; x < 8; ++x) {
          acc += mullo(static_cast<uint32_t>(golden::kDctCos14[static_cast<size_t>(u * 8 + x)]),
                       blk[y * 8 + x]);
        }
        tmp[y * 8 + u] = sra14(acc);
      }
    }
    for (int u = 0; u < 8; ++u) {
      for (int v = 0; v < 8; ++v) {
        uint32_t acc = 0;
        for (int y = 0; y < 8; ++y) {
          acc += mullo(static_cast<uint32_t>(golden::kDctCos14[static_cast<size_t>(v * 8 + y)]),
                       tmp[y * 8 + u]);
        }
        const int32_t coeff = static_cast<int32_t>(sra14(acc));
        const int32_t q = coeff / golden::kJpegQuant[static_cast<size_t>(v * 8 + u)];
        all_q[static_cast<size_t>(b * 64 + v * 8 + u)] = q;
        checksum += static_cast<uint32_t>(q ^ (v * 8 + u));
      }
    }
  }
  return all_q;
}

// Standard JPEG zigzag scan order (the entropy stage walks coefficients in
// this order so runs of zeros cluster).
const std::array<int32_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Zigzag + run-length "entropy" pass over one quantized block, mirrored
// exactly by the assembly: zero runs accumulate, nonzero coefficients emit
// a (run, level) token folded into the checksum.
uint32_t rle_checksum(const int32_t* q) {
  uint32_t chk = 0;
  uint32_t run = 0;
  for (int i = 0; i < 64; ++i) {
    const uint32_t c = static_cast<uint32_t>(q[kZigzag[static_cast<size_t>(i)]]);
    if (c == 0) {
      ++run;
    } else {
      chk += ((run << 8) ^ (c & 0xFF)) + static_cast<uint32_t>(i);
      run = 0;
    }
  }
  return chk + run;  // end-of-block marker carries the final run
}

// The DCT cosine table and quantization matrix as .data.
std::string tables_data() {
  std::vector<int32_t> cos_table(golden::kDctCos14.begin(), golden::kDctCos14.end());
  std::vector<int32_t> quant(golden::kJpegQuant.begin(), golden::kJpegQuant.end());
  std::string out;
  out += "costab:\n" + dot_words_i(cos_table);
  out += "quant:\n" + dot_words_i(quant);
  return out;
}

}  // namespace

Workload make_jpeg_e(int scale) {
  const int blocks = 40 * scale;
  const std::vector<uint8_t> img = make_image(blocks);
  uint32_t checksum = 0;
  const std::vector<int32_t> coeffs = forward_blocks(img, blocks, checksum);
  for (int b = 0; b < blocks; ++b) {
    checksum += rle_checksum(&coeffs[static_cast<size_t>(b) * 64]);
  }

  std::string src;
  src += "        .data\n";
  src += tables_data();
  src += "zig:\n" + dot_words_i(std::vector<int32_t>(kZigzag.begin(), kZigzag.end()));
  src += "img:\n" + dot_bytes(img);
  src += "blk:    .space 256\n";   // centered input, int32
  src += "tmp:    .space 256\n";   // stage-1 output, int32
  src += "qblk:   .space 256\n";   // quantized coefficients, int32
  src += "        .text\n";
  src += "main:   la $s0, img\n";
  src += "        li $s6, " + std::to_string(blocks) + "\n";
  src += R"(        li $s7, 0             # checksum
block:
# center: blk[i] = img[i] - 128
        la $t0, blk
        li $t1, 64
center: lbu $t2, 0($s0)
        addiu $t2, $t2, -128
        sw $t2, 0($t0)
        addiu $s0, $s0, 1
        addiu $t0, $t0, 4
        addiu $t1, $t1, -1
        bnez $t1, center
# stage 1 (rows): tmp[y*8+u] = (sum_x cos[u*8+x] * blk[y*8+x]) >> 14
        la $s1, tmp           # output cursor (row-major y,u)
        li $s2, 0             # y
st1y:   li $s3, 0             # u
st1u:   la $t1, costab
        sll $t2, $s3, 5
        addu $t1, $t1, $t2    # cos row u
        la $t2, blk
        sll $t3, $s2, 5
        addu $t2, $t2, $t3    # blk row y
        li $t0, 0             # acc
        li $t3, 8
st1x:   lw $t4, 0($t1)
        lw $t5, 0($t2)
        mult $t4, $t5
        mflo $t6
        addu $t0, $t0, $t6
        addiu $t1, $t1, 4
        addiu $t2, $t2, 4
        addiu $t3, $t3, -1
        bnez $t3, st1x
        sra $t0, $t0, 14
        sw $t0, 0($s1)
        addiu $s1, $s1, 4
        addiu $s3, $s3, 1
        li $t4, 8
        bne $s3, $t4, st1u
        addiu $s2, $s2, 1
        li $t4, 8
        bne $s2, $t4, st1y
# stage 2 (columns) + quantization + checksum
        li $s2, 0             # u
st2u:   li $s3, 0             # v
st2v:   la $t1, costab
        sll $t2, $s3, 5
        addu $t1, $t1, $t2    # cos row v
        la $t2, tmp
        sll $t3, $s2, 2
        addu $t2, $t2, $t3    # tmp column u (stride 32)
        li $t0, 0
        li $t3, 8
st2y:   lw $t4, 0($t1)
        lw $t5, 0($t2)
        mult $t4, $t5
        mflo $t6
        addu $t0, $t0, $t6
        addiu $t1, $t1, 4
        addiu $t2, $t2, 32
        addiu $t3, $t3, -1
        bnez $t3, st2y
        sra $t0, $t0, 14      # coefficient
# q = coeff / quant[v*8+u]
        sll $t4, $s3, 3
        addu $t4, $t4, $s2    # idx = v*8+u
        la $t5, quant
        sll $t6, $t4, 2
        addu $t5, $t5, $t6
        lw $t5, 0($t5)
        div $t0, $t5
        mflo $t0
# store the quantized coefficient for the entropy pass
        la $t5, qblk
        sll $t6, $t4, 2
        addu $t5, $t5, $t6
        sw $t0, 0($t5)
        xor $t0, $t0, $t4
        addu $s7, $s7, $t0
        addiu $s3, $s3, 1
        li $t4, 8
        bne $s3, $t4, st2v
        addiu $s2, $s2, 1
        li $t4, 8
        bne $s2, $t4, st2u
# zigzag + run-length entropy pass over qblk
        la $t0, zig
        li $t1, 0             # i
        li $t2, 0             # current zero run
rle:    sll $t3, $t1, 2
        addu $t3, $t0, $t3
        lw $t3, 0($t3)        # zig[i]
        sll $t3, $t3, 2
        la $t4, qblk
        addu $t4, $t4, $t3
        lw $t4, 0($t4)        # coefficient
        bnez $t4, rletok
        addiu $t2, $t2, 1
        b rlenext
rletok: sll $t5, $t2, 8
        andi $t6, $t4, 0xFF
        xor $t5, $t5, $t6
        addu $t5, $t5, $t1
        addu $s7, $s7, $t5
        li $t2, 0
rlenext:
        addiu $t1, $t1, 1
        li $t3, 64
        bne $t1, $t3, rle
        addu $s7, $s7, $t2    # end-of-block marker carries the final run
        addiu $s6, $s6, -1
        bnez $s6, block
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "jpeg_e";
  w.display = "JPEG E.";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

Workload make_jpeg_d(int scale) {
  const int blocks = 40 * scale;
  const std::vector<uint8_t> img = make_image(blocks);
  uint32_t enc_checksum = 0;
  const std::vector<int32_t> coeffs = forward_blocks(img, blocks, enc_checksum);

  // Inline golden decode mirroring the assembly.
  uint32_t checksum = 0;
  for (int b = 0; b < blocks; ++b) {
    uint32_t deq[64];
    for (int i = 0; i < 64; ++i) {
      deq[i] = mullo(static_cast<uint32_t>(coeffs[static_cast<size_t>(b * 64 + i)]),
                     static_cast<uint32_t>(golden::kJpegQuant[static_cast<size_t>(i)]));
    }
    uint32_t tmp[64];
    for (int u = 0; u < 8; ++u) {
      for (int y = 0; y < 8; ++y) {
        uint32_t acc = 0;
        for (int v = 0; v < 8; ++v) {
          acc += mullo(static_cast<uint32_t>(golden::kDctCos14[static_cast<size_t>(v * 8 + y)]),
                       deq[v * 8 + u]);
        }
        tmp[y * 8 + u] = sra14(acc);
      }
    }
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        uint32_t acc = 0;
        for (int u = 0; u < 8; ++u) {
          acc += mullo(static_cast<uint32_t>(golden::kDctCos14[static_cast<size_t>(u * 8 + x)]),
                       tmp[y * 8 + u]);
        }
        int32_t p = static_cast<int32_t>(sra14(acc)) + 128;
        if (p < 0) p = 0;
        if (p > 255) p = 255;
        checksum += static_cast<uint32_t>(p ^ (y * 8 + x));
      }
    }
  }

  std::string src;
  src += "        .data\n";
  src += tables_data();
  src += "coef:\n" + dot_words_i(coeffs);
  src += "deq:    .space 256\n";
  src += "tmp:    .space 256\n";
  src += "        .text\n";
  src += "main:   la $s0, coef\n";
  src += "        li $s6, " + std::to_string(blocks) + "\n";
  src += R"(        li $s7, 0             # checksum
block:
# dequantize: deq[i] = coef[i] * quant[i]
        la $t0, deq
        la $t1, quant
        li $t2, 64
deql:   lw $t3, 0($s0)
        lw $t4, 0($t1)
        mult $t3, $t4
        mflo $t3
        sw $t3, 0($t0)
        addiu $s0, $s0, 4
        addiu $t0, $t0, 4
        addiu $t1, $t1, 4
        addiu $t2, $t2, -1
        bnez $t2, deql
# stage 1: tmp[y*8+u] = (sum_v cos[v*8+y] * deq[v*8+u]) >> 14
        li $s2, 0             # u
is1u:   li $s3, 0             # y
is1y:   la $t1, costab
        sll $t2, $s3, 2
        addu $t1, $t1, $t2    # cos column y (stride 32)
        la $t2, deq
        sll $t3, $s2, 2
        addu $t2, $t2, $t3    # deq column u (stride 32)
        li $t0, 0
        li $t3, 8
is1v:   lw $t4, 0($t1)
        lw $t5, 0($t2)
        mult $t4, $t5
        mflo $t6
        addu $t0, $t0, $t6
        addiu $t1, $t1, 32
        addiu $t2, $t2, 32
        addiu $t3, $t3, -1
        bnez $t3, is1v
        sra $t0, $t0, 14
# tmp[y*8+u]
        sll $t4, $s3, 3
        addu $t4, $t4, $s2
        sll $t4, $t4, 2
        la $t5, tmp
        addu $t5, $t5, $t4
        sw $t0, 0($t5)
        addiu $s3, $s3, 1
        li $t4, 8
        bne $s3, $t4, is1y
        addiu $s2, $s2, 1
        li $t4, 8
        bne $s2, $t4, is1u
# stage 2: pixel[y*8+x] = clamp((sum_u cos[u*8+x] * tmp[y*8+u]) >> 14 + 128)
        li $s2, 0             # y
is2y:   li $s3, 0             # x
is2x:   la $t1, costab
        sll $t2, $s3, 2
        addu $t1, $t1, $t2    # cos column x (stride 32)
        la $t2, tmp
        sll $t3, $s2, 5
        addu $t2, $t2, $t3    # tmp row y (stride 4)
        li $t0, 0
        li $t3, 8
is2u:   lw $t4, 0($t1)
        lw $t5, 0($t2)
        mult $t4, $t5
        mflo $t6
        addu $t0, $t0, $t6
        addiu $t1, $t1, 32
        addiu $t2, $t2, 4
        addiu $t3, $t3, -1
        bnez $t3, is2u
        sra $t0, $t0, 14
        addiu $t0, $t0, 128
        bgez $t0, icl1
        li $t0, 0
icl1:   li $t4, 255
        ble $t0, $t4, icl2
        move $t0, $t4
icl2:   sll $t4, $s2, 3
        addu $t4, $t4, $s3    # idx = y*8+x
        xor $t0, $t0, $t4
        addu $s7, $s7, $t0
        addiu $s3, $s3, 1
        li $t4, 8
        bne $s3, $t4, is2x
        addiu $s2, $s2, 1
        li $t4, 8
        bne $s2, $t4, is2y
        addiu $s6, $s6, -1
        bnez $s6, block
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "jpeg_d";
  w.display = "JPEG D.";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
