// CRC32 (MiBench telecomm/CRC32): table-driven CRC-32 over a byte buffer.
// A tiny, hot inner loop — the paper's example of a kernel-dominated
// benchmark ("just 3 basic blocks are responsible for almost 100% of all
// the program execution time").
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_crc32(int scale) {
  const int n = 12288 * scale;
  uint32_t seed = 0xC0FFEE01u;
  std::vector<uint8_t> data(static_cast<size_t>(n));
  for (auto& b : data) b = static_cast<uint8_t>(golden::lcg(seed) >> 24);

  const uint32_t crc = golden::crc32(data);

  std::string src;
  src += "        .data\n";
  src += "table:\n" + dot_words(golden::crc32_table());
  src += "data:\n" + dot_bytes(data);
  src += "        .text\n";
  src += "main:   la $s0, table\n";
  src += "        la $s1, data\n";
  src += "        li $s2, " + std::to_string(n) + "\n";
  src += R"(        li $s3, -1            # crc = 0xFFFFFFFF
loop:   lbu $t0, 0($s1)
        xor $t1, $s3, $t0
        andi $t1, $t1, 0xFF
        sll $t1, $t1, 2
        addu $t1, $s0, $t1
        lw $t2, 0($t1)
        srl $t3, $s3, 8
        xor $s3, $t2, $t3
        addiu $s1, $s1, 1
        addiu $s2, $s2, -1
        bnez $s2, loop
        nor $a0, $s3, $zero   # final xor with 0xFFFFFFFF
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "crc32";
  w.display = "CRC";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(crc));
  return w;
}

}  // namespace dim::work
