// RawAudio (MiBench telecomm/adpcm): IMA ADPCM encoder and decoder. Very
// branchy per-sample logic — the paper's most control-flow-oriented
// benchmarks (RawAudio D. has the smallest instructions/branch ratio).
#include <cmath>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

std::vector<int16_t> audio_samples(int n) {
  // Synthetic speech-ish signal: a couple of sines plus LCG noise.
  std::vector<int16_t> samples(static_cast<size_t>(n));
  uint32_t seed = 0xADC0FFEEu;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double v = 6000.0 * std::sin(t * 0.03) + 2500.0 * std::sin(t * 0.11);
    v += static_cast<double>(golden::lcg(seed) % 2001) - 1000.0;
    samples[static_cast<size_t>(i)] = static_cast<int16_t>(v);
  }
  return samples;
}

std::string step_tables_data() {
  std::vector<uint32_t> step(golden::kAdpcmStepTable.begin(), golden::kAdpcmStepTable.end());
  std::vector<int32_t> idx(golden::kAdpcmIndexTable.begin(), golden::kAdpcmIndexTable.end());
  std::string out;
  out += "steptab:\n" + dot_words(step);
  out += "idxtab:\n" + dot_words_i(idx);
  return out;
}

// Shared decoder core: takes code in $t0, updates valpred=$s3 index=$s4,
// using steptab=$s0 idxtab=$s1; clobbers $t2..$t6.
const char* kDecodeStep = R"(
        sll $t2, $s4, 2
        addu $t2, $s0, $t2
        lw $t2, 0($t2)        # step
        sra $t3, $t2, 3       # diffq = step >> 3
        andi $t4, $t0, 4
        beqz $t4, dq2\L
        addu $t3, $t3, $t2
dq2\L:  andi $t4, $t0, 2
        beqz $t4, dq1\L
        sra $t5, $t2, 1
        addu $t3, $t3, $t5
dq1\L:  andi $t4, $t0, 1
        beqz $t4, dq0\L
        sra $t5, $t2, 2
        addu $t3, $t3, $t5
dq0\L:  andi $t4, $t0, 8
        beqz $t4, dadd\L
        subu $s3, $s3, $t3
        b dclamp\L
dadd\L: addu $s3, $s3, $t3
dclamp\L:
        li $t4, 32767
        ble $s3, $t4, dcl1\L
        move $s3, $t4
dcl1\L: li $t4, -32768
        bge $s3, $t4, dcl2\L
        move $s3, $t4
dcl2\L: sll $t4, $t0, 2
        addu $t4, $s1, $t4
        lw $t4, 0($t4)        # index delta
        addu $s4, $s4, $t4
        bgez $s4, dix1\L
        li $s4, 0
dix1\L: li $t4, 88
        ble $s4, $t4, dix2\L
        move $s4, $t4
dix2\L:
)";

std::string instantiate(std::string text, const std::string& label_suffix) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t hit = text.find("\\L", pos);
    if (hit == std::string::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += label_suffix;
    pos = hit + 2;
  }
  return out;
}

}  // namespace

Workload make_rawaudio_e(int scale) {
  const int n = 10000 * scale;
  const std::vector<int16_t> samples = audio_samples(n);
  const std::vector<uint8_t> codes = golden::adpcm_encode(samples);
  uint32_t checksum = 0;
  for (size_t i = 0; i < codes.size(); ++i) checksum += codes[i] * static_cast<uint32_t>(i % 64 + 1);

  std::string src;
  src += "        .data\n";
  src += step_tables_data();
  src += "pcm:\n" + dot_halfs(samples);
  src += "        .text\n";
  src += "main:   la $s0, steptab\n";
  src += "        la $s1, idxtab\n";
  src += "        la $s2, pcm\n";
  src += "        li $s3, 0             # valpred\n";
  src += "        li $s4, 0             # index\n";
  src += "        li $s5, " + std::to_string(n) + "\n";
  src += R"(        li $s6, 0             # checksum
        li $s7, 0             # position counter
enc:    lh $t7, 0($s2)        # sample
        addiu $s2, $s2, 2
        sll $t2, $s4, 2
        addu $t2, $s0, $t2
        lw $t2, 0($t2)        # step
        subu $t3, $t7, $s3    # diff
        li $t0, 0
        bgez $t3, epos
        li $t0, 8
        subu $t3, $zero, $t3
epos:   move $t4, $t2         # tempstep
        blt $t3, $t4, e4
        ori $t0, $t0, 4
        subu $t3, $t3, $t4
e4:     sra $t4, $t4, 1
        blt $t3, $t4, e2
        ori $t0, $t0, 2
        subu $t3, $t3, $t4
e2:     sra $t4, $t4, 1
        blt $t3, $t4, e1
        ori $t0, $t0, 1
e1:
)";
  src += instantiate(kDecodeStep, "e");
  src += R"(# checksum += code * (pos % 64 + 1)
        andi $t2, $s7, 63
        addiu $t2, $t2, 1
        mul $t2, $t0, $t2
        addu $s6, $s6, $t2
        addiu $s7, $s7, 1
        addiu $s5, $s5, -1
        bnez $s5, enc
        move $a0, $s6
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "rawaudio_e";
  w.display = "RawAudio E.";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

Workload make_rawaudio_d(int scale) {
  const int n = 10000 * scale;
  const std::vector<int16_t> samples = audio_samples(n);
  const std::vector<uint8_t> codes = golden::adpcm_encode(samples);
  const std::vector<int16_t> decoded = golden::adpcm_decode(codes, codes.size());
  uint32_t checksum = 0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    checksum += static_cast<uint16_t>(decoded[i]) ^ static_cast<uint32_t>(i);
  }

  std::string src;
  src += "        .data\n";
  src += step_tables_data();
  src += "codes:\n" + dot_bytes(codes);
  src += "        .text\n";
  src += "main:   la $s0, steptab\n";
  src += "        la $s1, idxtab\n";
  src += "        la $s2, codes\n";
  src += "        li $s3, 0             # valpred\n";
  src += "        li $s4, 0             # index\n";
  src += "        li $s5, " + std::to_string(n) + "\n";
  src += R"(        li $s6, 0             # checksum
        li $s7, 0             # position
dec:    lbu $t0, 0($s2)
        addiu $s2, $s2, 1
        andi $t0, $t0, 15
)";
  src += instantiate(kDecodeStep, "d");
  src += R"(# checksum += (uint16)valpred ^ pos
        andi $t2, $s3, 0xFFFF
        xor $t2, $t2, $s7
        addu $s6, $s6, $t2
        addiu $s7, $s7, 1
        addiu $s5, $s5, -1
        bnez $s5, dec
        move $a0, $s6
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "rawaudio_d";
  w.display = "RawAudio D.";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
