// Rijndael (MiBench security/rijndael): AES-128 ECB encryption/decryption.
// Enormous straight-line basic blocks (unrolled MixColumns / InvMixColumns)
// — the paper's most dataflow-oriented benchmark pair.
#include <algorithm>
#include <array>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

constexpr std::array<uint8_t, 16> kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                          0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                          0x09, 0xcf, 0x4f, 0x3c};

std::vector<uint32_t> pack_le(const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> words(bytes.size() / 4);
  for (size_t i = 0; i < words.size(); ++i) {
    words[i] = static_cast<uint32_t>(bytes[4 * i]) |
               (static_cast<uint32_t>(bytes[4 * i + 1]) << 8) |
               (static_cast<uint32_t>(bytes[4 * i + 2]) << 16) |
               (static_cast<uint32_t>(bytes[4 * i + 3]) << 24);
  }
  return words;
}

std::vector<uint8_t> make_plaintext(int blocks) {
  std::vector<uint8_t> pt(static_cast<size_t>(blocks) * 16);
  uint32_t seed = 0xAE5C8D11u;
  for (auto& b : pt) b = static_cast<uint8_t>(golden::lcg(seed) >> 8);
  return pt;
}

uint32_t rotl1(uint32_t v) { return (v << 1) | (v >> 31); }

uint32_t state_checksum(uint32_t chk, const std::array<uint8_t, 16>& block) {
  const std::vector<uint8_t> bytes(block.begin(), block.end());
  for (uint32_t w : pack_le(bytes)) chk = rotl1(chk) ^ w;
  return chk;
}

// Combined SubBytes+ShiftRows source map: new[r+4c] = old[r+4((c+r)%4)].
std::vector<uint8_t> enc_map() {
  std::vector<uint8_t> map(16);
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r)
      map[static_cast<size_t>(r + 4 * c)] = static_cast<uint8_t>(r + 4 * ((c + r) % 4));
  return map;
}

// Combined InvShiftRows source map: new[r+4c] = old[r+4((c-r+4)%4)].
std::vector<uint8_t> dec_map() {
  std::vector<uint8_t> map(16);
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r)
      map[static_cast<size_t>(r + 4 * c)] = static_cast<uint8_t>(r + 4 * ((c - r + 4) % 4));
  return map;
}

// Emits xtime($dst <- $src): dst = ((src << 1) ^ (((src >> 7) & 1) * 0x1B)) & 0xFF.
std::string emit_xtime(const std::string& dst, const std::string& src,
                       const std::string& tmp) {
  std::string out;
  out += "        srl " + tmp + ", " + src + ", 7\n";
  out += "        subu " + tmp + ", $zero, " + tmp + "\n";
  out += "        andi " + tmp + ", " + tmp + ", 0x1B\n";
  out += "        sll " + dst + ", " + src + ", 1\n";
  out += "        xor " + dst + ", " + dst + ", " + tmp + "\n";
  out += "        andi " + dst + ", " + dst + ", 0xFF\n";
  return out;
}

// MixColumns over all 4 columns, reading bytes from tb ($s5) and writing to
// st ($s4). Fully unrolled.
std::string emit_mixcolumns() {
  std::string out;
  for (int c = 0; c < 4; ++c) {
    const std::string base = std::to_string(4 * c);
    // Load a0..a3 into $t0..$t3.
    for (int j = 0; j < 4; ++j) {
      out += "        lbu $t" + std::to_string(j) + ", " + std::to_string(4 * c + j) +
             "($s5)\n";
    }
    // xt(a0..a3) into $t4..$t7.
    for (int j = 0; j < 4; ++j) {
      out += emit_xtime("$t" + std::to_string(4 + j), "$t" + std::to_string(j), "$t8");
    }
    // out0 = xt0 ^ xt1 ^ a1 ^ a2 ^ a3
    out += "        xor $t9, $t4, $t5\n";
    out += "        xor $t9, $t9, $t1\n";
    out += "        xor $t9, $t9, $t2\n";
    out += "        xor $t9, $t9, $t3\n";
    out += "        sb $t9, " + base + "($s4)\n";
    // out1 = a0 ^ xt1 ^ xt2 ^ a2 ^ a3
    out += "        xor $t9, $t0, $t5\n";
    out += "        xor $t9, $t9, $t6\n";
    out += "        xor $t9, $t9, $t2\n";
    out += "        xor $t9, $t9, $t3\n";
    out += "        sb $t9, " + std::to_string(4 * c + 1) + "($s4)\n";
    // out2 = a0 ^ a1 ^ xt2 ^ xt3 ^ a3
    out += "        xor $t9, $t0, $t1\n";
    out += "        xor $t9, $t9, $t6\n";
    out += "        xor $t9, $t9, $t7\n";
    out += "        xor $t9, $t9, $t3\n";
    out += "        sb $t9, " + std::to_string(4 * c + 2) + "($s4)\n";
    // out3 = xt0 ^ a0 ^ a1 ^ a2 ^ xt3
    out += "        xor $t9, $t4, $t0\n";
    out += "        xor $t9, $t9, $t1\n";
    out += "        xor $t9, $t9, $t2\n";
    out += "        xor $t9, $t9, $t7\n";
    out += "        sb $t9, " + std::to_string(4 * c + 3) + "($s4)\n";
  }
  return out;
}

// InvMixColumns over all 4 columns of st ($s4), in place. Accumulators
// out0..out3 live in $v0,$v1,$a1,$a2.
std::string emit_inv_mixcolumns() {
  std::string out;
  const char* outs[4] = {"$v0", "$v1", "$a1", "$a2"};
  // Contribution matrix: out[i] ^= m[i][j] * a_j with
  // m = [[14,11,13,9],[9,14,11,13],[13,9,14,11],[11,13,9,14]].
  const int m[4][4] = {{14, 11, 13, 9}, {9, 14, 11, 13}, {13, 9, 14, 11}, {11, 13, 9, 14}};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 4; ++i) out += std::string("        li ") + outs[i] + ", 0\n";
    for (int j = 0; j < 4; ++j) {
      out += "        lbu $t0, " + std::to_string(4 * c + j) + "($s4)\n";  // a
      out += emit_xtime("$t1", "$t0", "$t8");                              // x2
      out += emit_xtime("$t2", "$t1", "$t8");                              // x4
      out += emit_xtime("$t3", "$t2", "$t8");                              // x8
      out += "        xor $t4, $t3, $t0\n";   // a9  = x8 ^ a
      out += "        xor $t5, $t4, $t1\n";   // a11 = a9 ^ x2
      out += "        xor $t6, $t4, $t2\n";   // a13 = a9 ^ x4
      out += "        xor $t7, $t6, $t0\n";
      out += "        xor $t7, $t7, $t1\n";   // a14 = a13 ^ a ^ x2
      for (int i = 0; i < 4; ++i) {
        const char* product = m[i][j] == 9    ? "$t4"
                              : m[i][j] == 11 ? "$t5"
                              : m[i][j] == 13 ? "$t6"
                                              : "$t7";
        out += std::string("        xor ") + outs[i] + ", " + outs[i] + ", " + product + "\n";
      }
    }
    for (int i = 0; i < 4; ++i) {
      out += std::string("        sb ") + outs[i] + ", " + std::to_string(4 * c + i) +
             "($s4)\n";
    }
  }
  return out;
}

// SubBytes(+ShiftRows) via a source-index map: tb[i] = sbox[st[map[i]]].
// Map base label passed in; sbox base in $s6.
std::string emit_subshift(const std::string& map_label) {
  std::string out;
  out += "        la $t0, " + map_label + "\n";
  out += R"(        move $t1, $s5
        li $t5, 16
ssl\L:  lbu $t2, 0($t0)
        addu $t3, $s4, $t2
        lbu $t3, 0($t3)
        addu $t3, $s6, $t3
        lbu $t3, 0($t3)
        sb $t3, 0($t1)
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        addiu $t5, $t5, -1
        bnez $t5, ssl\L
)";
  return out;
}

std::string subst_label(std::string text, const std::string& suffix) {
  std::string out;
  size_t pos = 0;
  while (true) {
    const size_t hit = text.find("\\L", pos);
    if (hit == std::string::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, hit - pos);
    out += suffix;
    pos = hit + 2;
  }
}

// AddRoundKey: st ^= rk[round], rk byte offset passed as label+offset via a
// pointer in $t0 (already set). 4 word xors.
std::string emit_addkey_words() {
  std::string out;
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    out += "        lw $t1, " + off + "($s4)\n";
    out += "        lw $t2, " + off + "($t0)\n";
    out += "        xor $t1, $t1, $t2\n";
    out += "        sw $t1, " + off + "($s4)\n";
  }
  return out;
}

std::string common_data(const std::vector<uint8_t>& text_bytes, bool decrypt) {
  const golden::Aes128 aes(kKey);
  std::vector<uint8_t> rk(aes.round_keys.begin(), aes.round_keys.end());
  std::string out;
  out += "        .data\n";
  out += "sbox:\n" + dot_bytes(std::vector<uint8_t>(
                         (decrypt ? golden::kAesInvSbox : golden::kAesSbox).begin(),
                         (decrypt ? golden::kAesInvSbox : golden::kAesSbox).end()));
  out += "map:\n" + dot_bytes(decrypt ? dec_map() : enc_map());
  out += "rk:\n" + dot_words(pack_le(rk));
  out += "input:\n" + dot_words(pack_le(text_bytes));
  out += "st:     .space 16\n";
  out += "tb:     .space 16\n";
  return out;
}

}  // namespace

Workload make_rijndael_e(int scale) {
  const int blocks = 48 * scale;
  const std::vector<uint8_t> pt = make_plaintext(blocks);
  const golden::Aes128 aes(kKey);

  uint32_t checksum = 0;
  for (int b = 0; b < blocks; ++b) {
    std::array<uint8_t, 16> block;
    std::copy_n(pt.begin() + 16 * b, 16, block.begin());
    checksum = state_checksum(checksum, aes.encrypt(block));
  }

  std::string src = common_data(pt, false);
  src += "        .text\n";
  src += "main:   la $s0, input\n";
  src += "        li $s1, " + std::to_string(blocks) + "\n";
  src += R"(        la $s4, st
        la $s5, tb
        la $s6, sbox
        li $s7, 0             # checksum
eblk:
# load block ^ rk0 into st
        la $t0, rk
)";
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    src += "        lw $t1, " + off + "($s0)\n";
    src += "        lw $t2, " + off + "($t0)\n";
    src += "        xor $t1, $t1, $t2\n";
    src += "        sw $t1, " + off + "($s4)\n";
  }
  src += R"(        addiu $s0, $s0, 16
        li $s2, 1             # round
erloop:
)";
  src += subst_label(emit_subshift("map"), "e");
  src += R"(        li $t4, 10
        beq $s2, $t4, elast
)";
  src += emit_mixcolumns();
  src += R"(# AddRoundKey(round)
        la $t0, rk
        sll $t1, $s2, 4
        addu $t0, $t0, $t1
)";
  src += emit_addkey_words();
  src += R"(        addiu $s2, $s2, 1
        b erloop
elast:
# final round: st = tb ^ rk10
        la $t0, rk
        addiu $t0, $t0, 160
)";
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    src += "        lw $t1, " + off + "($s5)\n";
    src += "        lw $t2, " + off + "($t0)\n";
    src += "        xor $t1, $t1, $t2\n";
    src += "        sw $t1, " + off + "($s4)\n";
  }
  src += R"(# checksum: chk = rotl1(chk) ^ word, over the 4 state words
)";
  for (int wdx = 0; wdx < 4; ++wdx) {
    src += "        sll $t1, $s7, 1\n";
    src += "        srl $t2, $s7, 31\n";
    src += "        or $s7, $t1, $t2\n";
    src += "        lw $t1, " + std::to_string(4 * wdx) + "($s4)\n";
    src += "        xor $s7, $s7, $t1\n";
  }
  src += R"(        addiu $s1, $s1, -1
        bnez $s1, eblk
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "rijndael_e";
  w.display = "Rijndael E.";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

Workload make_rijndael_d(int scale) {
  const int blocks = 36 * scale;
  const std::vector<uint8_t> pt = make_plaintext(blocks);
  const golden::Aes128 aes(kKey);

  // Ciphertext is the kernel input; the kernel decrypts it back.
  std::vector<uint8_t> ct(static_cast<size_t>(blocks) * 16);
  uint32_t checksum = 0;
  for (int b = 0; b < blocks; ++b) {
    std::array<uint8_t, 16> block;
    std::copy_n(pt.begin() + 16 * b, 16, block.begin());
    const auto enc = aes.encrypt(block);
    std::copy(enc.begin(), enc.end(), ct.begin() + 16 * b);
    checksum = state_checksum(checksum, aes.decrypt(enc));
  }

  std::string src = common_data(ct, true);
  src += "        .text\n";
  src += "main:   la $s0, input\n";
  src += "        li $s1, " + std::to_string(blocks) + "\n";
  src += R"(        la $s4, st
        la $s5, tb
        la $s6, sbox
        li $s7, 0
dblk:
# load block ^ rk10 into st
        la $t0, rk
        addiu $t0, $t0, 160
)";
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    src += "        lw $t1, " + off + "($s0)\n";
    src += "        lw $t2, " + off + "($t0)\n";
    src += "        xor $t1, $t1, $t2\n";
    src += "        sw $t1, " + off + "($s4)\n";
  }
  src += R"(        addiu $s0, $s0, 16
        li $s2, 9             # round
drloop:
)";
  // InvShiftRows + InvSubBytes: tb = invsbox[st[map]], then st = tb ^ rk[round].
  src += subst_label(emit_subshift("map"), "d");
  src += R"(        la $t0, rk
        sll $t1, $s2, 4
        addu $t0, $t0, $t1
)";
  // st = tb ^ rk[round]
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    src += "        lw $t1, " + off + "($s5)\n";
    src += "        lw $t2, " + off + "($t0)\n";
    src += "        xor $t1, $t1, $t2\n";
    src += "        sw $t1, " + off + "($s4)\n";
  }
  src += emit_inv_mixcolumns();
  src += R"(        addiu $s2, $s2, -1
        bnez $s2, drloop
# final: tb = invsbox[st[map]]; st = tb ^ rk0
)";
  src += subst_label(emit_subshift("map"), "f");
  src += "        la $t0, rk\n";
  for (int wdx = 0; wdx < 4; ++wdx) {
    const std::string off = std::to_string(4 * wdx);
    src += "        lw $t1, " + off + "($s5)\n";
    src += "        lw $t2, " + off + "($t0)\n";
    src += "        xor $t1, $t1, $t2\n";
    src += "        sw $t1, " + off + "($s4)\n";
  }
  for (int wdx = 0; wdx < 4; ++wdx) {
    src += "        sll $t1, $s7, 1\n";
    src += "        srl $t2, $s7, 31\n";
    src += "        or $s7, $t1, $t2\n";
    src += "        lw $t1, " + std::to_string(4 * wdx) + "($s4)\n";
    src += "        xor $s7, $s7, $t1\n";
  }
  src += R"(        addiu $s1, $s1, -1
        bnez $s1, dblk
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "rijndael_d";
  w.display = "Rijndael D.";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
