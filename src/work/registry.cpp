#include "work/workload.hpp"

#include <stdexcept>

namespace dim::work {

const std::vector<std::string>& workload_names() {
  // Paper Table 2 order: most dataflow at the top.
  static const std::vector<std::string> names = {
      "rijndael_e", "rijndael_d", "gsm_e",   "jpeg_e",     "sha",
      "susan_s",    "crc32",      "jpeg_d",  "patricia",   "susan_c",
      "susan_e",    "dijkstra",   "gsm_d",   "bitcount",   "stringsearch",
      "quicksort",  "rawaudio_e", "rawaudio_d"};
  return names;
}

Workload make_workload(const std::string& name, int scale) {
  if (scale < 1) scale = 1;
  if (name == "crc32") return make_crc32(scale);
  if (name == "bitcount") return make_bitcount(scale);
  if (name == "quicksort") return make_quicksort(scale);
  if (name == "sha") return make_sha(scale);
  if (name == "rijndael_e") return make_rijndael_e(scale);
  if (name == "rijndael_d") return make_rijndael_d(scale);
  if (name == "rawaudio_e") return make_rawaudio_e(scale);
  if (name == "rawaudio_d") return make_rawaudio_d(scale);
  if (name == "stringsearch") return make_stringsearch(scale);
  if (name == "dijkstra") return make_dijkstra(scale);
  if (name == "patricia") return make_patricia(scale);
  if (name == "jpeg_e") return make_jpeg_e(scale);
  if (name == "jpeg_d") return make_jpeg_d(scale);
  if (name == "gsm_e") return make_gsm_e(scale);
  if (name == "gsm_d") return make_gsm_d(scale);
  if (name == "susan_s") return make_susan_s(scale);
  if (name == "susan_c") return make_susan_c(scale);
  if (name == "susan_e") return make_susan_e(scale);
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<Workload> all_workloads(int scale) {
  std::vector<Workload> out;
  out.reserve(workload_names().size());
  for (const std::string& name : workload_names()) out.push_back(make_workload(name, scale));
  return out;
}

}  // namespace dim::work
