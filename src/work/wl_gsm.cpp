// GSM (MiBench telecomm/gsm): the short-term lattice filter at the heart of
// the GSM 06.10 full-rate codec — analysis (encode) and synthesis (decode),
// 8 reflection stages per sample with fixed-point multiplies.
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

std::vector<int16_t> gsm_input(int n) {
  std::vector<int16_t> samples(static_cast<size_t>(n));
  uint32_t seed = 0x65A10CB7u;
  int32_t acc = 0;
  for (int i = 0; i < n; ++i) {
    // Band-limited-ish random walk.
    acc += static_cast<int32_t>(golden::lcg(seed) % 4001) - 2000;
    if (acc > 14000) acc = 14000;
    if (acc < -14000) acc = -14000;
    samples[static_cast<size_t>(i)] = static_cast<int16_t>(acc);
  }
  return samples;
}

std::string reflection_data() {
  std::vector<int32_t> k(golden::kGsmReflection.begin(), golden::kGsmReflection.end());
  return "ktab:\n" + dot_words_i(k);
}

uint32_t out_checksum(const std::vector<int16_t>& out) {
  uint32_t chk = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    chk += static_cast<uint16_t>(out[i]) ^ static_cast<uint32_t>(i & 0xFFFF);
  }
  return chk;
}

// Shared epilogue: clamp $t0 to int16, checksum with position $s6, loop.
const char* kClampChecksum = R"(        li $t2, 32767
        ble $t0, $t2, cl1\L
        move $t0, $t2
cl1\L:  li $t2, -32768
        bge $t0, $t2, cl2\L
        move $t0, $t2
cl2\L:
)";

std::string subst(std::string text, const std::string& suffix) {
  std::string out;
  size_t pos = 0;
  while (true) {
    const size_t hit = text.find("\\L", pos);
    if (hit == std::string::npos) return out + text.substr(pos);
    out += text.substr(pos, hit - pos);
    out += suffix;
    pos = hit + 2;
  }
}

}  // namespace

Workload make_gsm_e(int scale) {
  const int n = 2600 * scale;
  const std::vector<int16_t> samples = gsm_input(n);

  // Preemphasis (GSM 06.10 preprocessing): e[k] = s[k] - (28180*s[k-1])>>15,
  // clamped to 16 bits, before the short-term analysis lattice.
  std::vector<int16_t> emphasized(samples.size());
  int32_t prev = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    int32_t e = samples[i] - ((28180 * prev) >> 15);
    if (e > 32767) e = 32767;
    if (e < -32768) e = -32768;
    emphasized[i] = static_cast<int16_t>(e);
    prev = samples[i];
  }
  const std::vector<int16_t> residual = golden::gsm_analysis(emphasized);
  const uint32_t checksum = out_checksum(residual);

  std::string src;
  src += "        .data\n";
  src += reflection_data();
  src += "pcm:\n" + dot_halfs(samples);
  src += "umem:   .space 32\n";  // u[0..7] as words
  src += "        .text\n";
  src += "main:   la $s0, ktab\n";
  src += "        la $s1, pcm\n";
  src += "        la $s2, umem\n";
  src += "        li $s5, " + std::to_string(n) + "\n";
  src += R"(        li $s6, 0             # position
        li $s7, 0             # checksum
        li $v1, 0             # previous raw sample (preemphasis state)
samp:   lh $t8, 0($s1)        # raw sample
        addiu $s1, $s1, 2
# preemphasis: di = clamp16(raw - (28180 * prev) >> 15)
        li $t2, 28180
        mult $t2, $v1
        mflo $t2
        sra $t2, $t2, 15
        subu $t0, $t8, $t2
        move $v1, $t8         # prev = raw
        li $t2, 32767
        ble $t0, $t2, pe1
        move $t0, $t2
pe1:    li $t2, -32768
        bge $t0, $t2, pe2
        move $t0, $t2
pe2:    move $t1, $t0         # sav = di
        li $t9, 0             # stage index i
stage:  sll $t2, $t9, 2
        addu $t3, $s2, $t2
        lw $t4, 0($t3)        # ui = u[i]
        addu $t5, $s0, $t2
        lw $t5, 0($t5)        # k[i]
        sw $t1, 0($t3)        # u[i] = sav
# sav = ui + ((k*di) >> 15)
        mult $t5, $t0
        mflo $t6
        sra $t6, $t6, 15
        addu $t1, $t4, $t6
# di = di + ((k*ui) >> 15)
        mult $t5, $t4
        mflo $t6
        sra $t6, $t6, 15
        addu $t0, $t0, $t6
        addiu $t9, $t9, 1
        li $t2, 8
        bne $t9, $t2, stage
)";
  src += subst(kClampChecksum, "e");
  src += R"(# checksum += (uint16)di ^ (pos & 0xFFFF)
        andi $t2, $t0, 0xFFFF
        andi $t3, $s6, 0xFFFF
        xor $t2, $t2, $t3
        addu $s7, $s7, $t2
        addiu $s6, $s6, 1
        addiu $s5, $s5, -1
        bnez $s5, samp
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "gsm_e";
  w.display = "GSM E.";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

Workload make_gsm_d(int scale) {
  const int n = 2600 * scale;
  const std::vector<int16_t> samples = gsm_input(n);
  const std::vector<int16_t> residual = golden::gsm_analysis(samples);
  const std::vector<int16_t> synth = golden::gsm_synthesis(residual);
  const uint32_t checksum = out_checksum(synth);

  std::string src;
  src += "        .data\n";
  src += reflection_data();
  src += "res:\n" + dot_halfs(residual);
  src += "vmem:   .space 36\n";  // v[0..8] as words
  src += "        .text\n";
  src += "main:   la $s0, ktab\n";
  src += "        la $s1, res\n";
  src += "        la $s2, vmem\n";
  src += "        li $s5, " + std::to_string(n) + "\n";
  src += R"(        li $s6, 0
        li $s7, 0
samp:   lh $t0, 0($s1)        # sri = residual
        addiu $s1, $s1, 2
        li $t9, 7             # stage index i (downwards)
stage:  sll $t2, $t9, 2
        addu $t3, $s2, $t2    # &v[i]
        lw $t4, 0($t3)        # v[i]
        addu $t5, $s0, $t2
        lw $t5, 0($t5)        # k[i]
# sri = sri - ((k*v[i]) >> 15)
        mult $t5, $t4
        mflo $t6
        sra $t6, $t6, 15
        subu $t0, $t0, $t6
# v[i+1] = v[i] + ((k*sri) >> 15)
        mult $t5, $t0
        mflo $t6
        sra $t6, $t6, 15
        addu $t6, $t4, $t6
        sw $t6, 4($t3)
        addiu $t9, $t9, -1
        bgez $t9, stage
)";
  src += subst(kClampChecksum, "d");
  src += R"(        sw $t0, 0($s2)        # v[0] = clamped sri
        andi $t2, $t0, 0xFFFF
        andi $t3, $s6, 0xFFFF
        xor $t2, $t2, $t3
        addu $s7, $s7, $t2
        addiu $s6, $s6, 1
        addiu $s5, $s5, -1
        bnez $s5, samp
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "gsm_d";
  w.display = "GSM D.";
  w.dataflow_group = false;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
