// MiBench-equivalent workloads (DESIGN.md §4 substitution: the paper runs
// MiBench binaries compiled with a MIPS cross-compiler; offline we write the
// same algorithm kernels directly in MIPS assembly and validate each one
// against a C++ golden model).
//
// Every workload prints a checksum through the print syscalls and exits; the
// expected output is computed by the golden model over the same embedded
// input data, so functional correctness of the whole simulator stack is
// checked on every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dim::work {

struct Workload {
  std::string name;     // e.g. "rijndael_e"
  std::string display;  // paper row label, e.g. "Rijndael E."
  bool dataflow_group;  // top half of Table 2 (dataflow) vs bottom (control)
  std::string source;   // MIPS assembly
  std::string expected_output;
};

// Workload names in the paper's Table 2 order (most dataflow first).
const std::vector<std::string>& workload_names();

// Builds one workload. `scale` >= 1 multiplies the input size / iteration
// count; tests use scale 1, benches may use larger scales.
Workload make_workload(const std::string& name, int scale = 1);

std::vector<Workload> all_workloads(int scale = 1);

// --- individual factories (one per wl_*.cpp) --------------------------------
Workload make_crc32(int scale);
Workload make_bitcount(int scale);
Workload make_quicksort(int scale);
Workload make_sha(int scale);
Workload make_rijndael_e(int scale);
Workload make_rijndael_d(int scale);
Workload make_rawaudio_e(int scale);
Workload make_rawaudio_d(int scale);
Workload make_stringsearch(int scale);
Workload make_dijkstra(int scale);
Workload make_patricia(int scale);
Workload make_jpeg_e(int scale);
Workload make_jpeg_d(int scale);
Workload make_gsm_e(int scale);
Workload make_gsm_d(int scale);
Workload make_susan_s(int scale);
Workload make_susan_c(int scale);
Workload make_susan_e(int scale);

}  // namespace dim::work
