// Dijkstra (MiBench network/dijkstra): single-source shortest paths on an
// adjacency matrix, O(N^2) scan without a heap — exactly the MiBench
// implementation style.
#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {

Workload make_dijkstra(int scale) {
  const int n = 48;
  const int sources = 12 * scale;
  uint32_t seed = 0xD1735AAu;
  // Weighted digraph: ~35% density, weights 1..100; 0 = no edge.
  std::vector<uint32_t> adj(static_cast<size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const uint32_t r = golden::lcg(seed);
      if (r % 100 < 35) adj[static_cast<size_t>(i) * n + j] = r % 100 + 1;
    }
  }
  // Ring edges guarantee connectivity.
  for (int i = 0; i < n; ++i) adj[static_cast<size_t>(i) * n + (i + 1) % n] = 50;

  // Golden: repeat for `sources` start nodes (wrapping), accumulate the sum
  // of all finite distances.
  const uint32_t inf = 0x7FFFFFFFu;
  uint64_t total = 0;
  for (int s = 0; s < sources; ++s) {
    const int src = s % n;
    std::vector<uint32_t> dist(static_cast<size_t>(n), inf);
    std::vector<uint8_t> visited(static_cast<size_t>(n), 0);
    dist[static_cast<size_t>(src)] = 0;
    for (int iter = 0; iter < n; ++iter) {
      int u = -1;
      uint32_t best = inf;
      for (int v = 0; v < n; ++v) {
        if (!visited[static_cast<size_t>(v)] && dist[static_cast<size_t>(v)] < best) {
          best = dist[static_cast<size_t>(v)];
          u = v;
        }
      }
      if (u < 0) break;
      visited[static_cast<size_t>(u)] = 1;
      for (int v = 0; v < n; ++v) {
        const uint32_t w = adj[static_cast<size_t>(u) * n + v];
        if (w != 0 && !visited[static_cast<size_t>(v)] &&
            dist[static_cast<size_t>(u)] + w < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
        }
      }
    }
    for (int v = 0; v < n; ++v) total += dist[static_cast<size_t>(v)];
  }

  std::string src_text;
  src_text += "        .data\n";
  src_text += "adj:\n" + dot_words(adj);
  src_text += "dist:   .space " + std::to_string(4 * n) + "\n";
  src_text += "vis:    .space " + std::to_string(4 * n) + "\n";
  src_text += "        .text\n";
  src_text += "main:   li $s7, 0             # total\n";
  src_text += "        li $s6, 0             # source counter\n";
  src_text += "srcloop:\n";
  src_text += "        la $t0, dist          # init dist=INF, vis=0\n";
  src_text += "        la $t1, vis\n";
  src_text += "        li $t2, " + std::to_string(n) + "\n";
  src_text += R"(        li $t3, 0x7FFFFFFF
init:   sw $t3, 0($t0)
        sw $zero, 0($t1)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 4
        addiu $t2, $t2, -1
        bnez $t2, init
# dist[src] = 0, src = s6 % n  (n is a compile-time constant; use subtraction)
        move $t0, $s6
)";
  src_text += "        li $t1, " + std::to_string(n) + "\n";
  src_text += R"(modlp:  blt $t0, $t1, moddone
        subu $t0, $t0, $t1
        b modlp
moddone:
        la $t1, dist
        sll $t0, $t0, 2
        addu $t1, $t1, $t0
        sw $zero, 0($t1)
# main relaxation: n iterations
)";
  src_text += "        li $s5, " + std::to_string(n) + "\n";
  src_text += R"(outer:
# select u = unvisited argmin dist
        li $s0, -1            # u
        li $s1, 0x7FFFFFFF    # best
        li $t0, 0             # v
        la $t1, dist
        la $t2, vis
)";
  src_text += "        li $t3, " + std::to_string(n) + "\n";
  src_text += R"(sel:    lw $t4, 0($t2)
        bnez $t4, selnext
        lw $t5, 0($t1)
        bgeu $t5, $s1, selnext
        move $s1, $t5
        move $s0, $t0
selnext:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 4
        addiu $t2, $t2, 4
        bne $t0, $t3, sel
        bltz $s0, srcdone     # no reachable node left
# visited[u] = 1
        la $t0, vis
        sll $t1, $s0, 2
        addu $t0, $t0, $t1
        li $t2, 1
        sw $t2, 0($t0)
# relax neighbors: adj row base = adj + u*n*4
        la $t0, adj
)";
  src_text += "        li $t1, " + std::to_string(4 * n) + "\n";
  src_text += R"(        mul $t1, $s0, $t1
        addu $s2, $t0, $t1    # row pointer
        la $s3, dist
        la $s4, vis
        li $t0, 0             # v
)";
  src_text += "        li $t9, " + std::to_string(n) + "\n";
  src_text += R"(relax:  lw $t1, 0($s2)        # w
        beqz $t1, rnext
        lw $t2, 0($s4)        # visited[v]
        bnez $t2, rnext
        addu $t3, $s1, $t1    # dist[u] + w  (dist[u] == best == $s1)
        lw $t4, 0($s3)        # dist[v]
        bgeu $t3, $t4, rnext
        sw $t3, 0($s3)
rnext:  addiu $t0, $t0, 1
        addiu $s2, $s2, 4
        addiu $s3, $s3, 4
        addiu $s4, $s4, 4
        bne $t0, $t9, relax
        addiu $s5, $s5, -1
        bnez $s5, outer
srcdone:
# total += sum(dist)
        la $t0, dist
)";
  src_text += "        li $t1, " + std::to_string(n) + "\n";
  src_text += R"(sum:    lw $t2, 0($t0)
        addu $s7, $s7, $t2
        addiu $t0, $t0, 4
        addiu $t1, $t1, -1
        bnez $t1, sum
        addiu $s6, $s6, 1
)";
  src_text += "        li $t0, " + std::to_string(sources) + "\n";
  src_text += R"(        bne $s6, $t0, srcloop
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "dijkstra";
  w.display = "Dijkstra";
  w.dataflow_group = false;
  w.source = std::move(src_text);
  w.expected_output = std::to_string(static_cast<int32_t>(static_cast<uint32_t>(total)));
  return w;
}

}  // namespace dim::work
