// Susan (MiBench automotive/susan): the SUSAN image kernels — brightness-
// similarity smoothing, corner detection and edge detection on grayscale
// images. Inner loops mix loads, table lookups and branches.
#include <cstdlib>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

// Synthetic test image: blocks, gradients and noise so that corners/edges
// exist. Width is a power of two so the kernels index with shifts.
std::vector<uint8_t> make_image(int w, int h) {
  std::vector<uint8_t> img(static_cast<size_t>(w) * h);
  uint32_t seed = 0x5A5A1234u;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int v = 90;
      if (((x / 12) + (y / 10)) % 2 == 0) v = 170;  // checkerboard blocks
      v += (x * 2 + y) % 17;                        // gradient texture
      v += static_cast<int>(golden::lcg(seed) % 9); // mild noise
      if (v > 255) v = 255;
      img[static_cast<size_t>(y * w + x)] = static_cast<uint8_t>(v);
    }
  }
  return img;
}

std::string image_data(const std::vector<uint8_t>& img) {
  return "img:\n" + dot_bytes(img);
}

}  // namespace

Workload make_susan_s(int scale) {
  const int w = 64;
  const int h = 56 * scale;
  const std::vector<uint8_t> img = make_image(w, h);
  const std::vector<uint8_t> out = golden::susan_smooth(img, w, h);
  uint32_t checksum = 0;
  for (size_t i = 0; i < out.size(); ++i) checksum += out[i] ^ static_cast<uint32_t>(i & 0xFF);

  std::vector<int32_t> lut = golden::susan_lut();

  std::string src;
  src += "        .data\n";
  src += image_data(img);
  src += "lut:\n" + dot_words_i(lut);
  src += "outbuf: .space " + std::to_string(w * h) + "\n";
  src += "        .text\n";
  src += "main:   la $s0, img\n";
  src += "        la $s1, lut\n";
  src += "        la $s2, outbuf\n";
  src += R"(# copy borders first: out = img
        move $t0, $s0
        move $t1, $s2
)";
  src += "        li $t2, " + std::to_string(w * h) + "\n";
  src += R"(copy:   lbu $t3, 0($t0)
        sb $t3, 0($t1)
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        addiu $t2, $t2, -1
        bnez $t2, copy
# smoothing over interior pixels
        li $s3, 1             # y
yloop:  li $s4, 1             # x
xloop:  sll $t0, $s3, 6       # y*64
        addu $t0, $t0, $s4
        addu $t1, $s0, $t0
        lbu $s5, 0($t1)       # center
        li $t8, 0             # num
        li $t9, 0             # den
        li $s6, -1            # dy
nbry:   li $s7, -1            # dx
nbrx:   sll $t2, $s6, 6
        addu $t2, $t2, $s7
        addu $t2, $t2, $t1    # &img[(y+dy)*64 + x+dx]
        lbu $t3, 0($t2)       # p
        subu $t4, $t3, $s5
        bgez $t4, absok
        subu $t4, $zero, $t4
absok:  sll $t4, $t4, 2
        addu $t4, $s1, $t4
        lw $t4, 0($t4)        # weight
        mult $t4, $t3
        mflo $t5
        addu $t8, $t8, $t5    # num += w*p
        addu $t9, $t9, $t4    # den += w
        addiu $s7, $s7, 1
        li $t2, 2
        bne $s7, $t2, nbrx
        addiu $s6, $s6, 1
        li $t2, 2
        bne $s6, $t2, nbry
        div $t8, $t9
        mflo $t8
        addu $t2, $s2, $t0
        sb $t8, 0($t2)
        addiu $s4, $s4, 1
)";
  src += "        li $t2, " + std::to_string(w - 1) + "\n";
  src += R"(        bne $s4, $t2, xloop
        addiu $s3, $s3, 1
)";
  src += "        li $t2, " + std::to_string(h - 1) + "\n";
  src += R"(        bne $s3, $t2, yloop
# checksum over the output image
        move $t0, $s2
)";
  src += "        li $t1, " + std::to_string(w * h) + "\n";
  src += R"(        li $s7, 0
        li $t9, 0             # index
chk:    lbu $t2, 0($t0)
        andi $t3, $t9, 0xFF
        xor $t2, $t2, $t3
        addu $s7, $s7, $t2
        addiu $t0, $t0, 1
        addiu $t9, $t9, 1
        addiu $t1, $t1, -1
        bnez $t1, chk
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload wl;
  wl.name = "susan_s";
  wl.display = "Susan Smoothing";
  wl.dataflow_group = true;
  wl.source = std::move(src);
  wl.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return wl;
}

Workload make_susan_c(int scale) {
  const int w = 64;
  const int h = 36 * scale;
  const std::vector<uint8_t> img = make_image(w, h);

  // The genuine SUSAN circular mask: 37 pixels within radius ~3.4 of the
  // nucleus (the exact mask of the original SUSAN paper / MiBench code).
  std::vector<int32_t> mask_offsets;
  for (int dy = -3; dy <= 3; ++dy) {
    for (int dx = -3; dx <= 3; ++dx) {
      const int span = (dy == -3 || dy == 3) ? 1 : (dy == -2 || dy == 2) ? 2 : 3;
      if (dx >= -span && dx <= span) mask_offsets.push_back(dy * w + dx);
    }
  }
  // 37-pixel mask, geometric threshold = 3/4 of max USAN (as in SUSAN).
  const int t = 20;
  const int usan_threshold = 3 * static_cast<int>(mask_offsets.size()) / 4;

  int corners = 0;
  for (int y = 3; y < h - 3; ++y) {
    for (int x = 3; x < w - 3; ++x) {
      const int center = img[static_cast<size_t>(y * w + x)];
      int usan = 0;
      for (int32_t off : mask_offsets) {
        const int p = img[static_cast<size_t>(y * w + x + off)];
        const int d = p > center ? p - center : center - p;
        if (d < t) ++usan;
      }
      if (usan < usan_threshold) ++corners;
    }
  }

  std::string src;
  src += "        .data\n";
  src += image_data(img);
  src += "mask:\n" + dot_words_i(mask_offsets);
  src += "        .text\n";
  src += "main:   la $s0, img\n";
  src += "        la $s1, mask\n";
  src += R"(        li $s7, 0             # corners
        li $s3, 3             # y
yloop:  li $s4, 3             # x
xloop:  sll $t0, $s3, 6
        addu $t0, $t0, $s4
        addu $t1, $s0, $t0    # &img[y*64+x]
        lbu $s5, 0($t1)       # nucleus
        li $t8, 0             # usan
        move $t9, $s1         # mask cursor
)";
  src += "        li $s6, " + std::to_string(mask_offsets.size()) + "\n";
  src += R"(nbr:    lw $t2, 0($t9)
        addu $t2, $t2, $t1
        lbu $t3, 0($t2)
        subu $t4, $t3, $s5
        bgez $t4, absok
        subu $t4, $zero, $t4
absok:  slti $t4, $t4, 20     # |diff| < t
        addu $t8, $t8, $t4
        addiu $t9, $t9, 4
        addiu $s6, $s6, -1
        bnez $s6, nbr
)";
  src += "        slti $t2, $t8, " + std::to_string(usan_threshold) + "\n";
  src += R"(        addu $s7, $s7, $t2
        addiu $s4, $s4, 1
)";
  src += "        li $t2, " + std::to_string(w - 3) + "\n";
  src += R"(        bne $s4, $t2, xloop
        addiu $s3, $s3, 1
)";
  src += "        li $t2, " + std::to_string(h - 3) + "\n";
  src += R"(        bne $s3, $t2, yloop
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload wl;
  wl.name = "susan_c";
  wl.display = "Susan Corners";
  wl.dataflow_group = true;
  wl.source = std::move(src);
  wl.expected_output = std::to_string(corners);
  return wl;
}

Workload make_susan_e(int scale) {
  const int w = 64;
  const int h = 52 * scale;
  const std::vector<uint8_t> img = make_image(w, h);
  const int edges = golden::susan_edges(img, w, h);

  std::string src;
  src += "        .data\n";
  src += image_data(img);
  src += "        .text\n";
  src += "main:   la $s0, img\n";
  src += R"(        li $s7, 0             # edges
        li $s3, 1             # y
yloop:  li $s4, 1             # x
xloop:  sll $t0, $s3, 6
        addu $t0, $t0, $s4
        addu $t1, $s0, $t0
        lbu $s5, 0($t1)
        li $t8, 0
        li $s6, -1
nbry:   li $s2, -1
nbrx:   sll $t2, $s6, 6
        addu $t2, $t2, $s2
        addu $t2, $t2, $t1
        lbu $t3, 0($t2)
        subu $t4, $t3, $s5
        bgez $t4, absok
        subu $t4, $zero, $t4
absok:  slti $t4, $t4, 12
        addu $t8, $t8, $t4
        addiu $s2, $s2, 1
        li $t2, 2
        bne $s2, $t2, nbrx
        addiu $s6, $s6, 1
        li $t2, 2
        bne $s6, $t2, nbry
        slti $t2, $t8, 7
        addu $s7, $s7, $t2
        addiu $s4, $s4, 1
)";
  src += "        li $t2, " + std::to_string(w - 1) + "\n";
  src += R"(        bne $s4, $t2, xloop
        addiu $s3, $s3, 1
)";
  src += "        li $t2, " + std::to_string(h - 1) + "\n";
  src += R"(        bne $s3, $t2, yloop
        move $a0, $s7
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload wl;
  wl.name = "susan_e";
  wl.display = "Susan Edges";
  wl.dataflow_group = true;
  wl.source = std::move(src);
  wl.expected_output = std::to_string(edges);
  return wl;
}

}  // namespace dim::work
