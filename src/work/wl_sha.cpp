// SHA (MiBench security/sha): full SHA-1 of an arbitrary-length byte
// stream — big-endian word packing, standard 0x80+zeros+length padding, and
// the 80-round compression, all in assembly. The round loops are long ALU
// dependence chains — huge basic blocks, which is why SHA benefits so
// strongly from speculation in the paper.
#include <cstdio>

#include "work/asmgen.hpp"
#include "work/golden.hpp"
#include "work/workload.hpp"

namespace dim::work {
namespace {

// Reference SHA-1 with standard padding (golden::sha1_blocks handles whole
// blocks; the kernel performs real padding, so mirror it here).
std::array<uint32_t, 5> sha1_full(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> padded = data;
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  for (int i = 7; i >= 0; --i) padded.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
  return golden::sha1_blocks(padded);
}

// Emits the next-padded-byte sequence into $t2:
//   data byte while $s6 > 0; else 0x80 once ($v1: 0 -> 1); else 0.
std::string emit_next_byte(const std::string& suffix) {
  std::string s;
  s += "gb" + suffix + ":  beqz $s6, gp" + suffix + "\n";
  s += R"(        lbu $t2, 0($s0)
        addiu $s0, $s0, 1
        addiu $s6, $s6, -1
)";
  s += "        b gs" + suffix + "\n";
  s += "gp" + suffix + ":  bnez $v1, gz" + suffix + "\n";
  s += R"(        li $t2, 0x80
        li $v1, 1
)";
  s += "        b gs" + suffix + "\n";
  s += "gz" + suffix + ":  li $t2, 0\n";
  s += "gs" + suffix + ":\n";
  return s;
}

}  // namespace

Workload make_sha(int scale) {
  // Deliberately not a multiple of 64 so the padding path is exercised.
  const int nbytes = 6000 * scale + 37;
  uint32_t seed = 0x5AA17709u;
  std::vector<uint8_t> data(static_cast<size_t>(nbytes));
  for (auto& b : data) b = static_cast<uint8_t>(golden::lcg(seed) >> 16);

  const auto h = sha1_full(data);
  const uint32_t checksum = h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4];
  const uint32_t bit_len = static_cast<uint32_t>(nbytes) * 8;

  std::string src;
  src += "        .data\n";
  src += "msg:\n" + dot_bytes(data);
  src += "        .align 2\n";
  src += "blk:    .space 64\n";   // staging for the current (padded) block
  src += "wbuf:   .space 320\n";  // W[0..79]
  src += "        .text\n";
  src += "main:   la $s0, msg\n";
  src += "        li $s6, " + std::to_string(nbytes) + "   # bytes remaining\n";
  src += R"(        li $s1, 0x67452301    # h0..h4
        li $s2, 0xEFCDAB89
        lui $s3, 0x98BA
        ori $s3, $s3, 0xDCFE
        li $s4, 0x10325476
        lui $s5, 0xC3D2
        ori $s5, $s5, 0xE1F0
        li $v1, 0             # padding phase: 0=data, 1=0x80 emitted, 2=length written
# ---- assemble the next 64-byte block into blk ----
nextblk:
        la $t0, blk
        li $t1, 56            # bytes 0..55: data / 0x80 / zeros
fill56:
)";
  src += emit_next_byte("a");
  src += R"(        sb $t2, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        bnez $t1, fill56
# bytes 56..63: the big-endian bit length, if all payload and the 0x80
# marker have been emitted; otherwise 8 more data/pad bytes.
        bnez $s6, tailfill
        li $t2, 1
        bne $v1, $t2, tailfill
        sb $zero, 0($t0)      # high word of the 64-bit length is zero
        sb $zero, 1($t0)
        sb $zero, 2($t0)
        sb $zero, 3($t0)
)";
  src += "        li $t3, " + std::to_string(bit_len) + "\n";
  src += R"(        srl $t4, $t3, 24
        sb $t4, 4($t0)
        srl $t4, $t3, 16
        sb $t4, 5($t0)
        srl $t4, $t3, 8
        sb $t4, 6($t0)
        sb $t3, 7($t0)
        li $v1, 2
        b compress
tailfill:
        li $t1, 8
fill8:
)";
  src += emit_next_byte("b");
  src += R"(        sb $t2, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        bnez $t1, fill8
compress:
# W[0..15]: pack big-endian words from blk
        la $t8, wbuf
        la $t0, blk
        li $t7, 16
wpack:  lbu $t1, 0($t0)
        lbu $t2, 1($t0)
        lbu $t3, 2($t0)
        lbu $t4, 3($t0)
        sll $t1, $t1, 24
        sll $t2, $t2, 16
        sll $t3, $t3, 8
        or $t1, $t1, $t2
        or $t1, $t1, $t3
        or $t1, $t1, $t4
        sw $t1, 0($t8)
        addiu $t0, $t0, 4
        addiu $t8, $t8, 4
        addiu $t7, $t7, -1
        bnez $t7, wpack
# W[16..79] = rotl1(W[i-3] ^ W[i-8] ^ W[i-14] ^ W[i-16])
        li $t7, 64
wexp:   lw $t0, -12($t8)
        lw $t1, -32($t8)
        xor $t0, $t0, $t1
        lw $t1, -56($t8)
        xor $t0, $t0, $t1
        lw $t1, -64($t8)
        xor $t0, $t0, $t1
        sll $t1, $t0, 1
        srl $t0, $t0, 31
        or $t0, $t0, $t1
        sw $t0, 0($t8)
        addiu $t8, $t8, 4
        addiu $t7, $t7, -1
        bnez $t7, wexp
# round variables: a=$a0 b=$a1 c=$a2 d=$a3 e=$t6
        move $a0, $s1
        move $a1, $s2
        move $a2, $s3
        move $a3, $s4
        move $t6, $s5
        la $t8, wbuf
)";
  const struct Phase {
    const char* label;
    const char* kind;  // "choice", "xor", "maj"
    uint32_t k;
  } phases[4] = {{"r1", "choice", 0x5A827999u},
                 {"r2", "xor", 0x6ED9EBA1u},
                 {"r3", "maj", 0x8F1BBCDCu},
                 {"r4", "xor", 0xCA62C1D6u}};
  for (const Phase& ph : phases) {
    char kbuf[48];
    std::snprintf(kbuf, sizeof kbuf, "        li $t9, 0x%08X\n", ph.k);
    src += "        li $t7, 20\n";
    src += kbuf;
    src += std::string(ph.label) + ":\n";
    if (std::string(ph.kind) == "choice") {
      src += "        and $t0, $a1, $a2\n"
             "        nor $t1, $a1, $zero\n"
             "        and $t1, $t1, $a3\n"
             "        or $t0, $t0, $t1\n";
    } else if (std::string(ph.kind) == "maj") {
      src += "        and $t0, $a1, $a2\n"
             "        and $t1, $a1, $a3\n"
             "        or $t0, $t0, $t1\n"
             "        and $t1, $a2, $a3\n"
             "        or $t0, $t0, $t1\n";
    } else {
      src += "        xor $t0, $a1, $a2\n"
             "        xor $t0, $t0, $a3\n";
    }
    src += R"(        sll $t1, $a0, 5
        srl $t2, $a0, 27
        or $t1, $t1, $t2
        addu $t0, $t0, $t1
        addu $t0, $t0, $t6
        addu $t0, $t0, $t9
        lw $t1, 0($t8)
        addu $t0, $t0, $t1
        move $t6, $a3
        move $a3, $a2
        sll $t1, $a1, 30
        srl $t2, $a1, 2
        or $a2, $t1, $t2
        move $a1, $a0
        move $a0, $t0
        addiu $t8, $t8, 4
        addiu $t7, $t7, -1
)";
    src += std::string("        bnez $t7, ") + ph.label + "\n";
  }
  src += R"(        addu $s1, $s1, $a0
        addu $s2, $s2, $a1
        addu $s3, $s3, $a2
        addu $s4, $s4, $a3
        addu $s5, $s5, $t6
# continue until the length field has been emitted
        li $t0, 2
        bne $v1, $t0, nextblk
# ---- checksum = h0^h1^h2^h3^h4 ----
        xor $a0, $s1, $s2
        xor $a0, $a0, $s3
        xor $a0, $a0, $s4
        xor $a0, $a0, $s5
        li $v0, 1
        syscall
        li $v0, 10
        syscall
)";

  Workload w;
  w.name = "sha";
  w.display = "SHA";
  w.dataflow_group = true;
  w.source = std::move(src);
  w.expected_output = std::to_string(static_cast<int32_t>(checksum));
  return w;
}

}  // namespace dim::work
