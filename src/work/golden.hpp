// Golden (reference) C++ implementations of every workload algorithm, used
// to compute expected outputs for the assembly kernels and as known-answer
// test subjects themselves.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dim::work::golden {

// Deterministic input generator shared by golden models and the embedded
// .data sections (numerical-recipes LCG).
inline uint32_t lcg(uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state;
}

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), table-driven.
std::vector<uint32_t> crc32_table();
uint32_t crc32(const std::vector<uint8_t>& data);

// SHA-1 over whole 64-byte blocks (no padding — the kernels hash exact
// multiples of the block size). Returns h0..h4.
std::array<uint32_t, 5> sha1_blocks(const std::vector<uint8_t>& data);

// AES-128, FIPS-197.
struct Aes128 {
  explicit Aes128(const std::array<uint8_t, 16>& key);
  std::array<uint8_t, 16> encrypt(const std::array<uint8_t, 16>& block) const;
  std::array<uint8_t, 16> decrypt(const std::array<uint8_t, 16>& block) const;
  std::array<uint8_t, 176> round_keys{};  // 11 round keys
};
extern const std::array<uint8_t, 256> kAesSbox;
extern const std::array<uint8_t, 256> kAesInvSbox;

// IMA ADPCM (Intel/DVI), as in MiBench rawcaudio/rawdaudio.
extern const std::array<int16_t, 89> kAdpcmStepTable;
extern const std::array<int8_t, 16> kAdpcmIndexTable;
std::vector<uint8_t> adpcm_encode(const std::vector<int16_t>& samples);
std::vector<int16_t> adpcm_decode(const std::vector<uint8_t>& codes, size_t sample_count);

// Fixed-point 8x8 forward/inverse DCT (naive matrix form, 14-bit cosine
// table) — the arithmetic core of the JPEG kernels.
extern const std::array<int32_t, 64> kDctCos14;  // round(cos coeffs << 14)
void dct8x8(const int16_t in[64], int16_t out[64]);
void idct8x8(const int16_t in[64], int16_t out[64]);
extern const std::array<int16_t, 64> kJpegQuant;

// GSM-style short-term lattice analysis/synthesis filter with 8 reflection
// coefficients (the arithmetic core of the GSM codec kernels).
extern const std::array<int16_t, 8> kGsmReflection;
std::vector<int16_t> gsm_analysis(const std::vector<int16_t>& samples);
std::vector<int16_t> gsm_synthesis(const std::vector<int16_t>& residual);

// SUSAN-style image kernels on 8-bit grayscale images.
std::vector<uint8_t> susan_smooth(const std::vector<uint8_t>& img, int w, int h);
int susan_corners(const std::vector<uint8_t>& img, int w, int h);
int susan_edges(const std::vector<uint8_t>& img, int w, int h);
// Brightness-similarity LUT shared with the assembly kernels:
// lut[d] = 100 / (1 + (d*d) / 512)  for d in [0,255].
std::vector<int32_t> susan_lut();

}  // namespace dim::work::golden
