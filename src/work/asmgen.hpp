// Helpers to embed generated input data into assembly .data sections.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dim::work {

inline std::string dot_words(const std::vector<uint32_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % 8 == 0) out += (i == 0) ? "        .word " : "\n        .word ";
    else out += ", ";
    out += std::to_string(values[i]);
  }
  out += "\n";
  return out;
}

inline std::string dot_words_i(const std::vector<int32_t>& values) {
  std::vector<uint32_t> u(values.size());
  for (size_t i = 0; i < values.size(); ++i) u[i] = static_cast<uint32_t>(values[i]);
  return dot_words(u);
}

inline std::string dot_halfs(const std::vector<int16_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % 12 == 0) out += (i == 0) ? "        .half " : "\n        .half ";
    else out += ", ";
    out += std::to_string(values[i]);
  }
  out += "\n";
  return out;
}

inline std::string dot_bytes(const std::vector<uint8_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % 16 == 0) out += (i == 0) ? "        .byte " : "\n        .byte ";
    else out += ", ";
    out += std::to_string(values[i]);
  }
  out += "\n";
  return out;
}

}  // namespace dim::work
