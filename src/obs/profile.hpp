// Per-configuration aggregation of the DIM event stream.
//
// A ProfileTable folds events into one ConfigProfile per configuration
// start PC: activation count, committed ops, the full cycle breakdown
// (exec / reconfig / dcache / finalize / misspec — the five components sum
// exactly to the configuration's contribution to array_cycles),
// misspeculation rate, and cache churn (insertions / evictions / flushes,
// i.e. how often the entry was thrown away and re-translated). Tables merge
// additively, so per-point tables from a sweep aggregate deterministically
// regardless of worker scheduling.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "obs/event.hpp"

namespace dim::obs {

struct ConfigProfile {
  uint32_t start_pc = 0;

  // Execution.
  uint64_t activations = 0;
  uint64_t committed_ops = 0;
  uint64_t misspeculations = 0;

  // Cycle breakdown (sums to this configuration's array cycles).
  uint64_t exec_cycles = 0;
  uint64_t reconfig_stall_cycles = 0;
  uint64_t dcache_stall_cycles = 0;
  uint64_t finalize_cycles = 0;
  uint64_t misspec_penalty_cycles = 0;

  // Translation lifecycle / cache churn.
  uint64_t captures_started = 0;
  uint64_t captures_aborted = 0;
  uint64_t captures_too_short = 0;
  uint64_t finalizations = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
  uint64_t extensions_begun = 0;
  uint64_t extensions_completed = 0;

  // Control flow beyond speculation (PR 9).
  uint64_t hammocks_merged = 0;
  uint64_t residency_hits = 0;
  uint64_t residency_drops = 0;

  uint64_t array_cycles() const {
    return exec_cycles + reconfig_stall_cycles + dcache_stall_cycles +
           finalize_cycles + misspec_penalty_cycles;
  }
  double misspec_rate() const {
    return activations == 0 ? 0.0
                            : static_cast<double>(misspeculations) /
                                  static_cast<double>(activations);
  }
};

class ProfileTable {
 public:
  // Folds one event into the profile keyed by its config_pc.
  void add(const Event& event);
  void add_all(const std::vector<Event>& events) {
    for (const Event& e : events) add(e);
  }

  // Additive merge (sweep aggregation). Commutative, so the aggregate is
  // independent of worker scheduling.
  void merge(const ProfileTable& other);

  // Folds one whole profile into the entry keyed by its start_pc —
  // deserialization's counterpart to merge() (snap/codec.cpp rebuilds a
  // table profile-by-profile from a result-store cell).
  void add_profile(const ConfigProfile& profile);

  size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }
  const ConfigProfile* find(uint32_t start_pc) const;

  // Ascending start PC (the deterministic JSON order).
  std::vector<ConfigProfile> by_start_pc() const;
  // Descending array cycles, ties broken by ascending start PC (the
  // "hot configurations" order).
  std::vector<ConfigProfile> by_cycles() const;

  // Sum of every profile's cycle contribution == the run's array_cycles.
  uint64_t total_array_cycles() const;
  uint64_t total_activations() const;

 private:
  std::map<uint32_t, ConfigProfile> profiles_;  // ordered => stable export
};

// A sink that folds the stream directly into a table (no event storage) —
// the low-memory path used by sweeps.
class ProfilingSink : public EventSink {
 public:
  void emit(const Event& event) override { table_.add(event); }
  const ProfileTable& table() const { return table_; }

 private:
  ProfileTable table_;
};

// {"configs": [...]} sorted by start PC. Deterministic: depends only on
// the table contents.
void write_profile_json(std::ostream& out, const ProfileTable& table);

// Human-readable hot-configuration table: top `top_n` configurations by
// array cycles (0 = all), with the per-config cycle breakdown and a totals
// row over the WHOLE table (so the totals match the run even when rows are
// truncated).
void write_profile_table(std::ostream& out, const ProfileTable& table,
                         size_t top_n = 0);

}  // namespace dim::obs
