#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "accel/stats_io.hpp"

namespace dim::obs {

void ProfileTable::add(const Event& event) {
  ConfigProfile& p = profiles_[event.config_pc];
  p.start_pc = event.config_pc;
  switch (event.kind) {
    case EventKind::kCaptureStarted:
      ++p.captures_started;
      break;
    case EventKind::kCaptureAborted:
      ++p.captures_aborted;
      break;
    case EventKind::kCaptureTooShort:
      ++p.captures_too_short;
      break;
    case EventKind::kConfigFinalized:
      ++p.finalizations;
      break;
    case EventKind::kRcacheInsert:
      ++p.insertions;
      break;
    case EventKind::kRcacheEvict:
      ++p.evictions;
      break;
    case EventKind::kRcacheFlush:
      ++p.flushes;
      break;
    case EventKind::kArrayActivation:
      ++p.activations;
      p.committed_ops += static_cast<uint64_t>(event.ops);
      p.exec_cycles += event.exec_cycles;
      p.reconfig_stall_cycles += event.reconfig_stall_cycles;
      p.dcache_stall_cycles += event.dcache_stall_cycles;
      p.finalize_cycles += event.finalize_cycles;
      p.misspec_penalty_cycles += event.misspec_penalty_cycles;
      break;
    case EventKind::kMisspeculation:
      ++p.misspeculations;
      break;
    case EventKind::kExtensionBegun:
      ++p.extensions_begun;
      break;
    case EventKind::kExtensionCompleted:
      ++p.extensions_completed;
      break;
    case EventKind::kHammockMerged:
      ++p.hammocks_merged;
      break;
    case EventKind::kResidencyHit:
      ++p.residency_hits;
      break;
    case EventKind::kResidencyDropped:
      ++p.residency_drops;
      break;
    case EventKind::kElasticRejected:
    case EventKind::kSimtWarpHit:
      // Execution-mode events aggregate at run level (AccelStats), not per
      // configuration: the profile record keeps its fixed serialized shape.
      break;
  }
}

void ProfileTable::merge(const ProfileTable& other) {
  for (const auto& [pc, o] : other.profiles_) add_profile(o);
}

void ProfileTable::add_profile(const ConfigProfile& o) {
  ConfigProfile& p = profiles_[o.start_pc];
  p.start_pc = o.start_pc;
  p.activations += o.activations;
  p.committed_ops += o.committed_ops;
  p.misspeculations += o.misspeculations;
  p.exec_cycles += o.exec_cycles;
  p.reconfig_stall_cycles += o.reconfig_stall_cycles;
  p.dcache_stall_cycles += o.dcache_stall_cycles;
  p.finalize_cycles += o.finalize_cycles;
  p.misspec_penalty_cycles += o.misspec_penalty_cycles;
  p.captures_started += o.captures_started;
  p.captures_aborted += o.captures_aborted;
  p.captures_too_short += o.captures_too_short;
  p.finalizations += o.finalizations;
  p.insertions += o.insertions;
  p.evictions += o.evictions;
  p.flushes += o.flushes;
  p.extensions_begun += o.extensions_begun;
  p.extensions_completed += o.extensions_completed;
  p.hammocks_merged += o.hammocks_merged;
  p.residency_hits += o.residency_hits;
  p.residency_drops += o.residency_drops;
}

const ConfigProfile* ProfileTable::find(uint32_t start_pc) const {
  auto it = profiles_.find(start_pc);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::vector<ConfigProfile> ProfileTable::by_start_pc() const {
  std::vector<ConfigProfile> out;
  out.reserve(profiles_.size());
  for (const auto& [pc, p] : profiles_) out.push_back(p);
  return out;
}

std::vector<ConfigProfile> ProfileTable::by_cycles() const {
  std::vector<ConfigProfile> out = by_start_pc();
  std::stable_sort(out.begin(), out.end(),
                   [](const ConfigProfile& a, const ConfigProfile& b) {
                     if (a.array_cycles() != b.array_cycles()) {
                       return a.array_cycles() > b.array_cycles();
                     }
                     return a.start_pc < b.start_pc;
                   });
  return out;
}

uint64_t ProfileTable::total_array_cycles() const {
  uint64_t total = 0;
  for (const auto& [pc, p] : profiles_) total += p.array_cycles();
  return total;
}

uint64_t ProfileTable::total_activations() const {
  uint64_t total = 0;
  for (const auto& [pc, p] : profiles_) total += p.activations;
  return total;
}

void write_profile_json(std::ostream& out, const ProfileTable& table) {
  const std::vector<ConfigProfile> configs = table.by_start_pc();
  out << "{\n  \"configs\": [";
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigProfile& p = configs[i];
    out << (i == 0 ? "\n" : ",\n") << "    {";
    out << "\"start_pc\": " << p.start_pc;
    out << ", \"activations\": " << p.activations;
    out << ", \"committed_ops\": " << p.committed_ops;
    out << ", \"misspeculations\": " << p.misspeculations;
    out << ", \"misspec_rate\": ";
    accel::write_json_double(out, p.misspec_rate());
    out << ", \"array_cycles\": " << p.array_cycles();
    out << ", \"exec_cycles\": " << p.exec_cycles;
    out << ", \"reconfig_stall_cycles\": " << p.reconfig_stall_cycles;
    out << ", \"dcache_stall_cycles\": " << p.dcache_stall_cycles;
    out << ", \"finalize_cycles\": " << p.finalize_cycles;
    out << ", \"misspec_penalty_cycles\": " << p.misspec_penalty_cycles;
    out << ", \"captures_started\": " << p.captures_started;
    out << ", \"captures_aborted\": " << p.captures_aborted;
    out << ", \"captures_too_short\": " << p.captures_too_short;
    out << ", \"finalizations\": " << p.finalizations;
    out << ", \"insertions\": " << p.insertions;
    out << ", \"evictions\": " << p.evictions;
    out << ", \"flushes\": " << p.flushes;
    out << ", \"extensions_begun\": " << p.extensions_begun;
    out << ", \"extensions_completed\": " << p.extensions_completed;
    out << ", \"hammocks_merged\": " << p.hammocks_merged;
    out << ", \"residency_hits\": " << p.residency_hits;
    out << ", \"residency_drops\": " << p.residency_drops;
    out << "}";
  }
  out << "\n  ],\n";
  out << "  \"total_array_cycles\": " << table.total_array_cycles() << ",\n";
  out << "  \"total_activations\": " << table.total_activations() << "\n}\n";
}

void write_profile_table(std::ostream& out, const ProfileTable& table,
                         size_t top_n) {
  std::vector<ConfigProfile> configs = table.by_cycles();
  const size_t shown = (top_n == 0 || top_n > configs.size()) ? configs.size() : top_n;

  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %9s %10s %10s %8s %8s %8s %8s %8s %6s %5s\n",
                "config", "activs", "ops", "cycles", "exec", "reconf", "dcache",
                "final", "misspec", "mrate", "churn");
  out << line;
  for (size_t i = 0; i < shown; ++i) {
    const ConfigProfile& p = configs[i];
    std::snprintf(line, sizeof(line),
                  "0x%08x %9llu %10llu %10llu %8llu %8llu %8llu %8llu %8llu %6.3f %5llu\n",
                  p.start_pc, static_cast<unsigned long long>(p.activations),
                  static_cast<unsigned long long>(p.committed_ops),
                  static_cast<unsigned long long>(p.array_cycles()),
                  static_cast<unsigned long long>(p.exec_cycles),
                  static_cast<unsigned long long>(p.reconfig_stall_cycles),
                  static_cast<unsigned long long>(p.dcache_stall_cycles),
                  static_cast<unsigned long long>(p.finalize_cycles),
                  static_cast<unsigned long long>(p.misspec_penalty_cycles),
                  p.misspec_rate(),
                  static_cast<unsigned long long>(p.evictions + p.flushes));
    out << line;
  }
  if (shown < configs.size()) {
    out << "... " << (configs.size() - shown) << " more configurations\n";
  }
  std::snprintf(line, sizeof(line),
                "total: %llu configurations, %llu activations, %llu array cycles\n",
                static_cast<unsigned long long>(configs.size()),
                static_cast<unsigned long long>(table.total_activations()),
                static_cast<unsigned long long>(table.total_array_cycles()));
  out << line;
}

}  // namespace dim::obs
