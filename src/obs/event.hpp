// DIM event tracing: a structured stream of configuration-lifecycle events.
//
// Every interesting transition of a configuration — capture started /
// aborted / too short / finalized, reconfiguration-cache insert / evict /
// flush, array activation, misspeculation, speculation-extension begun /
// completed — is emitted as one Event, stamped with the run clock (retired
// instructions, processor cycles, array cycles) at the moment of emission.
// The stamp is taken AFTER the event's own accounting, so an activation
// event's `array_cycles` already includes that activation.
//
// Tracing is observation-only by contract: attaching or detaching a sink
// never changes simulated state, cycle counts, or instruction counts. With
// no sink attached every emission site is a single pointer test
// (EventStream::emit returns immediately), so the default run pays
// near-zero overhead.
//
// See docs/observability.md for the schema and the aggregation table built
// on top of this stream (obs/profile.hpp).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dim::obs {

enum class EventKind : uint8_t {
  kCaptureStarted,      // DIM opened a capture at config_pc
  kCaptureAborted,      // in-flight capture dropped (stream discontinuity)
  kCaptureTooShort,     // capture closed below min_instructions (ops = size)
  kConfigFinalized,     // capture saved to the rcache (ops, depth = num_bbs)
  kRcacheInsert,        // cache write of a configuration (ops = words)
  kRcacheEvict,         // replacement victim removed (ops = words lost)
  kRcacheFlush,         // speculation flush removed the entry
  kArrayActivation,     // the array executed config_pc (full cycle breakdown)
  kMisspeculation,      // a speculated branch resolved against its prediction
  kExtensionBegun,      // speculation extension of a cached config started
  kExtensionCompleted,  // the extended configuration was re-inserted
  kHammockMerged,       // if-conversion merged a hammock (branch_pc = branch)
  kResidencyHit,        // re-dispatch of the array-resident configuration
  kResidencyDropped,    // residency invalidated (SMC overlap / replacement)
  kElasticRejected,     // elastic deadlock check failed at config-build time
  kSimtWarpHit,         // SIMT lane reused the latched config (no reload)
};

const char* event_kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::kCaptureStarted;
  uint32_t config_pc = 0;  // start PC of the configuration concerned

  // Run clock at emission (stamped by EventStream).
  uint64_t instructions = 0;  // committed instructions (processor + array)
  uint64_t proc_cycles = 0;
  uint64_t array_cycles = 0;

  // Kind-specific payload (zero when not applicable).
  uint32_t branch_pc = 0;  // kMisspeculation: the offending branch
  int32_t depth = 0;       // basic blocks (committed / covered)
  int32_t ops = 0;         // instructions / configuration words involved

  // kArrayActivation: the activation's cycle breakdown. The five
  // components sum to the activation's contribution to array_cycles.
  uint64_t exec_cycles = 0;
  uint64_t reconfig_stall_cycles = 0;
  uint64_t dcache_stall_cycles = 0;
  uint64_t finalize_cycles = 0;
  uint64_t misspec_penalty_cycles = 0;
};

// Receives the stamped stream. Implementations need not be thread-safe:
// one system emits from one thread (SweepEngine attaches a private sink
// per grid point).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

// The emitting system's run clock, read at every emission for the stamp.
class RunClock {
 public:
  virtual ~RunClock() = default;
  virtual uint64_t retired_instructions() const = 0;
  virtual uint64_t clock_proc_cycles() const = 0;
  virtual uint64_t clock_array_cycles() const = 0;
};

// Stamps events with the run clock and forwards them to the sink. The
// null-sink fast path is a single branch, so emission sites can stay
// unconditional in the hot path.
class EventStream {
 public:
  void attach(EventSink* sink, const RunClock* clock) {
    sink_ = sink;
    clock_ = clock;
  }
  bool enabled() const { return sink_ != nullptr; }

  void emit(Event event) {
    if (sink_ == nullptr) return;
    if (clock_ != nullptr) {
      event.instructions = clock_->retired_instructions();
      event.proc_cycles = clock_->clock_proc_cycles();
      event.array_cycles = clock_->clock_array_cycles();
    }
    sink_->emit(event);
  }

 private:
  EventSink* sink_ = nullptr;
  const RunClock* clock_ = nullptr;
};

// Stores the raw stream (tools, tests, --events export).
class RecordingSink : public EventSink {
 public:
  void emit(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

// One JSON object per line (JSON-lines), in emission order. Deterministic:
// depends only on the events vector.
void write_events_jsonl(std::ostream& out, const std::vector<Event>& events);

// Compact single-line rendering for humans, e.g.
//   "i=1204 pc=0x00400040 array_activation ops=12 depth=2"
// — used by the differential fuzzer's divergence reports and repro-file
// headers, where the recent event tail is the context for a failure.
std::string format_event(const Event& event);

}  // namespace dim::obs
