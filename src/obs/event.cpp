#include "obs/event.hpp"

#include <cstdio>

namespace dim::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCaptureStarted: return "capture_started";
    case EventKind::kCaptureAborted: return "capture_aborted";
    case EventKind::kCaptureTooShort: return "capture_too_short";
    case EventKind::kConfigFinalized: return "config_finalized";
    case EventKind::kRcacheInsert: return "rcache_insert";
    case EventKind::kRcacheEvict: return "rcache_evict";
    case EventKind::kRcacheFlush: return "rcache_flush";
    case EventKind::kArrayActivation: return "array_activation";
    case EventKind::kMisspeculation: return "misspeculation";
    case EventKind::kExtensionBegun: return "extension_begun";
    case EventKind::kExtensionCompleted: return "extension_completed";
    case EventKind::kHammockMerged: return "hammock_merged";
    case EventKind::kResidencyHit: return "residency_hit";
    case EventKind::kResidencyDropped: return "residency_dropped";
    case EventKind::kElasticRejected: return "elastic_rejected";
    case EventKind::kSimtWarpHit: return "simt_warp_hit";
  }
  return "unknown";
}

void write_events_jsonl(std::ostream& out, const std::vector<Event>& events) {
  for (const Event& e : events) {
    out << "{\"event\": \"" << event_kind_name(e.kind) << "\", \"config_pc\": "
        << e.config_pc << ", \"instructions\": " << e.instructions
        << ", \"proc_cycles\": " << e.proc_cycles << ", \"array_cycles\": "
        << e.array_cycles;
    if (e.kind == EventKind::kMisspeculation || e.kind == EventKind::kHammockMerged) {
      out << ", \"branch_pc\": " << e.branch_pc;
    }
    if (e.depth != 0) out << ", \"depth\": " << e.depth;
    if (e.ops != 0) out << ", \"ops\": " << e.ops;
    if (e.kind == EventKind::kArrayActivation) {
      out << ", \"exec_cycles\": " << e.exec_cycles
          << ", \"reconfig_stall_cycles\": " << e.reconfig_stall_cycles
          << ", \"dcache_stall_cycles\": " << e.dcache_stall_cycles
          << ", \"finalize_cycles\": " << e.finalize_cycles
          << ", \"misspec_penalty_cycles\": " << e.misspec_penalty_cycles;
    }
    out << "}\n";
  }
}

std::string format_event(const Event& e) {
  char pc[16];
  std::snprintf(pc, sizeof(pc), "0x%08x", e.config_pc);
  std::string out = "i=" + std::to_string(e.instructions) + " pc=" + pc + " " +
                    event_kind_name(e.kind);
  if (e.ops != 0) out += " ops=" + std::to_string(e.ops);
  if (e.depth != 0) out += " depth=" + std::to_string(e.depth);
  if (e.kind == EventKind::kMisspeculation || e.kind == EventKind::kHammockMerged) {
    std::snprintf(pc, sizeof(pc), "0x%08x", e.branch_pc);
    out += std::string(" branch=") + pc;
  }
  return out;
}

}  // namespace dim::obs
