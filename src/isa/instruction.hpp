// MIPS I (R3000) integer instruction set: operations, decoded form and
// classification predicates used by the simulator and the DIM translator.
#pragma once

#include <cstdint>
#include <string>

namespace dim::isa {

enum class Op : uint8_t {
  kInvalid = 0,
  // R-type arithmetic / logic
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kAdd, kAddu, kSub, kSubu,
  kAnd, kOr, kXor, kNor,
  kSlt, kSltu,
  // HI/LO
  kMult, kMultu, kDiv, kDivu,
  kMfhi, kMthi, kMflo, kMtlo,
  // Jumps
  kJr, kJalr, kJ, kJal,
  // Traps
  kSyscall, kBreak,
  // I-type arithmetic / logic
  kAddi, kAddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  // Branches
  kBeq, kBne, kBlez, kBgtz, kBltz, kBgez, kBltzal, kBgezal,
  // Memory
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
};

// Decoded instruction. `imm16` is kept raw (16 bits); use simm()/uimm()
// according to the operation's semantics.
struct Instr {
  Op op = Op::kInvalid;
  uint8_t rs = 0;
  uint8_t rt = 0;
  uint8_t rd = 0;
  uint8_t shamt = 0;
  uint16_t imm16 = 0;
  uint32_t target26 = 0;  // J-type target field

  int32_t simm() const { return static_cast<int16_t>(imm16); }
  uint32_t uimm() const { return imm16; }
};

const char* op_name(Op op);

// --- Classification ---------------------------------------------------------

bool is_branch(Op op);       // conditional branches (beq..bgezal)
bool is_jump(Op op);         // j, jal, jr, jalr
bool is_load(Op op);
bool is_store(Op op);
bool is_mult_div(Op op);     // mult/multu/div/divu (write HI/LO)
bool is_hilo_read(Op op);    // mfhi/mflo
bool is_shift(Op op);

// Kind of array functional unit an instruction needs.
enum class FuKind : uint8_t { kAlu, kMul, kLdSt, kNone };
FuKind fu_kind(Op op);

// True if the DIM engine can translate this instruction onto the array.
// Per the paper: ALU ops, shifts, multiplies and loads/stores are supported;
// divisions, jumps, HI/LO moves and traps are not. Conditional branches are
// supported only as speculation points (they terminate a basic block).
bool dim_supported(Op op);

// Destination general register written by this instruction, or -1 if none.
// (jal/jalr/bltzal/bgezal write $ra / rd.)
int dest_reg(const Instr& i);

// Source general registers read by this instruction. Fills up to 2 entries,
// returns the count. $zero sources are still reported (reads of $0 are free
// but harmless to track).
int src_regs(const Instr& i, int out[2]);

}  // namespace dim::isa
