#include "isa/registers.hpp"

#include <array>
#include <cstdlib>

namespace dim::isa {
namespace {

constexpr std::array<const char*, 32> kAbiNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

}  // namespace

std::string reg_name(int index) {
  if (index < 0 || index > 31) return "$?";
  return std::string("$") + kAbiNames[static_cast<size_t>(index)];
}

std::optional<int> parse_reg(std::string_view text) {
  if (text.empty() || text[0] != '$') return std::nullopt;
  const std::string_view body = text.substr(1);
  if (body.empty()) return std::nullopt;
  // Numeric form: $0 .. $31
  if (body[0] >= '0' && body[0] <= '9') {
    int value = 0;
    for (char c : body) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + (c - '0');
    }
    if (value > 31) return std::nullopt;
    return value;
  }
  for (int i = 0; i < 32; ++i) {
    if (body == kAbiNames[static_cast<size_t>(i)]) return i;
  }
  // Alternate name for $fp.
  if (body == "s8") return 30;
  return std::nullopt;
}

}  // namespace dim::isa
