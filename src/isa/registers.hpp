// Register naming for the assembler and disassembler.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace dim::isa {

// Canonical ABI name of register `index` (0..31), e.g. "$t0".
std::string reg_name(int index);

// Parses "$t0", "$8", "$zero", ... Returns nullopt if not a register name.
std::optional<int> parse_reg(std::string_view text);

// Convenient ABI indices.
inline constexpr int kZero = 0, kAt = 1, kV0 = 2, kV1 = 3;
inline constexpr int kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7;
inline constexpr int kT0 = 8, kS0 = 16, kT8 = 24, kT9 = 25;
inline constexpr int kGp = 28, kSp = 29, kFp = 30, kRa = 31;

}  // namespace dim::isa
