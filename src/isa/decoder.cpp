#include "isa/decoder.hpp"

#include "common/bitutil.hpp"

namespace dim::isa {
namespace {

Op decode_special(uint32_t funct) {
  switch (funct) {
    case 0x00: return Op::kSll;
    case 0x02: return Op::kSrl;
    case 0x03: return Op::kSra;
    case 0x04: return Op::kSllv;
    case 0x06: return Op::kSrlv;
    case 0x07: return Op::kSrav;
    case 0x08: return Op::kJr;
    case 0x09: return Op::kJalr;
    case 0x0C: return Op::kSyscall;
    case 0x0D: return Op::kBreak;
    case 0x10: return Op::kMfhi;
    case 0x11: return Op::kMthi;
    case 0x12: return Op::kMflo;
    case 0x13: return Op::kMtlo;
    case 0x18: return Op::kMult;
    case 0x19: return Op::kMultu;
    case 0x1A: return Op::kDiv;
    case 0x1B: return Op::kDivu;
    case 0x20: return Op::kAdd;
    case 0x21: return Op::kAddu;
    case 0x22: return Op::kSub;
    case 0x23: return Op::kSubu;
    case 0x24: return Op::kAnd;
    case 0x25: return Op::kOr;
    case 0x26: return Op::kXor;
    case 0x27: return Op::kNor;
    case 0x2A: return Op::kSlt;
    case 0x2B: return Op::kSltu;
    default: return Op::kInvalid;
  }
}

Op decode_regimm(uint32_t rt) {
  switch (rt) {
    case 0x00: return Op::kBltz;
    case 0x01: return Op::kBgez;
    case 0x10: return Op::kBltzal;
    case 0x11: return Op::kBgezal;
    default: return Op::kInvalid;
  }
}

Op decode_opcode(uint32_t opcode) {
  switch (opcode) {
    case 0x02: return Op::kJ;
    case 0x03: return Op::kJal;
    case 0x04: return Op::kBeq;
    case 0x05: return Op::kBne;
    case 0x06: return Op::kBlez;
    case 0x07: return Op::kBgtz;
    case 0x08: return Op::kAddi;
    case 0x09: return Op::kAddiu;
    case 0x0A: return Op::kSlti;
    case 0x0B: return Op::kSltiu;
    case 0x0C: return Op::kAndi;
    case 0x0D: return Op::kOri;
    case 0x0E: return Op::kXori;
    case 0x0F: return Op::kLui;
    case 0x20: return Op::kLb;
    case 0x21: return Op::kLh;
    case 0x23: return Op::kLw;
    case 0x24: return Op::kLbu;
    case 0x25: return Op::kLhu;
    case 0x28: return Op::kSb;
    case 0x29: return Op::kSh;
    case 0x2B: return Op::kSw;
    default: return Op::kInvalid;
  }
}

}  // namespace

Instr decode(uint32_t word) {
  Instr i;
  const uint32_t opcode = bits(word, 26, 6);
  i.rs = static_cast<uint8_t>(bits(word, 21, 5));
  i.rt = static_cast<uint8_t>(bits(word, 16, 5));
  i.rd = static_cast<uint8_t>(bits(word, 11, 5));
  i.shamt = static_cast<uint8_t>(bits(word, 6, 5));
  i.imm16 = static_cast<uint16_t>(bits(word, 0, 16));
  i.target26 = bits(word, 0, 26);

  if (opcode == 0x00) {
    i.op = decode_special(bits(word, 0, 6));
  } else if (opcode == 0x01) {
    i.op = decode_regimm(i.rt);
  } else {
    i.op = decode_opcode(opcode);
  }
  return i;
}

}  // namespace dim::isa
