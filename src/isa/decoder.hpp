// Decoding of raw 32-bit MIPS I words into `Instr`.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace dim::isa {

// Decodes one instruction word. Unknown encodings yield Op::kInvalid.
Instr decode(uint32_t word);

}  // namespace dim::isa
