// Human-readable disassembly, mainly for debugging and error reporting.
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction.hpp"

namespace dim::isa {

// Disassembles `i` that resides at address `pc` (needed to print branch and
// jump targets as absolute addresses).
std::string disasm(const Instr& i, uint32_t pc);

}  // namespace dim::isa
