#include "isa/disasm.hpp"

#include <cstdio>

#include "isa/registers.hpp"

namespace dim::isa {
namespace {

std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

uint32_t branch_target(const Instr& i, uint32_t pc) {
  return pc + 4 + (static_cast<uint32_t>(i.simm()) << 2);
}

}  // namespace

std::string disasm(const Instr& i, uint32_t pc) {
  using std::string;
  const string name = op_name(i.op);
  const string rs = reg_name(i.rs), rt = reg_name(i.rt), rd = reg_name(i.rd);
  switch (i.op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
      return name + " " + rd + ", " + rt + ", " + std::to_string(i.shamt);
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      return name + " " + rd + ", " + rt + ", " + rs;
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
      return name + " " + rd + ", " + rs + ", " + rt;
    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
      return name + " " + rs + ", " + rt;
    case Op::kMfhi: case Op::kMflo:
      return name + " " + rd;
    case Op::kMthi: case Op::kMtlo:
      return name + " " + rs;
    case Op::kJr:
      return name + " " + rs;
    case Op::kJalr:
      return name + " " + rd + ", " + rs;
    case Op::kJ: case Op::kJal:
      return name + " " + hex32(((pc + 4) & 0xF0000000u) | (i.target26 << 2));
    case Op::kSyscall: case Op::kBreak:
      return name;
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
      return name + " " + rt + ", " + rs + ", " + std::to_string(i.simm());
    case Op::kAndi: case Op::kOri: case Op::kXori:
      return name + " " + rt + ", " + rs + ", " + hex32(i.uimm());
    case Op::kLui:
      return name + " " + rt + ", " + hex32(i.uimm());
    case Op::kBeq: case Op::kBne:
      return name + " " + rs + ", " + rt + ", " + hex32(branch_target(i, pc));
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
    case Op::kBltzal: case Op::kBgezal:
      return name + " " + rs + ", " + hex32(branch_target(i, pc));
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kSb: case Op::kSh: case Op::kSw:
      return name + " " + rt + ", " + std::to_string(i.simm()) + "(" + rs + ")";
    case Op::kInvalid:
      return "invalid";
  }
  return "?";
}

}  // namespace dim::isa
