#include "isa/instruction.hpp"

namespace dim::isa {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSllv: return "sllv";
    case Op::kSrlv: return "srlv";
    case Op::kSrav: return "srav";
    case Op::kAdd: return "add";
    case Op::kAddu: return "addu";
    case Op::kSub: return "sub";
    case Op::kSubu: return "subu";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNor: return "nor";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kMult: return "mult";
    case Op::kMultu: return "multu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kMfhi: return "mfhi";
    case Op::kMthi: return "mthi";
    case Op::kMflo: return "mflo";
    case Op::kMtlo: return "mtlo";
    case Op::kJr: return "jr";
    case Op::kJalr: return "jalr";
    case Op::kJ: return "j";
    case Op::kJal: return "jal";
    case Op::kSyscall: return "syscall";
    case Op::kBreak: return "break";
    case Op::kAddi: return "addi";
    case Op::kAddiu: return "addiu";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kXori: return "xori";
    case Op::kLui: return "lui";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlez: return "blez";
    case Op::kBgtz: return "bgtz";
    case Op::kBltz: return "bltz";
    case Op::kBgez: return "bgez";
    case Op::kBltzal: return "bltzal";
    case Op::kBgezal: return "bgezal";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
  }
  return "?";
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez: case Op::kBltzal: case Op::kBgezal:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) {
  return op == Op::kJ || op == Op::kJal || op == Op::kJr || op == Op::kJalr;
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  return op == Op::kSb || op == Op::kSh || op == Op::kSw;
}

bool is_mult_div(Op op) {
  return op == Op::kMult || op == Op::kMultu || op == Op::kDiv || op == Op::kDivu;
}

bool is_hilo_read(Op op) { return op == Op::kMfhi || op == Op::kMflo; }

bool is_shift(Op op) {
  switch (op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      return true;
    default:
      return false;
  }
}

FuKind fu_kind(Op op) {
  if (is_load(op) || is_store(op)) return FuKind::kLdSt;
  if (op == Op::kMult || op == Op::kMultu) return FuKind::kMul;
  switch (op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
      return FuKind::kAlu;
    default:
      return FuKind::kNone;
  }
}

bool dim_supported(Op op) {
  // Multiplications occupy a multiplier FU; mfhi/mflo immediately after a
  // mult are folded by the translator, so the HI/LO moves themselves are
  // handled there, not here.
  return fu_kind(op) != FuKind::kNone;
}

int dest_reg(const Instr& i) {
  switch (i.op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
    case Op::kMfhi: case Op::kMflo:
      return i.rd == 0 ? -1 : i.rd;
    case Op::kJalr:
      return i.rd == 0 ? -1 : i.rd;
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return i.rt == 0 ? -1 : i.rt;
    case Op::kJal: case Op::kBltzal: case Op::kBgezal:
      return 31;
    default:
      return -1;
  }
}

int src_regs(const Instr& i, int out[2]) {
  switch (i.op) {
    // shamt shifts read only rt
    case Op::kSll: case Op::kSrl: case Op::kSra:
      out[0] = i.rt;
      return 1;
    // variable shifts read rs (amount) and rt (value)
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      out[0] = i.rs; out[1] = i.rt;
      return 2;
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
    case Op::kBeq: case Op::kBne:
      out[0] = i.rs; out[1] = i.rt;
      return 2;
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
    case Op::kBltzal: case Op::kBgezal:
    case Op::kJr: case Op::kJalr:
    case Op::kMthi: case Op::kMtlo:
      out[0] = i.rs;
      return 1;
    case Op::kSb: case Op::kSh: case Op::kSw:
      out[0] = i.rs; out[1] = i.rt;  // base address and stored value
      return 2;
    default:
      return 0;
  }
}

}  // namespace dim::isa
