#include "isa/encoder.hpp"

namespace dim::isa {
namespace {

struct Encoding {
  uint32_t opcode;
  uint32_t funct;   // SPECIAL funct, or REGIMM rt field
  enum class Form { kR, kRegimm, kI, kJ } form;
};

Encoding encoding_of(Op op) {
  using F = Encoding::Form;
  switch (op) {
    case Op::kSll: return {0, 0x00, F::kR};
    case Op::kSrl: return {0, 0x02, F::kR};
    case Op::kSra: return {0, 0x03, F::kR};
    case Op::kSllv: return {0, 0x04, F::kR};
    case Op::kSrlv: return {0, 0x06, F::kR};
    case Op::kSrav: return {0, 0x07, F::kR};
    case Op::kJr: return {0, 0x08, F::kR};
    case Op::kJalr: return {0, 0x09, F::kR};
    case Op::kSyscall: return {0, 0x0C, F::kR};
    case Op::kBreak: return {0, 0x0D, F::kR};
    case Op::kMfhi: return {0, 0x10, F::kR};
    case Op::kMthi: return {0, 0x11, F::kR};
    case Op::kMflo: return {0, 0x12, F::kR};
    case Op::kMtlo: return {0, 0x13, F::kR};
    case Op::kMult: return {0, 0x18, F::kR};
    case Op::kMultu: return {0, 0x19, F::kR};
    case Op::kDiv: return {0, 0x1A, F::kR};
    case Op::kDivu: return {0, 0x1B, F::kR};
    case Op::kAdd: return {0, 0x20, F::kR};
    case Op::kAddu: return {0, 0x21, F::kR};
    case Op::kSub: return {0, 0x22, F::kR};
    case Op::kSubu: return {0, 0x23, F::kR};
    case Op::kAnd: return {0, 0x24, F::kR};
    case Op::kOr: return {0, 0x25, F::kR};
    case Op::kXor: return {0, 0x26, F::kR};
    case Op::kNor: return {0, 0x27, F::kR};
    case Op::kSlt: return {0, 0x2A, F::kR};
    case Op::kSltu: return {0, 0x2B, F::kR};
    case Op::kBltz: return {1, 0x00, F::kRegimm};
    case Op::kBgez: return {1, 0x01, F::kRegimm};
    case Op::kBltzal: return {1, 0x10, F::kRegimm};
    case Op::kBgezal: return {1, 0x11, F::kRegimm};
    case Op::kJ: return {0x02, 0, F::kJ};
    case Op::kJal: return {0x03, 0, F::kJ};
    case Op::kBeq: return {0x04, 0, F::kI};
    case Op::kBne: return {0x05, 0, F::kI};
    case Op::kBlez: return {0x06, 0, F::kI};
    case Op::kBgtz: return {0x07, 0, F::kI};
    case Op::kAddi: return {0x08, 0, F::kI};
    case Op::kAddiu: return {0x09, 0, F::kI};
    case Op::kSlti: return {0x0A, 0, F::kI};
    case Op::kSltiu: return {0x0B, 0, F::kI};
    case Op::kAndi: return {0x0C, 0, F::kI};
    case Op::kOri: return {0x0D, 0, F::kI};
    case Op::kXori: return {0x0E, 0, F::kI};
    case Op::kLui: return {0x0F, 0, F::kI};
    case Op::kLb: return {0x20, 0, F::kI};
    case Op::kLh: return {0x21, 0, F::kI};
    case Op::kLw: return {0x23, 0, F::kI};
    case Op::kLbu: return {0x24, 0, F::kI};
    case Op::kLhu: return {0x25, 0, F::kI};
    case Op::kSb: return {0x28, 0, F::kI};
    case Op::kSh: return {0x29, 0, F::kI};
    case Op::kSw: return {0x2B, 0, F::kI};
    case Op::kInvalid: return {0x3F, 0x3F, F::kI};
  }
  return {0x3F, 0x3F, Encoding::Form::kI};
}

}  // namespace

uint32_t encode(const Instr& i) {
  const Encoding e = encoding_of(i.op);
  using F = Encoding::Form;
  switch (e.form) {
    case F::kR:
      return (0u << 26) | (uint32_t{i.rs} << 21) | (uint32_t{i.rt} << 16) |
             (uint32_t{i.rd} << 11) | (uint32_t{i.shamt} << 6) | e.funct;
    case F::kRegimm:
      return (1u << 26) | (uint32_t{i.rs} << 21) | (e.funct << 16) | i.imm16;
    case F::kI:
      return (e.opcode << 26) | (uint32_t{i.rs} << 21) | (uint32_t{i.rt} << 16) |
             i.imm16;
    case F::kJ:
      return (e.opcode << 26) | (i.target26 & 0x03FFFFFFu);
  }
  return 0;
}

}  // namespace dim::isa
