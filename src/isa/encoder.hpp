// Encoding of `Instr` back into raw 32-bit MIPS I words.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace dim::isa {

// Encodes a decoded instruction. encode(decode(w)) == w for all valid words
// (modulo don't-care fields, which are encoded as zero).
uint32_t encode(const Instr& i);

}  // namespace dim::isa
