// Baseline machine: the standalone MIPS core running a program to
// completion, with cycle accounting. This is the reference the paper's
// speedups are measured against, and the oracle for transparency tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "asm/program.hpp"
#include "mem/memory.hpp"
#include "sim/cpu_state.hpp"
#include "sim/executor.hpp"
#include "sim/pipeline.hpp"
#include "sim/trace_cache.hpp"

namespace dim::sim {

struct RunResult {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  bool hit_limit = false;  // stopped by max_instructions, not by halt
  CpuState state;
  uint64_t memory_hash = 0;
  uint64_t icache_misses = 0;
  uint64_t dcache_misses = 0;
  uint64_t mem_accesses = 0;
};

struct MachineConfig {
  TimingParams timing;
  uint64_t max_instructions = 200'000'000;
  uint32_t initial_sp = 0x7FFF0000;
  uint32_t initial_gp = 0x10008000;
  // Superblock trace-threaded dispatch (sim/trace_cache.hpp): the host
  // fast path for unobserved runs. Bit-identical to the slow path by
  // contract (fuzzed by dimsim-fuzz --cmp-dispatch); on by default so
  // every golden/regression run exercises it. Observed runs (profiler)
  // always take the per-instruction path: observers need every StepInfo.
  bool host_trace_dispatch = true;
};

class Machine {
 public:
  Machine(const asmblr::Program& program, const MachineConfig& config = {});

  // Runs to halt (or instruction limit). `observer`, when set, sees every
  // retired instruction — used by the profiler.
  RunResult run(const std::function<void(const StepInfo&)>& observer = nullptr);

  // Replaces the loaded image with `program` and rewinds every piece of
  // run state: memory, CPU state, pipeline latches/cycles, and both
  // host-side caches (decoded words and superblock traces must not
  // survive an image swap — see their clear() contracts).
  void reset(const asmblr::Program& program);

  mem::Memory& memory() { return memory_; }
  CpuState& state() { return state_; }
  const TraceCache& trace_cache() const { return trace_cache_; }
  DecodeCache& decode_cache() { return decode_cache_; }

 private:
  MachineConfig config_;
  mem::Memory memory_;
  CpuState state_;
  PipelineModel pipeline_;
  DecodeCache decode_cache_;
  TraceCache trace_cache_;
};

// Convenience: assemble-load-run in one call.
RunResult run_baseline(const asmblr::Program& program, const MachineConfig& config = {});

}  // namespace dim::sim
