#include "sim/trace_cache.hpp"

#include "isa/decoder.hpp"

namespace dim::sim {

using isa::Op;

namespace {

// Maps one decoded instruction onto its trace-op form (kind + extracted
// operands/immediates). Returns false for ops formation must stop before
// (invalid, syscall, break): the slow path owns those retirements.
bool classify_op(const isa::Instr& i, uint32_t pc, TraceOp* op) {
  TKind k;
  uint8_t a = 0;
  uint8_t b = 0;
  int32_t imm = 0;
  switch (i.op) {
    case Op::kSll: k = TKind::kTSllK; b = i.rt; imm = i.shamt; break;
    case Op::kSrl: k = TKind::kTSrlK; b = i.rt; imm = i.shamt; break;
    case Op::kSra: k = TKind::kTSraK; b = i.rt; imm = i.shamt; break;
    case Op::kSllv: k = TKind::kTSllv; a = i.rs; b = i.rt; break;
    case Op::kSrlv: k = TKind::kTSrlv; a = i.rs; b = i.rt; break;
    case Op::kSrav: k = TKind::kTSrav; a = i.rs; b = i.rt; break;
    // add/sub are executed without the overflow trap, exactly like step().
    case Op::kAdd: case Op::kAddu: k = TKind::kTAddu; a = i.rs; b = i.rt; break;
    case Op::kSub: case Op::kSubu: k = TKind::kTSubu; a = i.rs; b = i.rt; break;
    case Op::kAnd: k = TKind::kTAnd; a = i.rs; b = i.rt; break;
    case Op::kOr: k = TKind::kTOr; a = i.rs; b = i.rt; break;
    case Op::kXor: k = TKind::kTXor; a = i.rs; b = i.rt; break;
    case Op::kNor: k = TKind::kTNor; a = i.rs; b = i.rt; break;
    case Op::kSlt: k = TKind::kTSlt; a = i.rs; b = i.rt; break;
    case Op::kSltu: k = TKind::kTSltu; a = i.rs; b = i.rt; break;
    case Op::kMult: k = TKind::kTMult; a = i.rs; b = i.rt; break;
    case Op::kMultu: k = TKind::kTMultu; a = i.rs; b = i.rt; break;
    case Op::kDiv: k = TKind::kTDiv; a = i.rs; b = i.rt; break;
    case Op::kDivu: k = TKind::kTDivu; a = i.rs; b = i.rt; break;
    case Op::kMfhi: k = TKind::kTMfhi; break;
    case Op::kMflo: k = TKind::kTMflo; break;
    case Op::kMthi: k = TKind::kTMthi; a = i.rs; break;
    case Op::kMtlo: k = TKind::kTMtlo; a = i.rs; break;
    case Op::kJr: k = TKind::kTJr; a = i.rs; break;
    case Op::kJalr: k = TKind::kTJalr; a = i.rs; break;
    case Op::kJ:
      k = TKind::kTJ;
      imm = static_cast<int32_t>(((pc + 4) & 0xF0000000u) | (i.target26 << 2));
      break;
    case Op::kJal:
      k = TKind::kTJal;
      imm = static_cast<int32_t>(((pc + 4) & 0xF0000000u) | (i.target26 << 2));
      break;
    case Op::kAddi: case Op::kAddiu: k = TKind::kTAddiu; a = i.rs; imm = i.simm(); break;
    case Op::kSlti: k = TKind::kTSlti; a = i.rs; imm = i.simm(); break;
    case Op::kSltiu: k = TKind::kTSltiu; a = i.rs; imm = i.simm(); break;
    case Op::kAndi: k = TKind::kTAndi; a = i.rs; imm = static_cast<int32_t>(i.uimm()); break;
    case Op::kOri: k = TKind::kTOri; a = i.rs; imm = static_cast<int32_t>(i.uimm()); break;
    case Op::kXori: k = TKind::kTXori; a = i.rs; imm = static_cast<int32_t>(i.uimm()); break;
    case Op::kLui: k = TKind::kTLui; imm = static_cast<int32_t>(i.uimm() << 16); break;
    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez:
      k = TKind::kTBr;
      a = i.rs;
      b = i.rt;
      imm = static_cast<int32_t>(branch_target(i, pc));
      break;
    case Op::kBltzal: case Op::kBgezal:
      k = TKind::kTBrLink;
      a = i.rs;
      b = i.rt;
      imm = static_cast<int32_t>(branch_target(i, pc));
      break;
    case Op::kLb: k = TKind::kTLb; a = i.rs; imm = i.simm(); break;
    case Op::kLbu: k = TKind::kTLbu; a = i.rs; imm = i.simm(); break;
    case Op::kLh: k = TKind::kTLh; a = i.rs; imm = i.simm(); break;
    case Op::kLhu: k = TKind::kTLhu; a = i.rs; imm = i.simm(); break;
    case Op::kLw: k = TKind::kTLw; a = i.rs; imm = i.simm(); break;
    case Op::kSb: k = TKind::kTSb; a = i.rs; b = i.rt; imm = i.simm(); break;
    case Op::kSh: k = TKind::kTSh; a = i.rs; b = i.rt; imm = i.simm(); break;
    case Op::kSw: k = TKind::kTSw; a = i.rs; b = i.rt; imm = i.simm(); break;
    case Op::kInvalid: case Op::kSyscall: case Op::kBreak:
    default:
      return false;
  }
  const int dr = isa::dest_reg(i);
  op->kind = k;
  op->a = a;
  op->b = b;
  op->d = dr > 0 ? static_cast<uint8_t>(dr) : 0;  // $0 writes become no-ops
  op->imm = imm;
  op->pc = pc;
  op->instr = i;
  op->rec = RetireRecord::classify(i);
  op->rec.pc = pc;
  return true;
}

// Baseline env: folded timing, so retirement only counts memory accesses.
struct FoldedEnv {
  static constexpr bool kDispatchProbe = false;
  uint64_t mem = 0;
  bool pre_dispatch(uint32_t) { return false; }
  void retired(const TraceOp&, uint32_t, bool, bool mem_access, uint32_t) {
    mem += mem_access ? 1 : 0;
  }
};

// Baseline env with exact per-op timing (dual issue, cache models, or a
// HI/LO-touching trace): charges the shared retire(RetireRecord) per op.
struct TimedEnv {
  static constexpr bool kDispatchProbe = false;
  PipelineModel* pipe;
  uint64_t mem = 0;
  bool pre_dispatch(uint32_t) { return false; }
  void retired(const TraceOp& op, uint32_t, bool taken, bool mem_access,
               uint32_t mem_addr) {
    RetireRecord r = op.rec;
    r.mem_access = mem_access;
    r.mem_addr = mem_addr;
    r.taken = taken;
    pipe->retire(r);
    mem += mem_access ? 1 : 0;
  }
};

}  // namespace

bool TraceCache::build_trace(Trace& t, uint32_t pc, const mem::Memory& memory) const {
  t.ops.clear();
  t.words.clear();
  t.stall_prefix.clear();
  t.start_pc = pc;
  t.end64 = 0;
  t.foldable = true;

  uint64_t p = pc;
  bool terminal = false;
  while (!terminal && t.ops.size() < kMaxOps && p <= 0xFFFFFFFCull) {
    const uint32_t word = memory.read32(static_cast<uint32_t>(p));
    TraceOp op;
    if (!classify_op(isa::decode(word), static_cast<uint32_t>(p), &op)) break;
    terminal = tkind_is_terminal(op.kind);
    // A straight-line op at 0xFFFFFFFC falls through to PC 0 (wraparound);
    // that breaks the pc+4 contract, so the slow path handles it. A
    // terminal there is fine: its next PC is computed in uint32, wrapping
    // exactly like step().
    if (!terminal && p == 0xFFFFFFFCull) break;
    t.ops.push_back(op);
    t.words.push_back(word);
    p += 4;
  }
  if (t.ops.size() < kMinOps) return false;

  t.end64 = t.start_pc + 4ull * t.words.size();
  t.stall_prefix.assign(t.ops.size() + 1, 0);
  int pending = -1;  // entry assumption; op 0's correction is dynamic
  for (size_t k = 0; k < t.ops.size(); ++k) {
    const RetireRecord& r = t.ops[k].rec;
    const bool stall =
        pending > 0 && ((r.nsrc > 0 && r.src0 == pending) ||
                        (r.nsrc > 1 && r.src1 == pending));
    t.stall_prefix[k + 1] =
        static_cast<uint8_t>(t.stall_prefix[k] + (stall ? 1 : 0));
    pending = r.is_load ? r.dest : -1;
    t.ops[k].pending_after = static_cast<int8_t>(pending);
    if (r.is_hilo_write || r.is_hilo_touch) t.foldable = false;
  }
  return true;
}

bool TraceCache::validate(const Trace& t, const mem::Memory& memory) const {
  uint32_t addr = t.start_pc;
  size_t done = 0;
  const size_t n = t.words.size();
  while (done < n) {
    const uint32_t off = addr & (mem::Memory::kPageSize - 1);
    const size_t in_page =
        std::min(n - done, static_cast<size_t>((mem::Memory::kPageSize - off) / 4));
    const uint8_t* page = memory.page_data(addr);
    if (page == nullptr) {
      // Absent pages read as zero; the trace is valid iff it recorded nops.
      for (size_t k = 0; k < in_page; ++k) {
        if (t.words[done + k] != 0) return false;
      }
    } else if constexpr (std::endian::native == std::endian::little) {
      if (std::memcmp(page + off, t.words.data() + done, in_page * 4) != 0) {
        return false;
      }
    } else {
      for (size_t k = 0; k < in_page; ++k) {
        if (t.words[done + k] != memory.read32(addr + static_cast<uint32_t>(k * 4))) {
          return false;
        }
      }
    }
    done += in_page;
    addr += static_cast<uint32_t>(in_page * 4);
  }
  return true;
}

Trace* TraceCache::hot_trace(uint32_t pc, const mem::Memory& memory) {
  Slot& s = slots_[slot_index(pc)];
  if (s.head == pc) {
    if (s.rejected) return nullptr;
    if (validate(s.trace, memory)) return &s.trace;
    // Stale words (self-modifying code or image change without clear()):
    // rebuild from what memory holds now.
    ++stats_.revalidation_rebuilds;
    if (build_trace(s.trace, pc, memory)) return &s.trace;
    s.rejected = true;
    ++stats_.rejected_heads;
    return nullptr;
  }
  // Rival head warming up in this slot; it takes over at kHeat visits.
  if (s.cand_pc == pc) {
    if (++s.cand_heat < kHeat) return nullptr;
    s.cand_pc = 1;
    s.cand_heat = 0;
    s.head = pc;
    if (build_trace(s.trace, pc, memory)) {
      s.rejected = false;
      ++stats_.traces_built;
      return &s.trace;
    }
    s.rejected = true;
    ++stats_.rejected_heads;
    return nullptr;
  }
  s.cand_pc = pc;
  s.cand_heat = 1;
  return nullptr;
}

uint64_t TraceCache::step_baseline(CpuState& state, mem::Memory& memory,
                                   PipelineModel& pipeline, uint64_t budget,
                                   uint64_t* mem_accesses) {
  if (budget == 0) return 0;
  Trace* t = hot_trace(state.pc, memory);
  if (t == nullptr) return 0;

  if (t->foldable && pipeline.fold_eligible()) {
    // Timing is committed wholesale after the run: k issue cycles, the
    // precomputed internal load-use stalls, the entry correction against
    // the pipeline's live pending load, and the terminal's taken penalty.
    const int entry_pending = pipeline.pending_load_reg();
    FoldedEnv env;
    const TraceExecResult res = execute(*t, state, memory, budget, env);
    const uint64_t k = res.executed;
    uint64_t cycles =
        k + static_cast<uint64_t>(t->stall_prefix[k]) * pipeline.load_use_stall_cycles();
    if (entry_pending > 0) {
      const RetireRecord& r0 = t->ops[0].rec;
      if ((r0.nsrc > 0 && r0.src0 == entry_pending) ||
          (r0.nsrc > 1 && r0.src1 == entry_pending)) {
        cycles += pipeline.load_use_stall_cycles();
      }
    }
    if (res.terminal_executed && res.terminal_taken) {
      cycles += pipeline.taken_branch_penalty();
    }
    const TraceOp& last = t->ops[k - 1];
    pipeline.fold_commit(cycles, last.pending_after, last.rec.dest,
                         last.rec.is_mem_op, last.rec.is_hilo_write);
    ++stats_.folded_executions;
    *mem_accesses += env.mem;
    return res.executed;
  }

  TimedEnv env{&pipeline};
  const TraceExecResult res = execute(*t, state, memory, budget, env);
  *mem_accesses += env.mem;
  return res.executed;
}

}  // namespace dim::sim
