#include "sim/tracer.hpp"

#include <cstdio>

#include "isa/disasm.hpp"
#include "isa/registers.hpp"

namespace dim::sim {

void Tracer::observe(const StepInfo& info, const CpuState& state) {
  if (lines_ >= options_.max_lines) return;
  ++lines_;

  char head[32];
  std::snprintf(head, sizeof head, "%08x:  ", info.pc);
  out_ << head << isa::disasm(info.instr, info.pc);

  if (options_.show_registers) {
    const int rd = isa::dest_reg(info.instr);
    if (rd > 0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "   ; %s = 0x%08x",
                    isa::reg_name(rd).c_str(), state.regs[static_cast<size_t>(rd)]);
      out_ << buf;
    }
  }
  if (options_.show_memory && info.mem_access) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "   ; mem[0x%08x]", info.mem_addr);
    out_ << buf;
  }
  if (info.is_branch) out_ << (info.taken ? "   ; taken" : "   ; not taken");
  out_ << '\n';
}

void Tracer::note(const std::string& message) {
  if (lines_ >= options_.max_lines) return;
  ++lines_;
  out_ << "---------- " << message << '\n';
}

}  // namespace dim::sim
