#include "sim/machine.hpp"

namespace dim::sim {

Machine::Machine(const asmblr::Program& program, const MachineConfig& config)
    : config_(config), pipeline_(config.timing) {
  program.load_into(memory_);
  state_.pc = program.entry;
  state_.regs[29] = config_.initial_sp;  // $sp
  state_.regs[28] = config_.initial_gp;  // $gp
}

void Machine::reset(const asmblr::Program& program) {
  memory_ = mem::Memory{};
  program.load_into(memory_);
  state_ = CpuState{};
  state_.pc = program.entry;
  state_.regs[29] = config_.initial_sp;
  state_.regs[28] = config_.initial_gp;
  pipeline_.reset();
  decode_cache_.clear();
  trace_cache_.clear();
}

RunResult Machine::run(const std::function<void(const StepInfo&)>& observer) {
  RunResult result;
  // Observers need every StepInfo, so observed runs take the slow path.
  const bool fast = config_.host_trace_dispatch && !observer;
  while (!state_.halted && result.instructions < config_.max_instructions) {
    if (fast) {
      const uint64_t executed = trace_cache_.step_baseline(
          state_, memory_, pipeline_, config_.max_instructions - result.instructions,
          &result.mem_accesses);
      if (executed > 0) {
        result.instructions += executed;
        continue;
      }
    }
    const StepInfo info = step(state_, memory_, &decode_cache_);
    ++result.instructions;
    pipeline_.retire(info);
    if (info.mem_access) ++result.mem_accesses;
    if (observer) observer(info);
  }
  result.hit_limit = !state_.halted;
  result.cycles = pipeline_.cycles();
  result.state = state_;
  result.memory_hash = memory_.content_hash();
  result.icache_misses = pipeline_.icache().misses();
  result.dcache_misses = pipeline_.dcache().misses();
  return result;
}

RunResult run_baseline(const asmblr::Program& program, const MachineConfig& config) {
  Machine machine(program, config);
  return machine.run();
}

}  // namespace dim::sim
