#include "sim/machine.hpp"

namespace dim::sim {

Machine::Machine(const asmblr::Program& program, const MachineConfig& config)
    : config_(config), pipeline_(config.timing) {
  program.load_into(memory_);
  state_.pc = program.entry;
  state_.regs[29] = config_.initial_sp;  // $sp
  state_.regs[28] = config_.initial_gp;  // $gp
}

RunResult Machine::run(const std::function<void(const StepInfo&)>& observer) {
  RunResult result;
  while (!state_.halted && result.instructions < config_.max_instructions) {
    const StepInfo info = step(state_, memory_, &decode_cache_);
    ++result.instructions;
    pipeline_.retire(info);
    if (info.mem_access) ++result.mem_accesses;
    if (observer) observer(info);
  }
  result.hit_limit = !state_.halted;
  result.cycles = pipeline_.cycles();
  result.state = state_;
  result.memory_hash = memory_.content_hash();
  result.icache_misses = pipeline_.icache().misses();
  result.dcache_misses = pipeline_.dcache().misses();
  return result;
}

RunResult run_baseline(const asmblr::Program& program, const MachineConfig& config) {
  Machine machine(program, config);
  return machine.run();
}

}  // namespace dim::sim
