#include "sim/pipeline.hpp"

#include "isa/instruction.hpp"

namespace dim::sim {

using isa::Op;

RetireRecord RetireRecord::classify(const isa::Instr& i) {
  RetireRecord r;
  r.dest = static_cast<int8_t>(isa::dest_reg(i));
  int srcs[2];
  r.nsrc = static_cast<uint8_t>(isa::src_regs(i, srcs));
  if (r.nsrc > 0) r.src0 = static_cast<int8_t>(srcs[0]);
  if (r.nsrc > 1) r.src1 = static_cast<int8_t>(srcs[1]);
  r.is_load = isa::is_load(i.op);
  r.is_mem_op = r.is_load || isa::is_store(i.op);
  r.is_hilo_write = isa::is_mult_div(i.op);
  r.is_div = i.op == Op::kDiv || i.op == Op::kDivu;
  r.is_hilo_touch =
      isa::is_hilo_read(i.op) || i.op == Op::kMthi || i.op == Op::kMtlo;
  return r;
}

uint64_t PipelineModel::retire(const StepInfo& info) {
  RetireRecord r = RetireRecord::classify(info.instr);
  r.pc = info.pc;
  r.mem_access = info.mem_access;
  r.mem_addr = info.mem_addr;
  r.taken = info.taken;
  return retire(r);
}

uint64_t PipelineModel::retire(const RetireRecord& r) {
  const uint64_t before = cycles_;

  // Load-use interlock against the immediately preceding instruction.
  const bool load_use =
      pending_load_reg_ > 0 && ((r.nsrc > 0 && r.src0 == pending_load_reg_) ||
                                (r.nsrc > 1 && r.src1 == pending_load_reg_));

  // Dual-issue pairing: share the previous instruction's cycle when legal.
  bool paired = false;
  if (params_.issue_width >= 2 && slot_open_ && !load_use) {
    const bool raw = slot_dest_ > 0 && ((r.nsrc > 0 && r.src0 == slot_dest_) ||
                                        (r.nsrc > 1 && r.src1 == slot_dest_));
    if (!raw && !(slot_mem_ && r.is_mem_op) && !(slot_hilo_ && r.is_hilo_write)) {
      paired = true;
    }
  }

  if (paired) {
    slot_open_ = false;  // the pair is complete
  } else {
    cycles_ += 1;  // new issue cycle
    slot_open_ = params_.issue_width >= 2;
    slot_dest_ = r.dest;
    slot_mem_ = r.is_mem_op;
    slot_hilo_ = r.is_hilo_write;
  }

  cycles_ += icache_.access(r.pc);
  if (load_use) cycles_ += params_.load_use_stall;
  pending_load_reg_ = r.is_load ? r.dest : -1;

  if (r.mem_access) cycles_ += dcache_.access(r.mem_addr);

  if (r.is_hilo_write) {
    const uint32_t latency = r.is_div ? params_.div_latency : params_.mult_latency;
    hilo_ready_ = cycles_ + latency;
  } else if (r.is_hilo_touch) {
    if (cycles_ < hilo_ready_) cycles_ = hilo_ready_;
  }

  if (r.taken) {
    cycles_ += params_.taken_branch_penalty;
    slot_open_ = false;  // redirect: nothing pairs across a taken transfer
  }

  return cycles_ - before;
}

void PipelineModel::reset() {
  cycles_ = 0;
  pending_load_reg_ = -1;
  hilo_ready_ = 0;
  slot_open_ = false;
  slot_dest_ = -1;
  slot_mem_ = false;
  slot_hilo_ = false;
  icache_.reset();
  dcache_.reset();
}

PipelineState PipelineModel::export_state() const {
  PipelineState s;
  s.cycles = cycles_;
  s.pending_load_reg = pending_load_reg_;
  s.hilo_ready = hilo_ready_;
  s.slot_open = slot_open_;
  s.slot_dest = slot_dest_;
  s.slot_mem = slot_mem_;
  s.slot_hilo = slot_hilo_;
  s.icache = icache_.export_state();
  s.dcache = dcache_.export_state();
  return s;
}

void PipelineModel::restore_state(const PipelineState& state) {
  icache_.restore_state(state.icache);
  dcache_.restore_state(state.dcache);
  cycles_ = state.cycles;
  pending_load_reg_ = state.pending_load_reg;
  hilo_ready_ = state.hilo_ready;
  slot_open_ = state.slot_open;
  slot_dest_ = state.slot_dest;
  slot_mem_ = state.slot_mem;
  slot_hilo_ = state.slot_hilo;
}

}  // namespace dim::sim
