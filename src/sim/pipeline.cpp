#include "sim/pipeline.hpp"

#include "isa/instruction.hpp"

namespace dim::sim {

using isa::Op;

uint64_t PipelineModel::retire(const StepInfo& info) {
  const uint64_t before = cycles_;
  const isa::Instr& i = info.instr;
  const bool is_mem = isa::is_load(i.op) || isa::is_store(i.op);
  const bool is_hilo = isa::is_mult_div(i.op);

  // Load-use interlock against the immediately preceding instruction.
  bool load_use = false;
  if (pending_load_reg_ > 0) {
    int srcs[2];
    const int n = isa::src_regs(i, srcs);
    for (int k = 0; k < n; ++k) {
      if (srcs[k] == pending_load_reg_) {
        load_use = true;
        break;
      }
    }
  }

  // Dual-issue pairing: share the previous instruction's cycle when legal.
  bool paired = false;
  if (params_.issue_width >= 2 && slot_open_ && !load_use) {
    int srcs[2];
    const int n = isa::src_regs(i, srcs);
    bool raw = false;
    for (int k = 0; k < n; ++k) raw |= (slot_dest_ > 0 && srcs[k] == slot_dest_);
    if (!raw && !(slot_mem_ && is_mem) && !(slot_hilo_ && is_hilo)) paired = true;
  }

  if (paired) {
    slot_open_ = false;  // the pair is complete
  } else {
    cycles_ += 1;  // new issue cycle
    slot_open_ = params_.issue_width >= 2;
    slot_dest_ = isa::dest_reg(i);
    slot_mem_ = is_mem;
    slot_hilo_ = is_hilo;
  }

  cycles_ += icache_.access(info.pc);
  if (load_use) cycles_ += params_.load_use_stall;
  pending_load_reg_ = isa::is_load(i.op) ? isa::dest_reg(i) : -1;

  if (info.mem_access) cycles_ += dcache_.access(info.mem_addr);

  if (isa::is_mult_div(i.op)) {
    const uint32_t latency =
        (i.op == Op::kDiv || i.op == Op::kDivu) ? params_.div_latency : params_.mult_latency;
    hilo_ready_ = cycles_ + latency;
  } else if (isa::is_hilo_read(i.op) || i.op == Op::kMthi || i.op == Op::kMtlo) {
    if (cycles_ < hilo_ready_) cycles_ = hilo_ready_;
  }

  if (info.taken) {
    cycles_ += params_.taken_branch_penalty;
    slot_open_ = false;  // redirect: nothing pairs across a taken transfer
  }

  return cycles_ - before;
}

void PipelineModel::reset() {
  cycles_ = 0;
  pending_load_reg_ = -1;
  hilo_ready_ = 0;
  slot_open_ = false;
  slot_dest_ = -1;
  slot_mem_ = false;
  slot_hilo_ = false;
  icache_.reset();
  dcache_.reset();
}

PipelineState PipelineModel::export_state() const {
  PipelineState s;
  s.cycles = cycles_;
  s.pending_load_reg = pending_load_reg_;
  s.hilo_ready = hilo_ready_;
  s.slot_open = slot_open_;
  s.slot_dest = slot_dest_;
  s.slot_mem = slot_mem_;
  s.slot_hilo = slot_hilo_;
  s.icache = icache_.export_state();
  s.dcache = dcache_.export_state();
  return s;
}

void PipelineModel::restore_state(const PipelineState& state) {
  icache_.restore_state(state.icache);
  dcache_.restore_state(state.dcache);
  cycles_ = state.cycles;
  pending_load_reg_ = state.pending_load_reg;
  hilo_ready_ = state.hilo_ready;
  slot_open_ = state.slot_open;
  slot_dest_ = state.slot_dest;
  slot_mem_ = state.slot_mem;
  slot_hilo_ = state.slot_hilo;
}

}  // namespace dim::sim
