// Cycle model of the 5-stage in-order R3000-class pipeline (Minimips).
//
// The functional executor retires instructions; this model charges cycles:
//   - 1 cycle per instruction (single-issue, in-order)
//   - load-use interlock: 1 stall when an instruction reads the destination
//     of the immediately preceding load
//   - taken branches/jumps redirect the fetch after EX: 2 bubble cycles
//   - mult/div execute in a non-blocking HI/LO unit; mfhi/mflo stall until
//     the unit finishes
//   - optional I/D cache models add miss stalls
#pragma once

#include <cstdint>

#include "mem/cache.hpp"
#include "sim/cpu_state.hpp"

namespace dim::sim {

struct TimingParams {
  uint32_t taken_branch_penalty = 2;
  uint32_t load_use_stall = 1;
  uint32_t mult_latency = 4;
  uint32_t div_latency = 20;
  // 1 = the paper's scalar Minimips baseline. 2 = a dual-issue in-order
  // core (for the stronger-baseline ablation): two consecutive
  // instructions share a cycle when they have no RAW dependence, at most
  // one is a memory access, at most one targets HI/LO, and the first is
  // not a taken control transfer.
  uint32_t issue_width = 1;
  mem::CacheParams icache;
  mem::CacheParams dcache;
};

// Pre-classified retirement record: everything the timing model needs to
// know about one instruction, with the ISA-level classification already
// done. retire(StepInfo) builds one of these per call; the superblock
// trace engine (sim/trace_cache.hpp) precomputes the static fields once at
// trace-formation time and only fills in the dynamic ones (mem_addr,
// taken) per execution. Both paths charge cycles through the same
// retire(RetireRecord) implementation, so they cannot drift apart.
struct RetireRecord {
  int8_t dest = -1;           // isa::dest_reg ($0 reported as -1)
  int8_t src0 = 0, src1 = 0;  // isa::src_regs
  uint8_t nsrc = 0;
  bool is_load = false;
  bool is_mem_op = false;      // load or store (dual-issue slot class)
  bool is_hilo_write = false;  // mult/multu/div/divu
  bool is_div = false;         // div/divu (longer HI/LO latency)
  bool is_hilo_touch = false;  // mfhi/mflo/mthi/mtlo (stall until ready)
  uint32_t pc = 0;
  bool mem_access = false;  // dynamic: this retirement accessed memory
  uint32_t mem_addr = 0;    // dynamic
  bool taken = false;       // dynamic: taken branch / any jump

  // Static classification of `i` (dynamic fields left defaulted).
  static RetireRecord classify(const isa::Instr& i);
};

// Mutable state of a PipelineModel, exported for checkpointing: the cycle
// counter, every inter-instruction hazard latch, and both cache models.
// Everything a resumed run needs to charge the next instruction exactly as
// an uninterrupted run would.
struct PipelineState {
  uint64_t cycles = 0;
  int pending_load_reg = -1;
  uint64_t hilo_ready = 0;
  bool slot_open = false;
  int slot_dest = -1;
  bool slot_mem = false;
  bool slot_hilo = false;
  mem::CacheState icache;
  mem::CacheState dcache;
};

class PipelineModel {
 public:
  explicit PipelineModel(const TimingParams& params)
      : params_(params), icache_(params.icache), dcache_(params.dcache) {}

  // Accounts one retired instruction; returns the cycles it consumed.
  uint64_t retire(const StepInfo& info);

  // Same accounting from a pre-classified record (see RetireRecord). This
  // is the only implementation; retire(StepInfo) delegates to it.
  uint64_t retire(const RetireRecord& r);

  // --- Superblock trace support (sim/trace_cache.hpp) -----------------
  // True when per-trace folded timing reproduces retire() exactly: single
  // issue (no pairing state) and both cache models disabled (no dynamic
  // miss stalls, no hit/miss counters to maintain). HI/LO hazards are
  // excluded per trace, not here.
  bool fold_eligible() const {
    return params_.issue_width < 2 && !icache_.params().enabled &&
           !dcache_.params().enabled;
  }
  int pending_load_reg() const { return pending_load_reg_; }
  uint32_t load_use_stall_cycles() const { return params_.load_use_stall; }
  uint32_t taken_branch_penalty() const { return params_.taken_branch_penalty; }

  // Commits a folded trace: `cycles` precomputed issue+stall cycles, and
  // the exit values of every hazard latch retire() would have left behind
  // (slot_* from the last retired instruction; slot_open is false at
  // issue_width 1, the only width folding is eligible for).
  void fold_commit(uint64_t cycles, int exit_pending_load_reg, int slot_dest,
                   bool slot_mem, bool slot_hilo) {
    cycles_ += cycles;
    pending_load_reg_ = exit_pending_load_reg;
    slot_open_ = false;
    slot_dest_ = slot_dest;
    slot_mem_ = slot_mem;
    slot_hilo_ = slot_hilo;
  }

  // Accounts a fetch redirect caused by the reconfigurable array updating
  // the PC past a translated region (charged like a taken branch would be
  // if the array did not hide it; the paper's scheme hides it, so the
  // accelerated system does NOT call this by default — it exists for
  // ablations).
  void charge(uint64_t cycles) { cycles_ += cycles; }

  void reset();

  // Checkpoint support (see PipelineState). restore_state throws
  // std::invalid_argument when a cache state does not fit the geometry.
  PipelineState export_state() const;
  void restore_state(const PipelineState& state);

  uint64_t cycles() const { return cycles_; }
  mem::Cache& icache() { return icache_; }
  mem::Cache& dcache() { return dcache_; }
  const TimingParams& params() const { return params_; }

 private:
  TimingParams params_;
  mem::Cache icache_;
  mem::Cache dcache_;
  uint64_t cycles_ = 0;
  int pending_load_reg_ = -1;   // destination of the previous load, if any
  uint64_t hilo_ready_ = 0;     // absolute cycle when HI/LO become readable

  // Dual-issue pairing state: description of the instruction occupying the
  // first slot of the current issue cycle (if any).
  bool slot_open_ = false;
  int slot_dest_ = -1;
  bool slot_mem_ = false;
  bool slot_hilo_ = false;
};

}  // namespace dim::sim
