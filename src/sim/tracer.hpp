// Execution tracer: renders the retired instruction stream (and, on the
// accelerated system, array activations) as human-readable text. Useful for
// debugging kernels and for teaching how DIM carves the stream.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "sim/cpu_state.hpp"

namespace dim::sim {

struct TracerOptions {
  uint64_t max_lines = 10000;   // stop tracing after this many lines
  bool show_registers = false;  // append the written register's new value
  bool show_memory = false;     // append load/store addresses
};

class Tracer {
 public:
  Tracer(std::ostream& out, const TracerOptions& options = {})
      : out_(out), options_(options) {}

  // Call with every retired instruction (fits Machine::run's observer).
  void observe(const StepInfo& info, const CpuState& state);

  // Annotation hook for array activations on the accelerated system.
  void note(const std::string& message);

  uint64_t lines() const { return lines_; }

 private:
  std::ostream& out_;
  TracerOptions options_;
  uint64_t lines_ = 0;
};

}  // namespace dim::sim
