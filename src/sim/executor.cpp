#include "sim/executor.hpp"

#include <string>

#include "isa/decoder.hpp"

namespace dim::sim {

using isa::Instr;
using isa::Op;

uint32_t alu_eval(const Instr& i, uint32_t rs, uint32_t rt) {
  switch (i.op) {
    case Op::kSll: return rt << i.shamt;
    case Op::kSrl: return rt >> i.shamt;
    case Op::kSra: return static_cast<uint32_t>(static_cast<int32_t>(rt) >> i.shamt);
    case Op::kSllv: return rt << (rs & 31);
    case Op::kSrlv: return rt >> (rs & 31);
    case Op::kSrav: return static_cast<uint32_t>(static_cast<int32_t>(rt) >> (rs & 31));
    // We implement add/sub/addi without the overflow trap (as addu/subu do);
    // Minimips does not take overflow exceptions either.
    case Op::kAdd: case Op::kAddu: return rs + rt;
    case Op::kSub: case Op::kSubu: return rs - rt;
    case Op::kAnd: return rs & rt;
    case Op::kOr: return rs | rt;
    case Op::kXor: return rs ^ rt;
    case Op::kNor: return ~(rs | rt);
    case Op::kSlt: return static_cast<int32_t>(rs) < static_cast<int32_t>(rt) ? 1u : 0u;
    case Op::kSltu: return rs < rt ? 1u : 0u;
    case Op::kAddi: case Op::kAddiu: return rs + static_cast<uint32_t>(i.simm());
    case Op::kSlti:
      return static_cast<int32_t>(rs) < i.simm() ? 1u : 0u;
    case Op::kSltiu:
      return rs < static_cast<uint32_t>(i.simm()) ? 1u : 0u;
    case Op::kAndi: return rs & i.uimm();
    case Op::kOri: return rs | i.uimm();
    case Op::kXori: return rs ^ i.uimm();
    case Op::kLui: return static_cast<uint32_t>(i.uimm()) << 16;
    default: return 0;
  }
}

uint64_t mult_eval(Op op, uint32_t rs, uint32_t rt) {
  if (op == Op::kMult) {
    return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(rs)) *
                                 static_cast<int64_t>(static_cast<int32_t>(rt)));
  }
  return static_cast<uint64_t>(rs) * static_cast<uint64_t>(rt);
}

bool branch_taken(const Instr& i, uint32_t rs, uint32_t rt) {
  const int32_t s = static_cast<int32_t>(rs);
  switch (i.op) {
    case Op::kBeq: return rs == rt;
    case Op::kBne: return rs != rt;
    case Op::kBlez: return s <= 0;
    case Op::kBgtz: return s > 0;
    case Op::kBltz: case Op::kBltzal: return s < 0;
    case Op::kBgez: case Op::kBgezal: return s >= 0;
    default: return false;
  }
}

uint32_t branch_target(const Instr& i, uint32_t pc) {
  return pc + 4 + (static_cast<uint32_t>(i.simm()) << 2);
}

uint32_t effective_address(const Instr& i, uint32_t rs) {
  return rs + static_cast<uint32_t>(i.simm());
}

int mem_width(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLbu: case Op::kSb: return 1;
    case Op::kLh: case Op::kLhu: case Op::kSh: return 2;
    default: return 4;
  }
}

namespace {

void do_syscall(CpuState& state, mem::Memory& memory) {
  switch (state.regs[2]) {  // $v0 selects the service (SPIM conventions)
    case 1: {  // print integer in $a0
      state.output += std::to_string(static_cast<int32_t>(state.regs[4]));
      break;
    }
    case 4: {  // print NUL-terminated string at $a0
      uint32_t addr = state.regs[4];
      for (int guard = 0; guard < 1 << 20; ++guard) {
        const char c = static_cast<char>(memory.read8(addr++));
        if (c == '\0') break;
        state.output.push_back(c);
      }
      break;
    }
    case 11: {  // print char in $a0
      state.output.push_back(static_cast<char>(state.regs[4]));
      break;
    }
    case 10:  // exit
    default:
      state.halted = true;
      break;
  }
}

}  // namespace

isa::Instr DecodeCache::decode_word(uint32_t word) { return isa::decode(word); }

StepInfo step(CpuState& state, mem::Memory& memory, DecodeCache* decode_cache) {
  StepInfo info;
  info.pc = state.pc;

  const uint32_t word = memory.read32(state.pc);
  const Instr i = decode_cache ? decode_cache->get(state.pc, word) : isa::decode(word);
  info.instr = i;

  uint32_t next_pc = state.pc + 4;
  const uint32_t rs = state.regs[i.rs];
  const uint32_t rt = state.regs[i.rt];

  switch (i.op) {
    case Op::kInvalid:
      state.halted = true;
      break;
    case Op::kSyscall:
      do_syscall(state, memory);
      break;
    case Op::kBreak:
      state.halted = true;
      break;

    case Op::kMult: case Op::kMultu: {
      const uint64_t product = mult_eval(i.op, rs, rt);
      state.lo = static_cast<uint32_t>(product);
      state.hi = static_cast<uint32_t>(product >> 32);
      break;
    }
    case Op::kDiv: {
      const int32_t a = static_cast<int32_t>(rs);
      const int32_t b = static_cast<int32_t>(rt);
      if (b == 0) {  // architecturally undefined; pick a deterministic result
        state.lo = 0;
        state.hi = rs;
      } else if (a == INT32_MIN && b == -1) {
        state.lo = static_cast<uint32_t>(INT32_MIN);
        state.hi = 0;
      } else {
        state.lo = static_cast<uint32_t>(a / b);
        state.hi = static_cast<uint32_t>(a % b);
      }
      break;
    }
    case Op::kDivu:
      if (rt == 0) {
        state.lo = 0;
        state.hi = rs;
      } else {
        state.lo = rs / rt;
        state.hi = rs % rt;
      }
      break;
    case Op::kMfhi: if (i.rd) state.regs[i.rd] = state.hi; break;
    case Op::kMflo: if (i.rd) state.regs[i.rd] = state.lo; break;
    case Op::kMthi: state.hi = rs; break;
    case Op::kMtlo: state.lo = rs; break;

    case Op::kJ:
      next_pc = ((state.pc + 4) & 0xF0000000u) | (i.target26 << 2);
      info.taken = true;
      break;
    case Op::kJal:
      state.regs[31] = state.pc + 4;
      next_pc = ((state.pc + 4) & 0xF0000000u) | (i.target26 << 2);
      info.taken = true;
      break;
    case Op::kJr:
      next_pc = rs;
      info.taken = true;
      break;
    case Op::kJalr:
      if (i.rd) state.regs[i.rd] = state.pc + 4;
      next_pc = rs;
      info.taken = true;
      break;

    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez: {
      info.is_branch = true;
      if (branch_taken(i, rs, rt)) {
        info.taken = true;
        next_pc = branch_target(i, state.pc);
      }
      break;
    }
    case Op::kBltzal: case Op::kBgezal: {
      info.is_branch = true;
      state.regs[31] = state.pc + 4;
      if (branch_taken(i, rs, rt)) {
        info.taken = true;
        next_pc = branch_target(i, state.pc);
      }
      break;
    }

    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu: {
      const uint32_t addr = effective_address(i, rs);
      info.mem_access = true;
      info.mem_addr = addr;
      uint32_t value = 0;
      switch (i.op) {
        case Op::kLb: value = static_cast<uint32_t>(static_cast<int8_t>(memory.read8(addr))); break;
        case Op::kLbu: value = memory.read8(addr); break;
        case Op::kLh: value = static_cast<uint32_t>(static_cast<int16_t>(memory.read16(addr))); break;
        case Op::kLhu: value = memory.read16(addr); break;
        default: value = memory.read32(addr); break;
      }
      if (i.rt) state.regs[i.rt] = value;
      break;
    }
    case Op::kSb: case Op::kSh: case Op::kSw: {
      const uint32_t addr = effective_address(i, rs);
      info.mem_access = true;
      info.mem_addr = addr;
      switch (i.op) {
        case Op::kSb: memory.write8(addr, static_cast<uint8_t>(rt)); break;
        case Op::kSh: memory.write16(addr, static_cast<uint16_t>(rt)); break;
        default: memory.write32(addr, rt); break;
      }
      break;
    }

    default: {  // every remaining ALU operation
      const uint32_t value = alu_eval(i, rs, rt);
      const int rd = isa::dest_reg(i);
      if (rd > 0) state.regs[rd] = value;
      break;
    }
  }

  state.regs[0] = 0;  // $zero is hardwired
  if (!state.halted) state.pc = next_pc;
  info.next_pc = state.pc;
  info.halted = state.halted;
  return info;
}

}  // namespace dim::sim
