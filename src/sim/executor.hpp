// Functional (architectural) execution of MIPS I instructions.
//
// The same evaluation helpers are reused by the reconfigurable array
// executor, which guarantees by construction that array results match the
// processor's — the transparency property the paper's technique requires.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/cpu_state.hpp"

namespace dim::sim {

// Pre-decoded instruction cache for the fetch/decode hot path. The
// simulation loop fetches the same few loop-body words millions of times;
// decoding each fetch from scratch dominates `step`. This direct-mapped
// host-side cache keeps the decoded form per PC and revalidates it against
// the freshly fetched word, so it is exact even under self-modifying code.
// It models nothing architectural and charges no cycles.
class DecodeCache {
 public:
  DecodeCache() : entries_(kEntries) {}

  const isa::Instr& get(uint32_t pc, uint32_t word) {
    Entry& e = entries_[(pc >> 2) & (kEntries - 1)];
    if (e.pc != pc || e.word != word) {
      e.pc = pc;
      e.word = word;
      e.instr = decode_word(word);
    }
    return e.instr;
  }

  // Drops every cached decode. Must be called when the backing image is
  // replaced wholesale (Machine::reset, snapshot restore): the per-fetch
  // word revalidation makes stale entries architecturally invisible, but
  // an explicit clear keeps the lifecycle contract greppable and is what
  // the superblock trace cache (whose entries are multi-word) relies on.
  void clear() {
    for (Entry& e : entries_) e = Entry{};
  }

 private:
  // PCs are word-aligned, so pc = 1 can never match a real fetch.
  struct Entry {
    uint32_t pc = 1;
    uint32_t word = 0;
    isa::Instr instr{};
  };
  static constexpr size_t kEntries = 4096;  // power of two (index mask)

  // Out-of-line so this header does not need the decoder's.
  static isa::Instr decode_word(uint32_t word);

  std::vector<Entry> entries_;
};

// Pure ALU evaluation (covers every FuKind::kAlu operation plus lui).
// `rs` / `rt` are the architectural source values.
uint32_t alu_eval(const isa::Instr& i, uint32_t rs, uint32_t rt);

// 32x32 -> 64 multiply as performed by mult/multu.
uint64_t mult_eval(isa::Op op, uint32_t rs, uint32_t rt);

// Conditional-branch outcome.
bool branch_taken(const isa::Instr& i, uint32_t rs, uint32_t rt);

// Target of a conditional branch located at `pc`.
uint32_t branch_target(const isa::Instr& i, uint32_t pc);

// Effective address of a load/store.
uint32_t effective_address(const isa::Instr& i, uint32_t rs);

// Width in bytes of a load/store operation.
int mem_width(isa::Op op);

// Executes one instruction at state.pc. Updates state and memory, returns
// the retirement record. Invalid opcodes and syscall exit halt the core.
// `decode_cache`, when provided, skips re-decoding previously seen words.
StepInfo step(CpuState& state, mem::Memory& memory, DecodeCache* decode_cache = nullptr);

}  // namespace dim::sim
