// Functional (architectural) execution of MIPS I instructions.
//
// The same evaluation helpers are reused by the reconfigurable array
// executor, which guarantees by construction that array results match the
// processor's — the transparency property the paper's technique requires.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/cpu_state.hpp"

namespace dim::sim {

// Pure ALU evaluation (covers every FuKind::kAlu operation plus lui).
// `rs` / `rt` are the architectural source values.
uint32_t alu_eval(const isa::Instr& i, uint32_t rs, uint32_t rt);

// 32x32 -> 64 multiply as performed by mult/multu.
uint64_t mult_eval(isa::Op op, uint32_t rs, uint32_t rt);

// Conditional-branch outcome.
bool branch_taken(const isa::Instr& i, uint32_t rs, uint32_t rt);

// Target of a conditional branch located at `pc`.
uint32_t branch_target(const isa::Instr& i, uint32_t pc);

// Effective address of a load/store.
uint32_t effective_address(const isa::Instr& i, uint32_t rs);

// Width in bytes of a load/store operation.
int mem_width(isa::Op op);

// Executes one instruction at state.pc. Updates state and memory, returns
// the retirement record. Invalid opcodes and syscall exit halt the core.
StepInfo step(CpuState& state, mem::Memory& memory);

}  // namespace dim::sim
