// Architectural state of the MIPS core plus the retired-instruction record
// consumed by the timing model, the profiler and the DIM engine.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/instruction.hpp"

namespace dim::sim {

struct CpuState {
  std::array<uint32_t, 32> regs{};
  uint32_t pc = 0;
  uint32_t hi = 0;
  uint32_t lo = 0;
  bool halted = false;
  std::string output;  // bytes written by print syscalls

  // Stable hash of the register file + HI/LO, for transparency checks.
  uint64_t reg_hash() const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint32_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    for (uint32_t r : regs) mix(r);
    mix(hi);
    mix(lo);
    return h;
  }
};

// Everything the rest of the system needs to know about one retired
// instruction.
struct StepInfo {
  isa::Instr instr;
  uint32_t pc = 0;
  uint32_t next_pc = 0;
  bool is_branch = false;  // conditional branch
  bool taken = false;      // branch outcome (also set for jumps)
  bool mem_access = false;
  uint32_t mem_addr = 0;
  bool halted = false;
};

}  // namespace dim::sim
