// Superblock trace cache: the host-side fast path of the simulator.
//
// The paper's bet is that caching translated units of straight-line work
// beats re-interpreting instruction by instruction; this applies the same
// trick to the simulator itself. Straight-line runs of pre-decoded
// instructions between control transfers are recorded once and then
// executed as whole traces via threaded dispatch (computed goto where the
// compiler supports it, a jump-table switch behind -DDIMSIM_PORTABLE_DISPATCH
// otherwise), with the pipeline timing model folded into per-trace
// precomputed cycle prefixes whenever the pipeline state permits.
//
// Transparency contract (pinned by tests/test_trace_cache.cpp and the
// dimsim-fuzz --cmp-dispatch campaign): a run with the trace cache enabled
// is bit-identical to the per-instruction slow path — registers, memory,
// output, retired counts, cycle accounting, stats and obs event streams.
//
// Formation rules:
//   - a trace starts at a PC once it has been seen twice as a trace head
//     (direct-mapped head table, so cold straight-line code is never traced)
//   - body ops are the straight-line subset of the ISA (ALU, shifts,
//     immediates, HI/LO arithmetic and moves, loads/stores)
//   - the first control transfer (conditional branch, j/jal/jr/jalr)
//     terminates the trace and is executed as its terminal op
//   - syscall/break/invalid words stop formation *before* them: the slow
//     path retires those
//   - formation stops at 0xFFFFFFFC: the fall-through there wraps the PC
//     to 0, breaking the pc+4 straight-line contract (the slow path
//     handles address-space wraparound; see test_executor)
//   - traces shorter than 3 instructions are rejected (dispatch overhead
//     would exceed the win); rejected heads are remembered
//
// Invalidation:
//   - every execution revalidates the trace's words against memory
//     (page-pointer memcmp, one page lookup per page spanned), so the
//     cache is exact under self-modifying code just like DecodeCache
//   - a store *into the executing trace's own code range* finishes that
//     store, then bails to the slow path (the interpreter would fetch the
//     freshly written word; the trace must not keep running stale ops)
//   - clear() drops everything: Machine::reset and snapshot restore call
//     it so no host-side decoded state survives an image replacement
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "sim/cpu_state.hpp"
#include "sim/executor.hpp"
#include "sim/pipeline.hpp"

namespace dim::sim {

// Host-level semantic kind of one trace op. Body kinds are straight-line;
// kinds >= kTBr are terminals (always the last op of their trace).
enum class TKind : uint8_t {
  // ALU, three-register
  kTAddu, kTSubu, kTAnd, kTOr, kTXor, kTNor, kTSlt, kTSltu,
  // shifts
  kTSllK, kTSrlK, kTSraK, kTSllv, kTSrlv, kTSrav,
  // immediates
  kTAddiu, kTSlti, kTSltiu, kTAndi, kTOri, kTXori, kTLui,
  // HI/LO
  kTMult, kTMultu, kTDiv, kTDivu, kTMfhi, kTMflo, kTMthi, kTMtlo,
  // memory
  kTLb, kTLbu, kTLh, kTLhu, kTLw, kTSb, kTSh, kTSw,
  // terminals
  kTBr, kTBrLink, kTJ, kTJal, kTJr, kTJalr,
};

inline bool tkind_is_terminal(TKind k) { return k >= TKind::kTBr; }

// One pre-decoded trace op: operand indexes and immediates are extracted
// once at formation time, and the timing model's classification
// (RetireRecord) is precomputed so per-op timing costs one call with no
// re-classification.
struct TraceOp {
  TKind kind = TKind::kTAddu;
  uint8_t a = 0;   // rs-class operand (base register, shift amount source)
  uint8_t b = 0;   // rt-class operand (value register)
  uint8_t d = 0;   // destination register; 0 = architectural no-write
  int32_t imm = 0;  // sign-/zero-extended immediate, shamt, lui value,
                    // or precomputed branch/jump target (terminals)
  uint32_t pc = 0;
  int8_t pending_after = -1;  // pipeline pending_load_reg after this op
  isa::Instr instr{};         // exact decoded form (StepInfo reconstruction)
  RetireRecord rec{};         // static timing classification (pc preset)
};

struct Trace {
  uint32_t start_pc = 1;  // word-aligned; 1 = unused slot
  uint64_t end64 = 0;     // start_pc + 4 * words (64-bit: no wrap ambiguity)
  std::vector<TraceOp> ops;
  std::vector<uint32_t> words;  // fetched encodings, for revalidation
  // Folded timing (valid when `foldable` and PipelineModel::fold_eligible):
  // stall_prefix[k] = number of internal load-use stalls among the first k
  // ops, assuming no pending load at entry (corrected dynamically from op
  // 0's sources). Folded cycles for k ops = k + stall_prefix[k] * stall +
  // entry correction + dynamic taken penalty — counts, not cycles, so the
  // trace is independent of the TimingParams stall values.
  std::vector<uint8_t> stall_prefix;
  bool foldable = false;  // no HI/LO writers or readers in the trace
};

struct TraceStats {
  uint64_t traces_built = 0;
  uint64_t executions = 0;      // trace entries that retired >= 1 op
  uint64_t ops_executed = 0;
  uint64_t folded_executions = 0;  // entries that used precomputed timing
  uint64_t revalidation_rebuilds = 0;  // stale words at entry -> rebuilt
  uint64_t smc_bails = 0;       // store into the live trace's code range
  uint64_t rejected_heads = 0;  // head built but below the minimum length
  uint64_t dispatch_stops = 0;  // accel: rcache hit at a trace-interior PC
};

struct TraceExecResult {
  uint64_t executed = 0;         // instructions retired by this entry
  bool dispatch_stop = false;    // env asked to stop before an interior op
  bool terminal_executed = false;
  bool terminal_taken = false;
};

// 1-entry host TLB over mem::Memory pages for trace-interior loads/stores:
// one hash lookup per page *change* instead of per access. Pointers are
// stable until restore_pages (see mem::Memory::page_data); TraceCache::clear
// resets it. Null pages are not cached so a later allocating store is seen.
struct DataTlb {
  uint32_t key = 0xFFFFFFFFu;  // page index (addr >> kPageBits), sentinel
  uint8_t* data = nullptr;
};

namespace trace_detail {

inline uint8_t* tlb_page(DataTlb& tlb, mem::Memory& mem, uint32_t addr) {
  const uint32_t key = addr >> mem::Memory::kPageBits;
  if (tlb.key == key) return tlb.data;
  uint8_t* p = mem.page_data_mut(addr);
  if (p != nullptr) {
    tlb.key = key;
    tlb.data = p;
  }
  return p;
}

constexpr uint32_t kOffMask = mem::Memory::kPageSize - 1;

inline uint32_t t_read8(DataTlb& tlb, mem::Memory& mem, uint32_t addr) {
  if (uint8_t* p = tlb_page(tlb, mem, addr)) return p[addr & kOffMask];
  return mem.read8(addr);
}

inline uint32_t t_read16(DataTlb& tlb, mem::Memory& mem, uint32_t addr) {
  const uint32_t off = addr & kOffMask;
  if (off <= mem::Memory::kPageSize - 2) {
    if (uint8_t* p = tlb_page(tlb, mem, addr)) {
      return static_cast<uint32_t>(p[off]) | (static_cast<uint32_t>(p[off + 1]) << 8);
    }
  }
  return mem.read16(addr);
}

inline uint32_t t_read32(DataTlb& tlb, mem::Memory& mem, uint32_t addr) {
  const uint32_t off = addr & kOffMask;
  if (off <= mem::Memory::kPageSize - 4) {
    if (uint8_t* p = tlb_page(tlb, mem, addr)) {
      return static_cast<uint32_t>(p[off]) | (static_cast<uint32_t>(p[off + 1]) << 8) |
             (static_cast<uint32_t>(p[off + 2]) << 16) |
             (static_cast<uint32_t>(p[off + 3]) << 24);
    }
  }
  return mem.read32(addr);
}

inline void t_write8(DataTlb& tlb, mem::Memory& mem, uint32_t addr, uint8_t v) {
  if (uint8_t* p = tlb_page(tlb, mem, addr)) {
    p[addr & kOffMask] = v;
    return;
  }
  mem.write8(addr, v);  // allocates; the next tlb_page re-resolves
}

inline void t_write16(DataTlb& tlb, mem::Memory& mem, uint32_t addr, uint16_t v) {
  const uint32_t off = addr & kOffMask;
  if (off <= mem::Memory::kPageSize - 2) {
    if (uint8_t* p = tlb_page(tlb, mem, addr)) {
      p[off] = static_cast<uint8_t>(v);
      p[off + 1] = static_cast<uint8_t>(v >> 8);
      return;
    }
  }
  mem.write16(addr, v);
}

inline void t_write32(DataTlb& tlb, mem::Memory& mem, uint32_t addr, uint32_t v) {
  const uint32_t off = addr & kOffMask;
  if (off <= mem::Memory::kPageSize - 4) {
    if (uint8_t* p = tlb_page(tlb, mem, addr)) {
      p[off] = static_cast<uint8_t>(v);
      p[off + 1] = static_cast<uint8_t>(v >> 8);
      p[off + 2] = static_cast<uint8_t>(v >> 16);
      p[off + 3] = static_cast<uint8_t>(v >> 24);
      return;
    }
  }
  mem.write32(addr, v);
}

}  // namespace trace_detail

class TraceCache {
 public:
  TraceCache() : slots_(kSlots) {}

  // Traces never hold pointers, but the data TLB does; a copied cache must
  // not alias the source's Memory, so copies start with a cold TLB.
  TraceCache(const TraceCache& o) : slots_(o.slots_), stats_(o.stats_) {}
  TraceCache& operator=(const TraceCache& o) {
    slots_ = o.slots_;
    stats_ = o.stats_;
    tlb_ = DataTlb{};
    return *this;
  }

  // Baseline fast path (Machine::run): executes a trace at state.pc if one
  // is hot and valid, charging cycles exactly as per-instruction retires
  // would (folded when the pipeline state permits). Returns instructions
  // retired (0 = no trace; caller takes the slow path) and adds this
  // entry's memory accesses to *mem_accesses. Executes at most `budget`
  // instructions (must be >= 1).
  uint64_t step_baseline(CpuState& state, mem::Memory& memory, PipelineModel& pipeline,
                         uint64_t budget, uint64_t* mem_accesses);

  // Hooked fast path (AcceleratedSystem): Env supplies the per-op
  // behavior the accelerated loop needs between DIM dispatches:
  //   static constexpr bool kDispatchProbe;        // probe before interior ops
  //   bool pre_dispatch(uint32_t pc);              // true = stop before pc
  //   void retired(const TraceOp&, uint32_t next_pc, bool taken,
  //                bool mem_access, uint32_t mem_addr);
  // retired() owns timing/stats/observation, so ordering matches the slow
  // loop exactly. pre_dispatch is NOT called for op 0 (the caller already
  // probed that boundary).
  template <class Env>
  TraceExecResult step_env(CpuState& state, mem::Memory& memory, uint64_t budget,
                           Env& env) {
    Trace* t = hot_trace(state.pc, memory);
    if (t == nullptr) return {};
    return execute<Env>(*t, state, memory, budget, env);
  }

  // Drops every trace, head counter and cached page pointer. Must be
  // called whenever the backing image is replaced (Machine::reset,
  // snapshot restore) — revalidation would catch stale words, but head
  // heat, rejection flags and the TLB are not word-checked.
  void clear() {
    for (Slot& s : slots_) s = Slot{};
    tlb_ = DataTlb{};
    stats_ = TraceStats{};
  }

  const TraceStats& stats() const { return stats_; }

  // Formation/validation introspection for tests.
  const Trace* peek(uint32_t pc) const {
    const Slot& s = slots_[slot_index(pc)];
    return (s.head == pc && !s.rejected) ? &s.trace : nullptr;
  }

  static constexpr size_t kMaxOps = 64;  // longest trace (<= 256 bytes of code)
  static constexpr size_t kMinOps = 3;   // below this, dispatch overhead wins
  static constexpr uint8_t kHeat = 2;    // head visits before formation

  // Core executor, shared by step_baseline and step_env (public so the
  // envs in machine.cpp / system.cpp can instantiate it; not a stable API).
  template <class Env>
  TraceExecResult execute(Trace& t, CpuState& st, mem::Memory& mem, uint64_t budget,
                          Env& env);

 private:
  struct Slot {
    uint32_t head = 1;      // established trace head (1 = none)
    bool rejected = false;  // head built but below kMinOps
    uint32_t cand_pc = 1;   // rival head warming up
    uint8_t cand_heat = 0;
    Trace trace;
  };
  static constexpr size_t kSlots = 4096;

  static size_t slot_index(uint32_t pc) { return (pc >> 2) & (kSlots - 1); }

  // Heat accounting + revalidation + (re)formation. Returns the valid hot
  // trace at `pc`, or nullptr (slow path).
  Trace* hot_trace(uint32_t pc, const mem::Memory& memory);

  bool build_trace(Trace& t, uint32_t pc, const mem::Memory& memory) const;
  bool validate(const Trace& t, const mem::Memory& memory) const;

  std::vector<Slot> slots_;
  DataTlb tlb_;
  TraceStats stats_;
};

// --- Core trace executor -----------------------------------------------
//
// One copy of every handler; the two dispatch builds differ only in how
// the next handler is reached. With computed goto (GCC/Clang, default)
// each handler jumps straight to the next op's handler; the portable
// build (-DDIMSIM_PORTABLE_DISPATCH or other compilers) routes through a
// jump-table switch.
#if !defined(DIMSIM_PORTABLE_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define DIMSIM_TRACE_THREADED 1
#else
#define DIMSIM_TRACE_THREADED 0
#endif

template <class Env>
TraceExecResult TraceCache::execute(Trace& t, CpuState& st, mem::Memory& mem,
                                    uint64_t budget, Env& env) {
  using trace_detail::t_read16;
  using trace_detail::t_read32;
  using trace_detail::t_read8;
  using trace_detail::t_write16;
  using trace_detail::t_write32;
  using trace_detail::t_write8;

  TraceExecResult result;
  const size_t limit =
      budget < t.ops.size() ? static_cast<size_t>(budget) : t.ops.size();
  if (limit == 0) return result;
  uint32_t* const r = st.regs.data();
  r[0] = 0;  // step() maintains this invariant after every retire
  DataTlb& tlb = tlb_;
  size_t i = 0;
  const TraceOp* op = &t.ops[0];

// Handler epilogues. RETIRE_LINEAR advances past a straight-line op;
// terminals set the next PC and leave. A store that hit the trace's own
// code range retires normally, then bails (the interpreter would fetch
// the freshly written word for the next op).
#define DIMSIM_RETIRE(next_pc, taken, memacc, addr) \
  env.retired(*op, (next_pc), (taken), (memacc), (addr))

#if DIMSIM_TRACE_THREADED
#define DIMSIM_GOTO_KIND() goto* kLabels[static_cast<size_t>(op->kind)]
#else
#define DIMSIM_GOTO_KIND() goto dispatch_switch
#endif

#define DIMSIM_NEXT()                          \
  do {                                         \
    if (++i >= limit) goto out_budget;         \
    op = &t.ops[i];                            \
    if constexpr (Env::kDispatchProbe) {       \
      if (env.pre_dispatch(op->pc)) {          \
        st.pc = op->pc;                        \
        result.dispatch_stop = true;           \
        ++stats_.dispatch_stops;               \
        goto out;                              \
      }                                        \
    }                                          \
    DIMSIM_GOTO_KIND();                        \
  } while (0)

#define DIMSIM_RETIRE_LINEAR() \
  do {                         \
    DIMSIM_RETIRE(op->pc + 4, false, false, 0); \
    DIMSIM_NEXT();             \
  } while (0)

#define DIMSIM_STORE_TAIL(addr, width)                                        \
  do {                                                                        \
    DIMSIM_RETIRE(op->pc + 4, false, true, (addr));                           \
    const uint64_t a64 = static_cast<uint64_t>(addr);                         \
    if (a64 + (width) > t.start_pc && a64 < t.end64) {                        \
      ++stats_.smc_bails;                                                     \
      st.pc = op->pc + 4;                                                     \
      i += 1;                                                                 \
      goto out;                                                               \
    }                                                                         \
    DIMSIM_NEXT();                                                            \
  } while (0)

#if DIMSIM_TRACE_THREADED
  static const void* const kLabels[] = {
      &&H_TAddu, &&H_TSubu, &&H_TAnd, &&H_TOr, &&H_TXor, &&H_TNor, &&H_TSlt,
      &&H_TSltu, &&H_TSllK, &&H_TSrlK, &&H_TSraK, &&H_TSllv, &&H_TSrlv,
      &&H_TSrav, &&H_TAddiu, &&H_TSlti, &&H_TSltiu, &&H_TAndi, &&H_TOri,
      &&H_TXori, &&H_TLui, &&H_TMult, &&H_TMultu, &&H_TDiv, &&H_TDivu,
      &&H_TMfhi, &&H_TMflo, &&H_TMthi, &&H_TMtlo, &&H_TLb, &&H_TLbu, &&H_TLh,
      &&H_TLhu, &&H_TLw, &&H_TSb, &&H_TSh, &&H_TSw, &&H_TBr, &&H_TBrLink,
      &&H_TJ, &&H_TJal, &&H_TJr, &&H_TJalr,
  };
  DIMSIM_GOTO_KIND();
#else
dispatch_switch:
  switch (op->kind) {
    case TKind::kTAddu: goto H_TAddu;
    case TKind::kTSubu: goto H_TSubu;
    case TKind::kTAnd: goto H_TAnd;
    case TKind::kTOr: goto H_TOr;
    case TKind::kTXor: goto H_TXor;
    case TKind::kTNor: goto H_TNor;
    case TKind::kTSlt: goto H_TSlt;
    case TKind::kTSltu: goto H_TSltu;
    case TKind::kTSllK: goto H_TSllK;
    case TKind::kTSrlK: goto H_TSrlK;
    case TKind::kTSraK: goto H_TSraK;
    case TKind::kTSllv: goto H_TSllv;
    case TKind::kTSrlv: goto H_TSrlv;
    case TKind::kTSrav: goto H_TSrav;
    case TKind::kTAddiu: goto H_TAddiu;
    case TKind::kTSlti: goto H_TSlti;
    case TKind::kTSltiu: goto H_TSltiu;
    case TKind::kTAndi: goto H_TAndi;
    case TKind::kTOri: goto H_TOri;
    case TKind::kTXori: goto H_TXori;
    case TKind::kTLui: goto H_TLui;
    case TKind::kTMult: goto H_TMult;
    case TKind::kTMultu: goto H_TMultu;
    case TKind::kTDiv: goto H_TDiv;
    case TKind::kTDivu: goto H_TDivu;
    case TKind::kTMfhi: goto H_TMfhi;
    case TKind::kTMflo: goto H_TMflo;
    case TKind::kTMthi: goto H_TMthi;
    case TKind::kTMtlo: goto H_TMtlo;
    case TKind::kTLb: goto H_TLb;
    case TKind::kTLbu: goto H_TLbu;
    case TKind::kTLh: goto H_TLh;
    case TKind::kTLhu: goto H_TLhu;
    case TKind::kTLw: goto H_TLw;
    case TKind::kTSb: goto H_TSb;
    case TKind::kTSh: goto H_TSh;
    case TKind::kTSw: goto H_TSw;
    case TKind::kTBr: goto H_TBr;
    case TKind::kTBrLink: goto H_TBrLink;
    case TKind::kTJ: goto H_TJ;
    case TKind::kTJal: goto H_TJal;
    case TKind::kTJr: goto H_TJr;
    case TKind::kTJalr: goto H_TJalr;
  }
  goto out_budget;  // unreachable; silences -Wimplicit-fallthrough
#endif

// --- straight-line ALU --------------------------------------------------
H_TAddu:
  if (op->d) r[op->d] = r[op->a] + r[op->b];
  DIMSIM_RETIRE_LINEAR();
H_TSubu:
  if (op->d) r[op->d] = r[op->a] - r[op->b];
  DIMSIM_RETIRE_LINEAR();
H_TAnd:
  if (op->d) r[op->d] = r[op->a] & r[op->b];
  DIMSIM_RETIRE_LINEAR();
H_TOr:
  if (op->d) r[op->d] = r[op->a] | r[op->b];
  DIMSIM_RETIRE_LINEAR();
H_TXor:
  if (op->d) r[op->d] = r[op->a] ^ r[op->b];
  DIMSIM_RETIRE_LINEAR();
H_TNor:
  if (op->d) r[op->d] = ~(r[op->a] | r[op->b]);
  DIMSIM_RETIRE_LINEAR();
H_TSlt:
  if (op->d) {
    r[op->d] = static_cast<int32_t>(r[op->a]) < static_cast<int32_t>(r[op->b]) ? 1u : 0u;
  }
  DIMSIM_RETIRE_LINEAR();
H_TSltu:
  if (op->d) r[op->d] = r[op->a] < r[op->b] ? 1u : 0u;
  DIMSIM_RETIRE_LINEAR();
H_TSllK:
  if (op->d) r[op->d] = r[op->b] << op->imm;
  DIMSIM_RETIRE_LINEAR();
H_TSrlK:
  if (op->d) r[op->d] = r[op->b] >> op->imm;
  DIMSIM_RETIRE_LINEAR();
H_TSraK:
  if (op->d) {
    r[op->d] = static_cast<uint32_t>(static_cast<int32_t>(r[op->b]) >> op->imm);
  }
  DIMSIM_RETIRE_LINEAR();
H_TSllv:
  if (op->d) r[op->d] = r[op->b] << (r[op->a] & 31);
  DIMSIM_RETIRE_LINEAR();
H_TSrlv:
  if (op->d) r[op->d] = r[op->b] >> (r[op->a] & 31);
  DIMSIM_RETIRE_LINEAR();
H_TSrav:
  if (op->d) {
    r[op->d] = static_cast<uint32_t>(static_cast<int32_t>(r[op->b]) >> (r[op->a] & 31));
  }
  DIMSIM_RETIRE_LINEAR();
H_TAddiu:
  if (op->d) r[op->d] = r[op->a] + static_cast<uint32_t>(op->imm);
  DIMSIM_RETIRE_LINEAR();
H_TSlti:
  if (op->d) r[op->d] = static_cast<int32_t>(r[op->a]) < op->imm ? 1u : 0u;
  DIMSIM_RETIRE_LINEAR();
H_TSltiu:
  if (op->d) r[op->d] = r[op->a] < static_cast<uint32_t>(op->imm) ? 1u : 0u;
  DIMSIM_RETIRE_LINEAR();
H_TAndi:
  if (op->d) r[op->d] = r[op->a] & static_cast<uint32_t>(op->imm);
  DIMSIM_RETIRE_LINEAR();
H_TOri:
  if (op->d) r[op->d] = r[op->a] | static_cast<uint32_t>(op->imm);
  DIMSIM_RETIRE_LINEAR();
H_TXori:
  if (op->d) r[op->d] = r[op->a] ^ static_cast<uint32_t>(op->imm);
  DIMSIM_RETIRE_LINEAR();
H_TLui:
  if (op->d) r[op->d] = static_cast<uint32_t>(op->imm);  // value precomputed
  DIMSIM_RETIRE_LINEAR();

// --- HI/LO --------------------------------------------------------------
H_TMult: {
  const uint64_t p = mult_eval(isa::Op::kMult, r[op->a], r[op->b]);
  st.lo = static_cast<uint32_t>(p);
  st.hi = static_cast<uint32_t>(p >> 32);
  DIMSIM_RETIRE_LINEAR();
}
H_TMultu: {
  const uint64_t p = mult_eval(isa::Op::kMultu, r[op->a], r[op->b]);
  st.lo = static_cast<uint32_t>(p);
  st.hi = static_cast<uint32_t>(p >> 32);
  DIMSIM_RETIRE_LINEAR();
}
H_TDiv: {
  const int32_t a = static_cast<int32_t>(r[op->a]);
  const int32_t b = static_cast<int32_t>(r[op->b]);
  if (b == 0) {  // step()'s deterministic choice for the undefined case
    st.lo = 0;
    st.hi = r[op->a];
  } else if (a == INT32_MIN && b == -1) {
    st.lo = static_cast<uint32_t>(INT32_MIN);
    st.hi = 0;
  } else {
    st.lo = static_cast<uint32_t>(a / b);
    st.hi = static_cast<uint32_t>(a % b);
  }
  DIMSIM_RETIRE_LINEAR();
}
H_TDivu: {
  const uint32_t a = r[op->a];
  const uint32_t b = r[op->b];
  if (b == 0) {
    st.lo = 0;
    st.hi = a;
  } else {
    st.lo = a / b;
    st.hi = a % b;
  }
  DIMSIM_RETIRE_LINEAR();
}
H_TMfhi:
  if (op->d) r[op->d] = st.hi;
  DIMSIM_RETIRE_LINEAR();
H_TMflo:
  if (op->d) r[op->d] = st.lo;
  DIMSIM_RETIRE_LINEAR();
H_TMthi:
  st.hi = r[op->a];
  DIMSIM_RETIRE_LINEAR();
H_TMtlo:
  st.lo = r[op->a];
  DIMSIM_RETIRE_LINEAR();

// --- memory -------------------------------------------------------------
H_TLb: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  const uint32_t v =
      static_cast<uint32_t>(static_cast<int8_t>(t_read8(tlb, mem, addr)));
  if (op->d) r[op->d] = v;
  DIMSIM_RETIRE(op->pc + 4, false, true, addr);
  DIMSIM_NEXT();
}
H_TLbu: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  const uint32_t v = t_read8(tlb, mem, addr);
  if (op->d) r[op->d] = v;
  DIMSIM_RETIRE(op->pc + 4, false, true, addr);
  DIMSIM_NEXT();
}
H_TLh: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  const uint32_t v = static_cast<uint32_t>(
      static_cast<int16_t>(t_read16(tlb, mem, addr)));
  if (op->d) r[op->d] = v;
  DIMSIM_RETIRE(op->pc + 4, false, true, addr);
  DIMSIM_NEXT();
}
H_TLhu: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  const uint32_t v = t_read16(tlb, mem, addr);
  if (op->d) r[op->d] = v;
  DIMSIM_RETIRE(op->pc + 4, false, true, addr);
  DIMSIM_NEXT();
}
H_TLw: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  const uint32_t v = t_read32(tlb, mem, addr);
  if (op->d) r[op->d] = v;
  DIMSIM_RETIRE(op->pc + 4, false, true, addr);
  DIMSIM_NEXT();
}
H_TSb: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  t_write8(tlb, mem, addr, static_cast<uint8_t>(r[op->b]));
  DIMSIM_STORE_TAIL(addr, 1);
}
H_TSh: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  t_write16(tlb, mem, addr, static_cast<uint16_t>(r[op->b]));
  DIMSIM_STORE_TAIL(addr, 2);
}
H_TSw: {
  const uint32_t addr = r[op->a] + static_cast<uint32_t>(op->imm);
  t_write32(tlb, mem, addr, r[op->b]);
  DIMSIM_STORE_TAIL(addr, 4);
}

// --- terminals ----------------------------------------------------------
H_TBr: {
  const bool taken = branch_taken(op->instr, r[op->a], r[op->b]);
  const uint32_t next = taken ? static_cast<uint32_t>(op->imm) : op->pc + 4;
  DIMSIM_RETIRE(next, taken, false, 0);
  st.pc = next;
  result.terminal_taken = taken;
  goto out_terminal;
}
H_TBrLink: {
  r[31] = op->pc + 4;  // bltzal/bgezal link unconditionally, like step()
  const bool taken = branch_taken(op->instr, r[op->a], r[op->b]);
  const uint32_t next = taken ? static_cast<uint32_t>(op->imm) : op->pc + 4;
  DIMSIM_RETIRE(next, taken, false, 0);
  st.pc = next;
  result.terminal_taken = taken;
  goto out_terminal;
}
H_TJ: {
  const uint32_t next = static_cast<uint32_t>(op->imm);
  DIMSIM_RETIRE(next, true, false, 0);
  st.pc = next;
  result.terminal_taken = true;
  goto out_terminal;
}
H_TJal: {
  const uint32_t next = static_cast<uint32_t>(op->imm);
  r[31] = op->pc + 4;
  DIMSIM_RETIRE(next, true, false, 0);
  st.pc = next;
  result.terminal_taken = true;
  goto out_terminal;
}
H_TJr: {
  const uint32_t next = r[op->a];
  DIMSIM_RETIRE(next, true, false, 0);
  st.pc = next;
  result.terminal_taken = true;
  goto out_terminal;
}
H_TJalr: {
  const uint32_t next = r[op->a];  // read before the link write (rd may == rs)
  if (op->d) r[op->d] = op->pc + 4;
  DIMSIM_RETIRE(next, true, false, 0);
  st.pc = next;
  result.terminal_taken = true;
  goto out_terminal;
}

out_terminal:
  i += 1;
  result.terminal_executed = true;
  goto out;

out_budget:
  // op still points at the last executed (straight-line) instruction.
  st.pc = op->pc + 4;
  goto out;

out:
  result.executed = static_cast<uint64_t>(i);
  ++stats_.executions;
  stats_.ops_executed += result.executed;
  return result;

#undef DIMSIM_RETIRE
#undef DIMSIM_GOTO_KIND
#undef DIMSIM_NEXT
#undef DIMSIM_RETIRE_LINEAR
#undef DIMSIM_STORE_TAIL
}

}  // namespace dim::sim
