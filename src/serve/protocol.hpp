// Request/response schema of the serving protocol (docs/serving.md).
//
// One JSON object per line in, exactly one JSON object per line out, in
// per-session admission order. Every request carries an `id` (string or
// non-negative integer) that its response echoes; responses are `{"id":
// ..., "ok": true, ...}` or `{"id": ..., "ok": false, "error": "<code>",
// "detail": "..."}`. Response bodies for simulation requests reuse the
// accel::write_json_fields schema, newline-folded onto one line, so a
// serve client sees exactly the stats a sweep artifact would contain.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "accel/stats.hpp"
#include "accel/sweep.hpp"

namespace dim::serve {

enum class RequestKind {
  kPing,      // liveness probe
  kRun,       // one accelerated run (optionally budgeted / warm-started)
  kSweep,     // a grid of points, batched into the shared SweepEngine
  kFuzz,      // a differential fuzz campaign
  kStats,     // server counters (admission, batches, store, warm pool)
  kCancel,    // best-effort cancellation of a queued or budgeted request
  kShutdown,  // stop accepting, drain, exit
};

// Error codes of `"ok": false` responses (stable API, see docs/serving.md).
inline constexpr const char* kErrParse = "parse_error";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownWorkload = "unknown_workload";
inline constexpr const char* kErrZeroBudget = "zero_budget";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExpired = "deadline_expired";
inline constexpr const char* kErrCanceled = "canceled";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal";

// Admission bound on one request line. Inline-source programs fit with
// room to spare; anything larger is hostile (or a framing bug) and is
// answered `parse_error` before the JSON parser ever touches it.
inline constexpr size_t kMaxRequestBytes = 256 * 1024;

// Protocol bound on the `priority` field.
inline constexpr int kMaxPriority = 9;

// The client-chosen request id, echoed verbatim into the response.
struct RequestId {
  bool is_string = false;
  std::string text;  // string value, or the integer's decimal digits
};

// One axis point of a run/sweep: named array shape + rcache slots +
// speculation, over a registry workload (name + scale) or inline source.
struct Request {
  RequestKind kind = RequestKind::kPing;
  RequestId id;

  // run / sweep program selection.
  std::string workload;  // registry name; empty when `source` is inline asm
  int scale = 1;
  std::string source;

  // run configuration.
  std::string shape = "config1";  // config1|config2|config3|ideal
  uint64_t slots = 64;
  bool speculation = true;
  bool want_baseline = true;
  uint64_t budget = 0;  // 0 = no per-request budget (machine default cap)
  bool warm = false;    // preload/export the resident warm-start pool

  // scheduling (run/sweep/fuzz). `priority` in [0, kMaxPriority], higher
  // pops first; `deadline_ms` is a relative admission deadline — if the
  // request is still queued when a dispatcher picks it up past the
  // deadline it is answered `deadline_expired` (0 = already expired,
  // useful for pinning that path deterministically).
  int priority = 0;
  bool has_deadline = false;
  uint64_t deadline_ms = 0;

  // sweep axes (cross product; empty axis = the run default above).
  std::vector<std::string> shapes;
  std::vector<uint64_t> slots_axis;
  std::vector<bool> spec_axis;

  // fuzz.
  int seeds = 10;
  uint64_t seed_start = 0;
  std::string matrix = "quick";  // quick|full

  // cancel.
  RequestId target;
};

struct ParseOutcome {
  bool ok = false;
  Request request;
  std::string error;   // error code when !ok
  std::string detail;  // human-readable cause
  // Best-effort id recovered from the malformed request so the error
  // response can still be correlated; empty text = no id found.
  RequestId id;
};

// Parses and validates one request line. Never throws: malformed JSON,
// unknown kinds, missing ids and out-of-range fields all come back as
// `ok == false` with the error code the response must carry. Enforces the
// protocol-level invariants the executor relies on: a present `budget`
// must be positive (a zero budget would simulate nothing and divide
// speedups by zero cycles) and sweep axes must be non-empty lists.
ParseOutcome parse_request(const std::string& line);

// --- response writers (each emits exactly one '\n'-terminated line) ------

void write_ok_prefix(std::ostream& out, const RequestId& id);  // no closing '}'
void write_error_response(std::ostream& out, const RequestId& id,
                          const std::string& error, const std::string& detail);
void write_pong_response(std::ostream& out, const RequestId& id);

// `stats` folded to a single line via the write_json_fields schema.
void write_stats_object(std::ostream& out, const accel::AccelStats& stats);

struct RunResponse {
  accel::AccelStats accelerated;
  bool has_baseline = false;
  accel::AccelStats baseline;
  bool transparent = true;
  bool halted = false;
  bool hit_budget = false;  // stopped by the per-request budget
  uint64_t budget = 0;
  size_t warm_preloaded = 0;  // configurations preloaded from the warm pool
  bool warm_exported = false; // this run's rcache was exported to the pool
};
void write_run_response(std::ostream& out, const RequestId& id, const RunResponse& r);

// Per-request store-hit attribution is deliberately absent from run/sweep
// responses: whether a cell was resident depends on what other requests
// happened to share the batch, and response bytes must not vary with batch
// composition. Store temperature is observable via `stats` instead.
void write_sweep_response(std::ostream& out, const RequestId& id,
                          const std::vector<accel::SweepResult>& results);

struct FuzzResponse {
  int seeds_run = 0;
  int divergent = 0;
  int inconclusive = 0;
};
void write_fuzz_response(std::ostream& out, const RequestId& id, const FuzzResponse& r);

}  // namespace dim::serve
