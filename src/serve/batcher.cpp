#include "serve/batcher.hpp"

#include <stdexcept>

namespace dim::serve {

rra::ArrayShape shape_by_name(const std::string& name) {
  if (name == "config1") return rra::ArrayShape::config1();
  if (name == "config2") return rra::ArrayShape::config2();
  if (name == "config3") return rra::ArrayShape::config3();
  if (name == "ideal") return rra::ArrayShape::ideal();
  throw std::invalid_argument("unknown array shape: " + name);
}

accel::SystemConfig config_for(const std::string& shape, uint64_t slots,
                               bool speculation) {
  return accel::SystemConfig::with(shape_by_name(shape),
                                   static_cast<size_t>(slots), speculation);
}

std::vector<accel::SweepPoint> expand_points(const Request& request,
                                             const asmblr::Program& program) {
  std::vector<accel::SweepPoint> points;
  if (request.kind == RequestKind::kRun) {
    accel::SweepPoint p;
    p.label = request.shape + "/s" + std::to_string(request.slots) +
              (request.speculation ? "/sp" : "/ns");
    p.program = &program;
    p.config = config_for(request.shape, request.slots, request.speculation);
    p.run_baseline = request.want_baseline;
    points.push_back(std::move(p));
    return points;
  }
  for (const std::string& shape : request.shapes) {
    for (const uint64_t slots : request.slots_axis) {
      for (const bool spec : request.spec_axis) {
        accel::SweepPoint p;
        p.label = shape + "/s" + std::to_string(slots) + (spec ? "/sp" : "/ns");
        p.program = &program;
        p.config = config_for(shape, slots, spec);
        p.run_baseline = request.want_baseline;
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

std::vector<accel::SweepResult> split_slice(
    const std::vector<accel::SweepResult>& combined, const BatchSlice& slice) {
  std::vector<accel::SweepResult> out;
  out.reserve(slice.end - slice.begin);
  for (size_t i = slice.begin; i < slice.end; ++i) {
    accel::SweepResult r = combined[i];
    r.index = i - slice.begin;  // as if the request had run alone
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dim::serve
