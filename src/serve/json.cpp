#include "serve/json.hpp"

#include <cmath>
#include <cstdlib>

namespace dim::serve {
namespace {

constexpr int kMaxDepth = 32;  // request lines are flat; anything deeper is hostile

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const {
    if (done()) throw JsonError("unexpected end of input", pos_);
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (!done()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f':
        return parse_keyword_bool();
      case 'n':
        parse_keyword("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object) {
        if (existing == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x80) {
          out.push_back(c);
        } else {
          append_utf8_sequence(static_cast<unsigned char>(c), out);
        }
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default:
          --pos_;
          fail("bad escape");
      }
    }
  }

  // Validates a raw (non-escape) multi-byte UTF-8 sequence whose lead
  // byte was already taken. Truncated sequences, stray continuation
  // bytes, overlong encodings, surrogates and codepoints past U+10FFFF
  // are all parse errors — request strings are echoed into responses, so
  // letting malformed bytes through would corrupt the output stream.
  void append_utf8_sequence(unsigned char lead, std::string& out) {
    int len;
    uint32_t cp;
    if ((lead & 0xE0) == 0xC0) {
      len = 2;
      cp = lead & 0x1Fu;
    } else if ((lead & 0xF0) == 0xE0) {
      len = 3;
      cp = lead & 0x0Fu;
    } else if ((lead & 0xF8) == 0xF0) {
      len = 4;
      cp = lead & 0x07u;
    } else {
      --pos_;
      fail("invalid UTF-8 in string");
    }
    out.push_back(static_cast<char>(lead));
    for (int i = 1; i < len; ++i) {
      if (done()) fail("invalid UTF-8 in string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if ((c & 0xC0) != 0x80) fail("invalid UTF-8 in string");
      ++pos_;
      cp = (cp << 6) | (c & 0x3Fu);
      out.push_back(static_cast<char>(c));
    }
    static constexpr uint32_t kMinByLen[] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMinByLen[len] || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      fail("invalid UTF-8 in string");
    }
  }

  uint32_t parse_hex4() {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: a low one must follow
      if (done() || take() != '\\' || take() != 'u') {
        fail("unpaired surrogate");
      }
      const uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_keyword_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      parse_keyword("true");
      v.boolean = true;
    } else {
      parse_keyword("false");
      v.boolean = false;
    }
    return v;
  }

  void parse_keyword(std::string_view word) {
    for (const char c : word) {
      if (done() || text_[pos_] != c) fail("bad keyword");
      ++pos_;
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (!done() && text_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      size_t n = 0;
      while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const size_t int_digits = digits();
    if (int_digits == 0) fail("expected a value");
    // JSON forbids leading zeros ("01"); "0" and "0.5" are fine.
    const size_t int_start = text_[start] == '-' ? start + 1 : start;
    if (int_digits > 1 && text_[int_start] == '0') fail("leading zero");
    if (!done() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits must follow '.'");
    }
    if (!done() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!done() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits must follow exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::is_u64() const {
  return is_number() && number >= 0 && number <= 18446744073709549568.0 &&
         std::floor(number) == number;
}

uint64_t JsonValue::as_u64() const {
  if (!is_u64()) throw JsonError("expected a non-negative integer", 0);
  return static_cast<uint64_t>(number);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dim::serve
