// Expansion of validated serve requests into SweepEngine grids.
//
// All sweep points are mutually independent, so "compatible" batching is
// concatenation: every sweep (and unbudgeted run) request drained from
// the admission queue in one dispatcher pass contributes a contiguous
// slice of one combined grid, the shared SweepEngine runs the whole grid
// across its worker pool (memoized by the resident result store), and the
// results are split back per request by slice. Each response depends only
// on its own slice, so batch composition never shows through in response
// bytes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "accel/sweep.hpp"
#include "accel/system.hpp"
#include "asm/program.hpp"
#include "serve/protocol.hpp"

namespace dim::serve {

// Named array shape of the protocol (config1|config2|config3|ideal).
// Callers validate the name first (parse_request does); an unknown name
// throws std::invalid_argument.
rra::ArrayShape shape_by_name(const std::string& name);

// The system configuration of one run/sweep axis point.
accel::SystemConfig config_for(const std::string& shape, uint64_t slots,
                               bool speculation);

// Expands a run/sweep request into grid points over `program` (not owned;
// must outlive the sweep). A run is a 1-point grid; a sweep is the cross
// product shapes x slots_axis x spec_axis, in that nesting order, with
// labels "<shape>/s<slots>/<sp|ns>". Baselines are worker-run (and thus
// part of the memoized cell) when the request asked for them.
std::vector<accel::SweepPoint> expand_points(const Request& request,
                                             const asmblr::Program& program);

// One request's slice of a combined batch grid.
struct BatchSlice {
  size_t begin = 0;
  size_t end = 0;  // exclusive
};

// Copies the slice back out of the combined results, re-indexed from 0 so
// the response is identical to what a lone (unbatched) sweep would report.
std::vector<accel::SweepResult> split_slice(
    const std::vector<accel::SweepResult>& combined, const BatchSlice& slice);

}  // namespace dim::serve
