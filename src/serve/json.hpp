// Minimal JSON parser for the serving protocol (docs/serving.md).
//
// The daemon reads one JSON object per request line from untrusted
// clients, so parsing must be strict and bounded: recursion depth is
// capped, every read is bounds-checked, and any malformed byte raises
// JsonError with the offending offset — the connection then answers with
// a parse_error response instead of dying. The repo's other JSON code
// only ever writes; this is the read side.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dim::serve {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, size_t offset)
      : std::runtime_error(what + " (offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys are a parse error.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; null when absent (or when not an object).
  const JsonValue* get(std::string_view key) const;

  // True when the number is a non-negative integer representable in
  // uint64_t (the protocol's ids, budgets and counts are all u64).
  bool is_u64() const;
  uint64_t as_u64() const;  // throws JsonError when !is_u64()
};

// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonValue parse_json(std::string_view text);

}  // namespace dim::serve
