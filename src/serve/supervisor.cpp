#include "serve/supervisor.hpp"

#include <dirent.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "serve/ipc.hpp"
#include "serve/worker.hpp"

namespace dim::serve {
namespace {

constexpr int kMaxAttempts = 100;  // crash-retry backstop per job

std::string cancel_key(const RequestId& id) {
  return (id.is_string ? "s:" : "i:") + id.text;
}

// Forked children inherit every parent fd: other workers' socketpairs
// (keeping those open would break the supervisor's EOF-based death
// detection), transport sockets, open stores. Close everything except
// stdio and this worker's own pair end.
void close_inherited_fds(int keep) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;
  std::vector<int> fds;
  while (dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;
    fds.push_back(static_cast<int>(fd));
  }
  const int dir_fd = ::dirfd(dir);
  for (const int fd : fds) {
    if (fd > 2 && fd != keep && fd != dir_fd) ::close(fd);
  }
  ::closedir(dir);
}

}  // namespace

// --- Session ---------------------------------------------------------------

// Same ordering contract as Server::Session: responses complete in any
// order but emit through the sink in per-session admission order.
class Supervisor::Session : public SessionHost::Session,
                            public std::enable_shared_from_this<Session> {
 public:
  bool submit(const std::string& line) override {
    supervisor_->admit(shared_from_this(), line);
    return !supervisor_->shutting_down();
  }

  void drain() override {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return emit_seq_ == next_seq_; });
  }

 private:
  friend class Supervisor;
  explicit Session(Supervisor* supervisor, ResponseSink sink)
      : supervisor_(supervisor), sink_(std::move(sink)) {}

  uint64_t allocate_seq() {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_++;
  }

  void complete(uint64_t seq, std::string response_line) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.emplace(seq, std::move(response_line));
    while (!ready_.empty() && ready_.begin()->first == emit_seq_) {
      const std::string line = std::move(ready_.begin()->second);
      ready_.erase(ready_.begin());
      ++emit_seq_;
      if (sink_) sink_(line);
    }
    lock.unlock();
    drained_.notify_all();
    {
      std::lock_guard<std::mutex> clock(supervisor_->counters_mutex_);
      ++supervisor_->counters_.completed;
    }
  }

  bool is_canceled(const RequestId& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    return canceled_.count(cancel_key(id)) > 0;
  }

  void mark_canceled(const RequestId& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    canceled_.insert(cancel_key(id));
  }

  void consume_cancel(const RequestId& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    canceled_.erase(cancel_key(id));
  }

  Supervisor* supervisor_;
  ResponseSink sink_;
  std::mutex mutex_;
  std::condition_variable drained_;
  uint64_t next_seq_ = 0;
  uint64_t emit_seq_ = 0;
  std::map<uint64_t, std::string> ready_;
  std::set<std::string> canceled_;
};

// --- Supervisor ------------------------------------------------------------

Supervisor::Supervisor(SupervisorOptions options)
    : options_(options), queue_(options.queue_capacity) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.checkpoint_interval == 0) options_.checkpoint_interval = 1u << 20;
  if (!options_.store_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.store_dir + "/migrate", ec);
  }
  workers_.resize(static_cast<size_t>(options_.workers));
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (size_t i = 0; i < workers_.size(); ++i) spawn_worker(i);
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Supervisor::~Supervisor() { shutdown(); }

std::shared_ptr<SessionHost::Session> Supervisor::open_session(ResponseSink sink) {
  return std::shared_ptr<Session>(new Session(this, std::move(sink)));
}

void Supervisor::shutdown() {
  bool expected = false;
  if (shutting_down_.compare_exchange_strong(expected, true)) {
    queue_.close();
    state_cv_.notify_all();
    shutdown_cv_.notify_all();
  }
  std::lock_guard<std::mutex> teardown(teardown_mutex_);
  if (torn_down_) return;
  // The scheduler exits only when everything admitted has been answered
  // (queue drained, no retries, nothing in flight) — the drain promise.
  if (scheduler_.joinable()) scheduler_.join();
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (Worker& w : workers_) {
      // SHUT_RDWR (not close): the reader thread still recv()s on this
      // fd, and closing it here could let the number be reused under it.
      if (w.fd >= 0) ::shutdown(w.fd, SHUT_RDWR);
    }
  }
  state_cv_.notify_all();
  for (Worker& w : workers_) {
    if (w.reader.joinable()) w.reader.join();
  }
  // All readers are gone (each closed its fd and reaped its child on the
  // way out), so the graveyard can no longer grow.
  for (std::thread& t : reader_graveyard_) {
    if (t.joinable()) t.join();
  }
  reader_graveyard_.clear();
  torn_down_ = true;
}

void Supervisor::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutting_down_.load(); });
}

SupervisorCounters Supervisor::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

std::vector<pid_t> Supervisor::worker_pids() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<pid_t> pids;
  for (const Worker& w : workers_) {
    if (w.pid > 0) pids.push_back(w.pid);
  }
  return pids;
}

std::string Supervisor::migrate_path(uint64_t job_id) const {
  return options_.store_dir + "/migrate/job-" + std::to_string(job_id) + ".snap";
}

std::string Supervisor::stats_response(const RequestId& id) const {
  const SupervisorCounters c = counters();
  std::ostringstream out;
  write_ok_prefix(out, id);
  out << ", \"kind\": \"stats\""
      << ", \"workers\": " << options_.workers
      << ", \"accepted\": " << c.accepted
      << ", \"rejected_overload\": " << c.rejected_overload
      << ", \"rejected_invalid\": " << c.rejected_invalid
      << ", \"rejected_deadline\": " << c.rejected_deadline
      << ", \"completed\": " << c.completed
      << ", \"canceled\": " << c.canceled
      << ", \"dispatched\": " << c.dispatched
      << ", \"worker_restarts\": " << c.worker_restarts
      << ", \"migrations\": " << c.migrations
      << ", \"abandoned\": " << c.abandoned << "}\n";
  return out.str();
}

void Supervisor::admit(const std::shared_ptr<Session>& session,
                       const std::string& line) {
  const uint64_t seq = session->allocate_seq();
  ParseOutcome parsed = parse_request(line);
  if (!parsed.ok) {
    std::ostringstream out;
    write_error_response(out, parsed.id, parsed.error, parsed.detail);
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rejected_invalid;
    }
    session->complete(seq, out.str());
    return;
  }

  Request& req = parsed.request;
  switch (req.kind) {
    case RequestKind::kPing: {
      std::ostringstream out;
      write_pong_response(out, req.id);
      session->complete(seq, out.str());
      return;
    }
    case RequestKind::kStats:
      session->complete(seq, stats_response(req.id));
      return;
    case RequestKind::kCancel: {
      // Queued-only in the multi-process topology: the mark stops the
      // target at schedule time; a job already on a worker runs to
      // completion (see the header comment).
      session->mark_canceled(req.target);
      std::ostringstream out;
      write_ok_prefix(out, req.id);
      out << ", \"kind\": \"cancel\"}\n";
      session->complete(seq, out.str());
      return;
    }
    case RequestKind::kShutdown: {
      std::ostringstream out;
      write_ok_prefix(out, req.id);
      out << ", \"kind\": \"shutdown\"}\n";
      session->complete(seq, out.str());
      // Close after responding: already-admitted work still drains.
      bool expected = false;
      if (shutting_down_.compare_exchange_strong(expected, true)) {
        queue_.close();
        state_cv_.notify_all();
        shutdown_cv_.notify_all();
      }
      return;
    }
    case RequestKind::kRun:
    case RequestKind::kSweep:
    case RequestKind::kFuzz:
      break;
  }

  Job job;
  job.session = session;
  job.seq = seq;
  job.id = req.id;
  job.line = line;
  ScheduleKey key;
  key.priority = req.priority;
  if (req.has_deadline) {
    key.has_deadline = true;
    key.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(req.deadline_ms);
    job.has_deadline = true;
    job.deadline = key.deadline;
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    job.job_id = next_job_id_++;
  }
  const RequestId id = job.id;
  if (!queue_.try_push(std::move(job), key)) {
    std::ostringstream out;
    const bool closing = shutting_down();
    write_error_response(out, id,
                         closing ? kErrShuttingDown : kErrOverloaded,
                         closing ? "server is shutting down"
                                 : "admission queue is full; retry later");
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rejected_overload;
    }
    session->complete(seq, out.str());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.accepted;
  }
  state_cv_.notify_all();
}

void Supervisor::reject(const Job& job, const char* error,
                        const std::string& detail,
                        uint64_t SupervisorCounters::*counter) {
  std::ostringstream out;
  write_error_response(out, job.id, error, detail);
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++(counters_.*counter);
  }
  job.session->complete(job.seq, out.str());
}

// state_mutex_ held by the caller.
void Supervisor::spawn_worker(size_t slot) {
  Worker& w = workers_[slot];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;  // retried later
  const pid_t pid = ::fork();
  if (pid == 0) {
    close_inherited_fds(sv[1]);
    WorkerOptions wopts;
    wopts.store_dir = options_.store_dir;
    wopts.checkpoint_interval = options_.checkpoint_interval;
    wopts.engine_threads = options_.engine_threads;
    // _exit, never exit: the child shares the parent's atexit handlers
    // and sanitizer end-of-process checks, which must run exactly once.
    ::_exit(worker_main(sv[1], wopts));
  }
  ::close(sv[1]);
  if (pid < 0) {
    ::close(sv[0]);
    return;  // fork pressure; the scheduler retries the slot
  }
  w.pid = pid;
  w.fd = sv[0];
  w.busy = false;
  w.job_id = 0;
  w.reader = std::thread([this, slot] { reader_loop(slot); });
}

void Supervisor::reader_loop(size_t slot) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    fd = workers_[slot].fd;
  }
  std::string payload;
  while (fd >= 0 && recv_frame(fd, payload)) {
    uint64_t job_id = 0;
    std::string response;
    if (!decode_response_frame(payload, job_id, response)) break;
    Job job;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = inflight_.find(job_id);
      if (it != inflight_.end()) {
        job = std::move(it->second);
        inflight_.erase(it);
        found = true;
      }
      Worker& w = workers_[slot];
      if (w.busy && w.job_id == job_id) {
        w.busy = false;
        w.job_id = 0;
      }
    }
    if (found) {
      if (!options_.store_dir.empty()) {
        // The worker removes its checkpoint after responding, but a kill
        // between the two leaves the file; sweep it here as well.
        std::error_code ec;
        std::filesystem::remove(migrate_path(job_id), ec);
      }
      job.session->complete(job.seq, response);
    }
    state_cv_.notify_all();
  }
  handle_worker_death(slot);
}

void Supervisor::handle_worker_death(size_t slot) {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    Worker& w = workers_[slot];
    const pid_t pid = w.pid;
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    w.pid = -1;
    if (pid > 0) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    if (w.busy) {
      // The in-flight job's response never (fully) arrived — the framing
      // is at-most-once, so re-running it cannot double-deliver. Retries
      // go to the front: this job was admitted and scheduled before
      // anything still queued.
      auto it = inflight_.find(w.job_id);
      if (it != inflight_.end()) {
        Job job = std::move(it->second);
        inflight_.erase(it);
        const bool has_checkpoint =
            !options_.store_dir.empty() &&
            std::filesystem::exists(migrate_path(job.job_id));
        retry_.push_front(std::move(job));
        std::lock_guard<std::mutex> clock(counters_mutex_);
        if (has_checkpoint) ++counters_.migrations;
      }
      w.busy = false;
      w.job_id = 0;
    }
    if (!stopping_.load()) {
      {
        std::lock_guard<std::mutex> clock(counters_mutex_);
        ++counters_.worker_restarts;
      }
      // This thread IS the dying worker's reader: it cannot join itself,
      // so it parks its own handle in the graveyard and hands the slot a
      // fresh worker + reader. The graveyard is joined at teardown.
      reader_graveyard_.push_back(std::move(w.reader));
      spawn_worker(slot);
    }
  }
  state_cv_.notify_all();
}

void Supervisor::scheduler_loop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  const auto drained = [this] {
    return queue_.closed() && queue_.size() == 0 && retry_.empty() &&
           inflight_.empty();
  };
  const auto idle_slot = [this]() -> int {
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].fd >= 0 && !workers_[i].busy) return static_cast<int>(i);
    }
    return -1;
  };
  const auto dead_slot = [this]() -> int {
    for (size_t i = 0; i < workers_.size(); ++i) {
      // fd < 0 with no live reader = a slot whose spawn failed (a slot
      // mid-death still has its reader running and is repaired there).
      if (workers_[i].fd < 0 && !workers_[i].reader.joinable()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (;;) {
    state_cv_.wait(lock, [&] {
      if (drained()) return true;
      const bool work = !retry_.empty() || queue_.size() > 0;
      return work && (idle_slot() >= 0 || dead_slot() >= 0);
    });
    if (drained()) return;
    if (!stopping_.load()) {
      for (int slot = dead_slot(); slot >= 0; slot = dead_slot()) {
        spawn_worker(static_cast<size_t>(slot));
        if (workers_[static_cast<size_t>(slot)].fd < 0) {
          break;  // spawn still failing; wait for the next wakeup
        }
      }
    }
    const int slot = idle_slot();
    if (slot < 0) continue;

    Job job;
    bool have = false;
    if (!retry_.empty()) {
      job = std::move(retry_.front());
      retry_.pop_front();
      have = true;
    } else {
      have = queue_.try_pop(job);
    }
    if (!have) continue;

    if (job.session->is_canceled(job.id)) {
      job.session->consume_cancel(job.id);
      lock.unlock();
      reject(job, kErrCanceled, "canceled before dispatch",
             &SupervisorCounters::canceled);
      lock.lock();
      continue;
    }
    if (job.has_deadline &&
        std::chrono::steady_clock::now() >= job.deadline) {
      lock.unlock();
      reject(job, kErrDeadlineExpired, "deadline passed before dispatch",
             &SupervisorCounters::rejected_deadline);
      lock.lock();
      continue;
    }
    ++job.attempts;
    if (job.attempts > kMaxAttempts) {
      lock.unlock();
      reject(job, kErrInternal, "job abandoned after repeated worker failures",
             &SupervisorCounters::abandoned);
      lock.lock();
      continue;
    }

    Worker& w = workers_[static_cast<size_t>(slot)];
    w.busy = true;
    w.job_id = job.job_id;
    const std::string frame = encode_job_frame(job.job_id, job.line);
    const int worker_fd = w.fd;
    inflight_.emplace(job.job_id, std::move(job));
    {
      std::lock_guard<std::mutex> clock(counters_mutex_);
      ++counters_.dispatched;
    }
    // Sent under state_mutex_ so the fd cannot be closed/reused by a
    // concurrent death handler. Frames are small and at most one job is
    // outstanding per worker, so this send cannot block on a full pipe.
    // If the worker just died, the send fails and its reader re-queues
    // the job exactly as for a mid-run death.
    send_frame(worker_fd, frame);
  }
}

}  // namespace dim::serve
