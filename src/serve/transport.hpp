// Transports that move protocol lines in and out of a SessionHost.
//
// Two transports share every byte of server logic: serve_stdio drives one
// session over an istream/ostream pair (CI pipes, quick local use), and
// UnixSocketServer accepts local clients on a filesystem socket, one
// session per connection with a dedicated reader thread. Responses go out
// through the session sink, which the Server already serializes in
// admission order, so a transport only moves bytes.
#pragma once

#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/host.hpp"

namespace dim::serve {

// Feeds `in` line-by-line into one session and writes responses to `out`
// (flushed per line). Returns when the input reaches EOF or the server
// begins shutting down; all submitted requests have been answered.
void serve_stdio(SessionHost& server, std::istream& in, std::ostream& out);

// SOCK_STREAM listener on a filesystem path. start() binds (replacing a
// stale socket file left by a dead daemon), run() accepts until the
// server shuts down, the destructor joins connection threads and unlinks
// the path.
class UnixSocketServer {
 public:
  UnixSocketServer(SessionHost& server, std::string path);
  ~UnixSocketServer();

  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  // False (with *error filled) when the path is unbindable.
  bool start(std::string* error);

  // Accept loop; returns once the server is shutting down and every
  // connection thread has finished.
  void run();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void handle_connection(int fd);
  // Unblocks readers stuck on idle clients (SHUT_RD), joins, closes.
  void join_connections();

  SessionHost& server_;
  std::string path_;
  int listen_fd_ = -1;
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;
};

// Blocking line-oriented client for tests and the load bench.
class UnixSocketClient {
 public:
  UnixSocketClient() = default;
  ~UnixSocketClient();

  UnixSocketClient(const UnixSocketClient&) = delete;
  UnixSocketClient& operator=(const UnixSocketClient&) = delete;

  bool connect(const std::string& path, std::string* error);
  // Appends the trailing '\n' if missing; false on a broken connection.
  bool send_line(const std::string& line);
  // One response line without its '\n'; false on EOF/error.
  bool recv_line(std::string& out);
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace dim::serve
