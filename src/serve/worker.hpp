// The worker side of the pre-forked pool: one process, one socketpair fd.
//
// A worker is a thin loop around the single-process serve::Server. Each
// 'J' frame carries one raw request line; the worker runs it to its one
// response line (manual dispatch, so the job executes on the calling
// thread) and sends it back as an 'R' frame. Budgeted runs install
// MigrationHooks that persist a snapshot into the shared store's
// migrate/ directory after every run_until chunk — if this process is
// SIGKILLed mid-run, the supervisor re-queues the job and the next worker
// resumes from that snapshot, returning the byte-identical response the
// uncrashed run would have produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dim::serve {

struct WorkerOptions {
  // Shared persistence root ("" = in-memory; migration checkpoints are
  // then unavailable and a crashed job simply restarts cold).
  std::string store_dir;
  uint64_t checkpoint_interval = 1u << 20;
  // SweepEngine threads inside this worker (0 = hardware concurrency).
  unsigned engine_threads = 0;
  size_t batch_max = 32;
};

// Runs the frame loop until the supervisor closes its end (EOF) or the fd
// breaks. Returns the process exit code; the forked child must pass it to
// _exit (not exit) so atexit handlers and sanitizer leak checks of the
// parent image don't run twice.
int worker_main(int fd, const WorkerOptions& options);

}  // namespace dim::serve
