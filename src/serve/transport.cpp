#include "serve/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dim::serve {
namespace {

// Whole-buffer send; MSG_NOSIGNAL turns a vanished client into an error
// return instead of SIGPIPE killing the daemon.
bool send_all(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Pulls one '\n'-terminated line out of `buffer`, reading more from `fd`
// as needed. A final unterminated fragment at EOF is returned as a line.
bool recv_line_fd(int fd, std::string& buffer, std::string& out) {
  for (;;) {
    const size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      out.assign(buffer, 0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      if (buffer.empty()) return false;
      out = std::move(buffer);
      buffer.clear();
      return true;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

void serve_stdio(SessionHost& server, std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  auto session = server.open_session([&out, &out_mutex](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << line;
    out.flush();
  });
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!session->submit(line)) break;
  }
  session->drain();
}

// --- UnixSocketServer -------------------------------------------------------

UnixSocketServer::UnixSocketServer(SessionHost& server, std::string path)
    : server_(server), path_(std::move(path)) {}

UnixSocketServer::~UnixSocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
  join_connections();
}

bool UnixSocketServer::start(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path_;
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  // A previous daemon that died uncleanly leaves the socket file behind;
  // binding over it is the expected restart path.
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    if (error != nullptr) {
      *error = std::string("cannot listen on ") + path_ + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void UnixSocketServer::run() {
  while (!server_.shutting_down()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // shutdown poll interval (ms)
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(
        {fd, std::thread([this, fd] { handle_connection(fd); })});
  }
  join_connections();
}

void UnixSocketServer::join_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (Connection& c : connections_) {
    // SHUT_RD pops any reader blocked on an idle client out of recv with
    // EOF; the write side stays open so in-flight responses still land.
    ::shutdown(c.fd, SHUT_RD);
  }
  for (Connection& c : connections_) {
    if (c.thread.joinable()) c.thread.join();
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
  connections_.clear();
}

// The connection fd is owned by run()/join_connections(), not by this
// thread: closing here would let the fd number be reused while
// join_connections still holds it.
void UnixSocketServer::handle_connection(int fd) {
  auto session = server_.open_session([fd](const std::string& line) {
    send_all(fd, line.data(), line.size());  // client gone: responses drop
  });
  std::string buffer;
  std::string line;
  while (recv_line_fd(fd, buffer, line)) {
    if (line.empty()) continue;
    if (!session->submit(line)) break;
  }
  session->drain();
  ::shutdown(fd, SHUT_WR);  // client sees EOF once its responses are read
}

// --- UnixSocketClient -------------------------------------------------------

UnixSocketClient::~UnixSocketClient() { close(); }

bool UnixSocketClient::connect(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) {
      *error = std::string("cannot connect to ") + path + ": " +
               std::strerror(errno);
    }
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool UnixSocketClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  return send_all(fd_, framed.data(), framed.size());
}

bool UnixSocketClient::recv_line(std::string& out) {
  if (fd_ < 0) return false;
  return recv_line_fd(fd_, buffer_, out);
}

void UnixSocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace dim::serve
