// The surface a transport needs from whatever is serving requests.
//
// Two implementations exist: serve::Server (single process, PR 7) and
// serve::Supervisor (pre-forked worker-process pool). Both speak the same
// JSONL protocol and honor the same session contract — one response line
// per submitted request, emitted through the sink in per-session
// admission order — so serve_stdio and UnixSocketServer are written once
// against this interface and a daemon picks its topology with a flag.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace dim::serve {

class SessionHost {
 public:
  // Serialized per session; called with one complete response line
  // (including the trailing '\n') in admission order.
  using ResponseSink = std::function<void(const std::string&)>;

  class Session {
   public:
    virtual ~Session() = default;

    // Feeds one raw request line; the response arrives on the sink (in
    // submission order, possibly before this returns for immediate
    // kinds). Returns false once the host is shutting down — queued
    // kinds have then been answered with a shutting_down rejection.
    virtual bool submit(const std::string& line) = 0;

    // Blocks until every submitted request has produced its response.
    virtual void drain() = 0;
  };

  virtual ~SessionHost() = default;

  virtual std::shared_ptr<Session> open_session(ResponseSink sink) = 0;

  // Stops accepting, drains admitted work, releases resources. Idempotent.
  virtual void shutdown() = 0;
  virtual bool shutting_down() const = 0;
  // Blocks until a shutdown request (or shutdown() call) arrived.
  virtual void wait_for_shutdown() = 0;
};

}  // namespace dim::serve
