// Supervisor <-> worker framing over a SOCK_STREAM socketpair.
//
// Request lines are JSON and may legally contain tabs or any other
// whitespace, so the wire format is length-prefixed binary frames (u32
// little-endian payload size, then the payload), not lines. A frame
// payload is `<type>\t<job id>\t<body>`: type 'J' carries one raw request
// line supervisor -> worker, type 'R' carries the complete response line
// worker -> supervisor. Only the first two tabs delimit; the body is
// opaque bytes.
//
// Delivery is at-most-once by construction: recv_frame returns a frame
// only when every byte of it arrived, and treats a partial frame at EOF
// (a worker SIGKILLed mid-write) as an error with nothing delivered. The
// supervisor therefore re-queues exactly the jobs whose response frame
// never fully landed — a response is either delivered once or not at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dim::serve {

// Sanity bound on one frame; requests are capped at kMaxRequestBytes and
// responses are bounded by the sweep grid, so anything near this is a
// framing bug, not data.
inline constexpr size_t kMaxFrameBytes = 8u << 20;

// False on any error (peer gone, oversized payload). Retries EINTR and
// suppresses SIGPIPE.
bool send_frame(int fd, const std::string& payload);

// False on EOF, error, or a partial frame (nothing is delivered then).
bool recv_frame(int fd, std::string& out);

std::string encode_job_frame(uint64_t job_id, const std::string& line);
std::string encode_response_frame(uint64_t job_id, const std::string& response);

// False when the payload is not a well-formed frame of the given type.
bool decode_job_frame(const std::string& payload, uint64_t& job_id,
                      std::string& line);
bool decode_response_frame(const std::string& payload, uint64_t& job_id,
                           std::string& response);

}  // namespace dim::serve
