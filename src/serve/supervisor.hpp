// The supervisor of the pre-forked worker pool (docs/serving.md).
//
// One supervisor process owns admission, scheduling and fault handling;
// N forked worker processes own execution. Sessions submit JSONL lines
// exactly as against serve::Server — immediate kinds (ping/stats/cancel/
// shutdown) are answered here, queued kinds enter an EDF-within-priority
// AdmissionQueue and a scheduler thread hands each job to an idle worker
// over a socketpair (serve/ipc.hpp framing). All workers share one store
// directory, so memoized cells and warm-start exports are pooled.
//
// Fault model: a worker death (crash, SIGKILL) is detected as EOF on its
// socketpair by that worker's reader thread, which reaps the child,
// re-queues the job whose response never fully arrived (at-most-once
// framing makes "arrived" unambiguous), forks a replacement, and life
// goes on. Budgeted runs checkpoint snapshots into <store>/migrate/ at
// every run_until chunk, so the retry resumes mid-run on another worker
// and still returns byte-identical response bytes. Admitted work is never
// lost: every admitted request is answered exactly once, by a worker
// response or by a supervisor-side rejection (canceled / deadline_expired
// / internal after the attempt cap).
//
// Cancellation is queued-only here: a cancel mark stops a job that is
// still waiting at schedule time, but a job already on a worker runs to
// completion (workers are not interrupted — killing them is the fault
// path, not the cancel path). Single-process Server additionally cancels
// at run_until checkpoints; docs/serving.md has the full table.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/host.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"

namespace dim::serve {

struct SupervisorOptions {
  int workers = 2;
  size_t queue_capacity = 256;
  // Shared persistence root ("" = in-memory stores per worker and no
  // migration checkpoints — crashed jobs restart cold, same bytes).
  std::string store_dir;
  uint64_t checkpoint_interval = 1u << 20;
  // SweepEngine threads inside each worker (0 = hardware concurrency).
  unsigned engine_threads = 0;
};

struct SupervisorCounters {
  uint64_t accepted = 0;
  uint64_t rejected_overload = 0;
  uint64_t rejected_invalid = 0;
  uint64_t rejected_deadline = 0;
  uint64_t completed = 0;          // responses emitted (any outcome)
  uint64_t canceled = 0;
  uint64_t dispatched = 0;         // job frames handed to workers
  uint64_t worker_restarts = 0;    // deaths handled (reaped + respawned)
  uint64_t migrations = 0;         // crash re-queues with a checkpoint to resume
  uint64_t abandoned = 0;          // answered `internal` after the attempt cap
};

class Supervisor : public SessionHost {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor() override;  // drains admitted work, then stops the pool

  std::shared_ptr<SessionHost::Session> open_session(ResponseSink sink) override;
  void shutdown() override;
  bool shutting_down() const override { return shutting_down_.load(); }
  void wait_for_shutdown() override;

  SupervisorCounters counters() const;

  // Live worker pids, for the chaos harness (and ps-level debugging).
  std::vector<pid_t> worker_pids() const;

 private:
  class Session;

  struct Job {
    uint64_t job_id = 0;
    std::shared_ptr<Session> session;
    uint64_t seq = 0;
    RequestId id;       // for supervisor-side rejections
    std::string line;   // raw request line, re-parsed by the worker
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    int attempts = 0;   // dispatches so far (crash retries increment)
  };

  struct Worker {
    pid_t pid = -1;
    int fd = -1;       // supervisor side of the socketpair
    bool busy = false;
    uint64_t job_id = 0;
    std::thread reader;
  };

  void admit(const std::shared_ptr<Session>& session, const std::string& line);
  void scheduler_loop();
  void reader_loop(size_t slot);
  // state_mutex_ held. Forks the replacement and starts its reader.
  void spawn_worker(size_t slot);
  void handle_worker_death(size_t slot);
  void reject(const Job& job, const char* error, const std::string& detail,
              uint64_t SupervisorCounters::*counter);
  std::string stats_response(const RequestId& id) const;
  std::string migrate_path(uint64_t job_id) const;

  SupervisorOptions options_;
  AdmissionQueue<Job> queue_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> stopping_{false};  // pool teardown (post-drain)
  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::mutex teardown_mutex_;  // serializes the shutdown() join sequence
  bool torn_down_ = false;

  mutable std::mutex counters_mutex_;
  SupervisorCounters counters_;

  // Workers, in-flight jobs and the crash-retry list. retry_ jobs run
  // before anything still in the queue (they were admitted earlier and
  // already scheduled once); it is unbounded because a re-queue must not
  // fail — that would lose admitted work.
  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  std::vector<Worker> workers_;
  std::map<uint64_t, Job> inflight_;  // keyed by job_id
  std::deque<Job> retry_;
  uint64_t next_job_id_ = 1;
  std::vector<std::thread> reader_graveyard_;  // replaced readers, joined late

  std::thread scheduler_;

  friend class Session;
};

}  // namespace dim::serve
