#include "serve/ipc.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace dim::serve {
namespace {

bool send_all(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `size` bytes; false on error or on EOF mid-buffer.
// `clean_eof` distinguishes "the peer closed between frames" (normal
// worker exit) from "the peer died mid-frame" (SIGKILL mid-write).
bool recv_exact(int fd, char* data, size_t size, bool* clean_eof) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      if (clean_eof != nullptr) *clean_eof = (got == 0);
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

std::string encode(char type, uint64_t job_id, const std::string& body) {
  std::string payload;
  payload.reserve(body.size() + 24);
  payload.push_back(type);
  payload.push_back('\t');
  payload += std::to_string(job_id);
  payload.push_back('\t');
  payload += body;
  return payload;
}

bool decode(char type, const std::string& payload, uint64_t& job_id,
            std::string& body) {
  if (payload.size() < 3 || payload[0] != type || payload[1] != '\t') {
    return false;
  }
  const size_t id_end = payload.find('\t', 2);
  if (id_end == std::string::npos || id_end == 2) return false;
  uint64_t id = 0;
  for (size_t i = 2; i < id_end; ++i) {
    const char c = payload[i];
    if (c < '0' || c > '9') return false;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  job_id = id;
  body.assign(payload, id_end + 1, std::string::npos);
  return true;
}

}  // namespace

bool send_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(size & 0xff),
                    static_cast<char>((size >> 8) & 0xff),
                    static_cast<char>((size >> 16) & 0xff),
                    static_cast<char>((size >> 24) & 0xff)};
  if (!send_all(fd, header, sizeof header)) return false;
  return send_all(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, std::string& out) {
  char header[4];
  if (!recv_exact(fd, header, sizeof header, nullptr)) return false;
  const uint32_t size = static_cast<uint32_t>(static_cast<unsigned char>(header[0])) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 8) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 16) |
                        (static_cast<uint32_t>(static_cast<unsigned char>(header[3])) << 24);
  if (size > kMaxFrameBytes) return false;
  out.resize(size);
  return size == 0 || recv_exact(fd, out.data(), size, nullptr);
}

std::string encode_job_frame(uint64_t job_id, const std::string& line) {
  return encode('J', job_id, line);
}

std::string encode_response_frame(uint64_t job_id, const std::string& response) {
  return encode('R', job_id, response);
}

bool decode_job_frame(const std::string& payload, uint64_t& job_id,
                      std::string& line) {
  return decode('J', payload, job_id, line);
}

bool decode_response_frame(const std::string& payload, uint64_t& job_id,
                           std::string& response) {
  return decode('R', payload, job_id, response);
}

}  // namespace dim::serve
