#include "serve/worker.hpp"

#include <filesystem>
#include <system_error>
#include <vector>

#include "serve/ipc.hpp"
#include "serve/server.hpp"
#include "snap/format.hpp"
#include "snap/io.hpp"

namespace dim::serve {

int worker_main(int fd, const WorkerOptions& options) {
  ServerOptions server_options;
  server_options.auto_dispatch = false;  // jobs execute on this thread
  server_options.worker_threads = options.engine_threads;
  server_options.store_dir = options.store_dir;
  server_options.checkpoint_interval = options.checkpoint_interval;
  server_options.batch_max = options.batch_max;
  server_options.queue_capacity = options.batch_max < 16 ? 16 : options.batch_max;
  Server server(server_options);

  std::string migrate_dir;
  if (!options.store_dir.empty()) {
    migrate_dir = options.store_dir + "/migrate";
    std::error_code ec;
    std::filesystem::create_directories(migrate_dir, ec);
    if (ec) migrate_dir.clear();  // no checkpoints; crashed jobs restart cold
  }

  std::string payload;
  while (recv_frame(fd, payload)) {
    uint64_t job_id = 0;
    std::string line;
    if (!decode_job_frame(payload, job_id, line)) return 2;

    const std::string snap_path =
        migrate_dir.empty()
            ? std::string()
            : migrate_dir + "/job-" + std::to_string(job_id) + ".snap";
    MigrationHooks hooks;
    if (!snap_path.empty()) {
      hooks.resume = [&snap_path](const Request&) {
        try {
          return snap::read_artifact_file(snap_path,
                                          snap::ArtifactKind::kSnapshot);
        } catch (const snap::SnapshotError&) {
          return std::vector<uint8_t>();  // no checkpoint: cold start
        }
      };
      hooks.checkpoint = [&snap_path](const Request&,
                                      const std::vector<uint8_t>& snapshot) {
        try {
          snap::write_artifact_file(snap_path, snap::ArtifactKind::kSnapshot,
                                    snapshot);
        } catch (const snap::SnapshotError&) {
          // Checkpointing is an optimization; a crash then restarts cold.
        }
      };
    }
    server.set_migration_hooks(std::move(hooks));

    // One submitted line yields exactly one response line, emitted
    // synchronously by dispatch_pending (manual mode) into `response`.
    std::string response;
    auto session = server.open_session(
        [&response](const std::string& out_line) { response += out_line; });
    session->submit(line);
    server.dispatch_pending();
    session->drain();
    server.set_migration_hooks(MigrationHooks{});

    // Respond before discarding the checkpoint: dying between the two
    // leaves only a stale file (the supervisor also removes it), never a
    // lost response.
    if (!send_frame(fd, encode_response_frame(job_id, response))) return 0;
    if (!snap_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(snap_path, ec);
    }
  }
  return 0;
}

}  // namespace dim::serve
