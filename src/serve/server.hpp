// The resident simulation service (docs/serving.md).
//
// Everything the paper's transparent-acceleration story amortizes —
// translated configurations, memoized sweep cells, assembled program
// images — stays warm in one long-lived process. Sessions feed JSONL
// requests through a bounded admission queue; a dispatcher thread drains
// the queue in batches, runs every batched grid point through one shared
// SweepEngine (memoized by a resident snap::ResultStore), executes
// budgeted runs in run_until checkpoint chunks with cooperative
// cancellation, and emits responses in per-session admission order.
//
// Determinism contract: for a fixed request stream on one session (with a
// fixed result-store temperature), response bytes are identical for any
// worker-thread count, any batch composition, and across a daemon restart
// that kept the store directory — `stats` responses excepted (they report
// live counters). The load bench's --check mode and the serve CI job pin
// this.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "accel/sweep.hpp"
#include "asm/program.hpp"
#include "serve/host.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "snap/resultstore.hpp"

namespace dim::serve {

struct ServerOptions {
  // SweepEngine worker pool for batched grids (0 = hardware concurrency).
  unsigned worker_threads = 0;
  // Admission bound: requests beyond this are rejected with `overloaded`.
  size_t queue_capacity = 256;
  // Max requests merged into one dispatcher batch.
  size_t batch_max = 32;
  // Persistence root ("" = fully in-memory): result-store cells go to
  // <store_dir>/cells, warm-start exports to <store_dir>/warm.
  std::string store_dir;
  // run_until chunk for budgeted runs: the cancellation latency bound.
  uint64_t checkpoint_interval = 1u << 20;
  // Tests set false and call dispatch_pending() for deterministic control
  // over when (and in what batches) queued work executes.
  bool auto_dispatch = true;
};

struct ServerCounters {
  uint64_t accepted = 0;           // admitted into the queue
  uint64_t rejected_overload = 0;  // bounced off the full queue
  uint64_t rejected_invalid = 0;   // parse/validation failures
  uint64_t rejected_deadline = 0;  // expired before a dispatcher picked them up
  uint64_t completed = 0;          // responses emitted (any outcome)
  uint64_t canceled = 0;           // requests answered `canceled`
  uint64_t batches = 0;            // dispatcher passes with >= 1 grid item
  uint64_t batched_cells = 0;      // grid points handed to the SweepEngine
  uint64_t direct_runs = 0;        // budgeted/warm runs outside the engine
  uint64_t fuzz_campaigns = 0;
  uint64_t warm_entries = 0;       // resident warm-start pool size
  uint64_t warm_preloads = 0;
  uint64_t warm_exports = 0;
  bool has_store = false;
  snap::ResultStore::Counters store;
};

// Hooks a wrapping process (serve::worker_main) installs so budgeted runs
// survive the process: `resume` supplies a prior checkpoint's snapshot
// payload (empty = cold start, taken BEFORE the budget loop but AFTER the
// warm preload so `warm_preloaded` matches the uncrashed run), and
// `checkpoint` receives a fresh snapshot payload after every run_until
// chunk that did not finish the request. Dispatcher-thread only.
struct MigrationHooks {
  std::function<std::vector<uint8_t>(const Request&)> resume;
  std::function<void(const Request&, const std::vector<uint8_t>&)> checkpoint;
};

class Server : public SessionHost {
 public:
  using ResponseSink = SessionHost::ResponseSink;

  explicit Server(ServerOptions options);
  ~Server() override;  // drains and joins

  class Session : public SessionHost::Session,
                  public std::enable_shared_from_this<Session> {
   public:
    // Feeds one raw request line; the response arrives on the sink (in
    // submission order, possibly before this returns for immediate
    // kinds). Returns false once the server is shutting down — queued
    // kinds have then been answered with a shutting_down rejection.
    bool submit(const std::string& line) override;

    // Blocks until every submitted request has produced its response.
    void drain() override;

   private:
    friend class Server;
    explicit Session(Server* server, ResponseSink sink);

    uint64_t allocate_seq();
    void complete(uint64_t seq, std::string response_line);
    bool is_canceled(const RequestId& id);
    void mark_canceled(const RequestId& id);
    void consume_cancel(const RequestId& id);

    Server* server_;
    ResponseSink sink_;
    std::mutex mutex_;
    std::condition_variable drained_;
    uint64_t next_seq_ = 0;  // next seq to hand out
    uint64_t emit_seq_ = 0;  // next seq to emit
    std::map<uint64_t, std::string> ready_;  // completed, waiting for order
    std::set<std::string> canceled_;         // keyed "s:"/"i:" + id text
  };

  std::shared_ptr<SessionHost::Session> open_session(ResponseSink sink) override;

  // Stops accepting, drains the queue, joins the dispatcher. Idempotent.
  void shutdown() override;
  bool shutting_down() const override { return shutting_down_.load(); }
  // Blocks until a shutdown request (or shutdown() call) arrived.
  void wait_for_shutdown() override;

  ServerCounters counters() const;

  // Manual-dispatch mode (auto_dispatch == false): drains everything
  // currently queued in batch_max-sized batches.
  void dispatch_pending();

  // Manual-dispatch mode only (worker processes): no locking, the caller
  // owns the dispatch thread.
  void set_migration_hooks(MigrationHooks hooks) { hooks_ = std::move(hooks); }

 private:
  struct WorkItem {
    std::shared_ptr<Session> session;
    uint64_t seq = 0;
    Request request;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  // A cached, already-assembled program plus its lazily computed
  // unbudgeted baseline (resident across requests).
  struct ProgramEntry {
    asmblr::Program program;
    bool has_baseline = false;
    accel::AccelStats baseline;
  };

  void admit(const std::shared_ptr<Session>& session, const std::string& line);
  void dispatcher_loop();
  void process_batch(std::vector<WorkItem> items);
  // Dispatcher-thread only (the cache is not locked).
  ProgramEntry* resolve_program(const std::shared_ptr<Session>& session,
                                uint64_t seq, const Request& request);
  void execute_direct(const WorkItem& item, ProgramEntry& entry);
  void execute_fuzz(const WorkItem& item);
  std::string stats_response(const RequestId& id) const;

  // Warm-start pool: payload per (program hash, system fingerprint); the
  // payload for a key is unique (only halted runs export), so concurrent
  // writers write identical bytes and the pool stays deterministic.
  std::vector<uint8_t>* warm_lookup(uint64_t program_hash, uint64_t fingerprint);
  void warm_insert(uint64_t program_hash, uint64_t fingerprint,
                   std::vector<uint8_t> payload);

  ServerOptions options_;
  std::unique_ptr<snap::ResultStore> store_;  // null without store_dir
  AdmissionQueue<WorkItem> queue_;
  MigrationHooks hooks_;
  std::atomic<bool> shutting_down_{false};
  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;

  std::map<std::string, ProgramEntry> programs_;  // dispatcher-thread only

  std::mutex warm_mutex_;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint8_t>> warm_pool_;

  std::thread dispatcher_;
};

}  // namespace dim::serve
