#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <sstream>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "fuzz/campaign.hpp"
#include "serve/batcher.hpp"
#include "snap/codec.hpp"
#include "snap/io.hpp"
#include "snap/snapshot.hpp"
#include "snap/warmstart.hpp"
#include "work/workload.hpp"

namespace dim::serve {
namespace {

std::string cancel_key(const RequestId& id) {
  return (id.is_string ? "s:" : "i:") + id.text;
}

std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

// --- Session ---------------------------------------------------------------

Server::Session::Session(Server* server, ResponseSink sink)
    : server_(server), sink_(std::move(sink)) {}

uint64_t Server::Session::allocate_seq() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_++;
}

void Server::Session::complete(uint64_t seq, std::string response_line) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.emplace(seq, std::move(response_line));
  // Emit every response that is now next in admission order. The sink is
  // called under the lock, so per-session output is serialized and
  // ordered by construction.
  while (!ready_.empty() && ready_.begin()->first == emit_seq_) {
    const std::string line = std::move(ready_.begin()->second);
    ready_.erase(ready_.begin());
    ++emit_seq_;
    if (sink_) sink_(line);
  }
  lock.unlock();
  drained_.notify_all();
  {
    std::lock_guard<std::mutex> clock(server_->counters_mutex_);
    ++server_->counters_.completed;
  }
}

bool Server::Session::submit(const std::string& line) {
  // Admission decides everything, including the shutting-down rejection
  // (it knows the request id, so the rejection is still correlatable).
  server_->admit(shared_from_this(), line);
  return !server_->shutting_down();
}

void Server::Session::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return emit_seq_ == next_seq_; });
}

bool Server::Session::is_canceled(const RequestId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return canceled_.count(cancel_key(id)) > 0;
}

void Server::Session::mark_canceled(const RequestId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  canceled_.insert(cancel_key(id));
}

void Server::Session::consume_cancel(const RequestId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  canceled_.erase(cancel_key(id));
}

// --- Server ----------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(options), queue_(options.queue_capacity) {
  if (options_.checkpoint_interval == 0) options_.checkpoint_interval = 1u << 20;
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<snap::ResultStore>(options_.store_dir + "/cells");
    std::filesystem::create_directories(options_.store_dir + "/warm");
  }
  if (options_.auto_dispatch) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::shared_ptr<SessionHost::Session> Server::open_session(ResponseSink sink) {
  return std::shared_ptr<Session>(new Session(this, std::move(sink)));
}

void Server::shutdown() {
  bool expected = false;
  if (shutting_down_.compare_exchange_strong(expected, true)) {
    queue_.close();
    shutdown_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutting_down_.load(); });
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  ServerCounters c = counters_;
  if (store_ != nullptr) {
    c.has_store = true;
    c.store = store_->counters();
  }
  return c;
}

void Server::dispatch_pending() {
  std::vector<WorkItem> batch;
  WorkItem item;
  while (queue_.try_pop(item)) {
    batch.push_back(std::move(item));
    if (batch.size() >= options_.batch_max) {
      process_batch(std::move(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) process_batch(std::move(batch));
}

void Server::dispatcher_loop() {
  for (;;) {
    WorkItem first;
    if (!queue_.pop(first)) return;  // closed and drained
    std::vector<WorkItem> batch;
    batch.push_back(std::move(first));
    WorkItem more;
    while (batch.size() < options_.batch_max && queue_.try_pop(more)) {
      batch.push_back(std::move(more));
    }
    process_batch(std::move(batch));
  }
}

std::string Server::stats_response(const RequestId& id) const {
  const ServerCounters c = counters();
  std::ostringstream out;
  write_ok_prefix(out, id);
  out << ", \"kind\": \"stats\""
      << ", \"accepted\": " << c.accepted
      << ", \"rejected_overload\": " << c.rejected_overload
      << ", \"rejected_invalid\": " << c.rejected_invalid
      << ", \"rejected_deadline\": " << c.rejected_deadline
      << ", \"completed\": " << c.completed
      << ", \"canceled\": " << c.canceled
      << ", \"batches\": " << c.batches
      << ", \"batched_cells\": " << c.batched_cells
      << ", \"direct_runs\": " << c.direct_runs
      << ", \"fuzz_campaigns\": " << c.fuzz_campaigns
      << ", \"warm_entries\": " << c.warm_entries
      << ", \"warm_preloads\": " << c.warm_preloads
      << ", \"warm_exports\": " << c.warm_exports;
  if (c.has_store) {
    out << ", \"store\": {\"hits\": " << c.store.hits
        << ", \"misses\": " << c.store.misses
        << ", \"stores\": " << c.store.stores
        << ", \"corrupt_discards\": " << c.store.corrupt_discards << "}";
  }
  out << "}\n";
  return out.str();
}

void Server::admit(const std::shared_ptr<Session>& session, const std::string& line) {
  const uint64_t seq = session->allocate_seq();
  ParseOutcome parsed = parse_request(line);
  if (!parsed.ok) {
    std::ostringstream out;
    write_error_response(out, parsed.id, parsed.error, parsed.detail);
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rejected_invalid;
    }
    session->complete(seq, out.str());
    return;
  }

  Request& req = parsed.request;
  switch (req.kind) {
    case RequestKind::kPing: {
      std::ostringstream out;
      write_pong_response(out, req.id);
      session->complete(seq, out.str());
      return;
    }
    case RequestKind::kStats:
      session->complete(seq, stats_response(req.id));
      return;
    case RequestKind::kCancel: {
      // The mark takes effect immediately (admission thread), so a
      // budgeted run in flight sees it at its next checkpoint even while
      // the dispatcher is busy; only the *response* waits for FIFO order.
      session->mark_canceled(req.target);
      std::ostringstream out;
      write_ok_prefix(out, req.id);
      out << ", \"kind\": \"cancel\"}\n";
      session->complete(seq, out.str());
      return;
    }
    case RequestKind::kShutdown: {
      std::ostringstream out;
      write_ok_prefix(out, req.id);
      out << ", \"kind\": \"shutdown\"}\n";
      session->complete(seq, out.str());
      // Close after responding: already-admitted work still drains.
      bool expected = false;
      if (shutting_down_.compare_exchange_strong(expected, true)) {
        queue_.close();
        shutdown_cv_.notify_all();
      }
      return;
    }
    case RequestKind::kRun:
    case RequestKind::kSweep:
    case RequestKind::kFuzz:
      break;
  }

  const RequestId id = req.id;  // survives the move below
  WorkItem item;
  item.session = session;
  item.seq = seq;
  ScheduleKey key;
  key.priority = req.priority;
  if (req.has_deadline) {
    key.has_deadline = true;
    key.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(req.deadline_ms);
    item.has_deadline = true;
    item.deadline = key.deadline;
  }
  item.request = std::move(req);
  if (!queue_.try_push(std::move(item), key)) {
    std::ostringstream out;
    const bool closing = shutting_down();
    write_error_response(out, id,
                         closing ? kErrShuttingDown : kErrOverloaded,
                         closing ? "server is shutting down"
                                 : "admission queue is full; retry later");
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rejected_overload;
    }
    session->complete(seq, out.str());
    return;
  }
  std::lock_guard<std::mutex> lock(counters_mutex_);
  ++counters_.accepted;
}

Server::ProgramEntry* Server::resolve_program(
    const std::shared_ptr<Session>& session, uint64_t seq, const Request& request) {
  const std::string key =
      request.workload.empty()
          ? "src:" + std::to_string(std::hash<std::string>{}(request.source))
          : "wl:" + request.workload + ":" + std::to_string(request.scale);
  auto it = programs_.find(key);
  if (it != programs_.end()) return &it->second;
  try {
    ProgramEntry entry;
    if (!request.workload.empty()) {
      entry.program =
          asmblr::assemble(work::make_workload(request.workload, request.scale).source);
    } else {
      entry.program = asmblr::assemble(request.source);
    }
    return &programs_.emplace(key, std::move(entry)).first->second;
  } catch (const std::invalid_argument& e) {
    std::ostringstream out;
    write_error_response(out, request.id, kErrUnknownWorkload, e.what());
    session->complete(seq, out.str());
  } catch (const std::exception& e) {
    std::ostringstream out;
    write_error_response(out, request.id, kErrBadRequest,
                         std::string("assembly failed: ") + e.what());
    session->complete(seq, out.str());
  }
  return nullptr;
}

void Server::process_batch(std::vector<WorkItem> items) {
  // Partition: grid work (sweeps + unbudgeted cold runs) shares one
  // SweepEngine call; budgeted/warm runs and fuzz campaigns execute
  // directly. Canceled and unresolvable requests answer here and drop out.
  struct GridItem {
    size_t item_index;
    BatchSlice slice;
  };
  std::vector<accel::SweepPoint> grid;
  std::vector<GridItem> grid_items;
  std::vector<size_t> direct_items;
  std::vector<size_t> fuzz_items;

  for (size_t i = 0; i < items.size(); ++i) {
    const WorkItem& item = items[i];
    const Request& req = item.request;
    if (item.session->is_canceled(req.id)) {
      item.session->consume_cancel(req.id);
      std::ostringstream out;
      write_error_response(out, req.id, kErrCanceled, "canceled before dispatch");
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.canceled;
      }
      item.session->complete(item.seq, out.str());
      continue;
    }
    // Expiry is judged here, at pickup, not in the queue: the request is
    // rejected exactly once, with a response. `>=` makes deadline_ms: 0
    // expire unconditionally (admission time is the deadline), which is
    // what pins this path deterministically in tests.
    if (item.has_deadline && std::chrono::steady_clock::now() >= item.deadline) {
      std::ostringstream out;
      write_error_response(out, req.id, kErrDeadlineExpired,
                           "deadline passed before dispatch");
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.rejected_deadline;
      }
      item.session->complete(item.seq, out.str());
      continue;
    }
    if (req.kind == RequestKind::kFuzz) {
      fuzz_items.push_back(i);
      continue;
    }
    if (req.kind == RequestKind::kRun && (req.budget > 0 || req.warm)) {
      direct_items.push_back(i);
      continue;
    }
    ProgramEntry* entry = resolve_program(item.session, item.seq, req);
    if (entry == nullptr) continue;
    BatchSlice slice;
    slice.begin = grid.size();
    std::vector<accel::SweepPoint> points = expand_points(req, entry->program);
    for (auto& p : points) grid.push_back(std::move(p));
    slice.end = grid.size();
    grid_items.push_back({i, slice});
  }

  if (!grid.empty()) {
    accel::SweepOptions opts;
    opts.threads = options_.worker_threads;
    opts.result_cache = store_.get();
    std::vector<accel::SweepResult> results;
    bool engine_failed = false;
    std::string engine_error;
    try {
      results = accel::SweepEngine(opts).run(grid);
    } catch (const std::exception& e) {
      engine_failed = true;
      engine_error = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.batches;
      counters_.batched_cells += grid.size();
    }
    for (const GridItem& gi : grid_items) {
      const WorkItem& item = items[gi.item_index];
      std::ostringstream out;
      if (engine_failed) {
        write_error_response(out, item.request.id, kErrInternal, engine_error);
      } else if (item.request.kind == RequestKind::kRun) {
        const accel::SweepResult& r = results[gi.slice.begin];
        RunResponse resp;
        resp.accelerated = r.accelerated;
        resp.has_baseline = r.has_baseline;
        resp.baseline = r.baseline;
        resp.transparent = r.transparent;
        resp.halted = !r.accelerated.hit_limit;
        write_run_response(out, item.request.id, resp);
      } else {
        write_sweep_response(out, item.request.id, split_slice(results, gi.slice));
      }
      item.session->complete(item.seq, out.str());
    }
  }

  for (const size_t i : direct_items) {
    ProgramEntry* entry = resolve_program(items[i].session, items[i].seq,
                                          items[i].request);
    if (entry == nullptr) continue;
    execute_direct(items[i], *entry);
  }
  for (const size_t i : fuzz_items) execute_fuzz(items[i]);
}

std::vector<uint8_t>* Server::warm_lookup(uint64_t program_hash,
                                          uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  auto it = warm_pool_.find({program_hash, fingerprint});
  if (it != warm_pool_.end()) return &it->second;
  if (options_.store_dir.empty()) return nullptr;
  // Lazy disk fill: a previous daemon run (or another worker process
  // sharing the directory) may have exported this key.
  const std::string path = options_.store_dir + "/warm/" + hex16(program_hash) +
                           "-" + hex16(fingerprint) + ".warm";
  try {
    std::vector<uint8_t> payload =
        snap::read_artifact_file(path, snap::ArtifactKind::kWarmStart);
    auto [pos, inserted] =
        warm_pool_.emplace(std::make_pair(program_hash, fingerprint),
                           std::move(payload));
    (void)inserted;
    return &pos->second;
  } catch (const snap::SnapshotError&) {
    return nullptr;  // absent or unreadable: treated as a cold start
  }
}

void Server::warm_insert(uint64_t program_hash, uint64_t fingerprint,
                         std::vector<uint8_t> payload) {
  size_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    auto [it, inserted] = warm_pool_.emplace(
        std::make_pair(program_hash, fingerprint), std::move(payload));
    if (!inserted) return;  // identical bytes are already resident
    entries = warm_pool_.size();
    if (!options_.store_dir.empty()) {
      const std::string path = options_.store_dir + "/warm/" +
                               hex16(program_hash) + "-" + hex16(fingerprint) +
                               ".warm";
      try {
        snap::write_artifact_file(path, snap::ArtifactKind::kWarmStart, it->second);
      } catch (const snap::SnapshotError&) {
        // Persistence is an optimization; the in-memory pool still serves.
      }
    }
  }
  std::lock_guard<std::mutex> lock(counters_mutex_);
  ++counters_.warm_exports;
  counters_.warm_entries = entries;
}

void Server::execute_direct(const WorkItem& item, ProgramEntry& entry) {
  const Request& req = item.request;
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.direct_runs;
  }
  accel::SystemConfig config =
      config_for(req.shape, req.slots, req.speculation);
  const uint64_t phash = snap::program_hash(entry.program);
  const uint64_t fingerprint = snap::system_fingerprint(config);

  accel::AcceleratedSystem system(entry.program, config);
  RunResponse resp;
  resp.budget = req.budget;
  if (req.warm) {
    if (const std::vector<uint8_t>* payload = warm_lookup(phash, fingerprint)) {
      try {
        resp.warm_preloaded =
            snap::load_warm_start_payload(system, *payload, entry.program);
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.warm_preloads;
      } catch (const snap::SnapshotError&) {
        resp.warm_preloaded = 0;  // stale/mismatched entry: run cold
      }
    }
  }

  // Migration resume (worker processes): restore a prior checkpoint's
  // snapshot AFTER the warm preload — the preload already set
  // `warm_preloaded` exactly as the uncrashed run did, and the restore
  // then replaces simulator state wholesale, so the finished response is
  // byte-identical to a run that never migrated. A payload that fails to
  // restore (foreign program/config) is discarded: cold restart, same
  // bytes, just more work.
  if (hooks_.resume) {
    const std::vector<uint8_t> payload = hooks_.resume(req);
    if (!payload.empty()) {
      try {
        snap::restore_snapshot_payload(system, payload, entry.program);
      } catch (const snap::SnapshotError&) {
      }
    }
  }

  // Budgeted execution: run_until checkpoint chunks bound how long a
  // cancellation can go unnoticed. Shutdown deliberately does NOT stop
  // the loop: admitted work drains to a complete response (the drain
  // promise), and a partial run would be nondeterministic anyway. Only an
  // explicit cancel cuts a run short. hit_limit from the machine's own
  // cap is surfaced unchanged; hit_budget is ours.
  const uint64_t budget =
      req.budget > 0 ? req.budget : std::numeric_limits<uint64_t>::max();
  accel::AccelStats stats;
  bool canceled = false;
  for (;;) {
    if (item.session->is_canceled(req.id)) {
      canceled = true;
      item.session->consume_cancel(req.id);
      break;
    }
    const uint64_t done = system.stats().instructions;
    if (done >= budget) break;
    const uint64_t boundary =
        std::min(budget, done + options_.checkpoint_interval);
    stats = system.run_until(boundary);
    if (stats.final_state.halted || stats.hit_limit) break;
    if (stats.instructions == done) break;  // no forward progress: stop
    if (hooks_.checkpoint && stats.instructions < budget) {
      hooks_.checkpoint(req, snap::encode_snapshot(system, entry.program));
    }
  }
  if (canceled) {
    std::ostringstream out;
    write_error_response(out, req.id, kErrCanceled, "canceled at a checkpoint");
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.canceled;
    }
    item.session->complete(item.seq, out.str());
    return;
  }
  stats = system.stats();
  resp.accelerated = stats;
  resp.halted = stats.final_state.halted;
  resp.hit_budget = !resp.halted && req.budget > 0 &&
                    stats.instructions >= req.budget && !stats.hit_limit;

  if (req.want_baseline) {
    if (req.budget > 0) {
      // Budgeted baseline: same instruction allowance on the plain core.
      sim::MachineConfig machine = config.machine;
      machine.max_instructions = std::min(machine.max_instructions, req.budget);
      resp.baseline = accel::baseline_as_stats(entry.program, machine);
    } else {
      if (!entry.has_baseline) {
        entry.baseline = accel::baseline_as_stats(entry.program, config.machine);
        entry.has_baseline = true;
      }
      resp.baseline = entry.baseline;
    }
    resp.has_baseline = true;
    // Transparency is only a meaningful verdict when both sides finished.
    resp.transparent =
        !resp.halted || !resp.baseline.final_state.halted
            ? resp.halted == resp.baseline.final_state.halted
            : resp.accelerated.final_state.output ==
                      resp.baseline.final_state.output &&
                  resp.accelerated.memory_hash == resp.baseline.memory_hash;
  }

  if (req.warm && resp.halted && resp.warm_preloaded == 0) {
    warm_insert(phash, fingerprint,
                snap::encode_warm_start(system, entry.program));
    resp.warm_exported = true;
  }

  std::ostringstream out;
  write_run_response(out, req.id, resp);
  item.session->complete(item.seq, out.str());
}

void Server::execute_fuzz(const WorkItem& item) {
  const Request& req = item.request;
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.fuzz_campaigns;
  }
  fuzz::CampaignOptions opts;
  opts.seed_start = req.seed_start;
  opts.seeds = req.seeds;
  opts.threads = options_.worker_threads;
  opts.matrix = req.matrix == "full" ? fuzz::full_matrix() : fuzz::quick_matrix();
  opts.shrink = false;  // serve reports counts; repro files are the CLI's job
  std::ostringstream out;
  try {
    const fuzz::CampaignResult result = fuzz::run_campaign(opts);
    FuzzResponse resp;
    resp.seeds_run = result.seeds_run;
    resp.divergent = result.divergent_seeds;
    resp.inconclusive = result.inconclusive_seeds;
    write_fuzz_response(out, req.id, resp);
  } catch (const std::exception& e) {
    write_error_response(out, req.id, kErrInternal, e.what());
  }
  item.session->complete(item.seq, out.str());
}

}  // namespace dim::serve
